// Command goldengen regenerates the byte-identity golden files that pin
// the tiered offload path to the pre-refactor (370fcb2) outputs. It is
// only run by hand when a deliberate behaviour change re-anchors them.
package main

import (
	"log"
	"os"
	"path/filepath"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/fleet"
	"ssdtrain/internal/models"
)

func write(path, content string) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d bytes)", path, len(content))
}

func main() {
	fig6, err := exp.Fig6(16)
	if err != nil {
		log.Fatal(err)
	}
	write("internal/exp/testdata/fig6.golden", exp.Fig6Table(fig6).String())

	fig7, err := exp.Fig7(12288, nil)
	if err != nil {
		log.Fatal(err)
	}
	write("internal/exp/testdata/fig7.golden", exp.Fig7Table(12288, fig7).String())

	t3, err := exp.Table3()
	if err != nil {
		log.Fatal(err)
	}
	write("internal/exp/testdata/table3.golden", exp.Table3Table(t3).String())

	osw, err := exp.OptimSweep(exp.RunConfig{
		Model:        models.PaperConfig(models.BERT, 2048, 24, 8),
		MicroBatches: 2,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	write("internal/exp/testdata/optim_sweep.golden", exp.OptimSweepTable(osw).String())

	cluster := fleet.ClusterSpec{Nodes: 2, Node: fleet.DefaultNodeSpec()}
	jobs := fleet.DefaultJobMix(fleet.MixConfig{Jobs: 10, Seed: 1})
	reports, err := fleet.PolicySweep(cluster, jobs, fleet.Policies(), 0)
	if err != nil {
		log.Fatal(err)
	}
	write("internal/fleet/testdata/fleet_report.golden", fleet.RenderReports(reports))

	chrome, err := exp.ReferenceChromeTrace()
	if err != nil {
		log.Fatal(err)
	}
	write("internal/exp/testdata/trace_chrome.golden", string(chrome))
}
