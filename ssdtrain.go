// Package ssdtrain is the public API of the SSDTrain reproduction: an
// adaptive activation-offloading framework for LLM training (Wu et al.,
// DAC 2025), rebuilt in Go on a deterministic simulation of the GPU
// training stack.
//
// The package wires together the internal substrates — a discrete-event
// GPU/PCIe/NVMe simulator, a PyTorch-like module/hook runtime, a
// transformer model zoo, and the SSDTrain tensor cache — behind a small
// surface:
//
//	cfg := ssdtrain.PaperConfig(ssdtrain.BERT, 12288, 3, 16)
//	res, err := ssdtrain.Train(ssdtrain.RunConfig{
//	    Model:    cfg,
//	    Strategy: ssdtrain.StrategySSDTrain,
//	})
//	fmt.Println(res.StepTime(), res.Measured.ActPeak)
//
// Every figure and table of the paper's evaluation has a runner here
// (Fig1, Fig5, Fig6, Fig7, Fig8a, Fig8b, Table1, Table3); see
// EXPERIMENTS.md for the paper-vs-reproduction record.
package ssdtrain

import (
	"ssdtrain/internal/core"
	"ssdtrain/internal/exp"
	"ssdtrain/internal/faults"
	"ssdtrain/internal/fleet"
	"ssdtrain/internal/models"
	"ssdtrain/internal/perfmodel"
	"ssdtrain/internal/trace"
)

// Model architectures (§II-A's three transformer classes).
const (
	GPT  = models.GPT
	BERT = models.BERT
	T5   = models.T5
)

// Activation placement strategies (§IV-C's recompute-offload-keep space).
const (
	// StrategyNoOffload keeps all activations in GPU memory.
	StrategyNoOffload = exp.NoOffload
	// StrategySSDTrain offloads activations to the NVMe array.
	StrategySSDTrain = exp.SSDTrain
	// StrategyRecompute uses layerwise full activation checkpointing.
	StrategyRecompute = exp.Recompute
	// StrategyCPUOffload offloads activations to pinned host memory.
	StrategyCPUOffload = exp.CPUOffload
	// StrategyHybridOffload offloads across a tiered DRAM+NVMe hierarchy
	// under a placement policy (RunConfig.Placement, DRAMCapacity,
	// SplitRatio).
	StrategyHybridOffload = exp.HybridOffload
	// StrategyOptimOffload offloads optimizer states and gradients to the
	// DRAM/NVMe hierarchy (à la ZeRO-Offload), with the step schedule
	// selectable via Spec.Optimizer.Schedule.
	StrategyOptimOffload = exp.OptimOffload
)

// Optimizer step schedules for StrategyOptimOffload.
const (
	// ScheduleSync is the classic barrier: the step waits for every
	// offloaded update to drain before fwd(t+1) starts.
	ScheduleSync = exp.ScheduleSync
	// ScheduleOverlap drains the optimizer pipeline into the next step's
	// forward pass (GreedySnake), stalling fwd(t+1) only on the weights
	// whose updates have not landed yet.
	ScheduleOverlap = exp.ScheduleOverlap
)

// Tier placement policies for StrategyHybridOffload.
const (
	// PlacementSSDOnly routes everything to the NVMe rung (the paper's
	// placement expressed on the tiered stack).
	PlacementSSDOnly = exp.PlacementSSDOnly
	// PlacementDRAMFirst fills the pinned DRAM pool first and spills
	// overflow to NVMe.
	PlacementDRAMFirst = exp.PlacementDRAMFirst
	// PlacementSplit routes a fixed fraction of offloaded bytes to DRAM
	// and the rest to NVMe, keeping both PCIe paths busy.
	PlacementSplit = exp.PlacementSplit
)

// Re-exported configuration and result types.
type (
	// ModelConfig describes a transformer training configuration.
	ModelConfig = models.Config
	// Arch selects the model family.
	Arch = models.Arch
	// Strategy is an activation placement strategy.
	Strategy = exp.Strategy
	// RunConfig configures one training measurement.
	RunConfig = exp.RunConfig
	// RunResult is a measurement outcome.
	RunResult = exp.RunResult
	// StepMetrics is one measured step.
	StepMetrics = exp.StepMetrics
	// SSDSetup describes the per-GPU offload array.
	SSDSetup = exp.SSDSetup
	// Plan is a compiled measurement: the memoized config-shape-dependent
	// work of a run (graph template, activation vectors, budget plan).
	Plan = exp.Plan
	// Session is a reusable execution arena bound to a Plan's shape:
	// repeated Execute calls reset it in place instead of rebuilding the
	// simulated machine, with byte-identical results.
	Session = exp.Session
	// SessionPool shares Sessions between goroutines (used internally by
	// TrainSweep and the fleet profiler).
	SessionPool = exp.SessionPool
	// Placement selects the hybrid strategy's tier-routing policy.
	Placement = exp.Placement
	// TierUsage summarizes one rung of the offload hierarchy after a run.
	TierUsage = exp.TierUsage
	// DRAMSweepResult is a DRAM-capacity sweep with its single-target
	// endpoints.
	DRAMSweepResult = exp.DRAMSweepResult
	// DRAMSweepRow is one point of a DRAM-capacity sweep.
	DRAMSweepRow = exp.DRAMSweepRow
	// Spec is the grouped configuration form — the same knob surface as
	// the flat RunConfig, organized by concern; new code should prefer it.
	Spec = exp.Spec
	// OffloadSpec groups the activation-offload knobs of a Spec.
	OffloadSpec = exp.OffloadSpec
	// OptimizerSpec groups the offloaded-optimizer knobs of a Spec.
	OptimizerSpec = exp.OptimizerSpec
	// RunSpec groups the measurement-shape knobs of a Spec.
	RunSpec = exp.RunSpec
	// InjectSpec groups fault injection, tracing and contention knobs.
	InjectSpec = exp.InjectSpec
	// MachineSpec groups the simulated hardware of a Spec.
	MachineSpec = exp.MachineSpec
	// OptimUsage is the per-run optimizer-tier accounting.
	OptimUsage = exp.OptimUsage
	// OptimSweepResult is the GreedySnake-vs-SSDTrain comparison sweep.
	OptimSweepResult = exp.OptimSweepResult
	// OptimSweepRow is one residency point of an optimizer sweep.
	OptimSweepRow = exp.OptimSweepRow
)

// PaperConfig returns the paper's §IV-A evaluation configuration for an
// architecture and geometry (TP2, sequence 1024, head dim 128, FP16,
// FlashAttention).
func PaperConfig(arch Arch, hidden, layers, batch int) ModelConfig {
	return models.PaperConfig(arch, hidden, layers, batch)
}

// Train runs one training measurement on the simulated testbed.
func Train(cfg RunConfig) (*RunResult, error) { return exp.Run(cfg) }

// SpecFor regroups a flat RunConfig into the Spec form, losslessly.
func SpecFor(cfg RunConfig) Spec { return exp.SpecFor(cfg) }

// TrainSpec runs one measurement from the grouped Spec form.
func TrainSpec(s Spec) (*RunResult, error) { return s.Measure() }

// TrainSweepSpecs is TrainSweep on grouped Specs.
func TrainSweepSpecs(workers int, specs []Spec) ([]*RunResult, error) {
	return exp.SweepSpecs(workers, specs)
}

// OptimSweep measures the optimizer-offload strategy across DRAM
// residency fractions under both step schedules, with the SSDTrain
// activation baseline alongside (nil fracs selects quarters).
func OptimSweep(base RunConfig, fracs []float64) (*OptimSweepResult, error) {
	return exp.OptimSweep(base, fracs)
}

// OptimSweepTable renders an optimizer sweep as text.
func OptimSweepTable(r *OptimSweepResult) *trace.Table { return exp.OptimSweepTable(r) }

// Compile builds (or fetches from the shared plan cache) the run plan
// for a configuration; plan.Execute then measures any variant differing
// only in the cheap knobs (Budget, Steps, Warmup, SSDBandwidthShare,
// AdaptiveSteps, Placement, DRAMCapacity, SplitRatio).
func Compile(cfg RunConfig) (*Plan, error) { return exp.Compile(cfg) }

// NewSession binds a reusable execution arena to a compiled plan, for
// callers that drive their own repeated-Execute loops; Train and
// TrainSweep pool sessions automatically.
func NewSession(p *Plan) (*Session, error) { return exp.NewSession(p) }

// TrainSweep executes a batch of measurements with deduplicated work:
// identical configs run once, cheap-knob variants share compiled plans,
// and points run concurrently across workers (0 = GOMAXPROCS) without
// affecting results.
func TrainSweep(workers int, cfgs []RunConfig) ([]*RunResult, error) {
	return exp.Sweep(workers, cfgs)
}

// DRAMSweep measures dram-first hybrid step time against DRAM capacity
// (fractions of the cpu-offload endpoint's residency peak; nil selects
// ninths), returning the sweep and both single-target endpoints.
func DRAMSweep(base RunConfig, fracs []float64) (*DRAMSweepResult, error) {
	return exp.DRAMSweep(base, fracs)
}

// DRAMSweepTable renders a DRAM-capacity sweep as text.
func DRAMSweepTable(r *DRAMSweepResult) *trace.Table { return exp.DRAMSweepTable(r) }

// Fig6 measures step time and activation peak for all nine evaluation
// points (Fig 6). batch 0 selects the paper's 16.
func Fig6(batch int) ([]exp.Fig6Row, error) { return exp.Fig6(batch) }

// Fig6Table renders Fig 6 rows as text.
func Fig6Table(rows []exp.Fig6Row) *trace.Table { return exp.Fig6Table(rows) }

// Fig7 sweeps the recompute-offload-keep curve for a 3-layer BERT.
func Fig7(hidden int, batches []int) ([]exp.ROKPoint, error) { return exp.Fig7(hidden, batches) }

// Fig8a decomposes the micro-batch-size throughput gain.
func Fig8a(batches []int) ([]exp.Fig8aRow, error) { return exp.Fig8a(batches) }

// Table3 compares measured offload volume with the analytic estimate.
func Table3() ([]exp.Table3Row, error) { return exp.Table3() }

// Table1 renders the Table I feature matrix.
func Table1() *trace.Table { return exp.Table1() }

// Fig1 fits the GPU-vs-LLM scaling trends (Fig 1).
func Fig1() perfmodel.Fig1Summary { return perfmodel.Fig1() }

// Fig5 projects SSD lifespan, write bandwidth and activation volume for
// large-scale systems (Fig 5).
func Fig5() []perfmodel.Fig5Row { return perfmodel.Fig5() }

// Fig8b projects per-GPU write bandwidth under upscaling (Fig 8b).
func Fig8b() []perfmodel.Fig8bRow { return perfmodel.Fig8b() }

// Fig8bReference projects the 2-GPU testbed reference line of Fig 8b.
func Fig8bReference() perfmodel.Projection { return perfmodel.Fig8bReference() }

// Fleet types: the multi-job cluster simulation with shared-SSD
// contention (internal/fleet).
type (
	// FleetConfig configures one cluster simulation.
	FleetConfig = fleet.Config
	// FleetClusterSpec is a homogeneous cluster of nodes.
	FleetClusterSpec = fleet.ClusterSpec
	// FleetNodeSpec is one node: GPUs plus the NVMe array they share.
	FleetNodeSpec = fleet.NodeSpec
	// FleetJob is one queued training job.
	FleetJob = fleet.Job
	// FleetMixConfig parameterizes the seeded job-mix generator.
	FleetMixConfig = fleet.MixConfig
	// FleetPolicy selects a scheduling discipline.
	FleetPolicy = fleet.Policy
	// FleetReport is a simulation outcome (byte-identical per seed).
	FleetReport = fleet.Report
	// FleetScenario names one simulation in a sweep.
	FleetScenario = fleet.Scenario
	// FleetProfiler memoizes contended job measurements.
	FleetProfiler = fleet.Profiler
)

// Fleet scheduling policies.
const (
	FleetFIFO     = fleet.FIFO
	FleetSJF      = fleet.SJF
	FleetBackfill = fleet.Backfill
)

// DefaultFleetNode returns the fleet evaluation node (4× A100-SXM-80GB
// sharing an 8-drive Samsung 980 PRO array).
func DefaultFleetNode() FleetNodeSpec { return fleet.DefaultNodeSpec() }

// FleetJobMix draws a seeded heterogeneous job mix.
func FleetJobMix(cfg FleetMixConfig) []FleetJob { return fleet.DefaultJobMix(cfg) }

// FleetSimulate runs one cluster simulation.
func FleetSimulate(cfg FleetConfig) (*FleetReport, error) { return fleet.Simulate(cfg) }

// FleetSweep runs scenarios concurrently through the deterministic
// worker pool, returning reports in scenario order.
func FleetSweep(scenarios []FleetScenario, workers int) ([]*FleetReport, error) {
	return fleet.Sweep(scenarios, workers)
}

// FleetPolicySweep simulates one job mix under each policy, sharing the
// profile cache across policies.
func FleetPolicySweep(cluster FleetClusterSpec, jobs []FleetJob, policies []FleetPolicy, workers int) ([]*FleetReport, error) {
	return fleet.PolicySweep(cluster, jobs, policies, workers)
}

// FleetPolicySweepConfig is the full option set for a policy sweep,
// including adaptive profiling.
type FleetPolicySweepConfig = fleet.PolicySweepConfig

// FleetPolicySweepWith is FleetPolicySweep with the full option set.
func FleetPolicySweepWith(cfg FleetPolicySweepConfig) ([]*FleetReport, error) {
	return fleet.PolicySweepWith(cfg)
}

// FleetCompareTable renders a policy comparison of sweep reports.
func FleetCompareTable(reports []*FleetReport) *trace.Table { return fleet.CompareTable(reports) }

// ParseFleetPolicy resolves a scheduling policy name.
func ParseFleetPolicy(name string) (FleetPolicy, error) { return fleet.ParsePolicy(name) }

// NewFleetProfiler creates a profile cache to share across simulations
// (0 = default capacity).
func NewFleetProfiler(capacity int) *FleetProfiler { return fleet.NewProfiler(capacity) }

// Fault injection (internal/faults): seeded, schedulable device deaths,
// transient bandwidth degradation and node drains, deterministic end to
// end — the same plan yields byte-identical reports and traces.
type (
	// FaultSpec injects faults into one training run
	// (RunConfig.Faults): a single device death (timed or wear-triggered)
	// and/or one bandwidth-degradation window.
	FaultSpec = faults.Spec
	// FaultPlan schedules fault events across a fleet simulation
	// (FleetConfig.Faults, FleetMixConfig.FaultPlan) plus the
	// checkpoint-restart cost model applied to killed jobs.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault: a device death, a degradation
	// window or a node drain.
	FaultEvent = faults.Event
	// FaultEventKind discriminates FaultEvent.
	FaultEventKind = faults.EventKind
	// DeviceFailedError is the typed error a run surfaces when an
	// injected failure removes the tier a transfer needs; sessions stay
	// reusable after it.
	DeviceFailedError = core.DeviceFailedError
)

// Fault event kinds.
const (
	FaultDeath   = faults.Death
	FaultDegrade = faults.Degrade
	FaultDrain   = faults.Drain
)

// ParseFaultPlan parses the textual fault-plan syntax shared by
// cmd/fleet -faults and the /v1/fleet API (for example
// "death@30s:node0:dev1,drain@2m:node1:5m,ckpt=25").
func ParseFaultPlan(s string) (FaultPlan, error) { return faults.ParsePlan(s) }
