module ssdtrain

go 1.24
