package ssdtrain

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the documented facade end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := PaperConfig(GPT, 4096, 3, 8)
	cfg.SeqLen = 512
	cfg.Vocab = 16384
	base, err := Train(RunConfig{Model: cfg, Strategy: StrategyNoOffload})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Train(RunConfig{Model: cfg, Strategy: StrategySSDTrain})
	if err != nil {
		t.Fatal(err)
	}
	if off.Measured.ActPeak >= base.Measured.ActPeak {
		t.Errorf("offload peak %v not below baseline %v", off.Measured.ActPeak, base.Measured.ActPeak)
	}
	if r := float64(off.StepTime()) / float64(base.StepTime()); r > 1.02 {
		t.Errorf("offload overhead ratio %.3f", r)
	}
}

func TestPublicAPITables(t *testing.T) {
	if out := Table1().String(); !strings.Contains(out, "SSDTrain") {
		t.Errorf("Table1 output: %s", out)
	}
	f := Fig1()
	if f.MemoryVsThroughput <= 0 || f.MemoryVsThroughput >= 1 {
		t.Errorf("Fig1 ratio = %v", f.MemoryVsThroughput)
	}
	if len(Fig5()) != 12 || len(Fig8b()) != 5 {
		t.Error("projection row counts wrong")
	}
	if Fig8bReference().WriteBandwidth <= 0 {
		t.Error("reference projection empty")
	}
}

func TestPublicAPIFig6Render(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	rows, err := Fig6(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := Fig6Table(rows).String()
	for _, want := range []string{"bert", "t5", "gpt", "H12288 L3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 table missing %q:\n%s", want, out)
		}
	}
}
