// Command lifespan reproduces Fig 5: projected SSD lifespan, required
// per-GPU PCIe write bandwidth, and maximal per-GPU activation volume for
// large-scale Megatron and DeepSpeed-ZeRO3 training systems, under the
// paper's endurance assumptions (4× Samsung 980 PRO 1TB per GPU, workload
// WAF 1 vs the JESD rating's 2.5, 1-day retention relaxation).
package main

import (
	"fmt"
	"time"

	"ssdtrain"
	"ssdtrain/internal/trace"
)

func main() {
	rows := ssdtrain.Fig5()
	t := trace.NewTable("Fig 5 — SSD lifespan, PCIe write bandwidth, max activations per GPU",
		"config", "GPUs", "step time", "write BW (GB/s)", "lifespan (y)", "max act (TB/GPU)")
	for _, r := range rows {
		t.AddRow(r.Case.Label, r.Case.GPUs,
			r.Proj.StepTime.Round(100*time.Millisecond),
			fmt.Sprintf("%.2f", r.Proj.WriteBandwidth.GBpsF()),
			fmt.Sprintf("%.1f", r.Proj.LifespanYears),
			fmt.Sprintf("%.2f", r.Proj.MaxActivations.TBf()))
	}
	fmt.Print(t)
	fmt.Println("\nPaper's claims to check: every lifespan exceeds 2 years, no")
	fmt.Println("configuration needs more than ~12 GB/s of write bandwidth per GPU,")
	fmt.Println("and both metrics improve as the system scales up (§III-D).")
}
