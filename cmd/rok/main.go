// Command rok sweeps the recompute-offload-keep design space (Fig 7):
// for each placement strategy and batch size it reports the activation
// memory peak (x) and per-GPU model throughput (y).
//
// Usage:
//
//	rok -hidden 12288 -batches 4,8,16
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"ssdtrain"
	"ssdtrain/internal/trace"
)

func main() {
	hidden := flag.Int("hidden", 12288, "hidden dimension (paper: 12288 and 14336)")
	batchesFlag := flag.String("batches", "4,8,16", "comma-separated batch sizes")
	flag.Parse()

	var batches []int
	for _, part := range strings.Split(*batchesFlag, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			log.Fatalf("rok: bad batch %q: %v", part, err)
		}
		batches = append(batches, b)
	}

	pts, err := ssdtrain.Fig7(*hidden, batches)
	if err != nil {
		log.Fatalf("rok: %v", err)
	}
	t := trace.NewTable(fmt.Sprintf("Fig 7 — ROK curve, 3-layer BERT H%d", *hidden),
		"strategy", "batch", "act peak (GB)", "throughput (TFLOP/s)", "step time")
	for _, p := range pts {
		t.AddRow(string(p.Strategy), p.Batch,
			fmt.Sprintf("%.2f", p.Peak.GBf()),
			fmt.Sprintf("%.1f", float64(p.Throughput)/1e12),
			p.StepTime)
	}
	fmt.Print(t)
	fmt.Println("\nReading the curve: offload sits at keep-level throughput with a")
	fmt.Println("smaller peak; recompute sits lower on both axes. At a fixed memory")
	fmt.Println("budget, offloading roughly doubles the feasible batch size (§IV-C).")
}
