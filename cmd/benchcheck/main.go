// Command benchcheck validates the repo's committed benchmark records
// (BENCH_hotpath.json, BENCH_tier.json, BENCH_session.json,
// BENCH_trace.json, BENCH_steady.json, BENCH_cluster.json) and, given a
// directory of freshly measured records, enforces the CI regression
// gate: any required result whose ns_per_op or allocs_per_op worsened
// beyond tolerance versus the committed record fails the build. It
// replaces the inline python validator CI used to carry — the schema,
// the well-formedness rules and the gate all live in internal/benchfmt
// next to the emitter (cmd/bench), so they cannot drift.
//
// allocs/op is machine-independent and the durable part of the gate;
// ns/op mixes hardware speed into the comparison, so its tolerance is
// separately tunable (and can be disabled with -ns-tolerance -1) for
// heterogeneous CI fleets.
//
// Usage:
//
//	benchcheck [-dir .] [-fresh DIR] [-ns-tolerance 0.25] [-alloc-tolerance 0.25]
//
// With only -dir it validates the committed records' well-formedness.
// With -fresh it additionally validates the fresh records and gates them
// against the committed ones.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ssdtrain/internal/benchfmt"
)

func main() {
	dir := flag.String("dir", ".", "directory holding the committed BENCH_*.json records")
	fresh := flag.String("fresh", "", "directory holding freshly measured records to gate against the committed ones")
	nsTol := flag.Float64("ns-tolerance", 0.25, "allowed ns_per_op worsening (0.25 = +25%); negative disables the ns gate")
	allocTol := flag.Float64("alloc-tolerance", 0.25, "allowed allocs_per_op worsening (0.25 = +25%)")
	flag.Parse()

	failed := false
	for _, spec := range benchfmt.Specs() {
		committed, err := benchfmt.ReadReport(filepath.Join(*dir, spec.File))
		if err != nil {
			log.Printf("benchcheck: %v", err)
			failed = true
			continue
		}
		if err := benchfmt.Validate(committed, spec); err != nil {
			log.Printf("benchcheck: committed: %v", err)
			failed = true
			continue
		}
		fmt.Printf("%-20s committed record well-formed (%d results)\n", spec.File, len(committed.Results))
		if *fresh == "" {
			continue
		}
		freshRep, err := benchfmt.ReadReport(filepath.Join(*fresh, spec.File))
		if err != nil {
			log.Printf("benchcheck: fresh: %v", err)
			failed = true
			continue
		}
		if err := benchfmt.Validate(freshRep, spec); err != nil {
			log.Printf("benchcheck: fresh: %v", err)
			failed = true
			continue
		}
		nt := *nsTol
		if nt < 0 {
			// Effectively infinite tolerance: the ns gate is off.
			nt = 1e18
		}
		regs := benchfmt.Gate(committed, freshRep, spec, nt, *allocTol)
		for _, r := range regs {
			log.Printf("benchcheck: REGRESSION: %s", r)
			failed = true
		}
		if len(regs) == 0 {
			fmt.Printf("%-20s fresh record within gate (ns +%.0f%%, allocs +%.0f%%)\n",
				spec.File, *nsTol*100, *allocTol*100)
		}
	}
	if failed {
		os.Exit(1)
	}
}
