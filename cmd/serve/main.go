// Command serve runs the what-if planning service: an HTTP/JSON API over
// the experiment harness answering single-run plans (/v1/plan),
// cheap-knob sweeps streamed as NDJSON (/v1/sweep), fleet scheduling
// what-ifs (/v1/fleet) and flight-recorder traces (/v1/trace), with
// /metrics exposing every cache, pool and dedup counter behind them (JSON
// by default, Prometheus text under Accept: text/plain). Concurrent
// identical requests coalesce into one simulation; compatible cheap-knob
// requests micro-batch onto one pooled execution arena; saturation
// answers 429 with Retry-After.
//
// Usage:
//
//	serve [-addr :8080] [-workers N] [-queue N] [-cache N]
//	      [-batch-window 2ms] [-max-idle-sessions N] [-pprof]
//	      [-request-timeout 2m] [-drain-timeout 15s]
//
// Every request carries an end-to-end deadline (queue wait included);
// expiry answers 503 so clients can tell "too slow right now" from "bad
// config". SIGINT/SIGTERM drains: the listener closes at once and
// in-flight requests get -drain-timeout to finish.
//
// /debug/buildinfo always reports the binary's module and VCS stamp;
// -pprof additionally mounts net/http/pprof under /debug/pprof/ (off by
// default — profiles are a debugging surface, not a public API).
//
// Self-check mode starts the server on an ephemeral port, drives it with
// the built-in load generator, exercises /v1/trace and /debug/buildinfo,
// and exits non-zero unless the run was clean (zero 5xx, zero body
// mismatches, well-formed trace JSON) and the caching layers did their
// job (singleflight dedup observed):
//
//	serve -selfcheck [-n 200] [-c 8]
//
// Cluster modes (internal/cluster). A replica in a sharded cluster
// announces itself and its peers so cold cache misses peer-fill over
// /v1/cachefill instead of re-simulating:
//
//	serve -replica-id r0 -peers http://h1:8080,http://h2:8080
//
// Router mode serves no simulations itself: it consistent-hash routes
// /v1/plan, /v1/sweep, /v1/trace and /v1/fleet across the replica set,
// health-probes and ejects/readmits replicas, retries with jittered
// backoff under a retry budget, hedges the tail, and degrades to
// labeled stale bodies rather than 5xx on total shard loss:
//
//	serve -router -replicas r0=http://h1:8080,r1=http://h2:8080
//
// The cluster self-check runs the full chaos drill in-process — N
// replicas behind a router, one killed and restarted mid-wave — and
// exits non-zero on any 5xx, any non-byte-identical body, zero hedges,
// zero peer cache-fills, or an unlabeled stale response:
//
//	serve -selfcheck-cluster [-cluster-replicas 3] [-wave 2s]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"strings"

	"ssdtrain/internal/cluster"
	"ssdtrain/internal/exp"
	"ssdtrain/internal/serve"
)

// splitList parses a comma-separated flag into its non-empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker before 429 (0 = default 64)")
	cache := flag.Int("cache", 0, "result cache capacity in rendered bodies (0 = default 1024)")
	batchWindow := flag.Duration("batch-window", 0, "request coalescing window (0 = default 2ms, negative = disabled)")
	maxIdle := flag.Int("max-idle-sessions", 0, "execution arena pool size (0 = default 32)")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "per-request response deadline; bounds how long a stalled client can pin a connection (0 = none)")
	requestTimeout := flag.Duration("request-timeout", 0, "end-to-end deadline per request, queue wait included; expiry answers 503 (0 = default 2m, negative = none)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "on SIGINT/SIGTERM, how long in-flight requests get to finish (0 = wait indefinitely)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	selfcheck := flag.Bool("selfcheck", false, "start on an ephemeral port, run the load generator against it, verify, exit")
	n := flag.Int("n", 200, "selfcheck: total plan requests")
	c := flag.Int("c", 8, "selfcheck: client concurrency")
	replicaID := flag.String("replica-id", "", "this replica's cluster identity, echoed as "+serve.HeaderReplica+" (empty = standalone)")
	peers := flag.String("peers", "", "comma-separated peer base URLs for cache peer-fill over /v1/cachefill")
	staleAfter := flag.Duration("stale-after", 0, "label cached bodies older than this with "+serve.HeaderStale+" (0 = never)")
	routerMode := flag.Bool("router", false, "run the consistent-hash cluster router instead of a planning replica (requires -replicas)")
	replicaSet := flag.String("replicas", "", "router: comma-separated id=url replica set")
	selfcheckCluster := flag.Bool("selfcheck-cluster", false, "run the in-process chaos drill (kill + restart a replica mid-load), verify, exit")
	clusterReplicas := flag.Int("cluster-replicas", 3, "selfcheck-cluster: replica count")
	wave := flag.Duration("wave", 2*time.Second, "selfcheck-cluster: load wave duration around the kill")
	flag.Parse()

	if *selfcheckCluster {
		os.Exit(runClusterSelfcheck(*clusterReplicas, *wave))
	}
	if *routerMode {
		os.Exit(runRouter(*addr, *replicaSet, *drainTimeout, *writeTimeout))
	}

	srv := serve.New(serve.Options{
		Workers:         *workers,
		Queue:           *queue,
		CacheCapacity:   *cache,
		BatchWindow:     *batchWindow,
		MaxIdleSessions: *maxIdle,
		RequestTimeout:  *requestTimeout,
		ReplicaID:       *replicaID,
		Peers:           splitList(*peers),
		StaleAfter:      *staleAfter,
	})
	handler := buildHandler(srv, *pprofOn)

	if *selfcheck {
		os.Exit(runSelfcheck(handler, *n, *c))
	}

	// Handlers never hold worker slots across response writes, so a slow
	// client costs a connection, not a slot; the timeouts bound even that.
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("serve: listen: %v", err)
	}
	// SIGINT/SIGTERM stops accepting and drains in-flight requests; a
	// second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serve: listening on %s", ln.Addr())
	switch err := serve.ServeUntil(ctx, hs, ln, *drainTimeout); {
	case err == nil:
		log.Printf("serve: drained, bye")
	case ctx.Err() != nil:
		log.Fatalf("serve: shutdown: %v", err)
	default:
		log.Fatalf("serve: %v", err)
	}
}

// buildHandler wraps the API handler with the process-debugging surface:
// /debug/buildinfo always, /debug/pprof/ only when asked for. The pprof
// handlers are mounted on this private mux, never the default one, so no
// stray import can expose profiles the flag did not.
func buildHandler(srv *serve.Server, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/buildinfo", handleBuildinfo)
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleBuildinfo answers which binary is serving: module path and
// version plus the VCS stamp, as JSON. Answering "what exactly is
// deployed" is the first question of any incident.
func handleBuildinfo(w http.ResponseWriter, r *http.Request) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		http.Error(w, "build info unavailable", http.StatusInternalServerError)
		return
	}
	body := struct {
		Path      string            `json:"path"`
		Version   string            `json:"version"`
		GoVersion string            `json:"go_version"`
		Settings  map[string]string `json:"settings,omitempty"`
	}{Path: info.Main.Path, Version: info.Main.Version, GoVersion: info.GoVersion}
	body.Settings = make(map[string]string)
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.time", "vcs.modified", "GOARCH", "GOOS":
			body.Settings[s.Key] = s.Value
		}
	}
	blob, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(blob, '\n'))
}

// runSelfcheck is the CI smoke: a real server on a loopback listener, a
// real load run through the HTTP stack, and hard assertions on the
// outcome.
func runSelfcheck(handler http.Handler, n, c int) int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Printf("selfcheck: listen: %v", err)
		return 1
	}
	hs := &http.Server{Handler: handler}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	log.Printf("selfcheck: server on %s, driving %d requests from %d workers", base, n, c)

	start := time.Now()
	rep, err := serve.RunLoad(serve.LoadOptions{BaseURL: base, Requests: n, Concurrency: c})
	if err != nil {
		log.Printf("selfcheck: load run failed: %v", err)
		return 1
	}
	fmt.Print(rep.String())
	log.Printf("selfcheck: finished in %v", time.Since(start).Round(time.Millisecond))

	failed := false
	fail := func(format string, args ...any) {
		log.Printf("selfcheck FAIL: "+format, args...)
		failed = true
	}
	if rep.Status5xx > 0 || rep.Server5xx > 0 {
		fail("%d client-observed / %d server-observed 5xx responses, want 0", rep.Status5xx, rep.Server5xx)
	}
	if rep.TransportErrors > 0 {
		fail("%d transport errors, want 0", rep.TransportErrors)
	}
	if rep.Mismatches > 0 {
		fail("%d response mismatches, want 0", rep.Mismatches)
	}
	if rep.SweepErrors > 0 {
		// On this dedicated idle server no sweep point has any excuse to
		// error (a shared production server might legitimately answer
		// saturation inline; serve_client therefore only warns).
		fail("%d sweep points answered with inline errors, want 0", rep.SweepErrors)
	}
	if rep.Coalesced == 0 {
		fail("singleflight dedup never fired (coalesced = 0)")
	}
	if rep.Status2xx == 0 {
		fail("no successful requests")
	}
	if err := checkTrace(base); err != nil {
		fail("trace endpoint: %v", err)
	}
	if err := checkSpecForms(base); err != nil {
		fail("spec wire form: %v", err)
	}
	if err := checkBuildinfo(base); err != nil {
		fail("buildinfo endpoint: %v", err)
	}
	steady := exp.GlobalSteadyStats()
	if steady.Hits == 0 {
		fail("steady-state fast path never fired across the driven plans (hits = 0)")
	}
	if failed {
		return 1
	}
	log.Printf("selfcheck: OK (dedup %d, result-cache hits %d, session hits %d, steady-state hits %d, trace + buildinfo well-formed, zero 5xx)",
		rep.Coalesced, rep.ResultCacheHits, rep.SessionHits, steady.Hits)
	return 0
}

// checkTrace POSTs a planning question to /v1/trace and validates the
// answer strictly as Chrome trace-event JSON: the container parses, the
// event list is non-empty, and every event carries the keys the viewers
// require. A malformed trace fails the selfcheck — a trace nobody can
// load is worse than none.
func checkTrace(base string) error {
	req := `{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"strategy":"ssdtrain"}`
	resp, err := http.Post(base+"/v1/trace", "application/json", bytes.NewReader([]byte(req)))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		DisplayTimeUnit string                       `json:"displayTimeUnit"`
		TraceEvents     []map[string]json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("not trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("empty traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "pid"} {
			if _, ok := ev[key]; !ok {
				return fmt.Errorf("event %d missing %q", i, key)
			}
		}
		// Every event except process-level metadata names its thread.
		if _, ok := ev["tid"]; !ok && string(ev["ph"]) != `"M"` {
			return fmt.Errorf("event %d missing \"tid\"", i)
		}
	}
	log.Printf("selfcheck: /v1/trace OK (%d events, %d bytes)", len(doc.TraceEvents), len(body))
	return nil
}

// checkSpecForms POSTs the same planning question in both wire shapes —
// the flat legacy body and the nested schema-v2 "spec" body — and
// requires byte-identical answers: both forms must normalize to one
// exp.RunConfig and hit one cache entry. A second pair exercises the
// optimizer-offload family end to end (nested optimizer group vs flat
// optim_kind/schedule knobs) and checks the v2 schema marker.
func checkSpecForms(base string) error {
	post := func(body string) ([]byte, error) {
		resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return nil, err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
		}
		return b, nil
	}
	pairs := [][2]string{
		{
			`{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"strategy":"hybrid","placement":"dram-first","dram_capacity_bytes":1073741824}`,
			`{"spec":{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"offload":{"strategy":"hybrid","placement":"dram-first","dram_capacity_bytes":1073741824}}}`,
		},
		{
			`{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"strategy":"optim-offload","schedule":"overlap","dram_capacity_bytes":1073741824}`,
			`{"spec":{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"offload":{"dram_capacity_bytes":1073741824},"optimizer":{"offload":true,"schedule":"overlap"}}}`,
		},
	}
	for i, pair := range pairs {
		flat, err := post(pair[0])
		if err != nil {
			return fmt.Errorf("pair %d flat: %w", i, err)
		}
		nested, err := post(pair[1])
		if err != nil {
			return fmt.Errorf("pair %d spec: %w", i, err)
		}
		if !bytes.Equal(flat, nested) {
			return fmt.Errorf("pair %d: flat and spec bodies differ:\n flat: %s\n spec: %s", i, flat, nested)
		}
		var marker struct {
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(flat, &marker); err != nil {
			return fmt.Errorf("pair %d: %v", i, err)
		}
		if marker.Schema != "v2" {
			return fmt.Errorf("pair %d: schema %q, want \"v2\"", i, marker.Schema)
		}
	}
	log.Printf("selfcheck: /v1/plan flat and spec bodies byte-identical (schema v2)")
	return nil
}

// runRouter serves the consistent-hash cluster front: no simulations of
// its own, every answer routed, retried, hedged or served stale from
// the replica set.
func runRouter(addr, replicaSet string, drainTimeout, writeTimeout time.Duration) int {
	var replicas []cluster.Replica
	for _, ent := range splitList(replicaSet) {
		id, url, ok := strings.Cut(ent, "=")
		if !ok || id == "" || url == "" {
			log.Printf("router: bad -replicas entry %q, want id=url", ent)
			return 1
		}
		replicas = append(replicas, cluster.Replica{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	if len(replicas) == 0 {
		log.Printf("router: -router needs a -replicas id=url list")
		return 1
	}
	rt, err := cluster.NewRouter(cluster.Options{Replicas: replicas})
	if err != nil {
		log.Printf("router: %v", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx)
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("router: listen: %v", err)
		return 1
	}
	log.Printf("router: fronting %d replicas on %s", len(replicas), ln.Addr())
	switch err := serve.ServeUntil(ctx, hs, ln, drainTimeout); {
	case err == nil:
		log.Printf("router: drained, bye")
		return 0
	default:
		log.Printf("router: %v", err)
		return 1
	}
}

// runClusterSelfcheck is the CI chaos gate: the full in-process drill —
// replicas behind a router, a kill and a cold restart mid-wave — with
// the pass/fail verdict owned by cluster.RunDrill.
func runClusterSelfcheck(replicas int, wave time.Duration) int {
	rep, err := cluster.RunDrill(os.Stderr, cluster.DrillOptions{
		Replicas:     replicas,
		WaveDuration: wave,
	})
	if err != nil {
		log.Printf("selfcheck-cluster FAIL: %v", err)
		return 1
	}
	log.Printf("selfcheck-cluster: OK (%d replicas, %d wave requests at %.0f req/s, p99 %dus during kill, recovery %dms, %d hedges, %d peer fills, stale serving verified)",
		rep.Replicas, rep.WaveRequests, rep.AggregateReqPerS, rep.P99DuringKillUs, rep.RecoveryMs, rep.Hedges, rep.PeerFills)
	return 0
}

// checkBuildinfo verifies the always-on debug endpoint answers JSON.
func checkBuildinfo(base string) error {
	resp, err := http.Get(base + "/debug/buildinfo")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var info struct {
		Path      string `json:"path"`
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return fmt.Errorf("not JSON: %v", err)
	}
	if info.Path == "" || info.GoVersion == "" {
		return fmt.Errorf("incomplete build info: %s", body)
	}
	return nil
}
