// Command serve runs the what-if planning service: an HTTP/JSON API over
// the experiment harness answering single-run plans (/v1/plan),
// cheap-knob sweeps streamed as NDJSON (/v1/sweep), fleet scheduling
// what-ifs (/v1/fleet) and flight-recorder traces (/v1/trace), with
// /metrics exposing every cache, pool and dedup counter behind them (JSON
// by default, Prometheus text under Accept: text/plain). Concurrent
// identical requests coalesce into one simulation; compatible cheap-knob
// requests micro-batch onto one pooled execution arena; saturation
// answers 429 with Retry-After.
//
// Usage:
//
//	serve [-addr :8080] [-workers N] [-queue N] [-cache N]
//	      [-batch-window 2ms] [-max-idle-sessions N] [-pprof]
//	      [-request-timeout 2m] [-drain-timeout 15s]
//
// Every request carries an end-to-end deadline (queue wait included);
// expiry answers 503 so clients can tell "too slow right now" from "bad
// config". SIGINT/SIGTERM drains: the listener closes at once and
// in-flight requests get -drain-timeout to finish.
//
// /debug/buildinfo always reports the binary's module and VCS stamp;
// -pprof additionally mounts net/http/pprof under /debug/pprof/ (off by
// default — profiles are a debugging surface, not a public API).
//
// Self-check mode starts the server on an ephemeral port, drives it with
// the built-in load generator, exercises /v1/trace and /debug/buildinfo,
// and exits non-zero unless the run was clean (zero 5xx, zero body
// mismatches, well-formed trace JSON) and the caching layers did their
// job (singleflight dedup observed):
//
//	serve -selfcheck [-n 200] [-c 8]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker before 429 (0 = default 64)")
	cache := flag.Int("cache", 0, "result cache capacity in rendered bodies (0 = default 1024)")
	batchWindow := flag.Duration("batch-window", 0, "request coalescing window (0 = default 2ms, negative = disabled)")
	maxIdle := flag.Int("max-idle-sessions", 0, "execution arena pool size (0 = default 32)")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "per-request response deadline; bounds how long a stalled client can pin a connection (0 = none)")
	requestTimeout := flag.Duration("request-timeout", 0, "end-to-end deadline per request, queue wait included; expiry answers 503 (0 = default 2m, negative = none)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "on SIGINT/SIGTERM, how long in-flight requests get to finish (0 = wait indefinitely)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	selfcheck := flag.Bool("selfcheck", false, "start on an ephemeral port, run the load generator against it, verify, exit")
	n := flag.Int("n", 200, "selfcheck: total plan requests")
	c := flag.Int("c", 8, "selfcheck: client concurrency")
	flag.Parse()

	srv := serve.New(serve.Options{
		Workers:         *workers,
		Queue:           *queue,
		CacheCapacity:   *cache,
		BatchWindow:     *batchWindow,
		MaxIdleSessions: *maxIdle,
		RequestTimeout:  *requestTimeout,
	})
	handler := buildHandler(srv, *pprofOn)

	if *selfcheck {
		os.Exit(runSelfcheck(handler, *n, *c))
	}

	// Handlers never hold worker slots across response writes, so a slow
	// client costs a connection, not a slot; the timeouts bound even that.
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("serve: listen: %v", err)
	}
	// SIGINT/SIGTERM stops accepting and drains in-flight requests; a
	// second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serve: listening on %s", ln.Addr())
	switch err := serve.ServeUntil(ctx, hs, ln, *drainTimeout); {
	case err == nil:
		log.Printf("serve: drained, bye")
	case ctx.Err() != nil:
		log.Fatalf("serve: shutdown: %v", err)
	default:
		log.Fatalf("serve: %v", err)
	}
}

// buildHandler wraps the API handler with the process-debugging surface:
// /debug/buildinfo always, /debug/pprof/ only when asked for. The pprof
// handlers are mounted on this private mux, never the default one, so no
// stray import can expose profiles the flag did not.
func buildHandler(srv *serve.Server, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/buildinfo", handleBuildinfo)
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleBuildinfo answers which binary is serving: module path and
// version plus the VCS stamp, as JSON. Answering "what exactly is
// deployed" is the first question of any incident.
func handleBuildinfo(w http.ResponseWriter, r *http.Request) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		http.Error(w, "build info unavailable", http.StatusInternalServerError)
		return
	}
	body := struct {
		Path      string            `json:"path"`
		Version   string            `json:"version"`
		GoVersion string            `json:"go_version"`
		Settings  map[string]string `json:"settings,omitempty"`
	}{Path: info.Main.Path, Version: info.Main.Version, GoVersion: info.GoVersion}
	body.Settings = make(map[string]string)
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.time", "vcs.modified", "GOARCH", "GOOS":
			body.Settings[s.Key] = s.Value
		}
	}
	blob, err := json.MarshalIndent(body, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(blob, '\n'))
}

// runSelfcheck is the CI smoke: a real server on a loopback listener, a
// real load run through the HTTP stack, and hard assertions on the
// outcome.
func runSelfcheck(handler http.Handler, n, c int) int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Printf("selfcheck: listen: %v", err)
		return 1
	}
	hs := &http.Server{Handler: handler}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	log.Printf("selfcheck: server on %s, driving %d requests from %d workers", base, n, c)

	start := time.Now()
	rep, err := serve.RunLoad(serve.LoadOptions{BaseURL: base, Requests: n, Concurrency: c})
	if err != nil {
		log.Printf("selfcheck: load run failed: %v", err)
		return 1
	}
	fmt.Print(rep.String())
	log.Printf("selfcheck: finished in %v", time.Since(start).Round(time.Millisecond))

	failed := false
	fail := func(format string, args ...any) {
		log.Printf("selfcheck FAIL: "+format, args...)
		failed = true
	}
	if rep.Status5xx > 0 || rep.Server5xx > 0 {
		fail("%d client-observed / %d server-observed 5xx responses, want 0", rep.Status5xx, rep.Server5xx)
	}
	if rep.TransportErrors > 0 {
		fail("%d transport errors, want 0", rep.TransportErrors)
	}
	if rep.Mismatches > 0 {
		fail("%d response mismatches, want 0", rep.Mismatches)
	}
	if rep.SweepErrors > 0 {
		// On this dedicated idle server no sweep point has any excuse to
		// error (a shared production server might legitimately answer
		// saturation inline; serve_client therefore only warns).
		fail("%d sweep points answered with inline errors, want 0", rep.SweepErrors)
	}
	if rep.Coalesced == 0 {
		fail("singleflight dedup never fired (coalesced = 0)")
	}
	if rep.Status2xx == 0 {
		fail("no successful requests")
	}
	if err := checkTrace(base); err != nil {
		fail("trace endpoint: %v", err)
	}
	if err := checkBuildinfo(base); err != nil {
		fail("buildinfo endpoint: %v", err)
	}
	steady := exp.GlobalSteadyStats()
	if steady.Hits == 0 {
		fail("steady-state fast path never fired across the driven plans (hits = 0)")
	}
	if failed {
		return 1
	}
	log.Printf("selfcheck: OK (dedup %d, result-cache hits %d, session hits %d, steady-state hits %d, trace + buildinfo well-formed, zero 5xx)",
		rep.Coalesced, rep.ResultCacheHits, rep.SessionHits, steady.Hits)
	return 0
}

// checkTrace POSTs a planning question to /v1/trace and validates the
// answer strictly as Chrome trace-event JSON: the container parses, the
// event list is non-empty, and every event carries the keys the viewers
// require. A malformed trace fails the selfcheck — a trace nobody can
// load is worse than none.
func checkTrace(base string) error {
	req := `{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"strategy":"ssdtrain"}`
	resp, err := http.Post(base+"/v1/trace", "application/json", bytes.NewReader([]byte(req)))
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		DisplayTimeUnit string                       `json:"displayTimeUnit"`
		TraceEvents     []map[string]json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("not trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("empty traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "pid"} {
			if _, ok := ev[key]; !ok {
				return fmt.Errorf("event %d missing %q", i, key)
			}
		}
		// Every event except process-level metadata names its thread.
		if _, ok := ev["tid"]; !ok && string(ev["ph"]) != `"M"` {
			return fmt.Errorf("event %d missing \"tid\"", i)
		}
	}
	log.Printf("selfcheck: /v1/trace OK (%d events, %d bytes)", len(doc.TraceEvents), len(body))
	return nil
}

// checkBuildinfo verifies the always-on debug endpoint answers JSON.
func checkBuildinfo(base string) error {
	resp, err := http.Get(base + "/debug/buildinfo")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var info struct {
		Path      string `json:"path"`
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return fmt.Errorf("not JSON: %v", err)
	}
	if info.Path == "" || info.GoVersion == "" {
		return fmt.Errorf("incomplete build info: %s", body)
	}
	return nil
}
