// Command serve runs the what-if planning service: an HTTP/JSON API over
// the experiment harness answering single-run plans (/v1/plan),
// cheap-knob sweeps streamed as NDJSON (/v1/sweep) and fleet scheduling
// what-ifs (/v1/fleet), with /metrics exposing every cache, pool and
// dedup counter behind them. Concurrent identical requests coalesce into
// one simulation; compatible cheap-knob requests micro-batch onto one
// pooled execution arena; saturation answers 429 with Retry-After.
//
// Usage:
//
//	serve [-addr :8080] [-workers N] [-queue N] [-cache N]
//	      [-batch-window 2ms] [-max-idle-sessions N]
//
// Self-check mode starts the server on an ephemeral port, drives it with
// the built-in load generator and exits non-zero unless the run was
// clean (zero 5xx, zero body mismatches) and the caching layers did
// their job (singleflight dedup observed):
//
//	serve -selfcheck [-n 200] [-c 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"ssdtrain/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker before 429 (0 = default 64)")
	cache := flag.Int("cache", 0, "result cache capacity in rendered bodies (0 = default 1024)")
	batchWindow := flag.Duration("batch-window", 0, "request coalescing window (0 = default 2ms, negative = disabled)")
	maxIdle := flag.Int("max-idle-sessions", 0, "execution arena pool size (0 = default 32)")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "per-request response deadline; bounds how long a stalled client can pin a connection (0 = none)")
	selfcheck := flag.Bool("selfcheck", false, "start on an ephemeral port, run the load generator against it, verify, exit")
	n := flag.Int("n", 200, "selfcheck: total plan requests")
	c := flag.Int("c", 8, "selfcheck: client concurrency")
	flag.Parse()

	srv := serve.New(serve.Options{
		Workers:         *workers,
		Queue:           *queue,
		CacheCapacity:   *cache,
		BatchWindow:     *batchWindow,
		MaxIdleSessions: *maxIdle,
	})

	if *selfcheck {
		os.Exit(runSelfcheck(srv, *n, *c))
	}

	// Handlers never hold worker slots across response writes, so a slow
	// client costs a connection, not a slot; the timeouts bound even that.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("serve: listening on %s", *addr)
	log.Fatal(hs.ListenAndServe())
}

// runSelfcheck is the CI smoke: a real server on a loopback listener, a
// real load run through the HTTP stack, and hard assertions on the
// outcome.
func runSelfcheck(srv *serve.Server, n, c int) int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Printf("selfcheck: listen: %v", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	log.Printf("selfcheck: server on %s, driving %d requests from %d workers", base, n, c)

	start := time.Now()
	rep, err := serve.RunLoad(serve.LoadOptions{BaseURL: base, Requests: n, Concurrency: c})
	if err != nil {
		log.Printf("selfcheck: load run failed: %v", err)
		return 1
	}
	fmt.Print(rep.String())
	log.Printf("selfcheck: finished in %v", time.Since(start).Round(time.Millisecond))

	failed := false
	fail := func(format string, args ...any) {
		log.Printf("selfcheck FAIL: "+format, args...)
		failed = true
	}
	if rep.Status5xx > 0 || rep.Server5xx > 0 {
		fail("%d client-observed / %d server-observed 5xx responses, want 0", rep.Status5xx, rep.Server5xx)
	}
	if rep.TransportErrors > 0 {
		fail("%d transport errors, want 0", rep.TransportErrors)
	}
	if rep.Mismatches > 0 {
		fail("%d response mismatches, want 0", rep.Mismatches)
	}
	if rep.SweepErrors > 0 {
		// On this dedicated idle server no sweep point has any excuse to
		// error (a shared production server might legitimately answer
		// saturation inline; serve_client therefore only warns).
		fail("%d sweep points answered with inline errors, want 0", rep.SweepErrors)
	}
	if rep.Coalesced == 0 {
		fail("singleflight dedup never fired (coalesced = 0)")
	}
	if rep.Status2xx == 0 {
		fail("no successful requests")
	}
	if failed {
		return 1
	}
	log.Printf("selfcheck: OK (dedup %d, result-cache hits %d, session hits %d, zero 5xx)",
		rep.Coalesced, rep.ResultCacheHits, rep.SessionHits)
	return 0
}
