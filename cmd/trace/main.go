// Command trace runs one traced training measurement on the simulated
// testbed and writes the flight recorder's capture as Chrome trace-event
// JSON — load it in Perfetto (ui.perfetto.dev) or chrome://tracing to see
// every resource's timeline: GPU compute per module, PCIe DMA, per-device
// NVMe I/O, tier queues, allocator events, and flow arrows linking each
// offload store to its reload. It also prints the attribution report:
// per-resource busy fractions, how much I/O was hidden behind compute,
// and what the GPU stalled on. Tracing never perturbs the measurement —
// the printed step time is byte-identical to an untraced run's.
//
// Usage:
//
//	trace -model bert -hidden 12288 -layers 3 -batch 16 -strategy ssdtrain -o trace.json
//	trace -strategy ssdtrain -faults "death@50ms:dev1" -o faulted.json
//
// -faults injects a deterministic fault schedule into the traced run (a
// device death and/or a degradation window); the capture then carries
// fault and rebuild spans on the tier track, so the attribution report
// shows the rebuild's bandwidth steal alongside the foreground I/O.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/faults"
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

func main() {
	model := flag.String("model", "bert", "architecture: gpt | bert | t5")
	hidden := flag.Int("hidden", 12288, "hidden dimension")
	layers := flag.Int("layers", 3, "transformer layer count")
	batch := flag.Int("batch", 16, "micro-batch size in sequences")
	strategy := flag.String("strategy", "ssdtrain", "placement: ssdtrain | no-offload | recompute | cpu-offload | hybrid")
	placement := flag.String("placement", "", "hybrid tier policy: ssd-only | dram-first | split (default dram-first)")
	dramGiB := flag.Float64("dram-gib", 0, "pinned host-memory pool in GiB (hybrid DRAM rung / cpu-offload bound; 0 = none/unbounded)")
	splitRatio := flag.Float64("split-ratio", 0.5, "DRAM share of offloaded bytes under -placement split")
	share := flag.Float64("share", 0, "SSD array bandwidth share under co-tenancy (0 or 1 = exclusive)")
	steps := flag.Int("steps", 1, "measured steps after warmup (traces grow with each)")
	faultsFlag := flag.String("faults", "", "fault schedule, e.g. \"death@50ms:dev1,degrade@10ms:0.5:100ms\" (empty = none)")
	out := flag.String("o", "trace.json", "Chrome trace-event JSON output file (- for stdout)")
	flag.Parse()

	spec, err := faults.ParseSpec(*faultsFlag)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	run := exp.RunConfig{
		Model:             models.PaperConfig(models.Arch(*model), *hidden, *layers, *batch),
		Strategy:          exp.Strategy(*strategy),
		Placement:         exp.Placement(*placement),
		DRAMCapacity:      units.Bytes(*dramGiB * float64(units.GiB)),
		SSDBandwidthShare: *share,
		Steps:             *steps,
		Faults:            spec,
	}
	if run.Placement == exp.PlacementSplit {
		run.SplitRatio = *splitRatio
	}
	res, tr, err := exp.TraceOf(run)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}

	blob := tr.ChromeJSON()
	if *out == "-" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatalf("trace: %v", err)
	}

	w := os.Stdout
	if *out == "-" {
		w = os.Stderr // keep stdout pure JSON for piping
	}
	fmt.Fprintf(w, "config      %s, strategy %s\n", run.Model, *strategy)
	fmt.Fprintf(w, "step time   %v (tracing does not perturb the measurement)\n",
		res.StepTime().Round(time.Microsecond))
	fmt.Fprintf(w, "captured    %d spans on %d tracks (%d dropped)\n",
		len(tr.Spans), len(tr.Tracks), tr.Dropped)
	if *out != "-" {
		fmt.Fprintf(w, "wrote       %s (%d bytes) — open in ui.perfetto.dev or chrome://tracing\n", *out, len(blob))
	}
	fmt.Fprintf(w, "\n%s", tr.Attribution())
}
