// Command fleet simulates a multi-job training cluster sharing per-node
// NVMe arrays: a seeded heterogeneous job mix is scheduled under one or
// more policies, co-located jobs contend for array bandwidth, and the
// report projects per-drive endurance under the multi-tenant write
// pressure. Output is byte-identical for a given seed and flags,
// regardless of -workers.
//
// Usage:
//
//	fleet -nodes 16 -jobs 64 -seed 1 -policies fifo,sjf,backfill
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"ssdtrain"
	"ssdtrain/internal/units"
)

func main() {
	nodes := flag.Int("nodes", 16, "node count")
	gpus := flag.Int("gpus", 0, "GPUs per node (0 = default node's 4)")
	dramGiB := flag.Float64("dram-gib", -1, "per-node pinned host-memory budget in GiB (-1 = default node's 512, 0 = unmodeled)")
	hybrid := flag.Float64("hybrid", 0, "fraction of SSDTrain jobs converted to dram-first hybrid tenants")
	jobs := flag.Int("jobs", 64, "job count")
	seed := flag.Int64("seed", 1, "job-mix seed")
	policies := flag.String("policies", "fifo,sjf,backfill", "comma-separated scheduling policies")
	workers := flag.Int("workers", 0, "profiling/sweep worker pool size (0 = GOMAXPROCS); never affects results")
	adaptive := flag.Bool("adaptive", false, "adaptive profiling: stop each measurement once step time converges (same report, fewer simulated steps)")
	minSteps := flag.Int("steps-min", 40, "minimum training steps per job")
	maxSteps := flag.Int("steps-max", 400, "maximum training steps per job")
	spread := flag.Duration("spread", 0, "arrival window (0 = full backlog at t=0)")
	showJobs := flag.Bool("v", false, "also print the per-job schedule tables")
	flag.Parse()

	if *jobs <= 0 {
		log.Fatalf("fleet: -jobs must be positive, got %d", *jobs)
	}
	var pols []ssdtrain.FleetPolicy
	for _, name := range strings.Split(*policies, ",") {
		p, err := ssdtrain.ParseFleetPolicy(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		pols = append(pols, p)
	}

	node := ssdtrain.DefaultFleetNode()
	if *gpus > 0 {
		node.GPUs = *gpus
	}
	if *dramGiB >= 0 {
		node.DRAM = units.Bytes(*dramGiB * float64(units.GiB))
	}
	cluster := ssdtrain.FleetClusterSpec{Nodes: *nodes, Node: node}
	mix := ssdtrain.FleetJobMix(ssdtrain.FleetMixConfig{
		Jobs:         *jobs,
		Seed:         *seed,
		MinSteps:     *minSteps,
		MaxSteps:     *maxSteps,
		SubmitSpread: *spread,
		MaxGPUs:      node.GPUs,
		HybridFrac:   *hybrid,
	})

	fmt.Printf("fleet: %d jobs (seed %d) on %d nodes × %d GPUs, shared array %d× %s per node\n\n",
		*jobs, *seed, *nodes, node.GPUs, node.SSD.Count, node.SSD.Spec.Name)

	start := time.Now()
	reports, err := ssdtrain.FleetPolicySweepWith(ssdtrain.FleetPolicySweepConfig{
		Cluster: cluster, Jobs: mix, Policies: pols,
		Workers: *workers, AdaptiveProfiles: *adaptive,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Println(r.Summary())
		fmt.Println(r.NodeTable())
		if *showJobs {
			fmt.Println(r.JobTable())
		}
	}
	fmt.Println(ssdtrain.FleetCompareTable(reports))
	// Wall-clock goes to the log (stderr), keeping stdout reproducible.
	log.Printf("fleet: sweep finished in %v", time.Since(start).Round(time.Millisecond))
}
