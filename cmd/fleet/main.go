// Command fleet simulates a multi-job training cluster sharing per-node
// NVMe arrays: a seeded heterogeneous job mix is scheduled under one or
// more policies, co-located jobs contend for array bandwidth, and the
// report projects per-drive endurance under the multi-tenant write
// pressure. Output is byte-identical for a given seed and flags,
// regardless of -workers.
//
// Usage:
//
//	fleet -nodes 16 -jobs 64 -seed 1 -policies fifo,sjf,backfill
//	      [-faults "death@30s:node0:dev1,drain@2m:node1:5m,ckpt=25"]
//
// -faults injects a deterministic failure schedule: device deaths
// (timed or wear-triggered) steal rebuild bandwidth from the survivors,
// degradation windows thin a node's array, and drains evict tenants who
// restart from their last checkpoint elsewhere. The same plan yields a
// byte-identical report for any -workers.
//
// Self-check mode replays a fixed faulted mix at several worker counts
// and exits non-zero unless the report hash is identical across them,
// faults visibly fired (deaths, restarts), and the healthy baseline
// still differs:
//
//	fleet -selfcheck
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ssdtrain"
	"ssdtrain/internal/exp"
	"ssdtrain/internal/units"
)

func main() {
	nodes := flag.Int("nodes", 16, "node count")
	gpus := flag.Int("gpus", 0, "GPUs per node (0 = default node's 4)")
	dramGiB := flag.Float64("dram-gib", -1, "per-node pinned host-memory budget in GiB (-1 = default node's 512, 0 = unmodeled)")
	hybrid := flag.Float64("hybrid", 0, "fraction of SSDTrain jobs converted to dram-first hybrid tenants")
	optim := flag.Float64("optim", 0, "fraction of SSDTrain jobs converted to optimizer-offload tenants (half sync, half overlap)")
	jobs := flag.Int("jobs", 64, "job count")
	seed := flag.Int64("seed", 1, "job-mix seed")
	policies := flag.String("policies", "fifo,sjf,backfill", "comma-separated scheduling policies")
	workers := flag.Int("workers", 0, "profiling/sweep worker pool size (0 = GOMAXPROCS); never affects results")
	adaptive := flag.Bool("adaptive", false, "adaptive profiling: stop each measurement once step time converges (same report, fewer simulated steps)")
	minSteps := flag.Int("steps-min", 40, "minimum training steps per job")
	maxSteps := flag.Int("steps-max", 400, "maximum training steps per job")
	spread := flag.Duration("spread", 0, "arrival window (0 = full backlog at t=0)")
	faultsFlag := flag.String("faults", "", "fault schedule, e.g. \"death@30s:node0:dev1,degrade@1m:node1:0.5:30s,drain@2m:node2:5m,ckpt=25\" (empty = none)")
	showJobs := flag.Bool("v", false, "also print the per-job schedule tables")
	selfcheck := flag.Bool("selfcheck", false, "replay a fixed faulted mix across worker counts, verify determinism and fault visibility, exit")
	flag.Parse()

	if *selfcheck {
		os.Exit(runSelfcheck())
	}
	if *jobs <= 0 {
		log.Fatalf("fleet: -jobs must be positive, got %d", *jobs)
	}
	plan, err := ssdtrain.ParseFaultPlan(*faultsFlag)
	if err != nil {
		log.Fatal(err)
	}
	var pols []ssdtrain.FleetPolicy
	for _, name := range strings.Split(*policies, ",") {
		p, err := ssdtrain.ParseFleetPolicy(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		pols = append(pols, p)
	}

	node := ssdtrain.DefaultFleetNode()
	if *gpus > 0 {
		node.GPUs = *gpus
	}
	if *dramGiB >= 0 {
		node.DRAM = units.Bytes(*dramGiB * float64(units.GiB))
	}
	cluster := ssdtrain.FleetClusterSpec{Nodes: *nodes, Node: node}
	mix := ssdtrain.FleetJobMix(ssdtrain.FleetMixConfig{
		Jobs:         *jobs,
		Seed:         *seed,
		MinSteps:     *minSteps,
		MaxSteps:     *maxSteps,
		SubmitSpread: *spread,
		MaxGPUs:      node.GPUs,
		HybridFrac:   *hybrid,
		OptimFrac:    *optim,
		FaultPlan:    plan,
	})

	fmt.Printf("fleet: %d jobs (seed %d) on %d nodes × %d GPUs, shared array %d× %s per node\n",
		*jobs, *seed, *nodes, node.GPUs, node.SSD.Count, node.SSD.Spec.Name)
	if !plan.Empty() {
		fmt.Printf("fleet: fault plan %s\n", plan)
	}
	fmt.Println()

	start := time.Now()
	reports, err := ssdtrain.FleetPolicySweepWith(ssdtrain.FleetPolicySweepConfig{
		Cluster: cluster, Jobs: mix, Policies: pols,
		Workers: *workers, AdaptiveProfiles: *adaptive,
		Faults: plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Println(r.Summary())
		fmt.Println(r.NodeTable())
		if *showJobs {
			fmt.Println(r.JobTable())
		}
	}
	fmt.Println(ssdtrain.FleetCompareTable(reports))
	// Wall-clock goes to the log (stderr), keeping stdout reproducible.
	log.Printf("fleet: sweep finished in %v", time.Since(start).Round(time.Millisecond))
}

// selfcheckPlan is the fixed fault schedule the CI smoke replays: a
// member death (rebuild steal), a degradation window and a temporary
// drain, early enough that a short mix is still running when they fire.
const selfcheckPlan = "death@10s:node0:dev1,degrade@15s:node1:0.5:30s,drain@25s:node2:2m,ckpt=25,penalty=10s"

// runSelfcheck is the CI smoke for the fault subsystem: one seeded
// faulted mix, replayed at several worker counts, must hash identically;
// the faults must visibly fire (deaths, restarts in the report); and the
// healthy baseline of the same mix must still differ. Any panic in the
// stack crashes the process, which CI reads as failure.
func runSelfcheck() int {
	node := ssdtrain.DefaultFleetNode()
	cluster := ssdtrain.FleetClusterSpec{Nodes: 4, Node: node}
	plan, err := ssdtrain.ParseFaultPlan(selfcheckPlan)
	if err != nil {
		log.Printf("selfcheck: parse plan: %v", err)
		return 1
	}
	mixCfg := ssdtrain.FleetMixConfig{
		Jobs: 14, Seed: 7, MinSteps: 20, MaxSteps: 120,
		MaxGPUs: node.GPUs, FaultPlan: plan,
	}
	mix := ssdtrain.FleetJobMix(mixCfg)
	render := func(reports []*ssdtrain.FleetReport) string {
		var b strings.Builder
		for _, r := range reports {
			b.WriteString(r.Summary())
			b.WriteString(r.NodeTable().String())
			b.WriteString(r.JobTable().String())
		}
		b.WriteString(ssdtrain.FleetCompareTable(reports).String())
		return b.String()
	}
	run := func(workers int, fp ssdtrain.FaultPlan) (string, []*ssdtrain.FleetReport, error) {
		reports, err := ssdtrain.FleetPolicySweepWith(ssdtrain.FleetPolicySweepConfig{
			Cluster: cluster, Jobs: mix,
			Policies: []ssdtrain.FleetPolicy{ssdtrain.FleetFIFO, ssdtrain.FleetSJF, ssdtrain.FleetBackfill},
			Workers:  workers, Faults: fp,
		})
		if err != nil {
			return "", nil, err
		}
		return render(reports), reports, nil
	}

	failed := false
	fail := func(format string, args ...any) {
		log.Printf("selfcheck FAIL: "+format, args...)
		failed = true
	}

	start := time.Now()
	var want string
	var faulted []*ssdtrain.FleetReport
	for _, workers := range []int{1, 2, 4} {
		got, reports, err := run(workers, plan)
		if err != nil {
			log.Printf("selfcheck: faulted sweep (workers=%d): %v", workers, err)
			return 1
		}
		hash := sha256.Sum256([]byte(got))
		log.Printf("selfcheck: workers=%d report hash %x", workers, hash[:8])
		if want == "" {
			want, faulted = got, reports
			continue
		}
		if got != want {
			fail("faulted report at workers=%d differs from workers=1", workers)
		}
	}
	deaths, drains, restarts := 0, 0, 0
	for _, r := range faulted {
		deaths += r.TotalDeaths
		drains += r.TotalDrains
		restarts += r.TotalRestarts
	}
	if deaths == 0 || drains == 0 {
		fail("fault plan never fired: %d deaths, %d drains", deaths, drains)
	}
	if restarts == 0 {
		fail("drain killed no jobs (0 restarts)")
	}
	healthy, _, err := run(0, ssdtrain.FaultPlan{})
	if err != nil {
		log.Printf("selfcheck: healthy baseline: %v", err)
		return 1
	}
	if healthy == want {
		fail("faulted report is identical to the healthy baseline")
	}
	ss := exp.GlobalSteadyStats()
	if ss.Hits == 0 {
		fail("steady-state fast path never fired across the profiled job shapes (hits = 0)")
	}
	if failed {
		return 1
	}
	log.Printf("selfcheck: OK (%d deaths, %d drains, %d restarts; identical hash at workers=1/2/4; healthy baseline differs) in %v",
		deaths, drains, restarts, time.Since(start).Round(time.Millisecond))
	return 0
}
