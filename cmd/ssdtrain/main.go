// Command ssdtrain runs one training measurement on the simulated testbed
// and prints step time, memory peaks and offload statistics — one Fig 6
// column plus its Table III row.
//
// Usage:
//
//	ssdtrain -model bert -hidden 12288 -layers 3 -batch 16 -strategy ssdtrain
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ssdtrain"
	"ssdtrain/internal/units"
)

func main() {
	model := flag.String("model", "bert", "architecture: gpt | bert | t5")
	hidden := flag.Int("hidden", 12288, "hidden dimension")
	layers := flag.Int("layers", 3, "transformer layer count")
	batch := flag.Int("batch", 16, "micro-batch size in sequences")
	strategy := flag.String("strategy", "ssdtrain", "placement: ssdtrain | no-offload | recompute | cpu-offload | hybrid | optim-offload")
	placement := flag.String("placement", "", "hybrid tier policy: ssd-only | dram-first | split (default dram-first)")
	optimKind := flag.String("optim-kind", "", "optimizer under -strategy optim-offload: adam | sgd (default adam)")
	schedule := flag.String("schedule", "", "step schedule under -strategy optim-offload: sync | overlap (default sync)")
	dramGiB := flag.Float64("dram-gib", 0, "pinned host-memory pool in GiB (hybrid DRAM rung / cpu-offload bound; 0 = none/unbounded)")
	splitRatio := flag.Float64("split-ratio", 0.5, "DRAM share of offloaded bytes under -placement split")
	steps := flag.Int("steps", 3, "measured steps after warmup")
	verify := flag.Bool("verify", false, "materialize payloads and checksum-verify reloads (slow)")
	flag.Parse()

	cfg := ssdtrain.PaperConfig(ssdtrain.Arch(*model), *hidden, *layers, *batch)
	run := ssdtrain.RunConfig{
		Model:        cfg,
		Strategy:     ssdtrain.Strategy(*strategy),
		Placement:    ssdtrain.Placement(*placement),
		DRAMCapacity: units.Bytes(*dramGiB * float64(units.GiB)),
		OptimKind:    *optimKind,
		Schedule:     *schedule,
		Steps:        *steps,
		Materialize:  *verify,
		Verify:       *verify,
	}
	if run.Placement == ssdtrain.PlacementSplit {
		run.SplitRatio = *splitRatio
	}
	res, err := ssdtrain.Train(run)
	if err != nil {
		log.Fatalf("ssdtrain: %v", err)
	}

	m := res.Measured
	fmt.Printf("config               %s, strategy %s\n", cfg, *strategy)
	fmt.Printf("step time            %v\n", res.StepTime().Round(time.Microsecond))
	fmt.Printf("model throughput     %s per GPU\n", res.Throughput())
	fmt.Printf("activation peak      %s\n", m.ActPeak)
	fmt.Printf("total memory peak    %s (GPU capacity %s)\n", m.TotalPeak, res.Config.GPU.Memory)
	fmt.Printf("compute stall        %v\n", m.Stats.ComputeStall.Round(time.Microsecond))
	fmt.Printf("weights              %s (+ equal gradients)\n", res.WeightBytes)
	if m.IO.Offloaded > 0 || m.IO.Kept > 0 {
		fmt.Printf("offloaded            %s of %s eligible (budget %s)\n", m.IO.Offloaded, res.EligibleBytes, res.PlannedBudget)
		fmt.Printf("kept in GPU memory   %s\n", m.IO.Kept)
		fmt.Printf("forwarded in flight  %s\n", m.IO.Forwarded)
		fmt.Printf("reloaded from target %s\n", m.IO.Reloaded)
		fmt.Printf("dedup hits           %d of %d packs\n", m.IO.DedupHits, m.IO.Packs)
		fmt.Printf("PCIe write bandwidth %s (required: offloaded ÷ half step)\n",
			units.BandwidthOf(m.IO.Offloaded, res.StepTime()/2))
		fmt.Printf("SSD peak residency   %s\n", res.SSDPeak)
	}
	if len(res.Tiers) > 1 {
		fmt.Printf("tier hierarchy       (%s placement)\n", res.Config.Placement)
		for _, tier := range res.Tiers {
			cap := "unbounded"
			if tier.Capacity > 0 {
				cap = tier.Capacity.String()
			}
			fmt.Printf("  %-4s %-9s  written %-10s read %-10s peak %-10s cap %s\n",
				tier.Kind, tier.Name, tier.Written, tier.Read, tier.Peak, cap)
		}
	}
	if o := res.Optim; o != nil {
		fmt.Printf("optimizer offload    %s states %s (%s schedule)\n", o.Kind, o.StateBytes, o.Schedule)
		fmt.Printf("  resident           %s DRAM, %s NVMe\n", o.DRAMResident, o.NVMeResident)
		fmt.Printf("  shuttle per step   %s stored, %s loaded\n", o.ShuttleWrite, o.ShuttleRead)
		fmt.Printf("  update engine busy %v\n", o.UpdateBusy.Round(time.Microsecond))
	}
}
