// Command ssdtrain runs one training measurement on the simulated testbed
// and prints step time, memory peaks and offload statistics — one Fig 6
// column plus its Table III row.
//
// Usage:
//
//	ssdtrain -model bert -hidden 12288 -layers 3 -batch 16 -strategy ssdtrain
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ssdtrain"
	"ssdtrain/internal/units"
)

func main() {
	model := flag.String("model", "bert", "architecture: gpt | bert | t5")
	hidden := flag.Int("hidden", 12288, "hidden dimension")
	layers := flag.Int("layers", 3, "transformer layer count")
	batch := flag.Int("batch", 16, "micro-batch size in sequences")
	strategy := flag.String("strategy", "ssdtrain", "placement: ssdtrain | no-offload | recompute | cpu-offload")
	steps := flag.Int("steps", 3, "measured steps after warmup")
	verify := flag.Bool("verify", false, "materialize payloads and checksum-verify reloads (slow)")
	flag.Parse()

	cfg := ssdtrain.PaperConfig(ssdtrain.Arch(*model), *hidden, *layers, *batch)
	res, err := ssdtrain.Train(ssdtrain.RunConfig{
		Model:       cfg,
		Strategy:    ssdtrain.Strategy(*strategy),
		Steps:       *steps,
		Materialize: *verify,
		Verify:      *verify,
	})
	if err != nil {
		log.Fatalf("ssdtrain: %v", err)
	}

	m := res.Measured
	fmt.Printf("config               %s, strategy %s\n", cfg, *strategy)
	fmt.Printf("step time            %v\n", res.StepTime().Round(time.Microsecond))
	fmt.Printf("model throughput     %s per GPU\n", res.Throughput())
	fmt.Printf("activation peak      %s\n", m.ActPeak)
	fmt.Printf("total memory peak    %s (GPU capacity %s)\n", m.TotalPeak, res.Config.GPU.Memory)
	fmt.Printf("compute stall        %v\n", m.Stats.ComputeStall.Round(time.Microsecond))
	fmt.Printf("weights              %s (+ equal gradients)\n", res.WeightBytes)
	if m.IO.Offloaded > 0 || m.IO.Kept > 0 {
		fmt.Printf("offloaded            %s of %s eligible (budget %s)\n", m.IO.Offloaded, res.EligibleBytes, res.PlannedBudget)
		fmt.Printf("kept in GPU memory   %s\n", m.IO.Kept)
		fmt.Printf("forwarded in flight  %s\n", m.IO.Forwarded)
		fmt.Printf("reloaded from target %s\n", m.IO.Reloaded)
		fmt.Printf("dedup hits           %d of %d packs\n", m.IO.DedupHits, m.IO.Packs)
		fmt.Printf("PCIe write bandwidth %s (required: offloaded ÷ half step)\n",
			units.BandwidthOf(m.IO.Offloaded, res.StepTime()/2))
		fmt.Printf("SSD peak residency   %s\n", res.SSDPeak)
	}
}
