// Command bench runs the hot-path benchmark workloads (the same ones
// behind `go test -bench 'BenchmarkEngine|BenchmarkCompiled|BenchmarkTiered|BenchmarkSession'`)
// through testing.Benchmark and writes four records: BENCH_hotpath.json
// (ns/op and allocs/op for the event engine and the compiled sweeps,
// next to the pre-PR baselines), BENCH_tier.json (the tiered DRAM+NVMe
// placement sweep), BENCH_session.json (the same share and tiered
// sweeps on reused exp.Sessions, with the fresh-Execute numbers measured
// in the same invocation on the same host as the baseline), and
// BENCH_trace.json (the flight recorder's disabled-path emit — gated
// allocation-free — and the traced share sweep against its same-run
// untraced baseline), and BENCH_steady.json (the 10k-step compiled
// share sweep on the steady-state fast path against its same-run
// full-simulation baseline, with result identity verified before
// timing), and BENCH_cluster.json (the planning cluster router's
// overhead: the per-request ring lookup, gated allocation-free, and the
// full hedged-request path over an in-memory replica pair), and
// BENCH_optim.json (the optimizer-offload residency sweep under both
// step schedules, overlap recorded against the same-run sync baseline),
// so the simulator's perf trajectory is recorded
// instead of anecdotal. The record schema lives in internal/benchfmt,
// shared with cmd/benchcheck (the CI validator and regression gate).
//
// The -cpuprofile and -memprofile flags capture pprof profiles of the
// benchmark run, so hot-path regressions can be diagnosed without
// editing benchmark code.
//
// Usage:
//
//	bench [-o BENCH_hotpath.json] [-tier-o BENCH_tier.json] [-session-o BENCH_session.json]
//	      [-trace-o BENCH_trace.json] [-steady-o BENCH_steady.json] [-cluster-o BENCH_cluster.json]
//	      [-optim-o BENCH_optim.json] [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"ssdtrain/internal/benchfmt"
	"ssdtrain/internal/cluster"
	"ssdtrain/internal/exp"
	"ssdtrain/internal/hotbench"
)

// Baselines measured at the seed of this PR (commit d58ffb6) on the CI
// reference machine class: the engine used container/heap with a fresh
// Event+closure per schedule, and the sweeps ran per-point exp.Run with
// fixed steps. The ns/op ratios are meaningful only on comparable
// hardware — on a different machine they mix hardware speed into the
// comparison (the emitted JSON says so); allocs/op is machine-
// independent and is the durable part of the record. To re-anchor on new
// hardware, re-measure the baseline commit there and update this table.
var baselines = map[string]benchfmt.Baseline{
	"engine_schedule":      {NsPerOp: 412.8, AllocsPerOp: 1, Commit: "d58ffb6"},
	"engine_steady_state":  {NsPerOp: 118.2, AllocsPerOp: 1, Commit: "d58ffb6"},
	"compiled_sweep":       {NsPerOp: 25988057, AllocsPerOp: 221509, Commit: "d58ffb6"},
	"compiled_share_sweep": {NsPerOp: 9409902, AllocsPerOp: 93492, Commit: "d58ffb6"},
}

func measure(name string, fn func(b *testing.B)) benchfmt.Measurement {
	r := testing.Benchmark(fn)
	m := benchfmt.Measurement{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if b, ok := baselines[name]; ok {
		m.CompareTo(b)
	}
	return m
}

// emit writes the report to path ("-" for stdout) and prints its summary
// rows to w. Callers pass os.Stderr for w whenever any report goes to
// stdout, keeping the stdout stream pure JSON for machine consumers.
func emit(w io.Writer, path string, report benchfmt.Report, order []string) {
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if path == "-" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(path, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	for _, name := range order {
		m := report.Results[name]
		fmt.Fprintf(w, "%-22s %12.1f ns/op %8d allocs/op", name, m.NsPerOp, m.AllocsPerOp)
		if m.Baseline != nil {
			fmt.Fprintf(w, "   %5.2fx faster vs %s, ", m.Speedup, m.Baseline.Commit)
			if m.AllocsPerOp == 0 && m.Baseline.AllocsPerOp > 0 {
				fmt.Fprintf(w, "allocation-free (was %d/op)", m.Baseline.AllocsPerOp)
			} else {
				fmt.Fprintf(w, "%.1fx fewer allocs", m.AllocsRatio)
			}
		}
		fmt.Fprintln(w)
	}
	if path != "-" {
		fmt.Fprintf(w, "wrote %s\n", path)
	}
}

func main() {
	out := flag.String("o", "BENCH_hotpath.json", "output file (- for stdout)")
	tierOut := flag.String("tier-o", "BENCH_tier.json", "tiered-placement output file (- for stdout)")
	sessionOut := flag.String("session-o", "BENCH_session.json", "session-reuse output file (- for stdout)")
	traceOut := flag.String("trace-o", "BENCH_trace.json", "flight-recorder output file (- for stdout)")
	steadyOut := flag.String("steady-o", "BENCH_steady.json", "steady-state fast-path output file (- for stdout)")
	optimOut := flag.String("optim-o", "BENCH_optim.json", "optimizer-offload schedule output file (- for stdout)")
	clusterOut := flag.String("cluster-o", "BENCH_cluster.json", "cluster router overhead output file (- for stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the benchmark run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile taken after the benchmarks to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	report := benchfmt.Report{
		Note:    "hot-path perf record: event engine + compiled sweeps; baselines measured pre-refactor at d58ffb6 (seed exp.Run per point, container/heap engine); ns/op speedups are valid only on hardware comparable to the baseline host — allocs/op ratios are machine-independent",
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		Results: map[string]benchfmt.Measurement{},
	}

	report.Results["engine_schedule"] = measure("engine_schedule", func(b *testing.B) {
		b.ReportAllocs()
		hotbench.EngineSchedule(b.N)
	})
	report.Results["engine_steady_state"] = measure("engine_steady_state", func(b *testing.B) {
		b.ReportAllocs()
		hotbench.EngineSteadyState(b.N)
	})
	report.Results["compiled_sweep"] = measure("compiled_sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := hotbench.BudgetSweep(); err != nil {
				b.Fatal(err)
			}
		}
	})
	report.Results["compiled_share_sweep"] = measure("compiled_share_sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := hotbench.ShareSweep(); err != nil {
				b.Fatal(err)
			}
		}
	})

	var rows io.Writer = os.Stdout
	if *out == "-" || *tierOut == "-" || *sessionOut == "-" || *traceOut == "-" || *steadyOut == "-" || *clusterOut == "-" || *optimOut == "-" {
		rows = os.Stderr
	}
	emit(rows, *out, report, []string{"engine_schedule", "engine_steady_state", "compiled_sweep", "compiled_share_sweep"})

	tier := benchfmt.Report{
		Note:    "tiered-placement hot path: 8-point DRAM-capacity sweep of a dram-first DRAM+NVMe hybrid at a quarter array share through one compiled plan — the per-profile cost a fleet of hybrid tenants pays; first recorded in the PR that introduced the hierarchy, so there is no pre-refactor baseline",
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		Results: map[string]benchfmt.Measurement{},
	}
	tier.Results["tiered_sweep"] = measure("tiered_sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := hotbench.TieredSweep(); err != nil {
				b.Fatal(err)
			}
		}
	})
	emit(rows, *tierOut, tier, []string{"tiered_sweep"})

	// Session-reuse record: the same share and tiered sweep points on one
	// reused exp.Session per sweep. The baselines are the fresh-Execute
	// measurements taken moments ago in this same process, so the
	// fresh-vs-session comparison is same-host, same-run by construction.
	session := benchfmt.Report{
		Note:    "session-reuse hot path: the share and tiered sweeps re-executed on one recycled exp.Session per sweep (arena built once, reset in place per point); baselines are the fresh-Execute numbers measured in the same run on the same host, so both ns/op and allocs/op ratios are directly comparable",
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		Results: map[string]benchfmt.Measurement{},
	}
	sessionBench := func(newSession func() (*exp.Session, error), sweep func(*exp.Session) error) func(b *testing.B) {
		return func(b *testing.B) {
			hotbench.SessionSweepBench(b, newSession, sweep)
		}
	}
	mShare := measure("session_share_sweep", sessionBench(hotbench.NewShareSweepSession, hotbench.SessionShareSweep))
	mShare.CompareTo(benchfmt.Baseline{
		NsPerOp:     report.Results["compiled_share_sweep"].NsPerOp,
		AllocsPerOp: report.Results["compiled_share_sweep"].AllocsPerOp,
		Commit:      "same-run fresh Execute",
	})
	session.Results["session_share_sweep"] = mShare
	mTier := measure("session_tiered_sweep", sessionBench(hotbench.NewTieredSweepSession, hotbench.SessionTieredSweep))
	mTier.CompareTo(benchfmt.Baseline{
		NsPerOp:     tier.Results["tiered_sweep"].NsPerOp,
		AllocsPerOp: tier.Results["tiered_sweep"].AllocsPerOp,
		Commit:      "same-run fresh Execute",
	})
	session.Results["session_tiered_sweep"] = mTier
	emit(rows, *sessionOut, session, []string{"session_share_sweep", "session_tiered_sweep"})

	// Flight-recorder record: what tracing costs. The disabled-emit
	// micro-bench pins the zero-overhead-when-disabled contract
	// (allocation-free, gated in CI); the traced share sweep measures the
	// full enabled-path cost against the untraced sweep run moments ago on
	// the same reused session, so the overhead ratio is same-host,
	// same-arena by construction.
	traceRep := benchfmt.Report{
		Note:    "flight-recorder cost record: the disabled recorder's per-span emit (must stay allocation-free — every simulated resource calls it whether or not anyone is tracing) and the share sweep re-executed with tracing on, against the same-run untraced sweep; traced overhead buys a full span capture + snapshot per point",
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		Results: map[string]benchfmt.Measurement{},
	}
	traceRep.Results["recorder_disabled_emit"] = measure("recorder_disabled_emit", func(b *testing.B) {
		b.ReportAllocs()
		hotbench.RecorderDisabledEmit(b.N)
	})
	mUntraced := measure("untraced_share_sweep", sessionBench(hotbench.NewShareSweepSession, hotbench.SessionShareSweep))
	traceRep.Results["untraced_share_sweep"] = mUntraced
	mTraced := measure("traced_share_sweep", sessionBench(hotbench.NewShareSweepSession, hotbench.SessionTracedShareSweep))
	mTraced.CompareTo(benchfmt.Baseline{
		NsPerOp:     mUntraced.NsPerOp,
		AllocsPerOp: mUntraced.AllocsPerOp,
		Commit:      "same-run untraced Execute",
	})
	traceRep.Results["traced_share_sweep"] = mTraced
	emit(rows, *traceOut, traceRep, []string{"recorder_disabled_emit", "untraced_share_sweep", "traced_share_sweep"})

	// Steady-state record: what the analytic fast path buys on a long run.
	// Both measurements drive the identical 10k-step share sweep through
	// one compiled plan; only the SteadyState knob differs, and result
	// identity is re-verified here before anything is timed, so the
	// speedup is same-run, same-plan, and provably not bought with
	// different answers. The gate requires at least 10x.
	steadyPlan, err := hotbench.NewSteadyPlan()
	if err != nil {
		log.Fatal(err)
	}
	if err := hotbench.SteadyShareSweepVerify(steadyPlan); err != nil {
		log.Fatal(err)
	}
	steady := benchfmt.Report{
		Note:    "steady-state fast path: the 4-point bandwidth-share sweep at 10000 fixed steps through one compiled plan, extrapolating analytically once the per-step event signature converges, against the same-run full simulation of the identical sweep; results verified identical before timing, so the speedup changes no answers",
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		Results: map[string]benchfmt.Measurement{},
	}
	mFull := measure("fullsim_share_sweep_10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := hotbench.FullSimShareSweep(steadyPlan); err != nil {
				b.Fatal(err)
			}
		}
	})
	steady.Results["fullsim_share_sweep_10k"] = mFull
	mSteady := measure("steady_share_sweep_10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := hotbench.SteadyShareSweep(steadyPlan); err != nil {
				b.Fatal(err)
			}
		}
	})
	mSteady.CompareTo(benchfmt.Baseline{
		NsPerOp:     mFull.NsPerOp,
		AllocsPerOp: mFull.AllocsPerOp,
		Commit:      "same-run full simulation",
	})
	steady.Results["steady_share_sweep_10k"] = mSteady
	emit(rows, *steadyOut, steady, []string{"fullsim_share_sweep_10k", "steady_share_sweep_10k"})

	// Optimizer-offload record: what the step schedule costs. Both
	// measurements drive the identical 4-point residency sweep (a fully
	// DRAM-resident probe plus three spill fractions) on one reused
	// session; only the Schedule knob differs, so the sync-vs-overlap
	// ratio is same-host, same-arena by construction. Overlap trades the
	// post-backward barrier for per-weight stalls in fwd(t+1): it wins
	// while the working set is DRAM-resident and loses once NVMe shuttle
	// traffic contends with the next step's gradient stores, so the
	// recorded ratio hovers near 1 — the gate defends the sweep's cost,
	// not a speedup.
	optimRep := benchfmt.Report{
		Note:    "optimizer-offload schedule cost: the 4-point residency sweep (fully resident probe + three spill fractions) under the sync barrier and again with the optimizer pipeline draining into fwd(t+1), on one reused session; the overlap baseline is the same-run sync sweep, so the ratio isolates the schedule — near 1 by design (overlap wins DRAM-resident, loses NVMe-bound)",
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		Results: map[string]benchfmt.Measurement{},
	}
	mOptimSync := measure("optim_sync_sweep", sessionBench(hotbench.NewOptimSweepSession, hotbench.SessionOptimSyncSweep))
	optimRep.Results["optim_sync_sweep"] = mOptimSync
	mOptimOverlap := measure("optim_overlap_sweep", sessionBench(hotbench.NewOptimSweepSession, hotbench.SessionOptimOverlapSweep))
	mOptimOverlap.CompareTo(benchfmt.Baseline{
		NsPerOp:     mOptimSync.NsPerOp,
		AllocsPerOp: mOptimSync.AllocsPerOp,
		Commit:      "same-run sync schedule",
	})
	optimRep.Results["optim_overlap_sweep"] = mOptimOverlap
	emit(rows, *optimOut, optimRep, []string{"optim_sync_sweep", "optim_overlap_sweep"})

	// Cluster-router record: what the resilient front costs per request.
	// The ring lookup is the per-request shard decision and must stay
	// allocation-free; the hedged-request bench drives the whole router
	// handler — shard key decode, ring walk, primary forward, hedge fire,
	// hedge win, stale-cache record — over an in-memory replica pair whose
	// shard owner is rigged slow, so every request exercises the full
	// failover machinery. Its ns/op is bounded below by the hedge delay
	// plus the host's timer granularity (coarse-tick VMs round small
	// timers up to ~1ms); allocs/op is the durable, machine-independent
	// number the gate defends.
	clusterRep := benchfmt.Report{
		Note:    "cluster router overhead: the per-request consistent-hash lookup (owner + successor walk over 8 replicas x 128 vnodes, allocation-free) and the full hedged-request path through the router handler against an in-memory replica pair with a rigged-slow shard owner; hedged ns/op is dominated by hedge delay + timer granularity — allocs/op is the durable metric",
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		Results: map[string]benchfmt.Measurement{},
	}
	rb := cluster.NewRingBench(8)
	clusterRep.Results["ring_lookup"] = measure("ring_lookup", func(b *testing.B) {
		b.ReportAllocs()
		rb.Lookup(b.N)
	})
	hb, err := cluster.NewHedgeBench()
	if err != nil {
		log.Fatal(err)
	}
	clusterRep.Results["hedged_request"] = measure("hedged_request", func(b *testing.B) {
		b.ReportAllocs()
		if err := hb.Do(b.N); err != nil {
			b.Fatal(err)
		}
	})
	emit(rows, *clusterOut, clusterRep, []string{"ring_lookup", "hedged_request"})

	// Pool observability: run the share sweep twice through one
	// SessionPool (the serve-layer execution path) and print its counters,
	// so the recorded run also witnesses arena recycling end to end.
	sp := exp.NewSessionPool(0)
	for i := 0; i < 2; i++ {
		if err := hotbench.PooledShareSweep(sp); err != nil {
			log.Fatal(err)
		}
	}
	st := sp.Stats()
	fmt.Fprintf(rows, "session pool            %d hits / %d misses / %d evictions, %.0f%% hit rate (%d idle)\n",
		st.Hits, st.Misses, st.Evictions, st.HitRate()*100, st.Idle)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}
}
