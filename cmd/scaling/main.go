// Command scaling reproduces the trend analyses: Fig 1 (GPU compute vs
// memory vs LLM size growth), the §II-B scaling-law argument, and Fig 8b
// (per-GPU write bandwidth under upscaling).
package main

import (
	"flag"
	"fmt"
	"time"

	"ssdtrain"
	"ssdtrain/internal/perfmodel"
	"ssdtrain/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "which figure: 1 | 8b | all")
	flag.Parse()

	if *fig == "1" || *fig == "all" {
		printFig1()
	}
	if *fig == "8b" || *fig == "all" {
		printFig8b()
	}
}

func printFig1() {
	f := ssdtrain.Fig1()
	t := trace.NewTable("Fig 1 — growth trends (fitted annual factors)",
		"series", "×/year", "doubling time", "R²(log)")
	show := func(name string, g perfmodel.GrowthFit) {
		t.AddRow(name, fmt.Sprintf("%.2f", g.AnnualFactor),
			fmt.Sprintf("%.1f months", g.DoublingTime.Hours()/(24*30.44)),
			fmt.Sprintf("%.2f", g.R2))
	}
	show("GPU FP16 throughput", f.Throughput)
	show("GPU memory capacity", f.Memory)
	show("LLM model size", f.ModelSize)
	fmt.Print(t)
	fmt.Printf("\nMemory capacity grows at %.0f%% of the compute growth rate — the\n", 100*f.MemoryVsThroughput)
	fmt.Println("paper's Fig 1 gap (it reports ~41% on its Epoch-AI dataset).")

	law := perfmodel.ChinchillaScaling()
	fmt.Printf("\n§II-B scaling law: S_activations ∝ C^%.2f vs S_others ∝ C^%.2f —\n",
		law.ActivationExponent, law.OtherExponent)
	fmt.Println("activations dominate memory growth as compute scales.")
}

func printFig8b() {
	rows := ssdtrain.Fig8b()
	ref := ssdtrain.Fig8bReference()
	t := trace.NewTable("Fig 8b — per-GPU write bandwidth under upscaling (3-layer BERT H12288 basis)",
		"config", "GPUs", "step time", "write BW (GB/s)", "vs 2-GPU ref")
	for _, r := range rows {
		t.AddRow(r.Case.Label, r.Case.Par.GPUs(),
			r.Proj.StepTime.Round(time.Millisecond),
			fmt.Sprintf("%.2f", r.Proj.WriteBandwidth.GBpsF()),
			fmt.Sprintf("%.0f%%", 100*r.Proj.WriteBandwidth.GBpsF()/ref.WriteBandwidth.GBpsF()))
	}
	fmt.Print(t)
	fmt.Printf("\n2-GPU reference (orange dashed line): %.2f GB/s\n", ref.WriteBandwidth.GBpsF())
	fmt.Println("Claim to check: upscaled configurations need no more write bandwidth")
	fmt.Println("per GPU than the reference — LLM scaling is weak scaling (§IV-D).")
}
