// Command reproduce regenerates every measured artifact of the paper's
// evaluation in one run: Fig 6 (step time + activation peak), Table III
// (offload amount vs model estimate), Fig 8a (micro-batch breakdown), and
// Table I (the feature matrix). The projection artifacts (Figs 1, 5, 8b)
// are printed by cmd/scaling and cmd/lifespan.
package main

import (
	"fmt"

	"ssdtrain"
)

func main() {
	rows, err := ssdtrain.Fig6(16)
	if err != nil {
		panic(err)
	}
	fmt.Println(ssdtrain.Fig6Table(rows))

	t3, err := ssdtrain.Table3()
	if err != nil {
		panic(err)
	}
	fmt.Println("== Table III — offloaded amount, model estimate, PCIe write bandwidth (BERT, B16) ==")
	for _, r := range t3 {
		fmt.Printf("H%-6d L%d: offloaded %6.2f GB   estimate %6.2f GB   write BW %6.2f GB/s\n",
			r.Hidden, r.Layers, r.Offloaded.GBf(), r.Estimate.GBf(), r.WriteBW.GBpsF())
	}
	fmt.Println()

	f8a, err := ssdtrain.Fig8a(nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("== Fig 8a — throughput boost from larger micro-batches (BERT H12288 L3, vs B1) ==")
	for _, r := range f8a {
		fmt.Printf("B%-3d total %5.1f%%  = weights-update saving %5.1f%% + compute efficiency %5.1f%%\n",
			r.Batch, r.Improvement*100, r.UpdateSaving*100, r.ComputeEfficiency*100)
	}
	fmt.Println()

	fmt.Println(ssdtrain.Table1())
}
