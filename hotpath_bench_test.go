// Hot-path benchmarks: the compiled-plan sweep paths whose pre-PR
// baselines are recorded in BENCH_hotpath.json (see cmd/bench, which
// runs these same workloads via internal/hotbench). The baselines were
// measured at the seed of this PR (commit d58ffb6) with the same
// workloads running through per-point exp.Run: graph rebuilt, vectors
// recomputed, budget re-planned, and all Steps simulated for every
// sweep point.
package ssdtrain

import (
	"testing"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/hotbench"
)

// BenchmarkCompiledSweep runs a 9-point offload-budget sweep (one planned
// run plus eight budget fractions, Steps=12) through Compile once +
// Execute per point with adaptive steady-state detection.
// Pre-PR baseline (d58ffb6): 25.99 ms/op, 221509 allocs/op.
func BenchmarkCompiledSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := hotbench.BudgetSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledShareSweep runs a 4-point bandwidth-share sweep
// (fleet-style contention profiling, Steps=12) through one compiled plan.
// Pre-PR baseline (d58ffb6): 9.41 ms/op, 93492 allocs/op.
func BenchmarkCompiledShareSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := hotbench.ShareSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTieredSweep runs the 8-point DRAM-capacity placement sweep (a
// dram-first hybrid at a quarter array share, Steps=12) through one
// compiled plan — the hot path behind fleet profiling of hybrid tenants.
// Recorded to BENCH_tier.json by cmd/bench.
func BenchmarkTieredSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := hotbench.TieredSweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionShareSweep runs the 4-point bandwidth-share sweep on
// one reused exp.Session: the arena (runtime, graph, offload stack) is
// built once outside the loop and reset in place per point. Recorded to
// BENCH_session.json by cmd/bench next to the fresh-Execute baseline.
func BenchmarkSessionShareSweep(b *testing.B) {
	hotbench.SessionSweepBench(b, hotbench.NewShareSweepSession, hotbench.SessionShareSweep)
}

// BenchmarkSessionTieredSweep runs the 8-point DRAM-capacity placement
// sweep on one reused exp.Session (dram-first hybrid at a quarter array
// share) — the fleet profiler's hot path with arena recycling.
func BenchmarkSessionTieredSweep(b *testing.B) {
	hotbench.SessionSweepBench(b, hotbench.NewTieredSweepSession, hotbench.SessionTieredSweep)
}

// BenchmarkOptimSyncSweep runs the 4-point optimizer-residency sweep on
// one reused exp.Session under the classic post-backward barrier.
// Recorded to BENCH_optim.json by cmd/bench as the overlap schedule's
// same-run baseline.
func BenchmarkOptimSyncSweep(b *testing.B) {
	hotbench.SessionSweepBench(b, hotbench.NewOptimSweepSession, hotbench.SessionOptimSyncSweep)
}

// BenchmarkOptimOverlapSweep runs the identical residency points with
// the optimizer pipeline draining into fwd(t+1) instead of a step
// barrier (GreedySnake's schedule).
func BenchmarkOptimOverlapSweep(b *testing.B) {
	hotbench.SessionSweepBench(b, hotbench.NewOptimSweepSession, hotbench.SessionOptimOverlapSweep)
}

// BenchmarkRecorderDisabledEmit measures the flight recorder's per-span
// emit with the recorder off — the cost every simulated resource pays on
// an untraced run. BENCH_trace.json's gate defends allocation-free.
func BenchmarkRecorderDisabledEmit(b *testing.B) {
	b.ReportAllocs()
	hotbench.RecorderDisabledEmit(b.N)
}

// BenchmarkTracedShareSweep runs the 4-point bandwidth-share sweep on one
// reused exp.Session with the flight recorder capturing — the enabled-path
// cost recorded to BENCH_trace.json against the same-run untraced sweep.
func BenchmarkTracedShareSweep(b *testing.B) {
	hotbench.SessionSweepBench(b, hotbench.NewShareSweepSession, hotbench.SessionTracedShareSweep)
}

// BenchmarkSteadyShareSweep runs the 4-point bandwidth-share sweep at
// 10000 fixed steps through one compiled plan on the steady-state fast
// path: each point simulates until two consecutive steps produce
// identical event signatures, then extrapolates the rest analytically.
// Recorded to BENCH_steady.json by cmd/bench against the same-run full
// simulation (gated at ≥10x with verified-identical results).
func BenchmarkSteadyShareSweep(b *testing.B) {
	plan, err := hotbench.NewSteadyPlan()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := hotbench.SteadyShareSweep(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDedupSweep measures the exp.Sweep dedup layer on a batch with
// heavy repetition (16 requested points, 4 distinct), the shape fleet
// mixes produce. Sequential workers isolate dedup from parallelism.
func BenchmarkDedupSweep(b *testing.B) {
	b.ReportAllocs()
	base := hotbench.SweepBase()
	shares := []float64{0, 0.5, 0.25, 0.125}
	var cfgs []exp.RunConfig
	for i := 0; i < 16; i++ {
		cfg := base
		cfg.SSDBandwidthShare = shares[i%len(shares)]
		cfgs = append(cfgs, cfg)
	}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Sweep(1, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}
