package parallel

import (
	"testing"
	"time"

	"ssdtrain/internal/units"
)

func TestSpecBasics(t *testing.T) {
	s := Spec{TP: 8, PP: 16, DP: 3, MicroBatch: 2, MicroBatches: 256}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.GPUs() != 384 {
		t.Errorf("gpus = %d", s.GPUs())
	}
	if s.GlobalBatch() != 1536 {
		t.Errorf("global batch = %d", s.GlobalBatch())
	}
	bad := s
	bad.TP = 0
	if bad.Validate() == nil {
		t.Error("zero TP accepted")
	}
	bad = s
	bad.ZeRO = 7
	if bad.Validate() == nil {
		t.Error("bad ZeRO stage accepted")
	}
}

func TestBubbleFraction(t *testing.T) {
	s := Spec{TP: 1, PP: 12, DP: 1, MicroBatch: 4, MicroBatches: 8}
	// (p-1)/(m+p-1) = 11/19 ≈ 0.579 — the paper's §IV-D formula; with
	// BLOOM's 32-sample rank batch and micro-batch 4 the ideal bubble is
	// at least 11.5% even for very large m.
	if got := s.BubbleFraction(); got < 0.578 || got > 0.58 {
		t.Errorf("bubble = %v", got)
	}
	s.PP = 1
	if s.BubbleFraction() != 0 {
		t.Error("no bubble without PP")
	}
}

func TestZeROMemorySharding(t *testing.T) {
	m := MemoryModel{Params: 1e9, OptimBytesPerParam: 12}
	base := Spec{TP: 1, PP: 1, DP: 8, MicroBatch: 1, MicroBatches: 1}

	w0, g0, o0 := m.PerGPU(base)
	if w0 != 2*units.GB || g0 != 2*units.GB || o0 != 12*units.GB {
		t.Errorf("stage0: %v %v %v", w0, g0, o0)
	}
	s1 := base
	s1.ZeRO = ZeRO1
	_, _, o1 := m.PerGPU(s1)
	if o1 != o0/8 {
		t.Errorf("stage1 optimizer = %v", o1)
	}
	s2 := base
	s2.ZeRO = ZeRO2
	_, g2, _ := m.PerGPU(s2)
	if g2 != g0/8 {
		t.Errorf("stage2 grads = %v", g2)
	}
	s3 := base
	s3.ZeRO = ZeRO3
	w3, g3, o3 := m.PerGPU(s3)
	if w3 != w0/8 || g3 != g0/8 || o3 != o0/8 {
		t.Errorf("stage3: %v %v %v", w3, g3, o3)
	}
	// TP/PP shard everything regardless of ZeRO.
	tp := Spec{TP: 2, PP: 2, DP: 1, MicroBatch: 1, MicroBatches: 1}
	wt, _, _ := m.PerGPU(tp)
	if wt != w0/4 {
		t.Errorf("tp/pp weights = %v", wt)
	}
}

func TestCollectives(t *testing.T) {
	f := DefaultA100Fabric()
	// Single rank: free.
	if f.AllReduceNVLink(units.GB, 1) != 0 || f.AllReduceIB(units.GB, 1) != 0 {
		t.Error("single-rank collective not free")
	}
	// All-reduce moves 2(n-1)/n, all-gather (n-1)/n: AR ≈ 2× AG.
	ar := f.AllReduceIB(units.GB, 8)
	ag := f.AllGatherIB(units.GB, 8)
	ratio := float64(ar-f.InterconnectLatency) / float64(ag-f.InterconnectLatency)
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("AR/AG = %v", ratio)
	}
	// NVLink is much faster than IB for the same payload.
	if f.AllReduceNVLink(units.GB, 8) >= ar {
		t.Error("NVLink not faster than IB")
	}
	// More ranks move asymptotically more data.
	if f.AllReduceIB(units.GB, 128) <= f.AllReduceIB(units.GB, 2) {
		t.Error("ring cost not increasing with ranks")
	}
	// P2P transfers the payload once.
	p2p := f.P2P(units.GB)
	secs := float64(units.GB) / (0.75 * 25e9)
	want := f.InterconnectLatency + time.Duration(secs*float64(time.Second))
	if diff := p2p - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("p2p = %v want ≈ %v", p2p, want)
	}
}
