package parallel

import (
	"time"

	"ssdtrain/internal/units"
)

// Fabric describes the communication substrate available to a GPU.
type Fabric struct {
	// NVLink is per-GPU aggregate NVLink bandwidth (intra-node, TP).
	NVLink units.Bandwidth
	// Interconnect is per-GPU inter-node bandwidth (IB/RoCE; DP and PP).
	Interconnect units.Bandwidth
	// NVLinkLatency/InterconnectLatency are per-operation latencies.
	NVLinkLatency       time.Duration
	InterconnectLatency time.Duration
	// Efficiency derates achievable collective bandwidth (NCCL typically
	// reaches 70–85% of line rate on large payloads).
	Efficiency float64
}

// DefaultA100Fabric is an A100 cluster node: NVLink 600 GB/s, 8×200 Gb/s
// HDR InfiniBand per node (≈25 GB/s per GPU on 8-GPU nodes).
func DefaultA100Fabric() Fabric {
	return Fabric{
		NVLink:              600 * units.GBps,
		Interconnect:        25 * units.GBps,
		NVLinkLatency:       5 * time.Microsecond,
		InterconnectLatency: 15 * time.Microsecond,
		Efficiency:          0.75,
	}
}

func (f Fabric) eff(bw units.Bandwidth) units.Bandwidth {
	e := f.Efficiency
	if e <= 0 || e > 1 {
		e = 0.75
	}
	return units.Bandwidth(float64(bw) * e)
}

// ringMoved returns the per-rank traffic factor of a ring collective over
// n ranks: all-reduce moves 2(n-1)/n of the payload, all-gather and
// reduce-scatter move (n-1)/n.
func ringMoved(payload units.Bytes, n int, allReduce bool) units.Bytes {
	if n <= 1 {
		return 0
	}
	factor := float64(n-1) / float64(n)
	if allReduce {
		factor *= 2
	}
	return units.Bytes(factor * float64(payload))
}

// AllReduceNVLink is a TP all-reduce inside the node.
func (f Fabric) AllReduceNVLink(payload units.Bytes, ranks int) time.Duration {
	if ranks <= 1 {
		return 0
	}
	return f.NVLinkLatency + f.eff(f.NVLink).TimeFor(ringMoved(payload, ranks, true))
}

// AllReduceIB is a DP gradient all-reduce across nodes.
func (f Fabric) AllReduceIB(payload units.Bytes, ranks int) time.Duration {
	if ranks <= 1 {
		return 0
	}
	return f.InterconnectLatency + f.eff(f.Interconnect).TimeFor(ringMoved(payload, ranks, true))
}

// AllGatherIB is a ZeRO-3 parameter all-gather across data-parallel ranks.
func (f Fabric) AllGatherIB(payload units.Bytes, ranks int) time.Duration {
	if ranks <= 1 {
		return 0
	}
	return f.InterconnectLatency + f.eff(f.Interconnect).TimeFor(ringMoved(payload, ranks, false))
}

// ReduceScatterIB is a ZeRO gradient reduce-scatter across ranks.
func (f Fabric) ReduceScatterIB(payload units.Bytes, ranks int) time.Duration {
	return f.AllGatherIB(payload, ranks)
}

// P2P is a pipeline-parallel stage-to-stage activation transfer.
func (f Fabric) P2P(payload units.Bytes) time.Duration {
	return f.InterconnectLatency + f.eff(f.Interconnect).TimeFor(payload)
}
