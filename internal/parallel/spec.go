// Package parallel models the three LLM parallelism levels (§II-A) —
// tensor, pipeline and data parallelism — plus ZeRO's sharded data
// parallelism: device counts, collective communication costs over NVLink
// and the inter-node fabric, and per-GPU memory accounting by ZeRO stage.
// The performance model (Fig 5, Fig 8b) and the upscaling projections are
// built on it.
package parallel

import (
	"fmt"

	"ssdtrain/internal/units"
)

// ZeROStage selects what ZeRO shards across data-parallel ranks (§II-A).
type ZeROStage int

// ZeRO stages.
const (
	// ZeROOff replicates optimizer state, gradients and parameters.
	ZeROOff ZeROStage = 0
	// ZeRO1 shards optimizer states.
	ZeRO1 ZeROStage = 1
	// ZeRO2 also shards gradients.
	ZeRO2 ZeROStage = 2
	// ZeRO3 also shards parameters (DeepSpeed stage-3, the paper's
	// "ZeRO3" configurations in Fig 5).
	ZeRO3 ZeROStage = 3
)

// Spec is a parallelism layout.
type Spec struct {
	TP   int // tensor-parallel degree (intra-node, NVLink)
	PP   int // pipeline-parallel degree
	DP   int // data-parallel degree
	ZeRO ZeROStage
	// MicroBatch is the per-micro-batch sequence count; MicroBatches is
	// how many run per step (gradient accumulation / pipeline fill).
	MicroBatch   int
	MicroBatches int
	// SeqParallel enables Megatron sequence parallelism: the LayerNorm and
	// dropout activations shard across TP ranks too, taking the per-layer
	// activation footprint from sbh(10 + 24/t) to sbh·34/t (Korthikanti
	// et al.). The Megatron-LM measurements the paper's Fig 5 builds on
	// use it.
	SeqParallel bool
}

// GPUs returns the total device count.
func (s Spec) GPUs() int { return s.TP * s.PP * s.DP }

// GlobalBatch returns sequences per step.
func (s Spec) GlobalBatch() int { return s.MicroBatch * s.MicroBatches * s.DP }

// Validate checks the layout.
func (s Spec) Validate() error {
	if s.TP <= 0 || s.PP <= 0 || s.DP <= 0 {
		return fmt.Errorf("parallel: degrees must be positive: %+v", s)
	}
	if s.MicroBatch <= 0 || s.MicroBatches <= 0 {
		return fmt.Errorf("parallel: micro-batch shape must be positive: %+v", s)
	}
	if s.ZeRO < ZeROOff || s.ZeRO > ZeRO3 {
		return fmt.Errorf("parallel: unknown ZeRO stage %d", s.ZeRO)
	}
	return nil
}

// String renders the layout.
func (s Spec) String() string {
	z := ""
	if s.ZeRO != ZeROOff {
		z = fmt.Sprintf(" zero%d", int(s.ZeRO))
	}
	return fmt.Sprintf("tp%d pp%d dp%d%s mb%d×%d", s.TP, s.PP, s.DP, z, s.MicroBatch, s.MicroBatches)
}

// BubbleFraction returns the ideal 1F1B pipeline bubble fraction
// (p-1)/(m+p-1) — the §IV-D discussion quantity (with micro-batch size 4
// and BLOOM's 32-sample rank batch, m=8 and p=12 give ≥11.5%... the
// formula the paper's analysis uses).
func (s Spec) BubbleFraction() float64 {
	if s.PP <= 1 {
		return 0
	}
	return float64(s.PP-1) / float64(s.MicroBatches+s.PP-1)
}

// MemoryModel accounts per-GPU memory for weights/gradients/optimizer by
// ZeRO stage, in bytes. Weights and gradients are FP16; optimizer states
// depend on the optimizer (bytes per parameter).
type MemoryModel struct {
	// Params is the full model parameter count.
	Params int64
	// OptimBytesPerParam is optimizer state per parameter (Adam mixed
	// precision: 12; FP16 SGD: 0).
	OptimBytesPerParam int
}

// PerGPU returns (weights, gradients, optimizer) bytes per GPU.
func (m MemoryModel) PerGPU(s Spec) (w, g, o units.Bytes) {
	shard := int64(s.TP * s.PP)
	w = units.Bytes(2 * m.Params / shard)
	g = units.Bytes(2 * m.Params / shard)
	o = units.Bytes(int64(m.OptimBytesPerParam) * m.Params / shard)
	if s.DP > 1 {
		dp := int64(s.DP)
		if s.ZeRO >= ZeRO1 {
			o /= units.Bytes(dp)
		}
		if s.ZeRO >= ZeRO2 {
			g /= units.Bytes(dp)
		}
		if s.ZeRO >= ZeRO3 {
			w /= units.Bytes(dp)
		}
	}
	return w, g, o
}
