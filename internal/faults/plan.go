package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// EventKind classifies a fleet-level fault event.
type EventKind int

const (
	// Death kills one array member (or the whole array) of a node.
	Death EventKind = iota
	// Degrade multiplies a node's array bandwidth for a window.
	Degrade
	// Drain takes a node out of scheduling, killing its running jobs.
	Drain
)

// String names the kind for reports and errors.
func (k EventKind) String() string {
	switch k {
	case Death:
		return "death"
	case Degrade:
		return "degrade"
	case Drain:
		return "drain"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scheduled fault against one node of a fleet.
type Event struct {
	Kind EventKind
	// At is the simulated time the event fires. For a wear-triggered
	// death (WearThreshold > 0) it is ignored.
	At time.Duration
	// Node indexes the cluster's nodes.
	Node int
	// Device selects the dying array member for Death (-1 = whole
	// array).
	Device int
	// WearThreshold, when > 0, fires the Death when the node array's
	// wear fraction crosses it instead of at a fixed time.
	WearThreshold float64
	// Factor is the bandwidth multiplier for Degrade, in (0, 1).
	Factor float64
	// For is the window length for Degrade, or the drain duration for
	// Drain (0 = permanent drain / rest-of-run degrade).
	For time.Duration
}

// Plan schedules fleet-level faults plus the recovery cost model shared
// by every event.
type Plan struct {
	Events []Event
	// CheckpointSteps is the checkpoint interval: a killed job restarts
	// from its last multiple of this many completed steps (0 =
	// DefaultCheckpointSteps).
	CheckpointSteps int
	// RestartPenalty is the fixed cost a re-queued job pays before
	// making progress again — checkpoint load, process restart,
	// re-warmup (0 = DefaultRestartPenalty).
	RestartPenalty time.Duration
	// RebuildSteal is the rebuild bandwidth steal (0 =
	// DefaultRebuildSteal).
	RebuildSteal float64
	// RebuildFor is the rebuild duration after a member death (0 =
	// DefaultRebuildFor).
	RebuildFor time.Duration
}

// Default recovery cost model for fleet fault plans.
const (
	DefaultCheckpointSteps = 50
	DefaultRestartPenalty  = 30 * time.Second
	DefaultRebuildFor      = 10 * time.Minute
)

// Empty reports whether the plan schedules nothing.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// WithDefaults returns the plan with every unset cost-model field
// resolved to its default.
func (p Plan) WithDefaults() Plan {
	if p.CheckpointSteps <= 0 {
		p.CheckpointSteps = DefaultCheckpointSteps
	}
	if p.RestartPenalty <= 0 {
		p.RestartPenalty = DefaultRestartPenalty
	}
	if p.RebuildSteal <= 0 || p.RebuildSteal >= 1 {
		p.RebuildSteal = DefaultRebuildSteal
	}
	if p.RebuildFor <= 0 {
		p.RebuildFor = DefaultRebuildFor
	}
	return p
}

// Validate rejects malformed plans against a cluster of the given shape.
func (p Plan) Validate(nodes, devices int) error {
	for i, e := range p.Events {
		if e.Node < 0 || e.Node >= nodes {
			return fmt.Errorf("faults: event %d: node %d outside cluster of %d", i, e.Node, nodes)
		}
		switch e.Kind {
		case Death:
			if e.At <= 0 && e.WearThreshold <= 0 {
				return fmt.Errorf("faults: event %d: death needs a time or wear trigger", i)
			}
			if e.WearThreshold < 0 || e.WearThreshold > 1 {
				return fmt.Errorf("faults: event %d: wear threshold %.3f outside [0, 1]", i, e.WearThreshold)
			}
			if e.Device < -1 || e.Device >= devices {
				return fmt.Errorf("faults: event %d: device %d outside array of %d", i, e.Device, devices)
			}
		case Degrade:
			if e.At <= 0 {
				return fmt.Errorf("faults: event %d: degrade needs a start time", i)
			}
			if e.Factor <= 0 || e.Factor >= 1 {
				return fmt.Errorf("faults: event %d: degrade factor %.3f outside (0, 1)", i, e.Factor)
			}
		case Drain:
			if e.At <= 0 {
				return fmt.Errorf("faults: event %d: drain needs a start time", i)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %d", i, int(e.Kind))
		}
		if e.For < 0 {
			return fmt.Errorf("faults: event %d: negative duration %v", i, e.For)
		}
	}
	return nil
}

// ParsePlan parses the CLI/API fault-plan syntax: comma-separated events
// plus optional cost-model options.
//
//	death@30s:node0:dev1       member 1 of node 0 dies at t=30s
//	death@30s:node0            node 0's whole array fails at t=30s
//	death@wear0.8:node0:dev1   member dies when array wear crosses 80%
//	degrade@10s:node1:0.5:20s  node 1 at 50% bandwidth for 20s
//	drain@60s:node2            node 2 drained permanently at t=60s
//	drain@60s:node2:5m         ... or for 5 minutes
//	ckpt=50 penalty=30s steal=0.3 rebuild=10m   (cost-model options)
func ParsePlan(s string) (Plan, error) {
	var p Plan
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if k, v, ok := strings.Cut(tok, "="); ok && !strings.Contains(k, "@") {
			if err := p.parseOption(k, v); err != nil {
				return Plan{}, err
			}
			continue
		}
		ev, err := parseEvent(tok)
		if err != nil {
			return Plan{}, err
		}
		p.Events = append(p.Events, ev)
	}
	return p, nil
}

func (p *Plan) parseOption(k, v string) error {
	switch k {
	case "ckpt":
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return fmt.Errorf("faults: bad ckpt=%q", v)
		}
		p.CheckpointSteps = n
	case "penalty":
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return fmt.Errorf("faults: bad penalty=%q", v)
		}
		p.RestartPenalty = d
	case "steal":
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 || f >= 1 {
			return fmt.Errorf("faults: bad steal=%q", v)
		}
		p.RebuildSteal = f
	case "rebuild":
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return fmt.Errorf("faults: bad rebuild=%q", v)
		}
		p.RebuildFor = d
	default:
		return fmt.Errorf("faults: unknown option %q", k)
	}
	return nil
}

func parseEvent(tok string) (Event, error) {
	head, rest, _ := strings.Cut(tok, ":")
	kindStr, atStr, ok := strings.Cut(head, "@")
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q: want kind@time", tok)
	}
	var ev Event
	switch kindStr {
	case "death":
		ev.Kind = Death
		ev.Device = -1
	case "degrade":
		ev.Kind = Degrade
	case "drain":
		ev.Kind = Drain
	default:
		return Event{}, fmt.Errorf("faults: event %q: unknown kind %q", tok, kindStr)
	}
	if w, ok := strings.CutPrefix(atStr, "wear"); ok && ev.Kind == Death {
		f, err := strconv.ParseFloat(w, 64)
		if err != nil || f <= 0 || f > 1 {
			return Event{}, fmt.Errorf("faults: event %q: bad wear threshold %q", tok, w)
		}
		ev.WearThreshold = f
	} else {
		d, err := time.ParseDuration(atStr)
		if err != nil || d <= 0 {
			return Event{}, fmt.Errorf("faults: event %q: bad time %q", tok, atStr)
		}
		ev.At = d
	}
	parts := strings.Split(rest, ":")
	if len(parts) == 0 || parts[0] == "" {
		return Event{}, fmt.Errorf("faults: event %q: missing node", tok)
	}
	node, err := strconv.Atoi(strings.TrimPrefix(parts[0], "node"))
	if err != nil || node < 0 {
		return Event{}, fmt.Errorf("faults: event %q: bad node %q", tok, parts[0])
	}
	ev.Node = node
	args := parts[1:]
	switch ev.Kind {
	case Death:
		if len(args) > 1 {
			return Event{}, fmt.Errorf("faults: event %q: too many fields", tok)
		}
		if len(args) == 1 {
			dev, err := strconv.Atoi(strings.TrimPrefix(args[0], "dev"))
			if err != nil || dev < 0 {
				return Event{}, fmt.Errorf("faults: event %q: bad device %q", tok, args[0])
			}
			ev.Device = dev
		}
	case Degrade:
		if len(args) < 1 || len(args) > 2 {
			return Event{}, fmt.Errorf("faults: event %q: want degrade@t:node:factor[:for]", tok)
		}
		f, err := strconv.ParseFloat(args[0], 64)
		if err != nil || f <= 0 || f >= 1 {
			return Event{}, fmt.Errorf("faults: event %q: bad factor %q", tok, args[0])
		}
		ev.Factor = f
		if len(args) == 2 {
			d, err := time.ParseDuration(args[1])
			if err != nil || d <= 0 {
				return Event{}, fmt.Errorf("faults: event %q: bad duration %q", tok, args[1])
			}
			ev.For = d
		}
	case Drain:
		if len(args) > 1 {
			return Event{}, fmt.Errorf("faults: event %q: too many fields", tok)
		}
		if len(args) == 1 {
			d, err := time.ParseDuration(args[0])
			if err != nil || d <= 0 {
				return Event{}, fmt.Errorf("faults: event %q: bad duration %q", tok, args[0])
			}
			ev.For = d
		}
	}
	return ev, nil
}

// String renders the plan back into ParsePlan syntax (events only when
// the cost model is all-default), normalizing field order.
func (p Plan) String() string {
	var b strings.Builder
	for i, e := range p.Events {
		if i > 0 {
			b.WriteByte(',')
		}
		switch e.Kind {
		case Death:
			if e.WearThreshold > 0 {
				fmt.Fprintf(&b, "death@wear%g:node%d", e.WearThreshold, e.Node)
			} else {
				fmt.Fprintf(&b, "death@%s:node%d", e.At, e.Node)
			}
			if e.Device >= 0 {
				fmt.Fprintf(&b, ":dev%d", e.Device)
			}
		case Degrade:
			fmt.Fprintf(&b, "degrade@%s:node%d:%g", e.At, e.Node, e.Factor)
			if e.For > 0 {
				fmt.Fprintf(&b, ":%s", e.For)
			}
		case Drain:
			fmt.Fprintf(&b, "drain@%s:node%d", e.At, e.Node)
			if e.For > 0 {
				fmt.Fprintf(&b, ":%s", e.For)
			}
		}
	}
	if p.CheckpointSteps > 0 {
		fmt.Fprintf(&b, ",ckpt=%d", p.CheckpointSteps)
	}
	if p.RestartPenalty > 0 {
		fmt.Fprintf(&b, ",penalty=%s", p.RestartPenalty)
	}
	if p.RebuildSteal > 0 {
		fmt.Fprintf(&b, ",steal=%g", p.RebuildSteal)
	}
	if p.RebuildFor > 0 {
		fmt.Fprintf(&b, ",rebuild=%s", p.RebuildFor)
	}
	return strings.TrimPrefix(b.String(), ",")
}

// ParseSpec parses the single-run fault syntax (the plan syntax minus
// the node field — a run has exactly one array):
//
//	death@30s:dev1       member 1 dies at t=30s
//	death@30s            the whole array fails at t=30s
//	death@wear0.8:dev1   member dies when array wear crosses 80%
//	degrade@10s:0.5:20s  50% bandwidth for 20s (omit :20s = rest of run)
//	steal=0.3 rebuild=10m   (rebuild cost options)
//
// Comma-separate at most one death and one degrade window; the caller
// validates the result against its array width with Spec.Validate.
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if k, v, ok := strings.Cut(tok, "="); ok && !strings.Contains(k, "@") {
			switch k {
			case "steal":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f <= 0 || f >= 1 {
					return Spec{}, fmt.Errorf("faults: bad steal=%q", v)
				}
				sp.RebuildSteal = f
			case "rebuild":
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return Spec{}, fmt.Errorf("faults: bad rebuild=%q", v)
				}
				sp.RebuildFor = d
			default:
				return Spec{}, fmt.Errorf("faults: unknown spec option %q", k)
			}
			continue
		}
		head, rest, _ := strings.Cut(tok, ":")
		kindStr, atStr, ok := strings.Cut(head, "@")
		if !ok {
			return Spec{}, fmt.Errorf("faults: spec %q: want kind@time", tok)
		}
		switch kindStr {
		case "death":
			if sp.DeviceDeathAt != 0 || sp.WearThreshold != 0 {
				return Spec{}, fmt.Errorf("faults: spec %q: a run takes one death", tok)
			}
			if w, ok := strings.CutPrefix(atStr, "wear"); ok {
				f, err := strconv.ParseFloat(w, 64)
				if err != nil || f <= 0 || f > 1 {
					return Spec{}, fmt.Errorf("faults: spec %q: bad wear threshold %q", tok, w)
				}
				sp.WearThreshold = f
			} else {
				d, err := time.ParseDuration(atStr)
				if err != nil || d <= 0 {
					return Spec{}, fmt.Errorf("faults: spec %q: bad time %q", tok, atStr)
				}
				sp.DeviceDeathAt = d
			}
			if rest == "" {
				sp.Device = -1
			} else {
				dev, err := strconv.Atoi(strings.TrimPrefix(rest, "dev"))
				if err != nil || dev < 0 {
					return Spec{}, fmt.Errorf("faults: spec %q: bad device %q", tok, rest)
				}
				sp.Device = dev
			}
		case "degrade":
			if sp.DegradeAt != 0 {
				return Spec{}, fmt.Errorf("faults: spec %q: a run takes one degrade window", tok)
			}
			d, err := time.ParseDuration(atStr)
			if err != nil || d <= 0 {
				return Spec{}, fmt.Errorf("faults: spec %q: bad time %q", tok, atStr)
			}
			sp.DegradeAt = d
			parts := strings.Split(rest, ":")
			if len(parts) < 1 || len(parts) > 2 || parts[0] == "" {
				return Spec{}, fmt.Errorf("faults: spec %q: want degrade@t:factor[:for]", tok)
			}
			f, err := strconv.ParseFloat(parts[0], 64)
			if err != nil || f <= 0 || f >= 1 {
				return Spec{}, fmt.Errorf("faults: spec %q: bad factor %q", tok, parts[0])
			}
			sp.DegradeFactor = f
			if len(parts) == 2 {
				d, err := time.ParseDuration(parts[1])
				if err != nil || d <= 0 {
					return Spec{}, fmt.Errorf("faults: spec %q: bad duration %q", tok, parts[1])
				}
				sp.DegradeFor = d
			}
		default:
			return Spec{}, fmt.Errorf("faults: spec %q: unknown kind %q (a run takes death/degrade, drains are fleet-level)", tok, kindStr)
		}
	}
	return sp, nil
}
