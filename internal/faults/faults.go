// Package faults implements deterministic fault injection for the
// simulated offload stack: scheduled device death, wear-triggered death,
// transient bandwidth degradation, and (at the fleet level) node drain.
//
// Faults are modeled as piecewise-constant functions of virtual time.
// The autograd executor computes transfer times algebraically — it never
// pumps the discrete-event loop — so fault effects are consulted at each
// transfer's computed start time through a pure time-query Controller
// rather than delivered as engine callbacks. That keeps traced/untraced
// and fresh/session runs byte-identical by construction: the same
// transfer sequence asks the same questions and gets the same answers.
package faults

import (
	"fmt"
	"time"
)

// Spec schedules faults against one simulated NVMe array. It is a pure
// scalar value struct so it can ride inside exp.RunConfig, which is
// compared with == and used as an LRU key. The zero Spec means "no
// faults" and is what every existing caller implicitly passes.
type Spec struct {
	// DeviceDeathAt kills array member Device at this simulated time
	// (0 = no scheduled death).
	DeviceDeathAt time.Duration
	// Device selects which array member dies (0-based). -1 kills the
	// whole array at once.
	Device int
	// WearThreshold triggers the death when the array's host-write wear
	// fraction crosses this value (0 = no wear trigger). When both
	// triggers are set, the earlier one fires.
	WearThreshold float64
	// DegradeAt starts a transient bandwidth degradation window
	// (0 = none).
	DegradeAt time.Duration
	// DegradeFactor multiplies effective array bandwidth inside the
	// window; must be in (0, 1) when a window is scheduled.
	DegradeFactor float64
	// DegradeFor is the window length; 0 with DegradeAt set means the
	// degradation lasts for the rest of the run.
	DegradeFor time.Duration
	// RebuildFor is how long the RAID rebuild holds after a member
	// death (0 = derived from device capacity at the steal rate).
	RebuildFor time.Duration
	// RebuildSteal is the fraction of surviving bandwidth the rebuild
	// steals from foreground transfers, in [0, 1). 0 = DefaultRebuildSteal.
	RebuildSteal float64
}

// DefaultRebuildSteal is the rebuild bandwidth steal applied when a spec
// schedules a death without choosing one.
const DefaultRebuildSteal = 0.3

// Empty reports whether the spec schedules nothing — the fault-free case
// every pre-existing run config is in.
func (s Spec) Empty() bool { return s == Spec{} }

// Validate rejects malformed specs against an array of the given width.
func (s Spec) Validate(devices int) error {
	if s.Empty() {
		return nil
	}
	death := s.DeviceDeathAt > 0 || s.WearThreshold > 0
	switch {
	case s.DeviceDeathAt < 0:
		return fmt.Errorf("faults: negative DeviceDeathAt %v", s.DeviceDeathAt)
	case s.WearThreshold < 0 || s.WearThreshold > 1:
		return fmt.Errorf("faults: WearThreshold %.3f outside [0, 1]", s.WearThreshold)
	case death && (s.Device < -1 || s.Device >= devices):
		return fmt.Errorf("faults: device %d outside array of %d", s.Device, devices)
	case !death && s.Device != 0:
		return fmt.Errorf("faults: Device set without a death trigger")
	case s.RebuildSteal < 0 || s.RebuildSteal >= 1:
		return fmt.Errorf("faults: RebuildSteal %.3f outside [0, 1)", s.RebuildSteal)
	case s.RebuildFor < 0:
		return fmt.Errorf("faults: negative RebuildFor %v", s.RebuildFor)
	case s.DegradeAt < 0 || s.DegradeFor < 0:
		return fmt.Errorf("faults: negative degrade window")
	case s.DegradeAt > 0 && (s.DegradeFactor <= 0 || s.DegradeFactor >= 1):
		return fmt.Errorf("faults: DegradeFactor %.3f outside (0, 1)", s.DegradeFactor)
	case s.DegradeAt == 0 && (s.DegradeFactor != 0 || s.DegradeFor != 0):
		return fmt.Errorf("faults: degrade window fields set without DegradeAt")
	}
	return nil
}

// noDeath marks "no death registered" in the controller.
const noDeath = time.Duration(-1)

// Controller answers fault queries for one run. It is built fresh per
// Execute (cheap: a few scalars) and mutates only through NoteWrite,
// whose call sequence is itself deterministic, so armed runs stay
// byte-identical across fresh and reused arenas.
type Controller struct {
	spec       Spec
	devices    int
	wearBudget float64 // host-write lifetime of the whole array, bytes
	written    float64
	steal      float64
	rebuildFor time.Duration

	deathAt    time.Duration // noDeath until a trigger fires
	deadDev    int
	restoredAt time.Duration
	failed     bool // whole-array failure (Device -1 or 1-wide array)
}

// NewController arms a controller for an array of the given width.
// wearBudget is the array's lifetime host-write budget in bytes (0
// disables the wear trigger); rebuildDefault is used when the spec does
// not pin RebuildFor.
func NewController(spec Spec, devices int, wearBudget float64, rebuildDefault time.Duration) *Controller {
	c := &Controller{
		spec:       spec,
		devices:    devices,
		wearBudget: wearBudget,
		steal:      spec.RebuildSteal,
		rebuildFor: spec.RebuildFor,
		deathAt:    noDeath,
	}
	if c.steal == 0 {
		c.steal = DefaultRebuildSteal
	}
	if c.rebuildFor <= 0 {
		c.rebuildFor = rebuildDefault
	}
	if spec.DeviceDeathAt > 0 {
		c.registerDeath(spec.DeviceDeathAt)
	}
	return c
}

// registerDeath records the death trigger, keeping the earliest one.
func (c *Controller) registerDeath(at time.Duration) {
	if c.deathAt != noDeath && c.deathAt <= at {
		return
	}
	c.deathAt = at
	c.deadDev = c.spec.Device
	c.restoredAt = at + c.rebuildFor
	c.failed = c.spec.Device < 0 || c.devices <= 1
}

// NoteWrite accounts host writes against the wear budget and fires the
// wear-triggered death at the crossing write's finish time.
func (c *Controller) NoteWrite(n float64, finish time.Duration) {
	c.written += n
	if c.spec.WearThreshold > 0 && c.wearBudget > 0 &&
		c.written >= c.spec.WearThreshold*c.wearBudget {
		c.registerDeath(finish)
	}
}

// Factor returns the foreground bandwidth multiplier at time t: 1 when
// healthy, degraded inside a rebuild window (surviving members share the
// stripe and the rebuild steals part of their bandwidth) or a scheduled
// degradation window.
func (c *Controller) Factor(t time.Duration) float64 {
	f := 1.0
	if c.spec.DegradeAt > 0 && t >= c.spec.DegradeAt &&
		(c.spec.DegradeFor == 0 || t < c.spec.DegradeAt+c.spec.DegradeFor) {
		f *= c.spec.DegradeFactor
	}
	if c.deathAt != noDeath && !c.failed && t >= c.deathAt && t < c.restoredAt {
		f *= float64(c.devices-1) / float64(c.devices) * (1 - c.steal)
	}
	return f
}

// FailedAt reports whether the whole array is failed at time t — no
// surviving member can absorb the traffic.
func (c *Controller) FailedAt(t time.Duration) bool {
	return c.failed && c.deathAt != noDeath && t >= c.deathAt
}

// DeadDeviceAt returns the index of the array member that is dead and
// not yet rebuilt at time t, or -1.
func (c *Controller) DeadDeviceAt(t time.Duration) int {
	if c.deathAt == noDeath || c.failed || t < c.deathAt || t >= c.restoredAt {
		return -1
	}
	return c.deadDev
}

// Death reports the registered death trigger, if any: when it fired,
// when the rebuild completes, and whether it failed the whole array.
func (c *Controller) Death() (at, restored time.Duration, failed, ok bool) {
	if c.deathAt == noDeath {
		return 0, 0, false, false
	}
	return c.deathAt, c.restoredAt, c.failed, true
}

// DegradeWindow reports the scheduled degradation window, if any.
func (c *Controller) DegradeWindow() (from, to time.Duration, ok bool) {
	if c.spec.DegradeAt <= 0 {
		return 0, 0, false
	}
	to = c.spec.DegradeAt + c.spec.DegradeFor
	if c.spec.DegradeFor == 0 {
		to = 1<<62 - 1
	}
	return c.spec.DegradeAt, to, true
}
