package faults

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestParsePlanRoundTrip: ParsePlan(String(ParsePlan(s))) is the
// identity on plan values — the CLI syntax and the struct form carry
// the same information.
func TestParsePlanRoundTrip(t *testing.T) {
	for _, s := range []string{
		"death@30s:node0:dev1",
		"death@30s:node0",
		"death@wear0.8:node3:dev2",
		"degrade@10s:node1:0.5:20s",
		"degrade@10s:node1:0.25",
		"drain@60s:node2:5m",
		"drain@90s:node3",
		"death@30s:node0:dev1,degrade@1m:node1:0.5:30s,drain@2m:node2:5m,ckpt=25,penalty=10s,steal=0.4,rebuild=8m",
	} {
		p1, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		p2, err := ParsePlan(p1.String())
		if err != nil {
			t.Fatalf("ParsePlan(%q → %q): %v", s, p1.String(), err)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Errorf("round trip of %q lost information:\n  first  %+v\n  second %+v", s, p1, p2)
		}
	}
}

// TestParsePlanRejects: malformed syntax fails at parse time with an
// error naming the problem, never a silent partial plan.
func TestParsePlanRejects(t *testing.T) {
	for _, s := range []string{
		"frob@10s:node0",
		"death@banana:node0",
		"death@10s",
		"degrade@10s:node0",
		"drain@10s:dev1",
		"ckpt=0",
		"penalty=-5s",
		"steal=2",
		"rebuild=0s",
		"mystery=1",
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted a malformed plan", s)
		}
	}
}

// TestParseSpec: the single-run syntax covers each trigger and the
// rebuild options, defaults the whole-array death, and rejects plans
// that only make sense fleet-side.
func TestParseSpec(t *testing.T) {
	got, err := ParseSpec("death@30s:dev1,degrade@10s:0.5:20s,steal=0.4,rebuild=8m")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		DeviceDeathAt: 30 * time.Second, Device: 1,
		DegradeAt: 10 * time.Second, DegradeFactor: 0.5, DegradeFor: 20 * time.Second,
		RebuildSteal: 0.4, RebuildFor: 8 * time.Minute,
	}
	if got != want {
		t.Errorf("ParseSpec = %+v, want %+v", got, want)
	}
	if got, _ := ParseSpec("death@30s"); got.Device != -1 {
		t.Errorf("death without dev = device %d, want whole array (-1)", got.Device)
	}
	if got, _ := ParseSpec("death@wear0.8:dev2"); got.WearThreshold != 0.8 || got.Device != 2 {
		t.Errorf("wear death = %+v", got)
	}
	if got, err := ParseSpec(""); err != nil || !got.Empty() {
		t.Errorf("empty spec: %+v, %v", got, err)
	}
	for _, s := range []string{
		"drain@10s",            // fleet-only kind
		"death@30s,death@40s",  // one death per run
		"degrade@1s:2",         // factor outside (0,1)
		"death@0s:dev1",        // zero time
		"degrade@1s:0.5:0s",    // zero window
		"steal=1",              // steal outside (0,1)
		"death@30s:node0:dev1", // plan syntax, not spec syntax
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", s)
		}
	}
}

// TestPlanValidateBounds: events must land on real nodes and devices.
func TestPlanValidateBounds(t *testing.T) {
	plan := Plan{Events: []Event{{Kind: Death, At: time.Second, Node: 5, Device: 0}}}
	if err := plan.Validate(4, 8); err == nil || !strings.Contains(err.Error(), "node") {
		t.Errorf("out-of-range node: got %v", err)
	}
	plan = Plan{Events: []Event{{Kind: Death, At: time.Second, Node: 0, Device: 8}}}
	if err := plan.Validate(4, 8); err == nil || !strings.Contains(err.Error(), "device") {
		t.Errorf("out-of-range device: got %v", err)
	}
	plan = Plan{Events: []Event{{Kind: Death, At: time.Second, Node: 3, Device: -1}}}
	if err := plan.Validate(4, 8); err != nil {
		t.Errorf("whole-array death on the last node rejected: %v", err)
	}
}

// TestSpecValidate: the single-run spec rejects each malformed field.
func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{DeviceDeathAt: -time.Second},
		{DeviceDeathAt: time.Second, Device: 8},
		{DeviceDeathAt: time.Second, Device: -2},
		{WearThreshold: 1.5},
		{Device: 3}, // device without a death trigger
		{DeviceDeathAt: time.Second, RebuildSteal: 1},
		{DegradeAt: time.Second},                      // window without a factor
		{DegradeAt: time.Second, DegradeFactor: 1.0},  // factor outside (0,1)
		{DegradeFactor: 0.5},                          // factor without a window
		{DegradeAt: -time.Second, DegradeFactor: 0.5}, // negative window
	}
	for i, s := range bad {
		if err := s.Validate(8); err == nil {
			t.Errorf("spec %d (%+v) accepted", i, s)
		}
	}
	good := Spec{DeviceDeathAt: time.Second, Device: 1, DegradeAt: 2 * time.Second, DegradeFactor: 0.5}
	if err := good.Validate(8); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if !(Spec{}).Empty() || good.Empty() {
		t.Error("Empty() misclassifies")
	}
}

// TestControllerTimedDeath: a member death thins bandwidth only inside
// the rebuild window, reporting the dead member while it is missing.
func TestControllerTimedDeath(t *testing.T) {
	c := NewController(Spec{DeviceDeathAt: 10 * time.Second, Device: 1}, 8, 0, time.Minute)
	if f := c.Factor(5 * time.Second); f != 1 {
		t.Errorf("pre-death factor %v", f)
	}
	// Computed at runtime in the controller's operation order — spelled
	// as a constant expression Go would fold it exactly and miss the
	// float rounding the real code performs.
	want := float64(7) / float64(8) * (1 - float64(DefaultRebuildSteal))
	if f := c.Factor(15 * time.Second); f != want {
		t.Errorf("rebuild-window factor %v, want %v", f, want)
	}
	if f := c.Factor(70 * time.Second); f != 1 {
		t.Errorf("post-rebuild factor %v", f)
	}
	if d := c.DeadDeviceAt(15 * time.Second); d != 1 {
		t.Errorf("DeadDeviceAt in window = %d", d)
	}
	if d := c.DeadDeviceAt(5 * time.Second); d != -1 {
		t.Errorf("DeadDeviceAt before death = %d", d)
	}
	if c.FailedAt(15 * time.Second) {
		t.Error("member death misreported as whole-array failure")
	}
	at, restored, failed, ok := c.Death()
	if !ok || failed || at != 10*time.Second || restored != 70*time.Second {
		t.Errorf("Death() = %v %v %v %v", at, restored, failed, ok)
	}
}

// TestControllerWholeArrayFailure: Device -1 (or a 1-wide array) fails
// everything from the death time on, with no rebuild recovery.
func TestControllerWholeArrayFailure(t *testing.T) {
	c := NewController(Spec{DeviceDeathAt: 10 * time.Second, Device: -1}, 8, 0, time.Minute)
	if c.FailedAt(5 * time.Second) {
		t.Error("failed before the scheduled death")
	}
	for _, at := range []time.Duration{10 * time.Second, time.Hour} {
		if !c.FailedAt(at) {
			t.Errorf("not failed at %v", at)
		}
	}
	// A single-device array cannot survive any member death.
	c = NewController(Spec{DeviceDeathAt: 10 * time.Second, Device: 0}, 1, 0, time.Minute)
	if !c.FailedAt(10 * time.Second) {
		t.Error("1-wide array survived its only member's death")
	}
}

// TestControllerWearTrigger: the wear death fires at the finish time of
// the write that crosses the threshold, and the earliest registered
// trigger wins.
func TestControllerWearTrigger(t *testing.T) {
	c := NewController(Spec{WearThreshold: 0.5, Device: 2}, 8, 1000, time.Minute)
	c.NoteWrite(400, time.Second)
	if _, _, _, ok := c.Death(); ok {
		t.Fatal("death fired below the wear threshold")
	}
	c.NoteWrite(200, 2*time.Second)
	at, _, _, ok := c.Death()
	if !ok || at != 2*time.Second {
		t.Fatalf("wear death at %v (ok=%v), want 2s", at, ok)
	}

	// Earliest trigger wins: the wear crossing beats a later timed death…
	c = NewController(Spec{DeviceDeathAt: time.Minute, WearThreshold: 0.5, Device: 2}, 8, 1000, time.Minute)
	c.NoteWrite(600, 2*time.Second)
	if at, _, _, _ := c.Death(); at != 2*time.Second {
		t.Errorf("earliest-wins: death at %v, want 2s", at)
	}
	// …and an earlier timed death is kept over a later crossing.
	c = NewController(Spec{DeviceDeathAt: time.Second, WearThreshold: 0.5, Device: 2}, 8, 1000, time.Minute)
	c.NoteWrite(600, 2*time.Second)
	if at, _, _, _ := c.Death(); at != time.Second {
		t.Errorf("earliest-wins: death at %v, want 1s", at)
	}
}

// TestControllerDegradeWindow: the degradation factor applies exactly
// inside [DegradeAt, DegradeAt+DegradeFor) and compounds with a rebuild.
func TestControllerDegradeWindow(t *testing.T) {
	c := NewController(Spec{DegradeAt: 10 * time.Second, DegradeFactor: 0.5, DegradeFor: 20 * time.Second}, 8, 0, time.Minute)
	for _, tc := range []struct {
		at   time.Duration
		want float64
	}{
		{9 * time.Second, 1},
		{10 * time.Second, 0.5},
		{29 * time.Second, 0.5},
		{30 * time.Second, 1},
	} {
		if f := c.Factor(tc.at); f != tc.want {
			t.Errorf("Factor(%v) = %v, want %v", tc.at, f, tc.want)
		}
	}
	from, to, ok := c.DegradeWindow()
	if !ok || from != 10*time.Second || to != 30*time.Second {
		t.Errorf("DegradeWindow() = %v %v %v", from, to, ok)
	}

	// DegradeFor 0 holds for the rest of the run.
	c = NewController(Spec{DegradeAt: 10 * time.Second, DegradeFactor: 0.5}, 8, 0, time.Minute)
	if f := c.Factor(time.Hour); f != 0.5 {
		t.Errorf("open-ended window: Factor = %v", f)
	}

	// Overlapping rebuild and degradation multiply.
	c = NewController(Spec{
		DeviceDeathAt: 12 * time.Second, Device: 1,
		DegradeAt: 10 * time.Second, DegradeFactor: 0.5, DegradeFor: 20 * time.Second,
	}, 8, 0, time.Minute)
	rebuild := float64(7) / float64(8) * (1 - float64(DefaultRebuildSteal))
	want := 0.5 * rebuild
	if f := c.Factor(15 * time.Second); f != want {
		t.Errorf("overlap factor %v, want %v", f, want)
	}
}
