package fleet

import (
	"fmt"
	"time"

	"ssdtrain/internal/faults"
	"ssdtrain/internal/trace"
)

// Scenario is one named fleet simulation in a sweep.
type Scenario struct {
	Name   string
	Config Config
}

// Sweep runs scenarios concurrently through the deterministic worker
// pool, returning reports in scenario order. Scenarios that share a
// Profiler reuse each other's measurement runs; results are identical
// for any worker count.
func Sweep(scenarios []Scenario, workers int) ([]*Report, error) {
	return ParallelMap(workers, scenarios, func(sc Scenario) (*Report, error) {
		r, err := Simulate(sc.Config)
		if err != nil {
			return nil, fmt.Errorf("fleet: scenario %q: %w", sc.Name, err)
		}
		return r, nil
	})
}

// PolicySweepConfig parameterizes a policy sweep.
type PolicySweepConfig struct {
	Cluster  ClusterSpec
	Jobs     []Job
	Policies []Policy
	// Workers bounds sweep and profiling concurrency (0 = GOMAXPROCS);
	// never affects results.
	Workers int
	// AdaptiveProfiles opts profiling runs into adaptive steady-state
	// detection (see Config.AdaptiveProfiles).
	AdaptiveProfiles bool
	// Faults applies one fault plan to every policy's simulation (see
	// Config.Faults), so the comparison shows how each scheduler absorbs
	// the same failure schedule.
	Faults faults.Plan
}

// PolicySweep simulates the same cluster and job mix under each policy,
// sharing one profile cache: every policy replays identical per-job
// measurements, so profiling cost is paid once.
func PolicySweep(cluster ClusterSpec, jobs []Job, policies []Policy, workers int) ([]*Report, error) {
	return PolicySweepWith(PolicySweepConfig{
		Cluster: cluster, Jobs: jobs, Policies: policies, Workers: workers,
	})
}

// PolicySweepWith is PolicySweep with the full option set.
func PolicySweepWith(cfg PolicySweepConfig) ([]*Report, error) {
	prof := NewProfiler(0)
	scenarios := make([]Scenario, len(cfg.Policies))
	for i, p := range cfg.Policies {
		scenarios[i] = Scenario{
			Name: string(p),
			Config: Config{
				Cluster:          cfg.Cluster,
				Jobs:             cfg.Jobs,
				Policy:           p,
				Workers:          cfg.Workers,
				Profiler:         prof,
				AdaptiveProfiles: cfg.AdaptiveProfiles,
				Faults:           cfg.Faults,
			},
		}
	}
	return Sweep(scenarios, cfg.Workers)
}

// CompareTable renders a policy-by-policy comparison of sweep reports.
func CompareTable(reports []*Report) *trace.Table {
	faulted := false
	for _, r := range reports {
		if r.UsesFaults {
			faulted = true
			break
		}
	}
	cols := []string{"policy", "makespan", "mean wait", "max wait", "slowdown", "fleet writes", "min lifespan"}
	if faulted {
		cols = append(cols, "restarts")
	}
	t := trace.NewTable("policy comparison", cols...)
	for _, r := range reports {
		row := []any{
			string(r.Policy),
			r.Makespan.Round(time.Millisecond),
			r.MeanWait.Round(time.Millisecond),
			r.MaxWait.Round(time.Millisecond),
			fmt.Sprintf("%.2f×", r.MeanSlowdown),
			r.TotalWritten,
			fmt.Sprintf("%.1f y", r.MinLifespanYears),
		}
		if faulted {
			row = append(row, r.TotalRestarts)
		}
		t.AddRow(row...)
	}
	return t
}
