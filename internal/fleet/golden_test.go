package fleet

import (
	"os"
	"testing"
)

// TestFleetReportByteIdentical pins a three-policy fleet sweep — whose
// per-job profiles now run through the tiered offload path — to the
// report rendering captured at 370fcb2 (pre-refactor). Regenerate (only
// for a deliberate behaviour change) with `go run ./goldengen`.
func TestFleetReportByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale profiles")
	}
	want, err := os.ReadFile("testdata/fleet_report.golden")
	if err != nil {
		t.Fatal(err)
	}
	cluster := ClusterSpec{Nodes: 2, Node: DefaultNodeSpec()}
	jobs := DefaultJobMix(MixConfig{Jobs: 10, Seed: 1})
	reports, err := PolicySweep(cluster, jobs, Policies(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := RenderReports(reports); got != string(want) {
		t.Errorf("fleet report diverged from 370fcb2:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
