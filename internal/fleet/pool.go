package fleet

import (
	"ssdtrain/internal/lru"
	"ssdtrain/internal/pool"
)

// ParallelMap applies fn to every element of in using at most workers
// goroutines and returns the results in input order, via the shared
// deterministic worker pool (internal/pool). Work items are independent,
// so the outcome is identical for any worker count — the pool only
// changes wall-clock time, never results.
func ParallelMap[T, R any](workers int, in []T, fn func(T) (R, error)) ([]R, error) {
	return pool.ParallelMap(workers, in, fn)
}

// Cache is the fleet's concurrency-safe LRU result cache, backed by the
// shared internal/lru implementation. Fleet simulations memoize repeated
// (model, strategy, SSD share) measurement runs in one: a policy sweep
// re-evaluates the same job profiles under every policy, and a 64-job mix
// drawn from a config palette repeats each palette entry many times.
type Cache[K comparable, V any] = lru.Cache[K, V]

// NewCache creates an LRU cache holding at most capacity entries; a zero
// or negative capacity panics, because a cacheless profiler would rerun
// every measurement.
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	return lru.New[K, V](capacity)
}
