package fleet

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelMap applies fn to every element of in using at most workers
// goroutines and returns the results in input order. Work items are
// independent, so the outcome is identical for any worker count — the
// pool only changes wall-clock time, never results. A zero or negative
// worker count uses GOMAXPROCS. If any call fails, the error of the
// lowest-indexed failing item is returned (again independent of worker
// count) and the partial results are discarded.
func ParallelMap[T, R any](workers int, in []T, fn func(T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(in) {
		workers = len(in)
	}
	out := make([]R, len(in))
	errs := make([]error, len(in))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(in) {
					return
				}
				out[i], errs[i] = fn(in[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Cache is a concurrency-safe LRU result cache. Fleet simulations memoize
// repeated (model, strategy, SSD share) measurement runs in one: a policy
// sweep re-evaluates the same job profiles under every policy, and a
// 64-job mix drawn from a config palette repeats each palette entry many
// times.
type Cache[K comparable, V any] struct {
	mu           sync.Mutex
	capacity     int
	ll           *list.List
	index        map[K]*list.Element
	hits, misses int64
}

type cacheEntry[K comparable, V any] struct {
	key K
	val V
}

// NewCache creates an LRU cache holding at most capacity entries; a zero
// or negative capacity panics, because a cacheless profiler would rerun
// every measurement.
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("fleet: cache capacity must be positive")
	}
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[K]*list.Element),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// getQuiet is Get without touching the hit/miss counters, for
// double-checked paths whose first Get already counted the lookup.
func (c *Cache[K, V]) getQuiet(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when the cache is full.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		el.Value.(*cacheEntry[K, V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.index[k] = c.ll.PushFront(&cacheEntry[K, V]{key: k, val: v})
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.index, last.Value.(*cacheEntry[K, V]).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *Cache[K, V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
