package fleet

import (
	"fmt"
	"math/rand"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/faults"
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// MixConfig parameterizes the seeded heterogeneous job generator.
type MixConfig struct {
	Jobs int
	Seed int64
	// MinSteps/MaxSteps bound the training length drawn per job
	// (defaults 40/400).
	MinSteps int
	MaxSteps int
	// SubmitSpread staggers arrivals uniformly over [0, SubmitSpread];
	// zero submits everything at time zero (a full backlog, which is
	// where scheduling policies differ most).
	SubmitSpread time.Duration
	// MaxGPUs caps job footprints so every job fits the target node
	// (default 4, the default node's size).
	MaxGPUs int
	// HybridFrac converts roughly this fraction of the SSDTrain jobs to
	// dram-first hybrid tenants that contend for node DRAM as well as the
	// array. It draws from its own generator, so HybridFrac 0 reproduces
	// pre-hierarchy mixes byte for byte.
	HybridFrac float64
	// OptimFrac converts roughly this fraction of the SSDTrain jobs to
	// optimizer-offload tenants (half sync, half overlap): their FP32
	// states spill to the shared array and their gradient/parameter
	// shuttle adds steady write traffic to the wear ledger. Like
	// HybridFrac it draws from its own generator, so OptimFrac 0 keeps
	// existing mixes byte-identical.
	OptimFrac float64
	// FaultPlan rides along with the mix parameters so call sites that
	// build a mix can thread a fault schedule to the simulation in one
	// value (Config.Faults / PolicySweepConfig.Faults apply it).
	// DefaultJobMix itself never reads it: the same seed draws the same
	// jobs with or without faults.
	FaultPlan faults.Plan
}

func (c MixConfig) withDefaults() MixConfig {
	if c.Jobs == 0 {
		c.Jobs = 64
	}
	if c.Jobs < 0 {
		// A negative count is a caller bug; an empty mix lets Simulate
		// report it instead of panicking in make.
		c.Jobs = 0
	}
	if c.MinSteps == 0 {
		c.MinSteps = 40
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 400
	}
	if c.MaxSteps < c.MinSteps {
		c.MaxSteps = c.MinSteps
	}
	if c.MaxGPUs <= 0 {
		c.MaxGPUs = 4
	}
	return c
}

// fullOffload pins the budget far above any eligible set, forcing every
// activation to the array (the memory-constrained job class).
const fullOffload = units.Bytes(1) << 62

// DefaultJobMix draws a heterogeneous job mix from a fixed palette with a
// seeded generator: mixed architectures (BERT/T5/GPT), geometries (the
// Fig 6 points), batch sizes, placement strategies, GPU footprints,
// training lengths and (optionally) arrival times. The same seed always
// produces the same mix — math/rand's sequence for an explicit source is
// stable — which is what makes fleet reports reproducible end to end.
//
// The strategy mix is deliberately adversarial for a shared array:
// planner-driven SSDTrain jobs (offload less under contention, raising
// their memory peak), memory-constrained pinned-budget jobs (keep
// offloading and dilate), and a minority of no-offload/recompute jobs
// that occupy GPUs without touching the array.
func DefaultJobMix(cfg MixConfig) []Job {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	archs := []models.Arch{models.BERT, models.T5, models.GPT}
	geoms := models.Fig6Geometries()
	batches := []int{8, 16}
	jobs := make([]Job, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		arch := archs[rng.Intn(len(archs))]
		geom := geoms[rng.Intn(len(geoms))]
		batch := batches[rng.Intn(len(batches))]
		model := models.PaperConfig(arch, geom[0], geom[1], batch)

		run := exp.RunConfig{Model: model, Strategy: exp.SSDTrain}
		class := "plan"
		switch p := rng.Float64(); {
		case p < 0.55:
			// Planner-driven SSDTrain (the framework's default posture).
		case p < 0.70:
			// Memory-constrained: offload everything, forwarding on.
			run.Budget = fullOffload
			class = "pin"
		case p < 0.80:
			// Memory-constrained without forwarding: reloads serialize
			// behind the array, so contention dilates step time hard.
			run.Budget = fullOffload
			run.NoForwarding = true
			run.KeepLastModules = -1
			class = "pin-nofwd"
		case p < 0.90:
			run.Strategy = exp.NoOffload
			class = "keep"
		default:
			run.Strategy = exp.Recompute
			class = "recompute"
		}

		gpus := []int{1, 1, 2, 4}[rng.Intn(4)]
		if gpus > cfg.MaxGPUs {
			gpus = cfg.MaxGPUs
		}
		steps := cfg.MinSteps + rng.Intn(cfg.MaxSteps-cfg.MinSteps+1)
		var submit time.Duration
		if cfg.SubmitSpread > 0 {
			submit = time.Duration(rng.Int63n(int64(cfg.SubmitSpread)))
		}
		jobs = append(jobs, Job{
			ID:     i,
			Name:   fmt.Sprintf("%s-H%d-B%d-%s", arch, geom[0], batch, class),
			Run:    run,
			GPUs:   gpus,
			Steps:  steps,
			Submit: submit,
		})
	}
	if cfg.HybridFrac > 0 {
		// A second seeded generator leaves the base mix's draw sequence
		// untouched: the same seed with HybridFrac 0 stays byte-identical.
		hrng := rand.New(rand.NewSource(cfg.Seed ^ 0x7a1e5))
		pools := []units.Bytes{16 * units.GiB, 32 * units.GiB, 64 * units.GiB}
		for i := range jobs {
			j := &jobs[i]
			if j.Run.Strategy != exp.SSDTrain || hrng.Float64() >= cfg.HybridFrac {
				continue
			}
			j.Run.Strategy = exp.HybridOffload
			j.Run.Placement = exp.PlacementDRAMFirst
			j.Run.DRAMCapacity = pools[hrng.Intn(len(pools))]
			j.Name += "+dram"
		}
	}
	if cfg.OptimFrac > 0 {
		// Same isolation trick as HybridFrac: a third generator, so the
		// base mix (and any hybrid conversions) stay byte-identical.
		orng := rand.New(rand.NewSource(cfg.Seed ^ 0x0b71a11))
		pools := []units.Bytes{8 * units.GiB, 16 * units.GiB, 32 * units.GiB}
		for i := range jobs {
			j := &jobs[i]
			if j.Run.Strategy != exp.SSDTrain || orng.Float64() >= cfg.OptimFrac {
				continue
			}
			j.Run.Strategy = exp.OptimOffload
			j.Run.Budget = 0
			j.Run.NoForwarding = false
			j.Run.KeepLastModules = 0
			j.Run.DRAMCapacity = pools[orng.Intn(len(pools))]
			j.Run.Schedule = exp.ScheduleSync
			if orng.Float64() < 0.5 {
				j.Run.Schedule = exp.ScheduleOverlap
			}
			j.Name += "+optim-" + j.Run.Schedule
		}
	}
	return jobs
}
