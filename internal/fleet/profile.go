package fleet

import (
	"sync/atomic"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/lru"
	"ssdtrain/internal/units"
)

// Profile is the steady-state behaviour of one job measured at a given
// share of its node's NVMe array bandwidth. The fleet simulation treats
// these as the job's fluid rates: a job at share s completes steps at
// 1/StepTime(s) per second and writes OffloadedPerStep(s) per GPU per
// step to the shared array.
type Profile struct {
	// StepTime is the steady-state training step time. Jobs whose offload
	// budget is pinned (memory-constrained jobs) dilate under contention;
	// jobs using the Fig 3 planner instead offload less.
	StepTime time.Duration
	// OffloadedPerStep is the per-GPU activation volume written to the
	// array each step.
	OffloadedPerStep units.Bytes
	// ActPeak and TotalPeak are the per-GPU memory high-water marks; a
	// placement is feasible only if TotalPeak fits the GPU.
	ActPeak   units.Bytes
	TotalPeak units.Bytes
	// PlannedBudget is the offload budget the Fig 3 workflow chose at
	// this share (0 when the job pins its own budget).
	PlannedBudget units.Bytes
}

// StepsPerSecond is the job's fluid progress rate at this share.
func (p Profile) StepsPerSecond() float64 {
	if p.StepTime <= 0 {
		return 0
	}
	return 1 / p.StepTime.Seconds()
}

// WriteRate is the per-GPU sustained write bandwidth at this share.
func (p Profile) WriteRate() units.Bandwidth {
	if p.StepTime <= 0 {
		return 0
	}
	return units.Bandwidth(float64(p.OffloadedPerStep) / p.StepTime.Seconds())
}

// Profiler measures job profiles by running the experiment harness with
// contended SSD bandwidth injected, memoizing results in an LRU cache.
// Profiles are pure functions of (RunConfig, node, share), so the cache
// never goes stale and concurrent fills are safe: duplicate in-flight
// measurements are coalesced through the shared lru.Singleflight, so
// concurrent identical requests from the worker pool share one simulation
// instead of racing the LRU. The fully-bound RunConfig is a pure value
// tree, so it serves as the cache key directly — no serialization on the
// hot lookup path.
type Profiler struct {
	cache  *Cache[exp.RunConfig, Profile]
	flight lru.Singleflight[exp.RunConfig, Profile]
	// runs counts actual measurement executions (cache misses that did
	// the work); with an adequate cache capacity it equals the number of
	// distinct profiles, independent of concurrency.
	runs atomic.Int64
	// coalesced counts requests that piggybacked on another caller's
	// in-flight measurement.
	coalesced atomic.Int64
}

// DefaultCacheCapacity holds every profile a large sweep needs: distinct
// palette configs × share levels stays well below this.
const DefaultCacheCapacity = 4096

// NewProfiler creates a profiler with the given cache capacity (0 uses
// DefaultCacheCapacity).
func NewProfiler(capacity int) *Profiler {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Profiler{cache: NewCache[exp.RunConfig, Profile](capacity)}
}

// contendedRun binds a job's run config to its node hardware and array
// share: the node's GPU and shared SSD array replace whatever the config
// carried, and SSD-offloading runs see only their bandwidth share.
func contendedRun(run exp.RunConfig, node NodeSpec, share float64) exp.RunConfig {
	run.GPU = node.GPU
	run.SSD = node.SSD
	if run.Strategy == exp.SSDTrain && share > 0 && share < 1 {
		run.SSDBandwidthShare = share
	} else {
		run.SSDBandwidthShare = 0
	}
	return run
}

// Measure returns the job's profile at the given array share, running the
// measurement on a miss. Concurrent misses on one key share a single
// measurement via singleflight.
func (p *Profiler) Measure(run exp.RunConfig, node NodeSpec, share float64) (Profile, error) {
	key := contendedRun(run, node, share)
	if v, ok := p.cache.Get(key); ok {
		return v, nil
	}
	v, err, shared := p.flight.Do(key, func() (Profile, error) {
		// Double-check under the flight: a racing caller may have filled
		// the cache between our miss and the flight acquisition.
		if v, ok := p.cache.GetQuiet(key); ok {
			return v, nil
		}
		v, err := measure(key)
		if err == nil {
			p.runs.Add(1)
			p.cache.Put(key, v)
		}
		return v, err
	})
	if shared {
		p.coalesced.Add(1)
	}
	return v, err
}

// measure executes one profiling run.
func measure(bound exp.RunConfig) (Profile, error) {
	res, err := exp.Run(bound)
	if err != nil {
		return Profile{}, err
	}
	return Profile{
		StepTime:         res.StepTime(),
		OffloadedPerStep: res.Measured.IO.Offloaded,
		ActPeak:          res.Measured.ActPeak,
		TotalPeak:        res.Measured.TotalPeak,
		PlannedBudget:    res.PlannedBudget,
	}, nil
}

// Runs reports how many measurement executions the profiler performed.
func (p *Profiler) Runs() int64 { return p.runs.Load() }

// Coalesced reports how many requests shared another caller's in-flight
// measurement instead of running (or blocking on the LRU) themselves.
func (p *Profiler) Coalesced() int64 { return p.coalesced.Load() }

// Cached reports how many distinct profiles are resident.
func (p *Profiler) Cached() int { return p.cache.Len() }

// CacheStats returns the underlying cache's hit/miss counters.
func (p *Profiler) CacheStats() (hits, misses int64) { return p.cache.Stats() }

// primeItem is one (config, share) measurement to precompute.
type primeItem struct {
	run   exp.RunConfig
	share float64
}

// Prime concurrently precomputes every profile a simulation of the given
// jobs can request: SSD-offloading jobs contend at per-GPU shares 1/t for
// t = 1..node GPUs, all other strategies only ever run exclusively.
// Because each profile is deterministic, priming with any worker count
// leaves the cache in the same logical state, which is what makes the
// fleet simulation's reports independent of parallelism.
func (p *Profiler) Prime(jobs []Job, node NodeSpec, workers int) error {
	seen := make(map[exp.RunConfig]bool)
	var items []primeItem
	add := func(run exp.RunConfig, share float64) {
		key := contendedRun(run, node, share)
		if !seen[key] {
			seen[key] = true
			items = append(items, primeItem{run: run, share: share})
		}
	}
	for _, j := range jobs {
		if j.Run.Strategy == exp.SSDTrain {
			for t := 1; t <= node.GPUs; t++ {
				add(j.Run, 1/float64(t))
			}
		} else {
			add(j.Run, 1)
		}
	}
	_, err := ParallelMap(workers, items, func(it primeItem) (Profile, error) {
		return p.Measure(it.run, node, it.share)
	})
	return err
}
