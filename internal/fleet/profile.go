package fleet

import (
	"errors"
	"sync/atomic"
	"time"

	"ssdtrain/internal/core"
	"ssdtrain/internal/exp"
	"ssdtrain/internal/lru"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/units"
)

// Profile is the steady-state behaviour of one job measured at a given
// share of its node's NVMe array bandwidth. The fleet simulation treats
// these as the job's fluid rates: a job at share s completes steps at
// 1/StepTime(s) per second and writes OffloadedPerStep(s) per GPU per
// step to the shared array.
type Profile struct {
	// StepTime is the steady-state training step time. Jobs whose offload
	// budget is pinned (memory-constrained jobs) dilate under contention;
	// jobs using the Fig 3 planner instead offload less.
	StepTime time.Duration
	// OffloadedPerStep is the per-GPU activation volume offloaded each
	// step, across every tier of the job's hierarchy.
	OffloadedPerStep units.Bytes
	// ArrayPerStep is the slice of OffloadedPerStep that lands on the
	// node's shared NVMe array — the part that contends. A dram-first
	// hybrid granted enough DRAM writes nothing here.
	ArrayPerStep units.Bytes
	// ActPeak and TotalPeak are the per-GPU memory high-water marks; a
	// placement is feasible only if TotalPeak fits the GPU.
	ActPeak   units.Bytes
	TotalPeak units.Bytes
	// PlannedBudget is the offload budget the Fig 3 workflow chose at
	// this share (0 when the job pins its own budget).
	PlannedBudget units.Bytes
}

// StepsPerSecond is the job's fluid progress rate at this share.
func (p Profile) StepsPerSecond() float64 {
	if p.StepTime <= 0 {
		return 0
	}
	return 1 / p.StepTime.Seconds()
}

// WriteRate is the per-GPU sustained write bandwidth against the shared
// array at this share; DRAM-rung traffic stays off the array and is
// excluded.
func (p Profile) WriteRate() units.Bandwidth {
	if p.StepTime <= 0 {
		return 0
	}
	return units.Bandwidth(float64(p.ArrayPerStep) / p.StepTime.Seconds())
}

// Profiler measures job profiles by running the experiment harness with
// contended SSD bandwidth injected, memoizing results in an LRU cache.
// Profiles are pure functions of (RunConfig, node, share), so the cache
// never goes stale and concurrent fills are safe: duplicate in-flight
// measurements are coalesced through the shared lru.Singleflight, so
// concurrent identical requests from the worker pool share one simulation
// instead of racing the LRU. The fully-bound RunConfig is a pure value
// tree, so it serves as the cache key directly — no serialization on the
// hot lookup path.
type Profiler struct {
	cache  *Cache[exp.RunConfig, profEntry]
	flight lru.Singleflight[exp.RunConfig, profEntry]
	// sessions recycles execution arenas across cache-miss measurements:
	// a fleet sweep's (share × DRAM-grant) key grid shares a handful of
	// plan shapes, so after the first few misses every measurement runs
	// on a reset arena instead of building runtime, graph and offload
	// stack from scratch. Sessions reset to a just-constructed state, so
	// cached profiles are byte-identical to fresh-run profiles.
	sessions *exp.SessionPool
	// runs counts actual measurement executions (cache misses that did
	// the work); with an adequate cache capacity it equals the number of
	// distinct profiles, independent of concurrency.
	runs atomic.Int64
	// coalesced counts requests that piggybacked on another caller's
	// in-flight measurement.
	coalesced atomic.Int64
}

// profEntry is one cached measurement outcome: a profile, or the
// overflow that proved the (config, share, grant) combination
// infeasible. Caching the verdict matters — every scheduler event
// re-probes infeasible co-locations through canPlace, and without it
// each probe would re-run the whole measurement just to rediscover the
// same overflow.
type profEntry struct {
	profile  Profile
	overflow *core.OverflowError
}

// DefaultCacheCapacity holds every profile a large sweep needs: distinct
// palette configs × share levels stays well below this.
const DefaultCacheCapacity = 4096

// NewProfiler creates a profiler with the given cache capacity (0 uses
// DefaultCacheCapacity).
func NewProfiler(capacity int) *Profiler {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Profiler{
		cache:    NewCache[exp.RunConfig, profEntry](capacity),
		sessions: exp.NewSessionPool(0),
	}
}

// contendedRun binds a job's run config to its node hardware, array
// share and DRAM grant: the node's GPU and shared SSD array replace
// whatever the config carried, SSD-writing runs see only their bandwidth
// share, and DRAM-consuming runs see only their granted pool slice.
func contendedRun(run exp.RunConfig, node NodeSpec, share float64, dramGrant units.Bytes) exp.RunConfig {
	run.GPU = node.GPU
	run.SSD = node.SSD
	arrayBound := run.Strategy == exp.SSDTrain || run.Strategy == exp.HybridOffload ||
		run.Strategy == exp.OptimOffload
	if arrayBound && share > 0 && share < 1 {
		run.SSDBandwidthShare = share
	} else {
		run.SSDBandwidthShare = 0
	}
	if (run.Strategy == exp.HybridOffload || run.Strategy == exp.CPUOffload ||
		run.Strategy == exp.OptimOffload) && node.DRAM > 0 {
		run.DRAMCapacity = dramGrant
	}
	return run
}

// Measure returns the job's profile at the given array share and DRAM
// grant, running the measurement on a miss. Concurrent misses on one key
// share a single measurement via singleflight.
func (p *Profiler) Measure(run exp.RunConfig, node NodeSpec, share float64, dramGrant units.Bytes) (Profile, error) {
	key := contendedRun(run, node, share, dramGrant)
	if v, ok := p.cache.Get(key); ok {
		return v.unpack()
	}
	v, err, shared := p.flight.Do(key, func() (profEntry, error) {
		// Double-check under the flight: a racing caller may have filled
		// the cache between our miss and the flight acquisition.
		if v, ok := p.cache.GetQuiet(key); ok {
			return v, nil
		}
		prof, err := p.measure(key)
		e := profEntry{profile: prof}
		// Pool overflow is a deterministic property of the key, so the
		// infeasibility verdict is cached like any profile; other errors
		// are not (nothing should produce them repeatedly).
		if !errors.As(err, &e.overflow) && err != nil {
			return e, err
		}
		p.runs.Add(1)
		p.cache.Put(key, e)
		return e, nil
	})
	if shared {
		p.coalesced.Add(1)
	}
	if err != nil {
		return Profile{}, err
	}
	return v.unpack()
}

// unpack returns the entry's profile or its cached infeasibility error.
func (e profEntry) unpack() (Profile, error) {
	if e.overflow != nil {
		return Profile{}, e.overflow
	}
	return e.profile, nil
}

// measure executes one profiling run on a pooled session arena.
func (p *Profiler) measure(bound exp.RunConfig) (Profile, error) {
	res, err := p.sessions.Execute(bound)
	if err != nil {
		return Profile{}, err
	}
	prof := Profile{
		StepTime:         res.StepTime(),
		OffloadedPerStep: res.Measured.IO.Offloaded,
		ActPeak:          res.Measured.ActPeak,
		TotalPeak:        res.Measured.TotalPeak,
		PlannedBudget:    res.PlannedBudget,
	}
	prof.ArrayPerStep = arraySlice(res, prof.OffloadedPerStep)
	return prof, nil
}

// arraySlice apportions the steady-state per-step offload volume to the
// NVMe rungs using the run's cumulative per-tier traffic split. A
// single-rung NVMe run keeps the volume bit-exact.
func arraySlice(res *exp.RunResult, perStep units.Bytes) units.Bytes {
	var nvme, total units.Bytes
	for _, t := range res.Tiers {
		total += t.Written
		if t.Kind == core.TierNVMe {
			nvme += t.Written
		}
	}
	switch {
	case total == 0 || nvme == 0:
		return 0
	case nvme == total:
		return perStep
	default:
		return units.Bytes(float64(perStep) * float64(nvme) / float64(total))
	}
}

// Runs reports how many measurement executions the profiler performed.
func (p *Profiler) Runs() int64 { return p.runs.Load() }

// Coalesced reports how many requests shared another caller's in-flight
// measurement instead of running (or blocking on the LRU) themselves.
func (p *Profiler) Coalesced() int64 { return p.coalesced.Load() }

// Cached reports how many distinct profiles are resident.
func (p *Profiler) Cached() int { return p.cache.Len() }

// CacheStats returns the underlying cache's hit/miss counters.
func (p *Profiler) CacheStats() (hits, misses int64) { return p.cache.Stats() }

// PoolStats snapshots the profiler's session-pool counters — how often
// cache-miss measurements recycled a warm arena instead of building one.
// A long-lived profiler shared across serve requests surfaces these on
// the /metrics endpoint.
func (p *Profiler) PoolStats() exp.SessionPoolStats { return p.sessions.Stats() }

// SampleTrace re-runs one job's profiling measurement — same node
// binding, same share, same DRAM grant — with the flight recorder on and
// returns the span snapshot. Traced runs bypass the profile cache (a
// trace is a diagnostic sample, not a rate) but reuse the same pooled
// arenas, and because tracing cannot perturb a run, the sampled spans
// describe exactly the measurement whose cached profile the fleet
// simulation is using.
func (p *Profiler) SampleTrace(run exp.RunConfig, node NodeSpec, share float64, dramGrant units.Bytes) (*spans.Trace, error) {
	key := contendedRun(run, node, share, dramGrant)
	key.Trace = true
	res, err := p.sessions.Execute(key)
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// primeItem is one (config, share, grant) measurement to precompute.
type primeItem struct {
	run   exp.RunConfig
	share float64
	grant units.Bytes
}

// Prime concurrently precomputes every profile a simulation of the given
// jobs can request: array-writing jobs contend at per-GPU shares 1/t for
// t = 1..node GPUs, DRAM-consuming jobs at every pool slice the node can
// grant (the cross product, for hybrid jobs that contend on both axes),
// and all other strategies only ever run exclusively. Because each
// profile is deterministic, priming with any worker count leaves the
// cache in the same logical state, which is what makes the fleet
// simulation's reports independent of parallelism.
func (p *Profiler) Prime(jobs []Job, node NodeSpec, workers int) error {
	seen := make(map[exp.RunConfig]bool)
	var items []primeItem
	add := func(run exp.RunConfig, share float64, grant units.Bytes) {
		key := contendedRun(run, node, share, grant)
		if !seen[key] {
			seen[key] = true
			items = append(items, primeItem{run: run, share: share, grant: grant})
		}
	}
	for _, j := range jobs {
		shares := []float64{1}
		if offloadsToSSD(j) {
			shares = shares[:0]
			for t := 1; t <= node.GPUs; t++ {
				shares = append(shares, 1/float64(t))
			}
		}
		grants := []units.Bytes{j.Run.DRAMCapacity}
		if wantsDRAM(j) && node.DRAM > 0 {
			grants = grants[:0]
			for t := 1; t <= node.GPUs; t++ {
				grants = append(grants, dramGrant(node, j, t))
			}
		}
		for _, share := range shares {
			for _, grant := range grants {
				add(j.Run, share, grant)
			}
		}
	}
	_, err := ParallelMap(workers, items, func(it primeItem) (Profile, error) {
		prof, err := p.Measure(it.run, node, it.share, it.grant)
		// A pinned-budget tenant can overflow its pool at contention
		// levels the scheduler will never actually grant it: that combo
		// is simply infeasible — the verdict is now cached, and canPlace
		// maps it to "cannot co-locate" — not a priming failure.
		var ovf *core.OverflowError
		if errors.As(err, &ovf) {
			return Profile{}, nil
		}
		return prof, err
	})
	return err
}
