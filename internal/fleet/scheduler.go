package fleet

import (
	"fmt"
	"sort"
)

// Policy selects a scheduling discipline.
type Policy string

// Scheduling policies.
const (
	// FIFO places jobs strictly in arrival order; a head job that does
	// not fit blocks everything behind it.
	FIFO Policy = "fifo"
	// SJF places the shortest runnable job first (estimated exclusive
	// runtime), skipping jobs that do not fit — no head-of-line blocking.
	SJF Policy = "sjf"
	// Backfill is EASY backfilling: FIFO order with a start-time
	// reservation for the blocked head; later jobs may jump ahead only
	// where they cannot delay that reservation.
	Backfill Policy = "backfill"
)

// Valid reports whether the policy is known.
func (p Policy) Valid() bool {
	switch p {
	case FIFO, SJF, Backfill:
		return true
	}
	return false
}

// Policies lists every policy in a stable order.
func Policies() []Policy { return []Policy{FIFO, SJF, Backfill} }

// ParsePolicy resolves a policy name.
func ParsePolicy(name string) (Policy, error) {
	p := Policy(name)
	if !p.Valid() {
		return "", fmt.Errorf("fleet: unknown policy %q (want fifo, sjf or backfill)", name)
	}
	return p, nil
}

// scheduler turns the current queue and cluster state into placements,
// applying them eagerly (each placement changes feasibility for the next
// decision). Schedulers see the same contention-aware feasibility the
// simulator enforces (canPlace), but their runtime *estimates* are
// deliberately contention-blind — a real scheduler knows requested
// walltimes, not how tenants will slow each other down.
type scheduler interface {
	schedule(s *simState) error
}

func newScheduler(p Policy) scheduler {
	switch p {
	case SJF:
		return sjfScheduler{}
	case Backfill:
		return backfillScheduler{}
	default:
		return fifoScheduler{}
	}
}

// estimate is the job's expected exclusive runtime in seconds, the
// walltime a user would request: steps at the uncontended (own-node)
// step rate.
func estimate(s *simState, j *jobState) (float64, error) {
	p, err := s.exclusiveProfile(&j.Job)
	if err != nil {
		return 0, err
	}
	return float64(j.Steps) * p.StepTime.Seconds(), nil
}

// fifoScheduler: strict arrival order with head-of-line blocking.
type fifoScheduler struct{}

func (fifoScheduler) schedule(s *simState) error {
	for len(s.queue) > 0 {
		j := s.queue[0]
		n, ok, err := s.bestNode(j)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := s.place(j, n); err != nil {
			return err
		}
	}
	return nil
}

// sjfScheduler: shortest estimated job first among runnable jobs.
type sjfScheduler struct{}

func (sjfScheduler) schedule(s *simState) error {
	for {
		// Order queued jobs by (estimate, ID); estimates are memoized
		// profile lookups, so this is cheap.
		cand := append([]*jobState(nil), s.queue...)
		ests := make(map[int]float64, len(cand))
		for _, j := range cand {
			e, err := estimate(s, j)
			if err != nil {
				return err
			}
			ests[j.ID] = e
		}
		sort.SliceStable(cand, func(a, b int) bool {
			if ests[cand[a].ID] != ests[cand[b].ID] {
				return ests[cand[a].ID] < ests[cand[b].ID]
			}
			return cand[a].ID < cand[b].ID
		})
		placed := false
		for _, j := range cand {
			n, ok, err := s.bestNode(j)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := s.place(j, n); err != nil {
				return err
			}
			placed = true
			break // re-evaluate: the placement changed feasibility
		}
		if !placed {
			return nil
		}
	}
}

// backfillScheduler: EASY backfilling.
type backfillScheduler struct{}

func (backfillScheduler) schedule(s *simState) error {
	for {
		// Place the head while it fits, like FIFO.
		for len(s.queue) > 0 {
			j := s.queue[0]
			n, ok, err := s.bestNode(j)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if err := s.place(j, n); err != nil {
				return err
			}
		}
		if len(s.queue) == 0 {
			return nil
		}
		// Head blocked: reserve the node that frees its GPUs earliest
		// (assuming tenants run out their current rates).
		head := s.queue[0]
		resNode, resTime := s.reservation(head)
		if resNode < 0 {
			return nil // nothing running anywhere; arrivals must unblock us
		}
		placed := false
		for _, j := range s.queue[1:] {
			n, ok, err := s.bestNode(j)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if n == resNode {
				e, err := estimate(s, j)
				if err != nil {
					return err
				}
				if s.now+e > resTime+timeEps {
					continue // would delay the reservation
				}
			}
			if err := s.place(j, n); err != nil {
				return err
			}
			placed = true
			break // re-evaluate head and reservation from scratch
		}
		if !placed {
			return nil
		}
	}
}

// reservation estimates when and where the head job can start: for each
// node, replay the tenants' completion times (at current rates) until
// enough GPUs are free. Returns the earliest node, or -1 if the cluster
// is empty of running jobs and the head still cannot be placed.
func (s *simState) reservation(head *jobState) (int, float64) {
	bestNode, bestTime := -1, 0.0
	for n, node := range s.nodes {
		etas := make([]struct {
			t    float64
			gpus int
		}, 0, len(node.running))
		for _, j := range node.running {
			etas = append(etas, struct {
				t    float64
				gpus int
			}{s.now + j.remaining/j.rate, j.GPUs})
		}
		sort.Slice(etas, func(a, b int) bool { return etas[a].t < etas[b].t })
		free := node.freeGPUs
		when, found := s.now, free >= head.GPUs
		for _, e := range etas {
			if found {
				break
			}
			free += e.gpus
			if free >= head.GPUs {
				when, found = e.t, true
			}
		}
		if !found {
			continue
		}
		if bestNode == -1 || when < bestTime {
			bestNode, bestTime = n, when
		}
	}
	return bestNode, bestTime
}
