package fleet

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// testCluster is a small cluster that keeps profiling cost low.
func testCluster(nodes int) ClusterSpec {
	return ClusterSpec{Nodes: nodes, Node: DefaultNodeSpec()}
}

// planJob is a planner-driven SSDTrain job.
func planJob(id, gpus, steps int) Job {
	return Job{
		ID:    id,
		Name:  fmt.Sprintf("plan-%d", id),
		Run:   exp.RunConfig{Model: models.PaperConfig(models.BERT, 8192, 4, 8), Strategy: exp.SSDTrain},
		GPUs:  gpus,
		Steps: steps,
	}
}

// pinJob offloads everything with forwarding disabled, so contention
// dilates its step time.
func pinJob(id, gpus, steps int) Job {
	return Job{
		ID:   id,
		Name: fmt.Sprintf("pin-%d", id),
		Run: exp.RunConfig{
			Model:           models.PaperConfig(models.BERT, 8192, 4, 8),
			Strategy:        exp.SSDTrain,
			Budget:          fullOffload,
			NoForwarding:    true,
			KeepLastModules: -1,
		},
		GPUs:  gpus,
		Steps: steps,
	}
}

// renderAll is the full deterministic rendering of a sweep.
func renderAll(reports []*Report) string {
	var b strings.Builder
	for _, r := range reports {
		b.WriteString(r.String())
		b.WriteString(r.JobTable().String())
	}
	b.WriteString(CompareTable(reports).String())
	return b.String()
}

// TestDeterminismAcrossWorkers is the subsystem's core contract: the same
// seed and job mix produce byte-identical fleet reports for worker-pool
// sizes 1, 4 and NumCPU (run under -race by CI, and -count=2 safe —
// nothing is package-global).
func TestDeterminismAcrossWorkers(t *testing.T) {
	mix := DefaultJobMix(MixConfig{Jobs: 16, Seed: 7, MinSteps: 10, MaxSteps: 60})
	cluster := testCluster(4)
	var want string
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		reports, err := PolicySweep(cluster, mix, Policies(), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderAll(reports)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d produced a different report", workers)
		}
	}
}

// TestMixDeterminism pins the seeded generator: one seed, one mix.
func TestMixDeterminism(t *testing.T) {
	a := DefaultJobMix(MixConfig{Jobs: 64, Seed: 3})
	b := DefaultJobMix(MixConfig{Jobs: 64, Seed: 3})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different job mixes")
	}
	c := DefaultJobMix(MixConfig{Jobs: 64, Seed: 4})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical job mixes")
	}
	if len(a) != 64 {
		t.Fatalf("mix size = %d, want 64", len(a))
	}
	if got := DefaultJobMix(MixConfig{Jobs: -3, Seed: 1}); len(got) != 0 {
		t.Fatalf("negative job count produced %d jobs, want empty mix", len(got))
	}
	for _, j := range DefaultJobMix(MixConfig{Jobs: 32, Seed: 5, MaxGPUs: 2}) {
		if j.GPUs > 2 {
			t.Fatalf("job %d footprint %d exceeds MaxGPUs 2", j.ID, j.GPUs)
		}
	}
}

// TestSchedulingPolicies builds a head-of-line blocking situation on one
// node: a 2-GPU long job runs, a 4-GPU long job blocks at the head, and
// two 1-GPU shorts sit behind it. FIFO makes the shorts wait; SJF and
// EASY backfill start them immediately.
func TestSchedulingPolicies(t *testing.T) {
	jobs := []Job{
		planJob(0, 2, 200),
		planJob(1, 4, 200),
		planJob(2, 1, 5),
		planJob(3, 1, 5),
	}
	byPolicy := map[Policy]*Report{}
	prof := NewProfiler(0)
	for _, p := range Policies() {
		r, err := Simulate(Config{Cluster: testCluster(1), Jobs: jobs, Policy: p, Profiler: prof})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		byPolicy[p] = r
	}
	shortWait := func(r *Report) time.Duration {
		for _, j := range r.JobReports {
			if j.ID == 2 {
				return j.Wait
			}
		}
		t.Fatal("job 2 missing from report")
		return 0
	}
	if w := shortWait(byPolicy[FIFO]); w == 0 {
		t.Error("FIFO: short job did not wait behind the blocked head")
	}
	if w := shortWait(byPolicy[SJF]); w != 0 {
		t.Errorf("SJF: short job waited %v, want immediate start", w)
	}
	if w := shortWait(byPolicy[Backfill]); w != 0 {
		t.Errorf("backfill: short job waited %v, want backfilled start", w)
	}
	// The blocked head must still run eventually under every policy.
	for p, r := range byPolicy {
		for _, j := range r.JobReports {
			if j.Runtime <= 0 {
				t.Errorf("%s: job %d never ran", p, j.ID)
			}
		}
	}
}

// TestContentionDilatesPinnedJobs co-locates four pinned-budget jobs on
// one node and checks they run slower than their exclusive estimate —
// the shared-array contention the subsystem exists to model.
func TestContentionDilatesPinnedJobs(t *testing.T) {
	jobs := []Job{pinJob(0, 1, 20), pinJob(1, 1, 20), pinJob(2, 1, 20), pinJob(3, 1, 20)}
	r, err := Simulate(Config{Cluster: testCluster(1), Jobs: jobs, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanSlowdown < 1.1 {
		t.Errorf("mean slowdown %.2f, want contention-dilated > 1.1", r.MeanSlowdown)
	}
	if r.NodeReports[0].Written <= 0 {
		t.Error("no writes recorded on the shared array")
	}
	// Solo, the same job suffers no contention.
	solo, err := Simulate(Config{Cluster: testCluster(1), Jobs: jobs[:1], Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if solo.MeanSlowdown > 1.01 {
		t.Errorf("solo slowdown %.2f, want ~1", solo.MeanSlowdown)
	}
	if r.Makespan <= solo.Makespan {
		t.Errorf("co-located makespan %v not above solo %v", r.Makespan, solo.Makespan)
	}
}

// TestEnduranceLedger checks the fleet wear accounting: more tenants
// write more, consuming drive life faster.
func TestEnduranceLedger(t *testing.T) {
	one, err := Simulate(Config{Cluster: testCluster(1), Jobs: []Job{planJob(0, 1, 50)}, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Simulate(Config{Cluster: testCluster(1), Jobs: []Job{
		planJob(0, 1, 50), planJob(1, 1, 50), planJob(2, 1, 50), planJob(3, 1, 50),
	}, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if four.TotalWritten <= one.TotalWritten {
		t.Errorf("4 tenants wrote %v, solo wrote %v", four.TotalWritten, one.TotalWritten)
	}
	if four.MinLifespanYears >= one.MinLifespanYears {
		t.Errorf("lifespan did not degrade under multi-tenant pressure: %v vs %v",
			four.MinLifespanYears, one.MinLifespanYears)
	}
	if one.MinLifespanYears <= 0 || one.MinLifespanYears > 100 {
		t.Errorf("lifespan out of range: %v years", one.MinLifespanYears)
	}
}

// tightNode is a node where contention genuinely runs out of GPU memory:
// 40 GiB A100s over a 2-drive array, so a pinned-budget job's in-flight
// copies balloon as its share thins (34.6 GB exclusive, 52.2 GB at 1/2,
// 61.5 GB at 1/4).
func tightNode() NodeSpec {
	node := DefaultNodeSpec()
	node.GPU = gpu.A100PCIe()
	node.SSD.Count = 2
	return node
}

func tightPinJob(id, gpus, steps int) Job {
	return Job{
		ID:   id,
		Name: fmt.Sprintf("tight-pin-%d", id),
		Run: exp.RunConfig{
			Model:    models.PaperConfig(models.BERT, 8192, 4, 16),
			Strategy: exp.SSDTrain,
			Budget:   fullOffload,
		},
		GPUs:  gpus,
		Steps: steps,
	}
}

// TestExclusiveInfeasibleJob: spread over 4 GPUs (a 1/4 array share even
// alone), the pinned job cannot hold its in-flight copies; Simulate must
// reject it up front rather than deadlock.
func TestExclusiveInfeasibleJob(t *testing.T) {
	_, err := Simulate(Config{
		Cluster: ClusterSpec{Nodes: 1, Node: tightNode()},
		Jobs:    []Job{tightPinJob(0, 4, 10)},
		Policy:  FIFO,
	})
	if err == nil || !strings.Contains(err.Error(), "uncontended") {
		t.Fatalf("want exclusive-infeasibility error, got %v", err)
	}
}

// TestMemoryFeasibilityLimitsCoTenancy: two 1-GPU pinned jobs each fit a
// node alone but not together (a 1/2 share overflows the 40 GiB GPU), so
// the scheduler must serialize them even though GPUs are free.
func TestMemoryFeasibilityLimitsCoTenancy(t *testing.T) {
	jobs := []Job{tightPinJob(0, 1, 10), tightPinJob(1, 1, 10)}
	r, err := Simulate(Config{
		Cluster: ClusterSpec{Nodes: 1, Node: tightNode()},
		Jobs:    jobs,
		Policy:  FIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	second := r.JobReports[1]
	if second.Wait <= 0 {
		t.Error("second pinned job co-located despite overflowing GPU memory")
	}
	if got, want := r.Makespan, 2*r.JobReports[0].Runtime; got < want-time.Millisecond {
		t.Errorf("makespan %v shows overlap; want serialized ≥ %v", got, want)
	}
	// On a two-node cluster the same pair runs concurrently.
	spread, err := Simulate(Config{
		Cluster: ClusterSpec{Nodes: 2, Node: tightNode()},
		Jobs:    jobs,
		Policy:  FIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	if spread.JobReports[1].Wait != 0 {
		t.Error("second job waited despite a free second node")
	}
}

// TestValidate covers configuration rejections.
func TestValidate(t *testing.T) {
	good := Config{Cluster: testCluster(1), Jobs: []Job{planJob(0, 1, 1)}, Policy: FIFO}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no nodes", func(c *Config) { c.Cluster.Nodes = 0 }},
		{"no gpus", func(c *Config) { c.Cluster.Node.GPUs = 0 }},
		{"no ssd", func(c *Config) { c.Cluster.Node.SSD.Count = 0 }},
		{"bad policy", func(c *Config) { c.Policy = "lottery" }},
		{"no jobs", func(c *Config) { c.Jobs = nil }},
		{"oversized job", func(c *Config) { c.Jobs[0].GPUs = 99 }},
		{"no steps", func(c *Config) { c.Jobs[0].Steps = 0 }},
		{"negative submit", func(c *Config) { c.Jobs[0].Submit = -time.Second }},
	}
	for _, tc := range cases {
		cfg := good
		cfg.Jobs = append([]Job(nil), good.Jobs...)
		tc.mutate(&cfg)
		if _, err := Simulate(cfg); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

// TestArrivals: a staggered mix still completes, and nobody starts
// before submitting.
func TestArrivals(t *testing.T) {
	mix := DefaultJobMix(MixConfig{Jobs: 8, Seed: 2, MinSteps: 5, MaxSteps: 20, SubmitSpread: 5 * time.Minute})
	r, err := Simulate(Config{Cluster: testCluster(2), Jobs: mix, Policy: Backfill})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range r.JobReports {
		if j.Submit+j.Wait+j.Runtime > r.Makespan+time.Millisecond {
			t.Errorf("job %d finishes after makespan", j.ID)
		}
	}
}

// TestParallelMap pins the pool's contract: input order, worker
// independence, lowest-index error.
func TestParallelMap(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{1, 3, 64, 200} {
		out, err := ParallelMap(workers, in, func(x int) (int, error) { return x * x, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	wantErr := errors.New("boom-17")
	_, err := ParallelMap(8, in, func(x int) (int, error) {
		if x == 17 || x == 63 {
			return 0, fmt.Errorf("boom-%d", x)
		}
		return x, nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("error = %v, want lowest-index %v", err, wantErr)
	}
	if out, err := ParallelMap(4, nil, func(x int) (int, error) { return x, nil }); err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v %v", out, err)
	}
}

// TestCacheLRU pins eviction order and stats.
func TestCacheLRU(t *testing.T) {
	c := NewCache[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatal("a evicted out of order")
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatal("c missing")
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("stats = %d hits %d misses, want 3/1", hits, misses)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

// TestProfilerMemoization: repeated measurements run the harness once.
func TestProfilerMemoization(t *testing.T) {
	p := NewProfiler(0)
	node := DefaultNodeSpec()
	run := exp.RunConfig{Model: models.PaperConfig(models.BERT, 8192, 4, 8), Strategy: exp.SSDTrain}
	a, err := p.Measure(run, node, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Measure(run, node, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("memoized profile differs")
	}
	if p.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", p.Runs())
	}
	if hits, misses := p.CacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits %d misses, want 1/1", hits, misses)
	}
	if a.StepTime <= 0 || a.OffloadedPerStep <= 0 || a.TotalPeak <= 0 {
		t.Fatalf("degenerate profile: %+v", a)
	}
	// A thinner share must not offload more.
	quarter, err := p.Measure(run, node, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if quarter.OffloadedPerStep > a.OffloadedPerStep {
		t.Errorf("planner offloaded more under contention: %v > %v",
			quarter.OffloadedPerStep, a.OffloadedPerStep)
	}
}

// TestProfileWriteRate sanity-checks the fluid rate helpers.
func TestProfileWriteRate(t *testing.T) {
	p := Profile{StepTime: 2 * time.Second, OffloadedPerStep: 10 * units.GB, ArrayPerStep: 10 * units.GB}
	if got := p.StepsPerSecond(); got != 0.5 {
		t.Errorf("StepsPerSecond = %v", got)
	}
	if got := p.WriteRate(); got != 5*units.GBps {
		t.Errorf("WriteRate = %v", got)
	}
	var zero Profile
	if zero.StepsPerSecond() != 0 || zero.WriteRate() != 0 {
		t.Error("zero profile must have zero rates")
	}
}

// TestProfilerSampleTrace: a sampled per-job trace carries spans for the
// same contended measurement the cached profile describes, and sampling
// does not perturb the profile cache.
func TestProfilerSampleTrace(t *testing.T) {
	p := NewProfiler(0)
	node := DefaultNodeSpec()
	run := exp.RunConfig{Model: models.PaperConfig(models.BERT, 8192, 4, 8), Strategy: exp.SSDTrain}
	prof, err := p.Measure(run, node, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	runsBefore := p.Runs()
	tr, err := p.SampleTrace(run, node, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || len(tr.Spans) == 0 {
		t.Fatal("sampled trace is empty")
	}
	if len(tr.Tracks) == 0 {
		t.Fatal("sampled trace has no tracks")
	}
	// Sampling is cache-neutral: no profile run was charged, and the
	// cached profile is untouched.
	if p.Runs() != runsBefore {
		t.Errorf("sampling charged a profile run: %d -> %d", runsBefore, p.Runs())
	}
	again, err := p.Measure(run, node, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prof, again) {
		t.Error("profile changed after trace sampling")
	}
}
