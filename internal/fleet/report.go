package fleet

import (
	"fmt"
	"strings"
	"time"

	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// NodeReport summarizes one node over the simulation.
type NodeReport struct {
	Node int
	// Placements counts jobs that ran on the node.
	Placements int
	// GPUUtil is GPU-seconds busy over GPUs × makespan.
	GPUUtil float64
	// Written is total host writes to the node's shared array.
	Written units.Bytes
	// WriteUtil is the time-averaged fraction of the array's write
	// bandwidth consumed by offload traffic.
	WriteUtil float64
	// MeanWriteBW is Written over the makespan.
	MeanWriteBW units.Bandwidth
	// WearFraction is the share of the array's endurance budget consumed.
	WearFraction float64
	// LifespanYears projects the array's life if this window's write
	// pressure continued (100 = effectively idle).
	LifespanYears float64
	// DRAMPeak is the high-water mark of pinned host memory granted to
	// DRAM-offloading tenants (0 when the node ran none).
	DRAMPeak units.Bytes
	// Deaths/Drains count fault events that fired against the node;
	// RebuildTime is the total RAID-rebuild window during which the
	// rebuild steal thinned tenant bandwidth; Killed counts job evictions
	// (each one a checkpoint restart somewhere else). All zero without a
	// fault plan.
	Deaths      int
	Drains      int
	RebuildTime time.Duration
	Killed      int
}

// JobReport summarizes one job's fate.
type JobReport struct {
	ID      int
	Name    string
	Node    int
	GPUs    int
	Submit  time.Duration
	Wait    time.Duration
	Runtime time.Duration
	// Slowdown is achieved runtime over the exclusive estimate; >1 means
	// the job lost throughput to array contention.
	Slowdown float64
	// Written is the job's total host writes (all its GPUs).
	Written units.Bytes
	// Restarts counts checkpoint restarts after fault kills (0 without a
	// fault plan).
	Restarts int
}

// Report is the outcome of one fleet simulation. Given a fixed Config
// (and seed-fixed job mix), its rendering is byte-identical across runs
// and worker-pool sizes.
type Report struct {
	Policy      Policy
	Nodes       int
	GPUsPerNode int
	JobCount    int
	// Makespan is the last job's finish time.
	Makespan time.Duration
	// MeanWait/MaxWait measure queueing delay (start − submit).
	MeanWait time.Duration
	MaxWait  time.Duration
	// MeanSlowdown averages per-job contention slowdowns.
	MeanSlowdown float64
	// TotalWritten is fleet-wide host writes to the shared arrays.
	TotalWritten units.Bytes
	// MinLifespanYears/MeanLifespanYears project drive life under the
	// observed multi-tenant write pressure (§III-D extended fleet-wide).
	MinLifespanYears  float64
	MeanLifespanYears float64
	NodeReports       []NodeReport
	JobReports        []JobReport
	// UsesDRAM marks that at least one tenant consumed the node DRAM
	// budget; the tables add their DRAM columns only then, keeping
	// NVMe-only reports byte-identical to the pre-hierarchy renderings.
	UsesDRAM bool
	// DRAMBudget echoes the per-node pinned-pool budget when used.
	DRAMBudget units.Bytes
	// UsesFaults marks that the simulation ran under a fault plan; the
	// tables and summary add their failure columns only then, mirroring
	// UsesDRAM so fault-free reports stay byte-identical to the committed
	// goldens.
	UsesFaults bool
	// TotalDeaths/TotalDrains/TotalRestarts aggregate the fault ledgers
	// fleet-wide.
	TotalDeaths   int
	TotalDrains   int
	TotalRestarts int
}

// report assembles the Report after the event loop drains.
func (s *simState) report() *Report {
	r := &Report{
		Policy:      s.cfg.Policy,
		Nodes:       len(s.nodes),
		GPUsPerNode: s.cfg.Cluster.Node.GPUs,
		JobCount:    len(s.jobs),
		UsesFaults:  !s.cfg.Faults.Empty(),
	}
	makespan := 0.0
	for _, j := range s.jobs {
		if j.finish > makespan {
			makespan = j.finish
		}
	}
	r.Makespan = seconds(makespan)

	var waitSum, slowSum float64
	for _, j := range s.jobs {
		wait := j.start - j.Submit.Seconds()
		if wait < 0 {
			wait = 0
		}
		runtime := j.finish - j.start
		est, err := estimate(s, j)
		if err != nil {
			// Every job's exclusive profile was measured during
			// validation; a miss here is a bug.
			panic(err)
		}
		slow := 1.0
		if est > 0 {
			slow = runtime / est
		}
		waitSum += wait
		slowSum += slow
		if w := seconds(wait); w > r.MaxWait {
			r.MaxWait = w
		}
		r.JobReports = append(r.JobReports, JobReport{
			ID:       j.ID,
			Name:     j.Name,
			Node:     j.node,
			GPUs:     j.GPUs,
			Submit:   j.Submit,
			Wait:     seconds(wait),
			Runtime:  seconds(runtime),
			Slowdown: slow,
			Written:  units.Bytes(j.written),
			Restarts: j.restarts,
		})
		r.TotalRestarts += j.restarts
	}
	if n := len(s.jobs); n > 0 {
		r.MeanWait = seconds(waitSum / float64(n))
		r.MeanSlowdown = slowSum / float64(n)
	}

	lifeSum := 0.0
	r.MinLifespanYears = -1
	for i, node := range s.nodes {
		node.wear.Extend(r.Makespan)
		years := node.wear.ProjectedYears()
		nr := NodeReport{
			Node:          i,
			Placements:    node.placements,
			Written:       node.wear.Written(),
			MeanWriteBW:   node.wear.MeanWriteBandwidth(),
			WearFraction:  node.wear.WearFraction(),
			LifespanYears: years,
			DRAMPeak:      node.dramPeak,
		}
		if node.dramPeak > 0 {
			r.UsesDRAM = true
			r.DRAMBudget = node.spec.DRAM
		}
		if nf := node.faults; nf != nil {
			nr.Deaths = nf.deaths
			nr.Drains = nf.drains
			nr.RebuildTime = seconds(nf.rebuildTime)
			nr.Killed = nf.killed
			r.TotalDeaths += nf.deaths
			r.TotalDrains += nf.drains
		}
		if makespan > 0 {
			nr.GPUUtil = node.busyGPUSecs / (float64(node.spec.GPUs) * makespan)
			nr.WriteUtil = node.writeSecs / makespan
		}
		r.NodeReports = append(r.NodeReports, nr)
		r.TotalWritten += nr.Written
		lifeSum += years
		if r.MinLifespanYears < 0 || years < r.MinLifespanYears {
			r.MinLifespanYears = years
		}
	}
	if n := len(s.nodes); n > 0 {
		r.MeanLifespanYears = lifeSum / float64(n)
	}
	return r
}

// seconds converts float seconds to a rounded Duration; microsecond
// rounding swallows float noise far below any step time.
func seconds(s float64) time.Duration {
	return time.Duration(s*1e6+0.5) * time.Microsecond
}

// NodeTable renders per-node SSD utilization and endurance, plus the
// pinned-DRAM high-water mark when any tenant offloaded to host memory.
func (r *Report) NodeTable() *trace.Table {
	cols := []string{"node", "jobs", "gpu util", "written", "write util", "mean BW", "wear", "lifespan"}
	if r.UsesDRAM {
		cols = append(cols, "dram peak")
	}
	if r.UsesFaults {
		cols = append(cols, "deaths", "rebuild", "killed")
	}
	t := trace.NewTable(
		fmt.Sprintf("per-node shared-SSD utilization and endurance (%s)", r.Policy),
		cols...)
	for _, n := range r.NodeReports {
		row := []any{
			fmt.Sprintf("node%02d", n.Node),
			n.Placements,
			pctCell(n.GPUUtil),
			n.Written,
			pctCell(n.WriteUtil),
			n.MeanWriteBW,
			fmt.Sprintf("%.4f%%", n.WearFraction*100),
			fmt.Sprintf("%.1f y", n.LifespanYears),
		}
		if r.UsesDRAM {
			row = append(row, n.DRAMPeak)
		}
		if r.UsesFaults {
			row = append(row, n.Deaths, n.RebuildTime.Round(time.Second), n.Killed)
		}
		t.AddRow(row...)
	}
	return t
}

// JobTable renders every job's fate.
func (r *Report) JobTable() *trace.Table {
	cols := []string{"job", "name", "node", "gpus", "submit", "wait", "runtime", "slowdown", "written"}
	if r.UsesFaults {
		cols = append(cols, "restarts")
	}
	t := trace.NewTable(fmt.Sprintf("per-job schedule (%s)", r.Policy), cols...)
	for _, j := range r.JobReports {
		row := []any{
			j.ID,
			j.Name,
			fmt.Sprintf("node%02d", j.Node),
			j.GPUs,
			j.Submit.Round(time.Millisecond),
			j.Wait.Round(time.Millisecond),
			j.Runtime.Round(time.Millisecond),
			fmt.Sprintf("%.2f×", j.Slowdown),
			j.Written,
		}
		if r.UsesFaults {
			row = append(row, j.Restarts)
		}
		t.AddRow(row...)
	}
	return t
}

// Summary renders the headline metrics as text.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %-9s  %d jobs on %d nodes × %d GPUs\n",
		r.Policy, r.JobCount, r.Nodes, r.GPUsPerNode)
	fmt.Fprintf(&b, "  makespan        %v\n", r.Makespan.Round(time.Millisecond))
	fmt.Fprintf(&b, "  wait mean/max   %v / %v\n",
		r.MeanWait.Round(time.Millisecond), r.MaxWait.Round(time.Millisecond))
	fmt.Fprintf(&b, "  mean slowdown   %.2f×\n", r.MeanSlowdown)
	fmt.Fprintf(&b, "  fleet writes    %v\n", r.TotalWritten)
	fmt.Fprintf(&b, "  drive lifespan  min %.1f y, mean %.1f y\n",
		r.MinLifespanYears, r.MeanLifespanYears)
	if r.UsesDRAM {
		peak := units.Bytes(0)
		for _, n := range r.NodeReports {
			if n.DRAMPeak > peak {
				peak = n.DRAMPeak
			}
		}
		fmt.Fprintf(&b, "  dram peak/node  %v of %v budget\n", peak, r.DRAMBudget)
	}
	if r.UsesFaults {
		fmt.Fprintf(&b, "  faults          %d device deaths, %d drains, %d job restarts\n",
			r.TotalDeaths, r.TotalDrains, r.TotalRestarts)
	}
	return b.String()
}

// String renders the summary plus the node table.
func (r *Report) String() string {
	return r.Summary() + r.NodeTable().String()
}

// RenderReports renders a sweep's reports in full — per-report summary,
// node table and job table, then the policy comparison. The
// byte-identity goldens pin exactly this rendering, and goldengen
// regenerates them through the same function, so the two cannot drift.
func RenderReports(reports []*Report) string {
	var b strings.Builder
	for _, r := range reports {
		b.WriteString(r.Summary())
		b.WriteString(r.NodeTable().String())
		b.WriteString(r.JobTable().String())
	}
	b.WriteString(CompareTable(reports).String())
	return b.String()
}

func pctCell(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
