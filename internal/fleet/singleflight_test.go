package fleet

import (
	"reflect"
	"sync"
	"testing"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/models"
)

// TestProfilerSingleflightRace hammers one profile key from many
// goroutines (run under -race in CI) and asserts exactly one measurement
// executed: concurrent identical requests share a single simulation
// instead of racing the LRU.
func TestProfilerSingleflightRace(t *testing.T) {
	prof := NewProfiler(0)
	node := DefaultNodeSpec()
	run := exp.RunConfig{Model: models.PaperConfig(models.BERT, 2048, 2, 4), Strategy: exp.SSDTrain}

	const callers = 32
	results := make([]Profile, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := prof.Measure(run, node, 0.5, 0)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = p
		}(i)
	}
	wg.Wait()

	if got := prof.Runs(); got != 1 {
		t.Fatalf("measurement ran %d times, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d received a different profile", i)
		}
	}
	// Everyone except the flight owner either coalesced onto the flight
	// or arrived after the cache was filled.
	if prof.Coalesced() > callers-1 {
		t.Fatalf("coalesced = %d", prof.Coalesced())
	}
}

// TestProfilerSingleflightDistinctKeys asserts distinct keys do not
// coalesce: shares map to separate simulations.
func TestProfilerSingleflightDistinctKeys(t *testing.T) {
	prof := NewProfiler(0)
	node := DefaultNodeSpec()
	run := exp.RunConfig{Model: models.PaperConfig(models.BERT, 2048, 2, 4), Strategy: exp.SSDTrain}
	shares := []float64{1, 0.5, 0.25, 0.125}

	var wg sync.WaitGroup
	for _, s := range shares {
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(s float64) {
				defer wg.Done()
				if _, err := prof.Measure(run, node, s, 0); err != nil {
					t.Error(err)
				}
			}(s)
		}
	}
	wg.Wait()
	if got := prof.Runs(); got != int64(len(shares)) {
		t.Fatalf("runs = %d, want %d", got, len(shares))
	}
}

// TestAdaptiveProfilesMatchFixed asserts a fleet simulation with
// AdaptiveProfiles produces a byte-identical report: profiles converge to
// the same steady state, only the profiling cost changes.
func TestAdaptiveProfilesMatchFixed(t *testing.T) {
	node := DefaultNodeSpec()
	var jobs []Job
	for i := 0; i < 4; i++ {
		strat := exp.SSDTrain
		if i%2 == 1 {
			strat = exp.Recompute
		}
		jobs = append(jobs, Job{
			ID: i, Name: "job",
			Run:   exp.RunConfig{Model: models.PaperConfig(models.BERT, 2048, 2, 4), Strategy: strat, Steps: 8},
			GPUs:  1 + i%2,
			Steps: 40,
		})
	}
	cluster := ClusterSpec{Nodes: 2, Node: node}

	fixed, err := Simulate(Config{Cluster: cluster, Jobs: jobs, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Simulate(Config{Cluster: cluster, Jobs: jobs, Policy: FIFO, AdaptiveProfiles: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fixed, adaptive) {
		t.Error("adaptive-profile report differs from fixed-step report")
	}
}
