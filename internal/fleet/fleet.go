// Package fleet simulates a multi-job training cluster on top of the
// single-node substrates: N nodes × M GPUs, a queue of heterogeneous
// training jobs, pluggable scheduling policies, per-node NVMe arrays that
// co-located jobs contend for, and a fleet-wide endurance ledger. The
// paper evaluates SSDTrain on one 2-GPU node, but its §III-D endurance
// model and Fig 5/Fig 8b projections are about fleet-scale deployments
// where many jobs share drive arrays; this package closes that gap.
//
// Each job's behaviour at every possible contention level is measured
// once by the experiment harness (exp.Run with the node array's
// bandwidth share injected) and memoized; the cluster simulation then
// advances jobs fluidly at the measured step rates. Contention is
// two-sided, exactly as the substrate predicts: jobs that let the Fig 3
// planner choose their budget respond to a thinner share by offloading
// less (raising their GPU memory peak — a placement feasibility
// constraint), while memory-constrained jobs with pinned budgets keep
// offloading and dilate their step time instead.
//
// Profiling runs execute concurrently through a deterministic worker
// pool; the event loop itself is sequential, so a fixed job mix produces
// byte-identical reports for any worker count.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ssdtrain/internal/core"
	"ssdtrain/internal/exp"
	"ssdtrain/internal/faults"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/units"
)

// NodeSpec describes one node: its GPUs and the NVMe array they share.
// Unlike the paper's testbed, where each GPU owns a private 4-drive
// array, a fleet node exposes one array to all tenants — even a single
// job's GPUs contend with each other.
type NodeSpec struct {
	GPUs int
	GPU  gpu.Spec
	SSD  exp.SSDSetup
	// DRAM is the node's pinned host-memory budget, contended by tenants
	// whose strategy keeps a DRAM offload rung (hybrid and cpu-offload
	// jobs): each DRAM-using GPU is granted an equal slice, capped at the
	// job's requested capacity, mirroring how the NVMe array's bandwidth
	// is shared. 0 disables the DRAM model (jobs keep their requested
	// capacities unmodified).
	DRAM units.Bytes
}

// DefaultNodeSpec is the fleet evaluation node: 4× A100-SXM-80GB (the GPU
// of the paper's large-scale projections) sharing an 8-drive Samsung
// 980 PRO array — two drives' worth of bandwidth per GPU when the node is
// full, half the paper's per-GPU testbed provisioning, so contention has
// real dynamic range.
func DefaultNodeSpec() NodeSpec {
	return NodeSpec{
		GPUs: 4,
		GPU:  gpu.A100SXM(),
		SSD:  exp.SSDSetup{Spec: ssd.Samsung980Pro1TB(), Count: 8, Stripe: 512 * units.KiB},
		// 512 GiB of host memory for pinned offload pools — 128 GiB per
		// GPU when the node is full, comfortably above a single job's
		// working set but tight once several hybrid tenants co-locate.
		DRAM: 512 * units.GiB,
	}
}

// ClusterSpec is a homogeneous cluster of nodes.
type ClusterSpec struct {
	Nodes int
	Node  NodeSpec
}

// Job is one queued training job.
type Job struct {
	ID   int
	Name string
	// Run is the single-GPU measurement config (model, strategy, knobs);
	// the node's GPU and SSD array are bound in by the simulation.
	Run exp.RunConfig
	// GPUs is the job's placement footprint on one node.
	GPUs int
	// Steps is the training length in optimizer steps.
	Steps int
	// Submit is the job's arrival time.
	Submit time.Duration
}

// Config configures one fleet simulation.
type Config struct {
	Cluster ClusterSpec
	Jobs    []Job
	Policy  Policy
	// Workers bounds profiling concurrency (0 = GOMAXPROCS). It never
	// affects results, only wall-clock time.
	Workers int
	// CacheCapacity sizes the profile cache (0 = DefaultCacheCapacity).
	CacheCapacity int
	// Profiler optionally shares a warm profile cache across simulations
	// (policy sweeps reuse every profile).
	Profiler *Profiler
	// AdaptiveProfiles opts every job's profiling run into adaptive
	// steady-state detection (exp.RunConfig.AdaptiveSteps): measurement
	// stops as soon as consecutive steps agree exactly, cutting the fixed
	// warmup+steps cost of long sweeps. Converged profiles are identical
	// to fixed-step profiles, but the flag changes the profile cache keys,
	// so mix adaptive and fixed sweeps over one shared Profiler only if
	// paying both measurement sets is acceptable.
	AdaptiveProfiles bool
	// Faults schedules deterministic fleet-level fault injection: device
	// deaths (timed or wear-triggered) that steal rebuild bandwidth from
	// co-located tenants, transient degradation windows, and node drains
	// that kill and re-queue jobs under a checkpoint-restart cost model.
	// The empty plan injects nothing and keeps the report byte-identical
	// to a fault-free simulation.
	Faults faults.Plan
}

// jobState tracks one job through the simulation.
type jobState struct {
	Job
	running   bool
	node      int
	remaining float64 // steps left
	start     float64 // seconds
	finish    float64 // seconds
	rate      float64 // steps per second at current share
	writeRate float64 // bytes per second to the node array (all GPUs)
	written   float64 // bytes written so far
	// penaltyLeft is the restart penalty still to pay before the job makes
	// progress again (a fault killed it and it restarted from checkpoint).
	penaltyLeft float64
	// restarts counts checkpoint restarts after fault kills.
	restarts int
}

// nodeState tracks one node.
type nodeState struct {
	spec     NodeSpec
	freeGPUs int
	running  []*jobState
	// offGPUs is the GPU count of SSD-offloading tenants; each offloading
	// GPU gets a 1/offGPUs share of the array.
	offGPUs int
	// dramGPUs is the GPU count of DRAM-consuming tenants; each gets an
	// equal slice of the node's pinned-pool budget (capped at its job's
	// request). Zero when the node models no DRAM.
	dramGPUs int
	// dramReserved/dramPeak track the pinned bytes currently granted and
	// their high-water mark.
	dramReserved units.Bytes
	dramPeak     units.Bytes
	wear         *ssd.ArrayWear
	// writeSecs integrates min(demand/capacity, 1) for utilization.
	writeSecs   float64
	busyGPUSecs float64
	placements  int
	// faults is the node's fault-injection state (nil when the plan
	// schedules nothing against this node, keeping the healthy arithmetic
	// untouched).
	faults *nodeFaults
}

// simState is the sequential cluster simulation.
type simState struct {
	cfg   Config
	prof  *Profiler
	jobs  []*jobState
	nodes []*nodeState
	queue []*jobState // submitted, not yet placed, in (Submit, ID) order
	// pending jobs not yet submitted, in (Submit, ID) order.
	pending   []*jobState
	now       float64
	completed int
	// plan is the resolved fault plan (cost-model defaults filled); zero
	// when cfg.Faults is empty.
	plan faults.Plan
}

// arrayWriteCapacity is the node array's aggregate sequential write
// bandwidth.
func (n *nodeState) arrayWriteCapacity() float64 {
	return float64(n.spec.SSD.Spec.SeqWrite) * float64(n.spec.SSD.Count)
}

// shareFor returns the per-GPU array share a tenant sees given the node's
// offloading GPU population.
func (n *nodeState) shareFor(j *jobState) float64 {
	if !offloadsToSSD(j.Job) || n.offGPUs <= 0 {
		return 1
	}
	return 1 / float64(n.offGPUs)
}

// dramGrantFor returns the per-GPU pinned-pool grant a tenant sees given
// the node's DRAM-consuming population: an equal slice of the node
// budget, capped at the job's own request. Hybrid tenants that may
// contend for the array count toward offGPUs even when granted enough
// DRAM to avoid spilling — a conservative model that keeps the share a
// pure function of tenancy.
func (n *nodeState) dramGrantFor(j *jobState) units.Bytes {
	return dramGrant(n.spec, j.Job, n.dramGPUs)
}

// dramGrant computes the per-GPU pinned grant for a job when dramGPUs
// DRAM-consuming GPUs share the node's budget.
func dramGrant(spec NodeSpec, j Job, dramGPUs int) units.Bytes {
	if !wantsDRAM(j) || spec.DRAM <= 0 {
		return j.Run.DRAMCapacity
	}
	if dramGPUs <= 0 {
		dramGPUs = j.GPUs
	}
	slice := spec.DRAM / units.Bytes(dramGPUs)
	if req := j.Run.DRAMCapacity; req > 0 && req < slice {
		return req
	}
	return slice
}

// offloadsToSSD reports whether the job can write to the node array
// (hybrid jobs spill their DRAM overflow there; optimizer-offload jobs
// spill FP32 states and shuttle gradients/parameters through it).
func offloadsToSSD(j Job) bool {
	switch j.Run.Strategy {
	case exp.SSDTrain, exp.HybridOffload, exp.OptimOffload:
		return true
	}
	return false
}

// wantsDRAM reports whether the job keeps a pinned host-memory rung and
// therefore consumes the node's DRAM budget.
func wantsDRAM(j Job) bool {
	switch j.Run.Strategy {
	case exp.HybridOffload, exp.OptimOffload:
		return j.Run.DRAMCapacity > 0
	case exp.CPUOffload:
		return true
	}
	return false
}

// validate checks the configuration and that every job can run somewhere.
func (c Config) validate() error {
	if c.Cluster.Nodes <= 0 {
		return fmt.Errorf("fleet: cluster needs at least one node")
	}
	n := c.Cluster.Node
	if n.GPUs <= 0 {
		return fmt.Errorf("fleet: node needs at least one GPU")
	}
	if n.SSD.Count <= 0 {
		return fmt.Errorf("fleet: node needs a shared SSD array")
	}
	if !c.Policy.Valid() {
		return fmt.Errorf("fleet: unknown policy %q", c.Policy)
	}
	if len(c.Jobs) == 0 {
		return fmt.Errorf("fleet: no jobs")
	}
	if err := c.Faults.Validate(c.Cluster.Nodes, n.SSD.Count); err != nil {
		return err
	}
	ids := make(map[int]bool, len(c.Jobs))
	for _, j := range c.Jobs {
		// Schedulers and reports key on the ID; duplicates would silently
		// corrupt SJF ordering.
		if ids[j.ID] {
			return fmt.Errorf("fleet: duplicate job ID %d", j.ID)
		}
		ids[j.ID] = true
		if j.GPUs <= 0 || j.GPUs > n.GPUs {
			return fmt.Errorf("fleet: job %d (%s) needs %d GPUs, nodes have %d", j.ID, j.Name, j.GPUs, n.GPUs)
		}
		if j.Steps <= 0 {
			return fmt.Errorf("fleet: job %d (%s) has no steps", j.ID, j.Name)
		}
		if j.Submit < 0 {
			return fmt.Errorf("fleet: job %d (%s) submitted before time zero", j.ID, j.Name)
		}
	}
	return nil
}

// Simulate runs one fleet simulation: profile every job concurrently,
// then replay the cluster sequentially under the configured policy.
func Simulate(cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.AdaptiveProfiles {
		jobs := make([]Job, len(cfg.Jobs))
		copy(jobs, cfg.Jobs)
		for i := range jobs {
			jobs[i].Run.AdaptiveSteps = true
		}
		cfg.Jobs = jobs
	}
	prof := cfg.Profiler
	if prof == nil {
		prof = NewProfiler(cfg.CacheCapacity)
	}
	if err := prof.Prime(cfg.Jobs, cfg.Cluster.Node, cfg.Workers); err != nil {
		return nil, err
	}

	s := &simState{cfg: cfg, prof: prof}
	for i := 0; i < cfg.Cluster.Nodes; i++ {
		s.nodes = append(s.nodes, &nodeState{
			spec:     cfg.Cluster.Node,
			freeGPUs: cfg.Cluster.Node.GPUs,
			wear:     ssd.NewArrayWear(cfg.Cluster.Node.SSD.Spec, cfg.Cluster.Node.SSD.Count),
		})
	}
	for _, j := range cfg.Jobs {
		s.jobs = append(s.jobs, &jobState{Job: j, node: -1, remaining: float64(j.Steps)})
	}
	sort.SliceStable(s.jobs, func(a, b int) bool {
		if s.jobs[a].Submit != s.jobs[b].Submit {
			return s.jobs[a].Submit < s.jobs[b].Submit
		}
		return s.jobs[a].ID < s.jobs[b].ID
	})
	s.pending = append(s.pending, s.jobs...)

	// Exclusive feasibility: a job must fit a node it has to itself.
	for _, j := range s.jobs {
		p, err := s.exclusiveProfile(&j.Job)
		if err != nil {
			return nil, err
		}
		if p.TotalPeak > cfg.Cluster.Node.GPU.Memory {
			return nil, fmt.Errorf("fleet: job %d (%s) needs %v on a %v GPU even uncontended",
				j.ID, j.Name, p.TotalPeak, cfg.Cluster.Node.GPU.Memory)
		}
	}

	s.initFaults()
	sched := newScheduler(cfg.Policy)
	for s.completed < len(s.jobs) {
		s.admitArrivals()
		if err := sched.schedule(s); err != nil {
			return nil, err
		}
		next, ok := s.nextEventTime()
		if !ok {
			return nil, s.deadlockError()
		}
		s.advanceTo(next)
		if err := s.applyFaults(); err != nil {
			return nil, err
		}
		s.completeFinished()
	}
	return s.report(), nil
}

// deadlockError explains why the event loop has nowhere to go. Under
// fault injection the common cause is a job whose only viable array
// failed (or whose node drained permanently) with no surviving node able
// to take it.
func (s *simState) deadlockError() error {
	blocked := ""
	for _, node := range s.nodes {
		if nf := node.faults; nf != nil && (nf.arrayFailed || nf.drainPermanent) {
			blocked = " (a failed array or permanent drain leaves queued jobs unplaceable)"
			break
		}
	}
	return fmt.Errorf("fleet: deadlock at t=%.1fs with %d jobs unfinished under %s%s",
		s.now, len(s.jobs)-s.completed, s.cfg.Policy, blocked)
}

// exclusiveProfile is the job's behaviour alone on a node: its own GPUs
// still share the array (and the DRAM budget) with each other.
func (s *simState) exclusiveProfile(j *Job) (Profile, error) {
	share := 1.0
	if offloadsToSSD(*j) {
		share = 1 / float64(j.GPUs)
	}
	grant := dramGrant(s.cfg.Cluster.Node, *j, j.GPUs)
	return s.prof.Measure(j.Run, s.cfg.Cluster.Node, share, grant)
}

// admitArrivals moves jobs whose submit time has passed into the queue.
func (s *simState) admitArrivals() {
	for len(s.pending) > 0 && s.pending[0].Submit.Seconds() <= s.now+timeEps {
		j := s.pending[0]
		s.pending = s.pending[1:]
		s.queue = append(s.queue, j)
	}
}

// timeEps absorbs float rounding when comparing event times (1 ns).
const timeEps = 1e-9

// stepEps treats a job with less than a millionth of a step left as done.
const stepEps = 1e-6

// canPlace reports whether the job fits node n right now: enough free
// GPUs, and the resulting contention — thinner array shares AND thinner
// DRAM grants — leaves every affected tenant (including the newcomer)
// within GPU memory.
func (s *simState) canPlace(j *jobState, n int) (bool, error) {
	node := s.nodes[n]
	if node.freeGPUs < j.GPUs {
		return false, nil
	}
	if node.drained(s.now) {
		return false, nil
	}
	if nf := node.faults; nf != nil && nf.arrayFailed && offloadsToSSD(j.Job) {
		return false, nil
	}
	newOff, newDram := node.offGPUs, node.dramGPUs
	if offloadsToSSD(j.Job) {
		newOff += j.GPUs
	}
	if wantsDRAM(j.Job) && node.spec.DRAM > 0 {
		newDram += j.GPUs
	}
	if newOff == 0 && newDram == 0 {
		return true, nil
	}
	check := func(job *Job) (bool, error) {
		share := 1.0
		if offloadsToSSD(*job) && newOff > 0 {
			share = 1 / float64(newOff)
		}
		p, err := s.prof.Measure(job.Run, node.spec, share, dramGrant(node.spec, *job, newDram))
		if err != nil {
			// A cpu-offload tenant whose thinned grant cannot hold its
			// working set overflows its pool (it has no spill rung): that
			// is placement infeasibility, exactly like a GPU-memory miss,
			// not a fleet-wide failure.
			var ovf *core.OverflowError
			if errors.As(err, &ovf) {
				return false, nil
			}
			return false, err
		}
		return p.TotalPeak <= node.spec.GPU.Memory, nil
	}
	affected := func(job *Job) bool { return offloadsToSSD(*job) || wantsDRAM(*job) }
	if affected(&j.Job) {
		if ok, err := check(&j.Job); !ok || err != nil {
			return false, err
		}
	}
	for _, t := range node.running {
		if !affected(&t.Job) {
			continue
		}
		if ok, err := check(&t.Job); !ok || err != nil {
			return false, err
		}
	}
	return true, nil
}

// bestNode picks the node to place the job on: among feasible nodes, the
// one whose array ends up least contended (fewest offloading GPUs after
// placement), then the fullest (best-fit packing), then the lowest index.
func (s *simState) bestNode(j *jobState) (int, bool, error) {
	best, bestOff, bestFree := -1, 0, 0
	for n, node := range s.nodes {
		ok, err := s.canPlace(j, n)
		if err != nil {
			return -1, false, err
		}
		if !ok {
			continue
		}
		off := node.offGPUs
		if offloadsToSSD(j.Job) {
			off += j.GPUs
		}
		if best == -1 || off < bestOff || (off == bestOff && node.freeGPUs < bestFree) {
			best, bestOff, bestFree = n, off, node.freeGPUs
		}
	}
	return best, best >= 0, nil
}

// place starts a queued job on a node and refreshes the node's rates.
func (s *simState) place(j *jobState, n int) error {
	node := s.nodes[n]
	if node.freeGPUs < j.GPUs {
		return fmt.Errorf("fleet: placement overflow on node %d", n)
	}
	s.removeFromQueue(j)
	j.running = true
	j.node = n
	j.start = s.now
	node.freeGPUs -= j.GPUs
	node.running = append(node.running, j)
	node.placements++
	if offloadsToSSD(j.Job) {
		node.offGPUs += j.GPUs
	}
	if wantsDRAM(j.Job) && node.spec.DRAM > 0 {
		node.dramGPUs += j.GPUs
	}
	return s.refreshRates(n)
}

func (s *simState) removeFromQueue(j *jobState) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// refreshRates recomputes every tenant's step and write rates (and the
// node's DRAM reservation ledger) after the node's tenancy changed.
func (s *simState) refreshRates(n int) error {
	node := s.nodes[n]
	var reserved units.Bytes
	for _, j := range node.running {
		share := node.shareFor(j)
		if offloadsToSSD(j.Job) {
			// A faulted array serves each tenant a thinner effective share:
			// surviving members, minus the rebuild steal, minus transient
			// degradation. healthFactor is exactly 1 on healthy nodes, so
			// fault-free simulations measure at the original keys.
			if h := node.healthFactor(s.now); h < 1 {
				share *= h
			}
		}
		p, err := s.prof.Measure(j.Run, node.spec, share, node.dramGrantFor(j))
		if err != nil {
			return err
		}
		j.rate = p.StepsPerSecond()
		if j.rate <= 0 {
			return fmt.Errorf("fleet: job %d (%s) has zero progress rate", j.ID, j.Name)
		}
		j.writeRate = float64(p.WriteRate()) * float64(j.GPUs)
		if wantsDRAM(j.Job) && node.spec.DRAM > 0 {
			reserved += node.dramGrantFor(j) * units.Bytes(j.GPUs)
		}
	}
	node.dramReserved = reserved
	if reserved > node.dramPeak {
		node.dramPeak = reserved
	}
	return nil
}

// nextEventTime returns the earliest future event: a job arrival or the
// earliest running job's completion.
func (s *simState) nextEventTime() (float64, bool) {
	next, ok := 0.0, false
	consider := func(t float64) {
		if !ok || t < next {
			next, ok = t, true
		}
	}
	if len(s.pending) > 0 {
		consider(s.pending[0].Submit.Seconds())
	}
	for _, node := range s.nodes {
		for _, j := range node.running {
			consider(s.now + j.penaltyLeft + j.remaining/j.rate)
		}
	}
	s.faultEventTimes(consider)
	return next, ok
}

// advanceTo progresses every running job and accrues the wear and
// utilization ledgers over [now, next].
func (s *simState) advanceTo(next float64) {
	dt := next - s.now
	if dt < 0 {
		dt = 0
	}
	for _, node := range s.nodes {
		demand := 0.0
		// penaltySecs accumulates write-seconds lost to restart penalties:
		// a restarting job holds its GPUs but neither progresses nor
		// writes until the penalty drains. Zero on fault-free runs, so the
		// wear arithmetic below stays bit-exact (x - 0.0 == x).
		penaltySecs := 0.0
		for _, j := range node.running {
			run := dt
			if j.penaltyLeft > 0 {
				use := run
				if j.penaltyLeft < use {
					use = j.penaltyLeft
				}
				j.penaltyLeft -= use
				run -= use
				penaltySecs += j.writeRate * use
			}
			j.remaining -= j.rate * run
			if j.remaining < 0 {
				j.remaining = 0
			}
			j.written += j.writeRate * run
			demand += j.writeRate
			node.busyGPUSecs += float64(j.GPUs) * dt
		}
		node.wear.Record(demand*dt - penaltySecs)
		if capacity := node.arrayWriteCapacity(); capacity > 0 && demand > 0 {
			frac := demand / capacity
			if frac > 1 {
				frac = 1
			}
			node.writeSecs += frac * dt
		}
	}
	s.now = next
}

// completeFinished retires jobs whose steps ran out, freeing their GPUs
// and relaxing their node's contention.
func (s *simState) completeFinished() {
	for n, node := range s.nodes {
		changed := false
		kept := node.running[:0]
		for _, j := range node.running {
			if j.remaining <= stepEps {
				j.running = false
				j.finish = s.now
				node.freeGPUs += j.GPUs
				if offloadsToSSD(j.Job) {
					node.offGPUs -= j.GPUs
				}
				if wantsDRAM(j.Job) && node.spec.DRAM > 0 {
					node.dramGPUs -= j.GPUs
				}
				s.completed++
				changed = true
				continue
			}
			kept = append(kept, j)
		}
		node.running = kept
		if changed {
			// Rates only improve when tenants leave; refresh cannot fail
			// because every needed profile was primed.
			if err := s.refreshRates(n); err != nil {
				panic(err)
			}
		}
	}
}
