package fleet

import (
	"strings"
	"testing"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// hybridJob builds a dram-first tenant with the given per-GPU pool
// request.
func hybridJob(id, gpus, steps int, req units.Bytes) Job {
	return Job{
		ID:   id,
		Name: "hyb",
		Run: exp.RunConfig{
			Model:        models.PaperConfig(models.BERT, 2048, 3, 8),
			Strategy:     exp.HybridOffload,
			Placement:    exp.PlacementDRAMFirst,
			DRAMCapacity: req,
		},
		GPUs:  gpus,
		Steps: steps,
	}
}

func TestDRAMGrantSharesNodeBudget(t *testing.T) {
	node := DefaultNodeSpec()
	j := hybridJob(0, 1, 10, 1<<50) // asks for more than any slice
	if got, want := dramGrant(node, j, 1), node.DRAM; got != want {
		t.Errorf("solo grant = %v, want the full budget %v", got, want)
	}
	if got, want := dramGrant(node, j, 4), node.DRAM/4; got != want {
		t.Errorf("4-way grant = %v, want %v", got, want)
	}
	// A modest request is never inflated to the slice.
	small := hybridJob(1, 1, 10, 8*units.GiB)
	if got := dramGrant(node, small, 2); got != 8*units.GiB {
		t.Errorf("capped grant = %v", got)
	}
	// Nodes without a DRAM model pass requests through untouched.
	node.DRAM = 0
	if got := dramGrant(node, j, 4); got != 1<<50 {
		t.Errorf("unmodeled grant = %v", got)
	}
}

// TestFleetDRAMContention runs hybrid tenants against a node whose DRAM
// budget cannot cover everyone's request: the report gains its DRAM
// columns, the reservation peak respects the budget, and spill traffic
// reaches the shared array only once grants shrink below working sets.
func TestFleetDRAMContention(t *testing.T) {
	node := DefaultNodeSpec()
	node.DRAM = 2 * units.GiB // far below the tenants' requests
	jobs := []Job{
		hybridJob(0, 2, 30, 4*units.GiB),
		hybridJob(1, 2, 30, 4*units.GiB),
	}
	rep, err := Simulate(Config{
		Cluster: ClusterSpec{Nodes: 1, Node: node},
		Jobs:    jobs,
		Policy:  FIFO,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsesDRAM {
		t.Fatal("report does not mark DRAM usage")
	}
	if rep.DRAMBudget != node.DRAM {
		t.Errorf("budget echoed as %v", rep.DRAMBudget)
	}
	for _, n := range rep.NodeReports {
		if n.DRAMPeak == 0 || n.DRAMPeak > node.DRAM {
			t.Errorf("node %d DRAM peak %v outside (0, %v]", n.Node, n.DRAMPeak, node.DRAM)
		}
	}
	if !strings.Contains(rep.NodeTable().String(), "dram peak") {
		t.Error("node table missing the dram column")
	}
	if !strings.Contains(rep.Summary(), "dram peak/node") {
		t.Error("summary missing the dram line")
	}
}

// TestFleetDRAMRelievesArray: granting hybrid tenants enough DRAM moves
// their traffic off the shared array relative to the same tenants forced
// to spill. The tenants pin their budgets (memory-constrained posture) —
// planner-driven tenants at a thin array share shrink their budget below
// the grant instead, writing nothing to the array either way.
func TestFleetDRAMRelievesArray(t *testing.T) {
	run := func(dram units.Bytes) *Report {
		node := DefaultNodeSpec()
		node.DRAM = dram
		jobs := []Job{hybridJob(0, 2, 30, 1<<40), hybridJob(1, 2, 30, 1<<40)}
		for i := range jobs {
			jobs[i].Run.Budget = units.Bytes(1) << 62
		}
		rep, err := Simulate(Config{
			Cluster: ClusterSpec{Nodes: 1, Node: node},
			Jobs:    jobs,
			Policy:  FIFO,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	roomy := run(512 * units.GiB)
	tiny := run(512 * units.MiB)
	if roomy.TotalWritten >= tiny.TotalWritten {
		t.Errorf("array writes with roomy DRAM (%v) not below tiny DRAM (%v)",
			roomy.TotalWritten, tiny.TotalWritten)
	}
	if roomy.TotalWritten != 0 {
		t.Errorf("fully-granted tenants still wrote %v to the array", roomy.TotalWritten)
	}
}

// TestCPUOffloadOverflowIsInfeasibleNotFatal: a pinned-budget cpu-offload
// tenant whose thinned DRAM grant cannot hold its working set has no
// spill rung and overflows its pool — the scheduler must treat that as
// "cannot co-locate" (like a GPU-memory miss), not abort the simulation.
// (Planner-driven tenants never hit this: the Strict capacity clamp fits
// their budget to the grant.)
func TestCPUOffloadOverflowIsInfeasibleNotFatal(t *testing.T) {
	node := DefaultNodeSpec()
	// The working set a tenant insists on offloading: the unbounded
	// planner budget, pinned.
	probe := hybridJob(0, 2, 20, 0)
	probe.Run.Strategy = exp.CPUOffload
	probe.Run.Placement = ""
	probe.Run.DRAMCapacity = 0
	p := NewProfiler(0)
	solo, err := p.Measure(probe.Run, node, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if solo.PlannedBudget == 0 {
		t.Fatal("cpu-offload job plans no offload; test needs a working set")
	}
	cpuJob := func(id int) Job {
		j := probe
		j.ID = id
		j.Run.Budget = solo.PlannedBudget
		return j
	}
	// Node budget: a lone 2-GPU tenant's grant (DRAM/2 = 1.5×budget)
	// holds the pinned set, but two co-located tenants' grants (DRAM/4 =
	// 0.75×budget) would overflow.
	node.DRAM = 3 * solo.PlannedBudget
	rep, err := Simulate(Config{
		Cluster: ClusterSpec{Nodes: 1, Node: node},
		Jobs:    []Job{cpuJob(0), cpuJob(1)},
		Policy:  FIFO,
	})
	if err != nil {
		t.Fatalf("overflow-infeasible placement aborted the fleet: %v", err)
	}
	// The second tenant must have waited for the first instead of
	// co-locating into an overflowing grant.
	if rep.JobReports[1].Wait == 0 {
		t.Errorf("tenants co-located despite DRAM infeasibility: %+v", rep.JobReports)
	}
}

// TestHybridMixReproducible: a HybridFrac mix is deterministic per seed,
// converts only SSDTrain jobs, and leaves the base mix untouched when 0.
func TestHybridMixReproducible(t *testing.T) {
	base := DefaultJobMix(MixConfig{Jobs: 24, Seed: 7})
	again := DefaultJobMix(MixConfig{Jobs: 24, Seed: 7, HybridFrac: 0})
	for i := range base {
		if base[i].Run != again[i].Run || base[i].Name != again[i].Name {
			t.Fatalf("HybridFrac 0 perturbed job %d", i)
		}
	}
	hyb := DefaultJobMix(MixConfig{Jobs: 24, Seed: 7, HybridFrac: 0.5})
	hyb2 := DefaultJobMix(MixConfig{Jobs: 24, Seed: 7, HybridFrac: 0.5})
	converted := 0
	for i := range hyb {
		if hyb[i].Run != hyb2[i].Run {
			t.Fatalf("hybrid mix not reproducible at job %d", i)
		}
		if hyb[i].Run.Strategy == exp.HybridOffload {
			converted++
			if base[i].Run.Strategy != exp.SSDTrain {
				t.Errorf("job %d converted from %s", i, base[i].Run.Strategy)
			}
			if hyb[i].Run.DRAMCapacity == 0 || hyb[i].Run.Placement != exp.PlacementDRAMFirst {
				t.Errorf("job %d missing hybrid knobs: %+v", i, hyb[i].Run)
			}
		} else if hyb[i].Run != base[i].Run {
			t.Errorf("unconverted job %d perturbed", i)
		}
	}
	if converted == 0 {
		t.Error("HybridFrac 0.5 converted nothing")
	}
}
