package fleet

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"ssdtrain/internal/faults"
)

// faultedConfig is a one-node cluster with a pin job (dilates under
// thinner array shares) whose simulation runs long enough for mid-run
// faults to land.
func faultedConfig(plan faults.Plan) Config {
	return Config{
		Cluster: testCluster(1),
		Jobs:    []Job{pinJob(0, 1, 400), planJob(1, 1, 200)},
		Policy:  FIFO,
		Faults:  plan,
	}
}

// TestFaultsNeverFiringPlanKeepsOutcomes pins satellite property #3 at
// the fleet level: a plan whose events all fire after the last job
// finished must leave every numeric outcome identical to the fault-free
// simulation (only the UsesFaults rendering flag differs).
func TestFaultsNeverFiringPlanKeepsOutcomes(t *testing.T) {
	base, err := Simulate(faultedConfig(faults.Plan{}))
	if err != nil {
		t.Fatal(err)
	}
	late := faults.Plan{Events: []faults.Event{
		{Kind: faults.Death, At: 1000 * time.Hour, Node: 0, Device: 1},
		{Kind: faults.Drain, At: 2000 * time.Hour, Node: 0},
	}}
	got, err := Simulate(faultedConfig(late))
	if err != nil {
		t.Fatal(err)
	}
	if !got.UsesFaults || base.UsesFaults {
		t.Fatalf("UsesFaults flags: got %v, base %v", got.UsesFaults, base.UsesFaults)
	}
	if got.Makespan != base.Makespan || got.TotalWritten != base.TotalWritten ||
		got.MeanSlowdown != base.MeanSlowdown || got.TotalRestarts != 0 {
		t.Fatalf("never-firing plan changed outcomes:\nbase %v %v %.6f\ngot  %v %v %.6f restarts=%d",
			base.Makespan, base.TotalWritten, base.MeanSlowdown,
			got.Makespan, got.TotalWritten, got.MeanSlowdown, got.TotalRestarts)
	}
	for i := range base.JobReports {
		if base.JobReports[i].Runtime != got.JobReports[i].Runtime {
			t.Fatalf("job %d runtime %v != %v", i, got.JobReports[i].Runtime, base.JobReports[i].Runtime)
		}
	}
}

// TestFaultsDeviceDeathStealsBandwidth: a member death mid-run thins the
// survivors' bandwidth (rebuild steal plus the lost member), so the pin
// job's makespan grows and the node ledger records the death and rebuild.
func TestFaultsDeviceDeathStealsBandwidth(t *testing.T) {
	base, err := Simulate(faultedConfig(faults.Plan{}))
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Events: []faults.Event{
		{Kind: faults.Death, At: 30 * time.Second, Node: 0, Device: 2},
	}}
	got, err := Simulate(faultedConfig(plan))
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan <= base.Makespan {
		t.Errorf("device death did not slow the fleet: makespan %v <= healthy %v", got.Makespan, base.Makespan)
	}
	n := got.NodeReports[0]
	if n.Deaths != 1 || n.RebuildTime <= 0 {
		t.Errorf("node ledger: deaths=%d rebuild=%v, want 1 death with a rebuild window", n.Deaths, n.RebuildTime)
	}
	if got.TotalRestarts != 0 {
		t.Errorf("a member death must not kill jobs, got %d restarts", got.TotalRestarts)
	}
	if !strings.Contains(got.Summary(), "faults") {
		t.Errorf("summary misses the faults line:\n%s", got.Summary())
	}
}

// TestFaultsDrainKillsAndRequeues: a temporary drain evicts every tenant;
// they restart from their last checkpoint (paying the restart penalty)
// once the drain lifts, so the work still completes — later and with
// restart counts in the report.
func TestFaultsDrainKillsAndRequeues(t *testing.T) {
	base, err := Simulate(faultedConfig(faults.Plan{}))
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{
		Events:          []faults.Event{{Kind: faults.Drain, At: 45 * time.Second, Node: 0, For: 2 * time.Minute}},
		CheckpointSteps: 25,
		RestartPenalty:  10 * time.Second,
	}
	got, err := Simulate(faultedConfig(plan))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalRestarts == 0 {
		t.Fatal("drain killed no jobs")
	}
	if got.NodeReports[0].Drains != 1 || got.NodeReports[0].Killed == 0 {
		t.Errorf("node ledger: drains=%d killed=%d", got.NodeReports[0].Drains, got.NodeReports[0].Killed)
	}
	if got.Makespan <= base.Makespan {
		t.Errorf("drain + checkpoint rollback did not extend makespan: %v <= %v", got.Makespan, base.Makespan)
	}
	restarts := 0
	for _, j := range got.JobReports {
		restarts += j.Restarts
	}
	if restarts != got.TotalRestarts {
		t.Errorf("per-job restarts %d != total %d", restarts, got.TotalRestarts)
	}
}

// TestFaultsArrayFailureReplacesJobs: when node 0's whole array fails,
// its offloading tenants are killed and must finish on node 1; node 0
// keeps taking non-offloading work.
func TestFaultsArrayFailureReplacesJobs(t *testing.T) {
	cfg := Config{
		Cluster: testCluster(2),
		Jobs:    []Job{pinJob(0, 1, 300), pinJob(1, 1, 300)},
		Policy:  FIFO,
		Faults: faults.Plan{Events: []faults.Event{
			{Kind: faults.Death, At: 30 * time.Second, Node: 0, Device: -1},
		}},
	}
	got, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalDeaths != 1 {
		t.Fatalf("deaths = %d", got.TotalDeaths)
	}
	for _, j := range got.JobReports {
		if j.Node != 1 {
			t.Errorf("job %d finished on node %d; a failed array must push offloaders to node 1", j.ID, j.Node)
		}
	}
	if got.TotalRestarts == 0 {
		t.Error("array failure killed no jobs")
	}
}

// TestFaultsArrayFailureDeadlocks: with nowhere left to offload, the
// simulation must fail loudly instead of spinning.
func TestFaultsArrayFailureDeadlocks(t *testing.T) {
	cfg := faultedConfig(faults.Plan{Events: []faults.Event{
		{Kind: faults.Death, At: 30 * time.Second, Node: 0, Device: -1},
	}})
	_, err := Simulate(cfg)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

// TestFaultsWearTriggeredDeath: a death armed on a wear threshold fires
// once the tenants' writes cross it, without any wall-clock trigger.
func TestFaultsWearTriggeredDeath(t *testing.T) {
	plan := faults.Plan{Events: []faults.Event{
		{Kind: faults.Death, Node: 0, Device: 0, WearThreshold: 1e-9},
	}}
	got, err := Simulate(faultedConfig(plan))
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeReports[0].Deaths != 1 {
		t.Fatalf("wear-triggered death never fired (wear %.3g%%)", got.NodeReports[0].WearFraction*100)
	}
}

// TestFaultsDeterministicAcrossWorkers extends the subsystem's core
// contract to faulted runs: one fault plan, byte-identical rendered
// reports for every worker count (mid-run rate refreshes measure through
// the same deterministic profiler the healthy path uses).
func TestFaultsDeterministicAcrossWorkers(t *testing.T) {
	mix := DefaultJobMix(MixConfig{Jobs: 12, Seed: 7, MinSteps: 10, MaxSteps: 60})
	plan := faults.Plan{Events: []faults.Event{
		{Kind: faults.Death, At: 20 * time.Second, Node: 0, Device: 1},
		{Kind: faults.Degrade, At: 40 * time.Second, Node: 1, Factor: 0.5, For: time.Minute},
		{Kind: faults.Drain, At: time.Minute, Node: 2, For: 2 * time.Minute},
	}}
	var want string
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		reports, err := PolicySweepWith(PolicySweepConfig{
			Cluster: testCluster(4), Jobs: mix, Policies: Policies(),
			Workers: workers, Faults: plan,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderAll(reports)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: faulted report differs from workers=1", workers)
		}
	}
}

// TestFaultsPlanValidation: malformed plans are rejected before any
// profiling work starts.
func TestFaultsPlanValidation(t *testing.T) {
	bad := faultedConfig(faults.Plan{Events: []faults.Event{
		{Kind: faults.Death, At: time.Second, Node: 9, Device: 0},
	}})
	if _, err := Simulate(bad); err == nil || !strings.Contains(err.Error(), "node 9") {
		t.Fatalf("want node-range error, got %v", err)
	}
	badDev := faultedConfig(faults.Plan{Events: []faults.Event{
		{Kind: faults.Death, At: time.Second, Node: 0, Device: 64},
	}})
	if _, err := Simulate(badDev); err == nil || !strings.Contains(err.Error(), "device 64") {
		t.Fatalf("want device-range error, got %v", err)
	}
}

// TestFaultsMixCarriesPlan: the mix-config carrier round-trips a plan to
// the sweep without perturbing the drawn jobs.
func TestFaultsMixCarriesPlan(t *testing.T) {
	plan := faults.Plan{Events: []faults.Event{{Kind: faults.Drain, At: time.Minute, Node: 0}}}
	withPlan := DefaultJobMix(MixConfig{Jobs: 8, Seed: 3, FaultPlan: plan})
	without := DefaultJobMix(MixConfig{Jobs: 8, Seed: 3})
	for i := range without {
		if withPlan[i].Name != without[i].Name || withPlan[i].Steps != without[i].Steps ||
			withPlan[i].Run != without[i].Run {
			t.Fatalf("job %d differs with a fault plan attached", i)
		}
	}
}
