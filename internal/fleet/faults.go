package fleet

import (
	"math"
	"sort"

	"ssdtrain/internal/faults"
)

// nodeFaults is one node's fault state: the events still pending against
// it, the damage applied so far, and the recovery ledgers the report
// renders. A node with no scheduled events never allocates one, which is
// what keeps fault-free simulations byte-identical to the pre-fault
// code path (healthFactor is exactly 1 and no new float arithmetic runs).
type nodeFaults struct {
	// timed holds pending time-triggered events in (At, original order).
	timed []faults.Event
	// wearDeaths holds pending wear-triggered member deaths.
	wearDeaths []faults.Event

	// steal and rebuildSecs come from the plan's cost model.
	steal       float64
	rebuildSecs float64

	deadDevs    int
	arrayFailed bool
	// Window bounds in simulation seconds; the *Active flags mark windows
	// whose expiry still needs a rate refresh.
	rebuildUntil   float64
	rebuildActive  bool
	degradeFactor  float64
	degradeUntil   float64
	degradeActive  bool
	drainedUntil   float64
	drainedActive  bool
	drainPermanent bool

	// Report ledgers.
	deaths      int
	drains      int
	killed      int
	rebuildTime float64
}

// healthFactor is the fraction of the node array's healthy bandwidth
// available at time now: surviving members' share, times the rebuild
// steal while a dead member's stripe is being reconstructed, times any
// transient degradation window. It is piecewise-constant between fault
// events, so rates refreshed at event boundaries stay exact.
func (n *nodeState) healthFactor(now float64) float64 {
	nf := n.faults
	if nf == nil {
		return 1
	}
	f := 1.0
	if devs := n.spec.SSD.Count; nf.deadDevs > 0 && devs > 0 {
		f *= float64(devs-nf.deadDevs) / float64(devs)
	}
	if nf.rebuildActive && now < nf.rebuildUntil {
		f *= 1 - nf.steal
	}
	if nf.degradeActive && now < nf.degradeUntil {
		f *= nf.degradeFactor
	}
	return f
}

// drained reports whether the node refuses placements at time now.
func (n *nodeState) drained(now float64) bool {
	nf := n.faults
	if nf == nil || !nf.drainedActive {
		return false
	}
	return nf.drainPermanent || now < nf.drainedUntil
}

// initFaults distributes the plan's events onto the target nodes and
// resolves the cost model. A nil receiver state on every node means the
// simulation runs the exact pre-fault arithmetic.
func (s *simState) initFaults() {
	if s.cfg.Faults.Empty() {
		return
	}
	s.plan = s.cfg.Faults.WithDefaults()
	for _, ev := range s.plan.Events {
		node := s.nodes[ev.Node]
		if node.faults == nil {
			node.faults = &nodeFaults{
				steal:       s.plan.RebuildSteal,
				rebuildSecs: s.plan.RebuildFor.Seconds(),
			}
		}
		if ev.Kind == faults.Death && ev.WearThreshold > 0 {
			node.faults.wearDeaths = append(node.faults.wearDeaths, ev)
			continue
		}
		node.faults.timed = append(node.faults.timed, ev)
	}
	for _, node := range s.nodes {
		if node.faults != nil {
			sort.SliceStable(node.faults.timed, func(a, b int) bool {
				return node.faults.timed[a].At < node.faults.timed[b].At
			})
		}
	}
}

// faultEventTimes folds the fault schedule into the event horizon: the
// next timed event, the analytic wear-crossing instant of any pending
// wear-triggered death (writes accrue linearly at the tenants' current
// rates), and every active window's expiry (rates — or placement
// eligibility, for drains — change there).
func (s *simState) faultEventTimes(consider func(float64)) {
	for _, node := range s.nodes {
		nf := node.faults
		if nf == nil {
			continue
		}
		if len(nf.timed) > 0 {
			consider(nf.timed[0].At.Seconds())
		}
		if len(nf.wearDeaths) > 0 {
			if t, ok := s.wearCrossing(node); ok {
				consider(t)
			}
		}
		if nf.rebuildActive {
			consider(nf.rebuildUntil)
		}
		if nf.degradeActive {
			consider(nf.degradeUntil)
		}
		if nf.drainedActive && !nf.drainPermanent {
			consider(nf.drainedUntil)
		}
	}
}

// wearCrossing predicts when the node's wear fraction reaches its lowest
// pending threshold, assuming tenants keep their current write rates.
// Restart penalties pause a tenant's writes, so the prediction can land
// early; applyFaults only fires on the fraction actually crossed, and the
// loop re-predicts from the advanced state, so early landings cost one
// extra (still strictly forward) event, never a wrong death time.
func (s *simState) wearCrossing(node *nodeState) (float64, bool) {
	low := math.Inf(1)
	for _, ev := range node.faults.wearDeaths {
		if ev.WearThreshold < low {
			low = ev.WearThreshold
		}
	}
	frac := node.wear.WearFraction()
	if frac >= low {
		return s.now, true
	}
	demand := 0.0
	for _, j := range node.running {
		demand += j.writeRate
	}
	if demand <= 0 {
		return 0, false
	}
	budget := node.wear.Model.HostWriteBudget()
	if budget <= 0 {
		return 0, false
	}
	return s.now + (low-frac)*budget/demand, true
}

// applyFaults fires every event that has come due at the current time and
// expires any finished windows, refreshing the affected nodes' tenant
// rates. It runs after advanceTo (state has progressed to the event
// instant) and before completeFinished (a killed job must not complete).
func (s *simState) applyFaults() error {
	for n, node := range s.nodes {
		nf := node.faults
		if nf == nil {
			continue
		}
		changed := false
		for len(nf.timed) > 0 && nf.timed[0].At.Seconds() <= s.now+timeEps {
			ev := nf.timed[0]
			nf.timed = nf.timed[1:]
			s.fireFault(n, ev)
			changed = true
		}
		if len(nf.wearDeaths) > 0 {
			frac := node.wear.WearFraction()
			kept := nf.wearDeaths[:0]
			for _, ev := range nf.wearDeaths {
				if frac >= ev.WearThreshold {
					s.fireFault(n, ev)
					changed = true
				} else {
					kept = append(kept, ev)
				}
			}
			nf.wearDeaths = kept
		}
		if nf.rebuildActive && s.now >= nf.rebuildUntil-timeEps {
			nf.rebuildActive = false
			changed = true
		}
		if nf.degradeActive && s.now >= nf.degradeUntil-timeEps {
			nf.degradeActive = false
			changed = true
		}
		if nf.drainedActive && !nf.drainPermanent && s.now >= nf.drainedUntil-timeEps {
			nf.drainedActive = false
		}
		if changed {
			if err := s.refreshRates(n); err != nil {
				return err
			}
		}
	}
	return nil
}

// fireFault applies one due event to its node.
func (s *simState) fireFault(n int, ev faults.Event) {
	node := s.nodes[n]
	nf := node.faults
	switch ev.Kind {
	case faults.Death:
		nf.deaths++
		devs := node.spec.SSD.Count
		if ev.Device < 0 || nf.deadDevs+1 >= devs {
			// The whole array (or its last member) is gone: jobs that
			// offload to it cannot continue on this node.
			nf.arrayFailed = true
			nf.rebuildActive = false
			s.killJobs(n, func(j *jobState) bool { return offloadsToSSD(j.Job) })
			return
		}
		nf.deadDevs++
		nf.rebuildUntil = s.now + nf.rebuildSecs
		nf.rebuildActive = true
		nf.rebuildTime += nf.rebuildSecs
	case faults.Degrade:
		nf.degradeFactor = ev.Factor
		if ev.For > 0 {
			nf.degradeUntil = s.now + ev.For.Seconds()
		} else {
			nf.degradeUntil = math.Inf(1)
		}
		nf.degradeActive = true
	case faults.Drain:
		nf.drains++
		nf.drainPermanent = ev.For <= 0
		nf.drainedUntil = s.now + ev.For.Seconds()
		nf.drainedActive = true
		s.killJobs(n, func(*jobState) bool { return true })
	}
}

// killJobs evicts the node's running jobs the predicate selects, rolls
// each back to its last checkpoint, charges the restart penalty, and
// re-queues them in running order (placement order — deterministic).
func (s *simState) killJobs(n int, victim func(*jobState) bool) {
	node := s.nodes[n]
	kept := node.running[:0]
	for _, j := range node.running {
		if !victim(j) {
			kept = append(kept, j)
			continue
		}
		done := float64(j.Steps) - j.remaining
		ckpt := float64(s.plan.CheckpointSteps)
		keptSteps := math.Floor(done/ckpt) * ckpt
		j.remaining = float64(j.Steps) - keptSteps
		j.penaltyLeft = s.plan.RestartPenalty.Seconds()
		j.running = false
		j.node = -1
		j.restarts++
		node.freeGPUs += j.GPUs
		if offloadsToSSD(j.Job) {
			node.offGPUs -= j.GPUs
		}
		if wantsDRAM(j.Job) && node.spec.DRAM > 0 {
			node.dramGPUs -= j.GPUs
		}
		node.faults.killed++
		s.queue = append(s.queue, j)
	}
	node.running = kept
}
