// Package workload generates the synthetic pretraining token stream that
// stands in for the OSCAR corpus (§IV-A). Pretraining throughput and
// memory never depend on token values — only on batch shapes — so a
// deterministic Zipf-distributed stream preserves everything the
// evaluation needs while keeping the repository self-contained.
package workload

import (
	"fmt"
	"math"
)

// Dataset is a deterministic token stream over a vocabulary.
type Dataset struct {
	vocab int
	seq   int
	// Zipf exponent: natural-language token frequencies follow roughly
	// s ≈ 1.
	exponent float64
	// cdf is the cumulative distribution over a truncated rank table.
	cdf []float64
	rng uint64
}

// NewDataset creates a stream over the vocabulary with the given sequence
// length and seed.
func NewDataset(vocab, seq int, seed uint64) *Dataset {
	if vocab < 2 || seq <= 0 {
		panic(fmt.Sprintf("workload: bad dataset shape vocab=%d seq=%d", vocab, seq))
	}
	d := &Dataset{vocab: vocab, seq: seq, exponent: 1.0, rng: seed | 1}
	// Build the Zipf CDF over the first min(vocab, 4096) ranks; the long
	// tail is folded into the last bucket (it carries <2% of the mass).
	n := vocab
	if n > 4096 {
		n = 4096
	}
	d.cdf = make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), d.exponent)
		d.cdf[i] = sum
	}
	for i := range d.cdf {
		d.cdf[i] /= sum
	}
	return d
}

// Vocab returns the vocabulary size.
func (d *Dataset) Vocab() int { return d.vocab }

// SeqLen returns the sequence length.
func (d *Dataset) SeqLen() int { return d.seq }

func (d *Dataset) next() uint64 {
	x := d.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.rng = x
	return x * 0x2545F4914F6CDD1D
}

// NextToken draws one token id.
func (d *Dataset) NextToken() int32 {
	u := float64(d.next()>>11) / float64(1<<53)
	// Binary search the CDF.
	lo, hi := 0, len(d.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Spread the head ranks across the full vocabulary deterministically
	// so all ids occur while keeping the frequency skew.
	id := int64(lo)
	if lo == len(d.cdf)-1 && d.vocab > len(d.cdf) {
		id = int64(len(d.cdf)) + int64(d.next()%uint64(d.vocab-len(d.cdf)))
	}
	return int32(id)
}

// Batch fills a [batch][seq] token-id matrix.
func (d *Dataset) Batch(batch int) [][]int32 {
	out := make([][]int32, batch)
	for i := range out {
		row := make([]int32, d.seq)
		for j := range row {
			row[j] = d.NextToken()
		}
		out[i] = row
	}
	return out
}

// Stats summarizes a sample of the stream, used to validate the Zipf
// property in tests.
type Stats struct {
	Tokens   int
	Distinct int
	// TopShare is the frequency share of the single most common token.
	TopShare float64
}

// Sample draws n tokens and summarizes them.
func (d *Dataset) Sample(n int) Stats {
	counts := make(map[int32]int)
	top := 0
	for i := 0; i < n; i++ {
		t := d.NextToken()
		counts[t]++
		if counts[t] > top {
			top = counts[t]
		}
	}
	return Stats{Tokens: n, Distinct: len(counts), TopShare: float64(top) / float64(n)}
}
