package workload

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewDataset(30720, 1024, 7)
	b := NewDataset(30720, 1024, 7)
	ba := a.Batch(4)
	bb := b.Batch(4)
	for i := range ba {
		for j := range ba[i] {
			if ba[i][j] != bb[i][j] {
				t.Fatalf("streams diverge at [%d][%d]", i, j)
			}
		}
	}
	c := NewDataset(30720, 1024, 8)
	diff := false
	bc := c.Batch(1)
	for j := range bc[0] {
		if bc[0][j] != ba[0][j] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}

func TestBatchShape(t *testing.T) {
	d := NewDataset(8192, 512, 1)
	b := d.Batch(3)
	if len(b) != 3 || len(b[0]) != 512 {
		t.Fatalf("batch shape %dx%d", len(b), len(b[0]))
	}
}

func TestZipfSkew(t *testing.T) {
	d := NewDataset(30720, 1024, 42)
	st := d.Sample(200000)
	// Natural-language-like skew: the most common token carries a large
	// share, but nothing close to everything.
	if st.TopShare < 0.02 || st.TopShare > 0.3 {
		t.Errorf("top token share = %.3f", st.TopShare)
	}
	if st.Distinct < 1000 {
		t.Errorf("distinct tokens = %d, stream not diverse", st.Distinct)
	}
}

// Property: all tokens are valid vocabulary ids.
func TestTokensInRangeProperty(t *testing.T) {
	f := func(seed uint64, vocabSel uint8) bool {
		vocab := int(vocabSel)%30000 + 16
		d := NewDataset(vocab, 16, seed)
		for i := 0; i < 200; i++ {
			tok := d.NextToken()
			if tok < 0 || int(tok) >= vocab {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad dataset shape did not panic")
		}
	}()
	NewDataset(1, 128, 0)
}
