// Package models builds the transformer op graphs the paper evaluates:
// GPT (decoder-only), BERT (encoder-only) and T5 (encoder-decoder), with
// Megatron-style tensor-parallel sharding, FlashAttention-style fused
// attention (or the unfused chain for ablations), and optional layerwise
// activation checkpointing. Kernel times come from the GPU cost model;
// activation sizes are not hand-coded — they emerge from which tensors
// each op registers for backward, exactly as they do in PyTorch, which is
// what makes the Table III "measured vs analytic estimate" comparison a
// real check rather than a tautology.
package models

import (
	"fmt"

	"ssdtrain/internal/tensor"
)

// Arch selects the model family.
type Arch string

// Supported architectures (§II-A's three transformer classes).
const (
	GPT  Arch = "gpt"  // decoder-only
	BERT Arch = "bert" // encoder-only
	T5   Arch = "t5"   // encoder-decoder
)

// Config describes one training configuration (one Fig 6 column).
type Config struct {
	Arch Arch
	// Hidden is the model dimension (the paper sweeps 8192–16384).
	Hidden int
	// Layers is the total transformer layer count; for T5 the decoder
	// gets ⌊Layers/2⌋ of them (§IV-A).
	Layers int
	// HeadDim is the attention head dimension (128 in the paper).
	HeadDim int
	// SeqLen is the text sequence length (1024 in the paper).
	SeqLen int
	// Batch is the micro-batch size in sequences.
	Batch int
	// Vocab is the (padded) vocabulary size.
	Vocab int
	// FFNMult is the MLP expansion factor (4).
	FFNMult int
	// TP is the tensor-parallel degree (2 in the paper's testbed).
	TP int
	// FlashAttention selects the fused attention kernel; when false the
	// unfused softmax chain (with its s² activations) is emitted.
	FlashAttention bool
	// Checkpoint enables layerwise full recomputation on every
	// transformer layer (the paper's "Recompute" strategy).
	Checkpoint bool
	// DType is the training precision (FP16 in the paper).
	DType tensor.DType
}

// Validate checks shape divisibility constraints.
func (c Config) Validate() error {
	if c.Hidden <= 0 || c.Layers <= 0 || c.SeqLen <= 0 || c.Batch <= 0 {
		return fmt.Errorf("models: non-positive dimension in %+v", c)
	}
	if c.HeadDim <= 0 || c.Hidden%c.HeadDim != 0 {
		return fmt.Errorf("models: hidden %d not divisible by head dim %d", c.Hidden, c.HeadDim)
	}
	if c.TP <= 0 {
		return fmt.Errorf("models: TP degree must be positive")
	}
	if c.Heads()%c.TP != 0 {
		return fmt.Errorf("models: heads %d not divisible by TP %d", c.Heads(), c.TP)
	}
	if c.Vocab%c.TP != 0 {
		return fmt.Errorf("models: vocab %d not divisible by TP %d", c.Vocab, c.TP)
	}
	if (c.Hidden*c.FFNMult)%c.TP != 0 {
		return fmt.Errorf("models: FFN width not divisible by TP %d", c.TP)
	}
	if c.Arch != GPT && c.Arch != BERT && c.Arch != T5 {
		return fmt.Errorf("models: unknown arch %q", c.Arch)
	}
	return nil
}

// Heads returns the attention head count.
func (c Config) Heads() int { return c.Hidden / c.HeadDim }

// Tokens returns tokens per micro-batch (Batch × SeqLen).
func (c Config) Tokens() int64 { return int64(c.Batch) * int64(c.SeqLen) }

// EncoderLayers returns the encoder layer count (0 for GPT).
func (c Config) EncoderLayers() int {
	switch c.Arch {
	case T5:
		return c.Layers - c.Layers/2
	case BERT:
		return c.Layers
	default:
		return 0
	}
}

// DecoderLayers returns the decoder layer count (0 for BERT).
func (c Config) DecoderLayers() int {
	switch c.Arch {
	case T5:
		return c.Layers / 2
	case GPT:
		return c.Layers
	default:
		return 0
	}
}

// ParamCount approximates the full (unsharded) parameter count:
// 12·L·h² for the transformer plus the embedding table.
func (c Config) ParamCount() int64 {
	h := int64(c.Hidden)
	layers := int64(c.Layers)
	per := 12 * h * h
	if c.Arch == T5 {
		// Decoder layers carry an extra cross-attention block (~4h²).
		per = 12 * h * h
		extra := int64(c.DecoderLayers()) * 4 * h * h
		return layers*per + extra + int64(c.Vocab)*h
	}
	return layers*per + int64(c.Vocab)*h
}

// String renders the configuration the way the paper labels columns.
func (c Config) String() string {
	return fmt.Sprintf("%s H%d L%d B%d", c.Arch, c.Hidden, c.Layers, c.Batch)
}

// defaultVocab returns the padded per-architecture vocabulary.
func defaultVocab(a Arch) int {
	switch a {
	case BERT:
		return 30720 // BERT's 30522, padded for TP divisibility
	case T5:
		return 32256 // T5's 32128, padded
	default:
		return 50304 // GPT-2's 50257, padded (Megatron convention)
	}
}

// PaperConfig returns the §IV-A evaluation configuration for an
// architecture and geometry: TP2, sequence 1024, head dim 128, FP16,
// FlashAttention-2 enabled.
func PaperConfig(arch Arch, hidden, layers, batch int) Config {
	return Config{
		Arch:           arch,
		Hidden:         hidden,
		Layers:         layers,
		HeadDim:        128,
		SeqLen:         1024,
		Batch:          batch,
		Vocab:          defaultVocab(arch),
		FFNMult:        4,
		TP:             2,
		FlashAttention: true,
		DType:          tensor.FP16,
	}
}

// Fig6Geometries returns the paper's three (hidden, layers) evaluation
// points.
func Fig6Geometries() [][2]int {
	return [][2]int{{8192, 4}, {12288, 3}, {16384, 2}}
}
