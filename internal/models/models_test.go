package models

import (
	"testing"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

func testConfig(arch Arch) Config {
	return Config{
		Arch: arch, Hidden: 2048, Layers: 4, HeadDim: 128, SeqLen: 512,
		Batch: 4, Vocab: 8192, FFNMult: 4, TP: 2, FlashAttention: true,
		DType: tensor.FP16,
	}
}

func build(t *testing.T, cfg Config) *autograd.Graph {
	t.Helper()
	g, err := Build(cfg, gpu.DefaultCostModel(gpu.A100PCIe()))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(GPT)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Hidden = 2000 // not divisible by head dim
	if bad.Validate() == nil {
		t.Error("bad hidden accepted")
	}
	bad = good
	bad.Vocab = 8191
	if bad.Validate() == nil {
		t.Error("odd vocab with TP2 accepted")
	}
	bad = good
	bad.Arch = "rnn"
	if bad.Validate() == nil {
		t.Error("unknown arch accepted")
	}
}

func TestLayerCounts(t *testing.T) {
	c := testConfig(T5)
	c.Layers = 5
	if c.EncoderLayers() != 3 || c.DecoderLayers() != 2 {
		t.Errorf("T5 split: enc %d dec %d (want 3/2: decoders are half, rounded down)",
			c.EncoderLayers(), c.DecoderLayers())
	}
	if testConfig(GPT).DecoderLayers() != 4 || testConfig(GPT).EncoderLayers() != 0 {
		t.Error("GPT layer counts wrong")
	}
	if testConfig(BERT).EncoderLayers() != 4 {
		t.Error("BERT layer counts wrong")
	}
}

func TestGraphStructure(t *testing.T) {
	for _, arch := range []Arch{GPT, BERT, T5} {
		g := build(t, testConfig(arch))
		// embed + layers + head (+T5: second embed).
		want := 1 + 4 + 1
		if arch == T5 {
			want = 1 + 2 + 1 + 2 + 1
		}
		if len(g.Blocks) != want {
			t.Errorf("%s blocks = %d, want %d", arch, len(g.Blocks), want)
		}
	}
}

// TestSavedBytesMatchKorthikanti is the Table III cross-check at unit
// level: the activation bytes that emerge from the op graph must match
// the analytic per-layer formula s·b·h·(10 + 24/t) within the small terms
// the formula ignores (LayerNorm statistics).
func TestSavedBytesMatchKorthikanti(t *testing.T) {
	cfg := testConfig(BERT)
	g := build(t, cfg)
	layer := g.Blocks[1] // first transformer layer
	hiddenBytes := units.Bytes(int64(cfg.Batch) * int64(cfg.SeqLen) * int64(cfg.Hidden) * 2)
	got := layer.SavedBytes(hiddenBytes, nil)
	sbh := float64(cfg.SeqLen) * float64(cfg.Batch) * float64(cfg.Hidden)
	want := units.Bytes(sbh * (10 + 24/float64(cfg.TP)))
	ratio := float64(got) / float64(want)
	if ratio < 0.97 || ratio > 1.08 {
		t.Errorf("per-layer saved bytes %v vs formula %v (ratio %.3f)", got, want, ratio)
	}
}

func TestUnfusedAttentionHasQuadraticActivations(t *testing.T) {
	fused := build(t, testConfig(BERT))
	cfg := testConfig(BERT)
	cfg.FlashAttention = false
	unfused := build(t, cfg)
	hiddenBytes := units.Bytes(int64(cfg.Batch) * int64(cfg.SeqLen) * int64(cfg.Hidden) * 2)
	f := fused.Blocks[1].SavedBytes(hiddenBytes, nil)
	u := unfused.Blocks[1].SavedBytes(hiddenBytes, nil)
	if u <= f {
		t.Errorf("unfused saved bytes %v not above fused %v", u, f)
	}
	// The gap should be roughly the 5as/h term (scores+probs+mask).
	sbh := float64(cfg.SeqLen) * float64(cfg.Batch) * float64(cfg.Hidden)
	term := units.Bytes(5 * sbh * float64(cfg.Heads()*cfg.SeqLen) / float64(cfg.Hidden) / float64(cfg.TP))
	ratio := float64(u-f) / float64(term)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("s² activation term = %v, want ≈ %v (ratio %.2f)", u-f, term, ratio)
	}
}

func TestWeightCountApproximation(t *testing.T) {
	cfg := testConfig(GPT)
	g := build(t, cfg)
	perGPU := int64(g.WeightBytes() / 2) // FP16 → params
	// Full params / TP: 12Lh²/2 + Vh/2 (tied embedding counted once).
	h := int64(cfg.Hidden)
	want := (12*int64(cfg.Layers)*h*h + int64(cfg.Vocab)*h) / int64(cfg.TP)
	ratio := float64(perGPU) / float64(want)
	if ratio < 0.95 || ratio > 1.1 {
		t.Errorf("per-GPU params %d vs 12Lh²+Vh sharded %d (ratio %.3f)", perGPU, want, ratio)
	}
}

func TestEmbeddingTiedToHead(t *testing.T) {
	g := build(t, testConfig(GPT))
	// The LM head weight must share storage with the embedding table
	// (weight tying) so Weights() dedups it.
	var table *tensor.Tensor
	for _, w := range g.Weights() {
		if w.Name() == "embed.table" {
			table = w
		}
	}
	if table == nil {
		t.Fatal("no embedding table found")
	}
	head := g.Blocks[len(g.Blocks)-1]
	var lm *tensor.Tensor
	for i := range head.Ops {
		if head.Ops[i].Weight != nil {
			lm = head.Ops[i].Weight
		}
	}
	if lm == nil || lm.Storage() != table.Storage() {
		t.Error("LM head is not tied to the embedding table")
	}
}

func TestCausalHalvesAttentionFLOPs(t *testing.T) {
	gpt := build(t, testConfig(GPT))   // causal
	bert := build(t, testConfig(BERT)) // bidirectional
	attnFLOPs := func(g *autograd.Graph) units.FLOPs {
		for _, b := range g.Blocks {
			for i := range b.Ops {
				if b.Ops[i].Name == "attn" {
					return b.Ops[i].FwdFLOPs
				}
			}
		}
		return 0
	}
	gf, bf := attnFLOPs(gpt), attnFLOPs(bert)
	if gf*2 != bf {
		t.Errorf("causal attention flops %v, bidirectional %v (want half)", gf, bf)
	}
}

func TestT5CrossAttentionWiring(t *testing.T) {
	cfg := testConfig(T5)
	g := build(t, cfg)
	encLast := 1 + cfg.EncoderLayers() - 1 // after enc_embed
	found := 0
	for _, b := range g.Blocks {
		if len(b.ExtraIn) == 1 && b.ExtraIn[0] == encLast {
			found++
			// The block must consume the extra exactly once via SaveExtra1.
			uses := 0
			for i := range b.Ops {
				if b.Ops[i].SaveExtra1 == 1 {
					uses++
				}
			}
			if uses != 1 {
				t.Errorf("decoder block consumes extra %d times", uses)
			}
		}
	}
	if found != cfg.DecoderLayers() {
		t.Errorf("%d decoder blocks reference the encoder output, want %d", found, cfg.DecoderLayers())
	}
}

func TestCheckpointFlagPropagates(t *testing.T) {
	cfg := testConfig(BERT)
	cfg.Checkpoint = true
	g := build(t, cfg)
	// Transformer layers checkpointed; embed and head not.
	if g.Blocks[0].Checkpoint || g.Blocks[len(g.Blocks)-1].Checkpoint {
		t.Error("embed/head should not checkpoint")
	}
	for _, b := range g.Blocks[1 : len(g.Blocks)-1] {
		if !b.Checkpoint {
			t.Error("layer not checkpointed")
		}
	}
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig(BERT, 12288, 3, 16)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.TP != 2 || cfg.SeqLen != 1024 || cfg.HeadDim != 128 || !cfg.FlashAttention {
		t.Errorf("paper config wrong: %+v", cfg)
	}
	if cfg.Heads() != 96 {
		t.Errorf("heads = %d", cfg.Heads())
	}
	if len(Fig6Geometries()) != 3 {
		t.Error("geometry set wrong")
	}
}

func TestParamCountScale(t *testing.T) {
	// GPT-3 geometry should land near 175B.
	cfg := Config{Arch: GPT, Hidden: 12288, Layers: 96, HeadDim: 128, SeqLen: 2048,
		Batch: 1, Vocab: 50304, FFNMult: 4, TP: 8, FlashAttention: true}
	p := cfg.ParamCount()
	if p < 170e9 || p > 185e9 {
		t.Errorf("GPT-3 param count = %d", p)
	}
}
