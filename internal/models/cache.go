package models

import (
	"sync"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/gpu"
)

// graphKey identifies a built graph template: the full model configuration
// plus everything the cost model folds into kernel times. Two Build calls
// with equal keys produce graphs that differ only in weight storage
// identity, so one immutable template can serve both.
type graphKey struct {
	cfg  Config
	cost gpu.CostModel // value copy: Spec + calibration scalars
}

// graphCache memoizes Build results. Templates are immutable — callers
// receive clones with fresh weights — so the cache never goes stale and is
// safe to share between goroutines (fleet profiling builds graphs
// concurrently).
type graphCache struct {
	mu      sync.Mutex
	graphs  map[graphKey]*autograd.Graph
	hits    int64
	builds  int64
	maxSize int
}

var sharedGraphs = &graphCache{
	graphs: make(map[graphKey]*autograd.Graph),
	// Distinct (model, GPU) shapes in even a large sweep number in the
	// dozens; the bound only guards against pathological key churn.
	maxSize: 512,
}

// BuildCached returns an executable graph for the configuration: a fresh
// clone of a memoized immutable template. The first call per (config,
// cost model) pays full construction and validation; subsequent calls pay
// only weight rebinding. Sweeps that re-run one model under many budgets,
// bandwidth shares, or strategies hit the template every time.
func BuildCached(cfg Config, cost *gpu.CostModel) (*autograd.Graph, error) {
	key := graphKey{cfg: cfg, cost: *cost}
	sharedGraphs.mu.Lock()
	tmpl, ok := sharedGraphs.graphs[key]
	if ok {
		sharedGraphs.hits++
	}
	sharedGraphs.mu.Unlock()
	if !ok {
		var err error
		tmpl, err = Build(cfg, cost)
		if err != nil {
			return nil, err
		}
		sharedGraphs.mu.Lock()
		sharedGraphs.builds++
		if existing, raced := sharedGraphs.graphs[key]; raced {
			// A concurrent builder won the race; adopt its template so all
			// clones share one module tree.
			tmpl = existing
		} else {
			if len(sharedGraphs.graphs) >= sharedGraphs.maxSize {
				// Drop an arbitrary entry; the cache is a memo, not a
				// correctness structure.
				for k := range sharedGraphs.graphs {
					delete(sharedGraphs.graphs, k)
					break
				}
			}
			sharedGraphs.graphs[key] = tmpl
		}
		sharedGraphs.mu.Unlock()
	}
	return tmpl.CloneWithFreshWeights(), nil
}

// GraphCacheStats reports template cache hits and full builds since
// process start, for benchmark assertions and capacity planning.
func GraphCacheStats() (hits, builds int64) {
	sharedGraphs.mu.Lock()
	defer sharedGraphs.mu.Unlock()
	return sharedGraphs.hits, sharedGraphs.builds
}
