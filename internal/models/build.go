package models

import (
	"fmt"
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// builder assembles a per-GPU (tensor-parallel shard) op graph.
type builder struct {
	cfg  Config
	cost *gpu.CostModel
	root *autograd.Module
	// embedTable is the vocab-parallel embedding, tied to the LM head.
	embedTable *tensor.Tensor
}

// Build constructs the training graph for one tensor-parallel rank.
func Build(cfg Config, cost *gpu.CostModel) (*autograd.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &builder{cfg: cfg, cost: cost, root: autograd.NewModule(string(cfg.Arch))}
	e := cfg.DType.Size()
	b.embedTable = tensor.NewWeight("embed.table",
		tensor.NewShape(cfg.Vocab/cfg.TP, cfg.Hidden), cfg.DType, tensor.GPU)

	g := &autograd.Graph{
		Name:       cfg.String(),
		Root:       b.root,
		InputShape: tensor.NewShape(cfg.Batch, cfg.SeqLen),
		InputDType: tensor.INT32,
	}

	switch cfg.Arch {
	case GPT:
		g.Blocks = append(g.Blocks, b.embedBlock("embed", true))
		for i := 0; i < cfg.Layers; i++ {
			g.Blocks = append(g.Blocks, b.layerBlock(fmt.Sprintf("layers.%d", i), true, -1))
		}
		g.Blocks = append(g.Blocks, b.headBlock("head"))
	case BERT:
		g.Blocks = append(g.Blocks, b.embedBlock("embed", true))
		for i := 0; i < cfg.Layers; i++ {
			g.Blocks = append(g.Blocks, b.layerBlock(fmt.Sprintf("layers.%d", i), false, -1))
		}
		g.Blocks = append(g.Blocks, b.headBlock("mlm_head"))
	case T5:
		enc := cfg.EncoderLayers()
		dec := cfg.DecoderLayers()
		g.Blocks = append(g.Blocks, b.embedBlock("enc_embed", true))
		for i := 0; i < enc; i++ {
			g.Blocks = append(g.Blocks, b.layerBlock(fmt.Sprintf("enc.%d", i), false, -1))
		}
		encLast := len(g.Blocks) - 1
		// The decoder embedding consumes fresh token ids; its chain input
		// (the encoder output) is a graph-plumbing artifact and is not
		// registered for backward.
		g.Blocks = append(g.Blocks, b.embedBlock("dec_embed", false))
		for i := 0; i < dec; i++ {
			g.Blocks = append(g.Blocks, b.layerBlock(fmt.Sprintf("dec.%d", i), true, encLast))
		}
		g.Blocks = append(g.Blocks, b.headBlock("head"))
	}

	_ = e
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// --- shape and cost helpers ---

func (b *builder) bytesOf(shape tensor.Shape) units.Bytes {
	return units.Bytes(shape.NumElems() * int64(b.cfg.DType.Size()))
}

func (b *builder) mem(bytes units.Bytes) time.Duration {
	return b.cost.MemoryBound(bytes)
}

// hiddenShape is [batch, seq, dims...].
func (b *builder) hiddenShape(dims ...int) tensor.Shape {
	s := []int{b.cfg.Batch, b.cfg.SeqLen}
	return tensor.NewShape(append(s, dims...)...)
}

// lnOp is LayerNorm: memory-bound, saves its input plus per-token stats.
func (b *builder) lnOp(name string, shape tensor.Shape) autograd.OpSpec {
	bytes := b.bytesOf(shape)
	return autograd.OpSpec{
		Name:           name,
		FwdTime:        b.mem(2 * bytes),
		BwdTime:        b.mem(3 * bytes),
		OutShape:       shape,
		OutDType:       b.cfg.DType,
		SaveInput:      true,
		SaveStatsElems: 2 * b.cfg.Tokens(),
	}
}

// linearOp is a GEMM with a parameter: saves its input (for the weight
// gradient); the executor registers the weight's transposed view.
func (b *builder) linearOp(name string, m, k, n int64, outShape tensor.Shape, w *tensor.Tensor) autograd.OpSpec {
	e := b.cfg.DType.Size()
	return autograd.OpSpec{
		Name:      name,
		FwdTime:   b.cost.Matmul(m, k, n, e),
		BwdTime:   b.cost.Matmul(m, n, k, e) + b.cost.Matmul(k, m, n, e),
		FwdFLOPs:  gpu.MatmulFLOPs(m, k, n),
		BwdFLOPs:  2 * gpu.MatmulFLOPs(m, k, n),
		OutShape:  outShape,
		OutDType:  b.cfg.DType,
		SaveInput: true,
		Weight:    w,
	}
}

// dropoutOp is memory-bound and saves a byte mask.
func (b *builder) dropoutOp(name string, shape tensor.Shape) autograd.OpSpec {
	bytes := b.bytesOf(shape)
	mask := units.Bytes(shape.NumElems())
	return autograd.OpSpec{
		Name:     name,
		FwdTime:  b.mem(2*bytes + mask),
		BwdTime:  b.mem(2*bytes + mask),
		OutShape: shape,
		OutDType: b.cfg.DType,
		SaveMask: true,
	}
}

// addOp is the residual addition; backward is a gradient pass-through.
func (b *builder) addOp(name string, shape tensor.Shape) autograd.OpSpec {
	bytes := b.bytesOf(shape)
	return autograd.OpSpec{
		Name:     name,
		FwdTime:  b.mem(3 * bytes),
		BwdTime:  b.mem(2 * bytes),
		OutShape: shape,
		OutDType: b.cfg.DType,
	}
}

// geluOp saves its input for the activation gradient.
func (b *builder) geluOp(name string, shape tensor.Shape) autograd.OpSpec {
	bytes := b.bytesOf(shape)
	return autograd.OpSpec{
		Name:      name,
		FwdTime:   b.mem(2 * bytes),
		BwdTime:   b.mem(3 * bytes),
		OutShape:  shape,
		OutDType:  b.cfg.DType,
		SaveInput: true,
	}
}

// fusedAttnOp is the FlashAttention kernel: saves q/k/v (its input), its
// output, and the per-(head,token) log-sum-exp stats; the s² score matrix
// never materializes (§IV-C's selective-checkpointing discussion).
func (b *builder) fusedAttnOp(name string, causal bool, kvSeq int64) autograd.OpSpec {
	cfg := b.cfg
	n := cfg.Tokens()
	hl := int64(cfg.Hidden / cfg.TP)
	headsLocal := int64(cfg.Heads() / cfg.TP)
	flops := units.FLOPs(4 * float64(n) * float64(kvSeq) * float64(hl))
	if causal {
		flops /= 2
	}
	io := units.Bytes((3*kvSeq*int64(cfg.Batch) + n) * hl * int64(cfg.DType.Size()))
	return autograd.OpSpec{
		Name:           name,
		FwdTime:        b.cost.FusedAttention(flops, io),
		BwdTime:        b.cost.FusedAttention(2.5*flops, io),
		FwdFLOPs:       flops,
		BwdFLOPs:       2.5 * flops,
		OutShape:       b.hiddenShape(int(hl)),
		OutDType:       cfg.DType,
		SaveInput:      true,
		SaveOutput:     true,
		SaveStatsElems: n * headsLocal,
	}
}

// embedBlock is the token embedding + dropout. saveIDs registers the
// input token ids (a small tensor exercising the pack early-return path).
func (b *builder) embedBlock(name string, saveIDs bool) *autograd.Block {
	cfg := b.cfg
	m := b.root.Child(name)
	h := cfg.Hidden
	out := b.hiddenShape(h)
	bytes := b.bytesOf(out)
	lookup := autograd.OpSpec{
		Name: "lookup",
		// Gather of the rows plus the vocab-parallel all-reduce.
		FwdTime:   b.mem(bytes) + b.cost.AllReduceTime(bytes, cfg.TP),
		BwdTime:   b.mem(2 * bytes),
		OutShape:  out,
		OutDType:  cfg.DType,
		SaveInput: saveIDs, // token ids: small, takes the pack early-return path
		Weight:    b.embedTable,
	}
	drop := b.dropoutOp("drop", out)
	return &autograd.Block{Module: m, Ops: []autograd.OpSpec{lookup, drop}}
}

// layerBlock is one transformer layer (pre-LN). causal selects decoder
// attention; encLast ≥ 0 adds a T5 cross-attention sublayer consuming
// that block's output.
func (b *builder) layerBlock(name string, causal bool, encLast int) *autograd.Block {
	cfg := b.cfg
	m := b.root.Child(name)
	h := int64(cfg.Hidden)
	t := int64(cfg.TP)
	n := cfg.Tokens()
	hl := int(h / t)
	ffnLocal := int(h) * cfg.FFNMult / int(t)
	hidden := b.hiddenShape(int(h))
	e := cfg.DType.Size()

	var ops []autograd.OpSpec
	push := func(op autograd.OpSpec) int {
		ops = append(ops, op)
		return len(ops) // 1-based index of the pushed op
	}

	// Self-attention sublayer.
	push(b.lnOp("ln1", hidden))
	wqkv := tensor.NewWeight(name+".wqkv", tensor.NewShape(int(h), 3*hl), cfg.DType, tensor.GPU)
	push(b.linearOp("qkv", n, h, 3*(h/t), b.hiddenShape(3*hl), wqkv))
	if cfg.FlashAttention {
		push(b.fusedAttnOp("attn", causal, int64(cfg.SeqLen)))
	} else {
		b.pushUnfusedAttention(&ops, causal)
	}
	wproj := tensor.NewWeight(name+".wproj", tensor.NewShape(hl, int(h)), cfg.DType, tensor.GPU)
	proj := b.linearOp("proj", n, h/t, h, hidden, wproj)
	// Row-parallel linear: all-reduce of the output in forward; the
	// column-parallel qkv gets the conjugate all-reduce in backward.
	proj.FwdTime += b.cost.AllReduceTime(b.bytesOf(hidden), cfg.TP)
	ops[1].BwdTime += b.cost.AllReduceTime(b.bytesOf(hidden), cfg.TP)
	push(proj)
	push(b.dropoutOp("drop1", hidden))
	push(b.addOp("add1", hidden))
	addSelf := len(ops)

	extraIn := []int(nil)
	if encLast >= 0 {
		// T5 cross-attention sublayer. The kv projection consumes the
		// encoder output — the same tensor in every decoder layer, which
		// the cache deduplicates (§III-C1).
		extraIn = []int{encLast}
		lnx := push(b.lnOp("lnx", hidden))
		wkv := tensor.NewWeight(name+".wxkv", tensor.NewShape(int(h), 2*hl), cfg.DType, tensor.GPU)
		kv := b.linearOp("xkv", n, h, 2*(h/t), b.hiddenShape(2*hl), wkv)
		kv.InputFrom1 = lnx
		kv.SaveInput = false // its compute input is the encoder output
		kv.SaveExtra1 = 1
		kvIdx := push(kv)
		wq := tensor.NewWeight(name+".wxq", tensor.NewShape(int(h), hl), cfg.DType, tensor.GPU)
		q := b.linearOp("xq", n, h, h/t, b.hiddenShape(hl), wq)
		q.InputFrom1 = lnx
		qIdx := push(q)
		xattn := b.fusedAttnOp("xattn", false, int64(cfg.SeqLen))
		xattn.InputFrom1 = qIdx
		xattn.SaveOther1 = kvIdx
		push(xattn)
		wxo := tensor.NewWeight(name+".wxo", tensor.NewShape(hl, int(h)), cfg.DType, tensor.GPU)
		xproj := b.linearOp("xproj", n, h/t, h, hidden, wxo)
		xproj.FwdTime += b.cost.AllReduceTime(b.bytesOf(hidden), cfg.TP)
		ops[kvIdx-1].BwdTime += b.cost.AllReduceTime(b.bytesOf(hidden), cfg.TP)
		push(xproj)
		push(b.dropoutOp("dropx", hidden))
		addX := b.addOp("addx", hidden)
		// The residual operand (the self-attention sublayer output) is the
		// longer-lived input; the dropout output is consumed immediately.
		addX.InputFrom1 = addSelf
		push(addX)
	}

	// MLP sublayer.
	push(b.lnOp("ln2", hidden))
	wfc1 := tensor.NewWeight(name+".wfc1", tensor.NewShape(int(h), ffnLocal), cfg.DType, tensor.GPU)
	fc1Idx := push(b.linearOp("fc1", n, h, int64(ffnLocal), b.hiddenShape(ffnLocal), wfc1))
	push(b.geluOp("gelu", b.hiddenShape(ffnLocal)))
	wfc2 := tensor.NewWeight(name+".wfc2", tensor.NewShape(ffnLocal, int(h)), cfg.DType, tensor.GPU)
	fc2 := b.linearOp("fc2", n, int64(ffnLocal), h, hidden, wfc2)
	fc2.FwdTime += b.cost.AllReduceTime(b.bytesOf(hidden), cfg.TP)
	ops[fc1Idx-1].BwdTime += b.cost.AllReduceTime(b.bytesOf(hidden), cfg.TP)
	push(fc2)
	push(b.dropoutOp("drop2", hidden))
	push(b.addOp("add2", hidden))

	_ = e
	return &autograd.Block{
		Module:     m,
		Ops:        ops,
		Checkpoint: cfg.Checkpoint,
		ExtraIn:    extraIn,
	}
}

// pushUnfusedAttention emits the pre-FlashAttention softmax chain with its
// s²-sized activations (scores, probabilities, dropout mask) — the memory
// regime Megatron's selective checkpointing was invented for (§IV-C).
func (b *builder) pushUnfusedAttention(ops *[]autograd.OpSpec, causal bool) {
	cfg := b.cfg
	s := int64(cfg.SeqLen)
	d := int64(cfg.HeadDim)
	headsLocal := int64(cfg.Heads() / cfg.TP)
	batchHeads := int64(cfg.Batch) * headsLocal
	hl := cfg.Hidden / cfg.TP
	e := cfg.DType.Size()
	scoreShape := tensor.NewShape(cfg.Batch, int(headsLocal), cfg.SeqLen, cfg.SeqLen)
	scoreBytes := units.Bytes(scoreShape.NumElems() * int64(e))
	causalScale := 1.0
	if causal {
		causalScale = 0.5
	}

	scores := autograd.OpSpec{
		Name:      "scores",
		FwdTime:   time.Duration(causalScale * float64(b.cost.BatchedMatmul(batchHeads, s, d, s, e))),
		BwdTime:   time.Duration(causalScale * float64(2*b.cost.BatchedMatmul(batchHeads, s, d, s, e))),
		FwdFLOPs:  units.FLOPs(causalScale * float64(2*batchHeads*s*d*s)),
		BwdFLOPs:  units.FLOPs(causalScale * float64(4*batchHeads*s*d*s)),
		OutShape:  scoreShape,
		OutDType:  cfg.DType,
		SaveInput: true, // q,k,v — needed for their gradients
	}
	softmax := autograd.OpSpec{
		Name:       "softmax",
		FwdTime:    b.mem(2 * scoreBytes),
		BwdTime:    b.mem(3 * scoreBytes),
		OutShape:   scoreShape,
		OutDType:   cfg.DType,
		SaveOutput: true,
	}
	adrop := b.dropoutOp("attn_drop", scoreShape)
	ctx := autograd.OpSpec{
		Name:      "context",
		FwdTime:   time.Duration(causalScale * float64(b.cost.BatchedMatmul(batchHeads, s, s, d, e))),
		BwdTime:   time.Duration(causalScale * float64(2*b.cost.BatchedMatmul(batchHeads, s, s, d, e))),
		FwdFLOPs:  units.FLOPs(causalScale * float64(2*batchHeads*s*s*d)),
		BwdFLOPs:  units.FLOPs(causalScale * float64(4*batchHeads*s*s*d)),
		OutShape:  b.hiddenShape(hl),
		OutDType:  cfg.DType,
		SaveInput: true, // dropped probabilities
	}
	*ops = append(*ops, scores, softmax, adrop, ctx)
}

// headBlock is the final LayerNorm, the (embedding-tied) vocabulary
// projection, and the cross-entropy loss.
func (b *builder) headBlock(name string) *autograd.Block {
	cfg := b.cfg
	m := b.root.Child(name)
	h := int64(cfg.Hidden)
	n := cfg.Tokens()
	vLocal := cfg.Vocab / cfg.TP
	hidden := b.hiddenShape(cfg.Hidden)
	logits := b.hiddenShape(vLocal)
	logitBytes := b.bytesOf(logits)

	lnf := b.lnOp("ln_f", hidden)
	// The LM head weight is the transposed view of the embedding table
	// (weight tying): its pack identifier must stay stable across steps,
	// which is the §III-C1 get_id requirement.
	lm := b.linearOp("lm_head", n, h, int64(vLocal), logits, b.embedTable.Transpose())
	ce := autograd.OpSpec{
		Name:       "ce_loss",
		FwdTime:    b.mem(3 * logitBytes),
		BwdTime:    b.mem(2 * logitBytes),
		OutShape:   logits,
		OutDType:   cfg.DType,
		SaveOutput: true, // softmax probabilities for the CE gradient
	}
	return &autograd.Block{Module: m, Ops: []autograd.OpSpec{lnf, lm, ce}}
}
