package exp

import (
	"errors"
	"math"
	"testing"

	"ssdtrain/internal/core"
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// sameMeasurement compares everything observable about two runs except
// their configs: per-step metrics, the steady-state step, the planned
// budget and the hierarchy residency peak.
func sameMeasurement(t *testing.T, label string, a, b *RunResult) {
	t.Helper()
	if a.Measured != b.Measured {
		t.Errorf("%s: measured step diverged:\n%+v\nvs\n%+v", label, a.Measured, b.Measured)
	}
	if len(a.PerStep) != len(b.PerStep) {
		t.Fatalf("%s: step counts %d vs %d", label, len(a.PerStep), len(b.PerStep))
	}
	for i := range a.PerStep {
		if a.PerStep[i] != b.PerStep[i] {
			t.Errorf("%s: step %d diverged", label, i)
		}
	}
	if a.PlannedBudget != b.PlannedBudget {
		t.Errorf("%s: planned budget %v vs %v", label, a.PlannedBudget, b.PlannedBudget)
	}
	if a.SSDPeak != b.SSDPeak {
		t.Errorf("%s: residency peak %v vs %v", label, a.SSDPeak, b.SSDPeak)
	}
}

// TestHybridZeroDRAMEqualsSSDOnly: a dram-first hierarchy with no DRAM
// capacity degenerates to the paper's NVMe-only placement, byte for
// byte.
func TestHybridZeroDRAMEqualsSSDOnly(t *testing.T) {
	cfg := smallConfig(models.BERT)
	ssd, err := Run(RunConfig{Model: cfg, Strategy: SSDTrain})
	if err != nil {
		t.Fatal(err)
	}
	for _, placement := range []Placement{PlacementDRAMFirst, PlacementSSDOnly} {
		hyb, err := Run(RunConfig{Model: cfg, Strategy: HybridOffload, Placement: placement})
		if err != nil {
			t.Fatal(err)
		}
		sameMeasurement(t, string(placement)+"/cap0 vs ssdtrain", hyb, ssd)
		if len(hyb.Tiers) != 1 || hyb.Tiers[0].Kind != core.TierNVMe {
			t.Fatalf("zero-DRAM hybrid stack = %+v, want one NVMe tier", hyb.Tiers)
		}
	}
}

// TestHybridFullDRAMEqualsCPUOffload: with the DRAM rung large enough to
// hold the whole eligible set, dram-first never spills and reproduces the
// pinned-host-memory strategy exactly — both under the Fig 3 planner and
// under a pinned budget with the capacity squeezed down to the measured
// peak residency.
func TestHybridFullDRAMEqualsCPUOffload(t *testing.T) {
	cfg := smallConfig(models.BERT)
	cpu, err := Run(RunConfig{Model: cfg, Strategy: CPUOffload})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Run(RunConfig{
		Model: cfg, Strategy: HybridOffload,
		Placement: PlacementDRAMFirst, DRAMCapacity: cpu.EligibleBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "dram-first/cap≥eligible vs cpu-offload", hyb, cpu)
	if len(hyb.Tiers) != 2 {
		t.Fatalf("hybrid stack has %d tiers, want 2", len(hyb.Tiers))
	}
	if hyb.Tiers[1].Written != 0 {
		t.Errorf("NVMe rung saw %v despite an all-fitting DRAM pool", hyb.Tiers[1].Written)
	}

	// Stronger form: capacity exactly at the measured peak residency,
	// with the budget pinned so both runs offload the same set.
	cpuPinned, err := Run(RunConfig{Model: cfg, Strategy: CPUOffload, Budget: cpu.PlannedBudget})
	if err != nil {
		t.Fatal(err)
	}
	hybPinned, err := Run(RunConfig{
		Model: cfg, Strategy: HybridOffload, Budget: cpu.PlannedBudget,
		Placement: PlacementDRAMFirst, DRAMCapacity: cpuPinned.SSDPeak,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameMeasurement(t, "dram-first/cap=peak vs cpu-offload", hybPinned, cpuPinned)
}

// TestHybridSpillsToNVMe: a DRAM rung smaller than the offloaded set
// fills to (at most) its capacity and spills the rest to the array.
func TestHybridSpillsToNVMe(t *testing.T) {
	cfg := smallConfig(models.BERT)
	ref, err := Run(RunConfig{Model: cfg, Strategy: CPUOffload})
	if err != nil {
		t.Fatal(err)
	}
	cap := ref.SSDPeak / 3
	hyb, err := Run(RunConfig{
		Model: cfg, Strategy: HybridOffload,
		Placement: PlacementDRAMFirst, DRAMCapacity: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hyb.Tiers) != 2 {
		t.Fatalf("hybrid stack has %d tiers, want 2", len(hyb.Tiers))
	}
	dram, nvme := hyb.Tiers[0], hyb.Tiers[1]
	if dram.Kind != core.TierDRAM || nvme.Kind != core.TierNVMe {
		t.Fatalf("tier order %v/%v", dram.Kind, nvme.Kind)
	}
	if dram.Written == 0 || nvme.Written == 0 {
		t.Errorf("expected traffic on both rungs, got dram=%v nvme=%v", dram.Written, nvme.Written)
	}
	if dram.Peak > cap {
		t.Errorf("DRAM residency %v exceeds its %v capacity", dram.Peak, cap)
	}
	if hyb.Measured.IO.Leaked != 0 {
		t.Errorf("leaked %d records", hyb.Measured.IO.Leaked)
	}
}

// TestHybridSplitRoutesByRatio: the split policy keeps the DRAM share of
// placed bytes near the requested ratio.
func TestHybridSplitRoutesByRatio(t *testing.T) {
	cfg := smallConfig(models.BERT)
	for _, ratio := range []float64{0.25, 0.5, 0.75} {
		hyb, err := Run(RunConfig{
			Model: cfg, Strategy: HybridOffload,
			Placement: PlacementSplit, SplitRatio: ratio,
			DRAMCapacity: 1 << 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		dram, nvme := hyb.Tiers[0], hyb.Tiers[1]
		total := dram.Written + nvme.Written
		if total == 0 {
			t.Fatalf("ratio %.2f: no offload traffic", ratio)
		}
		got := float64(dram.Written) / float64(total)
		// Per-tensor granularity keeps the greedy balance within one
		// tensor of the target.
		if math.Abs(got-ratio) > 0.15 {
			t.Errorf("ratio %.2f: DRAM share %.3f", ratio, got)
		}
	}
}

// TestPoolOverflowSurfacesThroughRun: the seed panicked the process on
// pinned-pool overflow; the typed error now aborts the run cleanly.
func TestPoolOverflowSurfacesThroughRun(t *testing.T) {
	cfg := smallConfig(models.BERT)
	_, err := Run(RunConfig{
		Model: cfg, Strategy: CPUOffload,
		DRAMCapacity: 64 * units.MiB, // far below one block's activations
	})
	var ovf *core.OverflowError
	if !errors.As(err, &ovf) {
		t.Fatalf("Run error = %v, want wrapped *core.OverflowError", err)
	}
	if ovf.Capacity != 64*units.MiB {
		t.Errorf("overflow capacity = %v", ovf.Capacity)
	}
}
