package exp

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/core"
	"ssdtrain/internal/gds"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/lru"
	"ssdtrain/internal/models"
	"ssdtrain/internal/pcie"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// Plan is a compiled measurement: the pure, config-shape-dependent work
// of Run — the model graph template, the per-block activation and
// backward-time vectors, and the Fig 3 offload budget — memoized so a
// sweep that varies only the cheap knobs (Budget, Steps, Warmup,
// SSDBandwidthShare, AdaptiveSteps) pays graph construction and analysis
// once. A Plan is immutable after Compile and safe for concurrent
// Execute calls: each execution instantiates its own graph (fresh weight
// storages) and runtime.
type Plan struct {
	// shape is the plan's identity: the defaulted config with the cheap
	// knobs zeroed.
	shape RunConfig

	tmpl        *autograd.Graph
	saved       []units.Bytes
	bwd         []time.Duration
	fwdTime     time.Duration
	bwdTime     time.Duration
	weightBytes units.Bytes
	eligible    units.Bytes
	// lastModule is the final block's saved-activation volume — the bytes
	// the planner always keeps resident because backward consumes them
	// immediately (Fig 2 ④). The seed threaded this value through Run
	// without using it; the Plan owns it now.
	lastModule units.Bytes

	// budgetByKey memoizes the Fig 3 budget per (bandwidth share,
	// placement, DRAM capacity, split ratio) combination.
	mu          sync.Mutex
	budgetByKey map[budgetKey]units.Bytes
}

// budgetKey identifies one planned budget within a plan: every cheap
// knob that changes the hierarchy's bandwidth/capacity mix.
type budgetKey struct {
	share     float64
	placement Placement
	dramCap   units.Bytes
	ratio     float64
}

// shapeKey reduces a defaulted config to plan identity by zeroing the
// knobs a Plan absorbs at Execute time.
func shapeKey(cfg RunConfig) RunConfig {
	cfg.Budget = 0
	cfg.Steps = 0
	cfg.Warmup = 0
	cfg.SSDBandwidthShare = 0
	cfg.AdaptiveSteps = false
	cfg.Placement = ""
	cfg.DRAMCapacity = 0
	cfg.SplitRatio = 0
	return cfg
}

// planCache memoizes compiled plans across Run calls, so naive per-point
// sweeps (the figure generators, fleet profiling) share plans without
// managing them explicitly.
var planCache = lru.New[RunConfig, *Plan](256)

// planFlight coalesces concurrent compilations of one shape.
var planFlight lru.Singleflight[RunConfig, *Plan]

// Compile builds the run plan for a configuration. The returned plan can
// Execute any config that differs from cfg only in Budget, Steps, Warmup,
// SSDBandwidthShare, or AdaptiveSteps. Plans are cached: compiling the
// same shape twice returns the same plan.
func Compile(cfg RunConfig) (*Plan, error) {
	cfg = cfg.withDefaults()
	if err := validateKnobs(cfg); err != nil {
		return nil, err
	}
	key := shapeKey(cfg)
	if p, ok := planCache.Get(key); ok {
		return p, nil
	}
	p, err, _ := planFlight.Do(key, func() (*Plan, error) {
		if p, ok := planCache.GetQuiet(key); ok {
			return p, nil
		}
		p, err := compile(key)
		if err == nil {
			planCache.Put(key, p)
		}
		return p, err
	})
	return p, err
}

// PlanCacheStats reports the shared plan cache's hit/miss counters.
func PlanCacheStats() (hits, misses int64) { return planCache.Stats() }

func validateShare(s float64) error {
	if math.IsNaN(s) || s < 0 || s > 1 {
		return fmt.Errorf("exp: SSD bandwidth share %v outside [0, 1]", s)
	}
	return nil
}

// validateKnobs checks the cheap knobs a plan absorbs at Execute time —
// they are zeroed out of the plan's shape, so both Compile and Execute
// validate them.
func validateKnobs(cfg RunConfig) error {
	if err := validateShare(cfg.SSDBandwidthShare); err != nil {
		return err
	}
	if math.IsNaN(cfg.SplitRatio) || cfg.SplitRatio < 0 || cfg.SplitRatio > 1 {
		return fmt.Errorf("exp: split ratio %v outside [0, 1]", cfg.SplitRatio)
	}
	if cfg.DRAMCapacity < 0 {
		return fmt.Errorf("exp: negative DRAM capacity %v", cfg.DRAMCapacity)
	}
	switch cfg.Strategy {
	case HybridOffload:
		switch cfg.Placement {
		case PlacementSSDOnly, PlacementDRAMFirst, PlacementSplit:
		default:
			return fmt.Errorf("exp: unknown placement %q", cfg.Placement)
		}
	case CPUOffload:
		if cfg.Placement != "" {
			return fmt.Errorf("exp: placement %q only applies to the %s strategy", cfg.Placement, HybridOffload)
		}
	default:
		if cfg.Placement != "" {
			return fmt.Errorf("exp: placement %q only applies to the %s strategy", cfg.Placement, HybridOffload)
		}
		if cfg.DRAMCapacity != 0 {
			return fmt.Errorf("exp: DRAM capacity only applies to the %s and %s strategies", HybridOffload, CPUOffload)
		}
	}
	if cfg.SplitRatio != 0 && (cfg.Strategy != HybridOffload || cfg.Placement != PlacementSplit) {
		// A silently ignored ratio would still defeat Sweep's dedup
		// (configs differing only in the dead knob measure twice).
		return fmt.Errorf("exp: split ratio only applies to the %s strategy with %s placement", HybridOffload, PlacementSplit)
	}
	return nil
}

// compile does the actual shape-dependent work.
func compile(key RunConfig) (*Plan, error) {
	mcfg := key.Model
	mcfg.Checkpoint = key.Strategy == Recompute

	switch key.Strategy {
	case NoOffload, Recompute, SSDTrain, CPUOffload, HybridOffload:
	default:
		return nil, fmt.Errorf("exp: unknown strategy %q", key.Strategy)
	}

	cost := gpu.DefaultCostModel(key.GPU)
	tmpl, err := models.BuildCached(mcfg, cost)
	if err != nil {
		return nil, err
	}

	p := &Plan{
		shape:       key,
		tmpl:        tmpl,
		saved:       blockSavedBytes(tmpl),
		bwd:         blockBwdTimes(tmpl),
		weightBytes: tmpl.WeightBytes(),
		budgetByKey: make(map[budgetKey]units.Bytes),
	}
	p.fwdTime, p.bwdTime = graphTimes(tmpl)
	p.eligible, p.lastModule = eligibleBytes(tmpl)
	return p, nil
}

// Shape returns the plan's identity config (defaulted, cheap knobs
// zeroed).
func (p *Plan) Shape() RunConfig { return p.shape }

// EligibleBytes returns the per-step activation volume the pack hook
// would see (excluding weights).
func (p *Plan) EligibleBytes() units.Bytes { return p.eligible }

// LastModuleBytes returns the final block's saved-activation volume, the
// bytes the budget planner always keeps resident.
func (p *Plan) LastModuleBytes() units.Bytes { return p.lastModule }

// WeightBytes returns the per-GPU parameter volume.
func (p *Plan) WeightBytes() units.Bytes { return p.weightBytes }

// plannedBudget returns the Fig 3 budget for the given single-target
// bandwidths, memoized per bandwidth share.
func (p *Plan) plannedBudget(share float64, readBW, writeBW units.Bandwidth) units.Bytes {
	return p.memoBudget(budgetKey{share: share}, func() units.Bytes {
		return core.PlanModuleBudget(p.modulePlan(readBW, writeBW))
	})
}

// plannedHierarchyBudget returns the Fig 3 budget for a tier mix,
// memoized per (share, placement, DRAM capacity, split ratio).
func (p *Plan) plannedHierarchyBudget(key budgetKey, tiers []core.TierPlan) units.Bytes {
	return p.memoBudget(key, func() units.Bytes {
		return core.PlanHierarchyBudget(p.modulePlan(0, 0), tiers)
	})
}

// modulePlan assembles the module-granularity planner input.
func (p *Plan) modulePlan(readBW, writeBW units.Bandwidth) core.ModulePlan {
	return core.ModulePlan{
		SavedBytes:     p.saved,
		BwdTime:        p.bwd,
		ReadBandwidth:  readBW,
		WriteBandwidth: writeBW,
		ForwardTime:    p.fwdTime,
		BackwardTime:   p.bwdTime,
	}
}

// memoBudget caches one planned budget per key.
func (p *Plan) memoBudget(key budgetKey, compute func() units.Bytes) units.Bytes {
	p.mu.Lock()
	if b, ok := p.budgetByKey[key]; ok {
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	b := compute()
	p.mu.Lock()
	p.budgetByKey[key] = b
	p.mu.Unlock()
	return b
}

// Execute runs one measurement under the plan. cfg must match the plan's
// shape in everything except Budget, Steps, Warmup, SSDBandwidthShare,
// and AdaptiveSteps; Execute rejects mismatched configs rather than
// silently measuring the wrong model.
func (p *Plan) Execute(cfg RunConfig) (*RunResult, error) {
	cfg = cfg.withDefaults()
	if err := validateKnobs(cfg); err != nil {
		return nil, err
	}
	if shapeKey(cfg) != p.shape {
		return nil, fmt.Errorf("exp: config shape %+v does not match compiled plan %+v", shapeKey(cfg), p.shape)
	}

	rt := autograd.NewRuntime(cfg.GPU)
	graph := p.tmpl.CloneWithFreshWeights()

	res := &RunResult{Config: cfg, Counters: rt.Counters, WeightBytes: p.weightBytes, EligibleBytes: p.eligible}

	var hooks autograd.Hooks
	var cache *core.TensorCache
	var offloader *core.TieredOffloader

	switch cfg.Strategy {
	case NoOffload, Recompute:
		hooks = autograd.NoHooks{}
	case SSDTrain, CPUOffload, HybridOffload:
		// newSSDTier assembles the GDS rung: derated array spec under a
		// bandwidth share, striped device array, malloc-hook registry.
		newSSDTier := func(link *pcie.Link) *core.SSDOffloader {
			spec := cfg.SSD.Spec
			if s := cfg.SSDBandwidthShare; s > 0 && s < 1 {
				spec.SeqWrite = units.Bandwidth(float64(spec.SeqWrite) * s)
				spec.SeqRead = units.Bandwidth(float64(spec.SeqRead) * s)
			}
			devs := make([]*ssd.Device, cfg.SSD.Count)
			for i := range devs {
				devs[i] = ssd.NewDevice(rt.Eng, fmt.Sprintf("nvme%d", i), spec)
			}
			array := ssd.NewArray(rt.Eng, "/mnt/md1", cfg.SSD.Stripe, devs...)
			registry := gds.NewRegistry()
			hook := gds.NewMallocHook(registry)
			hook.Enabled = !cfg.DisableGDS
			rt.Alloc.AddHook(hook)
			return core.NewSSDOffloader(rt.Eng, "/mnt/md1", link, array, registry)
		}

		var tiers []core.Tier
		var policy core.PlacementPolicy
		switch cfg.Strategy {
		case SSDTrain:
			link := pcie.NewLink(rt.Eng, "pcie0", pcie.DefaultGen4x16())
			tiers = append(tiers, newSSDTier(link))
			policy = core.SSDOnlyPolicy()
		case CPUOffload:
			link := pcie.NewLink(rt.Eng, "pcie0", pcie.DefaultGen4x16())
			tiers = append(tiers, core.NewCPUOffloader(rt.Eng, "/dev/shm", link, cfg.DRAMCapacity))
			policy = core.DRAMFirstPolicy()
		case HybridOffload:
			// DRAM rung (host DMA path) first, NVMe rung (GDS path) below
			// it; each rung drains over its own PCIe path. A zero DRAM
			// capacity degenerates the stack to NVMe-only.
			if cfg.DRAMCapacity > 0 {
				host := pcie.NewLink(rt.Eng, "pcie-host", pcie.DefaultGen4x16())
				tiers = append(tiers, core.NewCPUOffloader(rt.Eng, "/dev/shm", host, cfg.DRAMCapacity))
			}
			link := pcie.NewLink(rt.Eng, "pcie0", pcie.DefaultGen4x16())
			tiers = append(tiers, newSSDTier(link))
			switch cfg.Placement {
			case PlacementSSDOnly:
				policy = core.SSDOnlyPolicy()
			case PlacementSplit:
				policy = core.SplitPolicy(cfg.SplitRatio)
			default:
				policy = core.DRAMFirstPolicy()
			}
		}
		offloader = core.NewTieredOffloader(policy, tiers...)

		budget := cfg.Budget
		if budget == 0 {
			switch cfg.Strategy {
			case HybridOffload:
				key := budgetKey{share: cfg.SSDBandwidthShare, placement: cfg.Placement, dramCap: cfg.DRAMCapacity}
				if cfg.Placement == PlacementSplit {
					key.ratio = cfg.SplitRatio
				}
				budget = p.plannedHierarchyBudget(key, hierarchyPlans(cfg, tiers))
			case CPUOffload:
				// A bounded pinned pool has no spill rung, so the plan
				// must fit it (Strict); capacity 0 reduces bit-for-bit to
				// the unbounded single-target plan.
				key := budgetKey{share: cfg.SSDBandwidthShare, dramCap: cfg.DRAMCapacity}
				budget = p.plannedHierarchyBudget(key, []core.TierPlan{{
					WriteBandwidth: offloader.WriteBandwidth(),
					ReadBandwidth:  offloader.ReadBandwidth(),
					Capacity:       cfg.DRAMCapacity,
					Strict:         true,
				}})
			default:
				budget = p.plannedBudget(cfg.SSDBandwidthShare, offloader.ReadBandwidth(), offloader.WriteBandwidth())
			}
		}
		res.PlannedBudget = budget

		cache = core.NewTensorCache(core.Config{
			Runtime:         rt,
			Offloader:       offloader,
			Budget:          budget,
			HostCost:        cfg.HostCost,
			PrefetchAhead:   cfg.PrefetchAhead,
			KeepLastModules: max(cfg.KeepLastModules, 0), // -1 (canonical ablation) → keep nothing
			Verify:          cfg.Verify,
			NoForwarding:    cfg.NoForwarding,
			NoDedup:         cfg.NoDedup,
		})
		cache.RegisterWeights(graph.Weights())
		for _, w := range graph.Weights() {
			// The executor registers the transposed views; pre-register
			// them the way the paper's setup script bookkeeps weights.
			cache.RegisterWeights([]*tensor.Tensor{w.Transpose()})
		}
		hooks = cache
	default:
		return nil, fmt.Errorf("exp: unknown strategy %q", cfg.Strategy)
	}

	exec, err := autograd.NewExecutor(rt, graph, hooks, autograd.ExecConfig{
		MicroBatches: cfg.MicroBatches,
		UpdateCost: func(w *tensor.Tensor) time.Duration {
			// The FP16 training update pipeline touches each parameter
			// and gradient several times per step: gradient unscale +
			// clip (2 passes over grads), the loss-scale overflow check
			// (1 pass), and the SGD update itself (read w, read g,
			// write w) — about 8 parameter-sized passes total.
			return rt.Cost.MemoryBound(8 * w.Bytes())
		},
		AccumCost: func(w *tensor.Tensor) time.Duration {
			return rt.Cost.MemoryBound(3 * w.Bytes())
		},
		Materialize: cfg.Materialize,
	})
	if err != nil {
		return nil, err
	}

	runStep := func() (StepMetrics, error) {
		sr := exec.Run()
		m := StepMetrics{
			Stats:      sr.Stats,
			Start:      sr.Start,
			End:        sr.End,
			HostTime:   sr.HostTime,
			UpdateTime: sr.UpdateTime,
		}
		if cache != nil {
			if err := cache.Err(); err != nil {
				return m, fmt.Errorf("exp: offload failed in step %d: %w", len(res.PerStep)+1, err)
			}
			m.IO = cache.LastStep()
			m.Stats.OffloadedBytes = m.IO.Offloaded
			m.Stats.ReloadedBytes = m.IO.Reloaded
			m.Stats.ForwardedBytes = m.IO.Forwarded
		}
		res.PerStep = append(res.PerStep, m)
		return m, nil
	}

	for i := 0; i < cfg.Warmup; i++ {
		if _, err := runStep(); err != nil {
			return nil, err
		}
	}
	if cfg.AdaptiveSteps {
		// Adaptive steady-state detection: measure until two consecutive
		// steps agree exactly (the simulator is deterministic, so a truly
		// steady state repeats to the nanosecond), bounded by cfg.Steps.
		// The converged measurement is identical to the fixed-step run's.
		var prev StepMetrics
		for i := 0; i < cfg.Steps; i++ {
			m, err := runStep()
			if err != nil {
				return nil, err
			}
			if i > 0 && stepsConverged(prev, m) {
				break
			}
			prev = m
		}
	} else {
		for i := 0; i < cfg.Steps; i++ {
			if _, err := runStep(); err != nil {
				return nil, err
			}
		}
	}

	rep := rt.Alloc.Finalize(true)
	res.Mem = rep
	for i := range res.PerStep {
		s := &res.PerStep[i]
		s.ActPeak = rep.ActTimeline.PeakBetween(s.Start, s.End)
		s.TotalPeak = rep.Timeline.PeakBetween(s.Start, s.End)
		s.Stats.ActivationPeak = s.ActPeak
		s.Stats.TotalPeak = s.TotalPeak
	}
	res.Measured = res.PerStep[len(res.PerStep)-1]
	if offloader != nil {
		res.SSDPeak = offloader.PeakResident()
		for _, t := range offloader.Tiers() {
			res.Tiers = append(res.Tiers, TierUsage{
				Name:     t.Name(),
				Kind:     t.Kind(),
				Written:  t.BytesWritten(),
				Read:     t.BytesRead(),
				Peak:     t.PeakResident(),
				Capacity: t.Capacity(),
			})
		}
	}
	return res, nil
}

// hierarchyPlans maps the live tier stack to the planner's tier mix: the
// ssd-only placement plans against the NVMe rung alone, split placement
// caps the DRAM rung's share at the split ratio. A zero split ratio
// routes every byte to NVMe at runtime, so the DRAM rung must drop out
// of the plan too (TierPlan.Fraction 0 means "no share cap", not
// "nothing").
func hierarchyPlans(cfg RunConfig, tiers []core.Tier) []core.TierPlan {
	dramless := cfg.Placement == PlacementSSDOnly ||
		(cfg.Placement == PlacementSplit && cfg.SplitRatio == 0)
	plans := make([]core.TierPlan, 0, len(tiers))
	for _, t := range tiers {
		if dramless && t.Kind() != core.TierNVMe {
			continue
		}
		tp := core.TierPlan{
			WriteBandwidth: t.WriteBandwidth(),
			ReadBandwidth:  t.ReadBandwidth(),
			Capacity:       t.Capacity(),
		}
		if cfg.Placement == PlacementSplit && t.Kind() == core.TierDRAM {
			tp.Fraction = cfg.SplitRatio
		}
		plans = append(plans, tp)
	}
	return plans
}

// stepsConverged reports whether two consecutive measured steps are
// behaviourally identical: the full step stats (duration, FLOPs, stall,
// I/O volumes), host time and optimizer time. The memory-peak fields of
// Stats are still zero at this point (they are filled from the timeline
// after the run), so whole-struct equality is safe and strictly stronger
// than any field subset.
func stepsConverged(a, b StepMetrics) bool {
	return a.Stats == b.Stats &&
		a.HostTime == b.HostTime &&
		a.UpdateTime == b.UpdateTime &&
		a.IO == b.IO
}
