package exp

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/core"
	"ssdtrain/internal/faults"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/lru"
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// Plan is a compiled measurement: the pure, config-shape-dependent work
// of Run — the model graph template, the per-block activation and
// backward-time vectors, and the Fig 3 offload budget — memoized so a
// sweep that varies only the cheap knobs (Budget, Steps, Warmup,
// SSDBandwidthShare, AdaptiveSteps, SteadyState, Placement, DRAMCapacity,
// SplitRatio) pays graph construction and analysis once. A Plan is immutable after
// Compile and safe for concurrent Execute calls: each execution runs on
// its own arena (a Session), either single-use (Plan.Execute) or
// recycled (Session.Execute via a SessionPool).
type Plan struct {
	// shape is the plan's identity: the defaulted config with the cheap
	// knobs zeroed.
	shape RunConfig

	tmpl        *autograd.Graph
	saved       []units.Bytes
	bwd         []time.Duration
	fwdTime     time.Duration
	bwdTime     time.Duration
	weightBytes units.Bytes
	eligible    units.Bytes
	// lastModule is the final block's saved-activation volume — the bytes
	// the planner always keeps resident because backward consumes them
	// immediately (Fig 2 ④). The seed threaded this value through Run
	// without using it; the Plan owns it now.
	lastModule units.Bytes
	// devNames are the per-GPU array's member device names ("nvme0"...),
	// rendered once at compile so arena construction never formats
	// strings on the sweep path.
	devNames []string

	// budgetByKey memoizes the Fig 3 budget per (bandwidth share,
	// placement, DRAM capacity, split ratio) combination; budgetFlight
	// coalesces concurrent planner runs for one uncached key.
	mu             sync.Mutex
	budgetByKey    map[budgetKey]units.Bytes
	budgetFlight   lru.Singleflight[budgetKey, units.Bytes]
	budgetComputes atomic.Int64
}

// budgetKey identifies one planned budget within a plan: every cheap
// knob that changes the hierarchy's bandwidth/capacity mix.
type budgetKey struct {
	share     float64
	placement Placement
	dramCap   units.Bytes
	ratio     float64
	// optim is the OptimOffload optimizer kind: it sets the state volume
	// claimed out of the DRAM grant and the per-step shuttle reserves the
	// planner derates activation bandwidth by.
	optim string
}

// shapeKey reduces a defaulted config to plan identity by zeroing the
// knobs a Plan absorbs at Execute time.
func shapeKey(cfg RunConfig) RunConfig {
	cfg.Budget = 0
	cfg.Steps = 0
	cfg.Warmup = 0
	cfg.SSDBandwidthShare = 0
	cfg.AdaptiveSteps = false
	// The steady-state fast path reproduces full simulation byte for
	// byte, so fast and forced-full configs share one plan (and arena).
	cfg.SteadyState = ""
	cfg.Placement = ""
	cfg.DRAMCapacity = 0
	cfg.SplitRatio = 0
	// The optimizer knobs change state sizes and the step schedule, never
	// the graph template — the arena's optimizer rungs rebind per Execute.
	cfg.OptimKind = ""
	cfg.Schedule = ""
	// Tracing observes a run without changing it, so traced and untraced
	// configs share one plan (and one pooled arena).
	cfg.Trace = false
	// Fault injection changes when transfers happen, never the graph or
	// the budget plan (budgets are planned against healthy bandwidths — a
	// fault is a surprise, not something the planner anticipates), so a
	// faulted config shares the fault-free plan.
	cfg.Faults = faults.Spec{}
	return cfg
}

// Normalize validates cfg and returns it with the paper defaults filled
// in — the canonical form under which value-identical measurements
// coincide. Sweep's dedup map, the fleet profiler's cache and the serve
// result cache all key on this form, so a spelled-out config and its
// defaulted twin share one simulation.
func Normalize(cfg RunConfig) (RunConfig, error) {
	cfg = cfg.withDefaults()
	switch cfg.Strategy {
	case NoOffload, Recompute, SSDTrain, CPUOffload, HybridOffload, OptimOffload:
	default:
		return RunConfig{}, fmt.Errorf("exp: unknown strategy %q", cfg.Strategy)
	}
	if err := validateKnobs(cfg); err != nil {
		return RunConfig{}, err
	}
	return cfg, nil
}

// ShapeKey validates cfg and reduces it to its plan identity: the
// normalized config with the cheap knobs zeroed. Two configs with equal
// shape keys compile to the same *Plan and can share a pooled execution
// arena — the grouping key behind the serve layer's request coalescing
// windows.
func ShapeKey(cfg RunConfig) (RunConfig, error) {
	n, err := Normalize(cfg)
	if err != nil {
		return RunConfig{}, err
	}
	return shapeKey(n), nil
}

// planCache memoizes compiled plans across Run calls, so naive per-point
// sweeps (the figure generators, fleet profiling) share plans without
// managing them explicitly.
var planCache = lru.New[RunConfig, *Plan](256)

// planFlight coalesces concurrent compilations of one shape.
var planFlight lru.Singleflight[RunConfig, *Plan]

// Compile builds the run plan for a configuration. The returned plan can
// Execute any config that differs from cfg only in the cheap knobs.
// Plans are cached: compiling the same shape twice returns the same plan.
func Compile(cfg RunConfig) (*Plan, error) {
	cfg = cfg.withDefaults()
	if err := validateKnobs(cfg); err != nil {
		return nil, err
	}
	key := shapeKey(cfg)
	if p, ok := planCache.Get(key); ok {
		return p, nil
	}
	p, err, _ := planFlight.Do(key, func() (*Plan, error) {
		if p, ok := planCache.GetQuiet(key); ok {
			return p, nil
		}
		p, err := compile(key)
		if err == nil {
			planCache.Put(key, p)
		}
		return p, err
	})
	return p, err
}

// PlanCacheStats reports the shared plan cache's hit/miss counters.
func PlanCacheStats() (hits, misses int64) { return planCache.Stats() }

// PlanCacheSnapshot reports the shared plan cache's full counter set —
// hit/miss plus evictions and resident size, so an observer (the serve
// /metrics endpoint) can tell a big-enough cache from one thrashing on
// capacity misses.
func PlanCacheSnapshot() (hits, misses, evictions int64, length int) {
	hits, misses = planCache.Stats()
	return hits, misses, planCache.Evictions(), planCache.Len()
}

func validateShare(s float64) error {
	if math.IsNaN(s) || s < 0 || s > 1 {
		return fmt.Errorf("exp: SSD bandwidth share %v outside [0, 1]", s)
	}
	return nil
}

// validateKnobs checks the cheap knobs a plan absorbs at Execute time —
// they are zeroed out of the plan's shape, so both Compile and Execute
// validate them.
func validateKnobs(cfg RunConfig) error {
	if err := validateShare(cfg.SSDBandwidthShare); err != nil {
		return err
	}
	// withDefaults only replaces zeros, so negatives would otherwise leak
	// through: negative Steps runs a warmup-only measurement (and with
	// Warmup also negative, panics on an empty PerStep), and a negative
	// Budget bypasses the planner with a nonsense bound. Reject them —
	// the one deliberate negative is KeepLastModules (-1 = keep-nothing
	// ablation), and PrefetchAhead < 0 (prefetch disabled).
	if cfg.Steps < 0 {
		return fmt.Errorf("exp: negative step count %d", cfg.Steps)
	}
	if cfg.Warmup < 0 {
		return fmt.Errorf("exp: negative warmup count %d", cfg.Warmup)
	}
	if cfg.MicroBatches < 0 {
		return fmt.Errorf("exp: negative micro-batch count %d", cfg.MicroBatches)
	}
	if cfg.Budget < 0 {
		return fmt.Errorf("exp: negative offload budget %v", cfg.Budget)
	}
	if math.IsNaN(cfg.SplitRatio) || cfg.SplitRatio < 0 || cfg.SplitRatio > 1 {
		return fmt.Errorf("exp: split ratio %v outside [0, 1]", cfg.SplitRatio)
	}
	if cfg.DRAMCapacity < 0 {
		return fmt.Errorf("exp: negative DRAM capacity %v", cfg.DRAMCapacity)
	}
	switch cfg.SteadyState {
	case "", "on", "off":
	default:
		// Reject rather than ignore: a typo like "On" silently forcing
		// (or skipping) full simulation would be invisible in results.
		return fmt.Errorf("exp: unknown steady-state mode %q", cfg.SteadyState)
	}
	switch cfg.Strategy {
	case HybridOffload, OptimOffload:
		switch cfg.Placement {
		case PlacementSSDOnly, PlacementDRAMFirst, PlacementSplit:
		default:
			return fmt.Errorf("exp: unknown placement %q", cfg.Placement)
		}
	case CPUOffload:
		if cfg.Placement != "" {
			return fmt.Errorf("exp: placement %q only applies to the %s strategy", cfg.Placement, HybridOffload)
		}
	default:
		if cfg.Placement != "" {
			return fmt.Errorf("exp: placement %q only applies to the %s strategy", cfg.Placement, HybridOffload)
		}
		if cfg.DRAMCapacity != 0 {
			return fmt.Errorf("exp: DRAM capacity only applies to the %s and %s strategies", HybridOffload, CPUOffload)
		}
	}
	if cfg.SplitRatio != 0 &&
		((cfg.Strategy != HybridOffload && cfg.Strategy != OptimOffload) || cfg.Placement != PlacementSplit) {
		// A silently ignored ratio would still defeat Sweep's dedup
		// (configs differing only in the dead knob measure twice).
		return fmt.Errorf("exp: split ratio only applies to the %s and %s strategies with %s placement", HybridOffload, OptimOffload, PlacementSplit)
	}
	if cfg.Strategy == OptimOffload {
		switch core.OptimKind(cfg.OptimKind) {
		case core.OptimAdam, core.OptimSGD:
		default:
			return fmt.Errorf("exp: unknown optimizer kind %q", cfg.OptimKind)
		}
		switch cfg.Schedule {
		case ScheduleSync, ScheduleOverlap:
		default:
			return fmt.Errorf("exp: unknown optimizer schedule %q", cfg.Schedule)
		}
	} else {
		// Same dedup argument as SplitRatio: knobs the run would never
		// consult must be rejected, not ignored.
		if cfg.OptimKind != "" {
			return fmt.Errorf("exp: optimizer kind only applies to the %s strategy", OptimOffload)
		}
		if cfg.Schedule != "" {
			return fmt.Errorf("exp: optimizer schedule only applies to the %s strategy", OptimOffload)
		}
	}
	if !cfg.Faults.Empty() {
		if cfg.Strategy != SSDTrain && cfg.Strategy != HybridOffload && cfg.Strategy != OptimOffload {
			return fmt.Errorf("exp: fault injection only applies to the %s, %s and %s strategies", SSDTrain, HybridOffload, OptimOffload)
		}
		devices := cfg.SSD.Count
		if devices == 0 {
			devices = PaperArray().Count
		}
		if err := cfg.Faults.Validate(devices); err != nil {
			return err
		}
	}
	return nil
}

// compile does the actual shape-dependent work.
func compile(key RunConfig) (*Plan, error) {
	mcfg := key.Model
	mcfg.Checkpoint = key.Strategy == Recompute

	switch key.Strategy {
	case NoOffload, Recompute, SSDTrain, CPUOffload, HybridOffload, OptimOffload:
	default:
		return nil, fmt.Errorf("exp: unknown strategy %q", key.Strategy)
	}

	cost := gpu.DefaultCostModel(key.GPU)
	tmpl, err := models.BuildCached(mcfg, cost)
	if err != nil {
		return nil, err
	}

	p := &Plan{
		shape:       key,
		tmpl:        tmpl,
		saved:       blockSavedBytes(tmpl),
		bwd:         blockBwdTimes(tmpl),
		weightBytes: tmpl.WeightBytes(),
		budgetByKey: make(map[budgetKey]units.Bytes),
		devNames:    make([]string, key.SSD.Count),
	}
	for i := range p.devNames {
		p.devNames[i] = fmt.Sprintf("nvme%d", i)
	}
	p.fwdTime, p.bwdTime = graphTimes(tmpl)
	p.eligible, p.lastModule = eligibleBytes(tmpl)
	return p, nil
}

// devName returns the precomputed member-device name, formatting on the
// spot for plans assembled outside compile (tests build bare literals).
func (p *Plan) devName(i int) string {
	if i < len(p.devNames) {
		return p.devNames[i]
	}
	return fmt.Sprintf("nvme%d", i)
}

// Shape returns the plan's identity config (defaulted, cheap knobs
// zeroed).
func (p *Plan) Shape() RunConfig { return p.shape }

// EligibleBytes returns the per-step activation volume the pack hook
// would see (excluding weights).
func (p *Plan) EligibleBytes() units.Bytes { return p.eligible }

// LastModuleBytes returns the final block's saved-activation volume, the
// bytes the budget planner always keeps resident.
func (p *Plan) LastModuleBytes() units.Bytes { return p.lastModule }

// WeightBytes returns the per-GPU parameter volume.
func (p *Plan) WeightBytes() units.Bytes { return p.weightBytes }

// plannedBudget returns the Fig 3 budget for the given single-target
// bandwidths, memoized per bandwidth share.
func (p *Plan) plannedBudget(share float64, readBW, writeBW units.Bandwidth) units.Bytes {
	return p.memoBudget(budgetKey{share: share}, func() units.Bytes {
		return core.PlanModuleBudget(p.modulePlan(readBW, writeBW))
	})
}

// plannedHierarchyBudget returns the Fig 3 budget for a tier mix,
// memoized per (share, placement, DRAM capacity, split ratio).
func (p *Plan) plannedHierarchyBudget(key budgetKey, tiers []core.TierPlan) units.Bytes {
	return p.memoBudget(key, func() units.Bytes {
		return core.PlanHierarchyBudget(p.modulePlan(0, 0), tiers)
	})
}

// modulePlan assembles the module-granularity planner input.
func (p *Plan) modulePlan(readBW, writeBW units.Bandwidth) core.ModulePlan {
	return core.ModulePlan{
		SavedBytes:     p.saved,
		BwdTime:        p.bwd,
		ReadBandwidth:  readBW,
		WriteBandwidth: writeBW,
		ForwardTime:    p.fwdTime,
		BackwardTime:   p.bwdTime,
	}
}

// memoBudget caches one planned budget per key. Concurrent computes of
// one uncached key are coalesced through a singleflight: a fleet Prime
// fans the same (share, grant) keys across its workers, and without the
// flight every worker would run the full Fig 3 planner just to overwrite
// the same memo entry (last write wins, work wasted).
func (p *Plan) memoBudget(key budgetKey, compute func() units.Bytes) units.Bytes {
	p.mu.Lock()
	if b, ok := p.budgetByKey[key]; ok {
		p.mu.Unlock()
		return b
	}
	p.mu.Unlock()
	b, _, _ := p.budgetFlight.Do(key, func() (units.Bytes, error) {
		// Double-check under the flight: a racing caller may have filled
		// the memo between our miss and the flight acquisition.
		p.mu.Lock()
		if b, ok := p.budgetByKey[key]; ok {
			p.mu.Unlock()
			return b, nil
		}
		p.mu.Unlock()
		p.budgetComputes.Add(1)
		b := compute()
		p.mu.Lock()
		p.budgetByKey[key] = b
		p.mu.Unlock()
		return b, nil
	})
	return b
}

// BudgetComputes reports how many Fig 3 planner executions the plan has
// performed. With the memo and the singleflight it equals the number of
// distinct budget keys requested so far, independent of concurrency.
func (p *Plan) BudgetComputes() int64 { return p.budgetComputes.Load() }

// Execute runs one measurement under the plan on a fresh, single-use
// arena. cfg must match the plan's shape in everything except the cheap
// knobs (Budget, Steps, Warmup, SSDBandwidthShare, AdaptiveSteps,
// SteadyState, Placement, DRAMCapacity, SplitRatio); Execute rejects mismatched
// configs rather than silently measuring the wrong model. Callers that
// Execute one shape repeatedly should hold a Session (or route through a
// SessionPool) instead: a recycled arena produces byte-identical results
// at a fraction of the allocations.
func (p *Plan) Execute(cfg RunConfig) (*RunResult, error) {
	// Fail fast: reject bad knobs and mismatched shapes before paying
	// arena construction. Session.Execute re-validates (it is also a
	// public entry point); validation is idempotent and cheap.
	d := cfg.withDefaults()
	if err := validateKnobs(d); err != nil {
		return nil, err
	}
	if key := shapeKey(d); key != p.shape {
		return nil, fmt.Errorf("exp: config shape %+v does not match compiled plan %+v", key, p.shape)
	}
	s, err := NewSession(p)
	if err != nil {
		return nil, err
	}
	return s.Execute(cfg)
}
