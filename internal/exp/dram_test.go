package exp

import (
	"testing"

	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// dramSweepBase is a configuration whose step time is a pure function of
// where reloads come from, so capacity interpolates monotonically: the
// budget is pinned and forwarding plus prefetching are disabled (every
// reload is a synchronous demand load on the critical path, making total
// stall linear in the per-tier reload split), and the array is derated
// to a quarter share so the NVMe rung is decisively the slow path. With
// prefetching on, the two PCIe paths overlap and a mid-capacity hybrid
// can beat BOTH endpoints — a V-shaped curve that is real concurrency,
// not an error; TestDRAMSweepOverlapBeatsEndpoints pins it.
func dramSweepBase() RunConfig {
	return RunConfig{
		Model:             smallConfig(models.BERT),
		Budget:            units.Bytes(1) << 62,
		NoForwarding:      true,
		PrefetchAhead:     -1,
		KeepLastModules:   -1,
		SSDBandwidthShare: 0.25,
	}
}

// TestDRAMSweepInterpolatesMonotonically is the acceptance criterion:
// dram-first step time starts exactly at the ssdtrain endpoint, ends
// exactly at the cpu-offload endpoint, and decreases monotonically as
// the pinned pool grows.
func TestDRAMSweepInterpolatesMonotonically(t *testing.T) {
	r, err := DRAMSweep(dramSweepBase(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.StepTime != r.SSDOnlyStep {
		t.Errorf("zero-capacity step %v != ssd-only endpoint %v", first.StepTime, r.SSDOnlyStep)
	}
	if last.StepTime != r.CPUStep {
		t.Errorf("full-capacity step %v != cpu-offload endpoint %v", last.StepTime, r.CPUStep)
	}
	if r.SSDOnlyStep <= r.CPUStep {
		t.Fatalf("sweep config has no dynamic range: ssd-only %v <= cpu-offload %v", r.SSDOnlyStep, r.CPUStep)
	}
	for i := 1; i < len(r.Rows); i++ {
		prev, cur := r.Rows[i-1], r.Rows[i]
		if cur.StepTime > prev.StepTime {
			t.Errorf("step time not monotone: %v at %.0f%% > %v at %.0f%%",
				cur.StepTime, cur.Frac*100, prev.StepTime, prev.Frac*100)
		}
	}
	// Traffic shifts rungs as capacity grows: all-NVMe at 0, all-DRAM at
	// full capacity.
	if first.DRAMWritten != 0 || first.NVMeWritten == 0 {
		t.Errorf("zero-capacity traffic dram=%v nvme=%v", first.DRAMWritten, first.NVMeWritten)
	}
	if last.NVMeWritten != 0 || last.DRAMWritten == 0 {
		t.Errorf("full-capacity traffic dram=%v nvme=%v", last.DRAMWritten, last.NVMeWritten)
	}
	if table := DRAMSweepTable(r).String(); len(table) == 0 {
		t.Error("empty sweep table")
	}
}

// TestDRAMSweepOverlapBeatsEndpoints pins the concurrency dividend: with
// prefetching on, a mid-capacity hybrid drains reloads over BOTH PCIe
// paths at once and beats both single-target endpoints — the payoff the
// split placement exists for.
func TestDRAMSweepOverlapBeatsEndpoints(t *testing.T) {
	base := dramSweepBase()
	base.PrefetchAhead = 0 // default: prefetch everything
	r, err := DRAMSweep(base, []float64{0.75})
	if err != nil {
		t.Fatal(err)
	}
	mid := r.Rows[0].StepTime
	if mid >= r.SSDOnlyStep || mid >= r.CPUStep {
		t.Errorf("overlapped hybrid %v does not beat endpoints (ssd %v, cpu %v)", mid, r.SSDOnlyStep, r.CPUStep)
	}
}
