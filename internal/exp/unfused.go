package exp

import (
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// UnfusedRow quantifies the §IV-C discussion at the end of the ROK
// section: before FlashAttention, the unfused softmax chain materializes
// s²-sized activations (the 5as/h term) that Megatron's selective
// checkpointing existed to recompute; with the fused kernel those
// tensors never exist, so selective checkpointing has "negligible impact
// on performance and peak memory usage for activations".
type UnfusedRow struct {
	FlashAttention bool
	Strategy       Strategy
	ActPeak        units.Bytes
	Throughput     units.FLOPSRate
	Offloaded      units.Bytes
}

// UnfusedStudy measures the four corners: {unfused, fused} × {keep,
// SSDTrain} for a 3-layer BERT. The fused/unfused keep gap is the memory
// FlashAttention eliminates; SSDTrain then removes most of what remains
// in both regimes.
func UnfusedStudy(hidden, batch int) ([]UnfusedRow, error) {
	var rows []UnfusedRow
	for _, fa := range []bool{false, true} {
		for _, strat := range []Strategy{NoOffload, SSDTrain} {
			cfg := models.PaperConfig(models.BERT, hidden, 3, batch)
			cfg.FlashAttention = fa
			res, err := Run(RunConfig{Model: cfg, Strategy: strat})
			if err != nil {
				return nil, err
			}
			rows = append(rows, UnfusedRow{
				FlashAttention: fa,
				Strategy:       strat,
				ActPeak:        res.Measured.ActPeak,
				Throughput:     res.Throughput(),
				Offloaded:      res.Measured.IO.Offloaded,
			})
		}
	}
	return rows, nil
}
