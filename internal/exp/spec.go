package exp

import (
	"fmt"
	"time"

	"ssdtrain/internal/faults"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// Spec is the grouped configuration form: the same knob surface as the
// flat RunConfig, organized by concern. RunConfig grew one field at a
// time across the strategy/ablation/fault/steady-state work and is kept
// as a deprecated alias for existing callers; new code (and the serve
// wire schema v2) should speak Spec. Conversion is lossless in both
// directions — SpecFor(cfg).RunConfig() returns cfg exactly, and
// s.RunConfig() errors only on internally inconsistent groups (an
// optimizer-offload flag that contradicts the activation strategy).
type Spec struct {
	// Model is the transformer geometry under test.
	Model models.Config `json:"model"`
	// Machine is the simulated testbed (defaults: A100 PCIe + the
	// paper's 4× P5800X array).
	Machine MachineSpec `json:"machine,omitzero"`
	// Offload configures the activation-offload strategy and its tier
	// shape, cache tuning and ablation knobs.
	Offload OffloadSpec `json:"offload,omitzero"`
	// Optimizer configures the offloaded-optimizer tier (OptimOffload).
	Optimizer OptimizerSpec `json:"optimizer,omitzero"`
	// Run shapes the measurement itself: step counts, accumulation, and
	// the steady-state fast path.
	Run RunSpec `json:"run,omitzero"`
	// Inject holds observability and perturbation: fault injection, span
	// tracing, and co-tenant bandwidth contention.
	Inject InjectSpec `json:"inject,omitzero"`
}

// MachineSpec groups the simulated hardware.
type MachineSpec struct {
	GPU gpu.Spec `json:"gpu,omitzero"`
	SSD SSDSetup `json:"ssd,omitzero"`
}

// OffloadSpec groups the activation-offload knobs: which strategy, how
// the tier hierarchy is shaped, and the cache/ablation switches.
type OffloadSpec struct {
	Strategy     Strategy    `json:"strategy,omitempty"`
	Placement    Placement   `json:"placement,omitempty"`
	DRAMCapacity units.Bytes `json:"dram_capacity,omitempty"`
	SplitRatio   float64     `json:"split_ratio,omitempty"`
	// Budget overrides the planned offload budget (0 = plan via Fig 3).
	Budget units.Bytes `json:"budget,omitempty"`
	// Cache tuning and ablations, matching the flat fields one-for-one.
	PrefetchAhead   int           `json:"prefetch_ahead,omitempty"`
	KeepLastModules int           `json:"keep_last_modules,omitempty"`
	HostCost        time.Duration `json:"host_cost,omitempty"`
	DisableGDS      bool          `json:"disable_gds,omitempty"`
	NoForwarding    bool          `json:"no_forwarding,omitempty"`
	NoDedup         bool          `json:"no_dedup,omitempty"`
	Materialize     bool          `json:"materialize,omitempty"`
	Verify          bool          `json:"verify,omitempty"`
}

// OptimizerSpec groups the offloaded-optimizer knobs. Offload is the
// grouped spelling of Strategy == OptimOffload: setting it routes the
// run to the optimizer-offload strategy family; Kind and Schedule then
// select the state layout and the step schedule.
type OptimizerSpec struct {
	Kind     string `json:"kind,omitempty"`
	Offload  bool   `json:"offload,omitempty"`
	Schedule string `json:"schedule,omitempty"`
}

// RunSpec groups the measurement-shape knobs.
type RunSpec struct {
	Steps         int    `json:"steps,omitempty"`
	Warmup        int    `json:"warmup,omitempty"`
	MicroBatches  int    `json:"micro_batches,omitempty"`
	SteadyState   string `json:"steady_state,omitempty"`
	AdaptiveSteps bool   `json:"adaptive_steps,omitempty"`
}

// InjectSpec groups observability and perturbation.
type InjectSpec struct {
	Faults            faults.Spec `json:"faults,omitzero"`
	Trace             bool        `json:"trace,omitempty"`
	SSDBandwidthShare float64     `json:"ssd_bandwidth_share,omitempty"`
}

// SpecFor regroups a flat config into the Spec form, losslessly:
// SpecFor(cfg).RunConfig() == (cfg, nil) for every cfg.
func SpecFor(cfg RunConfig) Spec {
	return Spec{
		Model: cfg.Model,
		Machine: MachineSpec{
			GPU: cfg.GPU,
			SSD: cfg.SSD,
		},
		Offload: OffloadSpec{
			Strategy:        cfg.Strategy,
			Placement:       cfg.Placement,
			DRAMCapacity:    cfg.DRAMCapacity,
			SplitRatio:      cfg.SplitRatio,
			Budget:          cfg.Budget,
			PrefetchAhead:   cfg.PrefetchAhead,
			KeepLastModules: cfg.KeepLastModules,
			HostCost:        cfg.HostCost,
			DisableGDS:      cfg.DisableGDS,
			NoForwarding:    cfg.NoForwarding,
			NoDedup:         cfg.NoDedup,
			Materialize:     cfg.Materialize,
			Verify:          cfg.Verify,
		},
		Optimizer: OptimizerSpec{
			Kind:     cfg.OptimKind,
			Offload:  cfg.Strategy == OptimOffload,
			Schedule: cfg.Schedule,
		},
		Run: RunSpec{
			Steps:         cfg.Steps,
			Warmup:        cfg.Warmup,
			MicroBatches:  cfg.MicroBatches,
			SteadyState:   cfg.SteadyState,
			AdaptiveSteps: cfg.AdaptiveSteps,
		},
		Inject: InjectSpec{
			Faults:            cfg.Faults,
			Trace:             cfg.Trace,
			SSDBandwidthShare: cfg.SSDBandwidthShare,
		},
	}
}

// RunConfig flattens the Spec. The only way a Spec can fail to flatten
// is an inconsistent optimizer group: Optimizer.Offload selects the
// OptimOffload strategy, so Offload.Strategy must be unset or agree;
// conversely a Spec naming the OptimOffload strategy must not clear
// Optimizer.Offload. (Optimizer.Kind/Schedule against a non-optimizer
// strategy flatten fine and are rejected later by Normalize, exactly as
// the flat form is.)
func (s Spec) RunConfig() (RunConfig, error) {
	strategy := s.Offload.Strategy
	if s.Optimizer.Offload {
		if strategy != "" && strategy != OptimOffload {
			return RunConfig{}, fmt.Errorf("exp: spec optimizer.offload conflicts with offload.strategy %q", strategy)
		}
		strategy = OptimOffload
	} else if strategy == OptimOffload {
		return RunConfig{}, fmt.Errorf("exp: spec offload.strategy %q requires optimizer.offload", strategy)
	}
	return RunConfig{
		Model:             s.Model,
		Strategy:          strategy,
		GPU:               s.Machine.GPU,
		SSD:               s.Machine.SSD,
		Steps:             s.Run.Steps,
		Warmup:            s.Run.Warmup,
		MicroBatches:      s.Run.MicroBatches,
		Budget:            s.Offload.Budget,
		PrefetchAhead:     s.Offload.PrefetchAhead,
		KeepLastModules:   s.Offload.KeepLastModules,
		HostCost:          s.Offload.HostCost,
		DisableGDS:        s.Offload.DisableGDS,
		NoForwarding:      s.Offload.NoForwarding,
		NoDedup:           s.Offload.NoDedup,
		Materialize:       s.Offload.Materialize,
		Verify:            s.Offload.Verify,
		Placement:         s.Offload.Placement,
		DRAMCapacity:      s.Offload.DRAMCapacity,
		SplitRatio:        s.Offload.SplitRatio,
		OptimKind:         s.Optimizer.Kind,
		Schedule:          s.Optimizer.Schedule,
		SSDBandwidthShare: s.Inject.SSDBandwidthShare,
		AdaptiveSteps:     s.Run.AdaptiveSteps,
		SteadyState:       s.Run.SteadyState,
		Trace:             s.Inject.Trace,
		Faults:            s.Inject.Faults,
	}, nil
}

// Normalize validates and canonicalizes the Spec, delegating to the flat
// Normalize so both forms share one set of rules and defaults.
func (s Spec) Normalize() (Spec, error) {
	cfg, err := s.RunConfig()
	if err != nil {
		return Spec{}, err
	}
	norm, err := Normalize(cfg)
	if err != nil {
		return Spec{}, err
	}
	return SpecFor(norm), nil
}

// ShapeHash is the sharded-cluster routing key of the Spec — see the
// flat ShapeHash.
func (s Spec) ShapeHash() (uint64, error) {
	cfg, err := s.RunConfig()
	if err != nil {
		return 0, err
	}
	return ShapeHash(cfg)
}

// ConfigHash is the value identity of the Spec — see the flat
// ConfigHash.
func (s Spec) ConfigHash() (uint64, error) {
	cfg, err := s.RunConfig()
	if err != nil {
		return 0, err
	}
	return ConfigHash(cfg)
}

// Measure runs the Spec: flatten, then the standard Run path.
func (s Spec) Measure() (*RunResult, error) {
	cfg, err := s.RunConfig()
	if err != nil {
		return nil, err
	}
	return Run(cfg)
}

// SweepSpecs runs a batch of Specs through the deduplicated Sweep.
func SweepSpecs(workers int, specs []Spec) ([]*RunResult, error) {
	cfgs := make([]RunConfig, len(specs))
	for i, s := range specs {
		cfg, err := s.RunConfig()
		if err != nil {
			return nil, fmt.Errorf("exp: spec %d: %w", i, err)
		}
		cfgs[i] = cfg
	}
	return Sweep(workers, cfgs)
}
