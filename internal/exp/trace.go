package exp

import (
	"ssdtrain/internal/models"
	"ssdtrain/internal/spans"
)

// ReferenceTraceConfig is the reference traced measurement the golden
// Chrome-trace file pins: a small BERT shard under the paper's SSD
// offload strategy, one measured step. Small enough to diff by hand,
// big enough to exercise every track (compute, PCIe, NVMe devices, tier
// queues, allocator).
func ReferenceTraceConfig() RunConfig {
	return RunConfig{
		Model:    models.PaperConfig(models.BERT, 2048, 2, 4),
		Strategy: SSDTrain,
		Steps:    1,
		Warmup:   1,
		Trace:    true,
	}
}

// ReferenceChromeTrace runs the reference traced measurement and returns
// its Chrome trace-event JSON — the bytes goldengen pins and the golden
// test compares against.
func ReferenceChromeTrace() ([]byte, error) {
	res, err := Run(ReferenceTraceConfig())
	if err != nil {
		return nil, err
	}
	return res.Trace.ChromeJSON(), nil
}

// TraceOf is a convenience for observers (CLI, serve endpoint): run the
// config with tracing forced on and return both the result and its
// snapshot. The returned result is byte-identical (Trace field aside) to
// an untraced run of the same config.
func TraceOf(cfg RunConfig) (*RunResult, *spans.Trace, error) {
	cfg.Trace = true
	res, err := Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, res.Trace, nil
}
