package exp

import "testing"

func TestUnfusedStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	rows, err := UnfusedStudy(8192, 8)
	if err != nil {
		t.Fatal(err)
	}
	get := func(fa bool, s Strategy) UnfusedRow {
		for _, r := range rows {
			if r.FlashAttention == fa && r.Strategy == s {
				return r
			}
		}
		t.Fatalf("missing row fa=%v %s", fa, s)
		return UnfusedRow{}
	}
	// The unfused chain's s² activations inflate the keep peak well above
	// the fused kernel's.
	uKeep, fKeep := get(false, NoOffload), get(true, NoOffload)
	if float64(uKeep.ActPeak) < 1.2*float64(fKeep.ActPeak) {
		t.Errorf("unfused keep peak %v not well above fused %v", uKeep.ActPeak, fKeep.ActPeak)
	}
	// FlashAttention is also faster (compute, not just memory).
	if uKeep.Throughput >= fKeep.Throughput {
		t.Errorf("unfused throughput %v not below fused %v", uKeep.Throughput, fKeep.Throughput)
	}
	// SSDTrain helps in both regimes.
	for _, fa := range []bool{false, true} {
		keep, off := get(fa, NoOffload), get(fa, SSDTrain)
		if off.ActPeak >= keep.ActPeak {
			t.Errorf("fa=%v: offload peak %v not below keep %v", fa, off.ActPeak, keep.ActPeak)
		}
		if thr := float64(off.Throughput) / float64(keep.Throughput); thr < 0.99 {
			t.Errorf("fa=%v: offload throughput ratio %.3f", fa, thr)
		}
	}
}
