package exp

import (
	"testing"

	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// smallConfig is a fast geometry for harness tests.
func smallConfig(arch models.Arch) models.Config {
	return models.Config{
		Arch:           arch,
		Hidden:         2048,
		Layers:         3,
		HeadDim:        128,
		SeqLen:         512,
		Batch:          4,
		Vocab:          8192,
		FFNMult:        4,
		TP:             2,
		FlashAttention: true,
		DType:          0, // FP16
	}
}

func TestRunSmokeAllStrategies(t *testing.T) {
	for _, arch := range []models.Arch{models.GPT, models.BERT, models.T5} {
		for _, strat := range []Strategy{NoOffload, SSDTrain, Recompute, CPUOffload} {
			t.Run(string(arch)+"/"+string(strat), func(t *testing.T) {
				res, err := Run(RunConfig{Model: smallConfig(arch), Strategy: strat})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if res.StepTime() <= 0 {
					t.Fatalf("non-positive step time %v", res.StepTime())
				}
				if res.Measured.ActPeak <= 0 {
					t.Fatalf("non-positive activation peak")
				}
				if res.Measured.IO.Leaked != 0 {
					t.Fatalf("cache leaked %d records", res.Measured.IO.Leaked)
				}
				t.Logf("%s/%s: step=%v actPeak=%v stall=%v offloaded=%v forwarded=%v",
					arch, strat, res.StepTime(), res.Measured.ActPeak,
					res.Measured.Stats.ComputeStall, res.Measured.IO.Offloaded, res.Measured.IO.Forwarded)
			})
		}
	}
}

func TestSSDTrainReducesPeakKeepsTime(t *testing.T) {
	base, err := Run(RunConfig{Model: smallConfig(models.BERT), Strategy: NoOffload})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(RunConfig{Model: smallConfig(models.BERT), Strategy: SSDTrain})
	if err != nil {
		t.Fatal(err)
	}
	if off.Measured.ActPeak >= base.Measured.ActPeak {
		t.Errorf("SSDTrain activation peak %v not below baseline %v", off.Measured.ActPeak, base.Measured.ActPeak)
	}
	ratio := float64(off.StepTime()) / float64(base.StepTime())
	if ratio > 1.05 {
		t.Errorf("SSDTrain step time ratio %.3f exceeds 1.05 (%v vs %v)", ratio, off.StepTime(), base.StepTime())
	}
	t.Logf("peak: %v -> %v (%.0f%%), step: %v -> %v (ratio %.3f)",
		base.Measured.ActPeak, off.Measured.ActPeak,
		100*(1-float64(off.Measured.ActPeak)/float64(base.Measured.ActPeak)),
		base.StepTime(), off.StepTime(), ratio)
}

// TestWithDefaultsIdempotent pins the defaulting to be a fixed point:
// Sweep dedups on the defaulted config and Run defaults it again, so any
// non-idempotent mapping silently changes swept configs. The seed's
// KeepLastModules path did exactly that (-1 → 0 → 1), re-enabling the
// keep-last heuristic on ablation configs routed through Sweep.
func TestWithDefaultsIdempotent(t *testing.T) {
	cfgs := []RunConfig{
		{Model: smallConfig(models.BERT), Strategy: SSDTrain, KeepLastModules: -1, PrefetchAhead: -1},
		{Model: smallConfig(models.GPT), Strategy: HybridOffload, DRAMCapacity: 1 << 30},
		{Model: smallConfig(models.T5), Strategy: CPUOffload},
	}
	for _, cfg := range cfgs {
		once := cfg.withDefaults()
		if twice := once.withDefaults(); twice != once {
			t.Errorf("withDefaults not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
		}
	}
	// The behavioural consequence: a keep-nothing ablation measured via
	// Sweep matches the same config measured via Run.
	abl := RunConfig{Model: smallConfig(models.BERT), Strategy: SSDTrain, KeepLastModules: -1}
	direct, err := Run(abl)
	if err != nil {
		t.Fatal(err)
	}
	swept, err := Sweep(0, []RunConfig{abl})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Measured != swept[0].Measured {
		t.Errorf("swept ablation diverged from direct run:\n%+v\nvs\n%+v", swept[0].Measured, direct.Measured)
	}
}

func TestOffloadRoundTripVerified(t *testing.T) {
	cfg := smallConfig(models.GPT)
	cfg.Hidden = 1024
	cfg.SeqLen = 256
	cfg.Batch = 2
	cfg.Vocab = 4096
	res, err := Run(RunConfig{
		Model: cfg, Strategy: SSDTrain,
		Materialize: true, Verify: true,
		Steps: 2, Warmup: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured.IO.Reloaded == 0 {
		t.Fatalf("expected reloads with verification, got none (offloaded=%v)", res.Measured.IO.Offloaded)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(RunConfig{Model: smallConfig(models.T5), Strategy: SSDTrain})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunConfig{Model: smallConfig(models.T5), Strategy: SSDTrain})
	if err != nil {
		t.Fatal(err)
	}
	if a.StepTime() != b.StepTime() || a.Measured.ActPeak != b.Measured.ActPeak ||
		a.Measured.IO != b.Measured.IO {
		t.Fatalf("runs diverged: %+v vs %+v", a.Measured, b.Measured)
	}
}

func TestRecomputeLowestMemorySlowest(t *testing.T) {
	cfg := smallConfig(models.BERT)
	keep, _ := Run(RunConfig{Model: cfg, Strategy: NoOffload})
	rec, _ := Run(RunConfig{Model: cfg, Strategy: Recompute})
	off, _ := Run(RunConfig{Model: cfg, Strategy: SSDTrain})
	if rec.Measured.ActPeak >= keep.Measured.ActPeak {
		t.Errorf("recompute peak %v not below keep %v", rec.Measured.ActPeak, keep.Measured.ActPeak)
	}
	if rec.StepTime() <= keep.StepTime() {
		t.Errorf("recompute step %v not slower than keep %v", rec.StepTime(), keep.StepTime())
	}
	// The paper's headline: offloading achieves keep-level throughput with
	// recompute-level (or better) memory.
	if off.Throughput() < keep.Throughput()*0.97 {
		t.Errorf("ssdtrain throughput %v below 97%% of keep %v", off.Throughput(), keep.Throughput())
	}
	_ = units.Bytes(0)
}
