package exp

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"ssdtrain/internal/core"
	"ssdtrain/internal/faults"
	"ssdtrain/internal/units"
)

// steadyVariants returns one config per strategy × placement — the same
// coverage tracedVariants gives the flight recorder — tagged with whether
// the consecutive-step detector is expected to converge. The split
// placement halves each transfer's stripe count, so the RAID round-robin
// cursor rotates with a period longer than one step and no two
// consecutive steps fold to the same signature: the fast path must
// detect that (the cursor decides which members eat the remainder
// stripes, i.e. per-device wear and busy time) and fall back to full
// simulation rather than extrapolate a misaligned cycle.
func steadyVariants() []struct {
	cfg       RunConfig
	converges bool
} {
	var out []struct {
		cfg       RunConfig
		converges bool
	}
	for _, cfg := range tracedVariants() {
		out = append(out, struct {
			cfg       RunConfig
			converges bool
		}{cfg, cfg.Placement != PlacementSplit})
	}
	return out
}

// requireSteadyIdentical runs cfg twice — fast path on (default) and
// forced full simulation — and fails unless the two RunResults are
// byte-identical in everything but the knob echo and the fast-path
// metadata. It returns the fast run for callers that want to assert on
// the metadata itself.
func requireSteadyIdentical(t *testing.T, cfg RunConfig) *RunResult {
	t.Helper()
	fast, err := Run(cfg)
	if err != nil {
		t.Fatalf("fast run: %v", err)
	}
	slow := cfg
	slow.SteadyState = "off"
	full, err := Run(slow)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	if full.SteadyState.Fallback != steadyFallbackOff {
		t.Fatalf("forced-full run reported fallback %q, want %q", full.SteadyState.Fallback, steadyFallbackOff)
	}
	full.Config.SteadyState = fast.Config.SteadyState
	full.SteadyState = fast.SteadyState
	if !reflect.DeepEqual(fast, full) {
		t.Errorf("extrapolated result differs from full simulation (cfg %+v)", cfg)
	}
	return fast
}

// TestSteadyStateByteIdentical is the tentpole's property pin: for every
// strategy × placement × bandwidth share × step count, the extrapolated
// RunResult — per-step metrics, memory report, tier traffic, wear-bearing
// byte counters — is byte-identical to the fully simulated one.
func TestSteadyStateByteIdentical(t *testing.T) {
	for _, v := range steadyVariants() {
		for _, share := range []float64{0, 0.5} {
			for _, steps := range []int{3, 50} {
				cfg := v.cfg
				converges := v.converges
				cfg.SSDBandwidthShare = share
				cfg.Steps = steps
				name := string(cfg.Strategy) + "/" + string(cfg.Placement)
				t.Run(name, func(t *testing.T) {
					fast := requireSteadyIdentical(t, cfg)
					if converges {
						if fast.SteadyState.Fallback != "" {
							t.Errorf("fast path fell back (%q) on a plain run", fast.SteadyState.Fallback)
						}
						if steps == 50 && fast.SteadyState.ExtrapolatedSteps == 0 {
							t.Error("50-step run converged nothing: fast path never extrapolated")
						}
					} else if fast.SteadyState.Fallback != steadyFallbackNoConv {
						t.Errorf("fallback %q, want %q (rotating RAID cursor must block extrapolation)",
							fast.SteadyState.Fallback, steadyFallbackNoConv)
					}
					if got := fast.SteadyState.SimulatedSteps + fast.SteadyState.ExtrapolatedSteps; got != steps {
						t.Errorf("simulated %d + extrapolated %d != %d steps",
							fast.SteadyState.SimulatedSteps, fast.SteadyState.ExtrapolatedSteps, steps)
					}
				})
			}
		}
	}
}

// TestSteadyStateByteIdentical10k extends the property to the 10 000-step
// scale the bench gate measures, on a representative subset (full
// simulation at this length costs ~0.5 s per config).
func TestSteadyStateByteIdentical10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-step full-simulation baselines")
	}
	ssdShare := smallCfg(SSDTrain)
	ssdShare.SSDBandwidthShare = 0.5
	dramFirst := smallCfg(HybridOffload)
	dramFirst.Placement = PlacementDRAMFirst
	dramFirst.DRAMCapacity = 256 * units.MiB
	for _, cfg := range []RunConfig{ssdShare, dramFirst} {
		cfg.Steps = 10000
		fast := requireSteadyIdentical(t, cfg)
		if fast.SteadyState.ExtrapolatedSteps < 9000 {
			t.Errorf("10k-step run extrapolated only %d steps", fast.SteadyState.ExtrapolatedSteps)
		}
	}
}

// TestSteadyStateSessionReuse pins the fast path on recycled arenas: a
// session alternating extrapolated and fully simulated executions keeps
// producing results byte-identical to fresh runs in both modes.
func TestSteadyStateSessionReuse(t *testing.T) {
	cfg := smallCfg(SSDTrain)
	cfg.Steps = 50
	refFast := requireSteadyIdentical(t, cfg)
	slow := cfg
	slow.SteadyState = "off"
	refFull, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(plan)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, err := sess.Execute(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(refFast, got) {
			t.Errorf("round %d: session fast run differs from fresh fast run", round)
		}
		if got, err = sess.Execute(slow); err != nil {
			t.Fatal(err)
		} else if !reflect.DeepEqual(refFull, got) {
			t.Errorf("round %d: session full run differs from fresh full run", round)
		}
	}
}

// TestSteadyStateNeverFiringFaults: an armed fault spec that never fires
// forces full simulation (the extrapolated region cannot be checked
// against triggers that have not happened yet), reported as the "faults"
// fallback — and the result still matches the fault-free fast run.
func TestSteadyStateNeverFiringFaults(t *testing.T) {
	cfg := smallCfg(SSDTrain)
	cfg.Steps = 50
	fast, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	armed := cfg
	armed.Faults = neverFiring()
	got, err := Run(armed)
	if err != nil {
		t.Fatal(err)
	}
	if got.SteadyState.Fallback != steadyFallbackFaults {
		t.Errorf("armed run reported fallback %q, want %q", got.SteadyState.Fallback, steadyFallbackFaults)
	}
	if got.SteadyState.ExtrapolatedSteps != 0 {
		t.Errorf("armed run extrapolated %d steps", got.SteadyState.ExtrapolatedSteps)
	}
	got.Config = fast.Config
	got.SteadyState = fast.SteadyState
	if !reflect.DeepEqual(fast, got) {
		t.Error("never-firing schedule perturbed the fast run's outputs")
	}
}

// TestSteadyStateWearDeathInExtrapolatedRegion: a wear-triggered death
// that would land inside the region the fast path extrapolates must not
// be skipped over. The fault spec forces full simulation on both paths,
// so the death fires identically whether or not the knob is on.
func TestSteadyStateWearDeathInExtrapolatedRegion(t *testing.T) {
	base := smallCfg(SSDTrain)
	base.Steps = 50
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.SteadyState.SimulatedSteps >= base.Steps {
		t.Fatalf("fast path did not converge (%d simulated steps); the test needs an extrapolated region",
			healthy.SteadyState.SimulatedSteps)
	}
	// The extrapolated region starts after the last simulated measured
	// step; a death inside it must surface on the fast path too.
	regionStart := healthy.PerStep[healthy.SteadyState.SimulatedSteps-1].End

	// Calibrate a threshold whose crossing lands inside that region: the
	// wear ledger grows monotonically, so scan thresholds from low to
	// high until the (fully simulated, faults fallback) death time passes
	// regionStart.
	var spec faults.Spec
	var wantAt time.Duration
	for thr := 1e-12; thr < 1; thr *= 2 {
		trial := base
		trial.Faults = faults.Spec{WearThreshold: thr, Device: -1}
		_, err := Run(trial)
		if err == nil {
			break // threshold above the run's total wear: stop scanning
		}
		var dfe *core.DeviceFailedError
		if !errors.As(err, &dfe) {
			t.Fatalf("wear trial: got %v, want *core.DeviceFailedError", err)
		}
		if dfe.At > regionStart {
			spec = trial.Faults
			wantAt = dfe.At
			break
		}
	}
	if spec.Empty() {
		t.Skip("no wear threshold crosses inside the extrapolated region for this geometry")
	}

	armed := base
	armed.Faults = spec
	for _, mode := range []string{"", "off"} {
		armed.SteadyState = mode
		_, err := Run(armed)
		var dfe *core.DeviceFailedError
		if !errors.As(err, &dfe) {
			t.Fatalf("mode %q: got %v, want *core.DeviceFailedError", mode, err)
		}
		if dfe.At != wantAt {
			t.Errorf("mode %q: wear death at %v, want %v", mode, dfe.At, wantAt)
		}
	}
}
