package exp

import (
	"os"
	"testing"

	"ssdtrain/internal/models"
)

// readGolden loads a byte-identity anchor captured at 370fcb2, before
// the offload layer became a tiered hierarchy. Regenerate (only for a
// deliberate behaviour change) with `go run ./goldengen`.
func readGolden(t *testing.T, path string) string {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestFig6ByteIdentical pins Fig 6 — every column of which now runs
// through the tiered offloader as a degenerate one-tier NVMe stack —
// to the pre-refactor rendering.
func TestFig6ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	rows, err := Fig6(16)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := Fig6Table(rows).String(), readGolden(t, "testdata/fig6.golden"); got != want {
		t.Errorf("Fig 6 diverged from 370fcb2:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFig7ByteIdentical pins the recompute-offload-keep curve.
func TestFig7ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	pts, err := Fig7(12288, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := Fig7Table(12288, pts).String(), readGolden(t, "testdata/fig7.golden"); got != want {
		t.Errorf("Fig 7 diverged from 370fcb2:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTable3ByteIdentical pins the offload-volume validation table.
func TestTable3ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := Table3Table(rows).String(), readGolden(t, "testdata/table3.golden"); got != want {
		t.Errorf("Table III diverged from 370fcb2:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestOptimSweepByteIdentical pins the GreedySnake-vs-SSDTrain
// comparison: the optim-offload strategy across DRAM residency under
// both schedules, with the activation-offload baseline alongside.
func TestOptimSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	r, err := OptimSweep(RunConfig{
		Model:        models.PaperConfig(models.BERT, 2048, 24, 8),
		MicroBatches: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := OptimSweepTable(r).String(), readGolden(t, "testdata/optim_sweep.golden"); got != want {
		t.Errorf("optimizer sweep diverged from its anchor:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
