package exp

import (
	"fmt"
	"hash/fnv"
)

// ShapeHash reduces cfg to a stable 64-bit shard key: the FNV-1a hash of
// its plan identity (the normalized config with the cheap knobs zeroed —
// see ShapeKey). Two configs hash equal exactly when they compile to the
// same *Plan and warm the same session pool and rendered-body cache
// entries, which makes this the routing key for a sharded planning
// cluster: a consistent-hash ring over ShapeHash sends every request for
// one plan shape to the replica whose arenas and caches are already hot
// for it. The hash is deterministic for a given binary, which is the
// contract a cluster needs — all replicas and routers run the same build.
func ShapeHash(cfg RunConfig) (uint64, error) {
	key, err := ShapeKey(cfg)
	if err != nil {
		return 0, err
	}
	return hashConfig(key), nil
}

// ConfigHash hashes the full normalized config — the identity under
// which value-identical measurements coincide (Normalize). Where
// ShapeHash identifies which replica should answer, ConfigHash
// identifies one exact answer: the router's last-good body cache (the
// stale-serve fallback) keys on it.
func ConfigHash(cfg RunConfig) (uint64, error) {
	norm, err := Normalize(cfg)
	if err != nil {
		return 0, err
	}
	return hashConfig(norm), nil
}

// hashConfig folds the config's canonical value rendering through
// FNV-1a. The %+v form includes every field name and value, so any two
// distinct normalized configs render (and hash) differently.
func hashConfig(cfg RunConfig) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	return h.Sum64()
}
