package exp

import (
	"fmt"
	"time"

	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// OptimSweepRow is one point of the optimizer-offload sweep: the
// optim-offload strategy at a DRAM grant that is a fraction of the full
// optimizer working set, measured under both step schedules.
type OptimSweepRow struct {
	// Frac is the DRAM grant as a fraction of the full working set
	// (0 = every state on the NVMe rung, 1 = everything pinned in DRAM).
	Frac     float64
	Capacity units.Bytes
	// SyncStep/OverlapStep are the steady-state step times under the two
	// schedules; Speedup is sync/overlap − 1 (negative when the overlap
	// schedule loses to contention).
	SyncStep    time.Duration
	OverlapStep time.Duration
	Speedup     float64
	// DRAMResident/NVMeResident split the optimizer working set by rung.
	DRAMResident units.Bytes
	NVMeResident units.Bytes
	// UpdateBusy is the host update engine's busy time over the run.
	UpdateBusy time.Duration
}

// OptimSweepResult is the GreedySnake-vs-SSDTrain comparison: the
// optimizer-offload family swept across DRAM residency and schedule,
// against the activation-offload baseline measured with the same knobs.
type OptimSweepResult struct {
	Rows []OptimSweepRow
	// SSDTrainStep is the activation-offload baseline (GPU-resident
	// optimizer, the paper's own strategy).
	SSDTrainStep time.Duration
	// WorkingSet is the full optimizer working set the fractions scale:
	// FP32 states plus the per-weight gradient and parameter shuttle
	// blocks, from a fully DRAM-resident probe.
	WorkingSet units.Bytes
	// Kind is the optimizer the sweep ran ("adam" or "sgd").
	Kind string
}

// optimProbeGrant is a DRAM grant no optimizer working set reaches, so
// the probe run places every weight on the DRAM rung and reports the
// full working set.
const optimProbeGrant = units.Bytes(1) << 50

// OptimSweep measures the optim-offload strategy across DRAM residency
// fractions and both step schedules, with the SSDTrain activation
// baseline alongside (model, measurement and ablation knobs are taken
// from base; strategy, schedule and DRAM capacity are overridden). fracs
// defaults to quarters of the working set. All points run through one
// deduplicated sweep; the probe pinning the working set doubles as the
// Frac = 1 sync point.
func OptimSweep(base RunConfig, fracs []float64) (*OptimSweepResult, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	probeSpec := SpecFor(base)
	probeSpec.Offload.Strategy = ""
	probeSpec.Offload.Placement = ""
	probeSpec.Offload.DRAMCapacity = optimProbeGrant
	probeSpec.Offload.SplitRatio = 0
	probeSpec.Optimizer.Offload = true
	probeSpec.Optimizer.Schedule = ScheduleSync
	probe, err := probeSpec.Measure()
	if err != nil {
		return nil, err
	}
	need := probe.Optim.DRAMResident
	if need <= 0 {
		return nil, fmt.Errorf("exp: optimizer probe run placed nothing; nothing to sweep")
	}

	ssdSpec := probeSpec
	ssdSpec.Offload.Strategy = SSDTrain
	ssdSpec.Offload.DRAMCapacity = 0
	ssdSpec.Optimizer = OptimizerSpec{}
	specs := []Spec{ssdSpec}
	for _, f := range fracs {
		for _, sched := range []string{ScheduleSync, ScheduleOverlap} {
			s := probeSpec
			s.Offload.DRAMCapacity = units.Bytes(f * float64(need))
			s.Optimizer.Schedule = sched
			specs = append(specs, s)
		}
	}
	results, err := SweepSpecs(0, specs)
	if err != nil {
		return nil, err
	}

	out := &OptimSweepResult{
		SSDTrainStep: results[0].StepTime(),
		WorkingSet:   need,
		Kind:         probe.Optim.Kind,
	}
	for i, f := range fracs {
		sync, over := results[1+2*i], results[2+2*i]
		row := OptimSweepRow{
			Frac:         f,
			Capacity:     sync.Config.DRAMCapacity,
			SyncStep:     sync.StepTime(),
			OverlapStep:  over.StepTime(),
			Speedup:      float64(sync.StepTime())/float64(over.StepTime()) - 1,
			DRAMResident: sync.Optim.DRAMResident,
			NVMeResident: sync.Optim.NVMeResident,
			UpdateBusy:   sync.Optim.UpdateBusy,
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// OptimSweepTable renders the sweep as text.
func OptimSweepTable(r *OptimSweepResult) *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Optimizer-offload sweep (%s) — sync vs overlap step time against DRAM residency; ssdtrain baseline %v",
			r.Kind, r.SSDTrainStep.Round(time.Millisecond)),
		"dram grant", "of set", "step(sync)", "step(overlap)", "overlap gain", "dram resident", "nvme resident")
	for _, row := range r.Rows {
		t.AddRow(row.Capacity, fmt.Sprintf("%.0f%%", row.Frac*100),
			row.SyncStep.Round(time.Millisecond), row.OverlapStep.Round(time.Millisecond),
			pct(row.Speedup), row.DRAMResident, row.NVMeResident)
	}
	return t
}
