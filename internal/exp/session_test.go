package exp

import (
	"reflect"
	"sync"
	"testing"

	"ssdtrain/internal/units"
)

// runSessionSequence executes every config in order on one reused
// session, comparing each result byte-for-byte against a fresh
// Plan.Execute of the same config, then repeats the sequence in reverse
// on the same session — so every knob transition (and its inverse) runs
// on an arena dirtied by a different knob combination.
func runSessionSequence(t *testing.T, label string, cfgs []RunConfig) {
	t.Helper()
	plan, err := Compile(cfgs[0])
	if err != nil {
		t.Fatalf("%s: compile: %v", label, err)
	}
	sess, err := NewSession(plan)
	if err != nil {
		t.Fatalf("%s: session: %v", label, err)
	}
	check := func(i int, cfg RunConfig) {
		fresh, err := plan.Execute(cfg)
		if err != nil {
			t.Fatalf("%s[%d]: fresh execute: %v", label, i, err)
		}
		got, err := sess.Execute(cfg)
		if err != nil {
			t.Fatalf("%s[%d]: session execute: %v", label, i, err)
		}
		if !reflect.DeepEqual(fresh, got) {
			t.Errorf("%s[%d]: session result differs from fresh Execute (cfg %+v)", label, i, cfg)
		}
	}
	for i, cfg := range cfgs {
		check(i, cfg)
	}
	for i := len(cfgs) - 1; i >= 0; i-- {
		check(i, cfgs[i])
	}
}

// TestSessionExecuteMatchesFresh is the session-reuse equivalence
// property: for every strategy, placement, bandwidth share, DRAM
// capacity, split ratio, budget override and step-count variation,
// Session.Execute on a recycled arena returns a RunResult byte-identical
// to a single-use Plan.Execute — including per-step metrics, memory
// report timelines, per-tier usage and counters — across back-to-back
// calls with different knobs on one session.
func TestSessionExecuteMatchesFresh(t *testing.T) {
	t.Run("no-offload", func(t *testing.T) {
		base := smallCfg(NoOffload)
		more := base
		more.Steps = 5
		adaptive := base
		adaptive.Steps = 8
		adaptive.AdaptiveSteps = true
		runSessionSequence(t, "no-offload", []RunConfig{base, more, adaptive})
	})

	t.Run("recompute", func(t *testing.T) {
		base := smallCfg(Recompute)
		adaptive := base
		adaptive.Steps = 8
		adaptive.AdaptiveSteps = true
		runSessionSequence(t, "recompute", []RunConfig{base, adaptive})
	})

	t.Run("ssdtrain", func(t *testing.T) {
		base := smallCfg(SSDTrain)
		plan, err := Compile(base)
		if err != nil {
			t.Fatal(err)
		}
		half := base
		half.SSDBandwidthShare = 0.5
		quarter := base
		quarter.SSDBandwidthShare = 0.25
		budget := base
		budget.Budget = plan.EligibleBytes() / 2
		steps := base
		steps.Steps = 6
		steps.AdaptiveSteps = true
		runSessionSequence(t, "ssdtrain", []RunConfig{base, half, quarter, budget, steps})
	})

	t.Run("cpu-offload", func(t *testing.T) {
		base := smallCfg(CPUOffload)
		ref, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		bounded := base
		bounded.DRAMCapacity = ref.SSDPeak
		runSessionSequence(t, "cpu-offload", []RunConfig{base, bounded})

		// A pool smaller than the largest single tensor overflows on both
		// paths identically, and the session stays usable afterwards (a
		// failed run may not leak state into the next Execute).
		tight := base
		tight.DRAMCapacity = ref.SSDPeak / 2
		plan, err := Compile(base)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(plan)
		if err != nil {
			t.Fatal(err)
		}
		freshRes, freshErr := plan.Execute(tight)
		gotRes, gotErr := sess.Execute(tight)
		if freshErr == nil || gotErr == nil {
			t.Fatalf("overflow not reported: fresh=%v session=%v", freshErr, gotErr)
		}
		if freshErr.Error() != gotErr.Error() {
			t.Errorf("overflow errors differ:\nfresh:   %v\nsession: %v", freshErr, gotErr)
		}
		if freshRes != nil || gotRes != nil {
			t.Error("failed run returned a result")
		}
		after, err := sess.Execute(bounded)
		if err != nil {
			t.Fatalf("session unusable after failed run: %v", err)
		}
		want, err := plan.Execute(bounded)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, after) {
			t.Error("post-failure session result differs from fresh Execute")
		}
	})

	t.Run("hybrid", func(t *testing.T) {
		cpu := smallCfg(CPUOffload)
		ref, err := Run(cpu)
		if err != nil {
			t.Fatal(err)
		}
		peak := ref.SSDPeak
		base := smallCfg(HybridOffload)
		base.SSDBandwidthShare = 0.25

		nvmeOnly := base // dram-first with zero grant: degenerate stack
		halfCap := base
		halfCap.DRAMCapacity = peak / 2
		fullCap := base
		fullCap.DRAMCapacity = peak
		ssdOnly := base
		ssdOnly.Placement = PlacementSSDOnly
		ssdOnlyCap := ssdOnly
		ssdOnlyCap.DRAMCapacity = peak / 2
		split := base
		split.Placement = PlacementSplit
		split.DRAMCapacity = peak
		split.SplitRatio = 0.5
		splitZero := split
		splitZero.SplitRatio = 0
		runSessionSequence(t, "hybrid",
			[]RunConfig{nvmeOnly, halfCap, fullCap, ssdOnly, ssdOnlyCap, split, splitZero})
	})

	t.Run("materialized-verify", func(t *testing.T) {
		// Byte-backed payloads with checksum verification: revived
		// storages and recycled reload buffers must round-trip exactly.
		// The config is deliberately tiny (batch 1, 2 steps) — every saved
		// tensor is filled and CRC-checked, which dominates wall-clock,
		// especially under -race.
		base := smallCfg(SSDTrain)
		base.Model.Batch = 1
		base.Steps = 2
		base.Warmup = 1
		base.Materialize = true
		base.Verify = true
		share := base
		share.SSDBandwidthShare = 0.5
		// The repeated base config exercises a revived arena on identical
		// knobs; runSessionSequence's reverse pass covers the transitions.
		runSessionSequence(t, "materialized", []RunConfig{base, share})
	})
}

// TestSessionRejectsShapeMismatch pins the session-level guard.
func TestSessionRejectsShapeMismatch(t *testing.T) {
	plan, err := Compile(smallCfg(SSDTrain))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(plan)
	if err != nil {
		t.Fatal(err)
	}
	other := smallCfg(SSDTrain)
	other.Model.Hidden = 4096
	if _, err := sess.Execute(other); err == nil {
		t.Fatal("mismatched model accepted")
	}
	// The session stays usable after a rejected config.
	if _, err := sess.Execute(smallCfg(SSDTrain)); err != nil {
		t.Fatalf("session unusable after rejection: %v", err)
	}
}

// TestSessionPoolMatchesRun asserts pooled execution returns the same
// results as Run and actually recycles arenas.
func TestSessionPoolMatchesRun(t *testing.T) {
	sp := NewSessionPool(0)
	cfgs := []RunConfig{smallCfg(SSDTrain), smallCfg(NoOffload), smallCfg(SSDTrain)}
	for i, cfg := range cfgs {
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sp.Execute(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("pooled result %d differs from Run", i)
		}
	}
	if sp.Idle() == 0 {
		t.Error("pool retained no sessions")
	}
}

// TestSessionPoolEvictsOldest asserts a full pool evicts its oldest idle
// arena (so stale plans age out) instead of refusing new releases.
func TestSessionPoolEvictsOldest(t *testing.T) {
	sp := NewSessionPool(2)
	planA, err := Compile(smallCfg(SSDTrain))
	if err != nil {
		t.Fatal(err)
	}
	planB, err := Compile(smallCfg(NoOffload))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := NewSession(planA)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewSession(planA)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := NewSession(planB)
	if err != nil {
		t.Fatal(err)
	}
	sp.release(planA, a1)
	sp.release(planA, a2)
	sp.release(planB, b1) // full: evicts a1 (oldest)
	if got := sp.Idle(); got != 2 {
		t.Fatalf("idle = %d, want 2", got)
	}
	got, err := sp.acquire(planA)
	if err != nil {
		t.Fatal(err)
	}
	if got != a2 {
		t.Error("expected the younger planA session to survive eviction")
	}
	if s, err := sp.acquire(planB); err != nil || s != b1 {
		t.Errorf("planB session lost: %v %v", s, err)
	}
	// planA's remaining entry was consumed; its map key must be gone.
	sp.mu.Lock()
	if len(sp.free) != 0 || len(sp.fifo) != 0 {
		t.Errorf("pool not drained: %d keys, %d fifo entries", len(sp.free), len(sp.fifo))
	}
	sp.mu.Unlock()
}

// TestMemoBudgetSingleflight asserts concurrent uncached budget requests
// for one key are coalesced into a single Fig 3 planner execution (run
// under -race in CI, this also proves the memo path is data-race free).
func TestMemoBudgetSingleflight(t *testing.T) {
	cfg := smallCfg(SSDTrain)
	plan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A share no other test uses, so the key is guaranteed uncached on
	// the (shared, memoized) plan.
	const share = 0.1234567891
	before := plan.BudgetComputes()
	const workers = 8
	results := make([]units.Bytes, workers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = plan.plannedBudget(share, 10*units.GBps, 10*units.GBps)
		}(i)
	}
	close(start)
	wg.Wait()
	if got := plan.BudgetComputes() - before; got != 1 {
		t.Errorf("planner ran %d times for one key, want 1", got)
	}
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Errorf("worker %d got budget %v, worker 0 got %v", i, results[i], results[0])
		}
	}
}
