package exp

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/core"
	"ssdtrain/internal/gds"
	"ssdtrain/internal/pcie"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// Session is a reusable execution arena bound to a Plan's shape: one
// simulated runtime, one instantiated graph, and one offload stack, all
// built once and reset in place between measurements. Session.Execute
// produces bit-for-bit the same RunResult a fresh Plan.Execute would —
// the two share one code path, and every substrate's Reset returns it to
// its just-constructed state — while recycling the arena's warm capacity
// (event pools, map buckets, tensor storages, record and reload pools),
// which is what makes repeated Execute across a sweep or a fleet profile
// nearly allocation-free (SSDTrain §III's own rule: pre-allocate once,
// never re-malloc on the hot path).
//
// A Session is single-owner: it must not run two Executes concurrently.
// Use a SessionPool to share arenas across sweep workers. The per-call
// cheap knobs — Budget, Steps, Warmup, SSDBandwidthShare, AdaptiveSteps,
// SteadyState, Placement, DRAMCapacity, SplitRatio — may differ freely
// between calls on one session; everything else must match the plan's
// shape.
type Session struct {
	plan    *Plan
	rt      *autograd.Runtime
	graph   *autograd.Graph
	weights []*tensor.Tensor
	exec    *autograd.Executor

	// cache and offloader are nil for the strategies that install no
	// hooks (no-offload, recompute).
	cache     *core.TensorCache
	offloader *core.TieredOffloader
	// ssdTier/cpuTier are the arena's rungs; the hybrid strategy builds
	// both and Execute assembles the per-call stack from them (a zero
	// DRAM grant excludes the DRAM rung, as a fresh build would).
	ssdTier *core.SSDOffloader
	cpuTier *core.CPUOffloader
	// stack is the per-call tier assembly scratch.
	stack []core.Tier

	// optim and its rungs exist only for the OptimOffload strategy: the
	// offloaded-optimizer pipeline's DRAM and NVMe tiers share the arena's
	// PCIe links and NVMe array (optimizer traffic contends with
	// activation offload and lands in the same wear ledger) but keep their
	// own queues, block stores, and — for NVMe — an empty GDS registry, so
	// optimizer shuttles ride the host-mediated bounce path as
	// ZeRO-Offload's CPU-owned update prescribes.
	optim     *core.OptimOffloader
	optimDRAM *core.CPUOffloader
	optimNVMe *core.SSDOffloader
}

// NewSession builds an execution arena for the plan. The arena is fully
// reset at the start of every Execute, so a freshly built session and a
// reused one run the identical code path.
func NewSession(p *Plan) (*Session, error) {
	shape := p.shape
	rt := autograd.NewRuntime(shape.GPU)
	graph := p.tmpl.CloneWithFreshWeights()
	s := &Session{plan: p, rt: rt, graph: graph, weights: graph.Weights()}

	var hooks autograd.Hooks = autograd.NoHooks{}
	switch shape.Strategy {
	case NoOffload, Recompute:
		// No offload stack: the executor keeps (or recomputes) everything.
	case SSDTrain, CPUOffload, HybridOffload, OptimOffload:
		var host, link *pcie.Link
		var array *ssd.Array
		if shape.Strategy != SSDTrain {
			// DRAM rung over the host DMA path. The hybrid arena builds it
			// even though zero-grant calls exclude it from the stack: the
			// rung is wiring, and an unused tier schedules nothing.
			name := "pcie0"
			if shape.Strategy != CPUOffload {
				name = "pcie-host"
			}
			host = pcie.NewLink(rt.Eng, name, pcie.DefaultGen4x16())
			s.cpuTier = core.NewCPUOffloader(rt.Eng, "/dev/shm", host, 0)
		}
		if shape.Strategy != CPUOffload {
			// NVMe rung over the GDS peer-to-peer path: striped device
			// array, malloc-hook registry. Devices are built with the base
			// spec; Execute re-derates them per call's bandwidth share.
			link = pcie.NewLink(rt.Eng, "pcie0", pcie.DefaultGen4x16())
			devs := make([]*ssd.Device, shape.SSD.Count)
			for i := range devs {
				devs[i] = ssd.NewDevice(rt.Eng, p.devName(i), shape.SSD.Spec)
			}
			array = ssd.NewArray(rt.Eng, "/mnt/md1", shape.SSD.Stripe, devs...)
			registry := gds.NewRegistry()
			registry.SetRecorder(rt.Rec)
			hook := gds.NewMallocHook(registry)
			hook.Enabled = !shape.DisableGDS
			rt.Alloc.AddHook(hook)
			s.ssdTier = core.NewSSDOffloader(rt.Eng, "/mnt/md1", link, array, registry)
		}
		if shape.Strategy == OptimOffload {
			// Optimizer rungs: own queues and block stores over the shared
			// physical paths. The NVMe rung's registry stays empty, so its
			// transfers take the bounce (host-mediated) path at the derated
			// rate, and SharedArray keeps the steady-state fast path from
			// double-advancing the member devices' wear counters.
			s.optimDRAM = core.NewCPUOffloader(rt.Eng, "optim-dram", host, 0)
			s.optimNVMe = core.NewSSDOffloader(rt.Eng, "optim-nvme", link, array, gds.NewRegistry())
			s.optimNVMe.SharedArray = true
			s.optim = core.NewOptimOffloader(rt.Eng, s.optimDRAM, s.optimNVMe)
		}
		var tiers []core.Tier
		if s.cpuTier != nil {
			tiers = append(tiers, s.cpuTier)
		}
		if s.ssdTier != nil {
			tiers = append(tiers, s.ssdTier)
		}
		s.offloader = core.NewTieredOffloader(nil, tiers...)
		s.offloader.SetRecorder(rt.Rec)
		s.cache = core.NewTensorCache(core.Config{
			Runtime:         rt,
			Offloader:       s.offloader,
			HostCost:        shape.HostCost,
			PrefetchAhead:   shape.PrefetchAhead,
			KeepLastModules: max(shape.KeepLastModules, 0), // -1 (canonical ablation) → keep nothing
			Verify:          shape.Verify,
			NoForwarding:    shape.NoForwarding,
			NoDedup:         shape.NoDedup,
		})
		hooks = s.cache
	default:
		return nil, fmt.Errorf("exp: unknown strategy %q", shape.Strategy)
	}

	exec, err := autograd.NewExecutor(rt, graph, hooks, autograd.ExecConfig{
		MicroBatches: shape.MicroBatches,
		UpdateCost: func(w *tensor.Tensor) time.Duration {
			// The FP16 training update pipeline touches each parameter
			// and gradient several times per step: gradient unscale +
			// clip (2 passes over grads), the loss-scale overflow check
			// (1 pass), and the SGD update itself (read w, read g,
			// write w) — about 8 parameter-sized passes total.
			return rt.Cost.MemoryBound(8 * w.Bytes())
		},
		AccumCost: func(w *tensor.Tensor) time.Duration {
			return rt.Cost.MemoryBound(3 * w.Bytes())
		},
		Materialize: shape.Materialize,
	})
	if err != nil {
		return nil, err
	}
	s.exec = exec
	return s, nil
}

// Plan returns the plan the session's arena is bound to.
func (s *Session) Plan() *Plan { return s.plan }

// Execute runs one measurement on the session's arena, resetting it in
// place first. cfg must match the session plan's shape in everything
// except the cheap knobs; mismatched configs are rejected rather than
// silently measuring the wrong model. The result is byte-identical to a
// fresh Plan.Execute of the same config.
func (s *Session) Execute(cfg RunConfig) (*RunResult, error) {
	cfg = cfg.withDefaults()
	if err := validateKnobs(cfg); err != nil {
		return nil, err
	}
	if key := shapeKey(cfg); key != s.plan.shape {
		return nil, fmt.Errorf("exp: config shape %+v does not match compiled plan %+v", key, s.plan.shape)
	}
	p := s.plan

	// Arm (or silence) the flight recorder before anything touches the
	// arena: a traced run records from the executor's weight
	// re-registration at t=0 onward, exactly what a fresh arena's first
	// traced run sees. The recorder's track table survives Reset, so a
	// reused arena records onto the same track ids as a fresh one.
	if cfg.Trace {
		s.rt.Rec.Reset()
		s.rt.Rec.Enable()
	} else {
		s.rt.Rec.Disable()
	}

	// Rewind the arena: virtual time, allocator, counters, weights. The
	// weight storages are re-zeroed in place — the cheap alternative to
	// CloneWithFreshWeights — and restamped below in the same order the
	// clone's fresh storages would be.
	s.rt.Reset()
	for _, w := range s.weights {
		w.Storage().ResetForReuse()
	}

	res := &RunResult{Config: cfg, WeightBytes: p.weightBytes, EligibleBytes: p.eligible}

	if s.cache != nil {
		// Rebind the offload stack to this call's knobs: rederated NVMe
		// spec, this call's DRAM grant, this call's placement policy.
		if s.optimNVMe != nil || s.ssdTier != nil {
			spec := cfg.SSD.Spec
			if sh := cfg.SSDBandwidthShare; sh > 0 && sh < 1 {
				spec.SeqWrite = units.Bandwidth(float64(spec.SeqWrite) * sh)
				spec.SeqRead = units.Bandwidth(float64(spec.SeqRead) * sh)
			}
			// The optimizer rung resets first: both rungs reset the shared
			// link/array/devices idempotently with the same derated spec, and
			// resetting the activation tier last keeps its Arm the binding
			// fault installation.
			if s.optimNVMe != nil {
				s.optimNVMe.Reset(spec)
			}
			if s.ssdTier != nil {
				s.ssdTier.Reset(spec)
				// Always arm (or, for the empty spec, disarm): a reused arena
				// whose previous run injected faults must not carry them over.
				s.ssdTier.Arm(cfg.Faults)
			}
		}
		// The offloaded optimizer claims its slice of the DRAM grant first
		// (states are hot every step; the ZeRO-Offload posture); activations
		// get whatever pinned memory remains.
		actDRAM := cfg.DRAMCapacity
		var optimPlaced core.OptimPlacement
		if s.optim != nil {
			s.optimDRAM.Reset(0)
			s.optim.Reset(core.OptimConfig{
				Kind:      core.OptimKind(cfg.OptimKind),
				DRAMGrant: cfg.DRAMCapacity,
			})
			optimPlaced = s.optim.Register(s.weights)
			actDRAM -= optimPlaced.DRAMBytes
		}
		if s.cpuTier != nil {
			s.cpuTier.Reset(actDRAM)
		}
		stack := s.stack[:0]
		var policy core.PlacementPolicy
		switch cfg.Strategy {
		case SSDTrain:
			stack = append(stack, s.ssdTier)
			policy = core.SSDOnlyPolicy()
		case CPUOffload:
			stack = append(stack, s.cpuTier)
			policy = core.DRAMFirstPolicy()
		case HybridOffload, OptimOffload:
			// DRAM rung (host DMA path) first, NVMe rung (GDS path) below
			// it; each rung drains over its own PCIe path. A zero DRAM
			// grant — or one the optimizer states consumed entirely —
			// degenerates the stack to NVMe-only.
			if actDRAM > 0 {
				stack = append(stack, s.cpuTier)
			}
			stack = append(stack, s.ssdTier)
			switch cfg.Placement {
			case PlacementSSDOnly:
				policy = core.SSDOnlyPolicy()
			case PlacementSplit:
				policy = core.SplitPolicy(cfg.SplitRatio)
			default:
				policy = core.DRAMFirstPolicy()
			}
		}
		s.stack = stack
		s.offloader.Reset(policy, stack...)

		budget := cfg.Budget
		if budget == 0 {
			switch cfg.Strategy {
			case HybridOffload, OptimOffload:
				key := budgetKey{share: cfg.SSDBandwidthShare, placement: cfg.Placement, dramCap: cfg.DRAMCapacity, optim: cfg.OptimKind}
				if cfg.Placement == PlacementSplit {
					key.ratio = cfg.SplitRatio
				}
				budget = p.plannedHierarchyBudget(key, hierarchyPlans(cfg, stack, optimPlaced))
			case CPUOffload:
				// A bounded pinned pool has no spill rung, so the plan
				// must fit it (Strict); capacity 0 reduces bit-for-bit to
				// the unbounded single-target plan.
				key := budgetKey{share: cfg.SSDBandwidthShare, dramCap: cfg.DRAMCapacity}
				budget = p.plannedHierarchyBudget(key, []core.TierPlan{{
					WriteBandwidth: s.offloader.WriteBandwidth(),
					ReadBandwidth:  s.offloader.ReadBandwidth(),
					Capacity:       cfg.DRAMCapacity,
					Strict:         true,
				}})
			default:
				budget = p.plannedBudget(cfg.SSDBandwidthShare, s.offloader.ReadBandwidth(), s.offloader.WriteBandwidth())
			}
		}
		res.PlannedBudget = budget

		// The cache restarts its stamp clock; re-registering the weights
		// replays the stamps their fresh-clone counterparts would get.
		// (Transposed weight views share their parameter's storage, and
		// stamps live on the storage, so registering the parameters covers
		// every view the executor packs.)
		s.cache.Reset(budget)
		s.cache.RegisterWeights(s.weights)
	}

	s.exec.Reset()
	if s.optim != nil {
		s.exec.ConfigureOptim(s.optim, cfg.Schedule == ScheduleOverlap)
	}
	if err := runMeasurement(cfg, s.rt, s.exec, s.cache, s.offloader, s.optim, res); err != nil {
		// Leave no armed recorder behind: the next (possibly untraced)
		// Execute on this arena must not record.
		s.rt.Rec.Disable()
		return nil, err
	}
	if cfg.Trace {
		// Fault windows are emitted after the run (they cannot perturb
		// it), clamped to the measured horizon so attribution sums stay
		// within the run.
		if s.ssdTier != nil {
			s.ssdTier.EmitFaultSpans(res.Measured.End)
		}
		res.Trace = s.rt.Rec.Snapshot()
		s.rt.Rec.Disable()
	}
	return res, nil
}

// runMeasurement drives the warmup + measurement loop on a prepared arena
// and fills in the result — the single code path behind both fresh and
// session-reused Executes.
func runMeasurement(cfg RunConfig, rt *autograd.Runtime, exec *autograd.Executor, cache *core.TensorCache, off *core.TieredOffloader, optim *core.OptimOffloader, res *RunResult) error {
	runStep := func() (StepMetrics, error) {
		sr := exec.Run()
		m := StepMetrics{
			Stats:      sr.Stats,
			Start:      sr.Start,
			End:        sr.End,
			HostTime:   sr.HostTime,
			UpdateTime: sr.UpdateTime,
		}
		if cache != nil {
			if err := cache.Err(); err != nil {
				return m, fmt.Errorf("exp: offload failed in step %d: %w", len(res.PerStep)+1, err)
			}
			m.IO = cache.LastStep()
			m.Stats.OffloadedBytes = m.IO.Offloaded
			m.Stats.ReloadedBytes = m.IO.Reloaded
			m.Stats.ForwardedBytes = m.IO.Forwarded
		}
		res.PerStep = append(res.PerStep, m)
		return m, nil
	}

	// One convergence mechanism serves two consumers (see steady.go): the
	// per-step signature detector feeds AdaptiveSteps early stopping and
	// the steady-state extrapolation fast path. Extrapolation additionally
	// requires an untraced, fault-free run with the knob on — a traced run
	// can't synthesize spans, and an armed fault spec could trigger inside
	// the extrapolated region.
	extrapolate := cfg.SteadyState != "off" && !cfg.Trace && cfg.Faults.Empty() && !cfg.AdaptiveSteps
	var tracker *steadyTracker
	if extrapolate || cfg.AdaptiveSteps {
		tracker = newSteadyTracker(rt, off, optim)
	}

	for i := 0; i < cfg.Warmup; i++ {
		if tracker != nil {
			tracker.beginStep()
		}
		m, err := runStep()
		if err != nil {
			return err
		}
		if tracker != nil {
			tracker.fold(m, false)
		}
	}
	simulated := 0
	converged := false
	extrapolatable := false
	for i := 0; i < cfg.Steps; i++ {
		if tracker != nil {
			tracker.beginStep()
		}
		m, err := runStep()
		if err != nil {
			return err
		}
		simulated++
		if tracker == nil {
			continue
		}
		if match, ok := tracker.fold(m, true); match {
			converged, extrapolatable = true, ok
			break
		}
	}

	res.SteadyState.SimulatedSteps = simulated
	switch {
	case converged && cfg.AdaptiveSteps:
		// Adaptive early stop: PerStep stays short, nothing is synthesized.
		steadyGlobal.hits.Add(1)
	case converged && !extrapolatable:
		// Defensive: offload-stack state that cannot be advanced
		// analytically (page-accurate FTL wear). Armed fault specs already
		// disabled the tracker above.
		res.SteadyState.Fallback = steadyFallbackFaults
		steadyGlobal.fallbackFaults.Add(1)
	case converged:
		// The exemplar (last simulated) step is one exact cycle; synthesize
		// the remaining steps from it. The simulator's steps are contiguous
		// in virtual time, so the cycle period is the exemplar's duration.
		r := cfg.Steps - simulated
		res.SteadyState.ExtrapolatedSteps = r
		if r > 0 {
			ex := res.PerStep[len(res.PerStep)-1]
			period := ex.End - ex.Start
			rt.Alloc.ReplicateTail(tracker.allocMark, r, period)
			if off != nil {
				off.ExtrapolateCycles(int64(r))
			}
			if optim != nil {
				optim.ExtrapolateCycles(int64(r))
			}
			tracker.extrapolateCounters(int64(r))
			res.PerStep = slices.Grow(res.PerStep, r)
			for j := 1; j <= r; j++ {
				m := ex
				m.Start += time.Duration(j) * period
				m.End += time.Duration(j) * period
				res.PerStep = append(res.PerStep, m)
			}
		}
		steadyGlobal.hits.Add(1)
		steadyGlobal.extrapolated.Add(uint64(r))
	case cfg.Trace:
		res.SteadyState.Fallback = steadyFallbackTrace
		steadyGlobal.fallbackTrace.Add(1)
	case !cfg.Faults.Empty():
		res.SteadyState.Fallback = steadyFallbackFaults
		steadyGlobal.fallbackFaults.Add(1)
	case cfg.SteadyState == "off":
		res.SteadyState.Fallback = steadyFallbackOff
		steadyGlobal.fallbackOff.Add(1)
	default:
		res.SteadyState.Fallback = steadyFallbackNoConv
		steadyGlobal.fallbackNoConv.Add(1)
	}

	rep := rt.Alloc.Finalize(true)
	res.Mem = rep
	attributePeaks(rep.ActTimeline, res.PerStep, func(s *StepMetrics, p units.Bytes) {
		s.ActPeak = p
		s.Stats.ActivationPeak = p
	})
	attributePeaks(rep.Timeline, res.PerStep, func(s *StepMetrics, p units.Bytes) {
		s.TotalPeak = p
		s.Stats.TotalPeak = p
	})
	res.Measured = res.PerStep[len(res.PerStep)-1]
	if cache != nil && off != nil {
		res.SSDPeak = off.PeakResident()
		for _, t := range off.Tiers() {
			res.Tiers = append(res.Tiers, TierUsage{
				Name:     t.Name(),
				Kind:     t.Kind(),
				Written:  t.BytesWritten(),
				Read:     t.BytesRead(),
				Peak:     t.PeakResident(),
				Capacity: t.Capacity(),
			})
		}
	}
	if optim != nil {
		// Optimizer rungs report after the activation rungs, and the
		// pipeline summary rides alongside them.
		for _, t := range optim.Tiers() {
			res.Tiers = append(res.Tiers, TierUsage{
				Name:     t.Name(),
				Kind:     t.Kind(),
				Written:  t.BytesWritten(),
				Read:     t.BytesRead(),
				Peak:     t.PeakResident(),
				Capacity: t.Capacity(),
			})
		}
		pl := optim.Placement()
		res.Optim = &OptimUsage{
			Kind:         cfg.OptimKind,
			Schedule:     cfg.Schedule,
			StateBytes:   pl.StateBytes,
			DRAMResident: pl.DRAMBytes,
			NVMeResident: pl.NVMeBytes,
			ShuttleWrite: pl.DRAMWritePerStep + pl.NVMeWritePerStep,
			ShuttleRead:  pl.DRAMReadPerStep + pl.NVMeReadPerStep,
			UpdateBusy:   optim.UpdateBusy(),
		}
	}
	// Snapshot the counters: the live set belongs to the arena and is
	// reset by the next Execute; the result keeps its own copy.
	res.Counters = rt.Counters.Clone()
	// Fold this run's engine counters into the process-wide totals the
	// /metrics endpoint reports (delta-based, so repeated Executes on one
	// arena publish each run once).
	rt.Eng.PublishStats()
	return nil
}

// hierarchyPlans maps the live tier stack to the planner's tier mix: the
// ssd-only placement plans against the NVMe rung alone, split placement
// caps the DRAM rung's share at the split ratio. A zero split ratio
// routes every byte to NVMe at runtime, so the DRAM rung must drop out
// of the plan too (TierPlan.Fraction 0 means "no share cap", not
// "nothing"). The optimizer placement's per-step shuttle volumes become
// per-rung reserves, derating the activation plan's bandwidths by the
// competing traffic; the zero placement leaves the plans untouched.
func hierarchyPlans(cfg RunConfig, tiers []core.Tier, optim core.OptimPlacement) []core.TierPlan {
	dramless := cfg.Placement == PlacementSSDOnly ||
		(cfg.Placement == PlacementSplit && cfg.SplitRatio == 0)
	plans := make([]core.TierPlan, 0, len(tiers))
	for _, t := range tiers {
		if dramless && t.Kind() != core.TierNVMe {
			continue
		}
		tp := core.TierPlan{
			WriteBandwidth: t.WriteBandwidth(),
			ReadBandwidth:  t.ReadBandwidth(),
			Capacity:       t.Capacity(),
		}
		switch t.Kind() {
		case core.TierDRAM:
			if cfg.Placement == PlacementSplit {
				tp.Fraction = cfg.SplitRatio
			}
			tp.WriteReserve = optim.DRAMWritePerStep
			tp.ReadReserve = optim.DRAMReadPerStep
		case core.TierNVMe:
			tp.WriteReserve = optim.NVMeWritePerStep
			tp.ReadReserve = optim.NVMeReadPerStep
		}
		plans = append(plans, tp)
	}
	return plans
}

// DefaultMaxIdleSessions bounds how many idle arenas a SessionPool
// retains in total; a release into a full pool evicts the oldest idle
// arena, which also ages out sessions for plans the shared plan cache
// has since evicted.
const DefaultMaxIdleSessions = 32

// SessionPool shares Sessions between goroutines: Execute compiles (via
// the shared plan cache), borrows an arena for the config's plan — or
// builds one — runs, and returns the arena for the next caller. A sweep
// routed through a pool pays arena construction at most once per (plan,
// concurrent worker) instead of once per point, and the fleet profiler's
// cache-miss measurements recycle arenas across its whole lifetime.
type SessionPool struct {
	mu   sync.Mutex
	free map[*Plan][]*Session
	// fifo records the release order of idle sessions (one plan entry per
	// idle session, oldest first), so a full pool evicts its oldest arena
	// rather than refusing the newest. Eviction is what keeps a long-lived
	// pool from pinning arenas for plans the shared plan cache has since
	// evicted and re-compiled to new pointers — stale entries age out as
	// fresh releases come in, and emptied map keys are deleted.
	fifo []*Plan
	// maxIdle bounds total retained arenas across all plans.
	maxIdle int
	// hits/misses/evictions are the pool's lifetime counters: acquires
	// served by an idle arena, acquires that had to build one, and idle
	// arenas dropped to make room. Snapshotted by Stats.
	hits, misses, evictions int64
}

// SessionPoolStats is a point-in-time snapshot of a pool's counters —
// the observability the serve /metrics endpoint and cmd/bench surface so
// "the arenas are being recycled" is a measured fact rather than an
// assumption.
type SessionPoolStats struct {
	// Hits counts Execute calls served by a recycled idle arena.
	Hits int64 `json:"hits"`
	// Misses counts Execute calls that built a fresh arena.
	Misses int64 `json:"misses"`
	// Evictions counts idle arenas dropped because the pool was full.
	Evictions int64 `json:"evictions"`
	// Idle is the number of arenas currently retained.
	Idle int `json:"idle"`
}

// HitRate returns Hits over all acquires, or 0 before the first one.
func (s SessionPoolStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Stats snapshots the pool's hit/miss/eviction counters.
func (sp *SessionPool) Stats() SessionPoolStats {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return SessionPoolStats{
		Hits:      sp.hits,
		Misses:    sp.misses,
		Evictions: sp.evictions,
		Idle:      len(sp.fifo),
	}
}

// NewSessionPool creates a pool retaining at most maxIdle idle sessions
// (0 or negative uses DefaultMaxIdleSessions).
func NewSessionPool(maxIdle int) *SessionPool {
	if maxIdle <= 0 {
		maxIdle = DefaultMaxIdleSessions
	}
	return &SessionPool{free: make(map[*Plan][]*Session), maxIdle: maxIdle}
}

// Execute runs one measurement on a pooled arena: Compile (hitting the
// shared plan cache), borrow or build a session, Execute, return the
// session. Results are byte-identical to Run's for any pool state. The
// session is returned to the pool even when the run errors — Execute
// fully resets the arena on entry, so a failed run cannot leak state
// into the next one.
func (sp *SessionPool) Execute(cfg RunConfig) (*RunResult, error) {
	plan, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	s, err := sp.acquire(plan)
	if err != nil {
		return nil, err
	}
	res, err := s.Execute(cfg)
	sp.release(plan, s)
	return res, err
}

// acquire pops an idle session for the plan or builds a new one.
func (sp *SessionPool) acquire(p *Plan) (*Session, error) {
	sp.mu.Lock()
	if ss := sp.free[p]; len(ss) > 0 {
		sp.hits++
		s := ss[len(ss)-1]
		ss[len(ss)-1] = nil
		if len(ss) == 1 {
			delete(sp.free, p)
		} else {
			sp.free[p] = ss[:len(ss)-1]
		}
		// Drop one fifo entry for this plan (the newest, matching the
		// popped session; any entry works — they are interchangeable).
		for i := len(sp.fifo) - 1; i >= 0; i-- {
			if sp.fifo[i] == p {
				sp.fifo = append(sp.fifo[:i], sp.fifo[i+1:]...)
				break
			}
		}
		sp.mu.Unlock()
		return s, nil
	}
	sp.misses++
	sp.mu.Unlock()
	return NewSession(p)
}

// release returns a session to the pool, evicting the oldest idle arena
// when the pool is full.
func (sp *SessionPool) release(p *Plan, s *Session) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.fifo) >= sp.maxIdle {
		old := sp.fifo[0]
		sp.fifo = sp.fifo[1:]
		sp.evictions++
		if ss := sp.free[old]; len(ss) > 0 {
			if len(ss) == 1 {
				delete(sp.free, old)
			} else {
				copy(ss, ss[1:])
				ss[len(ss)-1] = nil
				sp.free[old] = ss[:len(ss)-1]
			}
		}
	}
	sp.free[p] = append(sp.free[p], s)
	sp.fifo = append(sp.fifo, p)
}

// Idle reports how many arenas the pool currently retains.
func (sp *SessionPool) Idle() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.fifo)
}

// BatchResult is one ExecuteBatch outcome: exactly one of Result and Err
// is set.
type BatchResult struct {
	Result *RunResult
	Err    error
}

// ExecuteBatch runs several measurements that share one plan shape on a
// single borrowed arena: one Compile (via the shared plan cache), one
// acquire, len(cfgs) Executes, one release. This is the micro-batching
// primitive behind the serve layer's request coalescing windows —
// compatible cheap-knob requests that arrive together pay arena traffic
// once instead of once each. Failures are per-item: a config that fails
// validation, mismatches the batch's shape, or errors mid-simulation
// reports through its own slot without disturbing its neighbours
// (Execute fully resets the arena on entry, so an errored run cannot
// leak state into the next). Results are byte-identical to per-config
// Plan.Execute calls.
func (sp *SessionPool) ExecuteBatch(cfgs []RunConfig) []BatchResult {
	out := make([]BatchResult, len(cfgs))
	var plan *Plan
	var sess *Session
	for i, cfg := range cfgs {
		if sess == nil {
			// The first config that compiles establishes the batch's plan
			// and arena. Later items are not recompiled: Session.Execute
			// validates their knobs and shape itself, so a mismatched item
			// errors individually — and the check cannot be confused by
			// the shared plan cache evicting and recompiling the shape to
			// a new pointer mid-batch.
			p, err := Compile(cfg)
			if err != nil {
				out[i].Err = err
				continue
			}
			s, err := sp.acquire(p)
			if err != nil {
				out[i].Err = err
				continue
			}
			plan, sess = p, s
		}
		out[i].Result, out[i].Err = sess.Execute(cfg)
	}
	if sess != nil {
		sp.release(plan, sess)
	}
	return out
}
