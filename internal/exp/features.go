package exp

import "ssdtrain/internal/trace"

// Feature is one row dimension of Table I.
type Feature string

// Table I features.
const (
	FeatTraining         Feature = "training"
	FeatOffloadToHost    Feature = "activation offloading to main memory"
	FeatOffloadToSSD     Feature = "activation offloading to SSD"
	FeatDirectGPUSSD     Feature = "direct GPU-SSD data path"
	FeatAsyncTransfer    Feature = "async data transfer"
	FeatInteroperability Feature = "interoperability"
)

// FeatureMatrix reproduces Table I: which LLM offloading systems support
// which capabilities. The SSDTrain column is backed by this repository:
// training (the executor), host offloading (CPUOffloader), SSD offloading
// (SSDOffloader), the direct path (gds registry + malloc hook), async
// transfer (store/load queues overlapped with compute) and
// interoperability (the cache is hooks-only, framework untouched).
func FeatureMatrix() map[string]map[Feature]bool {
	return map[string]map[Feature]bool{
		"FlexGen": {
			FeatOffloadToHost: true,
			FeatOffloadToSSD:  true,
		},
		"LLM-in-a-Flash": {
			FeatOffloadToSSD: true,
		},
		"ZeRO-Infinity": {
			FeatTraining:      true,
			FeatOffloadToHost: true, // checkpoints only
			FeatOffloadToSSD:  true,
		},
		"SSDTrain": {
			FeatTraining:         true,
			FeatOffloadToHost:    true,
			FeatOffloadToSSD:     true,
			FeatDirectGPUSSD:     true,
			FeatAsyncTransfer:    true,
			FeatInteroperability: true,
		},
	}
}

// AllFeatures returns the Table I rows in presentation order.
func AllFeatures() []Feature {
	return []Feature{
		FeatTraining, FeatOffloadToHost, FeatOffloadToSSD,
		FeatDirectGPUSSD, FeatAsyncTransfer, FeatInteroperability,
	}
}

// SystemsOrder returns the Table I columns in presentation order.
func SystemsOrder() []string {
	return []string{"FlexGen", "LLM-in-a-Flash", "ZeRO-Infinity", "SSDTrain"}
}

// Table1 renders the feature matrix.
func Table1() *trace.Table {
	t := trace.NewTable("Table I — LLM systems with offloading features",
		append([]string{"feature"}, SystemsOrder()...)...)
	m := FeatureMatrix()
	for _, f := range AllFeatures() {
		row := []any{string(f)}
		for _, sys := range SystemsOrder() {
			mark := ""
			if m[sys][f] {
				mark = "yes"
			}
			row = append(row, mark)
		}
		t.AddRow(row...)
	}
	return t
}
