package exp

import (
	"fmt"
	"time"

	"ssdtrain/internal/core"
	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// DRAMSweepRow is one point of the DRAM-capacity sweep: a dram-first
// hybrid run whose pinned pool is a fraction of the reference peak
// residency.
type DRAMSweepRow struct {
	// Frac is the capacity as a fraction of the reference residency peak
	// (0 = no DRAM rung, 1 = the whole working set fits).
	Frac     float64
	Capacity units.Bytes
	StepTime time.Duration
	ActPeak  units.Bytes
	// DRAMWritten/NVMeWritten split the run's offload traffic by rung.
	DRAMWritten units.Bytes
	NVMeWritten units.Bytes
	Budget      units.Bytes
}

// DRAMSweepResult is the sweep plus its two single-target endpoints: the
// zero-capacity end must coincide with the NVMe-only strategy and the
// full-capacity end with the pinned-host-memory strategy, with dram-first
// step times interpolating monotonically in between.
type DRAMSweepResult struct {
	Rows []DRAMSweepRow
	// SSDOnlyStep/CPUStep are the endpoint strategies measured with the
	// same knobs.
	SSDOnlyStep time.Duration
	CPUStep     time.Duration
	// PeakResident is the reference working set: the pinned-pool high
	// water mark of the cpu-offload endpoint, which Frac scales.
	PeakResident units.Bytes
}

// DRAMSweep measures dram-first step time against DRAM capacity for the
// base config (model, budget, bandwidth share and ablation knobs are
// taken from base; strategy and placement are overridden). fracs
// defaults to ninths of the reference peak. All points and both
// endpoints run through one deduplicated sweep sharing a compiled plan.
func DRAMSweep(base RunConfig, fracs []float64) (*DRAMSweepResult, error) {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}
	}
	cpuSpec := SpecFor(base)
	cpuSpec.Offload.Strategy = CPUOffload
	cpuSpec.Offload.Placement = ""
	cpuSpec.Offload.DRAMCapacity = 0
	cpuSpec.Offload.SplitRatio = 0
	cpu, err := cpuSpec.Measure()
	if err != nil {
		return nil, err
	}
	peak := cpu.SSDPeak
	if peak <= 0 {
		return nil, fmt.Errorf("exp: cpu-offload reference run offloaded nothing; nothing to sweep")
	}

	ssdSpec := cpuSpec
	ssdSpec.Offload.Strategy = SSDTrain
	specs := []Spec{ssdSpec}
	for _, f := range fracs {
		s := cpuSpec
		s.Offload.Strategy = HybridOffload
		s.Offload.Placement = PlacementDRAMFirst
		s.Offload.DRAMCapacity = units.Bytes(f * float64(peak))
		specs = append(specs, s)
	}
	results, err := SweepSpecs(0, specs)
	if err != nil {
		return nil, err
	}

	out := &DRAMSweepResult{
		SSDOnlyStep:  results[0].StepTime(),
		CPUStep:      cpu.StepTime(),
		PeakResident: peak,
	}
	for i, f := range fracs {
		res := results[i+1]
		row := DRAMSweepRow{
			Frac:     f,
			Capacity: res.Config.DRAMCapacity,
			StepTime: res.StepTime(),
			ActPeak:  res.Measured.ActPeak,
			Budget:   res.PlannedBudget,
		}
		for _, tier := range res.Tiers {
			switch tier.Kind {
			case core.TierDRAM:
				row.DRAMWritten = tier.Written
			case core.TierNVMe:
				row.NVMeWritten = tier.Written
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// DRAMSweepTable renders the sweep as text.
func DRAMSweepTable(r *DRAMSweepResult) *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("DRAM-capacity sweep — dram-first step time between ssd-only (%v) and cpu-offload (%v)",
			r.SSDOnlyStep.Round(time.Millisecond), r.CPUStep.Round(time.Millisecond)),
		"capacity", "of peak", "step", "dram written", "nvme written", "act peak")
	for _, row := range r.Rows {
		t.AddRow(row.Capacity, fmt.Sprintf("%.0f%%", row.Frac*100),
			row.StepTime.Round(time.Millisecond), row.DRAMWritten, row.NVMeWritten, row.ActPeak)
	}
	return t
}
