package exp

import (
	"reflect"
	"strings"
	"testing"

	"ssdtrain/internal/units"
)

// TestSessionPoolStats pins the pool's observable counters: a cold
// Execute is a miss, a warm one is a hit, and releases beyond maxIdle
// evict the oldest arena.
func TestSessionPoolStats(t *testing.T) {
	sp := NewSessionPool(1)
	cfg := smallCfg(NoOffload)
	if _, err := sp.Execute(cfg); err != nil {
		t.Fatal(err)
	}
	st := sp.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.Evictions != 0 || st.Idle != 1 {
		t.Fatalf("after cold execute: %+v", st)
	}
	if _, err := sp.Execute(cfg); err != nil {
		t.Fatal(err)
	}
	st = sp.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 || st.Idle != 1 {
		t.Fatalf("after warm execute: %+v", st)
	}
	// A different shape misses and, with maxIdle 1, its release evicts
	// the first shape's idle arena.
	other := smallCfg(Recompute)
	if _, err := sp.Execute(other); err != nil {
		t.Fatal(err)
	}
	st = sp.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 1 || st.Idle != 1 {
		t.Fatalf("after cross-shape execute: %+v", st)
	}
	if rate := st.HitRate(); rate <= 0.33 || rate >= 0.34 {
		t.Fatalf("hit rate = %v, want 1/3", rate)
	}
}

// TestExecuteBatch runs a same-shape knob batch on one borrowed arena
// and checks every slot is byte-identical to a fresh Plan.Execute, with
// per-item errors isolated from their neighbours.
func TestExecuteBatch(t *testing.T) {
	sp := NewSessionPool(0)
	base := smallCfg(SSDTrain)
	half := base
	half.SSDBandwidthShare = 0.5
	budget := base
	budget.Budget = 32 * units.MiB
	bad := base
	bad.SSDBandwidthShare = 2 // invalid knob: fails Compile, not the batch
	mismatch := smallCfg(Recompute)

	results := sp.ExecuteBatch([]RunConfig{base, bad, half, mismatch, budget})
	plan, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range []RunConfig{base, half, budget} {
		slot := []int{0, 2, 4}[i]
		if results[slot].Err != nil {
			t.Fatalf("slot %d: %v", slot, results[slot].Err)
		}
		fresh, err := plan.Execute(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, results[slot].Result) {
			t.Errorf("slot %d differs from fresh Execute", slot)
		}
	}
	if results[1].Err == nil || results[1].Result != nil {
		t.Errorf("invalid-knob slot: result=%v err=%v", results[1].Result, results[1].Err)
	}
	if err := results[3].Err; err == nil || !strings.Contains(err.Error(), "does not match compiled plan") {
		t.Errorf("mismatched-shape slot error = %v", err)
	}
	st := sp.Stats()
	if st.Misses != 1 {
		t.Errorf("batch built %d arenas, want 1 (stats %+v)", st.Misses, st)
	}
}

// TestNormalizeAndShapeKey pins the exported canonicalization: defaults
// filled, knobs validated, and the shape key zeroing exactly the cheap
// knobs.
func TestNormalizeAndShapeKey(t *testing.T) {
	cfg := smallCfg(HybridOffload)
	cfg.SSDBandwidthShare = 0.25
	cfg.DRAMCapacity = 512 * units.MiB
	n, err := Normalize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Placement != PlacementDRAMFirst || n.Steps != 3 || n.Warmup != 2 {
		t.Fatalf("normalize did not fill defaults: %+v", n)
	}
	key, err := ShapeKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if key != shapeKey(n) {
		t.Fatalf("ShapeKey = %+v, want internal shapeKey of normalized config", key)
	}
	if key.SSDBandwidthShare != 0 || key.DRAMCapacity != 0 || key.Placement != "" {
		t.Fatalf("cheap knobs not zeroed in shape key: %+v", key)
	}

	if _, err := Normalize(RunConfig{Strategy: "warp-drive"}); err == nil {
		t.Fatal("unknown strategy normalized without error")
	}
	bad := smallCfg(SSDTrain)
	bad.SplitRatio = 0.5
	if _, err := ShapeKey(bad); err == nil {
		t.Fatal("dead split ratio accepted")
	}
}

// TestNegativeKnobsRejected is the library-level pin for the hostile
// knobs that once reached the executor: steps -1 with warmup -1 used to
// panic on an empty PerStep, and a lone negative knob silently
// mismeasured.
func TestNegativeKnobsRejected(t *testing.T) {
	base := smallCfg(SSDTrain)
	mutations := map[string]func(*RunConfig){
		"steps":         func(c *RunConfig) { c.Steps = -1 },
		"warmup":        func(c *RunConfig) { c.Warmup = -1 },
		"steps+warmup":  func(c *RunConfig) { c.Steps, c.Warmup = -1, -1 },
		"micro batches": func(c *RunConfig) { c.MicroBatches = -3 },
		"budget":        func(c *RunConfig) { c.Budget = -units.MiB },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := Normalize(cfg); err == nil {
			t.Errorf("%s: negative knob normalized without error", name)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: negative knob ran without error", name)
		}
	}
}
