package exp

import (
	"reflect"
	"testing"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

func smallCfg(strategy Strategy) RunConfig {
	return RunConfig{
		Model:    models.PaperConfig(models.BERT, 2048, 2, 4),
		Strategy: strategy,
	}
}

// TestCompileExecuteMatchesRun asserts the compiled-plan path and the
// Run wrapper produce byte-identical results — including the memory
// report, per-step metrics, counters and planned budget — for every
// strategy. Run is a thin wrapper over Compile+Execute, but the two
// plans here come from different cache entries' lifecycles (fresh
// compile vs cached), so this also pins plan reuse to be side-effect
// free.
func TestCompileExecuteMatchesRun(t *testing.T) {
	for _, strat := range []Strategy{SSDTrain, NoOffload, Recompute, CPUOffload} {
		cfg := smallCfg(strat)
		plan, err := Compile(cfg)
		if err != nil {
			t.Fatalf("%s: compile: %v", strat, err)
		}
		a, err := plan.Execute(cfg)
		if err != nil {
			t.Fatalf("%s: execute: %v", strat, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: run: %v", strat, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: Compile+Execute result differs from Run", strat)
		}
	}
}

// seedRun reproduces the seed's single-shot Run path: build the graph
// directly (no template cache, no plan reuse) and measure with fixed
// steps. The compiled path must match it byte-for-byte.
func seedRun(t *testing.T, cfg RunConfig) *RunResult {
	t.Helper()
	cfg = cfg.withDefaults()
	mcfg := cfg.Model
	mcfg.Checkpoint = cfg.Strategy == Recompute
	rt := autograd.NewRuntime(cfg.GPU)
	graph, err := models.Build(mcfg, rt.Cost)
	if err != nil {
		t.Fatal(err)
	}
	// Compile from a plan built around this uncached graph.
	p := &Plan{
		shape:       shapeKey(cfg),
		tmpl:        graph,
		saved:       blockSavedBytes(graph),
		bwd:         blockBwdTimes(graph),
		weightBytes: graph.WeightBytes(),
		budgetByKey: make(map[budgetKey]units.Bytes),
	}
	p.fwdTime, p.bwdTime = graphTimes(graph)
	p.eligible, p.lastModule = eligibleBytes(graph)
	res, err := p.Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPlanReuseMatchesFreshBuild asserts that executing through a
// memoized graph template produces results identical to building the
// graph from scratch — the property that makes the template cache and
// weight rebinding invisible to every caller.
func TestPlanReuseMatchesFreshBuild(t *testing.T) {
	for _, strat := range []Strategy{SSDTrain, Recompute} {
		cfg := smallCfg(strat)
		fresh := seedRun(t, cfg)
		cached, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, cached) {
			t.Errorf("%s: cached-template result differs from fresh build", strat)
		}
	}
}

// TestRunDeterministic asserts repeated runs of one config are
// byte-identical — the foundation of the fleet cache's correctness.
func TestRunDeterministic(t *testing.T) {
	cfg := smallCfg(SSDTrain)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated runs differ")
	}
}

// TestExecuteRejectsShapeMismatch pins the guard that keeps a plan from
// silently measuring a different model.
func TestExecuteRejectsShapeMismatch(t *testing.T) {
	plan, err := Compile(smallCfg(SSDTrain))
	if err != nil {
		t.Fatal(err)
	}
	other := smallCfg(SSDTrain)
	other.Model.Hidden = 4096
	if _, err := plan.Execute(other); err == nil {
		t.Fatal("mismatched model accepted")
	}
	// The cheap knobs must be accepted.
	knobs := smallCfg(SSDTrain)
	knobs.Steps = 7
	knobs.Budget = plan.EligibleBytes() / 2
	knobs.SSDBandwidthShare = 0.5
	if _, err := plan.Execute(knobs); err != nil {
		t.Fatalf("cheap-knob variant rejected: %v", err)
	}
}

// TestAdaptiveStepsMatchesFixed asserts an adaptive run stops early and
// still reports the same steady-state measurement as the fixed-step run.
func TestAdaptiveStepsMatchesFixed(t *testing.T) {
	for _, strat := range []Strategy{SSDTrain, NoOffload} {
		fixedCfg := smallCfg(strat)
		fixedCfg.Steps = 12
		fixed, err := Run(fixedCfg)
		if err != nil {
			t.Fatal(err)
		}
		adaptiveCfg := fixedCfg
		adaptiveCfg.AdaptiveSteps = true
		adaptive, err := Run(adaptiveCfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(adaptive.PerStep) >= len(fixed.PerStep) {
			t.Errorf("%s: adaptive ran %d steps, fixed ran %d — no savings",
				strat, len(adaptive.PerStep), len(fixed.PerStep))
		}
		fm, am := fixed.Measured, adaptive.Measured
		// Window positions on the timeline differ (the adaptive run is
		// shorter); everything else must agree exactly.
		fm.Start, fm.End, am.Start, am.End = 0, 0, 0, 0
		if !reflect.DeepEqual(fm.Stats, am.Stats) || fm.IO != am.IO ||
			fm.ActPeak != am.ActPeak || fm.TotalPeak != am.TotalPeak ||
			fm.HostTime != am.HostTime || fm.UpdateTime != am.UpdateTime {
			t.Errorf("%s: adaptive Measured differs from fixed:\n%+v\nvs\n%+v", strat, am, fm)
		}
		if fixed.PlannedBudget != adaptive.PlannedBudget {
			t.Errorf("%s: planned budgets differ", strat)
		}
	}
}

// TestAdaptiveStepsMinimumTwo asserts the adaptive path never reports
// from fewer than two measured steps (a single step cannot demonstrate
// convergence).
func TestAdaptiveStepsMinimumTwo(t *testing.T) {
	cfg := smallCfg(NoOffload)
	cfg.Steps = 12
	cfg.AdaptiveSteps = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	measured := len(res.PerStep) - res.Config.Warmup
	if measured < 2 {
		t.Fatalf("only %d measured steps", measured)
	}
}

// TestEligibleBytesZeroBlocks is the regression test for the seed's
// latent out-of-range panic on zero-block graphs: saved[len(saved)-1]
// with len(saved) == 0.
func TestEligibleBytesZeroBlocks(t *testing.T) {
	g := &autograd.Graph{Name: "empty"}
	total, last := eligibleBytes(g)
	if total != 0 || last != 0 {
		t.Fatalf("eligibleBytes(empty) = %v, %v; want 0, 0", total, last)
	}
}

// TestPlanExposesLastModule pins the keep-last accounting the seed
// computed and discarded: the planner's resident tail is the final
// block's saved bytes.
func TestPlanExposesLastModule(t *testing.T) {
	plan, err := Compile(smallCfg(SSDTrain))
	if err != nil {
		t.Fatal(err)
	}
	if plan.LastModuleBytes() <= 0 {
		t.Fatal("last-module bytes not recorded")
	}
	if plan.LastModuleBytes() >= plan.EligibleBytes() {
		t.Fatal("last module cannot exceed total eligible bytes")
	}
}

// TestPlanCacheShared asserts Run-level sweeps share one compiled plan.
func TestPlanCacheShared(t *testing.T) {
	cfg := smallCfg(SSDTrain)
	p1, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	varied := cfg
	varied.Steps = 9
	varied.SSDBandwidthShare = 0.25
	p2, err := Compile(varied)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cheap-knob variants compiled to distinct plans")
	}
}
