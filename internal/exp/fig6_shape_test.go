package exp

import (
	"testing"

	"ssdtrain/internal/models"
)

// TestFig6Shape checks the paper's headline result at full evaluation
// scale: SSDTrain cuts the activation peak by tens of percent while the
// step time stays within a fraction of a percent of the baseline.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	for _, g := range models.Fig6Geometries() {
		cfg := models.PaperConfig(models.BERT, g[0], g[1], 16)
		base, err := Run(RunConfig{Model: cfg, Strategy: NoOffload})
		if err != nil {
			t.Fatal(err)
		}
		off, err := Run(RunConfig{Model: cfg, Strategy: SSDTrain})
		if err != nil {
			t.Fatal(err)
		}
		red := 100 * (1 - float64(off.Measured.ActPeak)/float64(base.Measured.ActPeak))
		ratio := float64(off.StepTime()) / float64(base.StepTime())
		if red < 15 {
			t.Errorf("H%d L%d: activation peak reduction %.0f%% below 15%%", g[0], g[1], red)
		}
		if ratio > 1.01 {
			t.Errorf("H%d L%d: step-time ratio %.3f above 1.01", g[0], g[1], ratio)
		}
		t.Logf("BERT H%d L%d: peak %v -> %v (-%.0f%%), step %v -> %v (ratio %.3f), stall=%v, offloaded=%v fw=%v budget=%v elig=%v thr=%v",
			g[0], g[1], base.Measured.ActPeak, off.Measured.ActPeak, red,
			base.StepTime(), off.StepTime(), ratio, off.Measured.Stats.ComputeStall,
			off.Measured.IO.Offloaded, off.Measured.IO.Forwarded, off.PlannedBudget, off.EligibleBytes,
			base.Throughput())
	}
}
