package exp

import (
	"sync/atomic"
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/core"
	"ssdtrain/internal/sim"
	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// Fallback reasons reported on RunResult.SteadyState and counted in the
// process-wide SteadyStats.
const (
	// steadyFallbackTrace: a traced run is fully simulated — the flight
	// recorder's spans cannot be synthesized.
	steadyFallbackTrace = "trace"
	// steadyFallbackFaults: an armed fault spec (or page-accurate FTL
	// wear) needs the real transfer stream — a trigger could fire inside
	// the extrapolated region.
	steadyFallbackFaults = "faults"
	// steadyFallbackOff: the SteadyState knob forced full simulation.
	steadyFallbackOff = "off"
	// steadyFallbackNoConv: no two consecutive measured steps matched
	// within Steps.
	steadyFallbackNoConv = "no-convergence"
)

// steadyGlobal accumulates process-wide fast-path outcomes, mirroring the
// engine's PublishStats pattern: per-run deltas fold into package atomics
// the serve /metrics endpoint and the selfchecks read.
var steadyGlobal struct {
	hits, extrapolated                                         atomic.Uint64
	fallbackTrace, fallbackFaults, fallbackOff, fallbackNoConv atomic.Uint64
}

// SteadyStats is a snapshot of the process-wide steady-state fast-path
// counters.
type SteadyStats struct {
	// Hits counts runs where the signature detector converged: the fast
	// path extrapolated, or an AdaptiveSteps run stopped early.
	Hits uint64 `json:"hits"`
	// ExtrapolatedSteps is the total number of measured steps synthesized
	// analytically instead of simulated.
	ExtrapolatedSteps uint64 `json:"extrapolated_steps"`
	// Fallback* count fully simulated runs by reason.
	FallbackTrace         uint64 `json:"fallback_trace"`
	FallbackFaults        uint64 `json:"fallback_faults"`
	FallbackOff           uint64 `json:"fallback_off"`
	FallbackNoConvergence uint64 `json:"fallback_no_convergence"`
}

// GlobalSteadyStats snapshots the process-wide fast-path counters.
func GlobalSteadyStats() SteadyStats {
	return SteadyStats{
		Hits:                  steadyGlobal.hits.Load(),
		ExtrapolatedSteps:     steadyGlobal.extrapolated.Load(),
		FallbackTrace:         steadyGlobal.fallbackTrace.Load(),
		FallbackFaults:        steadyGlobal.fallbackFaults.Load(),
		FallbackOff:           steadyGlobal.fallbackOff.Load(),
		FallbackNoConvergence: steadyGlobal.fallbackNoConv.Load(),
	}
}

// steadyHorizon is a backlog horizon relative to the step origin, clamped
// at zero — see core.SteadySupport for why stale drained-queue horizons
// must not block convergence.
func steadyHorizon(busyUntil, origin time.Duration) time.Duration {
	if busyUntil <= origin {
		return 0
	}
	return busyUntil - origin
}

// steadyTracker computes the per-step state signature behind both the
// steady-state fast path and AdaptiveSteps convergence. Each executed
// step folds (a) the step's own metrics and (b) the arena's state delta
// since the previous step — engine event counts, compute-queue growth,
// the allocator's event tail, counter increments, and the offload stack's
// per-cycle accounting — all shift-invariant quantities: times enter
// relative to the step's start, cumulative counters as deltas. Two
// consecutive measured steps with equal signatures mean the simulation
// has entered a cycle that repeats exactly, so the remaining steps can be
// synthesized from the last one.
//
// The signature deliberately excludes warm-capacity state that differs
// between a fresh arena and a recycled session arena (the engine's event
// pool hit/miss split): a session-reused Execute must converge on the
// same step as a fresh one so their RunResults stay byte-identical.
type steadyTracker struct {
	rt    *autograd.Runtime
	off   *core.TieredOffloader
	optim *core.OptimOffloader

	// allocMark is the allocator event-log position at the current step's
	// start; the tail from the mark is the step's own event block, folded
	// into the signature and replicated verbatim on extrapolation.
	allocMark int

	prevEng  sim.Stats
	prevBusy time.Duration
	prevJobs int

	// counterPrev/counterDelta track per-name counter snapshots and the
	// last step's increments (replayed ×R on extrapolation).
	counterPrev  map[string]int64
	counterDelta map[string]int64

	prevSum  uint64
	havePrev bool
}

func newSteadyTracker(rt *autograd.Runtime, off *core.TieredOffloader, optim *core.OptimOffloader) *steadyTracker {
	return &steadyTracker{
		rt:           rt,
		off:          off,
		optim:        optim,
		counterPrev:  make(map[string]int64, 8),
		counterDelta: make(map[string]int64, 8),
	}
}

// beginStep records the allocator event-log position before the step runs.
func (t *steadyTracker) beginStep() { t.allocMark = t.rt.Alloc.EventMark() }

// fold folds one executed step. Warmup steps fold too — they advance the
// delta snapshots so the first measured step's delta covers exactly one
// step — but only measured steps participate in the two-consecutive-match
// comparison. It returns whether this measured step matched the previous
// measured one, and whether the offload stack's state can be advanced
// analytically (false forces a fallback even on a match).
func (t *steadyTracker) fold(m StepMetrics, measured bool) (match, extrapolatable bool) {
	var sig sim.Sig
	origin := m.Start

	// The step's own observable metrics.
	sig.FoldDur(m.End - m.Start)
	sig.FoldDur(m.HostTime)
	sig.FoldDur(m.UpdateTime)
	sig.FoldDur(m.Stats.StepTime)
	sig.FoldInt(int64(m.Stats.ModelFLOPs))
	sig.FoldDur(m.Stats.ComputeStall)
	sig.FoldInt(int64(m.Stats.OffloadedBytes))
	sig.FoldInt(int64(m.Stats.ReloadedBytes))
	sig.FoldInt(int64(m.Stats.ForwardedBytes))
	sig.FoldInt(int64(m.IO.Offloaded))
	sig.FoldInt(int64(m.IO.Kept))
	sig.FoldInt(int64(m.IO.Forwarded))
	sig.FoldInt(int64(m.IO.Reloaded))
	sig.FoldInt(m.IO.Packs)
	sig.FoldInt(m.IO.DedupHits)
	sig.FoldInt(m.IO.Leaked)

	// Engine progress: event counts as deltas, plus the live queue. The
	// pool hit/miss split is arena-recycling state and stays out (see the
	// type comment).
	es := t.rt.Eng.Stats()
	sig.Fold(es.Processed - t.prevEng.Processed)
	sig.Fold(es.Scheduled - t.prevEng.Scheduled)
	t.prevEng = es
	sig.FoldInt(int64(t.rt.Eng.Pending()))
	sig.FoldDur(steadyHorizon(t.rt.Eng.Now(), origin))

	// Compute stream: busy growth, job growth, backlog horizon.
	cb := t.rt.Compute.BusyTime()
	sig.FoldDur(cb - t.prevBusy)
	t.prevBusy = cb
	cj := t.rt.Compute.Jobs()
	sig.FoldInt(int64(cj - t.prevJobs))
	t.prevJobs = cj
	sig.FoldDur(steadyHorizon(t.rt.Compute.BusyUntil(), origin))

	// The step's allocator event block, relative to the step start.
	t.rt.Alloc.FoldTail(&sig, t.allocMark, origin)

	// Counter increments. Map iteration order is random, so each entry
	// hashes independently and the results combine by XOR — order-blind,
	// deterministic.
	var acc uint64
	n := 0
	t.rt.Counters.Range(func(name string, v int64) {
		d := v - t.counterPrev[name]
		var e sim.Sig
		e.FoldString(name)
		e.FoldInt(d)
		acc ^= e.Sum()
		n++
		t.counterPrev[name] = v
		t.counterDelta[name] = d
	})
	sig.FoldInt(int64(n))
	sig.Fold(acc)

	// The offload stack's per-cycle accounting.
	extrapolatable = true
	if t.off != nil {
		extrapolatable = t.off.FoldCycle(&sig, origin)
	}
	if t.optim != nil && !t.optim.FoldCycle(&sig, origin) {
		extrapolatable = false
	}

	sum := sig.Sum()
	match = measured && t.havePrev && sum == t.prevSum
	if measured {
		t.prevSum = sum
		t.havePrev = true
	}
	return match, extrapolatable
}

// extrapolateCounters replays the last measured step's counter increments
// n more times onto the live counter set.
func (t *steadyTracker) extrapolateCounters(n int64) {
	for name, d := range t.counterDelta {
		if d != 0 {
			t.rt.Counters.Add(name, d*n)
		}
	}
}

// attributePeaks fills one peak per step window from the timeline in a
// single merged scan: exactly PeakBetween(s.Start, s.End) for every step
// (same carry-in semantics), but O(samples + steps) instead of
// O(samples × steps). Step windows are contiguous and sorted, which is
// what lets one pass over the samples serve every window; the linear cost
// is what keeps ten-thousand-step runs feasible, fast path or not.
func attributePeaks(tl *trace.MemTimeline, steps []StepMetrics, set func(*StepMetrics, units.Bytes)) {
	samples := tl.Samples()
	var level units.Bytes
	j := 0
	for i := range steps {
		s := &steps[i]
		for j < len(samples) && samples[j].At < s.Start {
			level = samples[j].Total
			j++
		}
		peak := level
		for j < len(samples) && samples[j].At < s.End {
			if samples[j].Total > peak {
				peak = samples[j].Total
			}
			level = samples[j].Total
			j++
		}
		set(s, peak)
	}
}
