// Package exp is the experiment harness: it wires the substrates together
// (GPU runtime, PCIe link, SSD array, GDS registry, tensor cache) and runs
// training steps under the placement strategies the paper compares,
// producing the rows of every evaluation table and figure. The cmd/
// tools, the examples and the benchmarks all call into this package so
// the numbers they print come from one code path.
//
// Measurements are two-phase: Compile turns a RunConfig into a *Plan
// holding all the pure config-shape-dependent work (graph template,
// activation vectors, budget plan), and Plan.Execute runs one simulation
// under it. Run composes the two behind a shared plan cache, so naive
// per-point sweeps get the memoization for free.
package exp

import (
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/core"
	"ssdtrain/internal/faults"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/models"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// Strategy is an activation placement strategy — the three points of the
// paper's recompute-offload-keep design space (§IV-C) plus the CPU
// offloader variant.
type Strategy string

// Strategies.
const (
	// NoOffload keeps all activations in GPU memory (the baseline).
	NoOffload Strategy = "no-offload"
	// SSDTrain offloads activations to the NVMe array.
	SSDTrain Strategy = "ssdtrain"
	// Recompute applies layerwise full activation checkpointing.
	Recompute Strategy = "recompute"
	// CPUOffload offloads activations to pinned host memory.
	CPUOffload Strategy = "cpu-offload"
	// HybridOffload offloads activations across a tiered DRAM+NVMe
	// hierarchy under a placement policy (§III-A generalized: both offload
	// targets at once instead of either).
	HybridOffload Strategy = "hybrid"
	// OptimOffload extends the hybrid activation hierarchy with offloaded
	// optimizer states and gradients (the ZeRO-Offload / GreedySnake
	// regime): FP32 master state lives on DRAM/NVMe, per-step gradient
	// and parameter shuttles ride the same PCIe paths, and the update
	// executes on a host-side engine. The Schedule knob selects whether
	// the update pipeline drains before the step ends (sync) or overlaps
	// fwd(t+1) (GreedySnake's core trick).
	OptimOffload Strategy = "optim-offload"
)

// Optimizer schedule values for RunConfig.Schedule.
const (
	// ScheduleSync holds each step open until the offloaded optimizer
	// pipeline fully drains (the ZeRO-Offload baseline).
	ScheduleSync = "sync"
	// ScheduleOverlap ends the step at the compute horizon and lets the
	// pipeline drain into the next step's forward, which stalls per
	// weight only if its updated value has not arrived (GreedySnake).
	ScheduleOverlap = "overlap"
)

// Placement selects the tier-routing policy of the HybridOffload
// hierarchy.
type Placement string

// Placement policies.
const (
	// PlacementSSDOnly routes everything to the NVMe rung (the paper's
	// placement, expressed on the tiered stack).
	PlacementSSDOnly Placement = "ssd-only"
	// PlacementDRAMFirst fills the pinned DRAM pool first and spills
	// overflow to NVMe (the 10Cache/ZeRO-Offload posture).
	PlacementDRAMFirst Placement = "dram-first"
	// PlacementSplit routes a fixed fraction of offloaded bytes to DRAM
	// and the rest to NVMe, keeping both PCIe paths busy.
	PlacementSplit Placement = "split"
)

// SSDSetup describes the per-GPU offload array.
type SSDSetup struct {
	Spec   ssd.Spec
	Count  int
	Stripe units.Bytes
}

// PaperArray is the testbed's per-GPU array (Table II): the measured GPU
// owned a RAID0 of 4× Intel Optane P5800X with a 512 KiB stripe.
func PaperArray() SSDSetup {
	return SSDSetup{Spec: ssd.IntelP5800X16TB(), Count: 4, Stripe: 512 * units.KiB}
}

// RunConfig configures one training measurement — the flat, original
// knob surface.
//
// Deprecated: new code should build the grouped Spec and flatten with
// Spec.RunConfig (or run it directly with Spec.Measure); the two forms
// convert losslessly in both directions via SpecFor. RunConfig remains
// the execution currency underneath and the legacy serve wire form.
type RunConfig struct {
	Model    models.Config
	Strategy Strategy
	GPU      gpu.Spec
	SSD      SSDSetup
	// Steps measured after Warmup steps (the cache learns its keep-last
	// set during warmup).
	Steps  int
	Warmup int
	// MicroBatches per step (gradient accumulation).
	MicroBatches int
	// Budget overrides the planned offload budget (0 = plan automatically
	// via the Fig 3 workflow).
	Budget units.Bytes
	// PrefetchAhead tunes the cache's prefetch depth in modules: 0 =
	// prefetch all (default), negative = disabled (ablation).
	PrefetchAhead int
	// KeepLastModules keeps the last K modules' activations resident
	// (default 1).
	KeepLastModules int
	// HostCost is the cache CPU overhead charged per hook call.
	HostCost time.Duration
	// DisableGDS forces the bounce-buffer path (ablation).
	DisableGDS bool
	// NoForwarding/NoDedup disable the corresponding cache optimizations
	// (ablations).
	NoForwarding bool
	NoDedup      bool
	// Materialize+Verify run byte-backed offloads with checksum checks.
	Materialize bool
	Verify      bool
	// Placement selects the HybridOffload tier-routing policy (default
	// dram-first). Only meaningful for the hybrid strategy.
	Placement Placement
	// DRAMCapacity bounds the pinned host-memory pool. For HybridOffload
	// it sizes the DRAM rung (0 = no DRAM rung, making the hierarchy
	// degenerate NVMe-only); for CPUOffload it bounds the single pinned
	// pool (0 = profiling mode, grow freely).
	DRAMCapacity units.Bytes
	// SplitRatio is the DRAM share of offloaded bytes under
	// PlacementSplit, in [0, 1].
	SplitRatio float64
	// OptimKind selects the offloaded optimizer's state layout for the
	// OptimOffload strategy: "adam" (FP32 master + momentum + variance,
	// 6× the FP16 parameter bytes) or "sgd" (FP32 master + momentum, 4×).
	// Defaults to "adam"; must be empty for every other strategy.
	OptimKind string
	// Schedule selects the OptimOffload step schedule: "sync" (default)
	// drains the update pipeline before the step ends, "overlap" lets it
	// drain into fwd(t+1). Must be empty for every other strategy.
	Schedule string
	// SSDBandwidthShare scales the array's sequential bandwidths to model
	// co-tenants contending for a shared NVMe array: a fleet simulation that
	// places k equal offloading jobs on one node hands each a 1/k share.
	// 0 (unset) and 1 both mean exclusive access; NaN and values outside
	// [0, 1] are rejected by Run.
	SSDBandwidthShare float64
	// AdaptiveSteps stops measuring as soon as two consecutive measured
	// steps fold to identical state signatures instead of always running
	// all Steps — the simulator is deterministic, so a steady state
	// repeats to the nanosecond and further steps only cost wall-clock
	// time. Steps becomes an upper bound; at least two steps are
	// measured. Convergence detection is one mechanism shared with the
	// SteadyState fast path: a per-step signature over the step's metrics,
	// the engine's and compute queue's progress deltas, the allocator's
	// event tail and the offload stack's per-cycle accounting. The two
	// knobs differ only in what happens on a match — AdaptiveSteps stops
	// and returns the short PerStep, while the fast path keeps PerStep at
	// full length by synthesizing the remaining steps analytically. The
	// final (Measured) metrics of a converged run are identical to the
	// fixed-step run's; only PerStep's length differs, so leave this off
	// when a sweep must stay byte-identical to the seed path.
	AdaptiveSteps bool
	// SteadyState controls the analytic steady-state fast path: once two
	// consecutive measured steps fold to identical signatures the
	// simulation has entered an exact cycle, so the remaining steps are
	// extrapolated — step metrics shifted in time, tier/device byte
	// counters (the §III-D wear ledger's inputs) and runtime counters
	// advanced by per-cycle deltas, the memory event log replicated — with
	// a RunResult byte-identical to full simulation. "" and "on" enable it
	// (the default); "off" forces full simulation. Runs fall back to full
	// simulation on their own when Trace is set (recorded spans cannot be
	// synthesized) or a fault spec is armed (a trigger could fire inside
	// the extrapolated region, and the wear ledger must see the real write
	// stream). RunResult.SteadyState reports what happened.
	SteadyState string
	// Trace enables the flight recorder for the run: every simulated
	// resource (compute stream, PCIe directions, NVMe devices, tier
	// queues, allocator) records typed spans, returned on
	// RunResult.Trace. Tracing observes completion times the simulation
	// computes anyway, so a traced run's metrics are byte-identical to
	// the untraced run's.
	Trace bool
	// Faults schedules deterministic fault injection against the NVMe
	// array: device death (at a time or a wear threshold), transient
	// bandwidth degradation, RAID-rebuild bandwidth steal. The zero Spec
	// injects nothing and keeps the run byte-identical to a fault-free
	// one. Only meaningful for strategies with an NVMe tier (SSDTrain,
	// HybridOffload); a whole-array failure mid-run surfaces as a
	// *core.DeviceFailedError unless a surviving tier absorbs the spill.
	Faults faults.Spec
}

// withDefaults fills unset fields with the paper's setup.
func (c RunConfig) withDefaults() RunConfig {
	if c.GPU.Name == "" {
		c.GPU = gpu.A100PCIe()
	}
	if c.SSD.Count == 0 {
		c.SSD = PaperArray()
	}
	if c.Steps == 0 {
		c.Steps = 3
	}
	if c.Warmup == 0 {
		c.Warmup = 2
	}
	if c.MicroBatches == 0 {
		c.MicroBatches = 1
	}
	if c.KeepLastModules == 0 {
		c.KeepLastModules = 1
	}
	if c.KeepLastModules < 0 {
		// Ablation: keep nothing. -1 is the canonical form so defaulting
		// is idempotent — Sweep dedups on the defaulted config and Run
		// defaults again, and a 0 here would turn into the keep-1 default
		// on the second pass.
		c.KeepLastModules = -1
	}
	if (c.Strategy == HybridOffload || c.Strategy == OptimOffload) && c.Placement == "" {
		c.Placement = PlacementDRAMFirst
	}
	if c.Strategy == OptimOffload {
		if c.OptimKind == "" {
			c.OptimKind = string(core.OptimAdam)
		}
		if c.Schedule == "" {
			c.Schedule = ScheduleSync
		}
	}
	if c.SteadyState == "on" {
		// "" and "on" are one mode; canonicalize so Sweep's dedup map and
		// the serve result cache treat them as one config.
		c.SteadyState = ""
	}
	return c
}

// StepMetrics is one measured step.
type StepMetrics struct {
	Stats trace.StepStats
	IO    core.StepIO
	// ActPeak/TotalPeak are the memory peaks within this step's window.
	ActPeak    units.Bytes
	TotalPeak  units.Bytes
	Start      time.Duration
	End        time.Duration
	HostTime   time.Duration
	UpdateTime time.Duration
}

// RunResult is the outcome of a measurement run.
type RunResult struct {
	Config  RunConfig
	PerStep []StepMetrics
	// Measured is the last measured step (steady state).
	Measured StepMetrics
	// Mem is the whole-run memory report.
	Mem *gpu.MemReport
	// PlannedBudget is the offload budget the Fig 3 workflow chose.
	PlannedBudget units.Bytes
	// Graph facts for estimates and tables.
	WeightBytes   units.Bytes
	EligibleBytes units.Bytes
	// SSDPeak is the offload hierarchy's resident high-water mark (all
	// tiers combined).
	SSDPeak units.Bytes
	// Tiers reports per-tier traffic for the offloading strategies (one
	// entry for the single-target strategies, DRAM+NVMe for hybrid; the
	// OptimOffload strategy appends its optimizer rungs after the
	// activation rungs).
	Tiers []TierUsage
	// Optim reports the offloaded-optimizer pipeline's outcome (nil for
	// every strategy but OptimOffload).
	Optim *OptimUsage
	// Counters is a snapshot of the runtime counter set at the end of the
	// run (a snapshot because execution arenas are recycled: the live set
	// belongs to the arena and is reset by its next Execute).
	Counters *trace.Counters
	// Trace is the flight-recorder snapshot of a traced run (nil unless
	// RunConfig.Trace was set). Like Counters it is a snapshot: the
	// recorder itself belongs to the arena.
	Trace *spans.Trace
	// SteadyState reports the steady-state fast path's outcome: how many
	// measured steps were simulated, how many were synthesized by
	// extrapolation, and the fallback reason when the run was fully
	// simulated.
	SteadyState SteadyStateInfo
}

// SteadyStateInfo is the per-run visibility of the steady-state fast
// path, carried on RunResult and serialized into serve /v1/plan bodies.
type SteadyStateInfo struct {
	// SimulatedSteps is the number of measured steps actually simulated
	// (warmup steps are always simulated and not counted here).
	SimulatedSteps int `json:"simulated_steps"`
	// ExtrapolatedSteps is the number of measured steps synthesized
	// analytically instead of simulated.
	ExtrapolatedSteps int `json:"extrapolated_steps"`
	// Fallback is why the run was fully simulated ("trace", "faults",
	// "off", "no-convergence"), or "" when the detector converged.
	Fallback string `json:"fallback,omitempty"`
}

// OptimUsage summarizes the offloaded-optimizer pipeline after a run:
// what the placement decided and what the per-step machinery cost.
type OptimUsage struct {
	// Kind/Schedule echo the run's effective optimizer knobs.
	Kind     string `json:"kind"`
	Schedule string `json:"schedule"`
	// StateBytes is the resident FP32 optimizer state across both rungs.
	StateBytes units.Bytes `json:"state_bytes"`
	// DRAMResident/NVMeResident are the rung-resident volumes (states plus
	// the per-weight gradient and parameter shuttle blocks).
	DRAMResident units.Bytes `json:"dram_resident"`
	NVMeResident units.Bytes `json:"nvme_resident"`
	// ShuttleWrite/ShuttleRead are the per-step shuttle volumes the rungs'
	// paths carry (gradients + state write-back down, state + updated
	// parameters up).
	ShuttleWrite units.Bytes `json:"shuttle_write_per_step"`
	ShuttleRead  units.Bytes `json:"shuttle_read_per_step"`
	// UpdateBusy is the host update engine's cumulative busy time over the
	// whole run (warmup + measured).
	UpdateBusy time.Duration `json:"update_busy"`
}

// TierUsage summarizes one rung of the offload hierarchy after a run.
type TierUsage struct {
	Name     string
	Kind     core.TierKind
	Written  units.Bytes
	Read     units.Bytes
	Peak     units.Bytes
	Capacity units.Bytes
}

// StepTime returns the steady-state step time.
func (r *RunResult) StepTime() time.Duration { return r.Measured.Stats.StepTime }

// Throughput returns the steady-state model throughput.
func (r *RunResult) Throughput() units.FLOPSRate { return r.Measured.Stats.ModelThroughput() }

// blockSavedBytes returns the per-block activation bytes the pack hook
// sees (excluding weights).
func blockSavedBytes(g *autograd.Graph) []units.Bytes {
	var prevOut units.Bytes
	var outs []units.Bytes
	saved := make([]units.Bytes, len(g.Blocks))
	for bi, b := range g.Blocks {
		extras := make([]units.Bytes, len(b.ExtraIn))
		for k, src := range b.ExtraIn {
			extras[k] = outs[src]
		}
		saved[bi] = b.SavedBytes(prevOut, extras)
		prevOut = b.Ops[len(b.Ops)-1].OutBytes()
		outs = append(outs, prevOut)
	}
	return saved
}

// eligibleBytes sums the activation bytes the pack hook would offload
// (excluding small tensors' stats — counted, they are noise — and
// weights, which never reach the budget), and returns the final block's
// volume (the bytes the planner keeps resident). A graph with no blocks
// has nothing to offload and nothing to keep: (0, 0).
func eligibleBytes(g *autograd.Graph) (total, last units.Bytes) {
	saved := blockSavedBytes(g)
	if len(saved) == 0 {
		return 0, 0
	}
	for _, sb := range saved {
		total += sb
	}
	return total, saved[len(saved)-1]
}

// blockBwdTimes returns per-block backward kernel time.
func blockBwdTimes(g *autograd.Graph) []time.Duration {
	out := make([]time.Duration, len(g.Blocks))
	for bi, b := range g.Blocks {
		for i := range b.Ops {
			out[bi] += b.Ops[i].BwdTime
		}
	}
	return out
}

// graphTimes sums kernel times per direction.
func graphTimes(g *autograd.Graph) (fwd, bwd time.Duration) {
	for _, b := range g.Blocks {
		for i := range b.Ops {
			fwd += b.Ops[i].FwdTime
			bwd += b.Ops[i].BwdTime
		}
	}
	return fwd, bwd
}

// Run executes one measurement: Compile (hitting the shared plan cache)
// followed by Execute. Sweeps that vary only Budget, Steps, Warmup,
// SSDBandwidthShare, AdaptiveSteps, or SteadyState automatically share
// one compiled plan; callers that want explicit control use Compile +
// Execute.
func Run(cfg RunConfig) (*RunResult, error) {
	plan, err := Compile(cfg)
	if err != nil {
		return nil, err
	}
	return plan.Execute(cfg)
}
