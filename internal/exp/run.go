// Package exp is the experiment harness: it wires the substrates together
// (GPU runtime, PCIe link, SSD array, GDS registry, tensor cache) and runs
// training steps under the placement strategies the paper compares,
// producing the rows of every evaluation table and figure. The cmd/
// tools, the examples and the benchmarks all call into this package so
// the numbers they print come from one code path.
package exp

import (
	"fmt"
	"math"
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/core"
	"ssdtrain/internal/gds"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/models"
	"ssdtrain/internal/pcie"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// Strategy is an activation placement strategy — the three points of the
// paper's recompute-offload-keep design space (§IV-C) plus the CPU
// offloader variant.
type Strategy string

// Strategies.
const (
	// NoOffload keeps all activations in GPU memory (the baseline).
	NoOffload Strategy = "no-offload"
	// SSDTrain offloads activations to the NVMe array.
	SSDTrain Strategy = "ssdtrain"
	// Recompute applies layerwise full activation checkpointing.
	Recompute Strategy = "recompute"
	// CPUOffload offloads activations to pinned host memory.
	CPUOffload Strategy = "cpu-offload"
)

// SSDSetup describes the per-GPU offload array.
type SSDSetup struct {
	Spec   ssd.Spec
	Count  int
	Stripe units.Bytes
}

// PaperArray is the testbed's per-GPU array (Table II): the measured GPU
// owned a RAID0 of 4× Intel Optane P5800X with a 512 KiB stripe.
func PaperArray() SSDSetup {
	return SSDSetup{Spec: ssd.IntelP5800X16TB(), Count: 4, Stripe: 512 * units.KiB}
}

// RunConfig configures one training measurement.
type RunConfig struct {
	Model    models.Config
	Strategy Strategy
	GPU      gpu.Spec
	SSD      SSDSetup
	// Steps measured after Warmup steps (the cache learns its keep-last
	// set during warmup).
	Steps  int
	Warmup int
	// MicroBatches per step (gradient accumulation).
	MicroBatches int
	// Budget overrides the planned offload budget (0 = plan automatically
	// via the Fig 3 workflow).
	Budget units.Bytes
	// PrefetchAhead tunes the cache's prefetch depth in modules: 0 =
	// prefetch all (default), negative = disabled (ablation).
	PrefetchAhead int
	// KeepLastModules keeps the last K modules' activations resident
	// (default 1).
	KeepLastModules int
	// HostCost is the cache CPU overhead charged per hook call.
	HostCost time.Duration
	// DisableGDS forces the bounce-buffer path (ablation).
	DisableGDS bool
	// NoForwarding/NoDedup disable the corresponding cache optimizations
	// (ablations).
	NoForwarding bool
	NoDedup      bool
	// Materialize+Verify run byte-backed offloads with checksum checks.
	Materialize bool
	Verify      bool
	// SSDBandwidthShare scales the array's sequential bandwidths to model
	// co-tenants contending for a shared NVMe array: a fleet simulation that
	// places k equal offloading jobs on one node hands each a 1/k share.
	// 0 (unset) and 1 both mean exclusive access; NaN and values outside
	// [0, 1] are rejected by Run.
	SSDBandwidthShare float64
}

// withDefaults fills unset fields with the paper's setup.
func (c RunConfig) withDefaults() RunConfig {
	if c.GPU.Name == "" {
		c.GPU = gpu.A100PCIe()
	}
	if c.SSD.Count == 0 {
		c.SSD = PaperArray()
	}
	if c.Steps == 0 {
		c.Steps = 3
	}
	if c.Warmup == 0 {
		c.Warmup = 2
	}
	if c.MicroBatches == 0 {
		c.MicroBatches = 1
	}
	if c.KeepLastModules == 0 {
		c.KeepLastModules = 1
	}
	if c.KeepLastModules < 0 {
		c.KeepLastModules = 0 // ablation: keep nothing
	}
	return c
}

// StepMetrics is one measured step.
type StepMetrics struct {
	Stats trace.StepStats
	IO    core.StepIO
	// ActPeak/TotalPeak are the memory peaks within this step's window.
	ActPeak    units.Bytes
	TotalPeak  units.Bytes
	Start      time.Duration
	End        time.Duration
	HostTime   time.Duration
	UpdateTime time.Duration
}

// RunResult is the outcome of a measurement run.
type RunResult struct {
	Config  RunConfig
	PerStep []StepMetrics
	// Measured is the last measured step (steady state).
	Measured StepMetrics
	// Mem is the whole-run memory report.
	Mem *gpu.MemReport
	// PlannedBudget is the offload budget the Fig 3 workflow chose.
	PlannedBudget units.Bytes
	// Graph facts for estimates and tables.
	WeightBytes   units.Bytes
	EligibleBytes units.Bytes
	// SSDPeak is the offload target's resident high-water mark.
	SSDPeak units.Bytes
	// Counters is the runtime counter set.
	Counters *trace.Counters
}

// StepTime returns the steady-state step time.
func (r *RunResult) StepTime() time.Duration { return r.Measured.Stats.StepTime }

// Throughput returns the steady-state model throughput.
func (r *RunResult) Throughput() units.FLOPSRate { return r.Measured.Stats.ModelThroughput() }

// blockSavedBytes returns the per-block activation bytes the pack hook
// sees (excluding weights).
func blockSavedBytes(g *autograd.Graph) []units.Bytes {
	var prevOut units.Bytes
	var outs []units.Bytes
	saved := make([]units.Bytes, len(g.Blocks))
	for bi, b := range g.Blocks {
		extras := make([]units.Bytes, len(b.ExtraIn))
		for k, src := range b.ExtraIn {
			extras[k] = outs[src]
		}
		saved[bi] = b.SavedBytes(prevOut, extras)
		prevOut = b.Ops[len(b.Ops)-1].OutBytes()
		outs = append(outs, prevOut)
	}
	return saved
}

// eligibleBytes sums the activation bytes the pack hook would offload
// (excluding small tensors' stats — counted, they are noise — and
// weights, which never reach the budget).
func eligibleBytes(g *autograd.Graph) (total, last units.Bytes) {
	saved := blockSavedBytes(g)
	for _, sb := range saved {
		total += sb
	}
	return total, saved[len(saved)-1]
}

// blockBwdTimes returns per-block backward kernel time.
func blockBwdTimes(g *autograd.Graph) []time.Duration {
	out := make([]time.Duration, len(g.Blocks))
	for bi, b := range g.Blocks {
		for i := range b.Ops {
			out[bi] += b.Ops[i].BwdTime
		}
	}
	return out
}

// graphTimes sums kernel times per direction.
func graphTimes(g *autograd.Graph) (fwd, bwd time.Duration) {
	for _, b := range g.Blocks {
		for i := range b.Ops {
			fwd += b.Ops[i].FwdTime
			bwd += b.Ops[i].BwdTime
		}
	}
	return fwd, bwd
}

// Run executes one measurement.
func Run(cfg RunConfig) (*RunResult, error) {
	cfg = cfg.withDefaults()
	if s := cfg.SSDBandwidthShare; math.IsNaN(s) || s < 0 || s > 1 {
		return nil, fmt.Errorf("exp: SSD bandwidth share %v outside [0, 1]", s)
	}
	mcfg := cfg.Model
	mcfg.Checkpoint = cfg.Strategy == Recompute

	rt := autograd.NewRuntime(cfg.GPU)
	graph, err := models.Build(mcfg, rt.Cost)
	if err != nil {
		return nil, err
	}

	res := &RunResult{Config: cfg, Counters: rt.Counters, WeightBytes: graph.WeightBytes()}
	total, last := eligibleBytes(graph)
	res.EligibleBytes = total

	var hooks autograd.Hooks
	var cache *core.TensorCache
	var offloader core.Offloader

	switch cfg.Strategy {
	case NoOffload, Recompute:
		hooks = autograd.NoHooks{}
	case SSDTrain, CPUOffload:
		link := pcie.NewLink(rt.Eng, "pcie0", pcie.DefaultGen4x16())
		if cfg.Strategy == SSDTrain {
			spec := cfg.SSD.Spec
			if s := cfg.SSDBandwidthShare; s > 0 && s < 1 {
				spec.SeqWrite = units.Bandwidth(float64(spec.SeqWrite) * s)
				spec.SeqRead = units.Bandwidth(float64(spec.SeqRead) * s)
			}
			devs := make([]*ssd.Device, cfg.SSD.Count)
			for i := range devs {
				devs[i] = ssd.NewDevice(rt.Eng, fmt.Sprintf("nvme%d", i), spec)
			}
			array := ssd.NewArray(rt.Eng, "/mnt/md1", cfg.SSD.Stripe, devs...)
			registry := gds.NewRegistry()
			hook := gds.NewMallocHook(registry)
			hook.Enabled = !cfg.DisableGDS
			rt.Alloc.AddHook(hook)
			offloader = core.NewSSDOffloader(rt.Eng, "/mnt/md1", link, array, registry)
		} else {
			offloader = core.NewCPUOffloader(rt.Eng, "/dev/shm", link, 0)
		}

		budget := cfg.Budget
		if budget == 0 {
			fwd, bwd := graphTimes(graph)
			budget = core.PlanModuleBudget(core.ModulePlan{
				SavedBytes:     blockSavedBytes(graph),
				BwdTime:        blockBwdTimes(graph),
				ReadBandwidth:  offloader.ReadBandwidth(),
				WriteBandwidth: offloader.WriteBandwidth(),
				ForwardTime:    fwd,
				BackwardTime:   bwd,
			})
		}
		res.PlannedBudget = budget
		_ = last

		cache = core.NewTensorCache(core.Config{
			Runtime:         rt,
			Offloader:       offloader,
			Budget:          budget,
			HostCost:        cfg.HostCost,
			PrefetchAhead:   cfg.PrefetchAhead,
			KeepLastModules: cfg.KeepLastModules,
			Verify:          cfg.Verify,
			NoForwarding:    cfg.NoForwarding,
			NoDedup:         cfg.NoDedup,
		})
		cache.RegisterWeights(graph.Weights())
		for _, w := range graph.Weights() {
			// The executor registers the transposed views; pre-register
			// them the way the paper's setup script bookkeeps weights.
			cache.RegisterWeights([]*tensor.Tensor{w.Transpose()})
		}
		hooks = cache
	default:
		return nil, fmt.Errorf("exp: unknown strategy %q", cfg.Strategy)
	}

	exec, err := autograd.NewExecutor(rt, graph, hooks, autograd.ExecConfig{
		MicroBatches: cfg.MicroBatches,
		UpdateCost: func(w *tensor.Tensor) time.Duration {
			// The FP16 training update pipeline touches each parameter
			// and gradient several times per step: gradient unscale +
			// clip (2 passes over grads), the loss-scale overflow check
			// (1 pass), and the SGD update itself (read w, read g,
			// write w) — about 8 parameter-sized passes total.
			return rt.Cost.MemoryBound(8 * w.Bytes())
		},
		AccumCost: func(w *tensor.Tensor) time.Duration {
			return rt.Cost.MemoryBound(3 * w.Bytes())
		},
		Materialize: cfg.Materialize,
	})
	if err != nil {
		return nil, err
	}

	nsteps := cfg.Warmup + cfg.Steps
	for i := 0; i < nsteps; i++ {
		sr := exec.Run()
		m := StepMetrics{
			Stats:      sr.Stats,
			Start:      sr.Start,
			End:        sr.End,
			HostTime:   sr.HostTime,
			UpdateTime: sr.UpdateTime,
		}
		if cache != nil {
			m.IO = cache.LastStep()
			m.Stats.OffloadedBytes = m.IO.Offloaded
			m.Stats.ReloadedBytes = m.IO.Reloaded
			m.Stats.ForwardedBytes = m.IO.Forwarded
		}
		res.PerStep = append(res.PerStep, m)
	}

	rep := rt.Alloc.Finalize(true)
	res.Mem = rep
	for i := range res.PerStep {
		s := &res.PerStep[i]
		s.ActPeak = rep.ActTimeline.PeakBetween(s.Start, s.End)
		s.TotalPeak = rep.Timeline.PeakBetween(s.Start, s.End)
		s.Stats.ActivationPeak = s.ActPeak
		s.Stats.TotalPeak = s.TotalPeak
	}
	res.Measured = res.PerStep[len(res.PerStep)-1]
	if offloader != nil {
		res.SSDPeak = offloader.PeakResident()
	}
	return res, nil
}
