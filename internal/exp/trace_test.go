package exp

import (
	"encoding/json"
	"reflect"
	"testing"

	"ssdtrain/internal/spans"
)

// tracedVariants returns one config per strategy × placement worth
// tracing, small enough for a unit test.
func tracedVariants() []RunConfig {
	ssdSplit := smallCfg(HybridOffload)
	ssdSplit.Placement = PlacementSplit
	ssdSplit.SplitRatio = 0.5
	ssdSplit.DRAMCapacity = 256 << 20
	dramFirst := smallCfg(HybridOffload)
	dramFirst.Placement = PlacementDRAMFirst
	dramFirst.DRAMCapacity = 256 << 20
	ssdOnly := smallCfg(HybridOffload)
	ssdOnly.Placement = PlacementSSDOnly
	return []RunConfig{
		smallCfg(NoOffload),
		smallCfg(Recompute),
		smallCfg(SSDTrain),
		smallCfg(CPUOffload),
		ssdSplit,
		dramFirst,
		ssdOnly,
	}
}

// TestTracedRunDoesNotPerturbResults is the tentpole's correctness
// property: for every strategy and placement, a traced run's RunResult is
// byte-identical to the untraced run's (Trace snapshot aside), on both
// fresh arenas and a reused session. Tracing must observe the simulation,
// never steer it.
func TestTracedRunDoesNotPerturbResults(t *testing.T) {
	for _, cfg := range tracedVariants() {
		cfg := cfg
		t.Run(string(cfg.Strategy)+"/"+string(cfg.Placement), func(t *testing.T) {
			plain, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			traced := cfg
			traced.Trace = true
			got, err := Run(traced)
			if err != nil {
				t.Fatal(err)
			}
			if got.Trace == nil {
				t.Fatal("traced run returned no trace")
			}
			if len(got.Trace.Spans) == 0 {
				t.Fatal("traced run recorded no spans")
			}
			// Byte-identity modulo the knob itself, the snapshot, and the
			// fast-path metadata: a traced run is fully simulated while the
			// untraced one extrapolates its steady state, so their
			// SteadyState reports legitimately differ — everything the
			// simulation produced must still be byte-identical.
			got.Trace = nil
			got.Config.Trace = false
			got.SteadyState = plain.SteadyState
			if !reflect.DeepEqual(plain, got) {
				t.Errorf("traced result differs from untraced (cfg %+v)", cfg)
			}

			// Same property on a reused arena: trace, untrace, trace again
			// on one session; the middle run must match the plain run and
			// both traced runs must match each other.
			plan, err := Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := NewSession(plan)
			if err != nil {
				t.Fatal(err)
			}
			first, err := sess.Execute(traced)
			if err != nil {
				t.Fatal(err)
			}
			mid, err := sess.Execute(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, mid) {
				t.Error("untraced session run after a traced one differs from fresh untraced")
			}
			second, err := sess.Execute(traced)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Error("traced session runs are not reproducible")
			}
		})
	}
}

// TestSessionTraceMatchesFresh pins the recorder's arena-reuse contract:
// the spans recorded on a dirtied, reused session are identical — same
// tracks, same order, same timestamps — to a fresh Plan.Execute's, even
// after a failed run sat between them.
func TestSessionTraceMatchesFresh(t *testing.T) {
	cfg := smallCfg(CPUOffload)
	cfg.Trace = true
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(plan)
	if err != nil {
		t.Fatal(err)
	}

	// Dirty the arena: a clean traced run, then a run that fails
	// mid-simulation on a too-small pinned pool.
	if _, err := sess.Execute(cfg); err != nil {
		t.Fatal(err)
	}
	tight := cfg
	tight.DRAMCapacity = ref.SSDPeak / 2
	if _, err := sess.Execute(tight); err == nil {
		t.Fatal("overflow not reported")
	}

	got, err := sess.Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Trace, got.Trace) {
		t.Error("reused-session trace differs from fresh trace after a failed run")
	}
}

// TestReferenceChromeTraceGolden pins the exported Chrome trace-event
// JSON of the reference config byte-for-byte, and checks it parses as the
// trace-event container format. Regenerate (only for a deliberate
// behaviour change) with `go run ./goldengen`.
func TestReferenceChromeTraceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	blob, err := ReferenceChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(blob), readGolden(t, "testdata/trace_chrome.golden"); got != want {
		t.Errorf("reference Chrome trace diverged from golden (%d vs %d bytes); regenerate with go run ./goldengen if deliberate", len(got), len(want))
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("golden trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("golden trace has no events")
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "pid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
	}
}

// TestTraceFlowLinksOffloadToReload asserts a traced SSD run records
// store and load spans sharing a flow id — the offload→reload linkage the
// Chrome exporter renders as flow arrows.
func TestTraceFlowLinksOffloadToReload(t *testing.T) {
	cfg := smallCfg(SSDTrain)
	cfg.Trace = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stores := map[uint64]bool{}
	linked := 0
	for _, s := range res.Trace.Spans {
		switch s.Kind {
		case spans.KindStore:
			if s.Flow != 0 {
				stores[s.Flow] = true
			}
		case spans.KindLoad:
			if stores[s.Flow] {
				linked++
			}
		}
	}
	if linked == 0 {
		t.Error("no load span shares a flow id with a store span")
	}
}
