package exp

import (
	"testing"

	"ssdtrain/internal/models"
)

func shardModel() models.Config {
	return models.Config{Arch: models.BERT, Hidden: 2048, Layers: 2, Batch: 4,
		HeadDim: 128, SeqLen: 1024, Vocab: 30592, FFNMult: 4, TP: 2, FlashAttention: true}
}

// TestShapeHashCoalescesCheapKnobs pins the routing contract: configs
// that share a compiled plan (differing only in cheap knobs) hash to one
// shard, and configs with different shapes hash apart.
func TestShapeHashCoalescesCheapKnobs(t *testing.T) {
	base := RunConfig{Model: shardModel(), Strategy: SSDTrain}
	h0, err := ShapeHash(base)
	if err != nil {
		t.Fatal(err)
	}
	cheap := base
	cheap.Steps = 7
	cheap.SSDBandwidthShare = 0.5
	cheap.AdaptiveSteps = true
	if h, err := ShapeHash(cheap); err != nil || h != h0 {
		t.Fatalf("cheap-knob variant hashed to %d (err %v), want shard %d", h, err, h0)
	}
	other := base
	other.Strategy = Recompute
	if h, err := ShapeHash(other); err != nil || h == h0 {
		t.Fatalf("different strategy kept shard %d (err %v)", h, err)
	}
	bigger := base
	bigger.Model.Layers = 4
	if h, err := ShapeHash(bigger); err != nil || h == h0 {
		t.Fatalf("different model kept shard %d (err %v)", h, err)
	}
	if _, err := ShapeHash(RunConfig{Model: shardModel(), Strategy: "bogus"}); err == nil {
		t.Fatal("ShapeHash accepted an invalid strategy")
	}
}

// TestConfigHashSeparatesCheapKnobs pins the stale-cache key: unlike the
// shard key, distinct normalized configs (even cheap-knob variants of one
// shape) must hash apart, while spelled-out defaults coincide with their
// defaulted twin.
func TestConfigHashSeparatesCheapKnobs(t *testing.T) {
	base := RunConfig{Model: shardModel(), Strategy: SSDTrain}
	h0, err := ConfigHash(base)
	if err != nil {
		t.Fatal(err)
	}
	cheap := base
	cheap.Steps = 7
	if h, err := ConfigHash(cheap); err != nil || h == h0 {
		t.Fatalf("cheap-knob variant collided on %d (err %v)", h, err)
	}
	spelled := base
	spelled.Steps = 3 // the withDefaults value
	spelled.Warmup = 2
	spelled.MicroBatches = 1
	spelled.KeepLastModules = 1
	if h, err := ConfigHash(spelled); err != nil || h != h0 {
		t.Fatalf("spelled-out defaults hashed to %d (err %v), want %d", h, err, h0)
	}
	if _, err := ConfigHash(RunConfig{Model: shardModel(), Strategy: "bogus"}); err == nil {
		t.Fatal("ConfigHash accepted an invalid strategy")
	}
}
