package exp

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ssdtrain/internal/faults"
	"ssdtrain/internal/units"
)

// specVariants enumerates every strategy × placement × optimizer
// schedule combination that Normalize accepts, each with a sprinkling of
// ablation/measurement knobs so the round-trip covers every field group
// rather than just the zero value.
func specVariants() []RunConfig {
	var out []RunConfig
	for _, strat := range []Strategy{NoOffload, Recompute, SSDTrain, CPUOffload} {
		out = append(out, smallCfg(strat))
	}
	for _, place := range []Placement{"", PlacementDRAMFirst, PlacementSSDOnly, PlacementSplit} {
		cfg := smallCfg(HybridOffload)
		cfg.Placement = place
		cfg.DRAMCapacity = 256 << 20
		if place == PlacementSplit {
			cfg.SplitRatio = 0.5
		}
		out = append(out, cfg)
	}
	for _, kind := range []string{"", "adam", "sgd"} {
		for _, sched := range []string{"", ScheduleSync, ScheduleOverlap} {
			cfg := smallCfg(OptimOffload)
			cfg.OptimKind = kind
			cfg.Schedule = sched
			cfg.DRAMCapacity = 128 << 20
			out = append(out, cfg)
		}
	}
	// One deliberately knob-heavy config so fields outside the strategy
	// groups (ablations, faults, steady-state, contention) round-trip.
	loaded := smallCfg(SSDTrain)
	loaded.Steps = 7
	loaded.Warmup = 1
	loaded.MicroBatches = 3
	loaded.PrefetchAhead = 2
	loaded.KeepLastModules = -1
	loaded.DisableGDS = true
	loaded.NoForwarding = true
	loaded.Trace = true
	loaded.SteadyState = "off"
	loaded.SSDBandwidthShare = 0.5
	loaded.Faults = faults.Spec{DegradeAt: time.Millisecond, DegradeFactor: 0.5}
	out = append(out, loaded)
	return out
}

// TestSpecRoundTrip pins the grouped Spec as a lossless regrouping of
// the flat RunConfig: SpecFor(cfg).RunConfig() returns cfg exactly, the
// two forms normalize to the same canonical config, and both hashes
// agree — for every strategy × placement × schedule combination.
func TestSpecRoundTrip(t *testing.T) {
	for _, cfg := range specVariants() {
		name := string(cfg.Strategy) + "/" + string(cfg.Placement) + "/" + cfg.Schedule
		t.Run(name, func(t *testing.T) {
			spec := SpecFor(cfg)
			back, err := spec.RunConfig()
			if err != nil {
				t.Fatalf("flatten: %v", err)
			}
			if !reflect.DeepEqual(back, cfg) {
				t.Fatalf("round trip not lossless:\n got %+v\nwant %+v", back, cfg)
			}

			flatNorm, err := Normalize(cfg)
			if err != nil {
				t.Fatalf("flat normalize: %v", err)
			}
			specNorm, err := spec.Normalize()
			if err != nil {
				t.Fatalf("spec normalize: %v", err)
			}
			if !reflect.DeepEqual(specNorm, SpecFor(flatNorm)) {
				t.Errorf("normalize(SpecFor(cfg)) != SpecFor(normalize(cfg)):\n got %+v\nwant %+v", specNorm, SpecFor(flatNorm))
			}

			flatShape, err := ShapeHash(cfg)
			if err != nil {
				t.Fatalf("flat shape hash: %v", err)
			}
			specShape, err := spec.ShapeHash()
			if err != nil {
				t.Fatalf("spec shape hash: %v", err)
			}
			if specShape != flatShape {
				t.Errorf("shape hash mismatch: spec %#x, flat %#x", specShape, flatShape)
			}
			flatHash, err := ConfigHash(cfg)
			if err != nil {
				t.Fatalf("flat config hash: %v", err)
			}
			specHash, err := spec.ConfigHash()
			if err != nil {
				t.Fatalf("spec config hash: %v", err)
			}
			if specHash != flatHash {
				t.Errorf("config hash mismatch: spec %#x, flat %#x", specHash, flatHash)
			}
		})
	}
}

// TestSpecDefaultsIdempotent extends the run_test idempotence pin to
// every spec variant, including the canonicalized spellings the new
// strategy introduced (OptimKind/Schedule defaults, SteadyState "on",
// KeepLastModules < 0).
func TestSpecDefaultsIdempotent(t *testing.T) {
	cfgs := specVariants()
	on := smallCfg(SSDTrain)
	on.SteadyState = "on"
	keepNone := smallCfg(SSDTrain)
	keepNone.KeepLastModules = -3
	cfgs = append(cfgs, on, keepNone)
	for _, cfg := range cfgs {
		once := cfg.withDefaults()
		twice := once.withDefaults()
		if !reflect.DeepEqual(once, twice) {
			t.Errorf("withDefaults not idempotent for %+v:\n once  %+v\n twice %+v", cfg, once, twice)
		}
	}
}

// TestSpecOptimizerConflicts pins the only way a Spec can fail to
// flatten: an optimizer group that contradicts the activation strategy.
func TestSpecOptimizerConflicts(t *testing.T) {
	conflicting := SpecFor(smallCfg(SSDTrain))
	conflicting.Optimizer.Offload = true
	if _, err := conflicting.RunConfig(); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("optimizer.offload against strategy %q: got err %v, want conflict", SSDTrain, err)
	}

	cleared := SpecFor(smallCfg(OptimOffload))
	cleared.Optimizer.Offload = false
	if _, err := cleared.RunConfig(); err == nil || !strings.Contains(err.Error(), "requires optimizer.offload") {
		t.Errorf("strategy optim-offload without optimizer.offload: got err %v, want requires", err)
	}

	// The grouped spelling alone selects the strategy.
	grouped := Spec{Model: smallCfg(NoOffload).Model, Optimizer: OptimizerSpec{Offload: true, Schedule: ScheduleOverlap}}
	grouped.Offload.DRAMCapacity = 64 << 20
	cfg, err := grouped.RunConfig()
	if err != nil {
		t.Fatalf("grouped optimizer spelling: %v", err)
	}
	if cfg.Strategy != OptimOffload || cfg.Schedule != ScheduleOverlap {
		t.Errorf("grouped spelling flattened to strategy %q schedule %q", cfg.Strategy, cfg.Schedule)
	}
	if cfg.DRAMCapacity != units.Bytes(64<<20) {
		t.Errorf("grouped spelling lost DRAM capacity: %v", cfg.DRAMCapacity)
	}
}
