package exp

import (
	"ssdtrain/internal/pool"
)

// Sweep executes a batch of measurements with deduplicated work at every
// level: configs that are value-identical run once and share a result,
// configs that differ only in cheap knobs (Budget, Steps, Warmup,
// SSDBandwidthShare, AdaptiveSteps, Placement, DRAMCapacity, SplitRatio)
// share a compiled plan AND a pool of recycled execution arenas, and
// configs that share a model shape reuse one graph template. Results are
// returned in input order; duplicate configs receive the same
// *RunResult. workers bounds parallelism (0 = GOMAXPROCS); simulations
// are independent and deterministic, and sessions reset to a
// just-constructed state between points, so neither the worker count nor
// arena recycling ever changes the results, only the wall-clock time and
// the allocation bill. On error, the lowest-indexed failing config's
// error is returned (also independent of worker count).
func Sweep(workers int, cfgs []RunConfig) ([]*RunResult, error) {
	// Dedup identical configs (after defaulting, so spelled-out and
	// defaulted forms of one measurement coincide). slotOf maps each
	// input to the index of its distinct config in first-occurrence
	// order, so the lowest-indexed failing input is also the
	// lowest-ordered failing distinct config.
	index := make(map[RunConfig]int)
	var distinct []RunConfig
	slotOf := make([]int, len(cfgs))
	for i, cfg := range cfgs {
		key := cfg.withDefaults()
		s, ok := index[key]
		if !ok {
			s = len(distinct)
			index[key] = s
			distinct = append(distinct, key)
		}
		slotOf[i] = s
	}

	// A sweep-local session pool: each worker recycles at most one arena
	// per plan shape across its items, so arena construction is paid
	// O(plans × workers) times instead of O(points).
	sp := NewSessionPool(0)
	runs, err := pool.ParallelMap(workers, distinct, sp.Execute)
	if err != nil {
		return nil, err
	}
	results := make([]*RunResult, len(cfgs))
	for i, s := range slotOf {
		results[i] = runs[s]
	}
	return results, nil
}
