package exp

import (
	"strings"
	"testing"

	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

func TestTable1FeatureMatrix(t *testing.T) {
	m := FeatureMatrix()
	ssdtrain := m["SSDTrain"]
	for _, f := range AllFeatures() {
		if !ssdtrain[f] {
			t.Errorf("SSDTrain missing %q", f)
		}
	}
	// Table I's discriminators: only SSDTrain has the direct GPU–SSD
	// path, async transfer and interoperability.
	for _, sys := range []string{"FlexGen", "LLM-in-a-Flash", "ZeRO-Infinity"} {
		if m[sys][FeatDirectGPUSSD] || m[sys][FeatAsyncTransfer] || m[sys][FeatInteroperability] {
			t.Errorf("%s should not have SSDTrain's distinguishing features", sys)
		}
	}
	if !m["ZeRO-Infinity"][FeatTraining] {
		t.Error("ZeRO-Infinity is a training system")
	}
	if m["FlexGen"][FeatTraining] {
		t.Error("FlexGen is inference-only")
	}
	out := Table1().String()
	if !strings.Contains(out, "SSDTrain") || !strings.Contains(out, "interoperability") {
		t.Errorf("table render:\n%s", out)
	}
}

func TestTable3Agreement(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		ratio := float64(r.Offloaded) / float64(r.Estimate)
		if ratio < 0.80 || ratio > 1.20 {
			t.Errorf("H%d L%d: measured %v vs estimate %v (ratio %.2f) — the paper's agreement is within ~7%%",
				r.Hidden, r.Layers, r.Offloaded, r.Estimate, ratio)
		}
		if r.WriteBW <= 0 {
			t.Errorf("H%d L%d: no write bandwidth", r.Hidden, r.Layers)
		}
	}
	// The paper reports bandwidth decreasing with the hidden dimension
	// (18.0 → 13.8 → 8.76 GB/s); in our reproduction the planner offloads
	// relatively more on the wider configs, so we only require that the
	// largest geometry needs less than the smallest.
	if rows[2].WriteBW >= rows[0].WriteBW {
		t.Errorf("write bandwidth did not drop from H8192 (%v) to H16384 (%v)",
			rows[0].WriteBW, rows[2].WriteBW)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	pts, err := Fig7(12288, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	by := func(s Strategy, b int) ROKPoint {
		for _, p := range pts {
			if p.Strategy == s && p.Batch == b {
				return p
			}
		}
		t.Fatalf("missing point %s B%d", s, b)
		return ROKPoint{}
	}
	for _, b := range []int{8, 16} {
		keep := by(NoOffload, b)
		off := by(SSDTrain, b)
		rec := by(Recompute, b)
		// Same-throughput, lower-memory: the offload point dominates keep.
		if thr := float64(off.Throughput) / float64(keep.Throughput); thr < 0.99 {
			t.Errorf("B%d: offload throughput %.3f of keep", b, thr)
		}
		if off.Peak >= keep.Peak {
			t.Errorf("B%d: offload peak %v not below keep %v", b, off.Peak, keep.Peak)
		}
		// Recompute trades throughput for the smallest peak.
		if rec.Throughput >= keep.Throughput {
			t.Errorf("B%d: recompute throughput not lower", b)
		}
		if rec.Peak >= off.Peak {
			t.Errorf("B%d: recompute peak %v not below offload %v", b, rec.Peak, off.Peak)
		}
	}
	// The §IV-C batch-doubling claim: offload@B16 fits (approximately) in
	// keep@B8's budget. Our reproduction lands within 20% — the residual
	// is in-flight forwarded tensors that the finite store bandwidth
	// cannot drain during forward (see EXPERIMENTS.md).
	if float64(by(SSDTrain, 16).Peak) > 1.20*float64(by(NoOffload, 8).Peak) {
		t.Errorf("offload@B16 peak %v exceeds 1.2× keep@B8 %v — batch doubling fails",
			by(SSDTrain, 16).Peak, by(NoOffload, 8).Peak)
	}
}

func TestFig8aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	rows, err := Fig8a([]int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Improvement <= 0 || r.UpdateSaving <= 0 {
			t.Errorf("B%d: non-positive components %+v", r.Batch, r)
		}
		if i > 0 && r.Improvement <= rows[i-1].Improvement {
			t.Errorf("improvement not increasing with batch: %+v", rows)
		}
		// Update amortization can only approach its bound; its share must
		// exceed compute efficiency at small batch (the paper's "primarily
		// from weights update" for PP-style small micro-batches).
		if r.Batch <= 4 && r.UpdateSaving < r.ComputeEfficiency {
			t.Errorf("B%d: update share %.3f below compute share %.3f",
				r.Batch, r.UpdateSaving, r.ComputeEfficiency)
		}
	}
}

func TestForwardingPreventsStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	cfg := models.PaperConfig(models.BERT, 12288, 3, 16)
	full := units.Bytes(1) << 62
	with, err := Run(RunConfig{Model: cfg, Strategy: SSDTrain, Budget: full, KeepLastModules: -1})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(RunConfig{Model: cfg, Strategy: SSDTrain, Budget: full, KeepLastModules: -1, NoForwarding: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Measured.Stats.ComputeStall > 10*with.Measured.Stats.StepTime/1000 {
		t.Errorf("forwarding on: stall %v not negligible", with.Measured.Stats.ComputeStall)
	}
	if without.Measured.Stats.ComputeStall < 100*with.Measured.Stats.ComputeStall {
		t.Errorf("forwarding off: stall %v did not blow up (on: %v)",
			without.Measured.Stats.ComputeStall, with.Measured.Stats.ComputeStall)
	}
}

func TestFig2MicroBatchRecords(t *testing.T) {
	// Two micro-batches per step: the cache must keep separate records per
	// micro-batch (② in Fig 2) and leak nothing.
	cfg := smallConfig(models.GPT)
	res, err := Run(RunConfig{Model: cfg, Strategy: SSDTrain, MicroBatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured.IO.Leaked != 0 {
		t.Errorf("leaked %d records", res.Measured.IO.Leaked)
	}
	single, err := Run(RunConfig{Model: cfg, Strategy: SSDTrain, MicroBatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two micro-batches pack roughly twice the tensors.
	if res.Measured.IO.Packs < 2*single.Measured.IO.Packs*9/10 {
		t.Errorf("packs %d vs single %d", res.Measured.IO.Packs, single.Measured.IO.Packs)
	}
}

func TestGDSBouncePathReducesSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale geometry")
	}
	cfg := models.PaperConfig(models.BERT, 12288, 3, 16)
	direct, err := Run(RunConfig{Model: cfg, Strategy: SSDTrain})
	if err != nil {
		t.Fatal(err)
	}
	bounce, err := Run(RunConfig{Model: cfg, Strategy: SSDTrain, DisableGDS: true})
	if err != nil {
		t.Fatal(err)
	}
	// The compatibility path halves store bandwidth: less memory freed.
	if bounce.Measured.ActPeak <= direct.Measured.ActPeak {
		t.Errorf("bounce peak %v not above direct %v", bounce.Measured.ActPeak, direct.Measured.ActPeak)
	}
	// But still no slowdown (stores are off the critical path).
	ratio := float64(bounce.StepTime()) / float64(direct.StepTime())
	if ratio > 1.02 {
		t.Errorf("bounce path slowed the step by %.1f%%", (ratio-1)*100)
	}
}

func TestCPUOffloaderPoolSizedByProfiling(t *testing.T) {
	cfg := smallConfig(models.BERT)
	res, err := Run(RunConfig{Model: cfg, Strategy: CPUOffload})
	if err != nil {
		t.Fatal(err)
	}
	if res.SSDPeak == 0 {
		t.Error("pinned pool peak not tracked")
	}
}
