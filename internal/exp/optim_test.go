package exp

import (
	"testing"

	"ssdtrain/internal/spans"
	"ssdtrain/internal/units"
)

// optimVariants covers the optimizer-offload strategy across both step
// schedules and both residency extremes: grant 0 puts every state on the
// NVMe rung (host link contention), a grant beyond the working set pins
// everything in DRAM (pure update/compute overlap).
func optimVariants() []RunConfig {
	var out []RunConfig
	for _, sched := range []string{ScheduleSync, ScheduleOverlap} {
		for _, grant := range []units.Bytes{0, optimProbeGrant} {
			cfg := smallCfg(OptimOffload)
			cfg.Schedule = sched
			cfg.DRAMCapacity = grant
			out = append(out, cfg)
		}
	}
	return out
}

// TestOptimSteadyStateByteIdentical extends the steady-state property to
// the optimizer-offload strategy: for both schedules at both residency
// extremes, the extrapolated RunResult — including the per-tier
// optimizer accounting and the update engine's busy time — is
// byte-identical to full simulation, or the fast path reports a clean
// named fallback and simulates everything.
func TestOptimSteadyStateByteIdentical(t *testing.T) {
	for _, base := range optimVariants() {
		for _, steps := range []int{3, 50} {
			cfg := base
			cfg.Steps = steps
			name := cfg.Schedule + "/" + cfg.DRAMCapacity.String()
			t.Run(name, func(t *testing.T) {
				fast := requireSteadyIdentical(t, cfg)
				switch fast.SteadyState.Fallback {
				case "", steadyFallbackNoConv:
				default:
					t.Errorf("unexpected fallback %q on a plain optim run", fast.SteadyState.Fallback)
				}
				if fast.SteadyState.Fallback == "" && steps == 50 && fast.SteadyState.ExtrapolatedSteps == 0 {
					t.Error("50-step run converged nothing: fast path never extrapolated")
				}
				if got := fast.SteadyState.SimulatedSteps + fast.SteadyState.ExtrapolatedSteps; got != steps {
					t.Errorf("simulated %d + extrapolated %d != %d steps",
						fast.SteadyState.SimulatedSteps, fast.SteadyState.ExtrapolatedSteps, steps)
				}
				if fast.Optim == nil {
					t.Fatal("optim run reported no optimizer usage")
				}
				if fast.Optim.UpdateBusy <= 0 {
					t.Error("optim run reported zero update-engine busy time")
				}
			})
		}
	}
}

// TestOptimTraceAttribution pins the flight-recorder story for the new
// strategy: a traced run carries the offloaded update spans, and the
// overlap schedule's deferred work shows up as either fwd(t+1) stall
// spans ("optim-wait") or a step-boundary drain window ("optim-drain") —
// the two places its cost can land.
func TestOptimTraceAttribution(t *testing.T) {
	for _, cfg := range optimVariants() {
		cfg.Trace = true
		name := cfg.Schedule + "/" + cfg.DRAMCapacity.String()
		t.Run(name, func(t *testing.T) {
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Trace == nil {
				t.Fatal("traced run returned no trace")
			}
			updates, overlapSpans, waits := 0, 0, 0
			for _, s := range got.Trace.Spans {
				switch {
				case s.Kind == spans.KindOptimOffload:
					updates++
				case s.Kind == spans.KindOptimOverlap:
					overlapSpans++
				case s.Kind == spans.KindStall && s.Name == "optim-wait":
					waits++
				}
			}
			if updates == 0 {
				t.Error("no offloaded optimizer update spans recorded")
			}
			if cfg.Schedule == ScheduleOverlap && overlapSpans == 0 && waits == 0 {
				t.Error("overlap run recorded neither optim-wait stalls nor an optim-drain window")
			}
			if cfg.Schedule == ScheduleSync && waits > 0 {
				t.Errorf("sync run recorded %d optim-wait stalls; the barrier should absorb them", waits)
			}
		})
	}
}

// TestOptimOverlapCrossover pins the headline comparison the OptimSweep
// figure plots: with the working set DRAM-resident the overlap schedule
// beats sync (the update work hides under fwd(t+1)), and offloading the
// optimizer is never free relative to the activation-only baseline.
func TestOptimOverlapCrossover(t *testing.T) {
	sync := smallCfg(OptimOffload)
	sync.DRAMCapacity = optimProbeGrant
	sync.Schedule = ScheduleSync
	overlap := sync
	overlap.Schedule = ScheduleOverlap
	res, err := Sweep(0, []RunConfig{sync, overlap})
	if err != nil {
		t.Fatal(err)
	}
	if s, o := res[0].StepTime(), res[1].StepTime(); o >= s {
		t.Errorf("DRAM-resident overlap step %v not below sync %v", o, s)
	}
}
