package exp

import (
	"fmt"
	"time"

	"ssdtrain/internal/core"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/models"
	"ssdtrain/internal/parallel"
	"ssdtrain/internal/perfmodel"
	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// Fig6Row is one (model, geometry) column of Fig 6: step time and
// activation memory peak with and without SSDTrain.
type Fig6Row struct {
	Arch          models.Arch
	Hidden        int
	Layers        int
	BaseStep      time.Duration
	OffloadStep   time.Duration
	BasePeak      units.Bytes
	OffloadPeak   units.Bytes
	PeakReduction float64 // fraction, e.g. 0.40
	Overhead      float64 // step-time ratio minus 1
}

// Fig6 measures all nine (architecture × geometry) evaluation points with
// batch size 16 (§IV-B). The base/offload pairs run through the
// deduplicated sweep, so both strategies of one column share a single
// graph template and the points execute concurrently.
func Fig6(batch int) ([]Fig6Row, error) {
	if batch == 0 {
		batch = 16
	}
	type point struct {
		arch   models.Arch
		hidden int
		layers int
	}
	var points []point
	var specs []Spec
	for _, arch := range []models.Arch{models.BERT, models.T5, models.GPT} {
		for _, g := range models.Fig6Geometries() {
			cfg := models.PaperConfig(arch, g[0], g[1], batch)
			points = append(points, point{arch, g[0], g[1]})
			specs = append(specs,
				Spec{Model: cfg, Offload: OffloadSpec{Strategy: NoOffload}},
				Spec{Model: cfg, Offload: OffloadSpec{Strategy: SSDTrain}})
		}
	}
	results, err := SweepSpecs(0, specs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig6Row, len(points))
	for i, p := range points {
		base, off := results[2*i], results[2*i+1]
		rows[i] = Fig6Row{
			Arch:          p.arch,
			Hidden:        p.hidden,
			Layers:        p.layers,
			BaseStep:      base.StepTime(),
			OffloadStep:   off.StepTime(),
			BasePeak:      base.Measured.ActPeak,
			OffloadPeak:   off.Measured.ActPeak,
			PeakReduction: 1 - float64(off.Measured.ActPeak)/float64(base.Measured.ActPeak),
			Overhead:      float64(off.StepTime())/float64(base.StepTime()) - 1,
		}
	}
	return rows, nil
}

// ROKPoint is one point on the recompute-offload-keep curve (Fig 7): a
// strategy at a batch size, plotted as (activation peak, throughput).
type ROKPoint struct {
	Strategy   Strategy
	Batch      int
	Peak       units.Bytes
	Throughput units.FLOPSRate
	StepTime   time.Duration
}

// Fig7 sweeps the ROK design space for a 3-layer BERT at the given hidden
// dimension (the paper uses 12288 and 14336).
func Fig7(hidden int, batches []int) ([]ROKPoint, error) {
	if len(batches) == 0 {
		batches = []int{4, 8, 16}
	}
	type point struct {
		strat Strategy
		batch int
	}
	var points []point
	var specs []Spec
	for _, strat := range []Strategy{SSDTrain, NoOffload, Recompute} {
		for _, b := range batches {
			points = append(points, point{strat, b})
			specs = append(specs, Spec{
				Model:   models.PaperConfig(models.BERT, hidden, 3, b),
				Offload: OffloadSpec{Strategy: strat},
			})
		}
	}
	results, err := SweepSpecs(0, specs)
	if err != nil {
		return nil, err
	}
	pts := make([]ROKPoint, len(points))
	for i, p := range points {
		res := results[i]
		pts[i] = ROKPoint{
			Strategy:   p.strat,
			Batch:      p.batch,
			Peak:       res.Measured.ActPeak,
			Throughput: res.Throughput(),
			StepTime:   res.StepTime(),
		}
	}
	return pts, nil
}

// Fig8aRow decomposes the throughput improvement of micro-batch size B
// over B=1 into weight-update amortization and compute efficiency
// (Fig 8a).
type Fig8aRow struct {
	Batch int
	// Improvement is thr(B)/thr(1) - 1.
	Improvement float64
	// UpdateSaving is the share from amortizing the weight update.
	UpdateSaving float64
	// ComputeEfficiency is the share from better GPU utilization.
	ComputeEfficiency float64
}

// Fig8a measures the breakdown for a 3-layer hidden-12288 BERT without
// offloading (§IV-D "Impact of larger micro-batch size").
func Fig8a(batches []int) ([]Fig8aRow, error) {
	if len(batches) == 0 {
		batches = []int{2, 4, 8, 16}
	}
	type meas struct {
		perTokenAll    float64 // seconds per token, full step
		perTokenNoUpd  float64 // seconds per token, update excluded
		tokensPerBatch float64
	}
	measure := func(b int) (meas, error) {
		cfg := models.PaperConfig(models.BERT, 12288, 3, b)
		res, err := Spec{Model: cfg, Offload: OffloadSpec{Strategy: NoOffload}}.Measure()
		if err != nil {
			return meas{}, err
		}
		upd := res.Measured.UpdateTime
		tokens := float64(cfg.Tokens())
		return meas{
			perTokenAll:    res.StepTime().Seconds() / tokens,
			perTokenNoUpd:  (res.StepTime() - upd).Seconds() / tokens,
			tokensPerBatch: tokens,
		}, nil
	}
	base, err := measure(1)
	if err != nil {
		return nil, err
	}
	updPerStep := base.perTokenAll - base.perTokenNoUpd // per token at B=1
	var rows []Fig8aRow
	for _, b := range batches {
		m, err := measure(b)
		if err != nil {
			return nil, err
		}
		total := base.perTokenAll/m.perTokenAll - 1
		// Hypothetical: amortize the update only, keep B=1 compute
		// efficiency.
		hyp := base.perTokenNoUpd + updPerStep/float64(b)
		updShare := base.perTokenAll/hyp - 1
		rows = append(rows, Fig8aRow{
			Batch:             b,
			Improvement:       total,
			UpdateSaving:      updShare,
			ComputeEfficiency: total - updShare,
		})
	}
	return rows, nil
}

// Table3Row compares the measured per-GPU offloaded amount against the
// analytic estimate and reports the required PCIe write bandwidth
// (Table III).
type Table3Row struct {
	Hidden    int
	Layers    int
	Offloaded units.Bytes
	Estimate  units.Bytes
	WriteBW   units.Bandwidth
}

// Table3 runs the BERT batch-16 measurements.
func Table3() ([]Table3Row, error) {
	geoms := models.Fig6Geometries()
	specs := make([]Spec, len(geoms))
	for i, g := range geoms {
		specs[i] = Spec{
			Model:   models.PaperConfig(models.BERT, g[0], g[1], 16),
			Offload: OffloadSpec{Strategy: SSDTrain},
		}
	}
	results, err := SweepSpecs(0, specs)
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, len(geoms))
	for i, g := range geoms {
		res := results[i]
		off := res.Measured.IO.Offloaded
		rows[i] = Table3Row{
			Hidden:    g[0],
			Layers:    g[1],
			Offloaded: off,
			Estimate:  table3Estimate(specs[i].Model, res),
			WriteBW:   units.BandwidthOf(off, res.StepTime()/2),
		}
	}
	return rows, nil
}

// table3Estimate is the paper's "model estimate" of the offload amount:
// the analytic activation formulas (not the op graph) fed through the
// same Fig 3 planning workflow the framework uses. Agreement between
// this estimate and the measured offload volume validates the §III-D
// activation model, exactly as Table III does.
func table3Estimate(cfg models.Config, res *RunResult) units.Bytes {
	sys := perfmodel.System{
		LLM: perfmodel.LLM{
			Hidden: cfg.Hidden, Layers: cfg.Layers, Seq: cfg.SeqLen,
			Vocab: cfg.Vocab, Causal: cfg.Arch == models.GPT,
		},
		Par:    parallel.Spec{TP: cfg.TP, PP: 1, DP: 1, MicroBatch: cfg.Batch, MicroBatches: 1},
		GPU:    res.Config.GPU,
		Fabric: parallel.DefaultA100Fabric(),
	}
	cost := gpu.DefaultCostModel(res.Config.GPU)
	layerFwd, layerBwd := sys.LayerTimes(cost)
	layerBytes := sys.ActivationBytesPerLayer()

	sbh := units.Bytes(int64(cfg.SeqLen) * int64(cfg.Batch) * int64(cfg.Hidden))
	n, h, v := int64(cfg.Tokens()), int64(cfg.Hidden), int64(cfg.Vocab/cfg.TP)
	embedBytes := 3 * sbh                   // embedding output (2sbh) + mask (sbh)
	headBytes := 4*sbh + units.Bytes(2*n*v) // two LN/lm inputs + probabilities
	headBwd := 2*cost.Matmul(n, h, v, 2) + cost.MemoryBound(units.Bytes(6*n*v))

	saved := []units.Bytes{embedBytes}
	bwd := []time.Duration{cost.MemoryBound(2 * embedBytes)}
	for i := 0; i < cfg.Layers; i++ {
		saved = append(saved, layerBytes)
		bwd = append(bwd, layerBwd)
	}
	saved = append(saved, headBytes)
	bwd = append(bwd, headBwd)

	var fwdTotal time.Duration
	for range saved {
		fwdTotal += layerFwd // head/embed approximated at layer cost scale
	}
	return core.PlanModuleBudget(core.ModulePlan{
		SavedBytes:     saved,
		BwdTime:        bwd,
		ReadBandwidth:  res.Config.SSD.Spec.SeqRead * units.Bandwidth(res.Config.SSD.Count),
		WriteBandwidth: res.Config.SSD.Spec.SeqWrite * units.Bandwidth(res.Config.SSD.Count),
		ForwardTime:    time.Duration(float64(layerFwd) * float64(cfg.Layers+1)),
		BackwardTime:   time.Duration(float64(layerBwd)*float64(cfg.Layers)) + headBwd,
	})
}

// Fig6Table renders Fig 6 as text.
func Fig6Table(rows []Fig6Row) *trace.Table {
	t := trace.NewTable("Fig 6 — step time and activation memory peak (SSDTrain vs no offloading)",
		"model", "geometry", "step(base)", "step(ssdtrain)", "overhead", "peak(base)", "peak(ssdtrain)", "reduction")
	for _, r := range rows {
		t.AddRow(string(r.Arch),
			geomLabel(r.Hidden, r.Layers),
			r.BaseStep.Round(time.Millisecond), r.OffloadStep.Round(time.Millisecond),
			pct(r.Overhead), r.BasePeak, r.OffloadPeak, pct(-r.PeakReduction))
	}
	return t
}

// Fig7Table renders the recompute-offload-keep points as text.
func Fig7Table(hidden int, pts []ROKPoint) *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Fig 7 — recompute-offload-keep design space (BERT H%d L3)", hidden),
		"strategy", "batch", "activation peak", "throughput", "step")
	for _, p := range pts {
		t.AddRow(string(p.Strategy), p.Batch, p.Peak, p.Throughput, p.StepTime.Round(time.Millisecond))
	}
	return t
}

// Table3Table renders the offload-volume validation rows as text.
func Table3Table(rows []Table3Row) *trace.Table {
	t := trace.NewTable("Table III — measured vs estimated offload volume (BERT, batch 16)",
		"geometry", "offloaded", "estimate", "ratio", "write BW")
	for _, r := range rows {
		t.AddRow(geomLabel(r.Hidden, r.Layers), r.Offloaded, r.Estimate,
			fmt.Sprintf("%.2f", float64(r.Offloaded)/float64(r.Estimate)), r.WriteBW)
	}
	return t
}

func geomLabel(h, l int) string {
	return fmt.Sprintf("H%d L%d", h, l)
}

func pct(f float64) string {
	return fmt.Sprintf("%+.1f%%", f*100)
}
