package exp

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"ssdtrain/internal/core"
	"ssdtrain/internal/faults"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/units"
)

// neverFiring is a fault spec whose every trigger sits hours past any
// test run's end: armed, consulted, but never answering "faulted".
func neverFiring() faults.Spec {
	return faults.Spec{
		DeviceDeathAt: 1000 * time.Hour,
		Device:        1,
		DegradeAt:     2000 * time.Hour,
		DegradeFactor: 0.5,
		DegradeFor:    time.Hour,
	}
}

// TestFaultsNeverFiringByteIdentical is the satellite property pin: for
// every fault-capable strategy × placement, a schedule that never fires
// produces a result identical to the fault-free run in everything but
// the echoed config — arming the controller must cost nothing
// observable. (The committed goldens stay valid for the same reason:
// their configs carry the zero Spec.)
func TestFaultsNeverFiringByteIdentical(t *testing.T) {
	cases := map[string]RunConfig{
		"ssdtrain": smallCfg(SSDTrain),
		"hybrid/ssd-only": func() RunConfig {
			c := smallCfg(HybridOffload)
			c.Placement = PlacementSSDOnly
			return c
		}(),
		"hybrid/dram-first": func() RunConfig {
			c := smallCfg(HybridOffload)
			c.Placement = PlacementDRAMFirst
			c.DRAMCapacity = 256 * units.MiB
			return c
		}(),
		"hybrid/split": func() RunConfig {
			c := smallCfg(HybridOffload)
			c.Placement = PlacementSplit
			c.SplitRatio = 0.5
			c.DRAMCapacity = 256 * units.MiB
			return c
		}(),
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			base, err := Run(cfg)
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			armed := cfg
			armed.Faults = neverFiring()
			got, err := Run(armed)
			if err != nil {
				t.Fatalf("armed run: %v", err)
			}
			got.Config = base.Config
			// An armed (even never-firing) spec forces full simulation
			// while the fault-free run extrapolates; the metadata differs
			// by design, the simulation outputs must not.
			got.SteadyState = base.SteadyState
			if !reflect.DeepEqual(base, got) {
				t.Errorf("never-firing schedule perturbed the run (step %v vs %v, actpeak %v vs %v)",
					got.StepTime(), base.StepTime(), got.Measured.ActPeak, base.Measured.ActPeak)
			}
		})
	}
}

// fullOffloadCfg pins the budget far above the eligible set, forcing
// every activation through the array — the memory-constrained posture
// where array faults have to show up somewhere.
func fullOffloadCfg() RunConfig {
	cfg := smallCfg(SSDTrain)
	cfg.Budget = units.Bytes(1) << 62
	return cfg
}

// TestFaultDegradeVisible: a degradation window mid-run slows stores, so
// the cache forwards more from GPU copies and the activation peak rises
// (with forwarding on, bandwidth faults surface as memory pressure, not
// step time — the same physics as the SSDBandwidthShare knob).
func TestFaultDegradeVisible(t *testing.T) {
	base := fullOffloadCfg()
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	deg := base
	deg.Faults = faults.Spec{DegradeAt: time.Millisecond, DegradeFactor: 0.25}
	got, err := Run(deg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Measured.ActPeak <= healthy.Measured.ActPeak {
		t.Errorf("degraded array did not raise the activation peak: %v <= healthy %v",
			got.Measured.ActPeak, healthy.Measured.ActPeak)
	}
}

// TestFaultMemberDeathRedistributes: one member dying mid-run moves its
// stripe share to the survivors — the run completes, but the thinner,
// rebuild-taxed array leaves a visibly higher activation peak.
func TestFaultMemberDeathRedistributes(t *testing.T) {
	base := fullOffloadCfg()
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	death := base
	death.Faults = faults.Spec{DeviceDeathAt: 5 * time.Millisecond, Device: 1}
	got, err := Run(death)
	if err != nil {
		t.Fatalf("a member death must degrade, not fail, the run: %v", err)
	}
	if got.Measured.ActPeak <= healthy.Measured.ActPeak {
		t.Errorf("member death left the activation peak unchanged: %v <= healthy %v",
			got.Measured.ActPeak, healthy.Measured.ActPeak)
	}
}

// TestSessionReusableAfterDeviceFailure is the satellite-2 pin: a
// whole-array death surfaces as *core.DeviceFailedError through
// Session.Execute, and the same arena then serves fault-free runs
// byte-identical to a fresh Execute — and fails identically again when
// re-armed.
func TestSessionReusableAfterDeviceFailure(t *testing.T) {
	base := smallCfg(SSDTrain)
	plan, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := plan.Execute(base)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(plan)
	if err != nil {
		t.Fatal(err)
	}
	dead := base
	dead.Faults = faults.Spec{DeviceDeathAt: 20 * time.Millisecond, Device: -1}

	_, err = sess.Execute(dead)
	var dfe *core.DeviceFailedError
	if !errors.As(err, &dfe) {
		t.Fatalf("whole-array death: got %v, want *core.DeviceFailedError", err)
	}
	firstAt := dfe.At

	got, err := sess.Execute(base)
	if err != nil {
		t.Fatalf("healthy execute after failure: %v", err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Error("arena dirtied by a device failure no longer matches a fresh Execute")
	}

	_, err = sess.Execute(dead)
	if !errors.As(err, &dfe) {
		t.Fatalf("re-armed death: got %v, want *core.DeviceFailedError", err)
	}
	if dfe.At != firstAt {
		t.Errorf("failure time drifted across session reuse: %v then %v", firstAt, dfe.At)
	}

	if got, err = sess.Execute(base); err != nil {
		t.Fatalf("second healthy execute: %v", err)
	} else if !reflect.DeepEqual(ref, got) {
		t.Error("second recovery no longer matches a fresh Execute")
	}
}

// TestFaultTracedMatchesUntraced extends the flight recorder's
// observe-don't-perturb contract to faulted runs, and pins the fault and
// rebuild spans the attribution view depends on.
func TestFaultTracedMatchesUntraced(t *testing.T) {
	cfg := smallCfg(SSDTrain)
	cfg.Faults = faults.Spec{DeviceDeathAt: 50 * time.Millisecond, Device: 1}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced := cfg
	traced.Trace = true
	got, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil {
		t.Fatal("traced run returned no trace")
	}
	var nFault, nRebuild int
	for _, sp := range got.Trace.Spans {
		switch sp.Kind {
		case spans.KindFault:
			nFault++
		case spans.KindRebuild:
			nRebuild++
		}
	}
	if nFault == 0 || nRebuild == 0 {
		t.Errorf("trace misses fault attribution: %d fault spans, %d rebuild spans", nFault, nRebuild)
	}
	got.Trace = nil
	got.Config.Trace = false
	// Fallback metadata differs by design ("trace" vs "faults"); the
	// simulation outputs must not.
	got.SteadyState = plain.SteadyState
	if !reflect.DeepEqual(plain, got) {
		t.Error("tracing a faulted run changed its result")
	}
}
