package trace

import (
	"fmt"
	"strings"
)

// Table renders experiment results as aligned text, the output format of
// the cmd/ tools and the bench harness (one table per paper artifact).
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Rows returns the formatted row cells, for assertions in tests.
func (t *Table) Rows() [][]string { return t.rows }
