package trace

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ssdtrain/internal/units"
)

func TestMemTimelinePeak(t *testing.T) {
	m := NewMemTimeline("test", true)
	m.Add(0, 100)
	m.Add(time.Millisecond, 200)
	m.Add(2*time.Millisecond, -150)
	m.Add(3*time.Millisecond, 50)
	if m.Peak() != 300 {
		t.Errorf("peak = %v", m.Peak())
	}
	if m.PeakAt() != time.Millisecond {
		t.Errorf("peakAt = %v", m.PeakAt())
	}
	if m.Current() != 200 {
		t.Errorf("current = %v", m.Current())
	}
	if len(m.Samples()) != 4 {
		t.Errorf("samples = %d", len(m.Samples()))
	}
}

func TestMemTimelineBackwardsTimePanics(t *testing.T) {
	m := NewMemTimeline("test", false)
	m.Add(time.Millisecond, 10)
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	m.Add(0, 10)
}

func TestMemTimelineNegativePanics(t *testing.T) {
	m := NewMemTimeline("test", false)
	m.Add(0, 10)
	defer func() {
		if recover() == nil {
			t.Error("negative total did not panic")
		}
	}()
	m.Add(time.Millisecond, -20)
}

func TestMemTimelineResetPeak(t *testing.T) {
	m := NewMemTimeline("test", false)
	m.Add(0, 300)
	m.Add(time.Millisecond, -250)
	m.ResetPeak()
	m.Add(2*time.Millisecond, 100)
	if m.Peak() != 150 {
		t.Errorf("peak after reset = %v", m.Peak())
	}
}

func TestPeakBetween(t *testing.T) {
	m := NewMemTimeline("test", true)
	m.Add(0, 100)
	m.Add(10*time.Millisecond, 400) // 500
	m.Add(20*time.Millisecond, -450)
	m.Add(30*time.Millisecond, 200) // 250
	cases := []struct {
		from, to time.Duration
		want     units.Bytes
	}{
		{0, 40 * time.Millisecond, 500},
		{15 * time.Millisecond, 25 * time.Millisecond, 500}, // carry-in level
		{25 * time.Millisecond, 40 * time.Millisecond, 250},
		{21 * time.Millisecond, 29 * time.Millisecond, 50}, // between events
		{40 * time.Millisecond, 50 * time.Millisecond, 250},
	}
	for _, c := range cases {
		if got := m.PeakBetween(c.from, c.to); got != c.want {
			t.Errorf("PeakBetween(%v,%v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

// Property: windowed peak never exceeds the global peak, and the full
// window reproduces it.
func TestPeakBetweenProperty(t *testing.T) {
	f := func(deltas []int16) bool {
		m := NewMemTimeline("q", true)
		var cur units.Bytes
		at := time.Duration(0)
		for _, d := range deltas {
			dd := units.Bytes(d)
			if cur+dd < 0 {
				dd = -cur
			}
			m.Add(at, dd)
			cur += dd
			at += time.Millisecond
		}
		full := m.PeakBetween(0, at+time.Millisecond)
		if full != m.Peak() {
			return false
		}
		half := m.PeakBetween(0, at/2)
		return half <= full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMemTimelineMaxSamples pins the bounded-recording regression: a
// capped recording timeline must stay within its cap, keep the global
// peak sample alive through compression, and remain deterministic.
func TestMemTimelineMaxSamples(t *testing.T) {
	const cap = 64
	build := func() *MemTimeline {
		m := NewMemTimeline("capped", true)
		m.SetMaxSamples(cap)
		for i := 0; i < 10_000; i++ {
			// Sawtooth with one towering spike mid-run.
			d := units.Bytes(i%17 + 1)
			if i%2 == 1 {
				d = -units.Bytes(i % 17)
			}
			if i == 5_000 {
				d = 1 << 30
			}
			m.Add(time.Duration(i)*time.Microsecond, d)
			if i == 5_001 {
				continue
			}
			if i == 5_002 {
				m.Add(time.Duration(i)*time.Microsecond+time.Nanosecond, -(1 << 30))
			}
		}
		return m
	}
	m := build()
	if got := len(m.Samples()); got > cap {
		t.Errorf("samples = %d, cap = %d", got, cap)
	}
	// The exact peak tracker is unaffected by downsampling.
	if m.Peak() < 1<<30 {
		t.Errorf("peak lost: %v", m.Peak())
	}
	// The peak's sample survives pairwise-max compression: PeakBetween
	// over the full run still finds the spike.
	if got := m.PeakBetween(0, time.Hour); got != m.Peak() {
		t.Errorf("windowed peak %v != exact peak %v after compression", got, m.Peak())
	}
	// Deterministic: two identical runs retain identical samples.
	a, b := build().Samples(), m.Samples()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic sample count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestMemTimelineUncappedExact pins the default: without a cap every
// sample is retained, byte-identical to the pre-knob behaviour.
func TestMemTimelineUncappedExact(t *testing.T) {
	m := NewMemTimeline("exact", true)
	const n = 5_000
	for i := 0; i < n; i++ {
		m.Add(time.Duration(i)*time.Microsecond, 1)
	}
	if got := len(m.Samples()); got != n {
		t.Errorf("samples = %d, want %d", got, n)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("b", 2)
	c.Add("a", 1)
	c.Add("b", 3)
	if c.Get("b") != 5 || c.Get("a") != 1 || c.Get("missing") != 0 {
		t.Errorf("counter values wrong: %s", c)
	}
	if got := c.String(); got != "a=1 b=5" {
		t.Errorf("String() = %q", got)
	}
}

func TestStepStats(t *testing.T) {
	s := StepStats{
		StepTime:       time.Second,
		ModelFLOPs:     100 * units.TFLOP,
		OffloadedBytes: 10 * units.GB,
	}
	if s.ModelThroughput() != units.FLOPSRate(100*units.TFLOPS) {
		t.Errorf("throughput = %v", s.ModelThroughput())
	}
	if s.WriteBandwidth() != units.Bandwidth(10*units.GBps) {
		t.Errorf("write bw = %v", s.WriteBandwidth())
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", "x")
	out := tab.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "alpha") {
		t.Errorf("table output missing parts:\n%s", out)
	}
	if !strings.Contains(out, "1.50") {
		t.Errorf("float not formatted: %s", out)
	}
	if len(tab.Rows()) != 2 {
		t.Errorf("rows = %d", len(tab.Rows()))
	}
}
