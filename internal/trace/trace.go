// Package trace collects the measurements the paper reports: byte-accurate
// memory timelines with peak tracking, named counters for cache behaviour
// (offloads, forwards, dedup hits), and per-step timing. Every sample is
// stamped with virtual time so traces are comparable across runs.
package trace

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"

	"ssdtrain/internal/units"
)

// MemSample is one point in a memory timeline.
type MemSample struct {
	At    time.Duration
	Total units.Bytes
}

// MemTimeline tracks a running byte total over virtual time and remembers
// the peak. Allocations and frees arrive in virtual-time order from the
// simulation engine.
type MemTimeline struct {
	name    string
	cur     units.Bytes
	peak    units.Bytes
	peakAt  time.Duration
	last    time.Duration
	samples []MemSample
	record  bool
	// maxSamples caps the retained sample count (0 = exact retention).
	maxSamples int
}

// NewMemTimeline creates a timeline. If record is true every sample is
// retained for plotting/golden tests; otherwise only current and peak are
// kept (cheap enough for big sweeps).
func NewMemTimeline(name string, record bool) *MemTimeline {
	return &MemTimeline{name: name, record: record}
}

// Name returns the timeline's label.
func (m *MemTimeline) Name() string { return m.name }

// SetMaxSamples bounds the recorded sample count: once the timeline holds
// n samples, recording halves them in place (keeping, of each adjacent
// pair, the higher level — so every retained sample is a real level and
// local peaks survive) before appending. The bound turns a recording
// timeline's growth from linear in run length into amortized constant
// memory, at the cost of PeakBetween resolution between surviving
// samples; the default (0) retains every sample exactly, which the
// harness's per-step peak attribution depends on. n < 2 other than 0 is
// clamped to 2 so compression always makes room.
func (m *MemTimeline) SetMaxSamples(n int) {
	if n != 0 && n < 2 {
		n = 2
	}
	m.maxSamples = n
}

// MaxSamples returns the configured sample cap (0 = unbounded).
func (m *MemTimeline) MaxSamples() int { return m.maxSamples }

// compress halves the sample buffer in place, keeping of each adjacent
// pair the sample with the higher level (the later one on ties, biasing
// toward fresher timestamps) and always keeping a trailing odd sample.
// Sample order — one survivor per disjoint pair — stays monotonic in At.
func (m *MemTimeline) compress() {
	s := m.samples
	n := len(s)
	w := 0
	for i := 0; i+1 < n; i += 2 {
		keep := s[i+1]
		if s[i].Total > keep.Total {
			keep = s[i]
		}
		s[w] = keep
		w++
	}
	if n%2 == 1 {
		s[w] = s[n-1]
		w++
	}
	m.samples = s[:w]
}

// Grow reserves capacity for n further samples. A no-op unless exact
// retention is on — under a maxSamples cap the buffer is already bounded.
func (m *MemTimeline) Grow(n int) {
	if !m.record || m.maxSamples != 0 {
		return
	}
	m.samples = slices.Grow(m.samples, n)
}

// Add applies a delta at virtual time at. Deltas may be negative (frees).
// Time must be monotonically non-decreasing.
func (m *MemTimeline) Add(at time.Duration, delta units.Bytes) {
	if at < m.last {
		panic(fmt.Sprintf("trace: %s timeline time went backwards: %v < %v", m.name, at, m.last))
	}
	m.last = at
	m.cur += delta
	if m.cur < 0 {
		panic(fmt.Sprintf("trace: %s timeline went negative (%v) at %v", m.name, m.cur, at))
	}
	if m.cur > m.peak {
		m.peak = m.cur
		m.peakAt = at
	}
	if m.record {
		if m.maxSamples > 0 && len(m.samples) >= m.maxSamples {
			m.compress()
		}
		m.samples = append(m.samples, MemSample{At: at, Total: m.cur})
	}
}

// ReplayCycles extends the timeline as if one periodic cycle of deltas
// had been re-Added copies more times at period spacing. cycle[i] holds
// the i-th event's At (unshifted) and the cycle's running partial sum
// through it, so copy j's level at position i is cur + (j-1)×net +
// cycle[i].Total — exact integer arithmetic, byte-identical to really
// replaying the events. This is the steady-state fast path's timeline
// materialization: samples are written directly instead of routing
// millions of identical events through Add. The cycle must be sorted,
// span at most one period, and start no earlier than one period before
// the timeline's last sample; retention must be exact (no sample cap).
func (m *MemTimeline) ReplayCycles(cycle []MemSample, copies int, period time.Duration) {
	if copies <= 0 || len(cycle) == 0 {
		return
	}
	if m.maxSamples != 0 {
		panic(fmt.Sprintf("trace: %s timeline: ReplayCycles under a sample cap", m.name))
	}
	if cycle[0].At+period < m.last {
		panic(fmt.Sprintf("trace: %s timeline: replayed cycle starts at %v, before last sample %v", m.name, cycle[0].At+period, m.last))
	}
	net := cycle[len(cycle)-1].Total
	bPeak, bPeakAt := cycle[0].Total, cycle[0].At
	bMin := cycle[0].Total
	for i := 1; i < len(cycle); i++ {
		if cycle[i].At < cycle[i-1].At {
			panic(fmt.Sprintf("trace: %s timeline: replayed cycle not sorted", m.name))
		}
		if cycle[i].Total > bPeak {
			bPeak, bPeakAt = cycle[i].Total, cycle[i].At
		}
		if cycle[i].Total < bMin {
			bMin = cycle[i].Total
		}
	}
	// Peak and negative-level checks mirror Add's: with positive net every
	// copy tops the last, otherwise the first copy is the extremum (and
	// symmetrically for the minimum level).
	jStar, jMin := 1, 1
	if net > 0 {
		jStar = copies
	} else if net < 0 {
		jMin = copies
	}
	if cand := m.cur + units.Bytes(jStar-1)*net + bPeak; cand > m.peak {
		m.peak = cand
		m.peakAt = bPeakAt + time.Duration(jStar)*period
	}
	if low := m.cur + units.Bytes(jMin-1)*net + bMin; low < 0 {
		panic(fmt.Sprintf("trace: %s timeline went negative (%v) in replayed cycle %d", m.name, low, jMin))
	}
	if m.record {
		m.samples = slices.Grow(m.samples, copies*len(cycle))
		for j := 1; j <= copies; j++ {
			shift := time.Duration(j) * period
			base := m.cur + units.Bytes(j-1)*net
			for _, s := range cycle {
				m.samples = append(m.samples, MemSample{At: s.At + shift, Total: base + s.Total})
			}
		}
	}
	m.cur += units.Bytes(copies) * net
	m.last = cycle[len(cycle)-1].At + time.Duration(copies)*period
}

// Current returns the present byte total.
func (m *MemTimeline) Current() units.Bytes { return m.cur }

// Peak returns the maximum byte total observed.
func (m *MemTimeline) Peak() units.Bytes { return m.peak }

// PeakAt returns the virtual time of the peak.
func (m *MemTimeline) PeakAt() time.Duration { return m.peakAt }

// Samples returns the recorded samples (nil unless recording was enabled).
func (m *MemTimeline) Samples() []MemSample { return m.samples }

// ResetPeak restarts peak tracking from the current level; used to measure
// the peak within a phase (e.g. forward+backward only, excluding the
// optimizer step) as the paper does.
func (m *MemTimeline) ResetPeak() {
	m.peak = m.cur
	m.peakAt = m.last
}

// PeakBetween returns the maximum level reached in the half-open window
// [from, to), including the level carried into the window. It requires
// sample recording to have been enabled.
func (m *MemTimeline) PeakBetween(from, to time.Duration) units.Bytes {
	var level units.Bytes // level entering the window
	var peak units.Bytes
	seen := false
	for _, s := range m.samples {
		if s.At < from {
			level = s.Total
			continue
		}
		if !seen {
			peak = level // carry-in level counts at the window start
			seen = true
		}
		if s.At >= to {
			break
		}
		if s.Total > peak {
			peak = s.Total
		}
	}
	if !seen {
		peak = level
	}
	return peak
}

// Counters is a set of named monotonically increasing counters.
type Counters struct {
	vals map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Add increments a counter by n.
func (c *Counters) Add(name string, n int64) { c.vals[name] += n }

// Reset zeroes every counter for reuse by a new run; map buckets are
// retained so a replayed run's increments allocate nothing.
func (c *Counters) Reset() { clear(c.vals) }

// Clone returns an independent snapshot of the counter set, so a result
// can keep a run's final counters while the live set is reset for the
// next run.
func (c *Counters) Clone() *Counters {
	cp := &Counters{vals: make(map[string]int64, len(c.vals))}
	for k, v := range c.vals {
		cp.vals[k] = v
	}
	return cp
}

// Get returns a counter's value (zero if never touched).
func (c *Counters) Get(name string) int64 { return c.vals[name] }

// Range calls f for every touched counter, in unspecified order. It is
// the allocation-free alternative to Names+Get for callers (the
// steady-state signature fold) that run once per simulated step.
func (c *Counters) Range(f func(name string, v int64)) {
	for k, v := range c.vals {
		f(k, v)
	}
}

// Names returns the sorted list of counters that have been touched.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.vals))
	for k := range c.vals {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders all counters, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for i, name := range c.Names() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", name, c.vals[name])
	}
	return b.String()
}

// StepStats summarizes one training step, the row unit of the paper's
// evaluation figures.
type StepStats struct {
	// StepTime is the end-to-end virtual time of the step (Fig 6a).
	StepTime time.Duration
	// ActivationPeak is the peak of the activation memory timeline during
	// forward+backward (Fig 6b).
	ActivationPeak units.Bytes
	// TotalPeak is the peak of all GPU memory.
	TotalPeak units.Bytes
	// OffloadedBytes is the amount written to the offload target (Table III).
	OffloadedBytes units.Bytes
	// ReloadedBytes is the amount read back during backward.
	ReloadedBytes units.Bytes
	// ForwardedBytes were resolved from in-flight stores without SSD reads.
	ForwardedBytes units.Bytes
	// ModelFLOPs is the algorithmic work of the step (recomputation
	// excluded), the numerator of the paper's model-throughput metric.
	ModelFLOPs units.FLOPs
	// ComputeStall is GPU compute idle time spent waiting on reloads; zero
	// means the paper's "perfect overlap" claim holds for the config.
	ComputeStall time.Duration
}

// ModelThroughput returns algorithmic FLOPs divided by step time — the
// paper's per-GPU "model throughput" y-axis (Fig 7).
func (s StepStats) ModelThroughput() units.FLOPSRate {
	return units.Rate(s.ModelFLOPs, s.StepTime)
}

// WriteBandwidth returns the average offload write bandwidth over the step.
func (s StepStats) WriteBandwidth() units.Bandwidth {
	return units.BandwidthOf(s.OffloadedBytes, s.StepTime)
}
