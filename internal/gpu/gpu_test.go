package gpu

import (
	"testing"
	"testing/quick"
	"time"

	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

func TestSpecs(t *testing.T) {
	a := A100PCIe()
	if a.PeakFP16 != 312*units.TFLOPS || a.Memory != 40*units.GiB {
		t.Errorf("A100 spec wrong: %+v", a)
	}
	if A100SXM().Memory <= a.Memory {
		t.Error("SXM should have more memory")
	}
	if H100SXM().PeakFP16 <= a.PeakFP16 {
		t.Error("H100 should be faster")
	}
}

func TestRooflineRegimes(t *testing.T) {
	c := DefaultCostModel(A100PCIe())
	// A large square GEMM is compute-bound: time ≈ flops/(peak·eff).
	m, k, n := int64(16384), int64(8192), int64(8192)
	got := c.Matmul(m, k, n, 2)
	flops := 2 * float64(m) * float64(k) * float64(n)
	eff := c.MatmulMaxEff * float64(m) / (float64(m) + c.MatmulHalfRows)
	want := time.Duration(flops / (float64(c.Spec.PeakFP16) * eff) * float64(time.Second))
	if ratio := float64(got) / float64(want); ratio < 0.99 || ratio > 1.05 {
		t.Errorf("compute-bound matmul: got %v want ≈ %v", got, want)
	}
	// A skinny GEMM is memory-bound: time ≈ bytes/HBM.
	got = c.Matmul(16, 16384, 16, 2)
	bytes := 2 * int64(16*16384+16384*16+16*16)
	wantMem := units.Bandwidth(float64(c.Spec.HBMBandwidth) * c.MemEff).TimeFor(units.Bytes(bytes))
	if got < wantMem {
		t.Errorf("memory-bound matmul faster than HBM allows: %v < %v", got, wantMem)
	}
}

func TestMemoryBound(t *testing.T) {
	c := DefaultCostModel(A100PCIe())
	d1 := c.MemoryBound(units.GB)
	d2 := c.MemoryBound(2 * units.GB)
	if d2 <= d1 {
		t.Error("memory-bound time not monotone")
	}
	// 1 GB at ~1244 GB/s ≈ 0.8 ms.
	if d1 < 700*time.Microsecond || d1 > 900*time.Microsecond {
		t.Errorf("1GB elementwise = %v", d1)
	}
}

func TestCollectiveCosts(t *testing.T) {
	c := DefaultCostModel(A100PCIe())
	if c.AllReduceTime(units.GB, 1) != 0 {
		t.Error("tp=1 all-reduce should be free")
	}
	t2 := c.AllReduceTime(units.GB, 2)
	t8 := c.AllReduceTime(units.GB, 8)
	if t8 <= t2 {
		t.Error("all-reduce should cost more at higher degree")
	}
	if c.AllGatherTime(units.GB, 2) >= t2 {
		t.Error("all-gather moves half of all-reduce")
	}
}

// Property: matmul efficiency (and thus achieved FLOP/s) grows with the
// row count — the small-micro-batch penalty of Fig 8a.
func TestMatmulEfficiencyMonotoneProperty(t *testing.T) {
	c := DefaultCostModel(A100PCIe())
	f := func(a, b uint16) bool {
		m1 := int64(a%4096) + 64
		m2 := m1 + int64(b%4096) + 1
		k, n := int64(4096), int64(4096)
		t1 := c.Matmul(m1, k, n, 2)
		t2 := c.Matmul(m2, k, n, 2)
		// Achieved rate = flops/time must not decrease with m.
		r1 := 2 * float64(m1) * float64(k) * float64(n) / t1.Seconds()
		r2 := 2 * float64(m2) * float64(k) * float64(n) / t2.Seconds()
		return r2 >= r1*0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorPeaks(t *testing.T) {
	a := NewAllocator(units.GiB)
	s1 := tensor.NewStorage(400*units.MiB, tensor.GPU)
	s2 := tensor.NewStorage(300*units.MiB, tensor.GPU)
	s3 := tensor.NewStorage(200*units.MiB, tensor.GPU)
	a.Alloc(0, s1, ClassWeights)
	a.Alloc(time.Millisecond, s2, ClassActivations)
	a.Free(2*time.Millisecond, s2)
	a.Alloc(3*time.Millisecond, s3, ClassActivations)
	rep := a.Finalize(true)
	if rep.PeakTotal != 700*units.MiB {
		t.Errorf("peak total = %v", rep.PeakTotal)
	}
	if rep.PeakByClass[ClassActivations] != 300*units.MiB {
		t.Errorf("activation peak = %v", rep.PeakByClass[ClassActivations])
	}
	if rep.PeakAt != time.Millisecond {
		t.Errorf("peak at %v", rep.PeakAt)
	}
	if rep.Overflowed {
		t.Error("should not overflow 1 GiB")
	}
	// Class levels at the total peak must sum to the peak.
	var sum units.Bytes
	for _, v := range rep.ClassAtTotalPeak {
		sum += v
	}
	if sum != rep.PeakTotal {
		t.Errorf("class sum %v != peak %v", sum, rep.PeakTotal)
	}
}

func TestAllocatorOutOfOrderTimestamps(t *testing.T) {
	// The executor frees storages at times computed out of host order;
	// Finalize must sort them.
	a := NewAllocator(units.GiB)
	s1 := tensor.NewStorage(100, tensor.GPU)
	s2 := tensor.NewStorage(100, tensor.GPU)
	a.Alloc(5*time.Millisecond, s1, ClassActivations)
	a.Alloc(time.Millisecond, s2, ClassActivations) // earlier, recorded later
	a.Free(6*time.Millisecond, s1)
	a.Free(5500*time.Microsecond, s2) // overlaps s1's [5ms, 6ms) interval
	rep := a.Finalize(false)
	if rep.PeakTotal != 200 {
		t.Errorf("peak = %v (events not time-sorted?)", rep.PeakTotal)
	}
	// And a non-overlapping pair folds to a peak of one tensor.
	a2 := NewAllocator(units.GiB)
	s3 := tensor.NewStorage(100, tensor.GPU)
	s4 := tensor.NewStorage(100, tensor.GPU)
	a2.Alloc(5*time.Millisecond, s3, ClassActivations)
	a2.Alloc(time.Millisecond, s4, ClassActivations)
	a2.Free(6*time.Millisecond, s3)
	a2.Free(2*time.Millisecond, s4)
	if rep2 := a2.Finalize(false); rep2.PeakTotal != 100 {
		t.Errorf("disjoint peak = %v", rep2.PeakTotal)
	}
}

func TestAllocatorStreamOrderedFreeClamp(t *testing.T) {
	a := NewAllocator(units.GiB)
	s := tensor.NewStorage(100, tensor.GPU)
	a.Alloc(5*time.Millisecond, s, ClassWorkspace)
	// Host dropped the ref before the kernel ran; clamped to alloc time.
	a.Free(time.Millisecond, s)
	rep := a.Finalize(false)
	if rep.PeakTotal != 100 {
		t.Errorf("peak = %v", rep.PeakTotal)
	}
}

func TestAllocatorDoubleAllocPanics(t *testing.T) {
	a := NewAllocator(units.GiB)
	s := tensor.NewStorage(100, tensor.GPU)
	a.Alloc(0, s, ClassWeights)
	defer func() {
		if recover() == nil {
			t.Error("double alloc did not panic")
		}
	}()
	a.Alloc(0, s, ClassWeights)
}

func TestAllocatorUnknownFreePanics(t *testing.T) {
	a := NewAllocator(units.GiB)
	defer func() {
		if recover() == nil {
			t.Error("unknown free did not panic")
		}
	}()
	a.Free(0, tensor.NewStorage(1, tensor.GPU))
}

func TestAllocatorOverflowDetection(t *testing.T) {
	a := NewAllocator(100)
	s := tensor.NewStorage(200, tensor.GPU)
	a.Alloc(0, s, ClassActivations)
	rep := a.Finalize(false)
	if !rep.Overflowed {
		t.Error("overflow not detected")
	}
}

type countingHook struct{ allocs, frees int }

func (h *countingHook) OnAlloc(*tensor.Storage) { h.allocs++ }
func (h *countingHook) OnFree(*tensor.Storage)  { h.frees++ }

func TestAllocatorHooks(t *testing.T) {
	a := NewAllocator(units.GiB)
	h := &countingHook{}
	a.AddHook(h)
	s := tensor.NewStorage(100, tensor.GPU)
	a.Alloc(0, s, ClassWeights)
	a.Free(time.Millisecond, s)
	if h.allocs != 1 || h.frees != 1 {
		t.Errorf("hook calls: %+v", h)
	}
	if a.LiveBytes() != 0 || a.LiveCount() != 0 {
		t.Error("leak tracking wrong")
	}
}

// Property: for any interleaving of allocs and frees, peak ≥ final level
// and peak ≥ every class peak.
func TestAllocatorPeakProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewAllocator(units.Bytes(1) << 40)
		var storages []*tensor.Storage
		at := time.Duration(0)
		for i, sz := range sizes {
			s := tensor.NewStorage(units.Bytes(sz)+1, tensor.GPU)
			a.Alloc(at, s, Class(i%int(classCount)))
			storages = append(storages, s)
			at += time.Microsecond
			if i%3 == 2 {
				a.Free(at, storages[len(storages)-2])
				storages = append(storages[:len(storages)-2], storages[len(storages)-1])
				at += time.Microsecond
			}
		}
		rep := a.Finalize(false)
		var classMax units.Bytes
		for _, v := range rep.PeakByClass {
			if v > classMax {
				classMax = v
			}
		}
		return rep.PeakTotal >= classMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
