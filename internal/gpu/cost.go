package gpu

import (
	"time"

	"ssdtrain/internal/units"
)

// CostModel converts kernel descriptions into execution times using a
// roofline: a kernel takes max(compute time, memory time) plus the fixed
// launch latency. Tensor-core utilization follows a saturating curve in
// the GEMM row count, which is what makes small micro-batches inefficient
// — the effect the paper's Fig 8(a) decomposes.
type CostModel struct {
	Spec Spec
	// MatmulMaxEff is the peak fraction of tensor-core throughput large
	// GEMMs achieve (cuBLAS on A100 lands around 0.72–0.85).
	MatmulMaxEff float64
	// MatmulHalfRows is the GEMM row count at which utilization reaches
	// half of MatmulMaxEff; smaller inputs under-fill the device.
	MatmulHalfRows float64
	// AttnEff is the achieved fraction of peak for fused attention
	// kernels (FlashAttention-2 reports ~0.5–0.65 of peak on A100).
	AttnEff float64
	// MemEff is the achieved fraction of HBM bandwidth for elementwise,
	// normalization and reduction kernels.
	MemEff float64
}

// DefaultCostModel returns the calibration used throughout the
// reproduction (see EXPERIMENTS.md for the calibration rationale).
func DefaultCostModel(spec Spec) *CostModel {
	return &CostModel{
		Spec:           spec,
		MatmulMaxEff:   0.78,
		MatmulHalfRows: 384,
		AttnEff:        0.55,
		MemEff:         0.80,
	}
}

// matmulEff returns the utilization for a GEMM with m output rows.
func (c *CostModel) matmulEff(m int64) float64 {
	fm := float64(m)
	return c.MatmulMaxEff * fm / (fm + c.MatmulHalfRows)
}

// roofline combines compute and memory times with launch latency.
func (c *CostModel) roofline(flops units.FLOPs, eff float64, bytes units.Bytes) time.Duration {
	comp := units.FLOPSRate(float64(c.Spec.PeakFP16) * eff).TimeFor(flops)
	mem := units.Bandwidth(float64(c.Spec.HBMBandwidth) * c.MemEff).TimeFor(bytes)
	t := comp
	if mem > t {
		t = mem
	}
	return c.Spec.KernelLaunch + t
}

// Matmul returns the time of an (m×k)·(k×n) GEMM in the given dtype.
func (c *CostModel) Matmul(m, k, n int64, elemSize int) time.Duration {
	flops := units.FLOPs(2 * float64(m) * float64(k) * float64(n))
	bytes := units.Bytes(int64(elemSize) * (m*k + k*n + m*n))
	return c.roofline(flops, c.matmulEff(m), bytes)
}

// MatmulFLOPs returns the algorithmic work of the GEMM, used for
// model-throughput accounting.
func MatmulFLOPs(m, k, n int64) units.FLOPs {
	return units.FLOPs(2 * float64(m) * float64(k) * float64(n))
}

// BatchedMatmul returns the time of `count` independent (m×k)·(k×n) GEMMs
// launched as one batched kernel — the unfused attention score/context
// products. Utilization follows the per-GEMM row count.
func (c *CostModel) BatchedMatmul(count, m, k, n int64, elemSize int) time.Duration {
	flops := units.FLOPs(2 * float64(count) * float64(m) * float64(k) * float64(n))
	bytes := units.Bytes(int64(elemSize) * count * (m*k + k*n + m*n))
	return c.roofline(flops, c.matmulEff(m), bytes)
}

// FusedAttention returns the time of a FlashAttention-style fused kernel
// over batch b, heads a, sequence s, head dimension d (forward direction;
// backward costs ~2.5x and is modelled by the caller via FLOPs scaling).
func (c *CostModel) FusedAttention(flops units.FLOPs, ioBytes units.Bytes) time.Duration {
	return c.roofline(flops, c.AttnEff, ioBytes)
}

// MemoryBound returns the time of a bandwidth-bound kernel moving the
// given bytes (LayerNorm, residual add, dropout, softmax, optimizer math).
func (c *CostModel) MemoryBound(bytes units.Bytes) time.Duration {
	return c.roofline(0, 1, bytes)
}

// EffectiveHBM returns the derated HBM bandwidth.
func (c *CostModel) EffectiveHBM() units.Bandwidth {
	return units.Bandwidth(float64(c.Spec.HBMBandwidth) * c.MemEff)
}

// AllReduceTime models a ring all-reduce of n bytes across tpDegree GPUs
// over NVLink: each GPU moves 2(t-1)/t of the payload.
func (c *CostModel) AllReduceTime(n units.Bytes, tpDegree int) time.Duration {
	if tpDegree <= 1 {
		return 0
	}
	factor := 2 * float64(tpDegree-1) / float64(tpDegree)
	moved := units.Bytes(float64(n) * factor)
	// NVLink collectives achieve ~0.75 of the link rate in practice.
	bw := units.Bandwidth(float64(c.Spec.NVLinkBandwidth) * 0.75)
	return 5*time.Microsecond + bw.TimeFor(moved)
}

// AllGatherTime models a ring all-gather of n bytes (per-GPU shard) across
// tpDegree GPUs.
func (c *CostModel) AllGatherTime(n units.Bytes, tpDegree int) time.Duration {
	if tpDegree <= 1 {
		return 0
	}
	factor := float64(tpDegree-1) / float64(tpDegree)
	moved := units.Bytes(float64(n) * factor)
	bw := units.Bandwidth(float64(c.Spec.NVLinkBandwidth) * 0.75)
	return 5*time.Microsecond + bw.TimeFor(moved)
}
