package gpu

import (
	"fmt"
	"sort"
	"time"

	"ssdtrain/internal/spans"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// Class tags an allocation with its role, so peaks can be reported per
// category the way the paper separates "activation memory peak" from the
// rest (Fig 6b measures activations only).
type Class uint8

// Allocation classes.
const (
	ClassWeights Class = iota
	ClassGradients
	ClassOptimizer
	ClassActivations
	ClassWorkspace
	classCount
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassWeights:
		return "weights"
	case ClassGradients:
		return "gradients"
	case ClassOptimizer:
		return "optimizer"
	case ClassActivations:
		return "activations"
	case ClassWorkspace:
		return "workspace"
	default:
		return fmt.Sprintf("class(%d)", c)
	}
}

// AllocHook observes allocator traffic. The GDS malloc hook implements it
// to register memory for the direct DMA path without replacing the
// allocator (the paper's LD_PRELOAD interposition).
type AllocHook interface {
	OnAlloc(s *tensor.Storage)
	OnFree(s *tensor.Storage)
}

// memEvent is a buffered timeline delta.
type memEvent struct {
	at    time.Duration
	delta units.Bytes
	class Class
	seq   int
}

// Allocator is the device caching allocator model. Allocation and free
// calls carry virtual timestamps; because the training executor computes
// completion times out of chronological order (stores complete while later
// ops are being issued), events are buffered and folded into monotonic
// timelines at Finalize.
type Allocator struct {
	capacity units.Bytes
	events   []memEvent
	hooks    []AllocHook
	live     map[int64]memEvent
	seq      int
	final    bool

	// rec/memT emit instant alloc/free events (named by class) when the
	// flight recorder is on. Like the hooks, the wiring survives Reset.
	rec  *spans.Recorder
	memT spans.TrackID

	report *MemReport
}

// NewAllocator creates an allocator for a device with the given capacity.
func NewAllocator(capacity units.Bytes) *Allocator {
	return &Allocator{capacity: capacity, live: make(map[int64]memEvent), memT: -1}
}

// SetRecorder attaches the flight recorder and registers the allocator's
// event track. Call at arena construction, before the first Alloc.
func (a *Allocator) SetRecorder(r *spans.Recorder) {
	a.rec = r
	a.memT = r.RegisterTrack("gpu.mem")
}

// AddHook attaches an allocation observer.
func (a *Allocator) AddHook(h AllocHook) { a.hooks = append(a.hooks, h) }

// Reset discards the recorded run (events, live set, any finalized
// report) for reuse by a new simulation on the same arena. Attached hooks
// survive — they are wiring, not run state — and the event buffer's
// capacity is retained so a replayed run appends without growing.
func (a *Allocator) Reset() {
	a.events = a.events[:0]
	clear(a.live)
	a.seq = 0
	a.final = false
	a.report = nil
}

// Alloc records that storage s of the given class is resident from virtual
// time at.
func (a *Allocator) Alloc(at time.Duration, s *tensor.Storage, class Class) {
	if a.final {
		panic("gpu: Alloc after Finalize")
	}
	if _, ok := a.live[s.Seq()]; ok {
		panic(fmt.Sprintf("gpu: double alloc of storage %d", s.Seq()))
	}
	a.seq++
	ev := memEvent{at: at, delta: s.Bytes(), class: class, seq: a.seq}
	a.live[s.Seq()] = ev
	a.events = append(a.events, ev)
	a.rec.Span(a.memT, spans.KindAlloc, -1, class.String(), at, at, s.Bytes(), 0)
	for _, h := range a.hooks {
		h.OnAlloc(s)
	}
}

// Free records that storage s is released at virtual time at.
func (a *Allocator) Free(at time.Duration, s *tensor.Storage) {
	if a.final {
		panic("gpu: Free after Finalize")
	}
	ev, ok := a.live[s.Seq()]
	if !ok {
		panic(fmt.Sprintf("gpu: free of unknown storage %d", s.Seq()))
	}
	if at < ev.at {
		// Stream-ordered free: the host may drop its last reference before
		// the producing kernel has even started (the host runs ahead of
		// the device), but the memory cannot be reused before the
		// allocation point. Clamp, as the CUDA caching allocator does.
		at = ev.at
	}
	delete(a.live, s.Seq())
	a.seq++
	a.events = append(a.events, memEvent{at: at, delta: -ev.delta, class: ev.class, seq: a.seq})
	a.rec.Span(a.memT, spans.KindFree, -1, ev.class.String(), at, at, ev.delta, 0)
	for _, h := range a.hooks {
		h.OnFree(s)
	}
}

// LiveBytes returns the bytes currently allocated (ignoring timestamps),
// useful for leak assertions at the end of a step.
func (a *Allocator) LiveBytes() units.Bytes {
	var n units.Bytes
	for _, ev := range a.live {
		n += ev.delta
	}
	return n
}

// LiveCount returns the number of live storages.
func (a *Allocator) LiveCount() int { return len(a.live) }

// MemReport summarizes memory behaviour over a run.
type MemReport struct {
	Capacity  units.Bytes
	PeakTotal units.Bytes
	PeakAt    time.Duration
	// PeakByClass is each class's own maximum (maxima of different classes
	// may occur at different times).
	PeakByClass [classCount]units.Bytes
	// ClassAtTotalPeak is each class's level at the moment of the total
	// peak; it sums to PeakTotal.
	ClassAtTotalPeak [classCount]units.Bytes
	// Overflowed reports whether the total ever exceeded capacity (OOM on
	// real hardware).
	Overflowed bool
	// Timeline is the total-memory timeline (recorded if requested).
	Timeline *trace.MemTimeline
	// ActTimeline is the activations-class timeline.
	ActTimeline *trace.MemTimeline
}

// PeakActivations returns the activation-class peak (the paper's Fig 6b
// metric).
func (r *MemReport) PeakActivations() units.Bytes {
	return r.PeakByClass[ClassActivations]
}

// Finalize folds buffered events into monotonic timelines and computes
// peaks. record enables sample retention on the returned timelines.
// Finalize may be called once; further allocator use panics.
func (a *Allocator) Finalize(record bool) *MemReport {
	if a.final {
		return a.report
	}
	a.final = true
	// Sorting in place is safe: the allocator is terminal after Finalize
	// (until Reset, which discards the buffer's contents anyway), and
	// skipping the defensive copy keeps Finalize off the sweep allocation
	// budget.
	evs := a.events
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
	rep := &MemReport{
		Capacity:    a.capacity,
		Timeline:    trace.NewMemTimeline("total", record),
		ActTimeline: trace.NewMemTimeline("activations", record),
	}
	var byClass [classCount]units.Bytes
	var total units.Bytes
	for _, ev := range evs {
		total += ev.delta
		byClass[ev.class] += ev.delta
		rep.Timeline.Add(ev.at, ev.delta)
		if ev.class == ClassActivations {
			rep.ActTimeline.Add(ev.at, ev.delta)
		}
		if total > rep.PeakTotal {
			rep.PeakTotal = total
			rep.PeakAt = ev.at
			rep.ClassAtTotalPeak = byClass
		}
		for c := Class(0); c < classCount; c++ {
			if byClass[c] > rep.PeakByClass[c] {
				rep.PeakByClass[c] = byClass[c]
			}
		}
	}
	rep.Overflowed = rep.PeakTotal > a.capacity
	a.report = rep
	return rep
}
