package gpu

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"ssdtrain/internal/sim"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/trace"
	"ssdtrain/internal/units"
)

// Class tags an allocation with its role, so peaks can be reported per
// category the way the paper separates "activation memory peak" from the
// rest (Fig 6b measures activations only).
type Class uint8

// Allocation classes.
const (
	ClassWeights Class = iota
	ClassGradients
	ClassOptimizer
	ClassActivations
	ClassWorkspace
	classCount
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassWeights:
		return "weights"
	case ClassGradients:
		return "gradients"
	case ClassOptimizer:
		return "optimizer"
	case ClassActivations:
		return "activations"
	case ClassWorkspace:
		return "workspace"
	default:
		return fmt.Sprintf("class(%d)", c)
	}
}

// AllocHook observes allocator traffic. The GDS malloc hook implements it
// to register memory for the direct DMA path without replacing the
// allocator (the paper's LD_PRELOAD interposition).
type AllocHook interface {
	OnAlloc(s *tensor.Storage)
	OnFree(s *tensor.Storage)
}

// memEvent is a buffered timeline delta.
type memEvent struct {
	at    time.Duration
	delta units.Bytes
	class Class
	seq   int
}

// Allocator is the device caching allocator model. Allocation and free
// calls carry virtual timestamps; because the training executor computes
// completion times out of chronological order (stores complete while later
// ops are being issued), events are buffered and folded into monotonic
// timelines at Finalize.
type Allocator struct {
	capacity units.Bytes
	events   []memEvent
	hooks    []AllocHook
	live     map[int64]memEvent
	seq      int
	final    bool

	// repl holds a pending virtual replication (ReplicateTail): one cycle's
	// events sorted by (at, seq), to be applied replN times at replPeriod
	// spacing by Finalize — analytically, without ever materializing the
	// copies. Empty when no replication is pending; a later Alloc or Free
	// materializes the copies first so event ordering stays exact.
	repl       []memEvent
	replN      int
	replPeriod time.Duration

	// rec/memT emit instant alloc/free events (named by class) when the
	// flight recorder is on. Like the hooks, the wiring survives Reset.
	rec  *spans.Recorder
	memT spans.TrackID

	report *MemReport
}

// NewAllocator creates an allocator for a device with the given capacity.
func NewAllocator(capacity units.Bytes) *Allocator {
	return &Allocator{capacity: capacity, live: make(map[int64]memEvent), memT: -1}
}

// SetRecorder attaches the flight recorder and registers the allocator's
// event track. Call at arena construction, before the first Alloc.
func (a *Allocator) SetRecorder(r *spans.Recorder) {
	a.rec = r
	a.memT = r.RegisterTrack("gpu.mem")
}

// AddHook attaches an allocation observer.
func (a *Allocator) AddHook(h AllocHook) { a.hooks = append(a.hooks, h) }

// Reset discards the recorded run (events, live set, any finalized
// report) for reuse by a new simulation on the same arena. Attached hooks
// survive — they are wiring, not run state — and the event buffer's
// capacity is retained so a replayed run appends without growing.
func (a *Allocator) Reset() {
	a.events = a.events[:0]
	clear(a.live)
	a.seq = 0
	a.final = false
	a.report = nil
	a.repl = a.repl[:0]
	a.replN = 0
}

// Alloc records that storage s of the given class is resident from virtual
// time at.
func (a *Allocator) Alloc(at time.Duration, s *tensor.Storage, class Class) {
	if a.final {
		panic("gpu: Alloc after Finalize")
	}
	if _, ok := a.live[s.Seq()]; ok {
		panic(fmt.Sprintf("gpu: double alloc of storage %d", s.Seq()))
	}
	a.materializeRepl()
	a.seq++
	ev := memEvent{at: at, delta: s.Bytes(), class: class, seq: a.seq}
	a.live[s.Seq()] = ev
	a.events = append(a.events, ev)
	a.rec.Span(a.memT, spans.KindAlloc, -1, class.String(), at, at, s.Bytes(), 0)
	for _, h := range a.hooks {
		h.OnAlloc(s)
	}
}

// Free records that storage s is released at virtual time at.
func (a *Allocator) Free(at time.Duration, s *tensor.Storage) {
	if a.final {
		panic("gpu: Free after Finalize")
	}
	ev, ok := a.live[s.Seq()]
	if !ok {
		panic(fmt.Sprintf("gpu: free of unknown storage %d", s.Seq()))
	}
	if at < ev.at {
		// Stream-ordered free: the host may drop its last reference before
		// the producing kernel has even started (the host runs ahead of
		// the device), but the memory cannot be reused before the
		// allocation point. Clamp, as the CUDA caching allocator does.
		at = ev.at
	}
	a.materializeRepl()
	delete(a.live, s.Seq())
	a.seq++
	a.events = append(a.events, memEvent{at: at, delta: -ev.delta, class: ev.class, seq: a.seq})
	a.rec.Span(a.memT, spans.KindFree, -1, ev.class.String(), at, at, ev.delta, 0)
	for _, h := range a.hooks {
		h.OnFree(s)
	}
}

// LiveBytes returns the bytes currently allocated (ignoring timestamps),
// useful for leak assertions at the end of a step.
func (a *Allocator) LiveBytes() units.Bytes {
	var n units.Bytes
	for _, ev := range a.live {
		n += ev.delta
	}
	return n
}

// LiveCount returns the number of live storages.
func (a *Allocator) LiveCount() int { return len(a.live) }

// EventMark returns a position in the event buffer; the half-open range
// [mark, EventMark()) taken later identifies the events appended in
// between. Marks are invalidated by Reset.
func (a *Allocator) EventMark() int { return len(a.events) }

// FoldTail folds the events appended since mark into sig, with timestamps
// taken relative to origin, plus a summary of the live set. Two steps of a
// periodic workload fold identically exactly when their allocation traffic
// is a time-shifted copy — the property the steady-state fast path's
// ReplicateTail relies on.
func (a *Allocator) FoldTail(sig *sim.Sig, mark int, origin time.Duration) {
	tail := a.events[mark:]
	sig.FoldInt(int64(len(tail)))
	for _, ev := range tail {
		sig.Fold(uint64(ev.class))
		sig.FoldInt(int64(ev.delta))
		sig.FoldDur(ev.at - origin)
	}
	sig.FoldInt(int64(len(a.live)))
	sig.FoldInt(int64(a.LiveBytes()))
}

// ReplicateTail records that the events appended since mark repeat n more
// times, copy j shifted by j×period. The copies are virtual: Finalize
// applies them analytically — one cycle's level profile is computed once
// and every copy's samples and peaks are synthesized from it by pure
// arithmetic — which is what makes a 10k-step extrapolated run cost a few
// warm-up steps instead of materializing millions of identical events.
// The synthesized outcome is byte-identical to really appending the
// copies: within a copy the events are applied in (at, seq) order, copies
// cannot overlap when the cycle's span fits the period, and integer level
// arithmetic is exact. A later Alloc or Free materializes the pending
// copies first, and a cycle whose span exceeds the period (a backdated
// event straddling blocks) is materialized immediately so overlapping
// copies still go through the full sort.
// Recorder spans and hooks do not fire for the copies: replication is only
// used when the flight recorder is off, and hook-driven accounting is
// extrapolated by the caller from per-cycle counter deltas.
func (a *Allocator) ReplicateTail(mark, n int, period time.Duration) {
	if a.final {
		panic("gpu: ReplicateTail after Finalize")
	}
	a.materializeRepl()
	tail := a.events[mark:]
	if len(tail) == 0 || n <= 0 {
		return
	}
	a.repl = append(a.repl[:0], tail...)
	slices.SortFunc(a.repl, func(x, y memEvent) int {
		if x.at != y.at {
			return cmp.Compare(x.at, y.at)
		}
		return cmp.Compare(x.seq, y.seq)
	})
	a.replN = n
	a.replPeriod = period
	if span := a.repl[len(a.repl)-1].at - a.repl[0].at; span > period {
		a.materializeRepl()
	}
}

// materializeRepl turns a pending virtual replication into real events in
// recording order (Finalize then sorts everything), restoring exact
// event-buffer semantics for the rare callers that keep allocating after
// ReplicateTail or replicate an over-long cycle. No-op without one.
func (a *Allocator) materializeRepl() {
	if a.replN == 0 {
		return
	}
	n, block := a.replN, a.repl
	a.replN = 0
	a.events = slices.Grow(a.events, n*len(block))
	for j := 1; j <= n; j++ {
		shift := time.Duration(j) * a.replPeriod
		for _, ev := range block {
			a.seq++
			a.events = append(a.events, memEvent{at: ev.at + shift, delta: ev.delta, class: ev.class, seq: a.seq})
		}
	}
	a.repl = a.repl[:0]
}

// MemReport summarizes memory behaviour over a run.
type MemReport struct {
	Capacity  units.Bytes
	PeakTotal units.Bytes
	PeakAt    time.Duration
	// PeakByClass is each class's own maximum (maxima of different classes
	// may occur at different times).
	PeakByClass [classCount]units.Bytes
	// ClassAtTotalPeak is each class's level at the moment of the total
	// peak; it sums to PeakTotal.
	ClassAtTotalPeak [classCount]units.Bytes
	// Overflowed reports whether the total ever exceeded capacity (OOM on
	// real hardware).
	Overflowed bool
	// Timeline is the total-memory timeline (recorded if requested).
	Timeline *trace.MemTimeline
	// ActTimeline is the activations-class timeline.
	ActTimeline *trace.MemTimeline
}

// PeakActivations returns the activation-class peak (the paper's Fig 6b
// metric).
func (r *MemReport) PeakActivations() units.Bytes {
	return r.PeakByClass[ClassActivations]
}

// Finalize folds buffered events into monotonic timelines and computes
// peaks. record enables sample retention on the returned timelines.
// Finalize may be called once; further allocator use panics.
func (a *Allocator) Finalize(record bool) *MemReport {
	if a.final {
		return a.report
	}
	a.final = true
	// Sorting in place is safe: the allocator is terminal after Finalize
	// (until Reset, which discards the buffer's contents anyway), and
	// skipping the defensive copy keeps Finalize off the sweep allocation
	// budget. seq is unique per event, so (at, seq) is a total order and
	// an unstable sort yields the same permutation a stable one would.
	evs := a.events
	slices.SortFunc(evs, func(x, y memEvent) int {
		if x.at != y.at {
			return cmp.Compare(x.at, y.at)
		}
		return cmp.Compare(x.seq, y.seq)
	})
	// A pending virtual replication (ReplicateTail) is valid only when the
	// copies land strictly after every real event; an event sorting past
	// the first copy's start would interleave, so fall back to really
	// appending the copies and re-sorting. The span-fits-period check in
	// ReplicateTail makes this unreachable in practice.
	if a.replN > 0 && len(evs) > 0 && evs[len(evs)-1].at > a.repl[0].at+a.replPeriod {
		a.materializeRepl()
		evs = a.events
		slices.SortFunc(evs, func(x, y memEvent) int {
			if x.at != y.at {
				return cmp.Compare(x.at, y.at)
			}
			return cmp.Compare(x.seq, y.seq)
		})
	}
	// One cycle's level profile: partial sums of the sorted template, from
	// which every virtual copy's samples and peaks follow analytically
	// (the level at position i of copy j is prefix end + (j-1)×net +
	// cycle[i], all exact integer arithmetic).
	var cycTotal, cycAct []trace.MemSample
	var cycByClass [classCount]units.Bytes
	if a.replN > 0 {
		cycTotal = make([]trace.MemSample, 0, len(a.repl))
		var run, runAct units.Bytes
		for _, ev := range a.repl {
			run += ev.delta
			cycByClass[ev.class] += ev.delta
			cycTotal = append(cycTotal, trace.MemSample{At: ev.at, Total: run})
			if ev.class == ClassActivations {
				runAct += ev.delta
				cycAct = append(cycAct, trace.MemSample{At: ev.at, Total: runAct})
			}
		}
	}
	rep := &MemReport{
		Capacity:    a.capacity,
		Timeline:    trace.NewMemTimeline("total", record),
		ActTimeline: trace.NewMemTimeline("activations", record),
	}
	if record {
		// Size the sample buffers exactly: one sample per event (activation
		// class only for the activation timeline), appended one at a time
		// below, plus the virtual copies synthesized after the loop.
		nAct := 0
		for i := range evs {
			if evs[i].class == ClassActivations {
				nAct++
			}
		}
		rep.Timeline.Grow(len(evs) + a.replN*len(cycTotal))
		rep.ActTimeline.Grow(nAct + a.replN*len(cycAct))
	}
	var byClass [classCount]units.Bytes
	var total units.Bytes
	for _, ev := range evs {
		total += ev.delta
		byClass[ev.class] += ev.delta
		rep.Timeline.Add(ev.at, ev.delta)
		if ev.class == ClassActivations {
			rep.ActTimeline.Add(ev.at, ev.delta)
		}
		if total > rep.PeakTotal {
			rep.PeakTotal = total
			rep.PeakAt = ev.at
			rep.ClassAtTotalPeak = byClass
		}
		for c := Class(0); c < classCount; c++ {
			if byClass[c] > rep.PeakByClass[c] {
				rep.PeakByClass[c] = byClass[c]
			}
		}
	}
	if a.replN > 0 && len(cycTotal) > 0 {
		a.replicateReport(rep, total, byClass, cycTotal, cycByClass)
		rep.Timeline.ReplayCycles(cycTotal, a.replN, a.replPeriod)
		rep.ActTimeline.ReplayCycles(cycAct, a.replN, a.replPeriod)
	}
	rep.Overflowed = rep.PeakTotal > a.capacity
	a.report = rep
	return rep
}

// replicateReport folds replN virtual copies of the cycle into the
// report's peak fields exactly as the event loop above would have, by
// closed form. Level in copy j at cycle position i is
// total + (j-1)×net + cycle[i], so each candidate peak is maximized at
// copy replN when its net per cycle is positive and at copy 1 otherwise;
// the strict-> comparisons reproduce the sequential loop's
// first-occurrence tie-breaking.
func (a *Allocator) replicateReport(rep *MemReport, total units.Bytes, byClass [classCount]units.Bytes, cycTotal []trace.MemSample, cycByClass [classCount]units.Bytes) {
	// The cycle's internal running maxima: the total's max with its first
	// At and the per-class snapshot there, and each class's own max.
	bPeak := cycTotal[0].Total
	bPeakAt := cycTotal[0].At
	var runByClass, bPeakSnap, bClassPeak [classCount]units.Bytes
	runByClass[a.repl[0].class] += a.repl[0].delta
	bPeakSnap = runByClass
	bClassPeak = runByClass
	for i := 1; i < len(a.repl); i++ {
		ev := a.repl[i]
		runByClass[ev.class] += ev.delta
		if cycTotal[i].Total > bPeak {
			bPeak = cycTotal[i].Total
			bPeakAt = cycTotal[i].At
			bPeakSnap = runByClass
		}
		for c := Class(0); c < classCount; c++ {
			if runByClass[c] > bClassPeak[c] {
				bClassPeak[c] = runByClass[c]
			}
		}
	}
	net := cycTotal[len(cycTotal)-1].Total
	jStar := 1
	if net > 0 {
		jStar = a.replN
	}
	if cand := total + units.Bytes(jStar-1)*net + bPeak; cand > rep.PeakTotal {
		rep.PeakTotal = cand
		rep.PeakAt = bPeakAt + time.Duration(jStar)*a.replPeriod
		for c := Class(0); c < classCount; c++ {
			rep.ClassAtTotalPeak[c] = byClass[c] + units.Bytes(jStar-1)*cycByClass[c] + bPeakSnap[c]
		}
	}
	for c := Class(0); c < classCount; c++ {
		jc := 1
		if cycByClass[c] > 0 {
			jc = a.replN
		}
		if cand := byClass[c] + units.Bytes(jc-1)*cycByClass[c] + bClassPeak[c]; cand > rep.PeakByClass[c] {
			rep.PeakByClass[c] = cand
		}
	}
}
