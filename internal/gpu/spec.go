// Package gpu models the GPU: device specifications, a roofline kernel
// cost model with tensor-core utilization curves, a caching allocator
// with byte-accurate, class-tagged peak tracking, and the host launch
// pipeline that feeds the device. Together these reproduce the
// performance-relevant behaviours the paper's evaluation depends on:
// compute/transfer overlap, activation memory peaks, small-micro-batch
// inefficiency, and weight-update overhead.
package gpu

import (
	"time"

	"ssdtrain/internal/units"
)

// Spec describes a GPU model.
type Spec struct {
	Name string
	// PeakFP16 is dense tensor-core FP16 throughput.
	PeakFP16 units.FLOPSRate
	// HBMBandwidth is peak device-memory bandwidth.
	HBMBandwidth units.Bandwidth
	// Memory is device memory capacity.
	Memory units.Bytes
	// NVLinkBandwidth is the per-GPU aggregate NVLink bandwidth used by
	// tensor-parallel collectives.
	NVLinkBandwidth units.Bandwidth
	// KernelLaunch is fixed per-kernel device-side latency.
	KernelLaunch time.Duration
	// HostIssue is the host-side CPU cost to enqueue one kernel; the host
	// must stay ahead of the device for the GPU to stay busy (§IV-B).
	HostIssue time.Duration
}

// A100PCIe is the paper's evaluation GPU (Table II): A100 40GB PCIe.
func A100PCIe() Spec {
	return Spec{
		Name:            "A100-PCIe-40GB",
		PeakFP16:        312 * units.TFLOPS,
		HBMBandwidth:    1555 * units.GBps,
		Memory:          40 * units.GiB,
		NVLinkBandwidth: 600 * units.GBps,
		KernelLaunch:    2 * time.Microsecond,
		HostIssue:       6 * time.Microsecond,
	}
}

// A100SXM is the 80 GB SXM variant used in the paper's large-scale
// projections (Fig 5).
func A100SXM() Spec {
	s := A100PCIe()
	s.Name = "A100-SXM-80GB"
	s.HBMBandwidth = 2039 * units.GBps
	s.Memory = 80 * units.GiB
	return s
}

// H100SXM is included for forward-looking scaling studies.
func H100SXM() Spec {
	return Spec{
		Name:            "H100-SXM-80GB",
		PeakFP16:        989 * units.TFLOPS,
		HBMBandwidth:    3350 * units.GBps,
		Memory:          80 * units.GiB,
		NVLinkBandwidth: 900 * units.GBps,
		KernelLaunch:    2 * time.Microsecond,
		HostIssue:       6 * time.Microsecond,
	}
}
