// Package gds models GPUDirect Storage: the direct DMA path between GPU
// memory and NVMe SSDs that bypasses the CPU bounce buffer. For the
// direct path to be used, the GPU memory region must be registered with
// the driver (cuFileBufRegister). SSDTrain achieves this without replacing
// PyTorch's allocator by interposing on cudaMalloc/cudaFree via
// LD_PRELOAD; this package reproduces that design: a Registry tracks
// registered storages and a MallocHook auto-registers allocations as they
// are made, exactly like the paper's "CUDA malloc hook library".
//
// Unregistered transfers still work, but take the compatibility path
// through a host bounce buffer at substantially reduced bandwidth — the
// efficiency cliff the hook library exists to avoid (§II-D, §III-A).
package gds

import (
	"ssdtrain/internal/spans"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// Path identifies which data path a transfer takes.
type Path uint8

// Transfer paths.
const (
	// Direct is the GPU↔SSD peer-to-peer DMA path (registered memory).
	Direct Path = iota
	// Bounce is the compatibility path staging through host memory.
	Bounce
)

// String names the path.
func (p Path) String() string {
	if p == Bounce {
		return "bounce"
	}
	return "direct"
}

// Registry tracks which storages are registered for the direct path.
type Registry struct {
	registered map[int64]bool
	// BouncePenalty scales effective bandwidth on the compatibility path.
	// Measured cuFile compatibility-mode numbers are roughly half of the
	// direct path on Gen4 systems.
	BouncePenalty float64

	registrations   int
	deregistrations int

	// rec receives registration counters when tracing. Registration calls
	// carry no virtual timestamp (the malloc hook fires on host-side
	// allocator traffic), so the flight recorder sees them as counters
	// rather than spans.
	rec *spans.Recorder
}

// NewRegistry returns an empty registry with the default bounce penalty.
func NewRegistry() *Registry {
	return &Registry{registered: make(map[int64]bool), BouncePenalty: 0.5}
}

// Reset forgets all registrations and zeroes the counters for reuse by a
// new simulation; the bounce penalty (a property of the hardware path, not
// of a run) is kept. Map buckets are retained so re-registration of a
// replayed workload allocates nothing.
func (r *Registry) Reset() {
	clear(r.registered)
	r.registrations = 0
	r.deregistrations = 0
}

// SetRecorder attaches the flight recorder the registry reports
// registration counters to.
func (r *Registry) SetRecorder(rec *spans.Recorder) { r.rec = rec }

// Register marks a storage as DMA-registered. Registering twice is a no-op
// (cuFileBufRegister is idempotent per region in practice).
func (r *Registry) Register(s *tensor.Storage) {
	if !r.registered[s.Seq()] {
		r.registered[s.Seq()] = true
		r.registrations++
		r.rec.Count("gds.register", 1)
	}
}

// Deregister removes a storage's registration.
func (r *Registry) Deregister(s *tensor.Storage) {
	if r.registered[s.Seq()] {
		delete(r.registered, s.Seq())
		r.deregistrations++
		r.rec.Count("gds.deregister", 1)
	}
}

// IsRegistered reports whether the storage takes the direct path.
func (r *Registry) IsRegistered(s *tensor.Storage) bool {
	return r.registered[s.Seq()]
}

// PathFor returns the transfer path for a storage.
func (r *Registry) PathFor(s *tensor.Storage) Path {
	if r.IsRegistered(s) {
		return Direct
	}
	return Bounce
}

// EffectiveBandwidth derates the nominal path bandwidth when the storage
// is unregistered and must bounce through the host.
func (r *Registry) EffectiveBandwidth(s *tensor.Storage, nominal units.Bandwidth) units.Bandwidth {
	if r.IsRegistered(s) {
		return nominal
	}
	return units.Bandwidth(float64(nominal) * r.BouncePenalty)
}

// Registrations returns how many distinct registrations were performed.
func (r *Registry) Registrations() int { return r.registrations }

// Deregistrations returns how many deregistrations were performed.
func (r *Registry) Deregistrations() int { return r.deregistrations }

// MallocHook is the LD_PRELOAD interposition analogue: attached to the GPU
// allocator, it registers every allocation with the GDS registry and
// deregisters on free, so the training framework's own allocator can stay
// in place (the paper keeps PyTorch's caching allocator untouched).
type MallocHook struct {
	reg *Registry
	// Enabled allows experiments to toggle interposition to measure the
	// bounce-path cost (ablation: GDS off).
	Enabled bool
}

// NewMallocHook builds a hook bound to the registry, enabled by default.
func NewMallocHook(reg *Registry) *MallocHook {
	return &MallocHook{reg: reg, Enabled: true}
}

// OnAlloc implements the allocator hook: register the new storage.
func (h *MallocHook) OnAlloc(s *tensor.Storage) {
	if h.Enabled {
		h.reg.Register(s)
	}
}

// OnFree implements the allocator hook: deregister the storage.
func (h *MallocHook) OnFree(s *tensor.Storage) {
	if h.Enabled {
		h.reg.Deregister(s)
	}
}
