package gds

import (
	"testing"

	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	s := tensor.NewStorage(1024, tensor.GPU)
	if r.IsRegistered(s) {
		t.Error("fresh storage registered")
	}
	if r.PathFor(s) != Bounce {
		t.Error("unregistered storage should bounce")
	}
	r.Register(s)
	r.Register(s) // idempotent
	if !r.IsRegistered(s) || r.PathFor(s) != Direct {
		t.Error("registration missing")
	}
	if r.Registrations() != 1 {
		t.Errorf("registrations = %d", r.Registrations())
	}
	r.Deregister(s)
	r.Deregister(s)
	if r.IsRegistered(s) || r.Deregistrations() != 1 {
		t.Error("deregistration wrong")
	}
}

func TestEffectiveBandwidthDerating(t *testing.T) {
	r := NewRegistry()
	s := tensor.NewStorage(1024, tensor.GPU)
	nominal := units.Bandwidth(20 * units.GBps)
	if bw := r.EffectiveBandwidth(s, nominal); bw != 10*units.GBps {
		t.Errorf("bounce bandwidth = %v", bw)
	}
	r.Register(s)
	if bw := r.EffectiveBandwidth(s, nominal); bw != nominal {
		t.Errorf("direct bandwidth = %v", bw)
	}
}

func TestMallocHook(t *testing.T) {
	r := NewRegistry()
	h := NewMallocHook(r)
	s := tensor.NewStorage(64, tensor.GPU)
	h.OnAlloc(s)
	if !r.IsRegistered(s) {
		t.Error("hook did not register")
	}
	h.OnFree(s)
	if r.IsRegistered(s) {
		t.Error("hook did not deregister")
	}
	// Disabled hook is inert (the ablation path).
	h.Enabled = false
	s2 := tensor.NewStorage(64, tensor.GPU)
	h.OnAlloc(s2)
	if r.IsRegistered(s2) {
		t.Error("disabled hook registered memory")
	}
}

func TestPathString(t *testing.T) {
	if Direct.String() != "direct" || Bounce.String() != "bounce" {
		t.Error("path names wrong")
	}
}
