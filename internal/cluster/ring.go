// Package cluster is the resilient multi-replica front for the planning
// service: a consistent-hash router that keeps a sharded cluster of
// serve.Server replicas answering — byte-identically and without 5xx —
// through replica death, restart and overload.
//
// The pieces compose the standard availability toolkit around the
// service's one structural advantage, determinism. A consistent-hash
// ring over exp.ShapeHash sends every request for one plan shape to the
// replica whose compiled plans, arenas and rendered-body cache are hot
// for it; an active health registry ejects dead replicas (rebuilding the
// ring over the survivors) and readmits them when they recover; failed
// attempts retry against the ring successor under capped exponential
// backoff, a token-bucket retry budget and a tail-latency hedge; a
// restarted replica refills its cache from its peers instead of
// re-simulating (serve's /v1/cachefill); and when every replica for a
// shard is gone the router serves its last good body, labeled stale,
// rather than a 5xx. Because every body is a pure function of the
// normalized config, a retried, hedged, peer-filled or stale answer is
// byte-identical to a fresh simulation — failover here trades latency,
// never correctness. The chaos drill (Drill) proves exactly that with a
// live kill/restart under load.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per replica. 128 keeps the
// largest/smallest ownership ratio within a few percent for small
// clusters while the ring stays a couple of KB.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over replica indices. The
// router swaps in a fresh Ring on every health transition; lookups are
// lock-free reads of sorted points.
type Ring struct {
	points []ringPoint // sorted by hash
	// distinct is how many distinct replicas the ring spans.
	distinct int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// NewRing builds a ring over the given replica IDs (positions in the
// slice are the replica indices lookups return). A nil or all-empty id
// list yields an empty ring; vnodes <= 0 uses DefaultVNodes. IDs hash by
// name, so a replica owns the same arc of key space whichever process
// builds the ring and however the survivor set shrinks — the property
// that makes "kill one replica" move only that replica's shards.
func NewRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(ids)*vnodes)}
	for i, id := range ids {
		if id == "" {
			continue
		}
		r.distinct++
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", id, v)
			// FNV over short, similar strings clusters; the finalizer
			// spreads the points uniformly around the ring, which is what
			// ownership balance comes from.
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Len returns how many distinct replicas the ring spans.
func (r *Ring) Len() int { return r.distinct }

// Owner returns the replica index owning key: the first virtual node at
// or clockwise of the key's position. It returns -1 on an empty ring.
func (r *Ring) Owner(key uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	return r.points[r.at(key)].replica
}

// at locates the first point at or clockwise of key, wrapping.
func (r *Ring) at(key uint64) int {
	// Binary search; sort.Search allocates nothing.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		return 0
	}
	return i
}

// SuccessorsInto appends the distinct replicas for key in ring order —
// the owner first, then each next-distinct successor — into dst and
// returns it. The order is the failover (and hedging) preference list:
// removing the owner from the ring makes exactly the next entry the new
// owner, so retrying down this list hits the replica a rebuilt ring
// would route to anyway. dst is reused to keep the hot routing path
// allocation-free.
func (r *Ring) SuccessorsInto(key uint64, dst []int) []int {
	dst = dst[:0]
	if len(r.points) == 0 {
		return dst
	}
	start := r.at(key)
	for i := 0; i < len(r.points) && len(dst) < r.distinct; i++ {
		rep := r.points[(start+i)%len(r.points)].replica
		seen := false
		for _, d := range dst {
			if d == rep {
				seen = true
				break
			}
		}
		if !seen {
			dst = append(dst, rep)
		}
	}
	return dst
}

// Successors is SuccessorsInto with a fresh slice.
func (r *Ring) Successors(key uint64) []int {
	return r.SuccessorsInto(key, make([]int, 0, r.distinct))
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection that
// turns the clustered hashes of similar ids into uniform ring positions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
