package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// This file holds the router-overhead benchmark workloads cmd/bench
// drives (and internal/cluster's own Benchmark* wrappers reuse): the
// ring lookup every routed request pays, which must stay
// allocation-free, and the full hedged-request path — shard key, ring
// walk, primary forward, hedge fire, hedge win, stale-cache record —
// over an in-memory transport, so the measured cost is the router's
// own machinery and not a socket's.

// RingBench measures the per-request shard lookup: Owner plus the
// successor walk that yields the failover order.
type RingBench struct {
	ring *Ring
	dst  []int
	sink int
}

// NewRingBench builds the ring outside the timed region.
func NewRingBench(replicas int) *RingBench {
	ids := make([]string, replicas)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-r%d", i)
	}
	return &RingBench{ring: NewRing(ids, 0), dst: make([]int, 0, replicas)}
}

// Lookup performs n lookups over a spread of keys, reusing the
// destination slice the way the router's serve loop does. The path must
// stay allocation-free: it runs once per routed request.
func (rb *RingBench) Lookup(n int) {
	sink := 0
	for i := 0; i < n; i++ {
		key := mix64(uint64(i))
		rb.dst = rb.ring.SuccessorsInto(key, rb.dst)
		sink += rb.dst[0]
	}
	rb.sink = sink
}

// HedgeBench measures the full hedged-request path through the router
// handler. Two in-memory replicas answer identically; the shard owner
// is rigged to outlive the hedge delay, so every request decodes its
// shard key, walks the ring, forwards to the owner, fires a hedge at
// the successor and returns the hedge's answer. ns/op is therefore
// bounded below by the configured hedge delay; allocs/op is the durable
// number — what one routed-and-hedged request costs in garbage.
type HedgeBench struct {
	rt   *Router
	blob []byte
}

// benchHedgeDelay is deliberately tiny — the hedge fires as soon as the
// runtime's timer granularity allows (~100µs on bare metal, around a
// millisecond on coarse-tick VMs). The rigged owner sleeps 200x longer,
// far past any plausible granularity, so the hedge wins every race and
// ns/op ≈ timer granularity + router machinery rather than the owner's
// sleep.
const benchHedgeDelay = 100 * time.Microsecond

// NewHedgeBench wires the two-replica in-memory cluster outside the
// timed region.
func NewHedgeBench() (*HedgeBench, error) {
	blob := []byte(`{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"strategy":"ssdtrain"}`)
	tr := &benchTransport{
		delay:   200 * benchHedgeDelay,
		payload: []byte(`{"bench":"hedged-request"}` + "\n"),
	}
	rt, err := NewRouter(Options{
		Replicas: []Replica{
			{ID: "hb0", URL: "http://hb0"},
			{ID: "hb1", URL: "http://hb1"},
		},
		Client:         &http.Client{Transport: tr},
		AttemptTimeout: time.Second,
		HedgeDelay:     benchHedgeDelay,
		// Every request must be allowed its hedge, or the bench would
		// silently degrade into measuring the owner's rigged latency.
		RetryBudgetRatio: 1,
		RetryBudgetCap:   1 << 20,
		Probe:            ProbeOptions{Interval: -1},
	})
	if err != nil {
		return nil, err
	}
	shape, _ := rt.shardKey("plan", blob)
	owner := rt.ring.Load().Owner(shape)
	tr.slowHost = strings.TrimPrefix(rt.opts.Replicas[owner].URL, "http://")
	return &HedgeBench{rt: rt, blob: blob}, nil
}

// Do routes n requests and fails unless every one succeeded and the
// hedge path demonstrably carried the load.
func (hb *HedgeBench) Do(n int) error {
	h := hb.rt.Handler()
	before := hb.rt.Metrics().HedgeWins
	for i := 0; i < n; i++ {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, "/v1/plan", bytes.NewReader(hb.blob))
		if err != nil {
			return err
		}
		rec := &benchRecorder{}
		h.ServeHTTP(rec, req)
		if rec.status != http.StatusOK {
			return fmt.Errorf("cluster: hedge bench request %d answered %d", i, rec.status)
		}
	}
	m := hb.rt.Metrics()
	if wins := m.HedgeWins - before; wins < int64(n) {
		return fmt.Errorf("cluster: hedge bench: %d hedge wins for %d requests — the rigged owner answered first", wins, n)
	}
	return nil
}

// benchTransport is the in-memory replica pair: the slow host sleeps
// past the hedge delay, everyone answers the same fixed body.
type benchTransport struct {
	slowHost string
	delay    time.Duration
	payload  []byte
}

func (t *benchTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	if req.URL.Host == t.slowHost {
		select {
		case <-time.After(t.delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     h,
		Body:       io.NopCloser(bytes.NewReader(t.payload)),
		Request:    req,
	}, nil
}

// benchRecorder is a minimal ResponseWriter that discards bodies — the
// bench measures the router, not a recorder's buffer growth.
type benchRecorder struct {
	header http.Header
	status int
	wrote  int
}

func (r *benchRecorder) Header() http.Header {
	if r.header == nil {
		r.header = make(http.Header)
	}
	return r.header
}

func (r *benchRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
}

func (r *benchRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	r.wrote += len(p)
	return len(p), nil
}
