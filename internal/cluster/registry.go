package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ssdtrain/internal/serve"
)

// Replica names one serve.Server process behind the router.
type Replica struct {
	ID  string
	URL string
}

// ProbeOptions tunes the active health checker.
type ProbeOptions struct {
	// Interval between probe rounds (0 = DefaultProbeInterval,
	// negative = active probing off; passive signals still eject).
	Interval time.Duration
	// Timeout bounds one /healthz probe (0 = DefaultProbeTimeout).
	Timeout time.Duration
	// FailThreshold is how many consecutive failures (probe or forward)
	// eject a replica (0 = DefaultFailThreshold).
	FailThreshold int
	// SuccessThreshold is how many consecutive successful probes readmit
	// an ejected replica (0 = DefaultSuccessThreshold). Readmission is
	// stricter than ejection on purpose: flapping replicas must prove
	// themselves before taking traffic back.
	SuccessThreshold int
}

// Probe defaults.
const (
	DefaultProbeInterval    = time.Second
	DefaultProbeTimeout     = 500 * time.Millisecond
	DefaultFailThreshold    = 2
	DefaultSuccessThreshold = 2
)

func (p ProbeOptions) withDefaults() ProbeOptions {
	if p.Interval == 0 {
		p.Interval = DefaultProbeInterval
	}
	if p.Timeout <= 0 {
		p.Timeout = DefaultProbeTimeout
	}
	if p.FailThreshold <= 0 {
		p.FailThreshold = DefaultFailThreshold
	}
	if p.SuccessThreshold <= 0 {
		p.SuccessThreshold = DefaultSuccessThreshold
	}
	return p
}

// registry tracks per-replica health from two signals: active /healthz
// probes on a timer, and passive success/failure reports from the
// router's own forwards. Health transitions invoke onChange (the
// router's ring rebuild) exactly once per transition.
type registry struct {
	replicas []*replicaState
	client   *http.Client
	opts     ProbeOptions
	onChange func()
}

// replicaState is one replica's health ledger.
type replicaState struct {
	id, url string

	mu          sync.Mutex
	healthy     bool
	consecFails int
	consecOKs   int

	probes       atomic.Int64
	failures     atomic.Int64
	ejections    atomic.Int64
	readmissions atomic.Int64
}

func newRegistry(replicas []Replica, client *http.Client, opts ProbeOptions, onChange func()) *registry {
	if client == nil {
		client = &http.Client{}
	}
	g := &registry{client: client, opts: opts.withDefaults(), onChange: onChange}
	for _, r := range replicas {
		g.replicas = append(g.replicas, &replicaState{id: r.ID, url: r.URL, healthy: true})
	}
	return g
}

// start runs the probe loop until ctx ends. With probing disabled
// (negative interval) it returns immediately — the passive signals from
// forwards still drive ejection, but recovery then needs a successful
// probe, so long-lived routers should keep probing on.
func (g *registry) start(ctx context.Context) {
	if g.opts.Interval < 0 {
		return
	}
	go func() {
		tick := time.NewTicker(g.opts.Interval)
		defer tick.Stop()
		for {
			g.probeAll(ctx)
			select {
			case <-tick.C:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// probeAll probes every replica once, in parallel — a hung replica must
// not delay its peers' probes past the shared timeout.
func (g *registry) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for i := range g.replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.probe(ctx, i)
		}(i)
	}
	wg.Wait()
}

func (g *registry) probe(ctx context.Context, i int) {
	r := g.replicas[i]
	r.probes.Add(1)
	ctx, cancel := context.WithTimeout(ctx, g.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/healthz", nil)
	if err != nil {
		g.observe(i, false)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.observe(i, false)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	g.observe(i, resp.StatusCode == http.StatusOK)
}

// reportSuccess/reportFailure are the passive signals: the router calls
// them for every forward outcome, so a dead replica stops taking
// traffic after FailThreshold failed forwards even between probe rounds.
func (g *registry) reportSuccess(i int) { g.observe(i, true) }
func (g *registry) reportFailure(i int) { g.observe(i, false) }

// observe folds one health signal into the replica's ledger, firing
// onChange on an eject or readmit transition.
func (g *registry) observe(i int, ok bool) {
	r := g.replicas[i]
	transition := false
	r.mu.Lock()
	if ok {
		r.consecOKs++
		r.consecFails = 0
		if !r.healthy && r.consecOKs >= g.opts.SuccessThreshold {
			r.healthy = true
			r.readmissions.Add(1)
			transition = true
		}
	} else {
		r.failures.Add(1)
		r.consecFails++
		r.consecOKs = 0
		if r.healthy && r.consecFails >= g.opts.FailThreshold {
			r.healthy = false
			r.ejections.Add(1)
			transition = true
		}
	}
	r.mu.Unlock()
	if transition && g.onChange != nil {
		g.onChange()
	}
}

// healthyIDs returns the replica ID list with ejected replicas blanked —
// the shape NewRing wants, preserving indices so ring lookups stay
// positions into the registry.
func (g *registry) healthyIDs() []string {
	ids := make([]string, len(g.replicas))
	for i, r := range g.replicas {
		r.mu.Lock()
		if r.healthy {
			ids[i] = r.id
		}
		r.mu.Unlock()
	}
	return ids
}

// allIDs returns every replica ID — the full-ring fallback when no
// replica is healthy (better to try dead replicas than nobody).
func (g *registry) allIDs() []string {
	ids := make([]string, len(g.replicas))
	for i, r := range g.replicas {
		ids[i] = r.id
	}
	return ids
}

func (g *registry) isHealthy(i int) bool {
	r := g.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy
}

// snapshot renders the registry for /metrics.
func (g *registry) snapshot() []serve.ReplicaHealthMetrics {
	out := make([]serve.ReplicaHealthMetrics, 0, len(g.replicas))
	for i, r := range g.replicas {
		out = append(out, serve.ReplicaHealthMetrics{
			ID:           r.id,
			URL:          r.url,
			Healthy:      g.isHealthy(i),
			Probes:       r.probes.Load(),
			Failures:     r.failures.Load(),
			Ejections:    r.ejections.Load(),
			Readmissions: r.readmissions.Load(),
		})
	}
	return out
}
