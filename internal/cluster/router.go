package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/lru"
	"ssdtrain/internal/serve"
)

// Options configures a Router.
type Options struct {
	// Replicas is the cluster membership. Indices are stable identities:
	// the ring, the registry and /metrics all refer to replicas by
	// position here.
	Replicas []Replica
	// VNodes is the virtual-node count per replica (0 = DefaultVNodes).
	VNodes int
	// Client issues forwards and probes (nil = a default client; tests
	// and drills inject in-memory transports).
	Client *http.Client
	// AttemptTimeout bounds one upstream attempt (0 = DefaultAttemptTimeout).
	AttemptTimeout time.Duration
	// MaxAttempts bounds sequential attempts per request, the first
	// included; hedges are gated separately by the budget
	// (0 = DefaultMaxAttempts).
	MaxAttempts int
	// HedgeDelay is how long the primary attempt may run before a
	// speculative attempt is fired at the next ring successor
	// (0 = DefaultHedgeDelay, negative = hedging off). First answer wins;
	// the loser is cancelled by the request finishing. Hedges trade a
	// bounded amount of duplicate work for the tail: a request that
	// landed on a slow or dying replica is not stuck behind the full
	// attempt timeout.
	HedgeDelay time.Duration
	// Backoff paces sequential retries (zero value = DefaultBackoff).
	Backoff Backoff
	// RetryBudgetRatio is how many retry/hedge tokens each routed request
	// earns (0 = DefaultRetryBudgetRatio). RetryBudgetCap bounds the
	// bucket (0 = DefaultRetryBudgetCap).
	RetryBudgetRatio float64
	RetryBudgetCap   float64
	// StaleCapacity sizes the last-good body cache backing the
	// stale-serve fallback (0 = DefaultStaleCapacity, negative = no
	// stale serving).
	StaleCapacity int
	// Probe tunes the health checker.
	Probe ProbeOptions
}

// Router option defaults.
const (
	DefaultAttemptTimeout   = time.Minute
	DefaultMaxAttempts      = 3
	DefaultHedgeDelay       = 200 * time.Millisecond
	DefaultRetryBudgetRatio = 0.2
	DefaultRetryBudgetCap   = 16
	DefaultStaleCapacity    = 512
)

// DefaultBackoff paces retries: full jitter over an exponentially
// growing window starting at 5ms, capped at 100ms — long enough to
// de-correlate a herd, short enough that a failover is not slower than
// the simulation it protects.
var DefaultBackoff = Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond}

// maxForwardBody bounds buffered upstream responses. The router buffers
// whole bodies on purpose: a buffered response can be retried, hedged,
// byte-compared and kept for stale serving, none of which a pass-through
// stream allows. Sweep responses are the large case and are bounded by
// the sweep point limit times a small body.
const maxForwardBody = 8 << 20

// Router is the consistent-hash front of a planning cluster. It owns no
// simulation: every answer comes from a replica, a retry, a hedge or the
// stale cache, and every 200 body is byte-identical to what a fresh
// simulation of the same config renders.
type Router struct {
	opts     Options
	registry *registry
	ring     atomic.Pointer[Ring]
	fullRing *Ring
	stale    *lru.Cache[staleKey, []byte]
	budget   *budget
	stats    *routerStats
	mux      *http.ServeMux
}

// staleKey identifies one last-good body: the endpoint plus the exact
// answer identity (exp.ConfigHash for plan bodies, a raw-body digest
// otherwise).
type staleKey struct {
	endpoint string
	hash     uint64
}

// NewRouter builds a Router; call Start to begin health probing.
func NewRouter(opts Options) (*Router, error) {
	if len(opts.Replicas) == 0 {
		return nil, errors.New("cluster: a router needs at least one replica")
	}
	for i, r := range opts.Replicas {
		if r.ID == "" || r.URL == "" {
			return nil, fmt.Errorf("cluster: replica %d needs both an id and a url", i)
		}
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = DefaultAttemptTimeout
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	switch {
	case opts.HedgeDelay == 0:
		opts.HedgeDelay = DefaultHedgeDelay
	case opts.HedgeDelay < 0:
		opts.HedgeDelay = 0
	}
	if opts.Backoff == (Backoff{}) {
		opts.Backoff = DefaultBackoff
	}
	if opts.RetryBudgetRatio <= 0 {
		opts.RetryBudgetRatio = DefaultRetryBudgetRatio
	}
	if opts.RetryBudgetCap <= 0 {
		opts.RetryBudgetCap = DefaultRetryBudgetCap
	}
	rt := &Router{
		opts:   opts,
		budget: newBudget(opts.RetryBudgetRatio, opts.RetryBudgetCap),
		stats:  newRouterStats(time.Now()),
		mux:    http.NewServeMux(),
	}
	switch {
	case opts.StaleCapacity == 0:
		opts.StaleCapacity = DefaultStaleCapacity
		fallthrough
	case opts.StaleCapacity > 0:
		rt.stale = lru.New[staleKey, []byte](opts.StaleCapacity)
	}
	rt.registry = newRegistry(opts.Replicas, opts.Client, opts.Probe, rt.rebuild)
	rt.fullRing = NewRing(rt.registry.allIDs(), opts.VNodes)
	rt.ring.Store(rt.fullRing)
	for _, ep := range []string{"plan", "sweep", "trace", "fleet"} {
		ep := ep
		rt.mux.HandleFunc("/v1/"+ep, func(w http.ResponseWriter, r *http.Request) {
			rt.handle(w, r, ep)
		})
	}
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return rt, nil
}

// Start begins active health probing; probing stops when ctx ends.
func (rt *Router) Start(ctx context.Context) { rt.registry.start(ctx) }

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// rebuild swaps in a fresh ring over the currently healthy replicas,
// falling back to the full-membership ring when nobody is healthy —
// trying dead replicas beats refusing everyone, and the stale fallback
// still catches total loss.
func (rt *Router) rebuild() {
	rt.stats.ringRebuilds.Add(1)
	ring := NewRing(rt.registry.healthyIDs(), rt.opts.VNodes)
	if ring.Len() == 0 {
		ring = rt.fullRing
	}
	rt.ring.Store(ring)
}

// shardKey derives the routing key (the plan-shape hash) and the stale
// cache key from one request body. Bodies that fail to decode route by
// raw digest — the owning replica then answers the 4xx, so the router
// never duplicates the service's validation rules.
func (rt *Router) shardKey(endpoint string, body []byte) (uint64, staleKey) {
	digest := func() uint64 {
		h := fnv.New64a()
		h.Write([]byte(endpoint))
		h.Write(body)
		return h.Sum64()
	}
	switch endpoint {
	case "plan", "trace":
		var req serve.PlanRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return digest(), staleKey{endpoint, digest()}
		}
		cfg, err := req.RunConfig()
		if err != nil {
			return digest(), staleKey{endpoint, digest()}
		}
		shape, err := exp.ShapeHash(cfg)
		if err != nil {
			return digest(), staleKey{endpoint, digest()}
		}
		exact, _ := exp.ConfigHash(cfg)
		return shape, staleKey{endpoint, exact}
	case "sweep":
		var req serve.SweepRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return digest(), staleKey{endpoint, digest()}
		}
		cfg, err := req.Base.RunConfig()
		if err != nil {
			return digest(), staleKey{endpoint, digest()}
		}
		shape, err := exp.ShapeHash(cfg)
		if err != nil {
			return digest(), staleKey{endpoint, digest()}
		}
		return shape, staleKey{endpoint, digest()}
	default:
		d := digest()
		return d, staleKey{endpoint, d}
	}
}

// attemptOut is one upstream attempt's outcome.
type attemptOut struct {
	replica int
	hedge   bool
	status  int
	header  http.Header
	body    []byte
	err     error
}

// ok reports a terminal answer the caller should receive as-is: any
// response except saturation (429) and server errors, which retry.
func (o *attemptOut) ok() bool {
	return o.err == nil && o.status < 500 && o.status != http.StatusTooManyRequests
}

// forward performs one attempt against replica rep.
func (rt *Router) forward(ctx context.Context, endpoint string, body []byte, rep int, hedge bool) attemptOut {
	out := attemptOut{replica: rep, hedge: hedge}
	ctx, cancel := context.WithTimeout(ctx, rt.opts.AttemptTimeout)
	defer cancel()
	url := rt.opts.Replicas[rep].URL + "/v1/" + endpoint
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(body)))
	if err != nil {
		out.err = err
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.opts.Client.Do(req)
	if err != nil {
		out.err = err
		return out
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	if err != nil {
		out.err = err
		return out
	}
	out.status = resp.StatusCode
	out.header = resp.Header
	out.body = blob
	return out
}

// do runs the attempt loop for one request: the primary forward to the
// shard owner, a budgeted hedge to the next successor if the primary
// outlives the hedge delay, and budgeted, backoff-paced retries down the
// successor list on failure. It returns the first terminal answer, or
// the last failure once every permitted attempt is spent.
func (rt *Router) do(ctx context.Context, endpoint string, body []byte, order []int) attemptOut {
	results := make(chan attemptOut, len(order))
	inflight, started, retries := 0, 0, 0
	launch := func(hedge bool) {
		rep := order[started]
		started++
		inflight++
		rt.stats.attempts.Add(1)
		go func() { results <- rt.forward(ctx, endpoint, body, rep, hedge) }()
	}
	launch(false)
	var hedgeC <-chan time.Time
	if rt.opts.HedgeDelay > 0 && len(order) > 1 {
		t := time.NewTimer(rt.opts.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	var last attemptOut
	for inflight > 0 {
		select {
		case o := <-results:
			inflight--
			if o.err != nil || o.status >= 500 {
				rt.registry.reportFailure(o.replica)
			} else {
				rt.registry.reportSuccess(o.replica)
			}
			if o.ok() {
				if o.hedge {
					rt.stats.hedgeWins.Add(1)
				}
				return o
			}
			last = o
			if started < len(order) && retries+1 < rt.opts.MaxAttempts {
				if rt.budget.trySpend() {
					retries++
					rt.stats.retries.Add(1)
					sleepCtx(ctx, rt.opts.Backoff.Delay(retries-1))
					launch(false)
				} else {
					rt.stats.budgetExhausted.Add(1)
				}
			}
		case <-hedgeC:
			hedgeC = nil
			if started < len(order) {
				if rt.budget.trySpend() {
					rt.stats.hedges.Add(1)
					launch(true)
				} else {
					rt.stats.budgetExhausted.Add(1)
				}
			}
		}
	}
	return last
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// forwardedHeaders is what the router relays from a replica answer: the
// content type plus the cluster attribution and staleness labels.
var forwardedHeaders = []string{
	"Content-Type", "Retry-After",
	serve.HeaderReplica, serve.HeaderStale, serve.HeaderStaleFor, serve.HeaderRenderedAt,
}

func (rt *Router) handle(w http.ResponseWriter, r *http.Request, endpoint string) {
	start := time.Now()
	ep := rt.stats.endpoint(endpoint)
	status := rt.serve(w, r, endpoint)
	ep.observe(status, time.Since(start))
}

func (rt *Router) serve(w http.ResponseWriter, r *http.Request, endpoint string) int {
	if r.Method != http.MethodPost {
		return writeJSONError(w, http.StatusMethodNotAllowed, "cluster: POST only")
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		return writeJSONError(w, http.StatusBadRequest, "cluster: "+err.Error())
	}
	rt.stats.requests.Add(1)
	rt.budget.onRequest()

	shape, sk := rt.shardKey(endpoint, body)
	order := rt.ring.Load().Successors(shape)
	if len(order) == 0 {
		order = rt.fullRing.Successors(shape)
	}
	out := rt.do(r.Context(), endpoint, body, order)
	if out.ok() {
		if out.status == http.StatusOK && endpoint != "trace" && rt.stale != nil {
			rt.stale.PutStamped(sk, out.body, time.Now())
		}
		for _, h := range forwardedHeaders {
			if v := out.header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(out.status)
		w.Write(out.body)
		return out.status
	}

	// Every permitted attempt failed. Degrade to the last good body for
	// this exact question — deterministic bodies never expire, they only
	// age, so a labeled stale 200 strictly beats a 5xx.
	if rt.stale != nil {
		if blob, at, hit := rt.stale.GetStamped(sk); hit {
			rt.stats.staleServed.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set(serve.HeaderStale, "true")
			w.Header().Set(serve.HeaderStaleFor, time.Since(at).Round(time.Millisecond).String())
			w.WriteHeader(http.StatusOK)
			w.Write(blob)
			return http.StatusOK
		}
		rt.stats.staleMisses.Add(1)
	}
	if out.err != nil {
		return writeJSONError(w, http.StatusBadGateway, "cluster: no replica answered: "+out.err.Error())
	}
	// Forward the cluster-wide verdict (e.g. 429 when every replica is
	// saturated) untouched.
	for _, h := range forwardedHeaders {
		if v := out.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(out.status)
	w.Write(out.body)
	return out.status
}

// writeJSONError mirrors serve's error body shape so clients parse one
// schema whichever layer answered.
func writeJSONError(w http.ResponseWriter, status int, msg string) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	blob, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	w.Write(append(blob, '\n'))
	return status
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "cluster: GET only")
		return
	}
	m := rt.Metrics()
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(m.Prometheus())
		return
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(blob, '\n'))
}

// Metrics snapshots the router's counters.
func (rt *Router) Metrics() serve.RouterMetrics {
	m := serve.RouterMetrics{
		UptimeSeconds:        time.Since(rt.stats.start).Seconds(),
		Endpoints:            make(map[string]serve.EndpointMetrics),
		Requests:             rt.stats.requests.Load(),
		Attempts:             rt.stats.attempts.Load(),
		Retries:              rt.stats.retries.Load(),
		Hedges:               rt.stats.hedges.Load(),
		HedgeWins:            rt.stats.hedgeWins.Load(),
		RetryBudgetExhausted: rt.stats.budgetExhausted.Load(),
		StaleServed:          rt.stats.staleServed.Load(),
		StaleMisses:          rt.stats.staleMisses.Load(),
		RingReplicas:         rt.ring.Load().Len(),
		RingRebuilds:         rt.stats.ringRebuilds.Load(),
		Replicas:             rt.registry.snapshot(),
	}
	rt.stats.mu.Lock()
	for name, ep := range rt.stats.endpoints {
		m.Endpoints[name] = ep.metrics()
	}
	rt.stats.mu.Unlock()
	return m
}

// routerStats mirrors the serve layer's registry for the router's own
// counters.
type routerStats struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*epStats

	requests        atomic.Int64
	attempts        atomic.Int64
	retries         atomic.Int64
	hedges          atomic.Int64
	hedgeWins       atomic.Int64
	budgetExhausted atomic.Int64
	staleServed     atomic.Int64
	staleMisses     atomic.Int64
	ringRebuilds    atomic.Int64
}

func newRouterStats(start time.Time) *routerStats {
	return &routerStats{start: start, endpoints: make(map[string]*epStats)}
}

func (s *routerStats) endpoint(name string) *epStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.endpoints[name]
	if !ok {
		e = &epStats{}
		s.endpoints[name] = e
	}
	return e
}

// epStats is one routed endpoint's counters and log2 latency histogram
// (bucket i holds [2^i, 2^(i+1)) microseconds, like the serve layer's).
type epStats struct {
	count     atomic.Int64
	status2xx atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64
	buckets   [32]atomic.Int64
	sumNs     atomic.Int64
}

func (e *epStats) observe(status int, d time.Duration) {
	e.count.Add(1)
	switch {
	case status >= 500:
		e.status5xx.Add(1)
	case status >= 400:
		e.status4xx.Add(1)
	default:
		e.status2xx.Add(1)
	}
	us := d.Microseconds()
	i := 0
	for us > 1 && i < len(e.buckets)-1 {
		us >>= 1
		i++
	}
	e.buckets[i].Add(1)
	e.sumNs.Add(d.Nanoseconds())
}

func (e *epStats) quantile(q float64) int64 {
	total := e.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range e.buckets {
		seen += e.buckets[i].Load()
		if seen >= rank {
			return int64(1) << (i + 1)
		}
	}
	return int64(1) << len(e.buckets)
}

func (e *epStats) metrics() serve.EndpointMetrics {
	m := serve.EndpointMetrics{
		Count:     e.count.Load(),
		Status2xx: e.status2xx.Load(),
		Status4xx: e.status4xx.Load(),
		Status5xx: e.status5xx.Load(),
		P50Us:     e.quantile(0.50),
		P90Us:     e.quantile(0.90),
		P99Us:     e.quantile(0.99),
	}
	if n := e.count.Load(); n > 0 {
		m.MeanUs = e.sumNs.Load() / n / 1e3
	}
	return m
}
