package cluster

import (
	"testing"
)

func ids(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + i))
	}
	return out
}

// TestRingConsistency pins the property the failover design leans on:
// removing one replica moves only that replica's keys, and it moves each
// of them to exactly its first surviving successor — so a router
// retrying down the successor list lands where a rebuilt ring would
// route anyway.
func TestRingConsistency(t *testing.T) {
	full := NewRing(ids(4), 0)
	// Remove replica 2 by blanking its id, preserving indices.
	without := NewRing([]string{"a", "b", "", "d"}, 0)
	moved, kept := 0, 0
	for key := uint64(0); key < 20000; key++ {
		k := key * 0x9e3779b97f4a7c15
		was, now := full.Owner(k), without.Owner(k)
		if was != 2 {
			kept++
			if now != was {
				t.Fatalf("key %d moved %d -> %d though its owner survived", k, was, now)
			}
			continue
		}
		moved++
		succ := full.Successors(k)
		want := -1
		for _, s := range succ {
			if s != 2 {
				want = s
				break
			}
		}
		if now != want {
			t.Fatalf("key %d moved to %d, want first surviving successor %d", k, now, want)
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: %d moved, %d kept", moved, kept)
	}
}

// TestSuccessorsOrder: the successor list is distinct, starts with the
// owner and covers every replica.
func TestSuccessorsOrder(t *testing.T) {
	r := NewRing(ids(5), 0)
	for key := uint64(1); key < 1000; key += 7 {
		succ := r.Successors(key)
		if len(succ) != 5 {
			t.Fatalf("key %d: %d successors, want 5", key, len(succ))
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("key %d: successor list starts with %d, owner is %d", key, succ[0], r.Owner(key))
		}
		seen := map[int]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %d: duplicate successor %d", key, s)
			}
			seen[s] = true
		}
	}
}

// TestRingBalance: with the default virtual-node count no replica owns a
// grossly outsized share of the key space.
func TestRingBalance(t *testing.T) {
	r := NewRing(ids(3), 0)
	counts := make([]int, 3)
	const keys = 30000
	for key := uint64(0); key < keys; key++ {
		counts[r.Owner(key*0x9e3779b97f4a7c15)]++
	}
	for i, n := range counts {
		share := float64(n) / keys
		if share < 0.15 || share > 0.55 {
			t.Fatalf("replica %d owns %.1f%% of the key space: %v", i, share*100, counts)
		}
	}
}

// TestEmptyRing: lookups on an empty ring degrade, not panic.
func TestEmptyRing(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner(42); got != -1 {
		t.Fatalf("empty ring owner = %d, want -1", got)
	}
	if got := r.Successors(42); len(got) != 0 {
		t.Fatalf("empty ring successors = %v, want none", got)
	}
}
