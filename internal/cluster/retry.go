package cluster

import (
	"math/rand/v2"
	"sync"
	"time"
)

// Backoff is a capped exponential backoff with full jitter: attempt n
// (0-based) sleeps a uniform random duration in [0, min(Base<<n, Max)).
// Full jitter (rather than jittering around the midpoint) is what
// de-correlates a thundering herd fastest: after a replica dies, every
// router client retrying it spreads across the whole window instead of
// arriving in a decaying pulse train.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
}

// Delay returns the jittered sleep before attempt n; attempt 0 is the
// first retry.
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	max := b.Base
	for i := 0; i < attempt && max < b.Max; i++ {
		max <<= 1
	}
	if b.Max > 0 && max > b.Max {
		max = b.Max
	}
	return time.Duration(rand.Int64N(int64(max)))
}

// budget is the token-bucket retry budget: every routed request earns
// ratio tokens, every retry or hedge spends one whole token. Bounding
// extra attempts to a fraction of real traffic is the anti-retry-storm
// guard — when the whole cluster browns out, retries and hedges are the
// multiplier that turns high load into total collapse, so the budget
// lets them amplify a few percent of traffic and no more. The bucket
// cap keeps a long quiet period from banking an amplification burst.
type budget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	cap    float64
}

func newBudget(ratio float64, cap float64) *budget {
	if cap <= 0 {
		cap = 10
	}
	// Start with a full bucket: the first requests after startup may
	// retry freely (they carry the cluster's cold-start failures).
	return &budget{tokens: cap, ratio: ratio, cap: cap}
}

// onRequest credits one routed request's worth of retry allowance.
func (b *budget) onRequest() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

// trySpend consumes one token for a retry or hedge, reporting false —
// the attempt must not be made — when the budget is exhausted.
func (b *budget) trySpend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
