package cluster

import "testing"

// The Benchmark* wrappers run the same workloads cmd/bench records into
// BENCH_cluster.json, so `go test -bench` and the committed record can
// never measure different code.

func BenchmarkRingLookup(b *testing.B) {
	rb := NewRingBench(8)
	b.ReportAllocs()
	b.ResetTimer()
	rb.Lookup(b.N)
}

func BenchmarkHedgedRequest(b *testing.B) {
	hb, err := NewHedgeBench()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := hb.Do(b.N); err != nil {
		b.Fatal(err)
	}
}
