package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/models"
	"ssdtrain/internal/serve"
)

// The chaos drill is the cluster's merge gate: it stands up a real
// sharded cluster in one process (real sockets, real routing), kills a
// replica under load, restarts it cold, then takes the whole cluster
// away — and fails unless the router's resilience machinery demonstrably
// carried the traffic:
//
//   - zero 5xx through the kill and the restart,
//   - every 200 body byte-identical to a fresh Plan.Execute render,
//   - at least one hedge fired (the tail-latency path is live),
//   - the restarted replica filled at least one cache entry from a peer
//     instead of re-simulating,
//   - total outage answers from the stale cache, labeled, not with 5xx.
//
// Determinism is what makes the gate sharp: because every body is a pure
// function of its config, "failover worked" is not a vibe, it is
// bytes.Equal against a reference render.

// DrillOptions tunes the chaos drill. The zero value is the CI
// configuration.
type DrillOptions struct {
	// Replicas is the cluster size (0 = 3, minimum 2).
	Replicas int
	// Shapes is how many distinct plan shapes the load spreads over
	// (0 = 12).
	Shapes int
	// LoadWorkers is the client concurrency during the kill wave (0 = 4).
	LoadWorkers int
	// WaveDuration is how long the kill wave hammers the cluster (0 = 2s);
	// the victim dies KillOffset into it (0 = WaveDuration/4).
	WaveDuration time.Duration
	KillOffset   time.Duration
}

func (o DrillOptions) withDefaults() DrillOptions {
	if o.Replicas == 0 {
		o.Replicas = 3
	}
	if o.Replicas < 2 {
		o.Replicas = 2
	}
	if o.Shapes <= 0 {
		o.Shapes = 12
	}
	if o.LoadWorkers <= 0 {
		o.LoadWorkers = 4
	}
	if o.WaveDuration <= 0 {
		o.WaveDuration = 2 * time.Second
	}
	if o.KillOffset <= 0 {
		o.KillOffset = o.WaveDuration / 4
	}
	return o
}

// DrillReport is the drill's measured outcome — the chaos record
// EXPERIMENTS.md captures.
type DrillReport struct {
	Replicas int `json:"replicas"`
	Shapes   int `json:"shapes"`
	// Wave traffic: total requests pushed through the router during the
	// kill wave, the aggregate request rate across the cluster, and the
	// p99 latency of requests issued after the kill.
	WaveRequests     int64   `json:"wave_requests"`
	AggregateReqPerS float64 `json:"aggregate_req_per_s"`
	P99DuringKillUs  int64   `json:"p99_during_kill_us"`
	Errors5xx        int64   `json:"errors_5xx"`
	BodyMismatches   int64   `json:"body_mismatches"`
	// Failover machinery activity.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	Retries   int64 `json:"retries"`
	// RecoveryMs is the time from the victim's restart to its
	// readmission into the ring.
	RecoveryMs int64 `json:"recovery_ms"`
	// Peer cache-fill outcome at the restarted replica.
	PeerFills       int64   `json:"peer_fills"`
	PeerFillHitRate float64 `json:"peer_fill_hit_rate"`
	// Stale-serve outcome under total outage.
	StaleServed  int64 `json:"stale_served"`
	RingRebuilds int64 `json:"ring_rebuilds"`
}

// replicaProc is one in-process replica: a serve.Server behind a real
// loopback listener, restartable on its original port.
type replicaProc struct {
	id    string
	peers []string
	addr  string

	mu sync.Mutex
	sv *serve.Server
	hs *http.Server
	ln net.Listener
}

func (p *replicaProc) url() string { return "http://" + p.addr }

// bind claims the replica's port (its original one on a restart)
// without serving yet — peer URLs exist before any server does.
func (p *replicaProc) bind() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	addr := p.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: replica %s listen: %w", p.id, err)
	}
	p.addr = ln.Addr().String()
	p.ln = ln
	return nil
}

// start boots a fresh (cold) serve.Server on the replica's port.
func (p *replicaProc) start() error {
	p.mu.Lock()
	if p.ln == nil {
		p.mu.Unlock()
		if err := p.bind(); err != nil {
			return err
		}
		p.mu.Lock()
	}
	p.sv = serve.New(serve.Options{ReplicaID: p.id, Peers: p.peers})
	p.hs = &http.Server{Handler: p.sv.Handler()}
	go p.hs.Serve(p.ln)
	p.mu.Unlock()
	return nil
}

// stop kills the replica abruptly: listener and in-flight connections
// both die, the way a crashed process looks from the outside.
func (p *replicaProc) stop() {
	p.mu.Lock()
	hs := p.hs
	p.hs = nil
	p.ln = nil
	p.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
}

func (p *replicaProc) server() *serve.Server {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sv
}

// drillModel is the drill's base model: small enough that a cold
// simulation is milliseconds, real enough to exercise offload traffic.
func drillModel() serve.ModelSpec {
	return serve.ModelSpec{Arch: string(models.BERT), Hidden: 2048, Layers: 2, Batch: 4}
}

// drillShape is one distinct plan shape in the drill's working set.
type drillShape struct {
	req   serve.PlanRequest
	blob  []byte // marshaled request body
	cfg   exp.RunConfig
	shape uint64
	owner int    // ring owner under full membership
	want  []byte // reference render: fresh Plan.Execute, no caches
}

// buildShapes generates n distinct plan shapes (micro-batch count is
// part of the plan shape) and computes each one's ring owner and
// reference body.
func buildShapes(n int, ring *Ring) ([]drillShape, error) {
	out := make([]drillShape, 0, n)
	for i := 1; i <= n; i++ {
		req := serve.PlanRequest{Model: drillModel(), Strategy: "ssdtrain", MicroBatches: i}
		blob, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		cfg, err := req.RunConfig()
		if err != nil {
			return nil, err
		}
		shape, err := exp.ShapeHash(cfg)
		if err != nil {
			return nil, err
		}
		plan, err := exp.Compile(cfg)
		if err != nil {
			return nil, err
		}
		res, err := plan.Execute(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, drillShape{
			req: req, blob: blob, cfg: cfg, shape: shape,
			owner: ring.Owner(shape), want: serve.RenderPlanResult(res),
		})
	}
	return out, nil
}

// obs is one observed request during a wave.
type obs struct {
	shape   int
	status  int
	latency time.Duration
	match   bool
	at      time.Time
}

// RunDrill executes the chaos drill and writes a human log plus the
// JSON report to w. It returns the report, and an error when any gate
// failed.
func RunDrill(w io.Writer, opts DrillOptions) (*DrillReport, error) {
	opts = opts.withDefaults()
	logf := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	// Boot the replicas. Peer lists are symmetric: everyone can fill
	// from everyone else.
	procs := make([]*replicaProc, opts.Replicas)
	for i := range procs {
		procs[i] = &replicaProc{id: fmt.Sprintf("r%d", i)}
	}
	// Addresses exist only after the first listen, so bind every port
	// first, then wire the (now known) peer URLs, then serve.
	for _, p := range procs {
		if err := p.bind(); err != nil {
			return nil, err
		}
	}
	for i, p := range procs {
		for j, q := range procs {
			if i != j {
				p.peers = append(p.peers, q.url())
			}
		}
	}
	for _, p := range procs {
		if err := p.start(); err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()

	replicas := make([]Replica, opts.Replicas)
	for i, p := range procs {
		replicas[i] = Replica{ID: p.id, URL: p.url()}
	}
	rt, err := NewRouter(Options{
		Replicas:       replicas,
		AttemptTimeout: 10 * time.Second,
		MaxAttempts:    3,
		// A 1ms hedge delay sits below a cold simulation (milliseconds,
		// plus the coalescing window) and above a warm cache hit
		// (microseconds): hedges provably fire during the drill without
		// doubling every cached request.
		HedgeDelay: time.Millisecond,
		Backoff:    Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond},
		// The drill's gate is zero 5xx, so the budget must never be the
		// reason a retry was withheld.
		RetryBudgetRatio: 1,
		RetryBudgetCap:   1 << 20,
		Probe: ProbeOptions{
			Interval:         20 * time.Millisecond,
			Timeout:          250 * time.Millisecond,
			FailThreshold:    2,
			SuccessThreshold: 2,
		},
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Start(ctx)

	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rhs := &http.Server{Handler: rt.Handler()}
	go rhs.Serve(rln)
	defer rhs.Close()
	routerURL := "http://" + rln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	shapes, err := buildShapes(opts.Shapes, rt.fullRing)
	if err != nil {
		return nil, err
	}
	// The victim is the replica owning the most shapes: killing it moves
	// the largest share of the key space, and its restart is guaranteed
	// cold shards to peer-fill.
	owned := make([]int, opts.Replicas)
	for _, s := range shapes {
		owned[s.owner]++
	}
	victim := 0
	for i, n := range owned {
		if n > owned[victim] {
			victim = i
		}
	}
	logf("drill: %d replicas, %d shapes (victim %s owns %d)", opts.Replicas, len(shapes), procs[victim].id, owned[victim])

	report := &DrillReport{Replicas: opts.Replicas, Shapes: len(shapes)}
	post := func(i int) obs {
		start := time.Now()
		resp, err := client.Post(routerURL+"/v1/plan", "application/json", bytes.NewReader(shapes[i].blob))
		o := obs{shape: i, at: start, latency: time.Since(start)}
		if err != nil {
			o.status = 599 // client-side failure counts as an error
			return o
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		o.latency = time.Since(start)
		o.status = resp.StatusCode
		o.match = rerr == nil && bytes.Equal(body, shapes[i].want)
		return o
	}

	// Phase 1 — warm: every shape once, cold caches. The sub-hedge-delay
	// simulations make the hedge path fire here.
	logf("drill: phase 1 — warm %d shapes through the router", len(shapes))
	for i := range shapes {
		o := post(i)
		if o.status != http.StatusOK {
			return report, fmt.Errorf("cluster drill: warm request for shape %d answered %d", i, o.status)
		}
		if !o.match {
			report.BodyMismatches++
		}
	}

	// Phase 2 — kill wave: sustained load, victim dies mid-wave.
	logf("drill: phase 2 — %v load wave, killing %s at +%v", opts.WaveDuration, procs[victim].id, opts.KillOffset)
	var (
		obsMu  sync.Mutex
		all    []obs
		wg     sync.WaitGroup
		stopAt = time.Now().Add(opts.WaveDuration)
	)
	killAt := time.Now().Add(opts.KillOffset)
	killer := time.AfterFunc(opts.KillOffset, func() { procs[victim].stop() })
	defer killer.Stop()
	for g := 0; g < opts.LoadWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; time.Now().Before(stopAt); i++ {
				o := post(i % len(shapes))
				obsMu.Lock()
				all = append(all, o)
				obsMu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	waveDur := opts.WaveDuration
	report.WaveRequests = int64(len(all))
	report.AggregateReqPerS = float64(len(all)) / waveDur.Seconds()
	var afterKill []int64
	for _, o := range all {
		if o.status >= 500 {
			report.Errors5xx++
		} else if o.status == http.StatusOK && !o.match {
			report.BodyMismatches++
		}
		if o.at.After(killAt) {
			afterKill = append(afterKill, o.latency.Microseconds())
		}
	}
	if len(afterKill) > 0 {
		sort.Slice(afterKill, func(a, b int) bool { return afterKill[a] < afterKill[b] })
		report.P99DuringKillUs = afterKill[len(afterKill)*99/100]
	}
	logf("drill: wave done — %d requests (%.0f req/s), %d 5xx, p99 after kill %dus",
		report.WaveRequests, report.AggregateReqPerS, report.Errors5xx, report.P99DuringKillUs)

	// Phase 3 — restart the victim cold and wait for readmission.
	logf("drill: phase 3 — restarting %s cold", procs[victim].id)
	restartAt := time.Now()
	if err := procs[victim].start(); err != nil {
		return report, err
	}
	for {
		m := rt.Metrics()
		if m.Replicas[victim].Healthy {
			break
		}
		if time.Since(restartAt) > 10*time.Second {
			return report, fmt.Errorf("cluster drill: %s not readmitted within 10s", procs[victim].id)
		}
		time.Sleep(2 * time.Millisecond)
	}
	report.RecoveryMs = time.Since(restartAt).Milliseconds()

	// The readmitted victim owns its shapes again but its cache is
	// empty; these requests must peer-fill from the survivors, not
	// re-simulate.
	for i, s := range shapes {
		if s.owner != victim {
			continue
		}
		o := post(i)
		if o.status >= 500 {
			report.Errors5xx++
		}
		if o.status == http.StatusOK && !o.match {
			report.BodyMismatches++
		}
	}
	vm := procs[victim].server().Metrics()
	report.PeerFills = vm.PeerFill.Filled
	if total := vm.PeerFill.Filled + vm.PeerFill.Misses; total > 0 {
		report.PeerFillHitRate = float64(vm.PeerFill.Filled) / float64(total)
	}
	logf("drill: recovery %dms, %d peer fills at the restarted replica (hit rate %.2f)",
		report.RecoveryMs, report.PeerFills, report.PeerFillHitRate)

	// Phase 4 — total outage: every replica dies; a previously answered
	// question must still answer 200 from the stale cache, labeled.
	logf("drill: phase 4 — stopping every replica, expecting a labeled stale 200")
	for _, p := range procs {
		p.stop()
	}
	staleStart := time.Now()
	var staleResp *http.Response
	var staleBody []byte
	staleResp, err = client.Post(routerURL+"/v1/plan", "application/json", bytes.NewReader(shapes[0].blob))
	if err != nil {
		return report, fmt.Errorf("cluster drill: stale-phase request failed: %w", err)
	}
	staleBody, _ = io.ReadAll(staleResp.Body)
	staleResp.Body.Close()
	logf("drill: stale answer %d in %v (%s: %s)", staleResp.StatusCode, time.Since(staleStart).Round(time.Millisecond),
		serve.HeaderStale, staleResp.Header.Get(serve.HeaderStale))

	rm := rt.Metrics()
	report.Hedges = rm.Hedges
	report.HedgeWins = rm.HedgeWins
	report.Retries = rm.Retries
	report.StaleServed = rm.StaleServed
	report.RingRebuilds = rm.RingRebuilds

	// The gates.
	var fails []string
	if report.Errors5xx > 0 {
		fails = append(fails, fmt.Sprintf("%d 5xx responses", report.Errors5xx))
	}
	if report.BodyMismatches > 0 {
		fails = append(fails, fmt.Sprintf("%d bodies not byte-identical to a fresh render", report.BodyMismatches))
	}
	if report.Hedges == 0 {
		fails = append(fails, "no hedge ever fired")
	}
	if report.PeerFills == 0 {
		fails = append(fails, "the restarted replica never peer-filled")
	}
	if staleResp.StatusCode != http.StatusOK {
		fails = append(fails, fmt.Sprintf("total outage answered %d, want a stale 200", staleResp.StatusCode))
	} else if staleResp.Header.Get(serve.HeaderStale) != "true" {
		fails = append(fails, "stale answer not labeled with "+serve.HeaderStale)
	} else if !bytes.Equal(staleBody, shapes[0].want) {
		fails = append(fails, "stale body not byte-identical to the fresh render")
	}
	if report.StaleServed == 0 {
		fails = append(fails, "router counted no stale serves")
	}

	blob, _ := json.MarshalIndent(report, "", "  ")
	fmt.Fprintf(w, "%s\n", blob)
	if len(fails) > 0 {
		return report, fmt.Errorf("cluster drill failed: %s", joinFails(fails))
	}
	logf("drill: PASS")
	return report, nil
}

func joinFails(fails []string) string {
	out := fails[0]
	for _, f := range fails[1:] {
		out += "; " + f
	}
	return out
}
