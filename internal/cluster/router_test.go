package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ssdtrain/internal/serve"
)

// fakeTransport routes requests to in-process handlers by host — a
// cluster with no sockets and scriptable replicas.
type fakeTransport map[string]http.Handler

func (t fakeTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t[req.URL.Host]
	if !ok {
		return nil, &http.ProtocolError{ErrorString: "connection refused: " + req.URL.Host}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// replicaStub is a scriptable fake replica.
type replicaStub struct {
	body  string
	fail  atomic.Bool
	slow  atomic.Int64 // response delay in ms
	plans atomic.Int64
}

func (s *replicaStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		if s.fail.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok\n"))
		return
	}
	s.plans.Add(1)
	if d := s.slow.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Millisecond)
	}
	if s.fail.Load() {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Write([]byte(s.body))
}

// testCluster wires n stub replicas behind a router with fast test
// timings.
func testCluster(t *testing.T, n int, tweak func(*Options)) (*Router, []*replicaStub) {
	t.Helper()
	stubs := make([]*replicaStub, n)
	transport := fakeTransport{}
	replicas := make([]Replica, n)
	for i := range stubs {
		stubs[i] = &replicaStub{body: "body-" + string(rune('0'+i)) + "\n"}
		host := "stub" + string(rune('0'+i))
		transport[host] = stubs[i]
		replicas[i] = Replica{ID: host, URL: "http://" + host}
	}
	opts := Options{
		Replicas:       replicas,
		Client:         &http.Client{Transport: transport},
		AttemptTimeout: time.Second,
		HedgeDelay:     -1, // off unless a test turns it on
		Backoff:        Backoff{Base: time.Microsecond, Max: time.Millisecond},
		Probe:          ProbeOptions{Interval: -1}, // passive only unless enabled
	}
	if tweak != nil {
		tweak(&opts)
	}
	rt, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt, stubs
}

func planBlob(t *testing.T, micro int) []byte {
	t.Helper()
	blob, err := json.Marshal(serve.PlanRequest{
		Model:        serve.ModelSpec{Arch: "bert", Hidden: 2048, Layers: 2, Batch: 4},
		Strategy:     "ssdtrain",
		MicroBatches: micro,
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func routerPost(t *testing.T, rt *Router, blob []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(blob))
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	return rec
}

// TestRoutingIsSticky: the same plan shape always lands on the same
// replica, and cheap-knob variants of one shape follow it there.
func TestRoutingIsSticky(t *testing.T) {
	rt, stubs := testCluster(t, 3, nil)
	blob := planBlob(t, 1)
	for i := 0; i < 5; i++ {
		if rec := routerPost(t, rt, blob); rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	hot := 0
	for _, s := range stubs {
		if n := s.plans.Load(); n > 0 {
			hot++
			if n != 5 {
				t.Fatalf("owner saw %d of 5 requests", n)
			}
		}
	}
	if hot != 1 {
		t.Fatalf("%d replicas took traffic for one shape, want 1", hot)
	}
}

// TestRetryFailsOver: a dead owner's traffic retries to the ring
// successor within the same request — no 5xx escapes, and the registry
// hears about the failure.
func TestRetryFailsOver(t *testing.T) {
	rt, stubs := testCluster(t, 3, nil)
	blob := planBlob(t, 1)
	rec := routerPost(t, rt, blob)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm status %d", rec.Code)
	}
	var owner int
	for i, s := range stubs {
		if s.plans.Load() > 0 {
			owner = i
		}
	}
	stubs[owner].fail.Store(true)
	rec = routerPost(t, rt, blob)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover status %d, want 200 via the successor", rec.Code)
	}
	want := rt.fullRing.Successors(mustShape(t, blob))[1]
	if got := rec.Body.String(); got != stubs[want].body {
		t.Fatalf("failover body %q, want successor %d's %q", got, want, stubs[want].body)
	}
	m := rt.Metrics()
	if m.Retries == 0 {
		t.Fatal("failover happened without a retry being counted")
	}
	if m.Replicas[owner].Failures == 0 {
		t.Fatal("registry heard nothing about the dead owner")
	}
}

func mustShape(t *testing.T, blob []byte) uint64 {
	t.Helper()
	rt := &Router{}
	shape, _ := rt.shardKey("plan", blob)
	return shape
}

// TestHedgeRaces: a slow owner is beaten by a hedged attempt to the
// successor; the first answer wins and is counted as a hedge win.
func TestHedgeRaces(t *testing.T) {
	rt, stubs := testCluster(t, 3, func(o *Options) {
		o.HedgeDelay = 2 * time.Millisecond
	})
	blob := planBlob(t, 1)
	owner := rt.fullRing.Owner(mustShape(t, blob))
	stubs[owner].slow.Store(200)
	start := time.Now()
	rec := routerPost(t, rt, blob)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Fatalf("hedge did not rescue the tail: request took %v", d)
	}
	succ := rt.fullRing.Successors(mustShape(t, blob))[1]
	if got := rec.Body.String(); got != stubs[succ].body {
		t.Fatalf("answer %q, want hedged successor's %q", got, stubs[succ].body)
	}
	m := rt.Metrics()
	if m.Hedges != 1 || m.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", m.Hedges, m.HedgeWins)
	}
}

// TestStaleServeOnTotalLoss: with every replica dead, a previously
// answered question returns its last good body labeled stale; an unseen
// question reports the outage.
func TestStaleServeOnTotalLoss(t *testing.T) {
	rt, stubs := testCluster(t, 2, nil)
	blob := planBlob(t, 1)
	rec := routerPost(t, rt, blob)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm status %d", rec.Code)
	}
	warmBody := rec.Body.String()
	for _, s := range stubs {
		s.fail.Store(true)
	}
	rec = routerPost(t, rt, blob)
	if rec.Code != http.StatusOK {
		t.Fatalf("total loss answered %d, want stale 200", rec.Code)
	}
	if rec.Body.String() != warmBody {
		t.Fatal("stale body differs from the last good answer")
	}
	if rec.Header().Get(serve.HeaderStale) != "true" || rec.Header().Get(serve.HeaderStaleFor) == "" {
		t.Fatalf("stale answer not labeled: %v", rec.Header())
	}
	rec = routerPost(t, rt, planBlob(t, 7))
	if rec.Code < 500 {
		t.Fatalf("unseen question during total loss answered %d, want an error", rec.Code)
	}
	m := rt.Metrics()
	if m.StaleServed != 1 || m.StaleMisses == 0 {
		t.Fatalf("stale counters served=%d misses=%d", m.StaleServed, m.StaleMisses)
	}
}

// TestRetryBudgetStopsStorms: with an empty budget, failures do not fan
// out into retries — the guard against brownout amplification.
func TestRetryBudgetStopsStorms(t *testing.T) {
	rt, stubs := testCluster(t, 3, func(o *Options) {
		o.RetryBudgetRatio = 1e-9
		o.RetryBudgetCap = 1
		o.StaleCapacity = -1
	})
	for _, s := range stubs {
		s.fail.Store(true)
	}
	// First failure spends the single banked token; afterwards failures
	// must return without extra attempts.
	routerPost(t, rt, planBlob(t, 1))
	before := rt.Metrics().Attempts
	routerPost(t, rt, planBlob(t, 2))
	m := rt.Metrics()
	if got := m.Attempts - before; got != 1 {
		t.Fatalf("budget-exhausted request made %d attempts, want exactly 1", got)
	}
	if m.RetryBudgetExhausted == 0 {
		t.Fatal("suppressed retries not counted")
	}
}

// TestEjectionRoutesAround: after enough passive failures the owner is
// ejected and the rebuilt ring routes fresh requests straight to the
// successor — no retry needed.
func TestEjectionRoutesAround(t *testing.T) {
	rt, stubs := testCluster(t, 3, func(o *Options) {
		o.Probe = ProbeOptions{Interval: -1, FailThreshold: 2}
	})
	blob := planBlob(t, 1)
	owner := rt.fullRing.Owner(mustShape(t, blob))
	stubs[owner].fail.Store(true)
	// Two failed forwards eject the owner.
	routerPost(t, rt, blob)
	routerPost(t, rt, blob)
	if rt.Metrics().RingReplicas != 2 {
		t.Fatalf("ring spans %d replicas after ejection, want 2", rt.Metrics().RingReplicas)
	}
	ownerPlans := stubs[owner].plans.Load()
	rec := routerPost(t, rt, blob)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d after ejection", rec.Code)
	}
	if got := stubs[owner].plans.Load(); got != ownerPlans {
		t.Fatal("ejected replica still took traffic")
	}
	if m := rt.Metrics(); m.Replicas[owner].Ejections != 1 {
		t.Fatalf("ejections = %d, want 1", m.Replicas[owner].Ejections)
	}
}

// TestReadmissionAfterRecovery: active probes readmit a recovered
// replica and the ring takes it back.
func TestReadmissionAfterRecovery(t *testing.T) {
	rt, stubs := testCluster(t, 3, func(o *Options) {
		o.Probe = ProbeOptions{
			Interval: 5 * time.Millisecond, Timeout: 100 * time.Millisecond,
			FailThreshold: 2, SuccessThreshold: 2,
		}
	})
	ctx := t.Context()
	rt.Start(ctx)
	stubs[1].fail.Store(true)
	waitCond(t, "ejection", func() bool { return rt.Metrics().RingReplicas == 2 })
	stubs[1].fail.Store(false)
	waitCond(t, "readmission", func() bool { return rt.Metrics().RingReplicas == 3 })
	m := rt.Metrics()
	if m.Replicas[1].Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1", m.Replicas[1].Readmissions)
	}
	if m.RingRebuilds < 2 {
		t.Fatalf("ring rebuilds = %d, want at least eject+readmit", m.RingRebuilds)
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBackoffBounds: delays stay inside the jitter window and cap.
func TestBackoffBounds(t *testing.T) {
	b := Backoff{Base: 4 * time.Millisecond, Max: 20 * time.Millisecond}
	for attempt := 0; attempt < 8; attempt++ {
		limit := min(4<<attempt, 20) // ms
		for i := 0; i < 100; i++ {
			d := b.Delay(attempt)
			if d < 0 || d >= time.Duration(limit)*time.Millisecond {
				t.Fatalf("attempt %d delay %v outside [0, %dms)", attempt, d, limit)
			}
		}
	}
	if (Backoff{}).Delay(3) != 0 {
		t.Fatal("zero backoff should not sleep")
	}
}

// TestBudgetAccounting: tokens accrue per request at the ratio, cap at
// the bucket size, and spend whole.
func TestBudgetAccounting(t *testing.T) {
	b := newBudget(0.5, 2)
	// Drain the initial full bucket.
	for b.trySpend() {
	}
	if b.trySpend() {
		t.Fatal("empty bucket granted a token")
	}
	b.onRequest() // +0.5
	if b.trySpend() {
		t.Fatal("half a token granted a retry")
	}
	b.onRequest() // 1.0
	if !b.trySpend() {
		t.Fatal("a full token refused a retry")
	}
	for i := 0; i < 100; i++ {
		b.onRequest()
	}
	spent := 0
	for b.trySpend() {
		spent++
	}
	if spent != 2 {
		t.Fatalf("bucket held %d tokens, cap is 2", spent)
	}
}
