package cluster

import (
	"bytes"
	"testing"
	"time"
)

// TestDrill runs the full chaos drill — real sockets, real kill and
// restart — with a shortened load wave. It is the same path CI's
// selfcheck-cluster step executes via cmd/serve.
func TestDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill drives seconds of real load")
	}
	var buf bytes.Buffer
	rep, err := RunDrill(&buf, DrillOptions{WaveDuration: time.Second})
	if err != nil {
		t.Fatalf("drill failed: %v\nlog:\n%s", err, buf.String())
	}
	if rep.WaveRequests == 0 || rep.AggregateReqPerS == 0 {
		t.Fatalf("drill measured no load: %+v", rep)
	}
	if rep.RecoveryMs <= 0 {
		t.Fatalf("drill measured no recovery time: %+v", rep)
	}
}
