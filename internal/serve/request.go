package serve

import (
	"fmt"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/faults"
	"ssdtrain/internal/models"
	"ssdtrain/internal/units"
)

// ModelSpec selects the transformer configuration of a planning request.
// Arch, Hidden, Layers and Batch are required; the optional geometry
// fields default to the paper's §IV-A evaluation values (sequence 1024,
// head dim 128, TP 2, FP16, FlashAttention).
type ModelSpec struct {
	Arch   string `json:"arch"` // gpt | bert | t5
	Hidden int    `json:"hidden"`
	Layers int    `json:"layers"`
	Batch  int    `json:"batch"`
	// Optional geometry overrides; zero keeps the paper defaults.
	SeqLen  int `json:"seq_len,omitempty"`
	HeadDim int `json:"head_dim,omitempty"`
	TP      int `json:"tp,omitempty"`
}

// Request size bounds: the service answers planning questions, and an
// untrusted question must not be able to buy an arbitrarily long
// simulation with one cheap request. The caps sit far above the paper's
// evaluation range (and the fleet node palette) while keeping any
// accepted request's simulation cost bounded.
const (
	maxModelHidden  = 1 << 18
	maxModelLayers  = 512
	maxModelBatch   = 1 << 16
	maxModelSeqLen  = 1 << 20
	maxModelTP      = 64
	maxSteps        = 100
	maxMicroBatches = 256
	maxFleetGPUs    = 64
	maxFleetSteps   = 1 << 20
)

// config resolves the spec to a validated models.Config.
func (m ModelSpec) config() (models.Config, error) {
	arch := models.Arch(m.Arch)
	switch arch {
	case models.GPT, models.BERT, models.T5:
	default:
		return models.Config{}, fmt.Errorf("serve: unknown arch %q (want gpt, bert or t5)", m.Arch)
	}
	switch {
	case m.Hidden > maxModelHidden:
		return models.Config{}, fmt.Errorf("serve: hidden %d exceeds the service limit %d", m.Hidden, maxModelHidden)
	case m.Layers > maxModelLayers:
		return models.Config{}, fmt.Errorf("serve: layers %d exceeds the service limit %d", m.Layers, maxModelLayers)
	case m.Batch > maxModelBatch:
		return models.Config{}, fmt.Errorf("serve: batch %d exceeds the service limit %d", m.Batch, maxModelBatch)
	case m.SeqLen > maxModelSeqLen:
		return models.Config{}, fmt.Errorf("serve: seq_len %d exceeds the service limit %d", m.SeqLen, maxModelSeqLen)
	case m.TP > maxModelTP:
		return models.Config{}, fmt.Errorf("serve: tp %d exceeds the service limit %d", m.TP, maxModelTP)
	}
	cfg := models.PaperConfig(arch, m.Hidden, m.Layers, m.Batch)
	if m.SeqLen > 0 {
		cfg.SeqLen = m.SeqLen
	}
	if m.HeadDim > 0 {
		cfg.HeadDim = m.HeadDim
	}
	if m.TP > 0 {
		cfg.TP = m.TP
	}
	if err := cfg.Validate(); err != nil {
		return models.Config{}, err
	}
	return cfg, nil
}

// PlanRequest is the body of POST /v1/plan: one what-if planning
// question against the simulated testbed. Two body shapes are accepted:
// the flat legacy form (Model, Strategy and the knob fields below) and
// the nested schema-v2 form — a single "spec" object mirroring the
// grouped exp.Spec. When "spec" is present it IS the request and the
// flat fields are ignored. In the flat form only Model and Strategy are
// required; every other field is a knob with the experiment harness's
// defaults.
type PlanRequest struct {
	// Spec is the nested v2 body; nil means the flat legacy form.
	Spec *SpecRequest `json:"spec,omitempty"`

	Model    ModelSpec `json:"model"`
	Strategy string    `json:"strategy"` // no-offload | ssdtrain | recompute | cpu-offload | hybrid | optim-offload

	Steps        int `json:"steps,omitempty"`
	Warmup       int `json:"warmup,omitempty"`
	MicroBatches int `json:"micro_batches,omitempty"`
	// BudgetBytes pins the offload budget (0 = plan via the Fig 3
	// workflow and report the planned value).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// SSDBandwidthShare models co-tenants contending for the array
	// (0 or 1 = exclusive).
	SSDBandwidthShare float64 `json:"ssd_bandwidth_share,omitempty"`
	// Placement selects the hybrid strategy's tier routing
	// (ssd-only | dram-first | split).
	Placement         string  `json:"placement,omitempty"`
	DRAMCapacityBytes int64   `json:"dram_capacity_bytes,omitempty"`
	SplitRatio        float64 `json:"split_ratio,omitempty"`
	KeepLastModules   int     `json:"keep_last_modules,omitempty"`
	PrefetchAhead     int     `json:"prefetch_ahead,omitempty"`
	AdaptiveSteps     bool    `json:"adaptive_steps,omitempty"`
	DisableGDS        bool    `json:"disable_gds,omitempty"`
	// OptimKind/Schedule configure the optim-offload strategy family
	// (adam | sgd, sync | overlap).
	OptimKind string `json:"optim_kind,omitempty"`
	Schedule  string `json:"schedule,omitempty"`
	// Faults schedules deterministic fault injection against the run's
	// NVMe array (nil = none).
	Faults *FaultSpec `json:"faults,omitempty"`
}

// SpecRequest is the nested v2 request body, mirroring exp.Spec group
// for group. The machine group is deliberately absent from the wire:
// the service always simulates its own testbed.
type SpecRequest struct {
	Model     ModelSpec        `json:"model"`
	Offload   OffloadRequest   `json:"offload,omitzero"`
	Optimizer OptimizerRequest `json:"optimizer,omitzero"`
	Run       RunRequest       `json:"run,omitzero"`
	Inject    InjectRequest    `json:"inject,omitzero"`
}

// OffloadRequest mirrors exp.OffloadSpec on the wire.
type OffloadRequest struct {
	Strategy          string  `json:"strategy,omitempty"`
	Placement         string  `json:"placement,omitempty"`
	DRAMCapacityBytes int64   `json:"dram_capacity_bytes,omitempty"`
	SplitRatio        float64 `json:"split_ratio,omitempty"`
	BudgetBytes       int64   `json:"budget_bytes,omitempty"`
	KeepLastModules   int     `json:"keep_last_modules,omitempty"`
	PrefetchAhead     int     `json:"prefetch_ahead,omitempty"`
	DisableGDS        bool    `json:"disable_gds,omitempty"`
}

// OptimizerRequest mirrors exp.OptimizerSpec on the wire.
type OptimizerRequest struct {
	Kind     string `json:"kind,omitempty"`
	Offload  bool   `json:"offload,omitempty"`
	Schedule string `json:"schedule,omitempty"`
}

// RunRequest mirrors exp.RunSpec on the wire.
type RunRequest struct {
	Steps         int  `json:"steps,omitempty"`
	Warmup        int  `json:"warmup,omitempty"`
	MicroBatches  int  `json:"micro_batches,omitempty"`
	AdaptiveSteps bool `json:"adaptive_steps,omitempty"`
}

// InjectRequest mirrors exp.InjectSpec on the wire.
type InjectRequest struct {
	Faults            *FaultSpec `json:"faults,omitempty"`
	SSDBandwidthShare float64    `json:"ssd_bandwidth_share,omitempty"`
}

// FaultSpec is the wire form of exp.RunConfig.Faults: a single-run fault
// schedule against the NVMe array. Durations are microseconds — a
// simulated training step is a few hundred milliseconds, so millisecond
// granularity would be too coarse for mid-step events.
type FaultSpec struct {
	// DeviceDeathAtUs kills array member Device (-1 = whole array) at the
	// given simulated time.
	DeviceDeathAtUs int64 `json:"device_death_at_us,omitempty"`
	Device          int   `json:"device,omitempty"`
	// WearThreshold kills the device when the array's wear fraction
	// crosses it instead of at a fixed time.
	WearThreshold float64 `json:"wear_threshold,omitempty"`
	// Degrade* model a transient bandwidth degradation window.
	DegradeAtUs   int64   `json:"degrade_at_us,omitempty"`
	DegradeFactor float64 `json:"degrade_factor,omitempty"`
	DegradeForUs  int64   `json:"degrade_for_us,omitempty"`
	// Rebuild* tune the RAID-rebuild window after a member death.
	RebuildForUs int64   `json:"rebuild_for_us,omitempty"`
	RebuildSteal float64 `json:"rebuild_steal,omitempty"`
}

// spec converts the wire form to the harness's fault spec.
func (f *FaultSpec) spec() faults.Spec {
	if f == nil {
		return faults.Spec{}
	}
	return faults.Spec{
		DeviceDeathAt: time.Duration(f.DeviceDeathAtUs) * time.Microsecond,
		Device:        f.Device,
		WearThreshold: f.WearThreshold,
		DegradeAt:     time.Duration(f.DegradeAtUs) * time.Microsecond,
		DegradeFactor: f.DegradeFactor,
		DegradeFor:    time.Duration(f.DegradeForUs) * time.Microsecond,
		RebuildFor:    time.Duration(f.RebuildForUs) * time.Microsecond,
		RebuildSteal:  f.RebuildSteal,
	}
}

// RunConfig resolves the request to its normalized exp.RunConfig — the
// canonical form the server's result cache, singleflight and batcher all
// key on, and the identity a cluster router's shard key (exp.ShapeHash)
// is computed from.
func (r PlanRequest) RunConfig() (exp.RunConfig, error) { return r.runConfig() }

// runConfig validates the request's knobs and normalizes the result.
func (r PlanRequest) runConfig() (exp.RunConfig, error) {
	if r.Spec != nil {
		return r.Spec.runConfig()
	}
	model, err := r.Model.config()
	if err != nil {
		return exp.RunConfig{}, err
	}
	if err := checkRunCaps(r.Steps, r.Warmup, r.MicroBatches); err != nil {
		return exp.RunConfig{}, err
	}
	cfg := exp.RunConfig{
		Model:             model,
		Strategy:          exp.Strategy(r.Strategy),
		Steps:             r.Steps,
		Warmup:            r.Warmup,
		MicroBatches:      r.MicroBatches,
		Budget:            units.Bytes(r.BudgetBytes),
		SSDBandwidthShare: r.SSDBandwidthShare,
		Placement:         exp.Placement(r.Placement),
		DRAMCapacity:      units.Bytes(r.DRAMCapacityBytes),
		SplitRatio:        r.SplitRatio,
		KeepLastModules:   r.KeepLastModules,
		PrefetchAhead:     r.PrefetchAhead,
		AdaptiveSteps:     r.AdaptiveSteps,
		DisableGDS:        r.DisableGDS,
		OptimKind:         r.OptimKind,
		Schedule:          r.Schedule,
		Faults:            r.Faults.spec(),
	}
	return exp.Normalize(cfg)
}

// checkRunCaps bounds the measurement-shape knobs shared by both body
// forms.
func checkRunCaps(steps, warmup, microBatches int) error {
	switch {
	case steps > maxSteps:
		return fmt.Errorf("serve: steps %d exceeds the service limit %d", steps, maxSteps)
	case warmup > maxSteps:
		return fmt.Errorf("serve: warmup %d exceeds the service limit %d", warmup, maxSteps)
	case microBatches > maxMicroBatches:
		return fmt.Errorf("serve: micro_batches %d exceeds the service limit %d", microBatches, maxMicroBatches)
	}
	return nil
}

// runConfig resolves the nested v2 body through the grouped exp.Spec,
// so the wire form and the library form share one flattening and one
// set of validation rules. A flat request and a spec request describing
// the same measurement normalize to the same exp.RunConfig — the server
// caches, coalesces and answers them identically.
func (s *SpecRequest) runConfig() (exp.RunConfig, error) {
	model, err := s.Model.config()
	if err != nil {
		return exp.RunConfig{}, err
	}
	if err := checkRunCaps(s.Run.Steps, s.Run.Warmup, s.Run.MicroBatches); err != nil {
		return exp.RunConfig{}, err
	}
	spec := exp.Spec{
		Model: model,
		Offload: exp.OffloadSpec{
			Strategy:        exp.Strategy(s.Offload.Strategy),
			Placement:       exp.Placement(s.Offload.Placement),
			DRAMCapacity:    units.Bytes(s.Offload.DRAMCapacityBytes),
			SplitRatio:      s.Offload.SplitRatio,
			Budget:          units.Bytes(s.Offload.BudgetBytes),
			KeepLastModules: s.Offload.KeepLastModules,
			PrefetchAhead:   s.Offload.PrefetchAhead,
			DisableGDS:      s.Offload.DisableGDS,
		},
		Optimizer: exp.OptimizerSpec{
			Kind:     s.Optimizer.Kind,
			Offload:  s.Optimizer.Offload,
			Schedule: s.Optimizer.Schedule,
		},
		Run: exp.RunSpec{
			Steps:         s.Run.Steps,
			Warmup:        s.Run.Warmup,
			MicroBatches:  s.Run.MicroBatches,
			AdaptiveSteps: s.Run.AdaptiveSteps,
		},
		Inject: exp.InjectSpec{
			Faults:            s.Inject.Faults.spec(),
			SSDBandwidthShare: s.Inject.SSDBandwidthShare,
		},
	}
	cfg, err := spec.RunConfig()
	if err != nil {
		return exp.RunConfig{}, err
	}
	return exp.Normalize(cfg)
}

// TierUsage is one rung of the offload hierarchy in a response.
type TierUsage struct {
	Name          string `json:"name"`
	Kind          string `json:"kind"`
	WrittenBytes  int64  `json:"written_bytes"`
	ReadBytes     int64  `json:"read_bytes"`
	PeakBytes     int64  `json:"peak_bytes"`
	CapacityBytes int64  `json:"capacity_bytes,omitempty"`
}

// PlanResponse is the body of a /v1/plan answer and of every /v1/sweep
// NDJSON line: the steady-state step time, the Fig 3 per-module offload
// budget, memory peaks and per-tier traffic of one measured
// configuration.
type PlanResponse struct {
	// Schema versions the response body; "v2" marks the generation that
	// understands nested spec requests and optimizer-offload plans.
	Schema   string `json:"schema"`
	Model    string `json:"model"`
	Strategy string `json:"strategy"`
	// Echoes of the cheap knobs that distinguish sweep points.
	Placement         string  `json:"placement,omitempty"`
	SSDBandwidthShare float64 `json:"ssd_bandwidth_share,omitempty"`
	DRAMCapacityBytes int64   `json:"dram_capacity_bytes,omitempty"`
	SplitRatio        float64 `json:"split_ratio,omitempty"`
	BudgetBytes       int64   `json:"budget_bytes,omitempty"`
	OptimKind         string  `json:"optim_kind,omitempty"`
	Schedule          string  `json:"schedule,omitempty"`

	StepTimeNs int64  `json:"step_time_ns"`
	StepTime   string `json:"step_time"`
	// PlannedBudgetBytes is the per-module offload budget the Fig 3
	// workflow chose (or the pinned override the run used).
	PlannedBudgetBytes  int64   `json:"planned_budget_bytes"`
	WeightBytes         int64   `json:"weight_bytes"`
	EligibleBytes       int64   `json:"eligible_bytes"`
	ActivationPeakBytes int64   `json:"activation_peak_bytes"`
	TotalPeakBytes      int64   `json:"total_peak_bytes"`
	OffloadedBytes      int64   `json:"offloaded_bytes"`
	ReloadedBytes       int64   `json:"reloaded_bytes"`
	ForwardedBytes      int64   `json:"forwarded_bytes"`
	ComputeStallNs      int64   `json:"compute_stall_ns"`
	ModelTFLOPS         float64 `json:"model_tflops"`
	OffloadPeakBytes    int64   `json:"offload_peak_bytes,omitempty"`
	StepsMeasured       int     `json:"steps_measured"`

	// SteadyState reports the fast path's outcome for this measurement:
	// how many steps were simulated vs extrapolated, and the fallback
	// reason when the run was fully simulated.
	SteadyState exp.SteadyStateInfo `json:"steady_state"`

	Tiers []TierUsage `json:"tiers,omitempty"`
	// Optim summarizes the offloaded-optimizer pipeline (optim-offload
	// strategy only).
	Optim *OptimUsage `json:"optim,omitempty"`
}

// OptimUsage is the wire form of exp.OptimUsage.
type OptimUsage struct {
	Kind              string `json:"kind"`
	Schedule          string `json:"schedule"`
	StateBytes        int64  `json:"state_bytes"`
	DRAMResidentBytes int64  `json:"dram_resident_bytes"`
	NVMeResidentBytes int64  `json:"nvme_resident_bytes"`
	ShuttleWriteBytes int64  `json:"shuttle_write_bytes_per_step"`
	ShuttleReadBytes  int64  `json:"shuttle_read_bytes_per_step"`
	UpdateBusyNs      int64  `json:"update_busy_ns"`
}

// NewPlanResponse projects a measurement result onto the wire schema.
func NewPlanResponse(res *exp.RunResult) PlanResponse {
	cfg := res.Config
	p := PlanResponse{
		Schema:              "v2",
		Model:               cfg.Model.String(),
		Strategy:            string(cfg.Strategy),
		OptimKind:           cfg.OptimKind,
		Schedule:            cfg.Schedule,
		Placement:           string(cfg.Placement),
		SSDBandwidthShare:   cfg.SSDBandwidthShare,
		DRAMCapacityBytes:   int64(cfg.DRAMCapacity),
		SplitRatio:          cfg.SplitRatio,
		BudgetBytes:         int64(cfg.Budget),
		StepTimeNs:          res.StepTime().Nanoseconds(),
		StepTime:            res.StepTime().Round(time.Microsecond).String(),
		PlannedBudgetBytes:  int64(res.PlannedBudget),
		WeightBytes:         int64(res.WeightBytes),
		EligibleBytes:       int64(res.EligibleBytes),
		ActivationPeakBytes: int64(res.Measured.ActPeak),
		TotalPeakBytes:      int64(res.Measured.TotalPeak),
		OffloadedBytes:      int64(res.Measured.IO.Offloaded),
		ReloadedBytes:       int64(res.Measured.IO.Reloaded),
		ForwardedBytes:      int64(res.Measured.IO.Forwarded),
		ComputeStallNs:      res.Measured.Stats.ComputeStall.Nanoseconds(),
		ModelTFLOPS:         float64(res.Throughput()) / float64(units.TFLOPS),
		OffloadPeakBytes:    int64(res.SSDPeak),
		StepsMeasured:       len(res.PerStep),
		SteadyState:         res.SteadyState,
	}
	for _, t := range res.Tiers {
		p.Tiers = append(p.Tiers, TierUsage{
			Name:          t.Name,
			Kind:          string(t.Kind),
			WrittenBytes:  int64(t.Written),
			ReadBytes:     int64(t.Read),
			PeakBytes:     int64(t.Peak),
			CapacityBytes: int64(t.Capacity),
		})
	}
	if res.Optim != nil {
		p.Optim = &OptimUsage{
			Kind:              res.Optim.Kind,
			Schedule:          res.Optim.Schedule,
			StateBytes:        int64(res.Optim.StateBytes),
			DRAMResidentBytes: int64(res.Optim.DRAMResident),
			NVMeResidentBytes: int64(res.Optim.NVMeResident),
			ShuttleWriteBytes: int64(res.Optim.ShuttleWrite),
			ShuttleReadBytes:  int64(res.Optim.ShuttleRead),
			UpdateBusyNs:      res.Optim.UpdateBusy.Nanoseconds(),
		}
	}
	return p
}

// SweepRequest is the body of POST /v1/sweep: a base planning question
// fanned across cheap-knob axes. Empty axes keep the base value; the
// points are the cross product in (share, placement, dram capacity,
// split ratio) nesting order, streamed as one NDJSON PlanResponse line
// each, in order.
type SweepRequest struct {
	Base                PlanRequest `json:"base"`
	Shares              []float64   `json:"shares,omitempty"`
	Placements          []string    `json:"placements,omitempty"`
	DRAMCapacitiesBytes []int64     `json:"dram_capacities_bytes,omitempty"`
	SplitRatios         []float64   `json:"split_ratios,omitempty"`
}

// maxSweepPoints bounds one sweep request's fan-out; bigger studies
// should shard across requests so no single stream monopolizes the
// worker slots its points take while simulating.
const maxSweepPoints = 1024

// configs expands the sweep's cross product into normalized run configs.
// Every point must validate — a sweep with an impossible axis value is
// rejected whole rather than half-streamed.
func (r SweepRequest) configs() ([]exp.RunConfig, error) {
	base, err := r.Base.runConfig()
	if err != nil {
		return nil, err
	}
	shares := r.Shares
	if len(shares) == 0 {
		shares = []float64{base.SSDBandwidthShare}
	}
	placements := r.Placements
	if len(placements) == 0 {
		placements = []string{string(base.Placement)}
	}
	caps := r.DRAMCapacitiesBytes
	if len(caps) == 0 {
		caps = []int64{int64(base.DRAMCapacity)}
	}
	ratios := r.SplitRatios
	if len(ratios) == 0 {
		ratios = []float64{base.SplitRatio}
	}
	n := len(shares) * len(placements) * len(caps) * len(ratios)
	if n > maxSweepPoints {
		return nil, fmt.Errorf("serve: sweep has %d points, the limit is %d", n, maxSweepPoints)
	}
	cfgs := make([]exp.RunConfig, 0, n)
	for _, sh := range shares {
		for _, pl := range placements {
			for _, dc := range caps {
				for _, sr := range ratios {
					cfg := base
					cfg.SSDBandwidthShare = sh
					cfg.Placement = exp.Placement(pl)
					cfg.DRAMCapacity = units.Bytes(dc)
					cfg.SplitRatio = sr
					norm, err := exp.Normalize(cfg)
					if err != nil {
						return nil, fmt.Errorf("serve: sweep point (share %v, placement %q, dram %d, ratio %v): %w", sh, pl, dc, sr, err)
					}
					cfgs = append(cfgs, norm)
				}
			}
		}
	}
	return cfgs, nil
}
