// Package serve exposes the experiment harness as a long-lived
// planning-as-a-service process: an HTTP/JSON API answering single-run
// what-ifs (/v1/plan), cheap-knob sweeps streamed as NDJSON (/v1/sweep)
// and fleet-scale scheduling questions (/v1/fleet), plus a /metrics
// snapshot of every cache and pool behind them.
//
// The server is the first subsystem where many users share one process,
// and it is built directly on the reuse layers of the harness: rendered
// results sit in an LRU keyed by the normalized config, concurrent
// identical requests coalesce into one simulation through a
// singleflight, compatible cheap-knob requests that arrive within a
// coalescing window micro-batch onto a single pooled execution arena
// (exp.SessionPool → exp.Session, keyed per plan shape), and fleet
// what-ifs share one profiler cache across all requests. Admission is
// bounded: a fixed worker count plus a bounded wait queue, with 429 +
// Retry-After beyond that. Responses are deterministic — a served body
// is byte-identical to rendering a fresh Plan.Execute of the same
// config, whichever cache, flight or batch actually produced it.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/fleet"
	"ssdtrain/internal/lru"
	"ssdtrain/internal/sim"
	"ssdtrain/internal/spans"
)

// Options configures a Server. The zero value is a working production
// default.
type Options struct {
	// Workers bounds concurrently executing requests (0 = GOMAXPROCS).
	Workers int
	// Queue bounds requests waiting for a worker slot; beyond it the
	// server answers 429 (0 = DefaultQueue, negative = no queue).
	Queue int
	// CacheCapacity sizes the rendered-result LRU (0 = DefaultCacheCapacity).
	CacheCapacity int
	// BatchWindow is the request coalescing window: same-shape plan
	// requests arriving within it share one execution arena
	// (0 = DefaultBatchWindow, negative = disabled).
	BatchWindow time.Duration
	// MaxIdleSessions bounds the arena pool (0 = exp.DefaultMaxIdleSessions).
	MaxIdleSessions int
	// FleetCacheCapacity sizes the shared fleet profiler's cache
	// (0 = fleet.DefaultCacheCapacity).
	FleetCacheCapacity int
	// RequestTimeout bounds each request end to end: the deadline is set
	// on the request context before the handler runs, so it covers queue
	// waits for a worker slot and the simulation itself. An expired
	// deadline answers 503 (0 = DefaultRequestTimeout, negative = none).
	RequestTimeout time.Duration
	// ReplicaID names this replica within a sharded cluster; it is
	// echoed on responses (X-SSDTrain-Replica) so routers and drills can
	// attribute a body to the process that served it.
	ReplicaID string
	// Peers lists the base URLs of the other replicas in the cluster.
	// With peers configured, a cold /v1/plan miss first asks their
	// /v1/cachefill endpoints for an already-rendered body (bounded by
	// PeerFillTimeout, inside the request's singleflight) before paying a
	// simulation — the survivors' caches warm a rehashed or restarted
	// shard instead of every key re-simulating from scratch.
	Peers []string
	// PeerFillTimeout bounds one peer cache-fill fan-out end to end
	// (0 = DefaultPeerFillTimeout, negative = disable peer fill).
	PeerFillTimeout time.Duration
	// PeerClient issues the cache-fill requests (nil = a default client;
	// tests inject in-memory transports).
	PeerClient *http.Client
	// StaleAfter labels responses whose cached body is older than this
	// with the staleness headers (X-SSDTrain-Stale, X-SSDTrain-Stale-For)
	// and counts them on /metrics. Peer-filled entries keep the render
	// stamp of the replica that simulated them, so age survives the
	// copy. 0 disables labeling: bodies are pure functions of the config,
	// so age is operational information, never a correctness risk.
	StaleAfter time.Duration
}

// Defaults for Options' zero values.
const (
	DefaultQueue           = 64
	DefaultCacheCapacity   = 1024
	DefaultBatchWindow     = 2 * time.Millisecond
	DefaultRequestTimeout  = 2 * time.Minute
	DefaultPeerFillTimeout = 250 * time.Millisecond
	// defaultFleetBodies bounds the rendered fleet-response LRU; fleet
	// requests are few and bodies small, so a handful suffices.
	defaultFleetBodies = 64
)

// Cluster wire headers: the staleness label on cache-served bodies, the
// render stamp a cache-fill answer carries (unix nanoseconds), and the
// replica attribution echo.
const (
	HeaderStale      = "X-SSDTrain-Stale"
	HeaderStaleFor   = "X-SSDTrain-Stale-For"
	HeaderRenderedAt = "X-SSDTrain-Rendered-At"
	HeaderReplica    = "X-SSDTrain-Replica"
)

// stamped pairs a rendered body with its render time — the value the
// caches, flights and peer fills move around, so staleness labeling can
// measure age from the simulation that produced a body rather than the
// hop that delivered it.
type stamped struct {
	body []byte
	at   time.Time
}

// Server is a concurrent what-if planning service.
type Server struct {
	opts     Options
	stats    *stats
	results  *lru.Cache[exp.RunConfig, []byte]
	flight   lru.Singleflight[exp.RunConfig, stamped]
	fleetRes *lru.Cache[string, []byte]
	fleetFl  lru.Singleflight[string, stamped]
	sessions *exp.SessionPool
	batcher  *batcher
	limiter  *limiter
	profiler *fleet.Profiler
	peers    *peerSet
	mux      *http.ServeMux
}

// New builds a Server.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case opts.Queue == 0:
		opts.Queue = DefaultQueue
	case opts.Queue < 0:
		opts.Queue = 0
	}
	if opts.CacheCapacity <= 0 {
		opts.CacheCapacity = DefaultCacheCapacity
	}
	switch {
	case opts.RequestTimeout == 0:
		opts.RequestTimeout = DefaultRequestTimeout
	case opts.RequestTimeout < 0:
		opts.RequestTimeout = 0
	}
	switch {
	case opts.BatchWindow == 0:
		opts.BatchWindow = DefaultBatchWindow
	case opts.BatchWindow < 0:
		opts.BatchWindow = 0
	}
	switch {
	case opts.PeerFillTimeout == 0:
		opts.PeerFillTimeout = DefaultPeerFillTimeout
	case opts.PeerFillTimeout < 0:
		opts.PeerFillTimeout = 0
	}
	s := &Server{
		opts:     opts,
		stats:    newStats(time.Now(), "plan", "sweep", "fleet", "trace", "cachefill", "metrics"),
		results:  lru.New[exp.RunConfig, []byte](opts.CacheCapacity),
		fleetRes: lru.New[string, []byte](defaultFleetBodies),
		sessions: exp.NewSessionPool(opts.MaxIdleSessions),
		limiter:  newLimiter(opts.Workers, opts.Queue),
		profiler: fleet.NewProfiler(opts.FleetCacheCapacity),
		mux:      http.NewServeMux(),
	}
	if len(opts.Peers) > 0 && opts.PeerFillTimeout > 0 {
		s.peers = newPeerSet(opts.Peers, opts.PeerClient, opts.PeerFillTimeout, s.stats)
	}
	s.batcher = newBatcher(s.runPooled, s.limiter, opts.BatchWindow, s.stats)
	s.mux.HandleFunc("/v1/plan", s.instrument("plan", s.handlePlan))
	s.mux.HandleFunc("/v1/sweep", s.instrument("sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/fleet", s.instrument("fleet", s.handleFleet))
	s.mux.HandleFunc("/v1/trace", s.instrument("trace", s.handleTrace))
	s.mux.HandleFunc("/v1/cachefill", s.instrument("cachefill", s.handleCachefill))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// statusRecorder captures the response status for instrumentation while
// passing streaming flushes through.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.stats.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.opts.RequestTimeout > 0 {
			// The deadline rides the request context into every slot wait
			// and singleflight join below the handler.
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if s.opts.ReplicaID != "" {
			w.Header().Set(HeaderReplica, s.opts.ReplicaID)
		}
		h(rec, r)
		ep.observe(rec.status, time.Since(start))
	}
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	blob, _ := json.Marshal(errorBody{Error: err.Error()})
	w.Write(append(blob, '\n'))
}

// maxBodyBytes bounds request bodies; planning requests are small.
const maxBodyBytes = 1 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	return nil
}

// errSaturated reports backpressure: the worker slots are busy and the
// wait queue is full. Handlers translate it to 429 + Retry-After.
var errSaturated = errors.New("serve: saturated, retry later")

// errDeadline is the 503 body for a request whose Options.RequestTimeout
// deadline expired while it was queued or simulating.
var errDeadline = errors.New("serve: request deadline exceeded")

// maxRetryAfterSeconds caps the load-derived Retry-After base; with the
// jitter the header never exceeds twice this.
const maxRetryAfterSeconds = 30

// retryAfterSeconds derives the Retry-After hint from current load
// instead of a constant: one second of hinted delay per worker-count of
// queued waiters ahead of the caller (the time a full queue drain takes
// if every simulation ran about a second), clamped, then jittered into
// [base, 2*base) so a burst of rejected clients doesn't come back in
// lockstep and re-saturate the queue on the same tick.
func (s *Server) retryAfterSeconds() int {
	base := 1 + s.limiter.waiting()/s.opts.Workers
	if base > maxRetryAfterSeconds {
		base = maxRetryAfterSeconds
	}
	return base + rand.IntN(base)
}

// writeRunError maps a simulation-path error to its response: deadline
// expiry is the server running out of time budget (503, retryable, with
// the same load-derived Retry-After as saturation), not a property of
// the config (422). rejected_deadline counts the 503s so operators can
// tell brownout from the 429 backpressure counter.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.stats.rejectedDeadline.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, errDeadline)
		return
	}
	writeError(w, http.StatusUnprocessableEntity, err)
}

// writeBackpressure answers 429 + Retry-After; rejected_requests counts
// exactly these responses, wherever the saturation was detected.
func (s *Server) writeBackpressure(w http.ResponseWriter) {
	s.stats.rejected.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, http.StatusTooManyRequests, errSaturated)
}

// runPooled executes cfgs on the shared session pool, converting any
// panic in the simulation stack into per-item errors so one poisonous
// request cannot take down the process. This matters most for the
// batcher's flush, which runs in a timer goroutine outside net/http's
// per-connection recovery — an unrecovered panic there would kill the
// whole server. A panicked ExecuteBatch also never releases its arena,
// so a possibly-corrupted session is dropped rather than recycled.
func (s *Server) runPooled(cfgs []exp.RunConfig) []exp.BatchResult {
	return recoverBatch(cfgs, s.sessions.ExecuteBatch)
}

// recoverBatch runs exec, converting a panic into per-item errors.
func recoverBatch(cfgs []exp.RunConfig, exec func([]exp.RunConfig) []exp.BatchResult) (out []exp.BatchResult) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: simulation panicked: %v", r)
			out = make([]exp.BatchResult, len(cfgs))
			for i := range out {
				out[i].Err = err
			}
		}
	}()
	return exec(cfgs)
}

// RenderPlanResult renders a measurement result to the canonical
// /v1/plan body (newline-terminated JSON). The handler, the sweep
// stream, the result cache and the byte-identity tests all go through
// this one function, so "served == freshly executed" is checkable with
// bytes.Equal.
func RenderPlanResult(res *exp.RunResult) []byte {
	blob, err := json.Marshal(NewPlanResponse(res))
	if err != nil {
		// The response type marshals by construction; any failure here is
		// a programming error, not an input condition.
		panic(fmt.Sprintf("serve: rendering plan response: %v", err))
	}
	return append(blob, '\n')
}

// acquireSlot claims a worker slot, mapping failure to the caller's
// own context error (the client went away — not saturation) or to
// errSaturated (slots busy, queue full).
func (s *Server) acquireSlot(ctx context.Context) error {
	if s.limiter.acquire(ctx) {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return errSaturated
}

// ownerDied reports a shared flight outcome that reflects the OWNER's
// request dying (its context canceled or timed out), not a property of
// the work itself.
func ownerDied(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// cachedBody is the one serving discipline both /v1/plan and /v1/fleet
// follow: answer from the rendered-body cache, else join a singleflight
// whose owner alone does the work (run must claim any worker slot it
// needs and Put the rendered body). Cache reads and flight joins hold
// no worker slot, so a saturated server still answers everything it
// already knows; a joiner whose owner's client died mid-wait retries so
// a surviving caller becomes the new owner; and only successfully
// shared work counts as dedup — a joiner inheriting the owner's 429 or
// simulation error is not coalescing the selfcheck gate should credit.
func cachedBody[K comparable](ctx context.Context, s *Server, cache *lru.Cache[K, []byte], fl *lru.Singleflight[K, stamped], key K, run func() (stamped, error)) ([]byte, time.Time, error) {
	for {
		if body, at, ok := cache.GetStamped(key); ok {
			return body, at, nil
		}
		st, err, shared := fl.Do(key, func() (stamped, error) {
			if b, at, ok := cache.GetQuietStamped(key); ok {
				return stamped{body: b, at: at}, nil
			}
			return run()
		})
		if shared && err != nil && ownerDied(err) && ctx.Err() == nil {
			continue
		}
		if shared && err == nil {
			s.stats.coalesced.Add(1)
		}
		return st.body, st.at, err
	}
}

// planBody answers one normalized config through cachedBody over a
// (possibly batched) pooled execution. Only for the duration of the
// simulation is a worker slot held — never across client-paced response
// writes — which is also why no caller can deadlock holding a slot
// another flight's owner is waiting for. viaBatch selects whether a
// cold config waits in a coalescing window; sweep points skip the
// window — their arena reuse comes from the session pool, and a window
// would only add its delay to every point of an already-batched
// request.
func (s *Server) planBody(ctx context.Context, cfg exp.RunConfig, viaBatch bool) ([]byte, time.Time, error) {
	return cachedBody(ctx, s, s.results, &s.flight, cfg, func() (stamped, error) {
		// Peer fill first: a clustered replica asks its peers' caches
		// before paying a simulation. The lookup is cheap (no worker slot),
		// runs inside this flight (so concurrent identical misses fan out
		// to the peers once), and a filled body keeps the render stamp of
		// the replica that simulated it.
		if s.peers != nil {
			if body, at, ok := s.peers.fill(ctx, cfg); ok {
				s.results.PutStamped(cfg, body, at)
				return stamped{body: body, at: at}, nil
			}
		}
		var res *exp.RunResult
		var err error
		if viaBatch && s.batcher.window > 0 {
			// Windowed path: the batcher claims one worker slot per
			// flushed batch; the member waits holding nothing.
			res, err = s.batcher.run(ctx, cfg)
		} else {
			if err := s.acquireSlot(ctx); err != nil {
				return stamped{}, err
			}
			out := s.runPooled([]exp.RunConfig{cfg})
			s.limiter.release()
			res, err = out[0].Result, out[0].Err
		}
		if err != nil {
			return stamped{}, err
		}
		b := RenderPlanResult(res)
		at := time.Now()
		s.results.PutStamped(cfg, b, at)
		return stamped{body: b, at: at}, nil
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	var req PlanRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := req.RunConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body, at, err := s.planBody(r.Context(), cfg, true)
	if errors.Is(err, errSaturated) {
		s.writeBackpressure(w)
		return
	}
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	s.writeStamped(w, body, at)
}

// writeStamped writes a rendered JSON body, labeling it with the
// staleness headers (and counting it on /metrics) when its render stamp
// is older than Options.StaleAfter. Bodies are pure functions of the
// config, so the label is operational information for routers and
// operators — never a correctness downgrade.
func (s *Server) writeStamped(w http.ResponseWriter, body []byte, at time.Time) {
	if s.opts.StaleAfter > 0 && !at.IsZero() {
		if age := time.Since(at); age > s.opts.StaleAfter {
			w.Header().Set(HeaderStale, "true")
			w.Header().Set(HeaderStaleFor, age.Round(time.Millisecond).String())
			s.stats.staleServed.Add(1)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	var req SweepRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfgs, err := req.configs()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Each point claims a worker slot only while simulating (inside its
	// flight), so the sweep holds nothing while writing to a slow client
	// and saturation surfaces per point, not as a held-slot outage.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	for _, cfg := range cfgs {
		if r.Context().Err() != nil {
			return // deadline or client gone: remaining points are unwanted
		}
		body, _, err := s.planBody(r.Context(), cfg, false)
		if err != nil {
			// The stream is already committed at 200; a failing point
			// reports inline and the sweep continues, so one infeasible
			// corner doesn't cost the rest of the grid.
			blob, _ := json.Marshal(errorBody{Error: err.Error()})
			body = append(blob, '\n')
		}
		if _, err := w.Write(body); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	var req FleetRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	norm, key, err := req.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body, at, err := cachedBody(r.Context(), s, s.fleetRes, &s.fleetFl, key, func() (stamped, error) {
		if err := s.acquireSlot(r.Context()); err != nil {
			return stamped{}, err
		}
		defer s.limiter.release()
		resp, err := s.runFleetSafe(norm)
		if err != nil {
			return stamped{}, err
		}
		blob, err := json.Marshal(resp)
		if err != nil {
			return stamped{}, err
		}
		blob = append(blob, '\n')
		renderedAt := time.Now()
		s.fleetRes.PutStamped(key, blob, renderedAt)
		return stamped{body: blob, at: renderedAt}, nil
	})
	if errors.Is(err, errSaturated) {
		s.writeBackpressure(w)
		return
	}
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	s.writeStamped(w, body, at)
}

// handleTrace answers POST /v1/trace: the same planning question as
// /v1/plan, executed with the flight recorder on, streamed back as Chrome
// trace-event JSON (load it in Perfetto / chrome://tracing). Trace bodies
// are not cached — they are large, rarely repeated, and the traced run is
// byte-identical to the untraced one, so caching them would only evict
// the plan bodies the cache exists for. The pooled arena is still shared:
// a traced request reuses (and re-warms) the same sessions /v1/plan does.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	var req PlanRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := req.RunConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg.Trace = true
	if err := s.acquireSlot(r.Context()); err != nil {
		if errors.Is(err, errSaturated) {
			s.writeBackpressure(w)
			return
		}
		s.writeRunError(w, err)
		return
	}
	out := s.runPooled([]exp.RunConfig{cfg})
	s.limiter.release()
	if out[0].Err != nil {
		writeError(w, http.StatusUnprocessableEntity, out[0].Err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out[0].Result.Trace.ChromeJSON())
}

// wantsPrometheus reports whether the request negotiated the Prometheus
// text exposition instead of the default JSON body. Anything naming
// text/plain or OpenMetrics in Accept opts in; everything else (including
// no Accept at all) keeps the original JSON byte-identical.
func wantsPrometheus(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: GET only"))
		return
	}
	m := s.Metrics()
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(m.Prometheus())
		return
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(blob, '\n'))
}

// Metrics snapshots every counter the server exposes on /metrics.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		UptimeSeconds:     time.Since(s.stats.start).Seconds(),
		Endpoints:         make(map[string]EndpointMetrics),
		CoalescedRequests: s.stats.coalesced.Load(),
		RejectedRequests:  s.stats.rejected.Load(),
		RejectedDeadline:  s.stats.rejectedDeadline.Load(),
		StaleServed:       s.stats.staleServed.Load(),
		PeerFill: PeerFillMetrics{
			Filled:       s.stats.peerFilled.Load(),
			Misses:       s.stats.peerFillMisses.Load(),
			ServedHits:   s.stats.cachefillHits.Load(),
			ServedMisses: s.stats.cachefillMisses.Load(),
		},
		Batch: BatchMetrics{
			Flushes:         s.stats.flushes.Load(),
			BatchedRequests: s.stats.batched.Load(),
			MaxBatch:        s.stats.maxBatch.Load(),
		},
		Sessions: s.sessions.Stats(),
	}
	s.stats.mu.Lock()
	for name, ep := range s.stats.endpoints {
		m.Endpoints[name] = ep.metrics()
	}
	s.stats.mu.Unlock()
	ph, pm, pe, pl := exp.PlanCacheSnapshot()
	m.PlanCache = cacheMetrics(ph, pm, pe, pl)
	rh, rm := s.results.Stats()
	m.ResultCache = cacheMetrics(rh, rm, s.results.Evictions(), s.results.Len())
	fh, fm := s.fleetRes.Stats()
	m.FleetCache = cacheMetrics(fh, fm, s.fleetRes.Evictions(), s.fleetRes.Len())
	ch, cm := s.profiler.CacheStats()
	m.FleetProfiler = FleetProfilerMetrics{
		Runs:        s.profiler.Runs(),
		Coalesced:   s.profiler.Coalesced(),
		Cached:      s.profiler.Cached(),
		CacheHits:   ch,
		CacheMisses: cm,
		Pool:        s.profiler.PoolStats(),
	}
	es := sim.GlobalStats()
	m.Engine = EngineMetrics{
		EventsProcessed: int64(es.Processed),
		EventsScheduled: int64(es.Scheduled),
		PoolHits:        int64(es.PoolHits),
		PoolMisses:      int64(es.PoolMisses),
		PoolHitRate:     es.PoolHitRate(),
	}
	sp := spans.Totals()
	m.Spans = SpanMetrics{
		Snapshots: int64(sp.Snapshots),
		Spans:     int64(sp.Spans),
		Dropped:   int64(sp.Dropped),
	}
	m.SteadyState = exp.GlobalSteadyStats()
	return m
}
