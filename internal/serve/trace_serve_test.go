package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/sim"
)

// TestTraceEndpoint pins /v1/trace: the body is byte-identical to the
// Chrome export of a fresh traced Plan.Execute of the same config, and it
// parses as the trace-event container format.
func TestTraceEndpoint(t *testing.T) {
	srv := New(Options{Workers: 2, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := PlanRequest{Model: smallModel(), Strategy: "ssdtrain"}
	cfg, err := req.runConfig()
	if err != nil {
		t.Fatal(err)
	}
	_, trace, err := exp.TraceOf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := trace.ChromeJSON()

	resp, body := postJSON(t, ts.URL+"/v1/trace", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("served trace differs from fresh traced Plan.Execute (%d vs %d bytes)", len(body), len(want))
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace body is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// Serving a trace must not have poisoned the plan path: the same
	// config's /v1/plan body still matches an untraced fresh execute.
	if resp, got := postJSON(t, ts.URL+"/v1/plan", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan after trace: status %d: %s", resp.StatusCode, got)
	} else if fresh := freshBody(t, req); !bytes.Equal(got, fresh) {
		t.Error("plan body after a traced run differs from fresh Plan.Execute")
	}
}

// TestTraceEndpointValidation pins /v1/trace's 4xx surface.
func TestTraceEndpointValidation(t *testing.T) {
	srv := New(Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/trace: status %d, want 405", resp.StatusCode)
	}

	bad := `{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"strategy":"teleport"}`
	resp, err = http.Post(ts.URL+"/v1/trace", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad strategy: status %d, want 400", resp.StatusCode)
	}
}

// TestMetricsJSONShape pins the default /metrics rendering discipline:
// the body is exactly MarshalIndent of the decoded snapshot (so adding
// Prometheus negotiation changed nothing for JSON clients), and the new
// engine/span counters move after traced work.
func TestMetricsJSONShape(t *testing.T) {
	srv := New(Options{Workers: 2, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := PlanRequest{Model: smallModel(), Strategy: "ssdtrain"}
	if resp, body := postJSON(t, ts.URL+"/v1/trace", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, body)
	}
	// The measurement path times work with Submit-return arithmetic (no
	// scheduled events), so drive an engine directly to prove /metrics
	// reflects published event-pool counters.
	eng := sim.NewEngine()
	for i := 1; i <= 4; i++ {
		eng.After(time.Duration(i)*time.Microsecond, func() {})
	}
	eng.Run()
	eng.PublishStats()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	rerendered, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, append(rerendered, '\n')) {
		t.Error("/metrics JSON body is not the canonical MarshalIndent rendering")
	}
	// Engine and span totals are process-global, so only lower bounds are
	// assertable: the events published above and the traced run's snapshot
	// must both show up.
	if m.Engine.EventsProcessed < 4 || m.Engine.EventsScheduled < 4 {
		t.Errorf("published engine events missing from /metrics: %+v", m.Engine)
	}
	if m.Engine.PoolHitRate < 0 || m.Engine.PoolHitRate > 1 {
		t.Errorf("pool hit rate out of range: %+v", m.Engine)
	}
	if m.Spans.Snapshots == 0 || m.Spans.Spans == 0 {
		t.Errorf("span metrics did not move after a traced run: %+v", m.Spans)
	}
	if ep := m.Endpoints["trace"]; ep.Count != 1 || ep.Status2xx != 1 {
		t.Errorf("trace endpoint counters: %+v", ep)
	}
}

// TestMetricsPrometheus pins the Accept negotiation: text/plain (or
// OpenMetrics) selects the Prometheus exposition, anything else keeps
// JSON, and the text body carries the counters the JSON body does.
func TestMetricsPrometheus(t *testing.T) {
	srv := New(Options{Workers: 2, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := PlanRequest{Model: smallModel(), Strategy: "no-offload"}
	if resp, body := postJSON(t, ts.URL+"/v1/plan", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", resp.StatusCode, body)
	}

	get := func(accept string) (*http.Response, string) {
		r, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	for _, accept := range []string{"text/plain", "application/openmetrics-text"} {
		resp, body := get(accept)
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("Accept %q: content type %q", accept, ct)
		}
		for _, want := range []string{
			"# TYPE ssdtrain_requests_total counter",
			`ssdtrain_requests_total{endpoint="plan",class="2xx"} 1`,
			"ssdtrain_engine_events_total",
			"ssdtrain_spans_total",
			"ssdtrain_session_pool_total",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("Accept %q: exposition missing %q", accept, want)
			}
		}
		// Every non-comment line is "name{labels} value" — one space.
		for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if fields := strings.Split(line, " "); len(fields) != 2 {
				t.Errorf("malformed exposition line %q", line)
			}
		}
	}

	// No Accept (and JSON Accept) keep the original JSON body.
	for _, accept := range []string{"", "application/json"} {
		resp, body := get(accept)
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Accept %q: content type %q", accept, ct)
		}
		var m Metrics
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Errorf("Accept %q: body not JSON: %v", accept, err)
		}
	}
}
