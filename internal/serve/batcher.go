package serve

import (
	"context"
	"sync"
	"time"

	"ssdtrain/internal/exp"
)

// batcher implements the request coalescing windows: /v1/plan requests
// whose configs share a plan shape and arrive within one window are
// micro-batched onto a single borrowed arena — one Compile, one session
// acquire, N Executes — instead of each borrowing (or worse, building)
// an arena of its own. Identical configs never reach the batcher (the
// singleflight upstream already coalesces them), so a batch is a set of
// distinct cheap-knob variants of one shape, exactly the workload
// Session.Execute recycles an arena across.
//
// The batcher owns worker-slot accounting for windowed runs: members
// wait in the window holding nothing, and the flush claims ONE slot for
// the whole batch — a batch is one sequential execution stream, so
// charging it one worker keeps an N-member batch from starving other
// requests of N slots while only one simulation runs at a time.
type batcher struct {
	// exec runs one same-shape batch on a pooled arena; the server wires
	// in its panic-containing executor, so a simulation panic in the
	// flush goroutine becomes per-member errors instead of process death.
	exec    func([]exp.RunConfig) []exp.BatchResult
	limiter *limiter
	window  time.Duration
	stats   *stats

	mu      sync.Mutex
	pending map[exp.RunConfig]*batch // keyed by plan shape
}

type batch struct {
	cfgs []exp.RunConfig
	outs []chan exp.BatchResult
}

func newBatcher(exec func([]exp.RunConfig) []exp.BatchResult, limiter *limiter, window time.Duration, st *stats) *batcher {
	return &batcher{
		exec:    exec,
		limiter: limiter,
		window:  window,
		stats:   st,
		pending: make(map[exp.RunConfig]*batch),
	}
}

// run executes cfg (which must be normalized), sharing an arena — and a
// single worker slot — with other same-shape requests that arrive
// within the window. Callers must not hold a worker slot; run is only
// called with batching enabled (window > 0). A caller whose ctx ends
// while waiting leaves without its result — the flush still runs the
// batch for the members that stayed, and the buffered channel absorbs
// the orphaned delivery.
func (b *batcher) run(ctx context.Context, cfg exp.RunConfig) (*exp.RunResult, error) {
	shape, err := exp.ShapeKey(cfg)
	if err != nil {
		return nil, err
	}
	ch := make(chan exp.BatchResult, 1)
	b.mu.Lock()
	bt := b.pending[shape]
	if bt == nil {
		bt = &batch{}
		b.pending[shape] = bt
		// The window opens when the first request of a shape arrives and
		// flushes once for everything that joined while it was open.
		time.AfterFunc(b.window, func() { b.flush(shape) })
	}
	bt.cfgs = append(bt.cfgs, cfg)
	bt.outs = append(bt.outs, ch)
	b.mu.Unlock()
	select {
	case r := <-ch:
		return r.Result, r.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flush closes a shape's window and runs its batch on one arena under
// one worker slot. The slot wait uses a background context: batch
// members' own request contexts must not abort work their flight
// joiners are still waiting on, and progress is guaranteed because
// every slot holder releases in bounded time. If even the wait queue is
// full, the whole batch reports saturation.
func (b *batcher) flush(shape exp.RunConfig) {
	b.mu.Lock()
	bt := b.pending[shape]
	delete(b.pending, shape)
	b.mu.Unlock()
	if bt == nil {
		return
	}
	if !b.limiter.acquire(context.Background()) {
		for _, ch := range bt.outs {
			ch <- exp.BatchResult{Err: errSaturated}
		}
		return
	}
	results := b.exec(bt.cfgs)
	b.limiter.release()
	b.stats.recordBatch(len(bt.cfgs))
	for i, ch := range bt.outs {
		ch <- results[i]
	}
}
