package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// ServeUntil serves hs on ln until ctx is canceled, then shuts down
// gracefully: the listener closes immediately (new connections are
// refused), while requests already in flight get up to drain to finish
// before their connections are torn down. It returns nil on a clean
// drain, context.DeadlineExceeded if the drain budget expired with
// requests still running, or the serve error if the listener failed
// before shutdown was requested (0 drain = wait indefinitely).
func ServeUntil(ctx context.Context, hs *http.Server, ln net.Listener, drain time.Duration) error {
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	select {
	case err := <-served:
		// Serve never returns nil; reaching here means the listener died
		// out from under us before any shutdown was asked for.
		return err
	case <-ctx.Done():
	}
	sctx := context.Background()
	if drain > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, drain)
		defer cancel()
	}
	err := hs.Shutdown(sctx)
	// Shutdown unblocked Serve with ErrServerClosed — the expected way
	// out. Anything else from Serve outranks the drain verdict.
	if serr := <-served; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	return err
}
