package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"ssdtrain/internal/faults"
	"ssdtrain/internal/fleet"
	"ssdtrain/internal/units"
)

// FleetRequest is the body of POST /v1/fleet: a cluster-scale what-if —
// a seeded heterogeneous job mix scheduled under one or more policies on
// nodes whose NVMe arrays (and optionally DRAM) are contended. The
// server's fleet profiler is shared across requests, so repeated
// what-ifs over similar mixes reuse each other's per-job measurements.
type FleetRequest struct {
	Nodes int `json:"nodes,omitempty"` // default 4
	GPUs  int `json:"gpus,omitempty"`  // per node; default node's 4
	// DRAMGiB overrides the per-node pinned-pool budget in GiB
	// (nil = default node's 512, 0 = unmodeled).
	DRAMGiB    *float64 `json:"dram_gib,omitempty"`
	Jobs       int      `json:"jobs,omitempty"` // default 16
	Seed       int64    `json:"seed,omitempty"` // default 1
	HybridFrac float64  `json:"hybrid_frac,omitempty"`
	// Policies defaults to every scheduler (fifo, sjf, backfill).
	Policies         []string `json:"policies,omitempty"`
	MinSteps         int      `json:"steps_min,omitempty"`
	MaxSteps         int      `json:"steps_max,omitempty"`
	SubmitSpreadMs   int64    `json:"submit_spread_ms,omitempty"`
	AdaptiveProfiles bool     `json:"adaptive_profiles,omitempty"`
	// Faults is a fault plan in the cmd/fleet -faults syntax (e.g.
	// "death@30s:node0:dev1,drain@2m:node1:5m,ckpt=25"); empty injects
	// nothing.
	Faults string `json:"faults,omitempty"`
}

// normalize fills defaults, validates policies, and renders the
// canonical cache/singleflight key (value-identical requests coincide).
func (r FleetRequest) normalize() (FleetRequest, string, error) {
	if r.Nodes == 0 {
		r.Nodes = 4
	}
	if r.Nodes < 0 || r.Nodes > 1024 {
		return r, "", fmt.Errorf("serve: fleet nodes %d outside [1, 1024]", r.Nodes)
	}
	if r.Jobs == 0 {
		r.Jobs = 16
	}
	if r.Jobs < 0 || r.Jobs > 4096 {
		return r, "", fmt.Errorf("serve: fleet jobs %d outside [1, 4096]", r.Jobs)
	}
	// GPUs bounds profiling cost directly: array-contended jobs are
	// profiled at every share 1/t for t = 1..GPUs.
	if r.GPUs < 0 || r.GPUs > maxFleetGPUs {
		return r, "", fmt.Errorf("serve: fleet gpus %d outside [0, %d]", r.GPUs, maxFleetGPUs)
	}
	if r.MinSteps < 0 || r.MinSteps > maxFleetSteps || r.MaxSteps < 0 || r.MaxSteps > maxFleetSteps {
		return r, "", fmt.Errorf("serve: fleet steps bounds [%d, %d] outside [0, %d]", r.MinSteps, r.MaxSteps, maxFleetSteps)
	}
	if r.SubmitSpreadMs < 0 {
		return r, "", fmt.Errorf("serve: negative submit spread %dms", r.SubmitSpreadMs)
	}
	if r.HybridFrac < 0 || r.HybridFrac > 1 {
		return r, "", fmt.Errorf("serve: hybrid_frac %v outside [0, 1]", r.HybridFrac)
	}
	if r.DRAMGiB != nil && *r.DRAMGiB < 0 {
		return r, "", fmt.Errorf("serve: negative dram_gib %v", *r.DRAMGiB)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if len(r.Policies) == 0 {
		for _, p := range fleet.Policies() {
			r.Policies = append(r.Policies, string(p))
		}
	}
	for _, name := range r.Policies {
		if _, err := fleet.ParsePolicy(name); err != nil {
			return r, "", err
		}
	}
	if r.Faults != "" {
		plan, err := faults.ParsePlan(r.Faults)
		if err != nil {
			return r, "", err
		}
		if err := plan.Validate(r.Nodes, fleet.DefaultNodeSpec().SSD.Count); err != nil {
			return r, "", err
		}
	}
	key, err := json.Marshal(r)
	if err != nil {
		return r, "", err
	}
	return r, string(key), nil
}

// FleetPolicyResult is one policy's outcome in a /v1/fleet response.
type FleetPolicyResult struct {
	Policy            string  `json:"policy"`
	MakespanNs        int64   `json:"makespan_ns"`
	Makespan          string  `json:"makespan"`
	MeanWaitNs        int64   `json:"mean_wait_ns"`
	MaxWaitNs         int64   `json:"max_wait_ns"`
	MeanSlowdown      float64 `json:"mean_slowdown"`
	TotalWrittenBytes int64   `json:"total_written_bytes"`
	MinLifespanYears  float64 `json:"min_lifespan_years"`
	MeanLifespanYears float64 `json:"mean_lifespan_years"`
	// Fault outcome counters (present only when the request carried a
	// fault plan).
	Deaths   int `json:"deaths,omitempty"`
	Drains   int `json:"drains,omitempty"`
	Restarts int `json:"restarts,omitempty"`
	// Summary is the human-oriented rendering (the cmd/fleet text).
	Summary string `json:"summary"`
}

// FleetResponse is the body of a /v1/fleet answer.
type FleetResponse struct {
	Nodes       int                 `json:"nodes"`
	GPUsPerNode int                 `json:"gpus_per_node"`
	Jobs        int                 `json:"jobs"`
	Seed        int64               `json:"seed"`
	Policies    []FleetPolicyResult `json:"policies"`
}

// runFleetSafe is runFleet behind a recover: the fleet stack treats
// some internal inconsistencies as panics (they cannot happen on primed
// caches), and a service must answer 422, not die, if one ever fires.
func (s *Server) runFleetSafe(req FleetRequest) (resp *FleetResponse, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("serve: fleet simulation panicked: %v", r)
		}
	}()
	return s.runFleet(req)
}

// runFleet simulates the normalized request's mix under each policy,
// sequentially (deterministic order) on the server's shared profiler.
func (s *Server) runFleet(req FleetRequest) (*FleetResponse, error) {
	node := fleet.DefaultNodeSpec()
	if req.GPUs > 0 {
		node.GPUs = req.GPUs
	}
	if req.DRAMGiB != nil {
		node.DRAM = units.Bytes(*req.DRAMGiB * float64(units.GiB))
	}
	var plan faults.Plan
	if req.Faults != "" {
		// normalize already vetted the syntax; re-parse for the value.
		var err error
		if plan, err = faults.ParsePlan(req.Faults); err != nil {
			return nil, err
		}
	}
	jobs := fleet.DefaultJobMix(fleet.MixConfig{
		Jobs:         req.Jobs,
		Seed:         req.Seed,
		MinSteps:     req.MinSteps,
		MaxSteps:     req.MaxSteps,
		SubmitSpread: time.Duration(req.SubmitSpreadMs) * time.Millisecond,
		MaxGPUs:      node.GPUs,
		HybridFrac:   req.HybridFrac,
		FaultPlan:    plan,
	})
	resp := &FleetResponse{
		Nodes:       req.Nodes,
		GPUsPerNode: node.GPUs,
		Jobs:        req.Jobs,
		Seed:        req.Seed,
	}
	for _, name := range req.Policies {
		policy, err := fleet.ParsePolicy(name)
		if err != nil {
			return nil, err
		}
		report, err := fleet.Simulate(fleet.Config{
			Cluster:          fleet.ClusterSpec{Nodes: req.Nodes, Node: node},
			Jobs:             jobs,
			Policy:           policy,
			Profiler:         s.profiler,
			AdaptiveProfiles: req.AdaptiveProfiles,
			Faults:           plan,
		})
		if err != nil {
			return nil, err
		}
		resp.Policies = append(resp.Policies, FleetPolicyResult{
			Policy:            string(report.Policy),
			MakespanNs:        report.Makespan.Nanoseconds(),
			Makespan:          report.Makespan.Round(time.Millisecond).String(),
			MeanWaitNs:        report.MeanWait.Nanoseconds(),
			MaxWaitNs:         report.MaxWait.Nanoseconds(),
			MeanSlowdown:      report.MeanSlowdown,
			TotalWrittenBytes: int64(report.TotalWritten),
			MinLifespanYears:  report.MinLifespanYears,
			MeanLifespanYears: report.MeanLifespanYears,
			Deaths:            report.TotalDeaths,
			Drains:            report.TotalDrains,
			Restarts:          report.TotalRestarts,
			Summary:           report.Summary(),
		})
	}
	return resp, nil
}
