package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/lru"
)

// These tests pin the cancellation discipline of the admission layers
// under -race: a caller abandoning its request mid-queue-wait,
// mid-batch-window or mid-flight must never leak a slot or a queue
// token, and a singleflight joiner must never inherit a canceled owner's
// death as its own answer.

// TestLimiterCancelMidQueueWait: waiters canceled while parked in the
// queue leave without a slot and return their queue tokens.
func TestLimiterCancelMidQueueWait(t *testing.T) {
	l := newLimiter(1, 4)
	if !l.acquire(context.Background()) {
		t.Fatal("empty limiter refused a slot")
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan bool, 4)
	for i := 0; i < 4; i++ {
		go func() { got <- l.acquire(ctx) }()
	}
	waitFor(t, "all waiters parked", func() bool { return l.waiting() == 4 })
	cancel()
	for i := 0; i < 4; i++ {
		if <-got {
			t.Fatal("canceled waiter acquired a slot")
		}
	}
	if l.waiting() != 0 {
		t.Fatalf("%d queue tokens leaked by canceled waiters", l.waiting())
	}
	l.release()
	if !l.acquire(context.Background()) {
		t.Fatal("slot not reusable after cancellations")
	}
	l.release()
}

// TestBatcherCancelMidWindow: a member abandoning an open window gets
// its own context error, while the flush still runs the full batch for
// the members that stayed and returns its worker slot.
func TestBatcherCancelMidWindow(t *testing.T) {
	var mu sync.Mutex
	var batches [][]exp.RunConfig
	exec := func(cfgs []exp.RunConfig) []exp.BatchResult {
		mu.Lock()
		batches = append(batches, cfgs)
		mu.Unlock()
		out := make([]exp.BatchResult, len(cfgs))
		for i := range out {
			out[i].Result = &exp.RunResult{}
		}
		return out
	}
	l := newLimiter(1, 4)
	b := newBatcher(exec, l, 300*time.Millisecond, newStats(time.Now()))

	leaver, err := PlanRequest{Model: smallModel(), Strategy: "ssdtrain", Steps: 3}.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	stayer, err := PlanRequest{Model: smallModel(), Strategy: "ssdtrain", Steps: 4}.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	shape, err := exp.ShapeKey(leaver)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	leaverErr := make(chan error, 1)
	go func() {
		_, err := b.run(ctx, leaver)
		leaverErr <- err
	}()
	waitFor(t, "leaver joined the window", func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.pending[shape] != nil && len(b.pending[shape].cfgs) == 1
	})
	cancel()
	if err := <-leaverErr; err != context.Canceled {
		t.Fatalf("canceled member got %v, want context.Canceled", err)
	}

	res, err := b.run(context.Background(), stayer)
	if err != nil || res == nil {
		t.Fatalf("staying member got (%v, %v), want a result", res, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("flush ran batches %v, want one batch of both members", batches)
	}
	if len(l.slots) != 0 || l.waiting() != 0 {
		t.Fatalf("flush leaked admission state: %d slots, %d queued", len(l.slots), l.waiting())
	}
}

// TestFlightJoinerSurvivesOwnerDeath: a joiner whose flight owner died
// of its own context must not inherit that death — it retries, becomes
// the new owner and produces the answer itself.
func TestFlightJoinerSurvivesOwnerDeath(t *testing.T) {
	s := New(Options{})
	cache := lru.New[string, []byte](8)
	var fl lru.Singleflight[string, stamped]

	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerIn := make(chan struct{})
	ownerOut := make(chan struct{})
	ownerErr := make(chan error, 1)
	go func() {
		_, _, err := cachedBody(ownerCtx, s, cache, &fl, "k", func() (stamped, error) {
			close(ownerIn)
			<-ownerOut
			return stamped{}, ownerCtx.Err()
		})
		ownerErr <- err
	}()
	<-ownerIn

	joinerBody := make(chan []byte, 1)
	go func() {
		body, _, err := cachedBody(context.Background(), s, cache, &fl, "k", func() (stamped, error) {
			return stamped{body: []byte("fresh\n"), at: time.Now()}, nil
		})
		if err != nil {
			t.Errorf("joiner inherited the owner's death: %v", err)
		}
		joinerBody <- body
	}()
	// Give the joiner time to park on the owner's flight before killing
	// the owner; if it misses the join it simply owns its own flight and
	// the assertions still hold.
	time.Sleep(20 * time.Millisecond)
	cancelOwner()
	close(ownerOut)

	if err := <-ownerErr; err != context.Canceled {
		t.Fatalf("owner got %v, want its own context.Canceled", err)
	}
	if body := <-joinerBody; string(body) != "fresh\n" {
		t.Fatalf("joiner got %q, want the fresh body", body)
	}
}

// TestCanceledRequestsReturnSlots: a burst of requests whose clients
// give up almost immediately must leave the limiter fully drained once
// the simulations they started run out — no slot or queue token may
// leak, whichever phase the cancellation hit.
func TestCanceledRequestsReturnSlots(t *testing.T) {
	s := New(Options{Workers: 1, Queue: 4, BatchWindow: -1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := PlanRequest{Model: smallModel(), Strategy: "ssdtrain", Steps: i%6 + 1}
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i+1)*time.Millisecond)
			defer cancel()
			blob, err := json.Marshal(req)
			if err != nil {
				t.Error(err)
				return
			}
			hr, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/plan", bytes.NewReader(blob))
			if err != nil {
				t.Error(err)
				return
			}
			hr.Header.Set("Content-Type", "application/json")
			if resp, err := http.DefaultClient.Do(hr); err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	waitFor(t, "limiter drained", func() bool {
		return len(s.limiter.slots) == 0 && s.limiter.waiting() == 0
	})
}

// waitFor polls cond until it holds or the test deadline budget runs
// out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
