package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadOptions configures the built-in load generator (cmd/serve
// -selfcheck and examples/serve_client), which drives a live server with
// a mixed palette of plan requests plus a deliberate wave of concurrent
// identical requests, and reads the server's own /metrics to report
// dedup and cache behaviour.
type LoadOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Requests is the total number of plan requests (default 200).
	Requests int
	// Concurrency is the number of client workers (default 8).
	Concurrency int
}

// LoadReport is the outcome of one load run.
type LoadReport struct {
	Requests        int
	Duration        time.Duration
	Throughput      float64 // requests per second
	Status2xx       int
	Status4xx       int
	Status5xx       int
	TransportErrors int
	Mean, P50, P99  time.Duration
	// Mismatches counts determinism violations: concurrent identical
	// requests whose bodies differed, or sweep lines that were not valid
	// JSON — always zero on a correct server.
	Mismatches int
	// SweepErrors counts sweep points the server answered with an inline
	// error line (its documented per-point contract, e.g. saturation) —
	// an availability signal, deliberately separate from Mismatches.
	SweepErrors int
	// Coalesced/ResultCacheHits/SessionHits are server-side deltas read
	// from /metrics across the run.
	Coalesced       int64
	ResultCacheHits int64
	SessionHits     int64
	// Server5xx is the server's own count of 5xx responses over the run —
	// a second witness beyond the client's accounting.
	Server5xx int64
}

func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"load: %d requests in %v (%.1f req/s)\n"+
			"  status          %d ok / %d 4xx / %d 5xx (%d server-side) / %d transport errors\n"+
			"  latency         mean %v, p50 %v, p99 %v\n"+
			"  server dedup    %d coalesced, %d result-cache hits, %d session-pool hits\n"+
			"  mismatches      %d (%d sweep points answered with inline errors)\n",
		r.Requests, r.Duration.Round(time.Millisecond), r.Throughput,
		r.Status2xx, r.Status4xx, r.Status5xx, r.Server5xx, r.TransportErrors,
		r.Mean.Round(time.Microsecond), r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Coalesced, r.ResultCacheHits, r.SessionHits,
		r.Mismatches, r.SweepErrors)
}

// loadPalette is the distinct request mix the generator cycles through:
// every strategy, two placements, contended and exclusive bandwidth —
// small models so a smoke run finishes in seconds.
func loadPalette() []PlanRequest {
	small := ModelSpec{Arch: "bert", Hidden: 2048, Layers: 2, Batch: 4}
	bigger := ModelSpec{Arch: "gpt", Hidden: 2048, Layers: 2, Batch: 8}
	return []PlanRequest{
		{Model: small, Strategy: "ssdtrain"},
		{Model: small, Strategy: "ssdtrain", SSDBandwidthShare: 0.5},
		{Model: small, Strategy: "no-offload"},
		{Model: small, Strategy: "recompute"},
		{Model: small, Strategy: "cpu-offload"},
		{Model: bigger, Strategy: "ssdtrain"},
		{Model: bigger, Strategy: "hybrid", DRAMCapacityBytes: 512 << 20},
		{Model: bigger, Strategy: "hybrid", Placement: "ssd-only"},
	}
}

// postPlan posts one plan request and returns status, body and latency.
func postPlan(client *http.Client, base string, req PlanRequest) (int, []byte, time.Duration, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	resp, err := client.Post(base+"/v1/plan", "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, nil, time.Since(start), err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body, time.Since(start), err
}

// fetchMetrics reads and decodes the server's /metrics snapshot.
func fetchMetrics(client *http.Client, base string) (*Metrics, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: /metrics returned %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// dedupWave fires c concurrent identical requests at a cold config and
// reports body mismatches. Releasing every worker from one barrier makes
// the requests genuinely simultaneous, so all but one coalesce onto the
// first caller's simulation (the server's singleflight or result cache —
// either way the bodies must be byte-identical).
func dedupWave(client *http.Client, base string, req PlanRequest, c int) (mismatches, n5xx, transportErrs int) {
	type out struct {
		status int
		body   []byte
		err    error
	}
	results := make([]out, c)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			status, body, _, err := postPlan(client, base, req)
			results[i] = out{status, body, err}
		}(i)
	}
	close(start)
	wg.Wait()
	var ref []byte
	for _, r := range results {
		if r.err != nil {
			// A connection that failed under the simultaneous burst is
			// exactly what this wave exists to provoke — count it, don't
			// drop it.
			transportErrs++
			continue
		}
		if r.status >= 500 {
			n5xx++
		}
		if r.status != http.StatusOK {
			continue
		}
		if ref == nil {
			ref = r.body
		} else if !bytes.Equal(ref, r.body) {
			mismatches++
		}
	}
	return mismatches, n5xx, transportErrs
}

// RunLoad drives the server at BaseURL: a barrier-released wave of
// identical requests (provoking singleflight dedup), then Requests plan
// requests from Concurrency workers cycling a mixed palette, then one
// small sweep, reading /metrics before and after to report the server's
// dedup and cache deltas.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	if opts.Requests <= 0 {
		opts.Requests = 200
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	before, err := fetchMetrics(client, opts.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("serve: load generator cannot reach server: %w", err)
	}

	rep := &LoadReport{Requests: opts.Requests}

	// Dedup waves: each wave uses a previously unseen config (varied
	// steps) so it cannot be answered from the result cache; retry with a
	// fresh config until the server observed coalescing, bounded so a
	// pathological environment still terminates.
	for wave := 0; wave < 5; wave++ {
		req := loadPalette()[0]
		// Steps is a cheap knob (shared plan shape), but the result cache
		// and singleflight key on the full normalized config — so each
		// wave's config is previously unseen and must coalesce through
		// the flight, not the cache.
		req.Steps = 4 + wave
		mism, n5xx, terrs := dedupWave(client, opts.BaseURL, req, opts.Concurrency)
		rep.Mismatches += mism
		rep.Status5xx += n5xx
		rep.TransportErrors += terrs
		m, err := fetchMetrics(client, opts.BaseURL)
		if err != nil {
			return nil, err
		}
		if m.CoalescedRequests > before.CoalescedRequests {
			break
		}
	}

	// Main load: Requests posts across Concurrency workers, cycling the
	// palette so the run mixes cold simulations, result-cache hits and
	// in-flight coalescing.
	palette := loadPalette()
	latencies := make([]time.Duration, opts.Requests)
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				status, _, lat, err := postPlan(client, opts.BaseURL, palette[i%len(palette)])
				mu.Lock()
				latencies[i] = lat
				switch {
				case err != nil:
					rep.TransportErrors++
				case status >= 500:
					rep.Status5xx++
				case status >= 400:
					rep.Status4xx++
				default:
					rep.Status2xx++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opts.Requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	rep.Duration = time.Since(start)
	if secs := rep.Duration.Seconds(); secs > 0 {
		rep.Throughput = float64(opts.Requests) / secs
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	if n := len(latencies); n > 0 {
		rep.Mean = sum / time.Duration(n)
		rep.P50 = latencies[n/2]
		rep.P99 = latencies[n*99/100]
	}

	// One small sweep for endpoint coverage: every line must be valid
	// JSON and none may be a server error.
	sweep := SweepRequest{
		Base:   PlanRequest{Model: ModelSpec{Arch: "bert", Hidden: 2048, Layers: 2, Batch: 4}, Strategy: "ssdtrain"},
		Shares: []float64{0.25, 0.5, 1},
	}
	blob, _ := json.Marshal(sweep)
	resp, err := client.Post(opts.BaseURL+"/v1/sweep", "application/json", bytes.NewReader(blob))
	if err != nil {
		rep.TransportErrors++
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			rep.Status5xx++
		}
		for _, line := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
			var probe map[string]any
			if err := json.Unmarshal(line, &probe); err != nil {
				rep.Mismatches++
			} else if _, bad := probe["error"]; bad {
				rep.SweepErrors++
			}
		}
	}

	after, err := fetchMetrics(client, opts.BaseURL)
	if err != nil {
		return nil, err
	}
	rep.Coalesced = after.CoalescedRequests - before.CoalescedRequests
	rep.ResultCacheHits = after.ResultCache.Hits - before.ResultCache.Hits
	rep.SessionHits = after.Sessions.Hits - before.Sessions.Hits
	rep.Server5xx = sum5xx(after) - sum5xx(before)
	return rep, nil
}

// sum5xx totals server-observed 5xx responses across endpoints — a
// second, server-side witness beyond the client's own counting.
func sum5xx(m *Metrics) int64 {
	var n int64
	for _, ep := range m.Endpoints {
		n += ep.Status5xx
	}
	return n
}
