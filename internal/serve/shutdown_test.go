package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRequestTimeoutAnswers503: a request whose end-to-end deadline
// expires while it waits for a worker slot gets 503 (retry later), not
// 422 (bad config) — and the same server keeps answering 200 once the
// slot frees up.
func TestRequestTimeoutAnswers503(t *testing.T) {
	srv := New(Options{Workers: 1, BatchWindow: -1, RequestTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if !srv.limiter.acquire(context.Background()) {
		t.Fatal("could not take the only worker slot")
	}
	start := time.Now()
	req := PlanRequest{Model: smallModel(), Strategy: "recompute"}
	resp, body := postJSON(t, ts.URL+"/v1/plan", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-past-deadline request: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("503 body does not name the deadline: %s", body)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Errorf("answered in %v; the request should have waited out its deadline", waited)
	}
	srv.limiter.release()

	if resp, body := postJSON(t, ts.URL+"/v1/plan", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("after slot release: status %d: %s", resp.StatusCode, body)
	}
}

// slowServer is the graceful-shutdown fixture: one handler that blocks
// until released, served through ServeUntil on a loopback listener.
type slowServer struct {
	ln       net.Listener
	started  chan struct{} // closed when the slow handler is entered
	release  chan struct{} // close to let the slow handler answer
	servErr  chan error    // ServeUntil's return value
	shutdown context.CancelFunc
}

func startSlowServer(t *testing.T, drain time.Duration) *slowServer {
	t.Helper()
	ss := &slowServer{
		started: make(chan struct{}),
		release: make(chan struct{}),
		servErr: make(chan error, 1),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(ss.started)
		<-ss.release
		io.WriteString(w, "done")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss.ln = ln
	ctx, cancel := context.WithCancel(context.Background())
	ss.shutdown = cancel
	hs := &http.Server{Handler: mux}
	go func() { ss.servErr <- ServeUntil(ctx, hs, ln, drain) }()
	return ss
}

// get fetches /slow in the background, reporting status and body.
func (ss *slowServer) get() chan error {
	out := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ss.ln.Addr().String() + "/slow")
		if err != nil {
			out <- err
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && (resp.StatusCode != http.StatusOK || string(body) != "done") {
			err = errors.New("unexpected answer: " + resp.Status + " " + string(body))
		}
		out <- err
	}()
	return out
}

// waitRefused polls until new connections are refused (the drain began).
func (ss *slowServer) waitRefused(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", ss.ln.Addr().String())
		if err != nil {
			return
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after shutdown began")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGracefulShutdownDrains: after the shutdown signal the listener
// closes at once, but the in-flight request still completes and
// ServeUntil reports a clean drain.
func TestGracefulShutdownDrains(t *testing.T) {
	ss := startSlowServer(t, 10*time.Second)
	inflight := ss.get()
	<-ss.started
	ss.shutdown()
	ss.waitRefused(t)
	close(ss.release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request not drained cleanly: %v", err)
	}
	if err := <-ss.servErr; err != nil {
		t.Fatalf("ServeUntil: %v", err)
	}
}

// TestGracefulShutdownDrainExpiry: a request that outlives the drain
// budget surfaces as context.DeadlineExceeded from ServeUntil — the
// operator learns the drain was dirty.
func TestGracefulShutdownDrainExpiry(t *testing.T) {
	ss := startSlowServer(t, 20*time.Millisecond)
	inflight := ss.get()
	<-ss.started
	ss.shutdown()
	if err := <-ss.servErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ServeUntil = %v, want DeadlineExceeded", err)
	}
	close(ss.release)
	<-inflight // outcome after a dirty drain is the client's problem
}
