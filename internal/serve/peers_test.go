package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// handlerTransport routes peer requests to in-process handlers by base
// URL — a cluster of servers with no sockets.
type handlerTransport map[string]http.Handler

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t["http://"+req.URL.Host]
	if !ok {
		return nil, &http.ProtocolError{ErrorString: "no such peer: " + req.URL.Host}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

func memClient(peers handlerTransport) *http.Client {
	return &http.Client{Transport: peers}
}

// TestCachefillWireRoundTrip pins the /v1/cachefill wire contract: a
// normalized exp.RunConfig survives the JSON round trip exactly, so the
// receiving replica's re-normalization lands on the very cache key the
// asker computed. Hybrid knobs, fractional floats and a fault schedule
// ride along to cover every field kind on the struct.
func TestCachefillWireRoundTrip(t *testing.T) {
	req := PlanRequest{
		Model: smallModel(), Strategy: "hybrid", Placement: "split",
		SplitRatio: 0.3, DRAMCapacityBytes: 256 << 20,
		SSDBandwidthShare: 0.7, Steps: 5,
		Faults: &FaultSpec{DegradeAtUs: 1500, DegradeFactor: 0.5, DegradeForUs: 2500},
	}
	cfg, err := req.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(cachefillRequest{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var got cachefillRequest
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.Config != cfg {
		t.Fatalf("config did not survive the wire:\n sent %+v\n got  %+v", cfg, got.Config)
	}
}

// TestPeerFillWarmsColdReplica is the cache-fill contract end to end: a
// cold replica's miss is answered from a warm peer's cache, byte-identical
// to the peer's body, counted on both sides, carrying the original render
// stamp, without the cold replica simulating anything.
func TestPeerFillWarmsColdReplica(t *testing.T) {
	warm := New(Options{ReplicaID: "warm"})
	peers := handlerTransport{"http://warm": warm.Handler()}
	cold := New(Options{
		ReplicaID:  "cold",
		Peers:      []string{"http://warm"},
		PeerClient: memClient(peers),
	})

	req := PlanRequest{Model: smallModel(), Strategy: "ssdtrain"}
	warmSrv := httptest.NewServer(warm.Handler())
	defer warmSrv.Close()
	coldSrv := httptest.NewServer(cold.Handler())
	defer coldSrv.Close()

	_, warmBody := postJSON(t, warmSrv.URL+"/v1/plan", req)
	resp, coldBody := postJSON(t, coldSrv.URL+"/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold replica answered %d: %s", resp.StatusCode, coldBody)
	}
	if string(coldBody) != string(warmBody) {
		t.Fatalf("peer-filled body differs from the peer's own:\n%s\nvs\n%s", coldBody, warmBody)
	}
	if got := resp.Header.Get(HeaderReplica); got != "cold" {
		t.Fatalf("replica echo = %q, want %q", got, "cold")
	}
	if m := cold.Metrics(); m.PeerFill.Filled != 1 || m.PeerFill.Misses != 0 {
		t.Fatalf("cold peer-fill counters = %+v, want exactly one fill", m.PeerFill)
	}
	if m := warm.Metrics(); m.PeerFill.ServedHits != 1 {
		t.Fatalf("warm served counters = %+v, want one served hit", m.PeerFill)
	}
	// The fill must not have simulated: the cold replica's arena pool has
	// never executed.
	if m := cold.Metrics(); m.Sessions.Hits+m.Sessions.Misses != 0 {
		t.Fatalf("cold replica simulated (%+v) despite the peer fill", m.Sessions)
	}
	// The filled entry kept the peer's render stamp, not the copy time.
	cfg, err := req.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	_, coldAt, ok := cold.results.Peek(cfg)
	if !ok {
		t.Fatal("fill did not land in the cold replica's cache")
	}
	_, warmAt, _ := warm.results.Peek(cfg)
	if !coldAt.Equal(warmAt) {
		t.Fatalf("filled stamp %v != peer render stamp %v", coldAt, warmAt)
	}
}

// TestPeerFillMissFallsBackToSimulation: with every peer cold (or gone),
// a miss still answers correctly by simulating locally, and both sides
// count the miss.
func TestPeerFillMissFallsBackToSimulation(t *testing.T) {
	other := New(Options{ReplicaID: "other"})
	peers := handlerTransport{"http://other": other.Handler()}
	s := New(Options{
		ReplicaID: "self",
		// One cold peer and one that does not exist at all: neither may
		// stall the miss past the fill timeout or break the request.
		Peers:      []string{"http://other", "http://gone"},
		PeerClient: memClient(peers),
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := PlanRequest{Model: smallModel(), Strategy: "ssdtrain"}
	resp, body := postJSON(t, srv.URL+"/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if string(body) != string(freshBody(t, req)) {
		t.Fatal("simulated fallback body differs from a fresh execute")
	}
	if m := s.Metrics(); m.PeerFill.Filled != 0 || m.PeerFill.Misses != 1 {
		t.Fatalf("peer-fill counters = %+v, want exactly one miss", m.PeerFill)
	}
	if m := other.Metrics(); m.PeerFill.ServedMisses != 1 {
		t.Fatalf("peer served counters = %+v, want one served miss", m.PeerFill)
	}
}

// TestCachefillLookupIsInvisible pins the lookup-only contract: a peer's
// cachefill probe must not promote the entry or move the result cache's
// hit/miss counters — remote warmup traffic cannot distort local
// recency or accounting.
func TestCachefillLookupIsInvisible(t *testing.T) {
	s := New(Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := PlanRequest{Model: smallModel(), Strategy: "no-offload"}
	postJSON(t, srv.URL+"/v1/plan", req)
	cfg, err := req.RunConfig()
	if err != nil {
		t.Fatal(err)
	}
	h0, m0 := s.results.Stats()
	resp, body := postJSON(t, srv.URL+"/v1/cachefill", cachefillRequest{Config: cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cachefill answered %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(HeaderRenderedAt) == "" {
		t.Fatal("cachefill hit carried no render stamp")
	}
	if h1, m1 := s.results.Stats(); h1 != h0 || m1 != m0 {
		t.Fatalf("cachefill moved cache counters: %d/%d -> %d/%d", h0, m0, h1, m1)
	}
}

// TestStaleLabeling: with StaleAfter set, a cache hit older than the
// threshold carries the staleness headers and counts on /metrics; a
// fresh render does not.
func TestStaleLabeling(t *testing.T) {
	s := New(Options{StaleAfter: 60 * time.Millisecond})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := PlanRequest{Model: smallModel(), Strategy: "no-offload"}
	resp, _ := postJSON(t, srv.URL+"/v1/plan", req)
	if resp.Header.Get(HeaderStale) != "" {
		t.Fatal("fresh render labeled stale")
	}
	time.Sleep(100 * time.Millisecond)
	resp, _ = postJSON(t, srv.URL+"/v1/plan", req)
	if resp.Header.Get(HeaderStale) != "true" {
		t.Fatal("aged cache hit not labeled stale")
	}
	if resp.Header.Get(HeaderStaleFor) == "" {
		t.Fatal("stale label carried no age")
	}
	if m := s.Metrics(); m.StaleServed != 1 {
		t.Fatalf("stale_served = %d, want 1", m.StaleServed)
	}
}

// TestRetryAfterDerivedFromLoad pins the Retry-After derivation: the
// hint grows with the queue depth and is jittered within [base, 2*base).
func TestRetryAfterDerivedFromLoad(t *testing.T) {
	s := New(Options{Workers: 2, Queue: 8})
	if got := s.retryAfterSeconds(); got < 1 || got > 2 {
		t.Fatalf("idle Retry-After = %d, want 1 or 2", got)
	}
	for i := 0; i < 6; i++ {
		s.limiter.queue <- struct{}{}
	}
	// base = 1 + 6/2 = 4, jittered into [4, 8).
	for i := 0; i < 50; i++ {
		if got := s.retryAfterSeconds(); got < 4 || got >= 8 {
			t.Fatalf("loaded Retry-After = %d, want in [4, 8)", got)
		}
	}
}
