package serve

import (
	"fmt"
	"sort"
	"strings"
)

// Prometheus renders the metrics snapshot in the Prometheus text
// exposition format (version 0.0.4), the body /metrics serves when the
// client's Accept header asks for text/plain or OpenMetrics. The same
// snapshot backs both formats, so a scraper and a JSON reader always see
// one consistent view; output ordering is deterministic (sorted label
// values) so the body is diffable and testable.
func (m Metrics) Prometheus() []byte {
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, rows func()) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		rows()
	}

	gauge("ssdtrain_uptime_seconds", "Seconds since the server started.", m.UptimeSeconds)

	names := make([]string, 0, len(m.Endpoints))
	for name := range m.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	counter("ssdtrain_requests_total", "Requests served, by endpoint and status class.", func() {
		for _, name := range names {
			ep := m.Endpoints[name]
			for _, c := range []struct {
				class string
				n     int64
			}{{"2xx", ep.Status2xx}, {"4xx", ep.Status4xx}, {"5xx", ep.Status5xx}} {
				fmt.Fprintf(&b, "ssdtrain_requests_total{endpoint=%q,class=%q} %d\n", name, c.class, c.n)
			}
		}
	})
	fmt.Fprintf(&b, "# HELP ssdtrain_request_latency_us Request latency quantiles in microseconds (upper bucket bound).\n# TYPE ssdtrain_request_latency_us gauge\n")
	for _, name := range names {
		ep := m.Endpoints[name]
		for _, q := range []struct {
			q string
			v int64
		}{{"0.5", ep.P50Us}, {"0.9", ep.P90Us}, {"0.99", ep.P99Us}} {
			fmt.Fprintf(&b, "ssdtrain_request_latency_us{endpoint=%q,quantile=%q} %d\n", name, q.q, q.v)
		}
	}

	counter("ssdtrain_coalesced_requests_total", "Requests answered by another request's in-flight simulation.", func() {
		fmt.Fprintf(&b, "ssdtrain_coalesced_requests_total %d\n", m.CoalescedRequests)
	})
	counter("ssdtrain_rejected_requests_total", "429 backpressure responses.", func() {
		fmt.Fprintf(&b, "ssdtrain_rejected_requests_total %d\n", m.RejectedRequests)
	})
	counter("ssdtrain_rejected_deadline_total", "503 deadline-expiry responses (brownout, distinct from 429 saturation).", func() {
		fmt.Fprintf(&b, "ssdtrain_rejected_deadline_total %d\n", m.RejectedDeadline)
	})
	counter("ssdtrain_stale_served_total", "Responses served past the staleness threshold and labeled stale.", func() {
		fmt.Fprintf(&b, "ssdtrain_stale_served_total %d\n", m.StaleServed)
	})
	counter("ssdtrain_peer_fill_total", "Peer cache-fill traffic, by event.", func() {
		fmt.Fprintf(&b, "ssdtrain_peer_fill_total{event=\"filled\"} %d\n", m.PeerFill.Filled)
		fmt.Fprintf(&b, "ssdtrain_peer_fill_total{event=\"miss\"} %d\n", m.PeerFill.Misses)
		fmt.Fprintf(&b, "ssdtrain_peer_fill_total{event=\"served_hit\"} %d\n", m.PeerFill.ServedHits)
		fmt.Fprintf(&b, "ssdtrain_peer_fill_total{event=\"served_miss\"} %d\n", m.PeerFill.ServedMisses)
	})
	counter("ssdtrain_batch_flushes_total", "Coalescing-window flushes.", func() {
		fmt.Fprintf(&b, "ssdtrain_batch_flushes_total %d\n", m.Batch.Flushes)
	})
	counter("ssdtrain_batched_requests_total", "Requests executed through a coalescing window.", func() {
		fmt.Fprintf(&b, "ssdtrain_batched_requests_total %d\n", m.Batch.BatchedRequests)
	})

	counter("ssdtrain_cache_events_total", "Cache traffic, by cache and event.", func() {
		for _, c := range []struct {
			name string
			m    CacheMetrics
		}{{"plan", m.PlanCache}, {"result", m.ResultCache}, {"fleet", m.FleetCache}} {
			fmt.Fprintf(&b, "ssdtrain_cache_events_total{cache=%q,event=\"hit\"} %d\n", c.name, c.m.Hits)
			fmt.Fprintf(&b, "ssdtrain_cache_events_total{cache=%q,event=\"miss\"} %d\n", c.name, c.m.Misses)
			fmt.Fprintf(&b, "ssdtrain_cache_events_total{cache=%q,event=\"eviction\"} %d\n", c.name, c.m.Evictions)
		}
	})

	counter("ssdtrain_session_pool_total", "Execution-arena pool traffic, by event.", func() {
		fmt.Fprintf(&b, "ssdtrain_session_pool_total{event=\"hit\"} %d\n", m.Sessions.Hits)
		fmt.Fprintf(&b, "ssdtrain_session_pool_total{event=\"miss\"} %d\n", m.Sessions.Misses)
		fmt.Fprintf(&b, "ssdtrain_session_pool_total{event=\"eviction\"} %d\n", m.Sessions.Evictions)
	})
	gauge("ssdtrain_session_pool_idle", "Execution arenas currently retained in the pool.", float64(m.Sessions.Idle))

	counter("ssdtrain_engine_events_total", "Simulation-engine event traffic across all arenas, by event.", func() {
		fmt.Fprintf(&b, "ssdtrain_engine_events_total{event=\"processed\"} %d\n", m.Engine.EventsProcessed)
		fmt.Fprintf(&b, "ssdtrain_engine_events_total{event=\"scheduled\"} %d\n", m.Engine.EventsScheduled)
		fmt.Fprintf(&b, "ssdtrain_engine_events_total{event=\"pool_hit\"} %d\n", m.Engine.PoolHits)
		fmt.Fprintf(&b, "ssdtrain_engine_events_total{event=\"pool_miss\"} %d\n", m.Engine.PoolMisses)
	})
	gauge("ssdtrain_engine_pool_hit_rate", "Fraction of event schedules served from the engine free list.", m.Engine.PoolHitRate)

	counter("ssdtrain_span_snapshots_total", "Traced runs snapshotted by the flight recorder.", func() {
		fmt.Fprintf(&b, "ssdtrain_span_snapshots_total %d\n", m.Spans.Snapshots)
	})
	counter("ssdtrain_spans_total", "Spans delivered across all trace snapshots.", func() {
		fmt.Fprintf(&b, "ssdtrain_spans_total %d\n", m.Spans.Spans)
	})
	counter("ssdtrain_spans_dropped_total", "Spans lost to recorder ring overwrites.", func() {
		fmt.Fprintf(&b, "ssdtrain_spans_dropped_total %d\n", m.Spans.Dropped)
	})

	counter("ssdtrain_steady_state_runs_total", "Steady-state fast-path outcomes, by result.", func() {
		fmt.Fprintf(&b, "ssdtrain_steady_state_runs_total{result=\"hit\"} %d\n", m.SteadyState.Hits)
		fmt.Fprintf(&b, "ssdtrain_steady_state_runs_total{result=\"fallback_trace\"} %d\n", m.SteadyState.FallbackTrace)
		fmt.Fprintf(&b, "ssdtrain_steady_state_runs_total{result=\"fallback_faults\"} %d\n", m.SteadyState.FallbackFaults)
		fmt.Fprintf(&b, "ssdtrain_steady_state_runs_total{result=\"fallback_off\"} %d\n", m.SteadyState.FallbackOff)
		fmt.Fprintf(&b, "ssdtrain_steady_state_runs_total{result=\"fallback_no_convergence\"} %d\n", m.SteadyState.FallbackNoConvergence)
	})
	counter("ssdtrain_steady_state_extrapolated_steps_total", "Measured steps synthesized analytically instead of simulated.", func() {
		fmt.Fprintf(&b, "ssdtrain_steady_state_extrapolated_steps_total %d\n", m.SteadyState.ExtrapolatedSteps)
	})

	return []byte(b.String())
}

// Prometheus renders the router metrics snapshot in the Prometheus text
// exposition format, mirroring the replica rendering above so one scrape
// config covers both layers of a cluster.
func (m RouterMetrics) Prometheus() []byte {
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, rows func()) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		rows()
	}

	gauge("ssdtrain_router_uptime_seconds", "Seconds since the router started.", m.UptimeSeconds)

	names := make([]string, 0, len(m.Endpoints))
	for name := range m.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	counter("ssdtrain_router_requests_total", "Routed requests, by endpoint and status class.", func() {
		for _, name := range names {
			ep := m.Endpoints[name]
			for _, c := range []struct {
				class string
				n     int64
			}{{"2xx", ep.Status2xx}, {"4xx", ep.Status4xx}, {"5xx", ep.Status5xx}} {
				fmt.Fprintf(&b, "ssdtrain_router_requests_total{endpoint=%q,class=%q} %d\n", name, c.class, c.n)
			}
		}
	})

	counter("ssdtrain_router_attempts_total", "Upstream attempts, by kind (first try, retry, hedge).", func() {
		first := m.Attempts - m.Retries - m.Hedges
		fmt.Fprintf(&b, "ssdtrain_router_attempts_total{kind=\"first\"} %d\n", first)
		fmt.Fprintf(&b, "ssdtrain_router_attempts_total{kind=\"retry\"} %d\n", m.Retries)
		fmt.Fprintf(&b, "ssdtrain_router_attempts_total{kind=\"hedge\"} %d\n", m.Hedges)
	})
	counter("ssdtrain_router_hedge_wins_total", "Hedged attempts whose answer arrived before the primary's.", func() {
		fmt.Fprintf(&b, "ssdtrain_router_hedge_wins_total %d\n", m.HedgeWins)
	})
	counter("ssdtrain_router_retry_budget_exhausted_total", "Retries or hedges suppressed by an empty retry budget.", func() {
		fmt.Fprintf(&b, "ssdtrain_router_retry_budget_exhausted_total %d\n", m.RetryBudgetExhausted)
	})
	counter("ssdtrain_router_stale_total", "Total-failure fallbacks, by outcome (served from the last-good cache, or no body to serve).", func() {
		fmt.Fprintf(&b, "ssdtrain_router_stale_total{outcome=\"served\"} %d\n", m.StaleServed)
		fmt.Fprintf(&b, "ssdtrain_router_stale_total{outcome=\"miss\"} %d\n", m.StaleMisses)
	})

	gauge("ssdtrain_router_ring_replicas", "Healthy replicas currently on the consistent-hash ring.", float64(m.RingReplicas))
	counter("ssdtrain_router_ring_rebuilds_total", "Ring rebuilds triggered by replica health transitions.", func() {
		fmt.Fprintf(&b, "ssdtrain_router_ring_rebuilds_total %d\n", m.RingRebuilds)
	})

	fmt.Fprintf(&b, "# HELP ssdtrain_router_replica_healthy Replica health as seen by the registry (1 healthy, 0 ejected).\n# TYPE ssdtrain_router_replica_healthy gauge\n")
	for _, rep := range m.Replicas {
		v := 0
		if rep.Healthy {
			v = 1
		}
		fmt.Fprintf(&b, "ssdtrain_router_replica_healthy{replica=%q} %d\n", rep.ID, v)
	}
	counter("ssdtrain_router_replica_events_total", "Per-replica registry events, by kind.", func() {
		for _, rep := range m.Replicas {
			fmt.Fprintf(&b, "ssdtrain_router_replica_events_total{replica=%q,kind=\"probe\"} %d\n", rep.ID, rep.Probes)
			fmt.Fprintf(&b, "ssdtrain_router_replica_events_total{replica=%q,kind=\"failure\"} %d\n", rep.ID, rep.Failures)
			fmt.Fprintf(&b, "ssdtrain_router_replica_events_total{replica=%q,kind=\"ejection\"} %d\n", rep.ID, rep.Ejections)
			fmt.Fprintf(&b, "ssdtrain_router_replica_events_total{replica=%q,kind=\"readmission\"} %d\n", rep.ID, rep.Readmissions)
		}
	})

	return []byte(b.String())
}
