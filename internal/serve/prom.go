package serve

import (
	"fmt"
	"sort"
	"strings"
)

// Prometheus renders the metrics snapshot in the Prometheus text
// exposition format (version 0.0.4), the body /metrics serves when the
// client's Accept header asks for text/plain or OpenMetrics. The same
// snapshot backs both formats, so a scraper and a JSON reader always see
// one consistent view; output ordering is deterministic (sorted label
// values) so the body is diffable and testable.
func (m Metrics) Prometheus() []byte {
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, rows func()) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		rows()
	}

	gauge("ssdtrain_uptime_seconds", "Seconds since the server started.", m.UptimeSeconds)

	names := make([]string, 0, len(m.Endpoints))
	for name := range m.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	counter("ssdtrain_requests_total", "Requests served, by endpoint and status class.", func() {
		for _, name := range names {
			ep := m.Endpoints[name]
			for _, c := range []struct {
				class string
				n     int64
			}{{"2xx", ep.Status2xx}, {"4xx", ep.Status4xx}, {"5xx", ep.Status5xx}} {
				fmt.Fprintf(&b, "ssdtrain_requests_total{endpoint=%q,class=%q} %d\n", name, c.class, c.n)
			}
		}
	})
	fmt.Fprintf(&b, "# HELP ssdtrain_request_latency_us Request latency quantiles in microseconds (upper bucket bound).\n# TYPE ssdtrain_request_latency_us gauge\n")
	for _, name := range names {
		ep := m.Endpoints[name]
		for _, q := range []struct {
			q string
			v int64
		}{{"0.5", ep.P50Us}, {"0.9", ep.P90Us}, {"0.99", ep.P99Us}} {
			fmt.Fprintf(&b, "ssdtrain_request_latency_us{endpoint=%q,quantile=%q} %d\n", name, q.q, q.v)
		}
	}

	counter("ssdtrain_coalesced_requests_total", "Requests answered by another request's in-flight simulation.", func() {
		fmt.Fprintf(&b, "ssdtrain_coalesced_requests_total %d\n", m.CoalescedRequests)
	})
	counter("ssdtrain_rejected_requests_total", "429 backpressure responses.", func() {
		fmt.Fprintf(&b, "ssdtrain_rejected_requests_total %d\n", m.RejectedRequests)
	})
	counter("ssdtrain_batch_flushes_total", "Coalescing-window flushes.", func() {
		fmt.Fprintf(&b, "ssdtrain_batch_flushes_total %d\n", m.Batch.Flushes)
	})
	counter("ssdtrain_batched_requests_total", "Requests executed through a coalescing window.", func() {
		fmt.Fprintf(&b, "ssdtrain_batched_requests_total %d\n", m.Batch.BatchedRequests)
	})

	counter("ssdtrain_cache_events_total", "Cache traffic, by cache and event.", func() {
		for _, c := range []struct {
			name string
			m    CacheMetrics
		}{{"plan", m.PlanCache}, {"result", m.ResultCache}, {"fleet", m.FleetCache}} {
			fmt.Fprintf(&b, "ssdtrain_cache_events_total{cache=%q,event=\"hit\"} %d\n", c.name, c.m.Hits)
			fmt.Fprintf(&b, "ssdtrain_cache_events_total{cache=%q,event=\"miss\"} %d\n", c.name, c.m.Misses)
			fmt.Fprintf(&b, "ssdtrain_cache_events_total{cache=%q,event=\"eviction\"} %d\n", c.name, c.m.Evictions)
		}
	})

	counter("ssdtrain_session_pool_total", "Execution-arena pool traffic, by event.", func() {
		fmt.Fprintf(&b, "ssdtrain_session_pool_total{event=\"hit\"} %d\n", m.Sessions.Hits)
		fmt.Fprintf(&b, "ssdtrain_session_pool_total{event=\"miss\"} %d\n", m.Sessions.Misses)
		fmt.Fprintf(&b, "ssdtrain_session_pool_total{event=\"eviction\"} %d\n", m.Sessions.Evictions)
	})
	gauge("ssdtrain_session_pool_idle", "Execution arenas currently retained in the pool.", float64(m.Sessions.Idle))

	counter("ssdtrain_engine_events_total", "Simulation-engine event traffic across all arenas, by event.", func() {
		fmt.Fprintf(&b, "ssdtrain_engine_events_total{event=\"processed\"} %d\n", m.Engine.EventsProcessed)
		fmt.Fprintf(&b, "ssdtrain_engine_events_total{event=\"scheduled\"} %d\n", m.Engine.EventsScheduled)
		fmt.Fprintf(&b, "ssdtrain_engine_events_total{event=\"pool_hit\"} %d\n", m.Engine.PoolHits)
		fmt.Fprintf(&b, "ssdtrain_engine_events_total{event=\"pool_miss\"} %d\n", m.Engine.PoolMisses)
	})
	gauge("ssdtrain_engine_pool_hit_rate", "Fraction of event schedules served from the engine free list.", m.Engine.PoolHitRate)

	counter("ssdtrain_span_snapshots_total", "Traced runs snapshotted by the flight recorder.", func() {
		fmt.Fprintf(&b, "ssdtrain_span_snapshots_total %d\n", m.Spans.Snapshots)
	})
	counter("ssdtrain_spans_total", "Spans delivered across all trace snapshots.", func() {
		fmt.Fprintf(&b, "ssdtrain_spans_total %d\n", m.Spans.Spans)
	})
	counter("ssdtrain_spans_dropped_total", "Spans lost to recorder ring overwrites.", func() {
		fmt.Fprintf(&b, "ssdtrain_spans_dropped_total %d\n", m.Spans.Dropped)
	})

	counter("ssdtrain_steady_state_runs_total", "Steady-state fast-path outcomes, by result.", func() {
		fmt.Fprintf(&b, "ssdtrain_steady_state_runs_total{result=\"hit\"} %d\n", m.SteadyState.Hits)
		fmt.Fprintf(&b, "ssdtrain_steady_state_runs_total{result=\"fallback_trace\"} %d\n", m.SteadyState.FallbackTrace)
		fmt.Fprintf(&b, "ssdtrain_steady_state_runs_total{result=\"fallback_faults\"} %d\n", m.SteadyState.FallbackFaults)
		fmt.Fprintf(&b, "ssdtrain_steady_state_runs_total{result=\"fallback_off\"} %d\n", m.SteadyState.FallbackOff)
		fmt.Fprintf(&b, "ssdtrain_steady_state_runs_total{result=\"fallback_no_convergence\"} %d\n", m.SteadyState.FallbackNoConvergence)
	})
	counter("ssdtrain_steady_state_extrapolated_steps_total", "Measured steps synthesized analytically instead of simulated.", func() {
		fmt.Fprintf(&b, "ssdtrain_steady_state_extrapolated_steps_total %d\n", m.SteadyState.ExtrapolatedSteps)
	})

	return []byte(b.String())
}
