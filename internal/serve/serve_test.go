package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ssdtrain/internal/exp"
)

// smallModel is the test model: small enough that a single measurement
// is milliseconds, real enough that every strategy produces offload
// traffic.
func smallModel() ModelSpec {
	return ModelSpec{Arch: "bert", Hidden: 2048, Layers: 2, Batch: 4}
}

// identityGrid is every strategy × placement the byte-identity test
// exercises, with contended-bandwidth and DRAM-capacity variants.
func identityGrid() []PlanRequest {
	m := smallModel()
	return []PlanRequest{
		{Model: m, Strategy: "no-offload"},
		{Model: m, Strategy: "recompute"},
		{Model: m, Strategy: "ssdtrain"},
		{Model: m, Strategy: "ssdtrain", SSDBandwidthShare: 0.5},
		{Model: m, Strategy: "cpu-offload"},
		{Model: m, Strategy: "cpu-offload", DRAMCapacityBytes: 1 << 31},
		{Model: m, Strategy: "hybrid", DRAMCapacityBytes: 256 << 20},
		{Model: m, Strategy: "hybrid", Placement: "ssd-only", DRAMCapacityBytes: 256 << 20},
		{Model: m, Strategy: "hybrid", Placement: "split", SplitRatio: 0.5, DRAMCapacityBytes: 256 << 20},
	}
}

// freshBody renders the request the reference way: a fresh Plan.Execute
// on a single-use arena, no pool, no cache, no batch.
func freshBody(t *testing.T, req PlanRequest) []byte {
	t.Helper()
	cfg, err := req.runConfig()
	if err != nil {
		t.Fatalf("runConfig(%+v): %v", req, err)
	}
	plan, err := exp.Compile(cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := plan.Execute(cfg)
	if err != nil {
		t.Fatalf("fresh execute: %v", err)
	}
	return RenderPlanResult(res)
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, got
}

// TestPlanByteIdentityConcurrent is the concurrent-correctness pin: N
// goroutines hammer /v1/plan with identical and with distinct configs —
// every strategy × placement — against a server deliberately configured
// for churn (result cache far smaller than the working set, a
// single-arena session pool that evicts on every cross-shape release,
// an active coalescing window), interleaved with requests that error
// mid-simulation on the same arenas. Every 200 body must be
// byte-identical to rendering a fresh Plan.Execute. Run under -race this
// is also the proof that the cache/arena layers are safe to share.
func TestPlanByteIdentityConcurrent(t *testing.T) {
	grid := identityGrid()
	want := make([][]byte, len(grid))
	for i, req := range grid {
		want[i] = freshBody(t, req)
	}

	srv := New(Options{
		Workers:         4,
		Queue:           4096,
		CacheCapacity:   2, // working set is len(grid): constant result-cache eviction
		MaxIdleSessions: 1, // every cross-shape release evicts an arena
		BatchWindow:     time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Overflow config: same plan shape (and therefore same pooled
	// arenas) as the healthy cpu-offload entries, but its pinned pool
	// cannot hold one block — the run errors mid-simulation, and the
	// arena it dirtied must still serve byte-identical healthy runs.
	overflow := PlanRequest{Model: smallModel(), Strategy: "cpu-offload", DRAMCapacityBytes: 1 << 20}
	// Invalid config: rejected at validation (400), never executed.
	invalid := PlanRequest{Model: smallModel(), Strategy: "ssdtrain", SplitRatio: 0.5}

	const goroutines = 6
	const rounds = 2
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds*(len(grid)+2))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := range grid {
					i := (k + g) % len(grid) // rotate per goroutine: distinct and identical mixes
					blob, _ := json.Marshal(grid[i])
					resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(blob))
					if err != nil {
						errs <- err
						continue
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("grid[%d]: status %d: %s", i, resp.StatusCode, body)
						continue
					}
					if !bytes.Equal(body, want[i]) {
						errs <- fmt.Errorf("grid[%d]: served body differs from fresh Plan.Execute\n got: %s\nwant: %s", i, body, want[i])
					}
					// Interleave failures: every goroutine periodically
					// throws an erroring and an invalid request into the mix.
					if k == g%len(grid) {
						blob, _ := json.Marshal(overflow)
						resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(blob))
						if err != nil {
							errs <- err
						} else {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
							if resp.StatusCode != http.StatusUnprocessableEntity {
								errs <- fmt.Errorf("overflow request: status %d, want 422", resp.StatusCode)
							}
						}
						blob, _ = json.Marshal(invalid)
						resp, err = http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(blob))
						if err != nil {
							errs <- err
						} else {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
							if resp.StatusCode != http.StatusBadRequest {
								errs <- fmt.Errorf("invalid request: status %d, want 400", resp.StatusCode)
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := srv.Metrics()
	if m.Sessions.Evictions == 0 {
		t.Error("session pool never evicted: the test did not exercise eviction churn")
	}
	if m.ResultCache.Evictions == 0 {
		t.Error("result cache never evicted: the test did not exercise capacity misses")
	}
}

// TestSweepStream pins /v1/sweep: the NDJSON lines are exactly the
// per-point /v1/plan bodies, in cross-product order.
func TestSweepStream(t *testing.T) {
	srv := New(Options{Workers: 2, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	shares := []float64{0.25, 0.5, 1}
	req := SweepRequest{
		Base:   PlanRequest{Model: smallModel(), Strategy: "ssdtrain"},
		Shares: shares,
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	lines := bytes.SplitAfter(body, []byte("\n"))
	if n := len(lines); n != len(shares)+1 || len(lines[n-1]) != 0 {
		t.Fatalf("got %d lines, want %d newline-terminated", n-1, len(shares))
	}
	for i, share := range shares {
		point := PlanRequest{Model: smallModel(), Strategy: "ssdtrain", SSDBandwidthShare: share}
		if want := freshBody(t, point); !bytes.Equal(lines[i], want) {
			t.Errorf("sweep line %d (share %v) differs from fresh Plan.Execute", i, share)
		}
	}
}

// TestBackpressure pins the 429 path: with the only worker slot held
// and no wait queue, a cold plan request is refused with Retry-After,
// while a cached config is still served (reads need no slot).
func TestBackpressure(t *testing.T) {
	srv := New(Options{Workers: 1, Queue: -1, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	warm := PlanRequest{Model: smallModel(), Strategy: "no-offload"}
	if resp, body := postJSON(t, ts.URL+"/v1/plan", warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d: %s", resp.StatusCode, body)
	}

	if !srv.limiter.acquire(t.Context()) {
		t.Fatal("could not take the only worker slot")
	}
	defer srv.limiter.release()

	cold := PlanRequest{Model: smallModel(), Strategy: "recompute"}
	resp, body := postJSON(t, ts.URL+"/v1/plan", cold)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated cold request: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/plan", warm); resp.StatusCode != http.StatusOK {
		t.Errorf("cached config refused under saturation: status %d", resp.StatusCode)
	}
	if srv.Metrics().RejectedRequests == 0 {
		t.Error("rejection not counted")
	}
}

// TestCoalescingWindow pins the micro-batcher: same-shape requests with
// distinct cheap knobs fired together land in one window and execute as
// one batch on one arena.
func TestCoalescingWindow(t *testing.T) {
	srv := New(Options{Workers: 4, BatchWindow: 200 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	shares := []float64{0.2, 0.4, 0.6, 0.8}
	var wg sync.WaitGroup
	for _, share := range shares {
		wg.Add(1)
		go func(share float64) {
			defer wg.Done()
			req := PlanRequest{Model: smallModel(), Strategy: "ssdtrain", SSDBandwidthShare: share}
			resp, body := postJSON(t, ts.URL+"/v1/plan", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("share %v: status %d: %s", share, resp.StatusCode, body)
			}
		}(share)
	}
	wg.Wait()

	m := srv.Metrics()
	if m.Batch.MaxBatch < 2 {
		t.Errorf("max batch = %d, want >= 2 (flushes %d, batched %d)",
			m.Batch.MaxBatch, m.Batch.Flushes, m.Batch.BatchedRequests)
	}
	st := srv.sessions.Stats()
	if builds := st.Misses; builds >= int64(len(shares)) {
		t.Errorf("batched requests built %d arenas, want fewer than %d", builds, len(shares))
	}
}

// TestMetricsEndpoint checks the snapshot parses and the counters move.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Options{Workers: 2, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := PlanRequest{Model: smallModel(), Strategy: "ssdtrain"}
	for i := 0; i < 3; i++ { // one miss, two result-cache hits
		if resp, body := postJSON(t, ts.URL+"/v1/plan", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	plan := m.Endpoints["plan"]
	if plan.Count != 3 || plan.Status2xx != 3 {
		t.Errorf("plan endpoint counters: %+v", plan)
	}
	if plan.P50Us <= 0 || plan.P99Us < plan.P50Us {
		t.Errorf("latency quantiles: %+v", plan)
	}
	if m.ResultCache.Hits != 2 || m.ResultCache.Misses == 0 {
		t.Errorf("result cache: %+v", m.ResultCache)
	}
	if m.Sessions.Misses != 1 {
		t.Errorf("sessions: %+v (want exactly one arena build)", m.Sessions)
	}
	// The measurement behind the plan answers must have ridden the
	// steady-state fast path (counters are process-wide, so other tests'
	// runs may inflate them — but never to zero).
	if m.SteadyState.Hits == 0 || m.SteadyState.ExtrapolatedSteps == 0 {
		t.Errorf("steady-state counters empty: %+v", m.SteadyState)
	}

	// The Prometheus rendering carries the same counters.
	promReq, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	promReq.Header.Set("Accept", "text/plain")
	presp, err := http.DefaultClient.Do(promReq)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	prom, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), `ssdtrain_steady_state_runs_total{result="hit"}`) {
		t.Error("Prometheus output misses the steady-state counters")
	}
}

// TestPlanResponseCarriesSteadyState pins the /v1/plan visibility of the
// fast path: the body's steady_state object reports how the measurement
// was produced.
func TestPlanResponseCarriesSteadyState(t *testing.T) {
	srv := New(Options{Workers: 2, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := PlanRequest{Model: smallModel(), Strategy: "ssdtrain", Steps: 20}
	resp, body := postJSON(t, ts.URL+"/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var p PlanResponse
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	ss := p.SteadyState
	if ss.Fallback != "" {
		t.Errorf("plain plan fell back: %q", ss.Fallback)
	}
	if ss.SimulatedSteps == 0 || ss.ExtrapolatedSteps == 0 {
		t.Errorf("steady_state not populated: %+v", ss)
	}
	if ss.SimulatedSteps+ss.ExtrapolatedSteps != 20 {
		t.Errorf("steady_state steps %d+%d, want 20", ss.SimulatedSteps, ss.ExtrapolatedSteps)
	}
}

// TestFleetEndpoint runs a small what-if through /v1/fleet twice and
// checks the second answer is served from cache on the shared profiler.
func TestFleetEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation in -short mode")
	}
	srv := New(Options{Workers: 2, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := FleetRequest{
		Nodes:    1,
		Jobs:     4,
		Seed:     7,
		Policies: []string{"fifo", "sjf"},
		MinSteps: 5,
		MaxSteps: 20,
	}
	resp, body := postJSON(t, ts.URL+"/v1/fleet", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var fr FleetResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Policies) != 2 || fr.Policies[0].Policy != "fifo" || fr.Policies[1].Policy != "sjf" {
		t.Fatalf("policies: %+v", fr.Policies)
	}
	for _, p := range fr.Policies {
		if p.MakespanNs <= 0 || p.MeanSlowdown < 1 || p.TotalWrittenBytes <= 0 {
			t.Errorf("policy %s: implausible result %+v", p.Policy, p)
		}
		if !strings.Contains(p.Summary, "makespan") {
			t.Errorf("policy %s: summary missing: %q", p.Policy, p.Summary)
		}
	}
	runsBefore := srv.profiler.Runs()
	resp2, body2 := postJSON(t, ts.URL+"/v1/fleet", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if !bytes.Equal(body, body2) {
		t.Error("identical fleet requests served different bodies")
	}
	if srv.profiler.Runs() != runsBefore {
		t.Error("cached fleet request re-ran profiling measurements")
	}
	if m := srv.Metrics(); m.FleetCache.Hits == 0 {
		t.Errorf("fleet cache hits = 0: %+v", m.FleetCache)
	}
}

// TestRequestValidation pins the 4xx surface.
func TestRequestValidation(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown field", `{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"strategy":"ssdtrain","turbo":true}`, http.StatusBadRequest},
		{"unknown arch", `{"model":{"arch":"rnn","hidden":2048,"layers":2,"batch":4},"strategy":"ssdtrain"}`, http.StatusBadRequest},
		{"unknown strategy", `{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"strategy":"teleport"}`, http.StatusBadRequest},
		{"bad geometry", `{"model":{"arch":"bert","hidden":2049,"layers":2,"batch":4},"strategy":"ssdtrain"}`, http.StatusBadRequest},
		{"dead knob", `{"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4},"strategy":"ssdtrain","split_ratio":0.5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q not structured", tc.name, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
}

// TestHistogramQuantile pins the log2 estimator's bucketing.
func TestHistogramQuantile(t *testing.T) {
	var h histogram
	for i := 0; i < 99; i++ {
		h.observe(100 * time.Microsecond) // bucket (64, 128] µs
	}
	h.observe(50 * time.Millisecond)
	if q := h.quantile(0.5); q != 128 {
		t.Errorf("p50 = %d µs, want 128", q)
	}
	if q := h.quantile(0.99); q != 128 {
		t.Errorf("p99 = %d µs, want 128", q)
	}
	if q := h.quantile(1); q != 65536 {
		t.Errorf("p100 = %d µs, want 65536 (bucket holding 50ms)", q)
	}
}

// TestSweepPlanNoDeadlock regression-tests a single-worker deadlock: a
// /v1/sweep holds the only worker slot while walking its points, and
// concurrent cold /v1/plan requests for those same configs become
// flight owners waiting for that slot. If a sweep point were to join
// such a flight (as an earlier implementation did), the owner would
// wait for the sweep's slot and the sweep for the owner's result,
// forever. The fix makes slot holders execute directly; this test pins
// that both request kinds complete.
func TestSweepPlanNoDeadlock(t *testing.T) {
	srv := New(Options{Workers: 1, Queue: 64, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	shares := []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := SweepRequest{
				Base:   PlanRequest{Model: smallModel(), Strategy: "ssdtrain"},
				Shares: shares,
			}
			resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("sweep status %d: %s", resp.StatusCode, body)
			}
		}()
		for _, share := range shares {
			wg.Add(1)
			go func(share float64) {
				defer wg.Done()
				req := PlanRequest{Model: smallModel(), Strategy: "ssdtrain", SSDBandwidthShare: share}
				resp, body := postJSON(t, ts.URL+"/v1/plan", req)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("plan share %v: status %d: %s", share, resp.StatusCode, body)
				}
			}(share)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("sweep + concurrent plan requests deadlocked on a single-worker server")
	}
}

// TestHostileKnobsRejected pins the input-hardening surface: negative
// and oversized knobs that once panicked the executor (steps/warmup
// both negative → empty PerStep index panic) or bought unbounded
// simulation time are refused with 400 before any work happens.
func TestHostileKnobsRejected(t *testing.T) {
	srv := New(Options{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	model := `"model":{"arch":"bert","hidden":2048,"layers":2,"batch":4}`
	cases := []struct {
		name string
		body string
	}{
		{"negative steps+warmup (panic regression)", `{` + model + `,"strategy":"ssdtrain","steps":-1,"warmup":-1}`},
		{"negative steps", `{` + model + `,"strategy":"ssdtrain","steps":-1}`},
		{"negative budget", `{` + model + `,"strategy":"ssdtrain","budget_bytes":-1}`},
		{"negative micro batches", `{` + model + `,"strategy":"ssdtrain","micro_batches":-2}`},
		{"oversized steps", `{` + model + `,"strategy":"ssdtrain","steps":100000000}`},
		{"oversized layers", `{"model":{"arch":"bert","hidden":2048,"layers":100000,"batch":4},"strategy":"ssdtrain"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}
	fleetCases := []string{
		`{"gpus":1000000}`,
		`{"steps_max":-1}`,
		`{"dram_gib":-1}`,
		`{"hybrid_frac":2}`,
	}
	for _, body := range fleetCases {
		resp, err := http.Post(ts.URL+"/v1/fleet", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("fleet %s: status %d, want 400 (%s)", body, resp.StatusCode, got)
		}
	}
	// The server must still be alive and correct after the barrage.
	resp, body := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Model: smallModel(), Strategy: "no-offload"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request after hostile barrage: status %d: %s", resp.StatusCode, body)
	}
}

// TestSimulationPanicContained pins the panic boundary: a panic below
// the request-validation layer surfaces as a 422, even when it fires in
// the batcher's timer-goroutine flush (outside net/http's recovery),
// and the process keeps serving. The panic is injected through the same
// recoverBatch seam production uses (runPooled = recoverBatch over
// ExecuteBatch), so the delivery path — flush, flight, handler — is the
// real one end to end.
func TestSimulationPanicContained(t *testing.T) {
	// The executor is swapped before the server starts (goroutine
	// creation is the happens-before edge), never while it serves.
	srv := New(Options{Workers: 2, BatchWindow: 50 * time.Millisecond})
	srv.batcher.exec = func(cfgs []exp.RunConfig) []exp.BatchResult {
		return recoverBatch(cfgs, func([]exp.RunConfig) []exp.BatchResult {
			panic("injected simulation panic")
		})
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bad := PlanRequest{Model: smallModel(), Strategy: "recompute"}
	resp, body := postJSON(t, ts.URL+"/v1/plan", bad)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("panicking simulation: status %d, want 422 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "panicked") {
		t.Errorf("panic not surfaced in error body: %s", body)
	}
	// The panicking server must still answer — its process survived the
	// flush-goroutine panic, and validation-level requests never reached
	// the executor at all.
	if resp, _ := postJSON(t, ts.URL+"/v1/plan", PlanRequest{Model: smallModel(), Strategy: "recompute", SplitRatio: 1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("validation on panicking server: status %d, want 400", resp.StatusCode)
	}
}
