package serve

import "context"

// limiter bounds concurrent simulation work and applies backpressure:
// up to workers callers run at once, up to queue more wait for a slot,
// and everything beyond that is refused immediately so the caller gets a
// fast 429 instead of an unbounded queue. Both bounds are buffered
// channels — entering the wait line is a non-blocking send into queue,
// so admission can never exceed workers+queue.
type limiter struct {
	slots chan struct{}
	queue chan struct{}
}

func newLimiter(workers, queue int) *limiter {
	if workers <= 0 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &limiter{
		slots: make(chan struct{}, workers),
		queue: make(chan struct{}, queue),
	}
}

// acquire claims a worker slot, waiting in the bounded queue when all
// slots are busy. It returns false when the queue is full (answer 429)
// or the request context ended while waiting.
func (l *limiter) acquire(ctx context.Context) bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return false
	}
	defer func() { <-l.queue }()
	select {
	case l.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// release frees a slot claimed by acquire.
func (l *limiter) release() { <-l.slots }

// waiting reports how many callers are currently parked in the wait
// queue — the load signal behind the server's Retry-After derivation.
func (l *limiter) waiting() int { return len(l.queue) }
