package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"ssdtrain/internal/exp"
)

// histBuckets is the latency histogram resolution: bucket i holds
// observations in [2^i, 2^(i+1)) microseconds, so 32 buckets span 1 µs
// to ~71 minutes — wider than any simulation the service runs.
const histBuckets = 32

// histogram is a lock-free log2 latency histogram.
type histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for us > 1 && i < histBuckets-1 {
		us >>= 1
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// quantile returns the upper bound (in µs) of the bucket holding the
// q-th observation — an upward-biased estimate within one power of two,
// plenty for spotting an order-of-magnitude latency regression.
func (h *histogram) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			// Bucket i holds observations in [2^i, 2^(i+1)) µs.
			return int64(1) << (i + 1)
		}
	}
	return int64(1) << histBuckets
}

// endpointStats accumulates one endpoint's request counters and latency.
type endpointStats struct {
	count     atomic.Int64
	status2xx atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64
	hist      histogram
}

func (e *endpointStats) observe(status int, d time.Duration) {
	e.count.Add(1)
	switch {
	case status >= 500:
		e.status5xx.Add(1)
	case status >= 400:
		e.status4xx.Add(1)
	default:
		e.status2xx.Add(1)
	}
	e.hist.observe(d)
}

// stats is the server's metrics registry.
type stats struct {
	start     time.Time
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	// coalesced counts requests that shared another caller's in-flight
	// simulation (singleflight dedup).
	coalesced atomic.Int64
	// rejected counts 429 backpressure responses (saturation: slots busy
	// and the wait queue full).
	rejected atomic.Int64
	// rejectedDeadline counts 503 responses whose request deadline
	// expired while queued or simulating — brownout, not backpressure.
	rejectedDeadline atomic.Int64
	// staleServed counts responses served from the rendered-body cache
	// past the staleness threshold and labeled as such.
	staleServed atomic.Int64
	// peerFilled/peerFillMisses count local cache misses answered (or
	// not) from a peer replica's cache; cachefillHits/cachefillMisses
	// count the mirror image — /v1/cachefill lookups this replica
	// answered for its peers.
	peerFilled      atomic.Int64
	peerFillMisses  atomic.Int64
	cachefillHits   atomic.Int64
	cachefillMisses atomic.Int64
	// flushes/batched/maxBatch describe the coalescing windows: window
	// flushes, requests that went through them, and the largest batch.
	flushes  atomic.Int64
	batched  atomic.Int64
	maxBatch atomic.Int64
}

func newStats(start time.Time, endpoints ...string) *stats {
	s := &stats{start: start, endpoints: make(map[string]*endpointStats, len(endpoints))}
	for _, name := range endpoints {
		s.endpoints[name] = &endpointStats{}
	}
	return s
}

// endpoint returns the named endpoint's registry entry; unknown names
// get one lazily so instrumenting a new route cannot panic the server.
func (s *stats) endpoint(name string) *endpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.endpoints[name]
	if !ok {
		e = &endpointStats{}
		s.endpoints[name] = e
	}
	return e
}

func (s *stats) recordBatch(n int) {
	s.flushes.Add(1)
	s.batched.Add(int64(n))
	for {
		cur := s.maxBatch.Load()
		if int64(n) <= cur || s.maxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// EndpointMetrics is one endpoint's snapshot in a /metrics response.
type EndpointMetrics struct {
	Count     int64 `json:"count"`
	Status2xx int64 `json:"status_2xx"`
	Status4xx int64 `json:"status_4xx"`
	Status5xx int64 `json:"status_5xx"`
	MeanUs    int64 `json:"mean_us"`
	P50Us     int64 `json:"p50_us"`
	P90Us     int64 `json:"p90_us"`
	P99Us     int64 `json:"p99_us"`
}

// CacheMetrics is one cache's snapshot in a /metrics response.
type CacheMetrics struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Len       int     `json:"len"`
	HitRate   float64 `json:"hit_rate"`
}

func cacheMetrics(hits, misses, evictions int64, length int) CacheMetrics {
	m := CacheMetrics{Hits: hits, Misses: misses, Evictions: evictions, Len: length}
	if total := hits + misses; total > 0 {
		m.HitRate = float64(hits) / float64(total)
	}
	return m
}

// BatchMetrics describes the request coalescing windows.
type BatchMetrics struct {
	Flushes         int64 `json:"flushes"`
	BatchedRequests int64 `json:"batched_requests"`
	MaxBatch        int64 `json:"max_batch"`
}

// EngineMetrics snapshots the process-wide simulation-engine counters
// published by every measurement (sim.GlobalStats): total event traffic
// and the event-pool hit rate that keeps repeated Execute allocation-free.
type EngineMetrics struct {
	EventsProcessed int64   `json:"events_processed"`
	EventsScheduled int64   `json:"events_scheduled"`
	PoolHits        int64   `json:"pool_hits"`
	PoolMisses      int64   `json:"pool_misses"`
	PoolHitRate     float64 `json:"pool_hit_rate"`
}

// SpanMetrics snapshots the process-wide flight-recorder totals
// (spans.Totals): traced runs snapshotted, spans delivered, and spans
// lost to ring overwrites.
type SpanMetrics struct {
	Snapshots int64 `json:"snapshots"`
	Spans     int64 `json:"spans"`
	Dropped   int64 `json:"dropped"`
}

// PeerFillMetrics describes the peer cache-fill traffic of a clustered
// replica, both directions: Filled/Misses are this replica's own cold
// misses it tried to answer from peers, ServedHits/ServedMisses are the
// /v1/cachefill lookups it answered for them.
type PeerFillMetrics struct {
	Filled       int64 `json:"filled"`
	Misses       int64 `json:"misses"`
	ServedHits   int64 `json:"served_hits"`
	ServedMisses int64 `json:"served_misses"`
}

// ReplicaHealthMetrics is one replica's registry snapshot in a router's
// /metrics response.
type ReplicaHealthMetrics struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Probes counts active health checks sent; Failures counts failed
	// probes and failed forwards (the passive signal).
	Probes       int64 `json:"probes"`
	Failures     int64 `json:"failures"`
	Ejections    int64 `json:"ejections"`
	Readmissions int64 `json:"readmissions"`
}

// RouterMetrics is the cluster router's /metrics snapshot: the retry,
// hedging, stale-serve and replica-health counters of the consistent-hash
// front. It lives here (not in internal/cluster) so the Prometheus
// rendering shares one file with the replica metrics — the operator's
// view of backpressure vs brownout spans both layers.
type RouterMetrics struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Endpoints     map[string]EndpointMetrics `json:"endpoints"`
	// Requests is every routed request; Attempts counts the upstream
	// tries made for them (retries and hedges included).
	Requests int64 `json:"requests"`
	Attempts int64 `json:"attempts"`
	// Retries are sequential re-tries after a failed attempt; Hedges are
	// speculative parallel attempts fired at the next ring successor when
	// the primary ran past the hedge delay, and HedgeWins counts hedges
	// whose answer arrived first.
	Retries   int64 `json:"retries"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// RetryBudgetExhausted counts retries/hedges NOT fired because the
	// retry budget was empty — the brownout-amplification guard working.
	RetryBudgetExhausted int64 `json:"retry_budget_exhausted"`
	// StaleServed counts requests answered from the router's last-good
	// body cache (labeled with the staleness headers) because no replica
	// could produce a fresh render; StaleMisses counts total failures
	// with no last-good body to fall back to (the only path to a 5xx).
	StaleServed int64 `json:"stale_served"`
	StaleMisses int64 `json:"stale_misses"`
	// RingReplicas/RingRebuilds describe the consistent-hash ring: how
	// many healthy replicas it currently spans and how many times health
	// transitions rebuilt it.
	RingReplicas int                    `json:"ring_replicas"`
	RingRebuilds int64                  `json:"ring_rebuilds"`
	Replicas     []ReplicaHealthMetrics `json:"replicas"`
}

// FleetProfilerMetrics snapshots the shared fleet profiler.
type FleetProfilerMetrics struct {
	Runs        int64                `json:"runs"`
	Coalesced   int64                `json:"coalesced"`
	Cached      int                  `json:"cached"`
	CacheHits   int64                `json:"cache_hits"`
	CacheMisses int64                `json:"cache_misses"`
	Pool        exp.SessionPoolStats `json:"pool"`
}

// Metrics is the /metrics response: every cache, pool, dedup and latency
// counter the serving layers expose, so "the arenas are shared and the
// simulations are deduplicated" is observable per process rather than
// asserted in documentation.
type Metrics struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Endpoints     map[string]EndpointMetrics `json:"endpoints"`
	// CoalescedRequests counts requests answered by another request's
	// in-flight simulation (singleflight dedup).
	CoalescedRequests int64 `json:"coalesced_requests"`
	// RejectedRequests counts 429 backpressure responses (saturation:
	// worker slots busy and the wait queue full).
	RejectedRequests int64 `json:"rejected_requests"`
	// RejectedDeadline counts 503 deadline-expiry responses — the
	// server running out of time budget (brownout), kept separate from
	// saturation so operators can tell the two apart.
	RejectedDeadline int64 `json:"rejected_deadline"`
	// StaleServed counts responses served from the rendered-body cache
	// past Options.StaleAfter and labeled with the staleness headers.
	StaleServed int64 `json:"stale_served"`
	// PeerFill is the replica's peer cache-fill traffic (zero-valued
	// when the server runs without peers).
	PeerFill PeerFillMetrics `json:"peer_fill"`
	Batch    BatchMetrics    `json:"batch"`
	// PlanCache is the process-wide compiled-plan cache.
	PlanCache CacheMetrics `json:"plan_cache"`
	// ResultCache holds rendered /v1/plan bodies.
	ResultCache CacheMetrics `json:"result_cache"`
	// FleetCache holds rendered /v1/fleet bodies.
	FleetCache CacheMetrics `json:"fleet_cache"`
	// Sessions is the server's execution-arena pool.
	Sessions exp.SessionPoolStats `json:"sessions"`
	// FleetProfiler is the shared cross-request fleet profiler.
	FleetProfiler FleetProfilerMetrics `json:"fleet_profiler"`
	// Engine aggregates event-pool counters across every arena's engine.
	Engine EngineMetrics `json:"engine"`
	// Spans aggregates flight-recorder activity across every arena.
	Spans SpanMetrics `json:"spans"`
	// SteadyState aggregates steady-state fast-path outcomes across every
	// measurement: converged runs, steps synthesized instead of
	// simulated, and full-simulation fallbacks by reason.
	SteadyState exp.SteadyStats `json:"steady_state"`
}

func (e *endpointStats) metrics() EndpointMetrics {
	m := EndpointMetrics{
		Count:     e.count.Load(),
		Status2xx: e.status2xx.Load(),
		Status4xx: e.status4xx.Load(),
		Status5xx: e.status5xx.Load(),
		P50Us:     e.hist.quantile(0.50),
		P90Us:     e.hist.quantile(0.90),
		P99Us:     e.hist.quantile(0.99),
	}
	if n := e.hist.count.Load(); n > 0 {
		m.MeanUs = e.hist.sumNs.Load() / n / 1e3
	}
	return m
}
