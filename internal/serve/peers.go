package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"ssdtrain/internal/exp"
)

// Peer cache-fill: when a replica joins (or rejoins) a sharded cluster,
// its rendered-body cache is cold for every shard the ring hands it, but
// the surviving replicas usually still hold the bodies — they rendered
// them before the ring moved the shard, or they were the shard's previous
// owner. A cold miss therefore first asks the peers' /v1/cachefill
// endpoints for an already-rendered body and only simulates when nobody
// has one. The endpoint is lookup-only by design: it answers from the
// cache via Peek (no LRU promotion, no hit/miss distortion) and never
// simulates, so two replicas cold for the same key cannot ping-pong the
// question between each other — one of them pays the simulation and the
// other fills from it on a later miss.

// cachefillRequest is the body of POST /v1/cachefill: the normalized run
// config whose rendered body the asking replica wants. The config rides
// the wire as plain JSON of exp.RunConfig — every field is an exported
// value type, so the round trip is exact and the receiver re-normalizes
// to the same cache key.
type cachefillRequest struct {
	Config exp.RunConfig `json:"config"`
}

// errCachefillMiss is the 404 body for a cache-fill lookup this replica
// cannot answer; the asker treats it as "simulate it yourself".
var errCachefillMiss = errors.New("serve: not cached here")

// handleCachefill answers a peer's cache lookup: the rendered body plus
// its original render stamp (X-SSDTrain-Rendered-At, unix nanoseconds)
// on a hit, 404 on a miss.
func (s *Server) handleCachefill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	var req cachefillRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := exp.Normalize(req.Config)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body, at, ok := s.results.Peek(cfg)
	if !ok {
		s.stats.cachefillMisses.Add(1)
		writeError(w, http.StatusNotFound, errCachefillMiss)
		return
	}
	s.stats.cachefillHits.Add(1)
	w.Header().Set(HeaderRenderedAt, strconv.FormatInt(at.UnixNano(), 10))
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// peerSet fans a replica's cold misses out to its peers' /v1/cachefill
// endpoints.
type peerSet struct {
	urls    []string
	client  *http.Client
	timeout time.Duration
	stats   *stats
}

func newPeerSet(urls []string, client *http.Client, timeout time.Duration, st *stats) *peerSet {
	if client == nil {
		client = &http.Client{}
	}
	return &peerSet{urls: urls, client: client, timeout: timeout, stats: st}
}

// peerHit is one peer's positive cache-fill answer.
type peerHit struct {
	body []byte
	at   time.Time
}

// fill asks every peer for cfg's rendered body in parallel and returns
// the first hit, bounded end to end by the fill timeout. A miss (every
// peer answered 404, failed, or the timeout expired) reports false and
// the caller simulates; fill itself never simulates and holds no worker
// slot, so it adds at most the timeout to a cold miss and nothing to
// anything else.
func (p *peerSet) fill(ctx context.Context, cfg exp.RunConfig) ([]byte, time.Time, bool) {
	blob, err := json.Marshal(cachefillRequest{Config: cfg})
	if err != nil {
		p.stats.peerFillMisses.Add(1)
		return nil, time.Time{}, false
	}
	ctx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	answers := make(chan *peerHit, len(p.urls))
	for _, url := range p.urls {
		go func(url string) {
			answers <- p.ask(ctx, url, blob)
		}(url)
	}
	for range p.urls {
		select {
		case h := <-answers:
			if h != nil {
				p.stats.peerFilled.Add(1)
				return h.body, h.at, true
			}
		case <-ctx.Done():
			p.stats.peerFillMisses.Add(1)
			return nil, time.Time{}, false
		}
	}
	p.stats.peerFillMisses.Add(1)
	return nil, time.Time{}, false
}

// ask performs one peer's cache-fill lookup, returning nil on any miss or
// failure — a peer that is down or cold is simply not a source.
func (p *peerSet) ask(ctx context.Context, base string, blob []byte) *peerHit {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cachefill", bytes.NewReader(blob))
	if err != nil {
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxCachefillBody))
	if err != nil || len(body) == 0 {
		return nil
	}
	at := time.Now()
	if ns, err := strconv.ParseInt(resp.Header.Get(HeaderRenderedAt), 10, 64); err == nil {
		// Keep the original render stamp so staleness is measured from
		// the simulation, not from this copy.
		at = time.Unix(0, ns)
	}
	return &peerHit{body: body, at: at}
}

// maxCachefillBody bounds one peer answer; rendered plan bodies are a
// few KB.
const maxCachefillBody = 1 << 20
