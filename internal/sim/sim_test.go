package sim

import (
	"testing"
	"testing/quick"
	"time"

	"ssdtrain/internal/units"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	eng.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	eng.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	// Same-time events run in insertion order.
	eng.Schedule(2*time.Millisecond, func() { order = append(order, 20) })
	end := eng.Run()
	if end != 3*time.Millisecond {
		t.Errorf("end = %v", end)
	}
	want := []int{1, 2, 20, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineCancelAndAfter(t *testing.T) {
	eng := NewEngine()
	ran := false
	ev := eng.After(time.Millisecond, func() { ran = true })
	ev.Cancel()
	eng.After(2*time.Millisecond, func() {})
	eng.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if eng.Pending() != 0 {
		t.Errorf("pending = %d", eng.Pending())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.Schedule(0, func() {})
	})
	eng.Run()
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	var ran []int
	eng.Schedule(1*time.Millisecond, func() { ran = append(ran, 1) })
	eng.Schedule(5*time.Millisecond, func() { ran = append(ran, 5) })
	now := eng.RunUntil(2 * time.Millisecond)
	if now != 2*time.Millisecond || len(ran) != 1 {
		t.Fatalf("RunUntil: now=%v ran=%v", now, ran)
	}
	eng.Run()
	if len(ran) != 2 {
		t.Fatalf("remaining event did not run: %v", ran)
	}
}

func TestEngineEventLimit(t *testing.T) {
	eng := NewEngine()
	eng.SetEventLimit(3)
	var reschedule func()
	reschedule = func() { eng.After(time.Microsecond, reschedule) }
	eng.After(time.Microsecond, reschedule)
	defer func() {
		if recover() == nil {
			t.Error("event limit did not panic")
		}
	}()
	eng.Run()
}

func TestServerFIFO(t *testing.T) {
	eng := NewEngine()
	s := NewServer(eng, "srv")
	f1 := s.Submit(0, 10*time.Millisecond, nil)
	f2 := s.Submit(0, 5*time.Millisecond, nil)
	if f1 != 10*time.Millisecond {
		t.Errorf("f1 = %v", f1)
	}
	// Second job queues behind the first even though it was ready at 0.
	if f2 != 15*time.Millisecond {
		t.Errorf("f2 = %v", f2)
	}
	// A job with a later ready time starts at its ready time.
	f3 := s.Submit(20*time.Millisecond, time.Millisecond, nil)
	if f3 != 21*time.Millisecond {
		t.Errorf("f3 = %v", f3)
	}
	if s.Jobs() != 3 {
		t.Errorf("jobs = %d", s.Jobs())
	}
	if s.BusyTime() != 16*time.Millisecond {
		t.Errorf("busy = %v", s.BusyTime())
	}
	if u := s.Utilization(32 * time.Millisecond); u != 0.5 {
		t.Errorf("utilization = %v", u)
	}
}

func TestServerDoneCallback(t *testing.T) {
	eng := NewEngine()
	s := NewServer(eng, "srv")
	var at time.Duration
	s.Submit(0, 7*time.Millisecond, func() { at = eng.Now() })
	eng.Run()
	if at != 7*time.Millisecond {
		t.Errorf("done at %v", at)
	}
}

func TestPipeBottleneck(t *testing.T) {
	eng := NewEngine()
	p := NewPipe(eng, "pipe", time.Millisecond, 10*units.GBps, 5*units.GBps, 20*units.GBps)
	if p.Rate() != 5*units.GBps {
		t.Errorf("bottleneck = %v", p.Rate())
	}
	fin := p.Transfer(0, 5*units.GB, nil)
	if fin != time.Second+time.Millisecond {
		t.Errorf("finish = %v", fin)
	}
}

// Property: a FIFO server never overlaps jobs and never reorders them.
func TestServerNoOverlapProperty(t *testing.T) {
	f := func(durs []uint16, readies []uint16) bool {
		eng := NewEngine()
		s := NewServer(eng, "p")
		var lastFinish time.Duration
		n := len(durs)
		if len(readies) < n {
			n = len(readies)
		}
		for i := 0; i < n; i++ {
			d := time.Duration(durs[i]) * time.Microsecond
			r := time.Duration(readies[i]) * time.Microsecond
			fin := s.Submit(r, d, nil)
			start := fin - d
			if start < lastFinish || start < r {
				return false
			}
			lastFinish = fin
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: engine executes any event set in non-decreasing time order.
func TestEngineTimeOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		eng := NewEngine()
		var seen []time.Duration
		for _, v := range times {
			at := time.Duration(v) * time.Microsecond
			eng.Schedule(at, func() { seen = append(seen, eng.Now()) })
		}
		eng.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
