package sim

import (
	"testing"
	"time"
)

// TestEngineResetReplaysIdentically asserts a reset engine reproduces the
// exact (time, seq) execution order of a fresh engine while serving the
// replay from the recycled event pool.
func TestEngineResetReplaysIdentically(t *testing.T) {
	workload := func(eng *Engine) []time.Duration {
		var fired []time.Duration
		for i := 5; i > 0; i-- {
			d := time.Duration(i) * time.Microsecond
			eng.After(d, func() { fired = append(fired, eng.Now()) })
		}
		// Two events at one timestamp: insertion order must hold.
		eng.After(3*time.Microsecond, func() { fired = append(fired, eng.Now()) })
		eng.Run()
		return fired
	}

	eng := NewEngine()
	first := workload(eng)
	if eng.Now() == 0 {
		t.Fatal("workload did not advance time")
	}
	misses := eng.Stats().PoolMisses

	eng.Reset()
	if eng.Now() != 0 || eng.QueueLen() != 0 {
		t.Fatalf("reset left now=%v queue=%d", eng.Now(), eng.QueueLen())
	}
	second := workload(eng)
	if len(first) != len(second) {
		t.Fatalf("replay fired %d events, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at %d: %v != %v", i, second[i], first[i])
		}
	}
	if got := eng.Stats().PoolMisses; got != misses {
		t.Errorf("replay allocated %d fresh events, want 0 (pool misses %d -> %d)", got-misses, misses, got)
	}
}

// TestEngineResetRecyclesPending asserts events still queued at Reset are
// discarded without running and their objects return to the pool.
func TestEngineResetRecyclesPending(t *testing.T) {
	eng := NewEngine()
	ran := false
	eng.After(time.Millisecond, func() { ran = true })
	eng.Reset()
	eng.Run()
	if ran {
		t.Fatal("cancelled event ran after Reset")
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after reset", eng.Pending())
	}
	eng.After(time.Microsecond, func() {})
	if eng.Stats().PoolHits == 0 {
		t.Error("recycled pending event not reused from pool")
	}
}

// TestEngineResetRebasesEventLimit asserts the runaway guard budgets
// each run separately on a recycled engine instead of charging a
// lifetime total.
func TestEngineResetRebasesEventLimit(t *testing.T) {
	eng := NewEngine()
	eng.SetEventLimit(4)
	run := func() {
		for i := 0; i < 3; i++ {
			eng.After(time.Microsecond, func() {})
		}
		eng.Run()
	}
	run()
	for i := 0; i < 3; i++ {
		eng.Reset()
		run() // would exceed a cumulative limit of 4 by the second run
	}
	if eng.Processed() != 12 {
		t.Fatalf("processed %d events, want 12", eng.Processed())
	}
}

// TestServerReset asserts a reset server accepts jobs like a fresh one.
func TestServerReset(t *testing.T) {
	eng := NewEngine()
	s := NewServer(eng, "q")
	s.Submit(0, 5*time.Microsecond, nil)
	s.Submit(0, 5*time.Microsecond, nil)
	if s.BusyUntil() != 10*time.Microsecond || s.Jobs() != 2 {
		t.Fatalf("unexpected pre-reset state: busyUntil=%v jobs=%d", s.BusyUntil(), s.Jobs())
	}
	s.Reset()
	if s.BusyUntil() != 0 || s.BusyTime() != 0 || s.Jobs() != 0 {
		t.Fatalf("reset left busyUntil=%v busy=%v jobs=%d", s.BusyUntil(), s.BusyTime(), s.Jobs())
	}
	if finish := s.Submit(0, 3*time.Microsecond, nil); finish != 3*time.Microsecond {
		t.Fatalf("post-reset submit finished at %v, want 3µs", finish)
	}
}
