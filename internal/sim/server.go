package sim

import (
	"time"

	"ssdtrain/internal/units"
)

// Server is a serial FIFO resource: jobs are served one at a time in
// submission order. GPU streams, DMA engines, NVMe submission queues and
// the host launch thread are all Servers. A job's start time is
// max(submit time, previous job's finish, the job's own ready time).
type Server struct {
	eng  *Engine
	name string
	// busyUntil is when the most recently accepted job finishes.
	busyUntil time.Duration
	// busy accumulates total service time for utilization reporting.
	busy time.Duration
	jobs int
}

// NewServer creates a FIFO server on the engine.
func NewServer(eng *Engine, name string) *Server {
	return &Server{eng: eng, name: name}
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Reset clears the server's backlog and accounting for reuse by a new
// simulation on the same (reset) engine: the queue is empty and no busy
// time has accrued, exactly like a freshly constructed server.
func (s *Server) Reset() {
	s.busyUntil = 0
	s.busy = 0
	s.jobs = 0
}

// Submit enqueues a job of the given duration that additionally cannot
// start before ready (use the engine's current time for "now"). done, if
// non-nil, runs at the job's finish time. Submit returns the finish time.
func (s *Server) Submit(ready, dur time.Duration, done func()) time.Duration {
	if dur < 0 {
		panic("sim: negative job duration")
	}
	start := s.eng.Now()
	if ready > start {
		start = ready
	}
	if s.busyUntil > start {
		start = s.busyUntil
	}
	finish := start + dur
	s.busyUntil = finish
	s.busy += dur
	s.jobs++
	if done != nil {
		s.eng.Schedule(finish, done)
	}
	return finish
}

// StartFor returns when a job submitted now with the given ready time
// would start, without submitting it: max(now, ready, backlog drain).
// Callers whose job duration depends on conditions at the start time
// (fault-degraded bandwidth) evaluate them here before Submit.
func (s *Server) StartFor(ready time.Duration) time.Duration {
	start := s.eng.Now()
	if ready > start {
		start = ready
	}
	if s.busyUntil > start {
		start = s.busyUntil
	}
	return start
}

// BusyUntil returns when the server's current backlog drains.
func (s *Server) BusyUntil() time.Duration { return s.busyUntil }

// Utilization returns the fraction of time the server was busy up to the
// given horizon.
func (s *Server) Utilization(horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.busy) / float64(horizon)
}

// Jobs returns how many jobs the server has accepted.
func (s *Server) Jobs() int { return s.jobs }

// BusyTime returns the cumulative service time of accepted jobs.
func (s *Server) BusyTime() time.Duration { return s.busy }

// Pipe is a chain of FIFO servers a transfer must traverse in order, such
// as PCIe link → SSD write queue. The transfer occupies each stage for
// size/bandwidth of that stage; stages overlap as in a pipeline, so the
// end-to-end finish time is governed by the slowest stage plus the
// latencies of the others. For the bulk megabyte-scale transfers SSDTrain
// issues, modelling the pipe as a single FIFO stage at the bottleneck
// bandwidth is accurate to within the per-stage latency, so Pipe tracks
// the bottleneck and adds fixed per-stage latencies.
type Pipe struct {
	server  *Server
	rate    units.Bandwidth
	latency time.Duration
}

// NewPipe builds a transfer pipe served at the bottleneck bandwidth of the
// listed stage rates, with the summed fixed latency applied to each
// transfer.
func NewPipe(eng *Engine, name string, latency time.Duration, rates ...units.Bandwidth) *Pipe {
	if len(rates) == 0 {
		panic("sim: pipe needs at least one stage rate")
	}
	bottleneck := rates[0]
	for _, r := range rates[1:] {
		if r < bottleneck {
			bottleneck = r
		}
	}
	return &Pipe{
		server:  NewServer(eng, name),
		rate:    bottleneck,
		latency: latency,
	}
}

// Rate returns the pipe's bottleneck bandwidth.
func (p *Pipe) Rate() units.Bandwidth { return p.rate }

// Transfer submits a transfer of n bytes that cannot start before ready.
// done runs at completion. It returns the finish time.
func (p *Pipe) Transfer(ready time.Duration, n units.Bytes, done func()) time.Duration {
	return p.server.Submit(ready, p.latency+p.rate.TimeFor(n), done)
}

// BusyUntil returns when the pipe's backlog drains.
func (p *Pipe) BusyUntil() time.Duration { return p.server.BusyUntil() }

// Utilization reports the pipe's busy fraction up to the horizon.
func (p *Pipe) Utilization(horizon time.Duration) float64 {
	return p.server.Utilization(horizon)
}

// Jobs returns the number of transfers accepted.
func (p *Pipe) Jobs() int { return p.server.Jobs() }

// BusyTime returns cumulative transfer service time.
func (p *Pipe) BusyTime() time.Duration { return p.server.BusyTime() }
