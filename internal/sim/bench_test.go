package sim_test

import (
	"testing"
	"time"

	"ssdtrain/internal/hotbench"
	"ssdtrain/internal/sim"
)

// The schedule and steady-state workloads live in internal/hotbench so
// these benchmarks and cmd/bench (which records BENCH_hotpath.json)
// measure exactly the same loops.

// BenchmarkEngineSchedule measures the schedule-then-drain cycle with a
// bounded queue: the mixed push/pop pattern substrate models produce.
// Seed (container/heap, no pool): 412.8 ns/op, 48 B/op, 1 allocs/op.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	hotbench.EngineSchedule(b.N)
}

// BenchmarkEngineSteadyState measures the self-rescheduling timer pattern
// — 64 concurrent timers, allocation-free once the pool is warm.
// Seed (container/heap, no pool): 118.2 ns/op, 48 B/op, 1 allocs/op.
func BenchmarkEngineSteadyState(b *testing.B) {
	b.ReportAllocs()
	hotbench.EngineSteadyState(b.N)
}

// BenchmarkEngineDeepQueue measures pop cost with a large standing queue,
// where heap arity dominates: every pop sifts through log_k(n) levels.
func BenchmarkEngineDeepQueue(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	const depth = 1 << 14
	at := time.Duration(0)
	fn := func() {}
	for i := 0; i < depth; i++ {
		at += time.Microsecond
		eng.Schedule(at, fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at += time.Microsecond
		eng.Schedule(at, fn)
		eng.RunUntil(eng.Now() + time.Microsecond)
	}
	b.StopTimer()
	eng.Run()
}

// BenchmarkServerSubmit measures the FIFO server fast path used by every
// kernel launch and DMA transfer.
func BenchmarkServerSubmit(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	srv := sim.NewServer(eng, "bench")
	done := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Submit(eng.Now(), time.Microsecond, done)
		if eng.QueueLen() > 1024 {
			eng.Run()
		}
	}
	b.StopTimer()
	eng.Run()
}
