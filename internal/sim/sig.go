package sim

import "time"

// Sig is an order-sensitive fingerprint of simulation state, used by the
// steady-state fast path to decide that two consecutive training steps
// produced the same event pattern. It folds 64-bit words through a
// splitmix64-style mix, so it is cheap (a few multiplies per word),
// allocation-free, and — unlike a plain sum — sensitive to ordering, which
// matters because per-resource deltas are folded in a fixed traversal
// order.
//
// A Sig is a value: the zero Sig is ready to use, and equality of two Sigs
// is plain ==. It is a heuristic hash, not a cryptographic one; the fast
// path additionally relies on the simulator being deterministic, so a
// collision would require two *different* deterministic states to hash
// equal AND to be reachable from one another — the property tests pin the
// end-to-end byte-identity that actually matters.
type Sig struct {
	h uint64
}

// splitmix64 is the finalizer from the SplitMix64 generator — a fast
// 64-bit permutation with good avalanche behavior.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fold mixes one 64-bit word into the signature.
func (s *Sig) Fold(x uint64) {
	s.h = splitmix64(s.h ^ x)
}

// FoldInt mixes a signed integer (two's-complement bits).
func (s *Sig) FoldInt(x int64) { s.Fold(uint64(x)) }

// FoldDur mixes a duration (its nanosecond count).
func (s *Sig) FoldDur(d time.Duration) { s.Fold(uint64(d)) }

// FoldString mixes a string, length-prefixed so concatenations cannot
// alias.
func (s *Sig) FoldString(str string) {
	s.Fold(uint64(len(str)))
	var w uint64
	n := 0
	for i := 0; i < len(str); i++ {
		w = w<<8 | uint64(str[i])
		n++
		if n == 8 {
			s.Fold(w)
			w, n = 0, 0
		}
	}
	if n > 0 {
		s.Fold(w)
	}
}

// Sum returns the current hash value.
func (s *Sig) Sum() uint64 { return s.h }
