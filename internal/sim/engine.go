// Package sim provides the deterministic discrete-event simulation kernel
// that every hardware substrate (GPU streams, DMA engines, PCIe links,
// NVMe queues) is built on. Time is virtual: events carry a timestamp and
// the engine executes them in (time, insertion-order) order, so a given
// workload always produces exactly the same timeline. Determinism is what
// turns the paper's wall-clock experiments into reproducible unit tests.
//
// The event queue is a concrete 4-ary min-heap specialized on *Event —
// no interface boxing, shallower sift-down paths than a binary heap — and
// executed events are recycled through a free list, so steady-state
// stepping allocates nothing once the pool is warm.
package sim

import (
	"fmt"
	"sync/atomic"
	"time"

	"ssdtrain/internal/spans"
)

// Event is a callback scheduled to run at a virtual time. Events are
// pooled: once an event has executed (or been discarded after a cancel)
// the engine reuses its allocation for a later Schedule. External code
// therefore never holds a bare *Event — Schedule returns a Handle whose
// generation check makes use-after-fire cancels safe no-ops.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	dead bool
	// gen is bumped every time the event object is recycled; Handles
	// remember the generation they were issued for.
	gen uint32
}

// Handle refers to a scheduled event. The zero Handle is valid and inert.
type Handle struct {
	ev  *Event
	gen uint32
	at  time.Duration
}

// At returns the virtual time the event was scheduled for.
func (h Handle) At() time.Duration { return h.at }

// Cancel prevents a pending event from running. Cancelling an event that
// already ran (or a zero Handle) is a no-op: the generation check keeps a
// stale handle from touching a recycled event object.
func (h Handle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.dead = true
	}
}

// Pending reports whether the event has neither run nor been cancelled.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.dead
}

// Stats is a snapshot of engine counters, exposed so benchmarks and the
// experiment harness can verify the hot path stays allocation-free.
type Stats struct {
	// Processed counts executed events.
	Processed uint64
	// Scheduled counts Schedule/After calls.
	Scheduled uint64
	// PoolHits/PoolMisses split Scheduled into recycled and freshly
	// allocated events; in steady state hits dominate.
	PoolHits   uint64
	PoolMisses uint64
}

// PoolHitRate returns the fraction of schedules served from the free list.
func (s Stats) PoolHitRate() float64 {
	if s.Scheduled == 0 {
		return 0
	}
	return float64(s.PoolHits) / float64(s.Scheduled)
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   []*Event // 4-ary min-heap ordered by (at, seq)
	free    []*Event // recycled event objects
	running bool
	stats   Stats
	// limit aborts Run after this many events (0 = unlimited); it guards
	// against accidental event storms in misconfigured experiments. The
	// limit is per run on a recycled engine: limitBase snapshots the
	// cumulative Processed counter at the last Reset.
	limit     uint64
	limitBase uint64
	// rec is the flight recorder the substrates built on this engine emit
	// spans to. The engine itself is the carrier, not an emitter: it is
	// the one object every substrate already holds at construction, so
	// threading the recorder through it reaches them all. Reset leaves the
	// recorder alone — its lifecycle (enable, rewind, snapshot) belongs to
	// the measurement harness, and a recorder that survives arena resets
	// is what makes reused sessions trace identically to fresh ones.
	rec *spans.Recorder
	// published snapshots the stats folded into the package-wide totals by
	// the last PublishStats call.
	published Stats
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Reset rewinds the engine to virtual time zero for reuse by a new
// simulation on the same arena: pending events are recycled into the free
// list (their callbacks never run) and the sequence counter restarts, so
// a replayed workload schedules with identical (time, seq) ordering. The
// event pool and cumulative Stats survive — recycling warm pool capacity
// across runs is the point of resetting instead of reallocating.
func (e *Engine) Reset() {
	if e.running {
		panic("sim: Reset during Run")
	}
	for _, ev := range e.queue {
		e.recycle(ev)
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	// The event limit guards one run; rebase it so a recycled engine gets
	// the same headroom every run instead of exhausting a lifetime budget.
	e.limitBase = e.stats.Processed
}

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.stats.Processed }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetRecorder installs the flight recorder substrates constructed on this
// engine will emit to. Install before building substrates: they fetch the
// recorder (and register their tracks) at construction time.
func (e *Engine) SetRecorder(r *spans.Recorder) { e.rec = r }

// Recorder returns the installed flight recorder (nil when tracing was
// never wired; a nil recorder accepts and discards everything).
func (e *Engine) Recorder() *spans.Recorder { return e.rec }

// global accumulates counters published from individual engines, so an
// observer (the serve /metrics endpoint) can report fleet-wide event-pool
// behaviour without holding references to per-arena engines.
var global struct {
	processed, scheduled, poolHits, poolMisses atomic.Uint64
}

// PublishStats folds the engine's counter growth since the last publish
// into the package-wide totals returned by GlobalStats. The harness calls
// it once per measurement — off the event hot path.
func (e *Engine) PublishStats() {
	s := e.stats
	global.processed.Add(s.Processed - e.published.Processed)
	global.scheduled.Add(s.Scheduled - e.published.Scheduled)
	global.poolHits.Add(s.PoolHits - e.published.PoolHits)
	global.poolMisses.Add(s.PoolMisses - e.published.PoolMisses)
	e.published = s
}

// GlobalStats returns the process-wide totals of all published engine
// counters.
func GlobalStats() Stats {
	return Stats{
		Processed:  global.processed.Load(),
		Scheduled:  global.scheduled.Load(),
		PoolHits:   global.poolHits.Load(),
		PoolMisses: global.poolMisses.Load(),
	}
}

// SetEventLimit sets the maximum number of events Run will process before
// panicking. Zero disables the limit.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past panics: the engine cannot rewind, and silently clamping would
// hide causality bugs in substrate models.
func (e *Engine) Schedule(at time.Duration, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	e.stats.Scheduled++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.stats.PoolHits++
		ev.at, ev.seq, ev.fn, ev.dead = at, e.seq, fn, false
	} else {
		e.stats.PoolMisses++
		ev = &Event{at: at, seq: e.seq, fn: fn}
	}
	e.heapPush(ev)
	return Handle{ev: ev, gen: ev.gen, at: at}
}

// After registers fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// recycle returns an executed or discarded event to the free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Run processes events until the queue is empty and returns the final
// virtual time.
func (e *Engine) Run() time.Duration {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		ev := e.heapPop()
		if ev.dead {
			e.recycle(ev)
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = ev.at
		e.stats.Processed++
		if e.limit > 0 && e.stats.Processed-e.limitBase > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded", e.limit))
		}
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
	return e.now
}

// RunUntil processes events with timestamps ≤ deadline and then stops,
// leaving later events queued. It returns the virtual time reached, which
// is deadline if any events remain.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	if e.running {
		panic("sim: RunUntil called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.dead {
			e.recycle(e.heapPop())
			continue
		}
		if ev.at > deadline {
			break
		}
		e.heapPop()
		e.now = ev.at
		e.stats.Processed++
		if e.limit > 0 && e.stats.Processed-e.limitBase > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded", e.limit))
		}
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// QueueLen reports the queued event count including cancelled events —
// an O(1) companion to Pending for backpressure checks in benchmarks.
func (e *Engine) QueueLen() int { return len(e.queue) }

// Pending reports how many live events remain queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// --- 4-ary min-heap on (at, seq) ---
//
// A 4-ary layout halves the tree depth of a binary heap: sift-up does
// fewer comparisons per level and the four children of a node share a
// cache line of pointers, which measurably speeds the pop-heavy event
// loop. Ordering is strict (at, seq), so ties execute in insertion order
// and the timeline stays deterministic.

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev *Event) {
	e.queue = append(e.queue, ev)
	i := len(e.queue) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(e.queue[i], e.queue[p]) {
			break
		}
		e.queue[i], e.queue[p] = e.queue[p], e.queue[i]
		i = p
	}
}

func (e *Engine) heapPop() *Event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	e.queue = q
	if n > 0 {
		// Sift the former last element down from the root.
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			// Smallest of up to four children.
			min := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if eventLess(q[c], q[min]) {
					min = c
				}
			}
			if !eventLess(q[min], last) {
				break
			}
			q[i] = q[min]
			i = min
		}
		q[i] = last
	}
	return top
}
