// Package sim provides the deterministic discrete-event simulation kernel
// that every hardware substrate (GPU streams, DMA engines, PCIe links,
// NVMe queues) is built on. Time is virtual: events carry a timestamp and
// the engine executes them in (time, insertion-order) order, so a given
// workload always produces exactly the same timeline. Determinism is what
// turns the paper's wall-clock experiments into reproducible unit tests.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents a pending event from running. Cancelling an event that
// already ran is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	running bool
	// processed counts executed events, exposed for runaway detection in
	// tests and for engine statistics.
	processed uint64
	// limit aborts Run after this many events (0 = unlimited); it guards
	// against accidental event storms in misconfigured experiments.
	limit uint64
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetEventLimit sets the maximum number of events Run will process before
// panicking. Zero disables the limit.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past panics: the engine cannot rewind, and silently clamping would
// hide causality bugs in substrate models.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After registers fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Run processes events until the queue is empty and returns the final
// virtual time.
func (e *Engine) Run() time.Duration {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = ev.at
		e.processed++
		if e.limit > 0 && e.processed > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded", e.limit))
		}
		ev.fn()
	}
	return e.now
}

// RunUntil processes events with timestamps ≤ deadline and then stops,
// leaving later events queued. It returns the virtual time reached, which
// is deadline if any events remain.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	if e.running {
		panic("sim: RunUntil called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.dead {
			heap.Pop(&e.queue)
			continue
		}
		if ev.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		e.processed++
		if e.limit > 0 && e.processed > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded", e.limit))
		}
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending reports how many live events remain queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}
