package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestEventPoolReuse verifies steady-state scheduling recycles event
// objects instead of allocating.
func TestEventPoolReuse(t *testing.T) {
	eng := NewEngine()
	const rounds = 1000
	left := rounds
	var tick func()
	tick = func() {
		if left > 0 {
			left--
			eng.After(time.Microsecond, tick)
		}
	}
	eng.After(0, tick)
	eng.Run()
	st := eng.Stats()
	if st.Processed != rounds+1 {
		t.Fatalf("processed = %d, want %d", st.Processed, rounds+1)
	}
	// One fresh allocation (the seed event); every rescheduling reuses it.
	if st.PoolMisses != 1 || st.PoolHits != rounds {
		t.Fatalf("pool hits/misses = %d/%d, want %d/1", st.PoolHits, st.PoolMisses, rounds)
	}
	if r := st.PoolHitRate(); r < 0.99 {
		t.Fatalf("pool hit rate = %v", r)
	}
}

// TestStaleHandleCancelIsInert verifies a handle kept past its event's
// execution cannot cancel the recycled event object's next occupant.
func TestStaleHandleCancelIsInert(t *testing.T) {
	eng := NewEngine()
	first := eng.After(time.Millisecond, func() {})
	eng.Run()
	if first.Pending() {
		t.Fatal("executed event still pending")
	}

	ran := false
	second := eng.After(time.Millisecond, func() { ran = true })
	if !second.Pending() {
		t.Fatal("fresh event not pending")
	}
	// The stale handle refers to the same pooled *Event object; its
	// generation no longer matches, so Cancel must be a no-op.
	first.Cancel()
	eng.Run()
	if !ran {
		t.Fatal("stale handle cancelled a recycled event")
	}
}

// TestZeroHandle verifies the zero Handle is inert.
func TestZeroHandle(t *testing.T) {
	var h Handle
	h.Cancel()
	if h.Pending() {
		t.Fatal("zero handle pending")
	}
	if h.At() != 0 {
		t.Fatal("zero handle time")
	}
}

// TestCancelledEventsRecycle verifies dead events return to the pool in
// both Run and RunUntil drains.
func TestCancelledEventsRecycle(t *testing.T) {
	eng := NewEngine()
	h1 := eng.After(time.Millisecond, func() { t.Fatal("cancelled event ran") })
	h1.Cancel()
	eng.After(2*time.Millisecond, func() {})
	eng.RunUntil(3 * time.Millisecond)
	st := eng.Stats()
	if st.Processed != 1 {
		t.Fatalf("processed = %d", st.Processed)
	}
	// Both event objects (cancelled and executed) must be reusable.
	eng.After(time.Millisecond, func() {})
	eng.After(time.Millisecond, func() {})
	if got := eng.Stats().PoolHits; got != 2 {
		t.Fatalf("pool hits = %d, want 2", got)
	}
	eng.Run()
}

// TestQuaternaryHeapOrdering drives the 4-ary heap with random timestamps
// and checks the engine still executes in (time, insertion) order.
func TestQuaternaryHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eng := NewEngine()
	const n = 5000
	type stamp struct {
		at  time.Duration
		seq int
	}
	var got []stamp
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Intn(500)) * time.Millisecond
		seq := i
		eng.Schedule(at, func() { got = append(got, stamp{at, seq}) })
	}
	eng.Run()
	if len(got) != n {
		t.Fatalf("ran %d events, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time order violated at %d: %v after %v", i, got[i].at, got[i-1].at)
		}
		if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
			t.Fatalf("insertion order violated at %d", i)
		}
	}
}

// TestHeapInterleavedPushPop mixes scheduling from inside callbacks with
// draining, the pattern the executor produces.
func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eng := NewEngine()
	var prev time.Duration
	executed := 0
	var spawn func()
	spawn = func() {
		executed++
		if eng.Now() < prev {
			t.Fatal("time went backwards")
		}
		prev = eng.Now()
		if executed < 3000 {
			for k := 0; k < 1+rng.Intn(3); k++ {
				eng.After(time.Duration(rng.Intn(40))*time.Microsecond, spawn)
			}
		}
	}
	eng.After(0, spawn)
	eng.Run()
	if executed < 3000 {
		t.Fatalf("executed = %d", executed)
	}
}
