package core

import (
	"errors"
	"testing"
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/gds"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/pcie"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// newStack builds a two-rung DRAM+NVMe hierarchy for direct tier tests.
func newStack(policy PlacementPolicy, dramCap units.Bytes) (*TieredOffloader, *CPUOffloader, *SSDOffloader) {
	rt := autograd.NewRuntime(gpu.A100PCIe())
	host := pcie.NewLink(rt.Eng, "pcie-host", pcie.DefaultGen4x16())
	dram := NewCPUOffloader(rt.Eng, "/dev/shm", host, dramCap)
	link := pcie.NewLink(rt.Eng, "pcie0", pcie.DefaultGen4x16())
	devs := []*ssd.Device{
		ssd.NewDevice(rt.Eng, "n0", ssd.IntelP5800X16TB()),
		ssd.NewDevice(rt.Eng, "n1", ssd.IntelP5800X16TB()),
	}
	arr := ssd.NewArray(rt.Eng, "/mnt/md1", 512*units.KiB, devs...)
	nvme := NewSSDOffloader(rt.Eng, "/mnt/md1", link, arr, gds.NewRegistry())
	return NewTieredOffloader(policy, dram, nvme), dram, nvme
}

func mib(n int) *tensor.Tensor {
	return tensor.New("x", tensor.NewShape(n, 1<<19), tensor.FP16, tensor.GPU) // n MiB
}

func TestDRAMFirstFillsThenSpills(t *testing.T) {
	stack, dram, nvme := newStack(DRAMFirstPolicy(), 5*units.MiB)
	// 2 MiB tensors: two fit the 5 MiB pool, the third spills.
	for i := int64(1); i <= 3; i++ {
		if _, _, err := stack.Store(TensorID{Stamp: i, ShapeHash: 1}, mib(2), 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := stack.TierOf(TensorID{Stamp: 1, ShapeHash: 1}); got != 0 {
		t.Errorf("first tensor on tier %d, want DRAM", got)
	}
	if got := stack.TierOf(TensorID{Stamp: 3, ShapeHash: 1}); got != 1 {
		t.Errorf("third tensor on tier %d, want NVMe spill", got)
	}
	if dram.Used() != 4*units.MiB || nvme.Used() != 2*units.MiB {
		t.Errorf("residency dram=%v nvme=%v", dram.Used(), nvme.Used())
	}
	// Deleting a DRAM block makes room for the next store.
	stack.Delete(TensorID{Stamp: 1, ShapeHash: 1})
	if _, _, err := stack.Store(TensorID{Stamp: 4, ShapeHash: 1}, mib(2), 0); err != nil {
		t.Fatal(err)
	}
	if got := stack.TierOf(TensorID{Stamp: 4, ShapeHash: 1}); got != 0 {
		t.Errorf("post-delete store on tier %d, want DRAM", got)
	}
	if stack.PeakResident() != 6*units.MiB {
		t.Errorf("stack peak = %v, want 6 MiB", stack.PeakResident())
	}
}

func TestSSDOnlyIgnoresDRAMRung(t *testing.T) {
	stack, dram, nvme := newStack(SSDOnlyPolicy(), 1<<40)
	for i := int64(1); i <= 4; i++ {
		if _, _, err := stack.Store(TensorID{Stamp: i, ShapeHash: 1}, mib(2), 0); err != nil {
			t.Fatal(err)
		}
	}
	if dram.Used() != 0 {
		t.Errorf("DRAM rung holds %v under ssd-only", dram.Used())
	}
	if nvme.Used() != 8*units.MiB {
		t.Errorf("NVMe rung holds %v", nvme.Used())
	}
}

func TestSplitPolicyBalance(t *testing.T) {
	stack, dram, nvme := newStack(SplitPolicy(0.5), 1<<40)
	for i := int64(1); i <= 8; i++ {
		if _, _, err := stack.Store(TensorID{Stamp: i, ShapeHash: 1}, mib(2), 0); err != nil {
			t.Fatal(err)
		}
	}
	if dram.Used() != 8*units.MiB || nvme.Used() != 8*units.MiB {
		t.Errorf("0.5 split placed dram=%v nvme=%v", dram.Used(), nvme.Used())
	}
}

func TestTieredLoadRoutesAndErrors(t *testing.T) {
	stack, _, _ := newStack(DRAMFirstPolicy(), 3*units.MiB)
	a := TensorID{Stamp: 1, ShapeHash: 1} // lands on DRAM
	b := TensorID{Stamp: 2, ShapeHash: 1} // spills to NVMe
	for _, id := range []TensorID{a, b} {
		if _, _, err := stack.Store(id, mib(2), 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []TensorID{a, b} {
		if _, finish, _, err := stack.Load(id, time.Millisecond); err != nil || finish <= 0 {
			t.Fatalf("load %v: finish=%v err=%v", id, finish, err)
		}
	}
	var miss *MissingBlockError
	if _, _, _, err := stack.Load(TensorID{Stamp: 99, ShapeHash: 1}, 0); !errors.As(err, &miss) {
		t.Fatalf("missing load error = %v, want *MissingBlockError", err)
	}
	// A policy that insists on a full bounded tier surfaces the tier's
	// typed overflow instead of panicking.
	pinned, _, _ := newStack(pinFirstPolicy{}, 1*units.MiB)
	var ovf *OverflowError
	if _, _, err := pinned.Store(a, mib(2), 0); !errors.As(err, &ovf) {
		t.Fatalf("overflow store error = %v, want *OverflowError", err)
	}
}

// pinFirstPolicy always places on tier 0 regardless of room.
type pinFirstPolicy struct{}

func (pinFirstPolicy) Name() string                     { return "pin-first" }
func (pinFirstPolicy) Place(StackView, units.Bytes) int { return 0 }

// TestTieredRestoreErrorKeepsOldCopy: a refused re-store must leave the
// previous copy loadable (the error contract the cache relies on), and a
// successful re-store on the same tier must not delete the fresh file.
func TestTieredRestoreErrorKeepsOldCopy(t *testing.T) {
	stack, dram, _ := newStack(pinFirstPolicy{}, 3*units.MiB)
	id := TensorID{Stamp: 1, ShapeHash: 1}
	if _, _, err := stack.Store(id, mib(2), 0); err != nil {
		t.Fatal(err)
	}
	// Same-tier overwrite succeeds and stays loadable.
	if _, _, err := stack.Store(id, mib(2), 0); err != nil {
		t.Fatalf("same-tier re-store: %v", err)
	}
	if _, _, _, err := stack.Load(id, 0); err != nil {
		t.Fatalf("load after same-tier re-store: %v", err)
	}
	if dram.Used() != 2*units.MiB || stack.used != 2*units.MiB {
		t.Errorf("residency after overwrite: tier %v stack %v", dram.Used(), stack.used)
	}
	// Fill the pool so the next re-store overflows: the old copy survives.
	if _, _, err := stack.Store(TensorID{Stamp: 2, ShapeHash: 1}, mib(1), 0); err != nil {
		t.Fatal(err)
	}
	var ovf *OverflowError
	if _, _, err := stack.Store(id, mib(3), 0); !errors.As(err, &ovf) {
		t.Fatalf("re-store error = %v, want *OverflowError", err)
	}
	if _, _, _, err := stack.Load(id, 0); err != nil {
		t.Errorf("previous copy lost after refused re-store: %v", err)
	}
}

func TestTieredAccountingAggregates(t *testing.T) {
	stack, dram, nvme := newStack(DRAMFirstPolicy(), 3*units.MiB)
	for i := int64(1); i <= 3; i++ {
		if _, _, err := stack.Store(TensorID{Stamp: i, ShapeHash: 1}, mib(2), 0); err != nil {
			t.Fatal(err)
		}
	}
	if stack.BytesWritten() != dram.BytesWritten()+nvme.BytesWritten() {
		t.Error("written total does not aggregate")
	}
	if stack.WriteBandwidth() != dram.WriteBandwidth()+nvme.WriteBandwidth() {
		t.Error("write bandwidth does not aggregate")
	}
	placed := stack.PlacedBytes()
	if placed[0] != 2*units.MiB || placed[1] != 4*units.MiB {
		t.Errorf("placed = %v", placed)
	}
}

func TestPlanHierarchyBudgetDegenerates(t *testing.T) {
	gb := units.Bytes(1e9)
	plan := ModulePlan{
		SavedBytes:   []units.Bytes{3 * gb, 3 * gb, 3 * gb, 1 * gb},
		BwdTime:      []time.Duration{300 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond, 100 * time.Millisecond},
		ForwardTime:  500 * time.Millisecond,
		BackwardTime: time.Second,
	}
	single := plan
	single.ReadBandwidth = 20 * units.GBps
	single.WriteBandwidth = 20 * units.GBps
	want := PlanModuleBudget(single)

	nvme := TierPlan{WriteBandwidth: 20 * units.GBps, ReadBandwidth: 20 * units.GBps}
	dram := TierPlan{WriteBandwidth: 25 * units.GBps, ReadBandwidth: 25 * units.GBps, Capacity: 100 * gb}

	// NVMe alone ≡ the single-target plan, bit for bit.
	if got := PlanHierarchyBudget(plan, []TierPlan{nvme}); got != want {
		t.Errorf("one-tier hierarchy budget %v != module budget %v", got, want)
	}
	// A DRAM rung that holds everything reduces to DRAM-only planning.
	dramOnly := plan
	dramOnly.ReadBandwidth = 25 * units.GBps
	dramOnly.WriteBandwidth = 25 * units.GBps
	if got, want := PlanHierarchyBudget(plan, []TierPlan{dram, nvme}), PlanModuleBudget(dramOnly); got != want {
		t.Errorf("covering-DRAM hierarchy budget %v != dram module budget %v", got, want)
	}
	// A mixed hierarchy is bounded by its parts but no worse than the
	// slow rung alone.
	smallDRAM := dram
	smallDRAM.Capacity = 2 * gb
	mixed := PlanHierarchyBudget(plan, []TierPlan{smallDRAM, nvme})
	if mixed < want {
		t.Errorf("mixed budget %v below nvme-only %v", mixed, want)
	}
	if mixed == 0 {
		t.Error("mixed budget is zero")
	}
}
