package core

import (
	"testing"
	"testing/quick"
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// TestCacheProtocolProperty drives the cache through randomized but
// protocol-legal pack/unpack/consume sequences across modules and
// micro-batches and asserts the invariants the executor depends on:
//
//  1. byte conservation: offloaded + kept == total packed (dedup aside);
//  2. forwarded + reloaded ≤ offloaded;
//  3. no leaked records once every pack was consumed;
//  4. every unpack returns a tensor whose size matches the original.
func TestCacheProtocolProperty(t *testing.T) {
	f := func(seed uint32, sizes []uint8, budgetSel uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		rig := newRig()
		budget := units.Bytes(0)
		if budgetSel%3 == 1 {
			budget = units.Bytes(budgetSel) * 4 * units.MiB
		}
		c := newCache(rig, Config{Budget: budget})
		mods := []*autograd.Module{
			autograd.NewModule("m0"), autograd.NewModule("m1"), autograd.NewModule("m2"),
		}

		type packed struct {
			p     autograd.Packed
			bytes units.Bytes
		}
		var packs []packed
		var total units.Bytes

		c.Phase(autograd.PhaseStepStart, 0, 0)
		c.Phase(autograd.PhaseForward, 0, 0)
		now := time.Duration(0)
		for i, sz := range sizes {
			m := mods[i%len(mods)]
			c.ForwardPre(m, now)
			elems := (int(sz)%4 + 1) * (1 << 20) // 1–4 Mi elements
			x := tensor2(rig, elems, now)
			p := c.Pack(x, now, now)
			packs = append(packs, packed{p, x.Bytes()})
			total += x.Bytes()
			c.ForwardPost(m, now)
			now += time.Millisecond
		}

		io := c.cur
		if io.Offloaded+io.Kept != total {
			return false // invariant 1
		}

		// Backward: unpack and consume everything in reverse order.
		bwd := now + 500*time.Millisecond
		c.Phase(autograd.PhaseBackward, 0, bwd)
		for i := len(packs) - 1; i >= 0; i-- {
			m := mods[i%len(mods)]
			c.BackwardPre(m, bwd)
			got, ready := c.Unpack(packs[i].p, bwd)
			if got == nil || got.Bytes() != packs[i].bytes {
				return false // invariant 4
			}
			if ready < bwd {
				return false
			}
			c.Consumed(packs[i].p, ready+time.Millisecond)
			c.BackwardPost(m, bwd)
			bwd = ready + time.Millisecond
		}
		c.Phase(autograd.PhaseStepEnd, 0, bwd+time.Second)

		last := c.LastStep()
		if last.Forwarded+last.Reloaded > last.Offloaded {
			return false // invariant 2
		}
		return last.Leaked == 0 // invariant 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// tensor2 allocates a GPU activation of the given element count and
// registers it with the allocator.
func tensor2(rig *testRig, elems int, at time.Duration) *tensor.Tensor {
	x := tensor.New("t", tensor.NewShape(elems), tensor.FP16, tensor.GPU)
	rig.rt.Life.Alloc(at, x.Storage(), gpu.ClassActivations)
	return x
}
