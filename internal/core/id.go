// Package core implements SSDTrain itself (§III): the tensor cache that
// intercepts saved-tensor pack/unpack traffic, offloads activations to an
// SSD (or host-memory) target, prefetches them back in reverse layer
// order ahead of backward propagation, deduplicates repeated
// registrations of the same storage, forwards in-flight tensors from
// memory, and adaptively bounds the offload amount so I/O stays fully
// overlapped with compute.
package core

import (
	"fmt"

	"ssdtrain/internal/tensor"
)

// TensorID is the cache's stable identifier for a saved tensor: the
// logical timestamp stamped onto the underlying storage at first sight,
// combined with a digest of the view's shape (§III-C1). Address-based
// identity is deliberately avoided: offloaded tensors are garbage
// collected, their addresses recycled, and identifiers would collide —
// the failure mode get_id() exists to prevent. The shape digest replaces
// the seed's formatted shape string so building an ID is allocation-free;
// the offloaders key their block stores by TensorID directly and only
// render the paper-style file name for diagnostics.
type TensorID struct {
	Stamp     int64
	ShapeHash uint64
}

// String renders the ID for diagnostics and file naming.
func (id TensorID) String() string {
	return fmt.Sprintf("t%d/%016x", id.Stamp, id.ShapeHash)
}

// FileName returns a stable offload file name for the ID, in the style of
// the paper's "/mnt/md1/t1.pt".
func (id TensorID) FileName() string {
	return fmt.Sprintf("t%d_%016x.pt", id.Stamp, id.ShapeHash)
}

// FlowID folds the ID into a non-zero 64-bit value for Chrome trace flow
// events, which link a tensor's offload span to its reload span. The
// splitmix-style finalizer keeps nearby stamps from producing nearby flow
// ids (trace viewers bucket flows by id).
func (id TensorID) FlowID() uint64 {
	h := uint64(id.Stamp)*0x9E3779B97F4A7C15 + id.ShapeHash
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	if h == 0 {
		h = 1
	}
	return h
}

// IDSource implements get_id(): a monotonic logical clock whose ticks are
// attached to storages the first time they are processed. Because the
// stamp lives on the storage, every view — including the transposed
// weight views linear layers register — resolves to the same stamp, and
// the stamp survives across training steps.
type IDSource struct {
	clock int64
}

// NewIDSource returns a fresh logical clock.
func NewIDSource() *IDSource { return &IDSource{} }

// Reset rewinds the logical clock for a new run on a recycled arena.
// Only valid when the storages stamped by the previous run have been
// reset in place (or discarded): restamping then replays the identical
// stamp sequence a fresh clock would issue.
func (s *IDSource) Reset() { s.clock = 0 }

// GetID returns the tensor's stable identifier, stamping the underlying
// storage on first encounter.
func (s *IDSource) GetID(t *tensor.Tensor) TensorID {
	st := t.Storage()
	if st.Stamp() == 0 {
		s.clock++
		st.SetStamp(s.clock)
	}
	return TensorID{Stamp: st.Stamp(), ShapeHash: t.Shape().Hash()}
}
