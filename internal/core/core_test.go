package core

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/gds"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/pcie"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

func TestGetIDStableAcrossViews(t *testing.T) {
	ids := NewIDSource()
	w := tensor.NewWeight("w", tensor.NewShape(64, 32), tensor.FP16, tensor.GPU)
	id1 := ids.GetID(w.Transpose())
	id2 := ids.GetID(w.Transpose()) // a NEW view object each time
	if id1 != id2 {
		t.Errorf("transpose IDs differ: %v vs %v", id1, id2)
	}
	// The base tensor shares the stamp but not the shape key.
	idBase := ids.GetID(w)
	if idBase.Stamp != id1.Stamp {
		t.Error("views have different stamps")
	}
	if idBase.ShapeHash == id1.ShapeHash {
		t.Error("different shapes share a shape key")
	}
}

func TestGetIDNoAddressCollision(t *testing.T) {
	// Two tensors of identical shape must get different IDs even if one
	// replaced the other (the address-reuse hazard get_id prevents).
	ids := NewIDSource()
	a := tensor.New("a", tensor.NewShape(16), tensor.FP16, tensor.GPU)
	idA := ids.GetID(a)
	b := tensor.New("b", tensor.NewShape(16), tensor.FP16, tensor.GPU)
	idB := ids.GetID(b)
	if idA == idB {
		t.Error("distinct storages collided")
	}
}

func TestFileNameStable(t *testing.T) {
	id := TensorID{Stamp: 7, ShapeHash: 0x16a1024}
	if id.FileName() != id.FileName() {
		t.Error("file name not deterministic")
	}
}

// testRig wires a runtime plus SSD offloader for cache tests.
type testRig struct {
	rt  *autograd.Runtime
	off *SSDOffloader
}

func newRig() *testRig {
	rt := autograd.NewRuntime(gpu.A100PCIe())
	link := pcie.NewLink(rt.Eng, "pcie0", pcie.DefaultGen4x16())
	devs := []*ssd.Device{
		ssd.NewDevice(rt.Eng, "n0", ssd.IntelP5800X16TB()),
		ssd.NewDevice(rt.Eng, "n1", ssd.IntelP5800X16TB()),
	}
	arr := ssd.NewArray(rt.Eng, "/mnt/md1", 512*units.KiB, devs...)
	off := NewSSDOffloader(rt.Eng, "/mnt/md1", link, arr, gds.NewRegistry())
	return &testRig{rt: rt, off: off}
}

func newCache(rig *testRig, cfg Config) *TensorCache {
	cfg.Runtime = rig.rt
	cfg.Offloader = rig.off
	return NewTensorCache(cfg)
}

// bigTensor allocates a GPU activation above the small-tensor threshold
// and registers it with the allocator.
func bigTensor(rig *testRig, name string, at time.Duration) *tensor.Tensor {
	x := tensor.New(name, tensor.NewShape(1024, 1024, 2), tensor.FP16, tensor.GPU)
	rig.rt.Life.Alloc(at, x.Storage(), gpu.ClassActivations)
	return x
}

func TestPackEarlyReturns(t *testing.T) {
	rig := newRig()
	c := newCache(rig, Config{})
	c.Phase(autograd.PhaseStepStart, 0, 0)
	c.Phase(autograd.PhaseForward, 0, 0)

	// CPU tensors pass through.
	cpu := tensor.New("cpu", tensor.NewShape(1<<21), tensor.FP16, tensor.CPU)
	if p := c.Pack(cpu, 0, 0); p != autograd.Packed(cpu) {
		t.Error("CPU tensor not passed through")
	}
	// Small tensors pass through (under 2^20 elements).
	small := tensor.New("small", tensor.NewShape(1024), tensor.FP16, tensor.GPU)
	if p := c.Pack(small, 0, 0); p != autograd.Packed(small) {
		t.Error("small tensor not passed through")
	}
	// Registered weights (via their transposed views) pass through.
	w := tensor.NewWeight("w", tensor.NewShape(2048, 1024), tensor.FP16, tensor.GPU)
	c.RegisterWeights([]*tensor.Tensor{w})
	if p := c.Pack(w.Transpose(), 0, 0); p != autograd.Packed(w.Transpose()) {
		if _, isHandle := p.(handle); isHandle {
			t.Error("weight view was cached instead of passed through")
		}
	}
	if rig.rt.Counters.Get("cache.weight_skips") == 0 {
		t.Error("weight skip not counted")
	}
}

func TestPackOffloadAndReload(t *testing.T) {
	rig := newRig()
	c := newCache(rig, Config{Verify: true})
	c.Phase(autograd.PhaseStepStart, 0, 0)
	c.Phase(autograd.PhaseForward, 0, 0)
	m := autograd.NewModule("layer0")
	c.ForwardPre(m, 0)
	x := bigTensor(rig, "x", 0)
	x.Storage().Materialize(11)
	sum := x.Storage().Checksum()

	produced := 10 * time.Millisecond
	p := c.Pack(x, produced, 0)
	h, ok := p.(handle)
	if !ok {
		t.Fatal("big activation not cached")
	}
	if !h.rec.offloaded {
		t.Fatal("activation not offloaded")
	}
	if h.rec.storeStart < produced {
		t.Errorf("store started %v before the producing kernel finished %v", h.rec.storeStart, produced)
	}
	c.ForwardPost(m, 0)

	// Unpack long after the store finished → reload from SSD.
	c.Phase(autograd.PhaseBackward, 0, time.Second)
	got, ready := c.Unpack(p, time.Second)
	if got == x {
		t.Error("expected a reload buffer, got the original")
	}
	if ready <= time.Second {
		t.Error("reload should take time")
	}
	if got.Storage().Checksum() != sum {
		t.Error("reload payload mismatch")
	}
	c.Consumed(p, ready+time.Millisecond)
	c.Phase(autograd.PhaseStepEnd, 0, 2*time.Second)
	if c.LastStep().Leaked != 0 {
		t.Errorf("leaked %d records", c.LastStep().Leaked)
	}
	if c.LastStep().Reloaded != x.Bytes() {
		t.Errorf("reloaded = %v", c.LastStep().Reloaded)
	}
}

func TestForwardingWhileStoreInFlight(t *testing.T) {
	rig := newRig()
	c := newCache(rig, Config{})
	c.Phase(autograd.PhaseStepStart, 0, 0)
	c.Phase(autograd.PhaseForward, 0, 0)
	m := autograd.NewModule("layer0")
	c.ForwardPre(m, 0)
	x := bigTensor(rig, "x", 0)
	p := c.Pack(x, 0, 0)
	c.ForwardPost(m, 0)
	h := p.(handle)
	// Unpack while the store is still in flight (hostNow < storeFinish).
	before := h.rec.storeFinish - time.Microsecond
	c.Phase(autograd.PhaseBackward, 0, before)
	got, ready := c.Unpack(p, before)
	if got != x || ready != before {
		t.Error("forwarding should return the in-memory original instantly")
	}
	if !h.rec.forwarded {
		t.Error("record not marked forwarded")
	}
	if c.cur.Forwarded != x.Bytes() {
		t.Errorf("forwarded bytes = %v", c.cur.Forwarded)
	}
	// The original storage survives until both the consumer and the store
	// are done.
	c.Consumed(p, before)
	c.Phase(autograd.PhaseStepEnd, 0, time.Second)
	if x.Storage().Freed() == false {
		// Released via Lifetimes; executor refs (producer) still pending
		// in this synthetic setup — release ours.
		rig.rt.Life.Release(x.Storage(), time.Second)
	}
}

func TestDedupSecondPackNoIO(t *testing.T) {
	rig := newRig()
	c := newCache(rig, Config{})
	c.Phase(autograd.PhaseStepStart, 0, 0)
	c.Phase(autograd.PhaseForward, 0, 0)
	m := autograd.NewModule("layer0")
	c.ForwardPre(m, 0)
	x := bigTensor(rig, "x", 0)
	p1 := c.Pack(x, 0, 0)
	written := rig.off.BytesWritten()
	p2 := c.Pack(x, 0, time.Microsecond)
	if rig.off.BytesWritten() != written {
		t.Error("second pack of the same tensor triggered I/O")
	}
	if p1.(handle).rec != p2.(handle).rec {
		t.Error("dedup returned different records")
	}
	if c.cur.DedupHits != 1 {
		t.Errorf("dedup hits = %d", c.cur.DedupHits)
	}
	// Both consumers must finish before release.
	c.Phase(autograd.PhaseBackward, 0, time.Second)
	c.Unpack(p1, time.Second)
	c.Consumed(p1, time.Second)
	rec := p1.(handle).rec
	if rec.consumed != 1 {
		t.Errorf("consumed = %d", rec.consumed)
	}
	c.Consumed(p2, time.Second)
	c.Phase(autograd.PhaseStepEnd, 0, 2*time.Second)
	if c.LastStep().Leaked != 0 {
		t.Error("leak after dual consumption")
	}
}

func TestBudgetKeepsTail(t *testing.T) {
	rig := newRig()
	one := units.Bytes(1024 * 1024 * 2 * 2) // bigTensor size
	c := newCache(rig, Config{Budget: one + one/2})
	c.Phase(autograd.PhaseStepStart, 0, 0)
	c.Phase(autograd.PhaseForward, 0, 0)
	m := autograd.NewModule("layer0")
	c.ForwardPre(m, 0)
	p1 := c.Pack(bigTensor(rig, "a", 0), 0, 0)
	p2 := c.Pack(bigTensor(rig, "b", 0), 0, 0) // budget not yet reached (1 < 1.5)
	p3 := c.Pack(bigTensor(rig, "c", 0), 0, 0) // reached: keep
	if !p1.(handle).rec.offloaded || !p2.(handle).rec.offloaded {
		t.Error("under-budget tensors kept")
	}
	if p3.(handle).rec.offloaded {
		t.Error("over-budget tensor offloaded")
	}
	if c.cur.Kept != one {
		t.Errorf("kept bytes = %v", c.cur.Kept)
	}
}

func TestInBackwardKeeps(t *testing.T) {
	rig := newRig()
	c := newCache(rig, Config{})
	c.Phase(autograd.PhaseStepStart, 0, 0)
	c.Phase(autograd.PhaseForward, 0, 0)
	c.Phase(autograd.PhaseBackward, 0, 0)
	m := autograd.NewModule("ckpt")
	c.BackwardPre(m, 0)
	p := c.Pack(bigTensor(rig, "recomputed", 0), 0, 0)
	if p.(handle).rec.offloaded {
		t.Error("tensor packed during backward (recomputation) was offloaded")
	}
}

func TestKeepLastModulesLearned(t *testing.T) {
	rig := newRig()
	c := newCache(rig, Config{KeepLastModules: 1})
	m0, m1 := autograd.NewModule("l0"), autograd.NewModule("l1")
	step := func(expectKeepLast bool) {
		c.Phase(autograd.PhaseStepStart, 0, 0)
		c.Phase(autograd.PhaseForward, 0, 0)
		c.ForwardPre(m0, 0)
		pa := c.Pack(bigTensor(rig, "a", 0), 0, 0)
		c.ForwardPost(m0, 0)
		c.ForwardPre(m1, 0)
		pb := c.Pack(bigTensor(rig, "b", 0), 0, 0)
		c.ForwardPost(m1, 0)
		if got := !pb.(handle).rec.offloaded; got != expectKeepLast {
			t.Errorf("keep-last = %v, want %v", got, expectKeepLast)
		}
		c.Phase(autograd.PhaseBackward, 0, time.Second)
		for _, p := range []autograd.Packed{pb, pa} {
			c.Unpack(p, time.Second)
			c.Consumed(p, time.Second)
		}
		c.Phase(autograd.PhaseStepEnd, 0, 2*time.Second)
	}
	step(false) // first step: module order unknown, everything offloads
	step(true)  // second step: last module learned and kept
}

func TestPrefetchIssuesLoads(t *testing.T) {
	rig := newRig()
	c := newCache(rig, Config{})
	m0, m1 := autograd.NewModule("l0"), autograd.NewModule("l1")
	c.Phase(autograd.PhaseStepStart, 0, 0)
	c.Phase(autograd.PhaseForward, 0, 0)
	c.ForwardPre(m0, 0)
	pa := c.Pack(bigTensor(rig, "a", 0), 0, 0)
	c.ForwardPost(m0, 0)
	c.ForwardPre(m1, 0)
	pb := c.Pack(bigTensor(rig, "b", 0), 0, 0)
	c.ForwardPost(m1, 0)
	// Enter m1's backward well after stores completed: m0's records get
	// prefetched.
	at := time.Second
	c.Phase(autograd.PhaseBackward, 0, at)
	c.BackwardPre(m1, at)
	if !pa.(handle).rec.loading {
		t.Error("prefetch did not load the upcoming module")
	}
	// Unpacking the prefetched tensor returns the load finish time.
	_, ready := c.Unpack(pa, at)
	if ready != pa.(handle).rec.loadFinish {
		t.Errorf("unpack ready %v != load finish %v", ready, pa.(handle).rec.loadFinish)
	}
	if rig.rt.Counters.Get("cache.demand_loads") != 0 {
		t.Error("prefetched load counted as demand load")
	}
	// pb was never prefetched (it is the current module): demand load.
	c.Unpack(pb, at+time.Second)
	if rig.rt.Counters.Get("cache.demand_loads") != 1 {
		t.Error("demand load not counted")
	}
}

func TestSweepCountsLeaks(t *testing.T) {
	rig := newRig()
	c := newCache(rig, Config{})
	c.Phase(autograd.PhaseStepStart, 0, 0)
	c.Phase(autograd.PhaseForward, 0, 0)
	m := autograd.NewModule("l0")
	c.ForwardPre(m, 0)
	c.Pack(bigTensor(rig, "a", 0), 0, 0) // never unpacked or consumed
	c.ForwardPost(m, 0)
	c.Phase(autograd.PhaseStepEnd, 0, time.Second)
	if c.LastStep().Leaked != 1 {
		t.Errorf("leaked = %d, want 1", c.LastStep().Leaked)
	}
	// The offload file was cleaned up.
	if rig.off.BlockStore().Count() != 0 {
		t.Error("offload file survived the sweep")
	}
}

func TestSSDOffloaderTiming(t *testing.T) {
	rig := newRig()
	x := tensor.New("x", tensor.NewShape(1<<20), tensor.FP16, tensor.GPU) // 2 MiB
	id := TensorID{Stamp: 1, ShapeHash: 0x100000}
	start, finish, err := rig.off.Store(id, x, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if start < 5*time.Millisecond {
		t.Error("store started before ready time")
	}
	want := rig.off.WriteBandwidth().TimeFor(x.Bytes())
	if finish-start < want {
		t.Errorf("store too fast: %v < %v", finish-start, want)
	}
	// FIFO: a second store queues.
	_, f2, err := rig.off.Store(TensorID{Stamp: 2, ShapeHash: 0x100000}, x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f2 <= finish {
		t.Error("store queue not FIFO")
	}
	// Loads come back.
	ls, lf, _, err := rig.off.Load(id, finish)
	if err != nil {
		t.Fatal(err)
	}
	if ls < finish || lf <= ls {
		t.Errorf("load times wrong: %v %v", ls, lf)
	}
	rig.off.Delete(id)
	rig.off.Delete(id) // idempotent
}

func TestOffloaderBouncePath(t *testing.T) {
	rig := newRig()
	x := tensor.New("x", tensor.NewShape(1<<22), tensor.FP16, tensor.GPU)
	// Unregistered: bounce at half bandwidth.
	_, f1, _ := rig.off.Store(TensorID{Stamp: 1, ShapeHash: 0xa}, x, 0)
	rig.off.Registry().Register(x.Storage())
	_, f2, _ := rig.off.Store(TensorID{Stamp: 2, ShapeHash: 0xb}, x, 0)
	d1 := f1
	d2 := f2 - f1
	if d2 >= d1 {
		t.Errorf("registered store %v not faster than bounce %v", d2, d1)
	}
}

func TestCPUOffloaderPool(t *testing.T) {
	rt := autograd.NewRuntime(gpu.A100PCIe())
	link := pcie.NewLink(rt.Eng, "pcie0", pcie.DefaultGen4x16())
	o := NewCPUOffloader(rt.Eng, "/dev/shm", link, 0)
	x := tensor.New("x", tensor.NewShape(1<<20), tensor.FP16, tensor.GPU)
	o.Store(TensorID{Stamp: 1, ShapeHash: 0xa}, x, 0)
	if o.PeakResident() != x.Bytes() {
		t.Errorf("profiling peak = %v", o.PeakResident())
	}
	o.Delete(TensorID{Stamp: 1, ShapeHash: 0xa})
	// Fix the pool just under two tensors; one fits, a second overflows
	// with a typed error (the seed panicked the whole process here).
	o.SetCapacity(x.Bytes() + x.Bytes()/2)
	if _, _, err := o.Store(TensorID{Stamp: 2, ShapeHash: 0xb}, x, 0); err != nil {
		t.Fatalf("in-capacity store failed: %v", err)
	}
	_, _, err := o.Store(TensorID{Stamp: 3, ShapeHash: 0xc}, x, 0)
	var ovf *OverflowError
	if !errors.As(err, &ovf) {
		t.Fatalf("pool overflow error = %v, want *OverflowError", err)
	}
	if ovf.Tier != "/dev/shm" || ovf.Need != x.Bytes() || ovf.Capacity != x.Bytes()+x.Bytes()/2 {
		t.Errorf("overflow detail = %+v", ovf)
	}
	// Loads of evicted/missing buffers are typed errors too, not panics.
	_, _, _, err = o.Load(TensorID{Stamp: 9, ShapeHash: 0xf}, 0)
	var miss *MissingBlockError
	if !errors.As(err, &miss) {
		t.Fatalf("missing-buffer load error = %v, want *MissingBlockError", err)
	}
}

func TestPlanModuleBudget(t *testing.T) {
	gb := units.Bytes(1e9)
	plan := ModulePlan{
		SavedBytes:     []units.Bytes{3 * gb, 3 * gb, 3 * gb, 1 * gb},
		BwdTime:        []time.Duration{300 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond, 100 * time.Millisecond},
		ReadBandwidth:  20 * units.GBps,
		WriteBandwidth: 20 * units.GBps,
		ForwardTime:    500 * time.Millisecond,
		BackwardTime:   time.Second,
	}
	budget := PlanModuleBudget(plan)
	// The last module is never offloaded.
	if budget > 9*gb {
		t.Errorf("budget %v includes the last module", budget)
	}
	if budget == 0 {
		t.Error("plentiful bandwidth should allow offloading")
	}
	// Zero read bandwidth → nothing can reload → no offload.
	starved := plan
	starved.ReadBandwidth = 0
	if PlanModuleBudget(starved) != 0 {
		t.Error("zero read bandwidth should plan zero budget")
	}
}

// Property: the planned budget never exceeds the offloadable prefix and
// shrinks (weakly) as read bandwidth shrinks.
func TestPlanBudgetMonotoneProperty(t *testing.T) {
	f := func(sizes []uint16, bwMBs uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		plan := ModulePlan{ReadBandwidth: units.Bandwidth(bwMBs%2000+1) * units.MBps}
		var totalNoLast units.Bytes
		for i, s := range sizes {
			b := units.Bytes(s)*units.MB + units.MB
			plan.SavedBytes = append(plan.SavedBytes, b)
			plan.BwdTime = append(plan.BwdTime, 10*time.Millisecond)
			if i < len(sizes)-1 {
				totalNoLast += b
			}
		}
		b1 := PlanModuleBudget(plan)
		if b1 > totalNoLast {
			return false
		}
		plan.ReadBandwidth *= 2
		b2 := PlanModuleBudget(plan)
		return b2 >= b1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNoDedupCreatesDuplicateIO(t *testing.T) {
	rig := newRig()
	c := newCache(rig, Config{NoDedup: true})
	c.Phase(autograd.PhaseStepStart, 0, 0)
	c.Phase(autograd.PhaseForward, 0, 0)
	m := autograd.NewModule("l0")
	c.ForwardPre(m, 0)
	x := bigTensor(rig, "x", 0)
	// Cache holds a ref per record; give the second record its own ref
	// baseline by retaining once more (the executor's producer ref).
	rig.rt.Life.Retain(x.Storage())
	c.Pack(x, 0, 0)
	w1 := rig.off.BytesWritten()
	c.Pack(x, 0, time.Microsecond)
	if rig.off.BytesWritten() != 2*w1 {
		t.Errorf("NoDedup should double the I/O: %v vs %v", rig.off.BytesWritten(), 2*w1)
	}
}
