package core

import (
	"fmt"
	"time"

	"ssdtrain/internal/faults"
	"ssdtrain/internal/gds"
	"ssdtrain/internal/pcie"
	"ssdtrain/internal/sim"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// Span names for tier store/load traffic. Stores on the GDS path record
// which transfer path they took; the bounce-path spans are how a trace
// shows the efficiency cliff unregistered memory falls off.
const (
	spanStoreDirect = "store direct"
	spanStoreBounce = "store bounce"
	spanStore       = "store"
	spanLoad        = "load"
)

// Offloader moves tensor payloads between GPU memory and an offload
// target. Implementations provide two FIFO queues — one for stores, one
// for loads — matching the cache's two thread pools (§III-C2). All times
// are virtual; Store/Load return when the transfer's data is fully on the
// target/GPU.
type Offloader interface {
	// Name identifies the target (e.g. "/mnt/md1").
	Name() string
	// Store writes t to the target under the ID's file name, starting no
	// earlier than ready (the producing kernel's completion). It returns
	// the transfer's start and finish times. A bounded target refuses a
	// tensor it cannot hold with an *OverflowError.
	Store(id TensorID, t *tensor.Tensor, ready time.Duration) (start, finish time.Duration, err error)
	// Load reads the file back, starting no earlier than ready; it
	// returns the transfer's start and finish times plus the payload
	// (nil for size-only stores). Loading an ID the target does not hold
	// returns a *MissingBlockError.
	Load(id TensorID, ready time.Duration) (start, finish time.Duration, data []byte, err error)
	// Delete removes the file (idempotent).
	Delete(id TensorID)
	// WriteBandwidth/ReadBandwidth expose the nominal path rates for
	// offload planning (Fig 3).
	WriteBandwidth() units.Bandwidth
	ReadBandwidth() units.Bandwidth
	// BytesWritten/BytesRead are cumulative host-visible transfer totals.
	BytesWritten() units.Bytes
	BytesRead() units.Bytes
	// PeakResident is the high-water mark of bytes live on the target.
	PeakResident() units.Bytes
}

// TierKind classifies a tier's medium for placement policies, budget
// planning and reporting.
type TierKind string

// Tier kinds.
const (
	// TierDRAM is a pinned host-memory pool reached over the PCIe host
	// DMA path.
	TierDRAM TierKind = "dram"
	// TierNVMe is an NVMe array reached over the GDS peer-to-peer path.
	TierNVMe TierKind = "nvme"
)

// Tier is one rung of the offload hierarchy: an Offloader that also
// exposes its medium, capacity and current residency so placement
// policies can route tensors across a stack of tiers. Both single-target
// offloaders (SSD, pinned host memory) implement it; TieredOffloader
// composes them.
type Tier interface {
	Offloader
	// Kind classifies the tier's medium.
	Kind() TierKind
	// Capacity is the tier's byte capacity; 0 means unbounded.
	Capacity() units.Bytes
	// Used is the bytes currently resident on the tier.
	Used() units.Bytes
}

// OverflowError reports a bounded tier refusing a store that would
// exceed its capacity.
type OverflowError struct {
	Tier                 string
	Used, Need, Capacity units.Bytes
}

// Error implements error.
func (e *OverflowError) Error() string {
	return fmt.Sprintf("core: %s pool overflow: %v used + %v > %v capacity (re-profile the first step or spill to a lower tier)",
		e.Tier, e.Used, e.Need, e.Capacity)
}

// DeviceFailedError reports a transfer refused because the tier's
// backing device (or its whole array) is failed at the transfer's start
// time and no surviving capacity can absorb it. It is a typed mid-run
// error like OverflowError: Session.Execute surfaces it cleanly and the
// arena stays reusable afterward.
type DeviceFailedError struct {
	// Tier names the failed tier.
	Tier string
	// At is the refused transfer's computed start time.
	At time.Duration
	// Op is the refused operation ("store" or "load").
	Op string
}

// Error implements error.
func (e *DeviceFailedError) Error() string {
	return fmt.Sprintf("core: %s device failed: %s at %v refused, no surviving device", e.Tier, e.Op, e.At)
}

// MissingBlockError reports a load of an ID the tier does not hold.
type MissingBlockError struct {
	Tier string
	ID   TensorID
}

// Error implements error.
func (e *MissingBlockError) Error() string {
	return fmt.Sprintf("core: load of missing offload file %s/%s", e.Tier, e.ID.FileName())
}

// tierBase is the machinery every tier shares (§III-C2): the two FIFO
// "thread pool" queues, the byte-accurate block store, the per-transfer
// latency and path bandwidths, and the accounting the hierarchy
// aggregates.
type tierBase struct {
	name  string
	store *ssd.BlockStore[TensorID]

	// storeQ and loadQ are the two FIFO "thread pool" queues.
	storeQ *sim.Server
	loadQ  *sim.Server

	writeBW units.Bandwidth
	readBW  units.Bandwidth
	latency time.Duration

	// rec and the two tracks carry the tier's store/load spans; the
	// per-direction queues map one-to-one onto trace tracks.
	rec           *spans.Recorder
	storeT, loadT spans.TrackID

	// steady is the steady-state fast path's fold bookkeeping (steady.go).
	steady tierSteady
}

// newTierBase wires the shared tier machinery onto the engine.
func newTierBase(eng *sim.Engine, name string, latency time.Duration, writeBW, readBW units.Bandwidth) tierBase {
	rec := eng.Recorder()
	return tierBase{
		name:    name,
		store:   ssd.NewBlockStore[TensorID](),
		storeQ:  sim.NewServer(eng, name+".storeq"),
		loadQ:   sim.NewServer(eng, name+".loadq"),
		writeBW: writeBW,
		readBW:  readBW,
		latency: latency,
		rec:     rec,
		storeT:  rec.RegisterTrack(name + ".store"),
		loadT:   rec.RegisterTrack(name + ".load"),
	}
}

// reset clears the shared tier machinery — block store, both FIFO queues —
// for reuse by a new simulation on the same (reset) engine. Bandwidths and
// latency are left for the owning tier, which may need to re-derate them.
func (b *tierBase) reset() {
	b.store.Reset()
	b.storeQ.Reset()
	b.loadQ.Reset()
	b.steady = tierSteady{}
}

// Name implements Offloader.
func (b *tierBase) Name() string { return b.name }

// Delete implements Offloader.
func (b *tierBase) Delete(id TensorID) { b.store.Delete(id) }

// WriteBandwidth implements Offloader.
func (b *tierBase) WriteBandwidth() units.Bandwidth { return b.writeBW }

// ReadBandwidth implements Offloader.
func (b *tierBase) ReadBandwidth() units.Bandwidth { return b.readBW }

// BytesWritten implements Offloader.
func (b *tierBase) BytesWritten() units.Bytes { return b.store.Written() }

// BytesRead implements Offloader.
func (b *tierBase) BytesRead() units.Bytes { return b.store.Read() }

// PeakResident implements Offloader.
func (b *tierBase) PeakResident() units.Bytes { return b.store.PeakUsed() }

// Used implements Tier.
func (b *tierBase) Used() units.Bytes { return b.store.Used() }

// StoreDrainTime returns when the store queue's backlog finishes.
func (b *tierBase) StoreDrainTime() time.Duration { return b.storeQ.BusyUntil() }

// Preload records a resident block on the tier without a timed transfer —
// one-time staging (optimizer states copied in before training starts)
// that must show up in residency and capacity accounting but not in any
// queue, link, or device timeline.
func (b *tierBase) Preload(id TensorID, n units.Bytes) {
	b.store.WriteSize(id, n)
}

// writeBlock records the payload (or its size) in the block store.
func (b *tierBase) writeBlock(id TensorID, t *tensor.Tensor, n units.Bytes) {
	if data := t.Storage().Data(); data != nil {
		b.store.WriteFile(id, data)
	} else {
		b.store.WriteSize(id, n)
	}
}

// SSDOffloader implements the GDS path: GPU → PCIe → RAID0 NVMe array
// with no host bounce (§II-D). Registered storages (the CUDA-malloc-hook
// path) move at the full bottleneck bandwidth; unregistered ones fall back
// to the derated compatibility path.
type SSDOffloader struct {
	tierBase
	link     *pcie.Link
	array    *ssd.Array
	registry *gds.Registry
	// faults, when armed, degrades or refuses transfers as a function of
	// their computed start time. nil (the default) is the healthy path:
	// Store/Load keep their exact fault-free arithmetic.
	faults *faults.Controller

	// SharedArray marks a secondary tier over an array another tier owns
	// (the optimizer rung sharing the activation rung's NVMe array). The
	// owning tier folds and extrapolates the member devices' cumulative
	// counters — which already include this tier's traffic — so a shared
	// tier must not, or extrapolated wear would double-count.
	SharedArray bool

	// lnSteady/devSteady are the steady-state fold bookkeeping for the GDS
	// link and the member devices (steady.go).
	lnSteady  linkSteady
	devSteady []devSteady
}

// gdsPathRates returns the per-direction effective rates of the GDS
// path: transfers stream through the root complex, so bandwidth is
// min(link, array aggregate) per direction. Shared by construction and
// Reset so a recycled tier can never plan against different rates than a
// fresh one.
func gdsPathRates(link *pcie.Link, array *ssd.Array) (wb, rb units.Bandwidth) {
	wb = link.Effective()
	if aw := array.AggregateWrite(); aw < wb {
		wb = aw
	}
	rb = link.Effective()
	if ar := array.AggregateRead(); ar < rb {
		rb = ar
	}
	return wb, rb
}

// NewSSDOffloader builds the SSD offloader over a PCIe link and an array.
// The effective rates are the path bottlenecks (gdsPathRates).
func NewSSDOffloader(eng *sim.Engine, name string, link *pcie.Link, array *ssd.Array, registry *gds.Registry) *SSDOffloader {
	if registry == nil {
		registry = gds.NewRegistry()
	}
	wb, rb := gdsPathRates(link, array)
	return &SSDOffloader{
		tierBase: newTierBase(eng, name, link.Config().Latency+10*time.Microsecond, wb, rb),
		link:     link,
		array:    array,
		registry: registry,
	}
}

// Registry returns the GDS registration registry.
func (o *SSDOffloader) Registry() *gds.Registry { return o.registry }

// Reset clears the tier for reuse by a new simulation and rebinds the
// member devices to spec — the same (possibly bandwidth-share-derated)
// spec a fresh tier would be constructed with — recomputing the path
// bottleneck rates. The GDS registry is reset too: registrations belong
// to the finished run's storages.
func (o *SSDOffloader) Reset(spec ssd.Spec) {
	for _, d := range o.array.Devices() {
		d.Reset(spec)
	}
	o.array.Reset()
	o.link.Reset()
	o.registry.Reset()
	o.tierBase.reset()
	o.lnSteady = linkSteady{}
	for i := range o.devSteady {
		o.devSteady[i] = devSteady{}
	}
	o.writeBW, o.readBW = gdsPathRates(o.link, o.array)
}

// Arm installs (or, with the empty spec, removes) fault injection for
// the next run. Called once per Execute, after Reset: a reused arena
// whose previous run was faulted must be explicitly disarmed, so
// Session.Execute always calls Arm. The controller is rebuilt fresh each
// time — its wear ledger and death registration are run state.
func (o *SSDOffloader) Arm(spec faults.Spec) {
	if spec.Empty() {
		o.faults = nil
		o.array.SetFaults(nil)
		return
	}
	devs := o.array.Devices()
	dspec := devs[0].Spec()
	budget := ssd.NewArrayWear(dspec, len(devs)).Model.HostWriteBudget()
	steal := spec.RebuildSteal
	if steal == 0 {
		steal = faults.DefaultRebuildSteal
	}
	// Default rebuild time: rewriting one member's capacity with the
	// stolen slice of its sequential-write bandwidth.
	rebuild := faults.DefaultRebuildFor
	if dspec.Capacity > 0 && dspec.SeqWrite > 0 {
		rebuild = time.Duration(float64(dspec.SeqWrite.TimeFor(dspec.Capacity)) / steal)
	}
	o.faults = faults.NewController(spec, len(devs), budget, rebuild)
	o.array.SetFaults(o.faults)
}

// Faults returns the armed controller (nil when healthy).
func (o *SSDOffloader) Faults() *faults.Controller { return o.faults }

// EmitFaultSpans records the run's fault windows on the tier's store
// track, clamped to the measured horizon. Called once after a traced run
// completes — fault windows are known a priori or registered during the
// run, so emitting them post hoc cannot perturb the measurement.
func (o *SSDOffloader) EmitFaultSpans(horizon time.Duration) {
	if o.faults == nil || !o.rec.Enabled() || horizon <= 0 {
		return
	}
	clamp := func(t time.Duration) time.Duration {
		if t > horizon {
			return horizon
		}
		return t
	}
	if from, to, ok := o.faults.DegradeWindow(); ok && from < horizon {
		o.rec.Span(o.storeT, spans.KindFault, -1, "degrade", from, clamp(to), 0, 0)
	}
	if at, restored, failed, ok := o.faults.Death(); ok && at < horizon {
		if failed {
			o.rec.Span(o.storeT, spans.KindFault, -1, "array-failure", at, horizon, 0, 0)
			return
		}
		o.rec.Span(o.storeT, spans.KindFault, -1, "device-death", at, clamp(restored), 0, 0)
		o.rec.Span(o.storeT, spans.KindRebuild, -1, "rebuild", at, clamp(restored), 0, 0)
	}
}

// BlockStore exposes the byte store for verification tests.
func (o *SSDOffloader) BlockStore() *ssd.BlockStore[TensorID] { return o.store }

// Kind implements Tier.
func (o *SSDOffloader) Kind() TierKind { return TierNVMe }

// Capacity implements Tier: the array is effectively unbounded for
// activation working sets (tens of TB vs tens of GB).
func (o *SSDOffloader) Capacity() units.Bytes { return 0 }

// Store implements Offloader.
func (o *SSDOffloader) Store(id TensorID, t *tensor.Tensor, ready time.Duration) (time.Duration, time.Duration, error) {
	n := t.Bytes()
	bw := o.registry.EffectiveBandwidth(t.Storage(), o.writeBW)
	dur := o.latency + bw.TimeFor(n)
	if o.faults != nil {
		// Fault effects are functions of the transfer's start time, which
		// Submit would compute — evaluate it first, refuse on a failed
		// array, and only rewrite dur when degraded so the healthy path's
		// arithmetic (and byte-identity) is untouched.
		at := o.storeQ.StartFor(ready)
		if o.faults.FailedAt(at) {
			return 0, 0, &DeviceFailedError{Tier: o.name, At: at, Op: "store"}
		}
		if f := o.faults.Factor(at); f < 1 {
			dur = o.latency + units.Bandwidth(float64(bw)*f).TimeFor(n)
		}
	}
	finish := o.storeQ.Submit(ready, dur, nil)
	start := finish - dur
	// Account the bytes on the underlying devices and link for
	// utilization and endurance reporting.
	o.array.Write(start, n, nil)
	o.link.Down(start, n, nil)
	o.writeBlock(id, t, n)
	if o.faults != nil {
		o.faults.NoteWrite(float64(n), finish)
	}
	if o.rec.Enabled() {
		name := spanStoreDirect
		if o.registry.PathFor(t.Storage()) == gds.Bounce {
			name = spanStoreBounce
		}
		o.rec.Span(o.storeT, spans.KindStore, -1, name, start, finish, n, id.FlowID())
	}
	return start, finish, nil
}

// Load implements Offloader.
func (o *SSDOffloader) Load(id TensorID, ready time.Duration) (time.Duration, time.Duration, []byte, error) {
	n, ok := o.store.Size(id)
	if !ok {
		return 0, 0, nil, &MissingBlockError{Tier: o.name, ID: id}
	}
	dur := o.latency + o.readBW.TimeFor(n)
	if o.faults != nil {
		at := o.loadQ.StartFor(ready)
		if o.faults.FailedAt(at) {
			// The data went down with the array: a load cannot spill.
			return 0, 0, nil, &DeviceFailedError{Tier: o.name, At: at, Op: "load"}
		}
		if f := o.faults.Factor(at); f < 1 {
			dur = o.latency + units.Bandwidth(float64(o.readBW)*f).TimeFor(n)
		}
	}
	finish := o.loadQ.Submit(ready, dur, nil)
	start := finish - dur
	o.array.Read(start, n, nil)
	o.link.Up(start, n, nil)
	o.rec.Span(o.loadT, spans.KindLoad, -1, spanLoad, start, finish, n, id.FlowID())
	data, _ := o.store.ReadFile(id)
	return start, finish, data, nil
}

var _ Tier = (*SSDOffloader)(nil)

// CPUOffloader targets a pre-allocated pinned host-memory pool over the
// PCIe link — the paper's second offloader, intended for clusters with
// remote SSD storage (§III-A). The pool is sized by profiling the first
// training step.
type CPUOffloader struct {
	tierBase
	link *pcie.Link

	// capacity is the pinned pool size; zero means profiling mode (grow
	// freely and report the peak).
	capacity units.Bytes

	// lnSteady is the steady-state fold bookkeeping for the host DMA link
	// (steady.go).
	lnSteady linkSteady
}

// NewCPUOffloader builds a host-memory offloader. capacity of zero starts
// in profiling mode.
func NewCPUOffloader(eng *sim.Engine, name string, link *pcie.Link, capacity units.Bytes) *CPUOffloader {
	return &CPUOffloader{
		tierBase: newTierBase(eng, name, link.Config().Latency, link.Effective(), link.Effective()),
		link:     link,
		capacity: capacity,
	}
}

// SetCapacity fixes the pool size after profiling.
func (o *CPUOffloader) SetCapacity(n units.Bytes) { o.capacity = n }

// Reset clears the tier for reuse by a new simulation and installs the
// new run's pool capacity (0 returns to profiling mode).
func (o *CPUOffloader) Reset(capacity units.Bytes) {
	o.link.Reset()
	o.tierBase.reset()
	o.lnSteady = linkSteady{}
	o.capacity = capacity
}

// Kind implements Tier.
func (o *CPUOffloader) Kind() TierKind { return TierDRAM }

// Capacity implements Tier: the configured pool size (0 = profiling).
func (o *CPUOffloader) Capacity() units.Bytes { return o.capacity }

// Store implements Offloader.
func (o *CPUOffloader) Store(id TensorID, t *tensor.Tensor, ready time.Duration) (time.Duration, time.Duration, error) {
	n := t.Bytes()
	// Overwrites replace the existing file in place, so the capacity
	// check is against net residency, not the transient double copy.
	used := o.store.Used()
	if prev, ok := o.store.Size(id); ok {
		used -= prev
	}
	if o.capacity > 0 && used+n > o.capacity {
		return 0, 0, &OverflowError{Tier: o.name, Used: used, Need: n, Capacity: o.capacity}
	}
	dur := o.latency + o.link.Effective().TimeFor(n)
	finish := o.storeQ.Submit(ready, dur, nil)
	start := finish - dur
	o.link.Down(start, n, nil)
	o.writeBlock(id, t, n)
	o.rec.Span(o.storeT, spans.KindStore, -1, spanStore, start, finish, n, id.FlowID())
	return start, finish, nil
}

// Load implements Offloader.
func (o *CPUOffloader) Load(id TensorID, ready time.Duration) (time.Duration, time.Duration, []byte, error) {
	n, ok := o.store.Size(id)
	if !ok {
		return 0, 0, nil, &MissingBlockError{Tier: o.name, ID: id}
	}
	dur := o.latency + o.link.Effective().TimeFor(n)
	finish := o.loadQ.Submit(ready, dur, nil)
	start := finish - dur
	o.link.Up(start, n, nil)
	o.rec.Span(o.loadT, spans.KindLoad, -1, spanLoad, start, finish, n, id.FlowID())
	data, _ := o.store.ReadFile(id)
	return start, finish, data, nil
}

var _ Tier = (*CPUOffloader)(nil)
