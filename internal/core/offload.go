package core

import (
	"fmt"
	"time"

	"ssdtrain/internal/gds"
	"ssdtrain/internal/pcie"
	"ssdtrain/internal/sim"
	"ssdtrain/internal/ssd"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// Offloader moves tensor payloads between GPU memory and an offload
// target. Implementations provide two FIFO queues — one for stores, one
// for loads — matching the cache's two thread pools (§III-C2). All times
// are virtual; Store/Load return when the transfer's data is fully on the
// target/GPU.
type Offloader interface {
	// Name identifies the target (e.g. "/mnt/md1").
	Name() string
	// Store writes t to the target under the ID's file name, starting no
	// earlier than ready (the producing kernel's completion). It returns
	// the transfer's start and finish times.
	Store(id TensorID, t *tensor.Tensor, ready time.Duration) (start, finish time.Duration)
	// Load reads the file back, starting no earlier than ready; it
	// returns the transfer's start and finish times plus the payload
	// (nil for size-only stores).
	Load(id TensorID, ready time.Duration) (start, finish time.Duration, data []byte)
	// Delete removes the file (idempotent).
	Delete(id TensorID)
	// WriteBandwidth/ReadBandwidth expose the nominal path rates for
	// offload planning (Fig 3).
	WriteBandwidth() units.Bandwidth
	ReadBandwidth() units.Bandwidth
	// BytesWritten/BytesRead are cumulative host-visible transfer totals.
	BytesWritten() units.Bytes
	BytesRead() units.Bytes
	// PeakResident is the high-water mark of bytes live on the target.
	PeakResident() units.Bytes
}

// SSDOffloader implements the GDS path: GPU → PCIe → RAID0 NVMe array
// with no host bounce (§II-D). Registered storages (the CUDA-malloc-hook
// path) move at the full bottleneck bandwidth; unregistered ones fall back
// to the derated compatibility path.
type SSDOffloader struct {
	name     string
	link     *pcie.Link
	array    *ssd.Array
	store    *ssd.BlockStore[TensorID]
	registry *gds.Registry

	// storeQ and loadQ are the two FIFO "thread pool" queues.
	storeQ *sim.Server
	loadQ  *sim.Server

	writeBW units.Bandwidth
	readBW  units.Bandwidth
	latency time.Duration
}

// NewSSDOffloader builds the SSD offloader over a PCIe link and an array.
// The effective rates are the path bottlenecks: GDS transfers stream
// through the root complex, so bandwidth is min(link, array) per
// direction.
func NewSSDOffloader(eng *sim.Engine, name string, link *pcie.Link, array *ssd.Array, registry *gds.Registry) *SSDOffloader {
	if registry == nil {
		registry = gds.NewRegistry()
	}
	wb := link.Effective()
	if aw := array.AggregateWrite(); aw < wb {
		wb = aw
	}
	rb := link.Effective()
	if ar := array.AggregateRead(); ar < rb {
		rb = ar
	}
	return &SSDOffloader{
		name:     name,
		link:     link,
		array:    array,
		store:    ssd.NewBlockStore[TensorID](),
		registry: registry,
		storeQ:   sim.NewServer(eng, name+".storeq"),
		loadQ:    sim.NewServer(eng, name+".loadq"),
		writeBW:  wb,
		readBW:   rb,
		latency:  link.Config().Latency + 10*time.Microsecond,
	}
}

// Name implements Offloader.
func (o *SSDOffloader) Name() string { return o.name }

// Registry returns the GDS registration registry.
func (o *SSDOffloader) Registry() *gds.Registry { return o.registry }

// BlockStore exposes the byte store for verification tests.
func (o *SSDOffloader) BlockStore() *ssd.BlockStore[TensorID] { return o.store }

// Store implements Offloader.
func (o *SSDOffloader) Store(id TensorID, t *tensor.Tensor, ready time.Duration) (time.Duration, time.Duration) {
	n := t.Bytes()
	bw := o.registry.EffectiveBandwidth(t.Storage(), o.writeBW)
	dur := o.latency + bw.TimeFor(n)
	finish := o.storeQ.Submit(ready, dur, nil)
	start := finish - dur
	// Account the bytes on the underlying devices and link for
	// utilization and endurance reporting.
	o.array.Write(start, n, nil)
	o.link.Down(start, n, nil)
	if data := t.Storage().Data(); data != nil {
		o.store.WriteFile(id, data)
	} else {
		o.store.WriteSize(id, n)
	}
	return start, finish
}

// Load implements Offloader.
func (o *SSDOffloader) Load(id TensorID, ready time.Duration) (time.Duration, time.Duration, []byte) {
	n, ok := o.store.Size(id)
	if !ok {
		panic(fmt.Sprintf("core: load of missing offload file %s", o.pathOf(id)))
	}
	dur := o.latency + o.readBW.TimeFor(n)
	finish := o.loadQ.Submit(ready, dur, nil)
	start := finish - dur
	o.array.Read(start, n, nil)
	o.link.Up(start, n, nil)
	data, _ := o.store.ReadFile(id)
	return start, finish, data
}

// Delete implements Offloader.
func (o *SSDOffloader) Delete(id TensorID) { o.store.Delete(id) }

// pathOf renders the paper-style diagnostic path ("/mnt/md1/t1.pt");
// the hot path keys the store by TensorID and never builds it.
func (o *SSDOffloader) pathOf(id TensorID) string {
	return o.name + "/" + id.FileName()
}

// WriteBandwidth implements Offloader.
func (o *SSDOffloader) WriteBandwidth() units.Bandwidth { return o.writeBW }

// ReadBandwidth implements Offloader.
func (o *SSDOffloader) ReadBandwidth() units.Bandwidth { return o.readBW }

// BytesWritten implements Offloader.
func (o *SSDOffloader) BytesWritten() units.Bytes { return o.store.Written() }

// BytesRead implements Offloader.
func (o *SSDOffloader) BytesRead() units.Bytes { return o.store.Read() }

// PeakResident implements Offloader.
func (o *SSDOffloader) PeakResident() units.Bytes { return o.store.PeakUsed() }

// StoreDrainTime returns when the store queue's backlog finishes.
func (o *SSDOffloader) StoreDrainTime() time.Duration { return o.storeQ.BusyUntil() }

var _ Offloader = (*SSDOffloader)(nil)

// CPUOffloader targets a pre-allocated pinned host-memory pool over the
// PCIe link — the paper's second offloader, intended for clusters with
// remote SSD storage (§III-A). The pool is sized by profiling the first
// training step.
type CPUOffloader struct {
	name  string
	link  *pcie.Link
	store *ssd.BlockStore[TensorID]

	storeQ *sim.Server
	loadQ  *sim.Server

	latency time.Duration

	// capacity is the pinned pool size; zero means profiling mode (grow
	// freely and report the peak).
	capacity units.Bytes
}

// NewCPUOffloader builds a host-memory offloader. capacity of zero starts
// in profiling mode.
func NewCPUOffloader(eng *sim.Engine, name string, link *pcie.Link, capacity units.Bytes) *CPUOffloader {
	return &CPUOffloader{
		name:     name,
		link:     link,
		store:    ssd.NewBlockStore[TensorID](),
		storeQ:   sim.NewServer(eng, name+".storeq"),
		loadQ:    sim.NewServer(eng, name+".loadq"),
		latency:  link.Config().Latency,
		capacity: capacity,
	}
}

// Name implements Offloader.
func (o *CPUOffloader) Name() string { return o.name }

// SetCapacity fixes the pool size after profiling.
func (o *CPUOffloader) SetCapacity(n units.Bytes) { o.capacity = n }

// Capacity returns the configured pool size (0 = profiling).
func (o *CPUOffloader) Capacity() units.Bytes { return o.capacity }

// Store implements Offloader.
func (o *CPUOffloader) Store(id TensorID, t *tensor.Tensor, ready time.Duration) (time.Duration, time.Duration) {
	n := t.Bytes()
	if o.capacity > 0 && o.store.Used()+n > o.capacity {
		panic(fmt.Sprintf("core: pinned pool overflow: %v used + %v > %v capacity (re-profile the first step)",
			o.store.Used(), n, o.capacity))
	}
	dur := o.latency + o.link.Effective().TimeFor(n)
	finish := o.storeQ.Submit(ready, dur, nil)
	start := finish - dur
	o.link.Down(start, n, nil)
	if data := t.Storage().Data(); data != nil {
		o.store.WriteFile(id, data)
	} else {
		o.store.WriteSize(id, n)
	}
	return start, finish
}

// Load implements Offloader.
func (o *CPUOffloader) Load(id TensorID, ready time.Duration) (time.Duration, time.Duration, []byte) {
	n, ok := o.store.Size(id)
	if !ok {
		panic(fmt.Sprintf("core: load of missing pinned buffer %s/%s", o.name, id.FileName()))
	}
	dur := o.latency + o.link.Effective().TimeFor(n)
	finish := o.loadQ.Submit(ready, dur, nil)
	start := finish - dur
	o.link.Up(start, n, nil)
	data, _ := o.store.ReadFile(id)
	return start, finish, data
}

// Delete implements Offloader.
func (o *CPUOffloader) Delete(id TensorID) { o.store.Delete(id) }

// WriteBandwidth implements Offloader.
func (o *CPUOffloader) WriteBandwidth() units.Bandwidth { return o.link.Effective() }

// ReadBandwidth implements Offloader.
func (o *CPUOffloader) ReadBandwidth() units.Bandwidth { return o.link.Effective() }

// BytesWritten implements Offloader.
func (o *CPUOffloader) BytesWritten() units.Bytes { return o.store.Written() }

// BytesRead implements Offloader.
func (o *CPUOffloader) BytesRead() units.Bytes { return o.store.Read() }

// PeakResident implements Offloader.
func (o *CPUOffloader) PeakResident() units.Bytes { return o.store.PeakUsed() }

var _ Offloader = (*CPUOffloader)(nil)
