package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"ssdtrain/internal/spans"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// placeCounter names the flight-recorder counter for a placement decision.
// The hierarchy has no timestamp of its own (routing is instantaneous), so
// placement is reported as counters rather than spans.
func placeCounter(k TierKind) string {
	if k == TierDRAM {
		return "tiered.place.dram"
	}
	return "tiered.place.nvme"
}

// StackView is a placement policy's read-only view of the hierarchy: the
// ordered tier stack (fastest first, by convention DRAM before NVMe) and
// the cumulative bytes the hierarchy has routed to each tier.
type StackView struct {
	Tiers  []Tier
	Placed []units.Bytes
}

// fits reports whether tier i can absorb n more bytes right now.
func (v StackView) fits(i int, n units.Bytes) bool {
	t := v.Tiers[i]
	cap := t.Capacity()
	return cap == 0 || t.Used()+n <= cap
}

// PlacementPolicy routes each stored tensor to one tier of the stack.
// Policies are consulted once per store, see the live stack state, and
// must be deterministic — the simulator's byte-identical replays depend
// on it.
type PlacementPolicy interface {
	// Name identifies the policy (e.g. "dram-first").
	Name() string
	// Place returns the index of the tier that should hold a tensor of n
	// bytes. Returning an index whose tier cannot hold the tensor makes
	// the store fail with that tier's error.
	Place(v StackView, n units.Bytes) int
}

// ssdOnlyPolicy is the paper's placement: everything goes to the NVMe
// array, ignoring any DRAM rungs in the stack.
type ssdOnlyPolicy struct{}

func (ssdOnlyPolicy) Name() string { return "ssd-only" }

func (ssdOnlyPolicy) Place(v StackView, n units.Bytes) int {
	for i := len(v.Tiers) - 1; i >= 0; i-- {
		if v.Tiers[i].Kind() == TierNVMe {
			return i
		}
	}
	return len(v.Tiers) - 1
}

// SSDOnlyPolicy returns the paper's NVMe-only placement.
func SSDOnlyPolicy() PlacementPolicy { return ssdOnlyPolicy{} }

// dramFirstPolicy fills the stack front to back: each tensor lands on the
// first tier with room, spilling overflow to the next rung (the
// 10Cache/ZeRO-Offload posture: DRAM is the first rung, NVMe absorbs the
// overflow).
type dramFirstPolicy struct{}

func (dramFirstPolicy) Name() string { return "dram-first" }

func (dramFirstPolicy) Place(v StackView, n units.Bytes) int {
	for i := range v.Tiers {
		if v.fits(i, n) {
			return i
		}
	}
	return len(v.Tiers) - 1
}

// DRAMFirstPolicy returns the fill-first placement.
func DRAMFirstPolicy() PlacementPolicy { return dramFirstPolicy{} }

// splitPolicy routes tensors so the first tier holds roughly the target
// fraction of all placed bytes, keeping both PCIe paths (host DMA and
// GDS) busy in proportion. A greedy balance against the running totals is
// deterministic and needs no global knowledge of the step's volume.
type splitPolicy struct {
	frac float64
}

func (p splitPolicy) Name() string { return fmt.Sprintf("split(%.2f)", p.frac) }

func (p splitPolicy) Place(v StackView, n units.Bytes) int {
	if len(v.Tiers) == 1 {
		return 0
	}
	var total units.Bytes
	for _, b := range v.Placed {
		total += b
	}
	// Placing n on tier 0 keeps its share at or below the target only if
	// (placed0 + n) ≤ frac · (total + n); otherwise tier 1+ absorbs it.
	if float64(v.Placed[0]+n) <= p.frac*float64(total+n) && v.fits(0, n) {
		return 0
	}
	for i := 1; i < len(v.Tiers); i++ {
		if v.fits(i, n) {
			return i
		}
	}
	return len(v.Tiers) - 1
}

// SplitPolicy returns a placement that routes the given fraction of
// placed bytes to the first tier and the remainder down the stack.
func SplitPolicy(frac float64) PlacementPolicy {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return splitPolicy{frac: frac}
}

// placement records where an ID lives and how big it is.
type placement struct {
	tier int
	size units.Bytes
}

// TieredOffloader composes an ordered stack of tiers under a placement
// policy, presenting them to the tensor cache as one Offloader. Each
// store consults the policy, each load and delete routes to the tier
// that holds the ID, and accounting aggregates across the stack. A
// one-tier stack is a zero-cost adapter: every call forwards to the tier
// unchanged, which is what keeps the paper's single-target strategies
// byte-identical when expressed as degenerate stacks.
type TieredOffloader struct {
	name   string
	tiers  []Tier
	policy PlacementPolicy

	where  map[TensorID]placement
	placed []units.Bytes

	used units.Bytes
	peak units.Bytes

	rec *spans.Recorder

	// steadyPlaced/steadyDPlaced are the steady-state fold bookkeeping for
	// the per-tier routing totals (steady.go).
	steadyPlaced  []units.Bytes
	steadyDPlaced []units.Bytes
}

// NewTieredOffloader builds a hierarchy over the given tier stack
// (fastest rung first). The stack must not be empty.
func NewTieredOffloader(policy PlacementPolicy, tiers ...Tier) *TieredOffloader {
	if len(tiers) == 0 {
		panic("core: tiered offloader needs at least one tier")
	}
	if policy == nil {
		policy = DRAMFirstPolicy()
	}
	names := make([]string, len(tiers))
	for i, t := range tiers {
		names[i] = t.Name()
	}
	return &TieredOffloader{
		name:   "tiered(" + strings.Join(names, ",") + ")",
		tiers:  tiers,
		policy: policy,
		where:  make(map[TensorID]placement),
		placed: make([]units.Bytes, len(tiers)),
	}
}

// Reset rebinds the hierarchy to a (possibly different) tier stack and
// policy and clears all placement state for reuse by a new simulation.
// A recycled arena owns one offloader whose stack composition can change
// between runs (a dram-first hybrid with zero DRAM grant degenerates to
// NVMe-only), so the stack is an argument rather than construction-fixed.
// The member tiers are reset separately by their owner. Map buckets and
// slice capacity are retained; the diagnostic name is rebuilt only when
// the stack actually changed.
func (o *TieredOffloader) Reset(policy PlacementPolicy, tiers ...Tier) {
	if len(tiers) == 0 {
		panic("core: tiered offloader needs at least one tier")
	}
	if policy == nil {
		policy = DRAMFirstPolicy()
	}
	if !sameTiers(o.tiers, tiers) {
		o.tiers = append(o.tiers[:0], tiers...)
		names := make([]string, len(tiers))
		for i, t := range tiers {
			names[i] = t.Name()
		}
		o.name = "tiered(" + strings.Join(names, ",") + ")"
	}
	o.policy = policy
	clear(o.where)
	if cap(o.placed) >= len(o.tiers) {
		o.placed = o.placed[:len(o.tiers)]
		for i := range o.placed {
			o.placed[i] = 0
		}
	} else {
		o.placed = make([]units.Bytes, len(o.tiers))
	}
	o.used, o.peak = 0, 0
	o.steadyPlaced = o.steadyPlaced[:0]
	o.steadyDPlaced = o.steadyDPlaced[:0]
}

// sameTiers reports whether the stacks hold the same tiers in order.
func sameTiers(a, b []Tier) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SetRecorder attaches the flight recorder placement counters are
// reported to. Like tier wiring, the recorder survives Reset.
func (o *TieredOffloader) SetRecorder(rec *spans.Recorder) { o.rec = rec }

// Name implements Offloader.
func (o *TieredOffloader) Name() string { return o.name }

// Policy returns the active placement policy.
func (o *TieredOffloader) Policy() PlacementPolicy { return o.policy }

// Tiers returns the ordered tier stack.
func (o *TieredOffloader) Tiers() []Tier { return o.tiers }

// TierOf reports which tier holds the ID (-1 if none).
func (o *TieredOffloader) TierOf(id TensorID) int {
	p, ok := o.where[id]
	if !ok {
		return -1
	}
	return p.tier
}

// PlacedBytes returns cumulative bytes routed to each tier.
func (o *TieredOffloader) PlacedBytes() []units.Bytes {
	out := make([]units.Bytes, len(o.placed))
	copy(out, o.placed)
	return out
}

// Store implements Offloader: route the tensor to the policy's tier.
// Re-storing a live ID overwrites it; the old copy is dropped only once
// the new store succeeded, so a refused store leaves the previous data
// loadable (the error contract the cache relies on).
func (o *TieredOffloader) Store(id TensorID, t *tensor.Tensor, ready time.Duration) (time.Duration, time.Duration, error) {
	n := t.Bytes()
	i := o.policy.Place(StackView{Tiers: o.tiers, Placed: o.placed}, n)
	if i < 0 || i >= len(o.tiers) {
		return 0, 0, fmt.Errorf("core: policy %s placed %v outside the %d-tier stack", o.policy.Name(), id, len(o.tiers))
	}
	start, finish, err := o.tiers[i].Store(id, t, ready)
	if err != nil {
		// A failed device is a survivable event when another rung has
		// room: re-place the tensor on the first surviving tier that fits
		// (stack order). Overflow and other errors keep their existing
		// contract — only device failure spills.
		var df *DeviceFailedError
		if !errors.As(err, &df) {
			return 0, 0, err
		}
		for j := range o.tiers {
			if j == i || !(StackView{Tiers: o.tiers, Placed: o.placed}).fits(j, n) {
				continue
			}
			if start, finish, err = o.tiers[j].Store(id, t, ready); err == nil {
				i = j
				break
			}
		}
		if err != nil {
			return 0, 0, err
		}
		o.rec.Count("tiered.spill", 1)
	}
	o.rec.Count(placeCounter(o.tiers[i].Kind()), 1)
	if prev, ok := o.where[id]; ok {
		// Same tier: its block store already overwrote the file in place.
		if prev.tier != i {
			o.tiers[prev.tier].Delete(id)
		}
		o.used -= prev.size
	}
	o.where[id] = placement{tier: i, size: n}
	o.placed[i] += n
	o.used += n
	if o.used > o.peak {
		o.peak = o.used
	}
	return start, finish, nil
}

// Load implements Offloader: route to the tier that holds the ID.
func (o *TieredOffloader) Load(id TensorID, ready time.Duration) (time.Duration, time.Duration, []byte, error) {
	p, ok := o.where[id]
	if !ok {
		return 0, 0, nil, &MissingBlockError{Tier: o.name, ID: id}
	}
	return o.tiers[p.tier].Load(id, ready)
}

// Delete implements Offloader.
func (o *TieredOffloader) Delete(id TensorID) {
	p, ok := o.where[id]
	if !ok {
		return
	}
	o.tiers[p.tier].Delete(id)
	o.used -= p.size
	delete(o.where, id)
}

// WriteBandwidth implements Offloader: the aggregate store-path rate of
// the stack (the rungs drain over independent PCIe paths).
func (o *TieredOffloader) WriteBandwidth() units.Bandwidth {
	var sum units.Bandwidth
	for _, t := range o.tiers {
		sum += t.WriteBandwidth()
	}
	return sum
}

// ReadBandwidth implements Offloader: the aggregate load-path rate.
func (o *TieredOffloader) ReadBandwidth() units.Bandwidth {
	var sum units.Bandwidth
	for _, t := range o.tiers {
		sum += t.ReadBandwidth()
	}
	return sum
}

// BytesWritten implements Offloader.
func (o *TieredOffloader) BytesWritten() units.Bytes {
	var sum units.Bytes
	for _, t := range o.tiers {
		sum += t.BytesWritten()
	}
	return sum
}

// BytesRead implements Offloader.
func (o *TieredOffloader) BytesRead() units.Bytes {
	var sum units.Bytes
	for _, t := range o.tiers {
		sum += t.BytesRead()
	}
	return sum
}

// PeakResident implements Offloader: the high-water mark of bytes live
// across the whole stack (not the sum of per-tier peaks, which can
// overcount when rungs peak at different times).
func (o *TieredOffloader) PeakResident() units.Bytes {
	if len(o.tiers) == 1 {
		return o.tiers[0].PeakResident()
	}
	return o.peak
}

var _ Offloader = (*TieredOffloader)(nil)
