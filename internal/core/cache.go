package core

import (
	"fmt"
	"time"

	"ssdtrain/internal/autograd"
	"ssdtrain/internal/gpu"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// Config configures the tensor cache.
type Config struct {
	Runtime   *autograd.Runtime
	Offloader Offloader
	// Budget bounds the bytes submitted for offload per micro-batch
	// (Alg. 1's is_offload_amount_reached); 0 means unlimited. Use
	// PlanBudget to derive it from the Fig 3 workflow inputs.
	Budget units.Bytes
	// MinElems is the small-tensor passthrough threshold in elements
	// (Alg. 1 line 2: math.prod(t.size()) < 2**20).
	MinElems int64
	// HostCost is the CPU time per hook invocation, charged to host time.
	HostCost time.Duration
	// PrefetchAhead is how many upcoming modules to prefetch when entering
	// a module's backward (§III-C2). 0 selects the default: prefetch every
	// known module, keeping the load queue busy end-to-end (the paper
	// notes any scheme works "as long as there are always I/O tasks in
	// the GPU job queue to keep PCIe busy"). Negative disables
	// prefetching entirely (ablation: every reload becomes a demand load).
	PrefetchAhead int
	// KeepLastModules keeps the activations of the last K forward modules
	// in GPU memory (Fig 2 ④); the module list is learned from the
	// previous micro-batch's forward order.
	KeepLastModules int
	// Verify checks payload checksums on reload (requires materialized
	// tensors).
	Verify bool
	// NoForwarding disables §III-C2 data forwarding (ablation): unpacking
	// a tensor whose store is still in flight waits for the store and
	// reads it back from the target instead of using the in-memory copy.
	NoForwarding bool
	// NoDedup disables §III-C1 deduplication (ablation): every pack gets
	// its own record and its own I/O, as with address-based identifiers.
	NoDedup bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MinElems == 0 {
		c.MinElems = 1 << 20
	}
	if c.HostCost == 0 {
		c.HostCost = 15 * time.Microsecond
	}
	if c.PrefetchAhead == 0 {
		c.PrefetchAhead = 1 << 30 // prefetch everything known
	}
	if c.PrefetchAhead < 0 {
		c.PrefetchAhead = 0 // ablation: no prefetch
	}
	return c
}

// record tracks one saved tensor's cache state — the in-memory structure
// of §III-B ("manages the references to all activations and tracks
// activations' states, including if they are being offloaded, the path in
// the file system, etc.").
type record struct {
	id    TensorID
	mb    int
	bytes units.Bytes
	scope *autograd.Module

	// t is the original tensor; the cache holds a strong reference while
	// the tensor is kept, being stored, or forwarded.
	t *tensor.Tensor

	offloaded   bool
	storeStart  time.Duration
	storeFinish time.Duration
	// released marks the original reference as dropped (store completed
	// and ownership handed to garbage collection).
	released bool

	forwarded bool

	loading    bool
	loadStart  time.Duration
	loadFinish time.Duration
	loaded     *tensor.Tensor

	refs     int // pack registrations (dedup makes this >1)
	consumed int

	checksum uint32

	// self is the record's boxed handle, created once and reused for every
	// Pack return while the record lives (including recycled lives) — the
	// interface conversion would otherwise allocate on every registration.
	self autograd.Packed
}

// handleOf returns the record's boxed handle, boxing on first use.
func (r *record) handleOf() autograd.Packed {
	if r.self == nil {
		r.self = handle{r}
	}
	return r.self
}

// handle is what the cache returns from Pack in place of the tensor — the
// identifier registered on the computation graph.
type handle struct{ rec *record }

// StepIO summarizes the cache's traffic for one step.
type StepIO struct {
	Offloaded units.Bytes
	Kept      units.Bytes
	Forwarded units.Bytes
	Reloaded  units.Bytes
	Packs     int64
	DedupHits int64
	Leaked    int64
}

// TensorCache is SSDTrain's central component: an autograd.Hooks
// implementation that manages activation offloading and reloading.
type TensorCache struct {
	cfg Config
	rt  *autograd.Runtime
	off Offloader
	ids *IDSource

	weightStamps map[int64]bool

	// Per-micro-batch state (the paper's per-micro-batch records, ② in
	// Fig 2).
	curMB       int
	recs        map[TensorID]*record
	byModule    map[*autograd.Module][]*record
	moduleOrder []*autograd.Module
	moduleIndex map[*autograd.Module]int
	offloadedMB units.Bytes

	// stepRecs accumulates all records of the step for the end-of-step
	// sweep.
	stepRecs []map[TensorID]*record

	// keepLast marks modules whose activations stay in GPU memory,
	// learned from the previous forward order.
	keepLast  map[*autograd.Module]bool
	prevOrder []*autograd.Module
	// spareOrder is the retired forward-order buffer prevOrder displaced;
	// the next micro-batch records into it, so order tracking rotates
	// through two buffers instead of allocating one per micro-batch.
	spareOrder []*autograd.Module

	// Recycling pools: every step churns through the same population of
	// records, per-micro-batch record maps and reload buffers, so the
	// end-of-step sweep returns them here instead of to the garbage
	// collector and the steady-state step allocates (almost) nothing.
	recPool  []*record
	freeRecs []map[TensorID]*record
	reloads  map[reloadKey][]*tensor.Tensor

	scopeStack []*autograd.Module
	inBackward bool
	dedupSalt  int64

	cur    StepIO
	last   StepIO
	totals StepIO

	// err is the first offload error the cache hit; the step completes
	// with degraded placement and the harness surfaces the error at the
	// step boundary.
	err error
}

// NewTensorCache builds a cache bound to a runtime and an offloader.
func NewTensorCache(cfg Config) *TensorCache {
	cfg = cfg.withDefaults()
	if cfg.Runtime == nil || cfg.Offloader == nil {
		panic("core: cache requires a runtime and an offloader")
	}
	return &TensorCache{
		cfg:          cfg,
		rt:           cfg.Runtime,
		off:          cfg.Offloader,
		ids:          NewIDSource(),
		weightStamps: make(map[int64]bool),
		keepLast:     make(map[*autograd.Module]bool),
		byModule:     make(map[*autograd.Module][]*record),
		moduleIndex:  make(map[*autograd.Module]int),
		reloads:      make(map[reloadKey][]*tensor.Tensor),
	}
}

// Reset rewinds the cache for a new measurement on a recycled arena under
// a freshly planned offload budget. All per-run state — records, module
// orders, the learned keep-last set, error latches, I/O totals, the stamp
// clock and the registered weight set — returns to the just-constructed
// state; the recycling pools and map buckets survive, which is what makes
// a reused cache cheaper than a new one. The caller must have reset the
// previously stamped storages in place (the ID clock restarts) and must
// re-register the run's weights afterwards.
func (c *TensorCache) Reset(budget units.Bytes) {
	c.recycleStepState()
	c.cfg.Budget = budget
	c.ids.Reset()
	clear(c.weightStamps)
	c.curMB = 0
	clear(c.moduleIndex)
	if cap(c.moduleOrder) > cap(c.spareOrder) {
		c.spareOrder = c.moduleOrder[:0]
	}
	if cap(c.prevOrder) > cap(c.spareOrder) {
		c.spareOrder = c.prevOrder[:0]
	}
	c.moduleOrder, c.prevOrder = nil, nil
	c.offloadedMB = 0
	clear(c.keepLast)
	c.scopeStack = c.scopeStack[:0]
	c.inBackward = false
	c.dedupSalt = 0
	c.cur, c.last, c.totals = StepIO{}, StepIO{}, StepIO{}
	c.err = nil
}

// RegisterWeights records the identifiers of all parameters (and, via the
// shared storage stamp, their transposed views) before training, so the
// pack hook can exclude them (§III-C1).
func (c *TensorCache) RegisterWeights(ws []*tensor.Tensor) {
	for _, w := range ws {
		id := c.ids.GetID(w)
		c.weightStamps[id.Stamp] = true
	}
}

// isWeight reports whether the tensor is a registered parameter or view.
func (c *TensorCache) isWeight(t *tensor.Tensor) bool {
	if t.IsWeight() {
		return true
	}
	if s := t.Storage().Stamp(); s != 0 {
		return c.weightStamps[s]
	}
	return false
}

func (c *TensorCache) curScope() *autograd.Module {
	if len(c.scopeStack) == 0 {
		return nil
	}
	return c.scopeStack[len(c.scopeStack)-1]
}

// Phase implements autograd.Hooks: the scheduler hints (③④ in Fig 2).
func (c *TensorCache) Phase(ev autograd.PhaseEvent, mb int, hostNow time.Duration) {
	switch ev {
	case autograd.PhaseStepStart:
		c.cur = StepIO{}
		c.stepRecs = c.stepRecs[:0]
	case autograd.PhaseForward:
		// Micro-batch switch (② in Fig 2): fresh record set. Maps and
		// order buffers are recycled, not reallocated — the step's record
		// population is the same every iteration.
		c.inBackward = false
		c.curMB = mb
		if c.recs != nil {
			c.stepRecs = append(c.stepRecs, c.recs)
		}
		c.recs = c.popRecMap()
		for m, rs := range c.byModule {
			c.byModule[m] = rs[:0]
		}
		clear(c.moduleIndex)
		c.moduleOrder = c.spareOrder[:0]
		c.spareOrder = nil
		c.offloadedMB = 0
		// Learn the keep-last set from the previous forward order.
		clear(c.keepLast)
		for i := 0; i < c.cfg.KeepLastModules && i < len(c.prevOrder); i++ {
			c.keepLast[c.prevOrder[len(c.prevOrder)-1-i]] = true
		}
	case autograd.PhaseBackward:
		c.inBackward = true
		// The displaced previous order becomes the next micro-batch's
		// recording buffer; keepLast above reads prevOrder before the swap
		// ever reuses it.
		c.spareOrder = c.prevOrder[:0]
		c.prevOrder = c.moduleOrder
	case autograd.PhaseStepEnd:
		c.sweep(hostNow)
	}
}

// popRecMap returns a cleared record map from the pool, or a fresh one.
func (c *TensorCache) popRecMap() map[TensorID]*record {
	if n := len(c.freeRecs); n > 0 {
		m := c.freeRecs[n-1]
		c.freeRecs[n-1] = nil
		c.freeRecs = c.freeRecs[:n-1]
		return m
	}
	return make(map[TensorID]*record)
}

// newRecord returns a zeroed record from the pool, or a fresh one.
func (c *TensorCache) newRecord() *record {
	if n := len(c.recPool); n > 0 {
		rec := c.recPool[n-1]
		c.recPool[n-1] = nil
		c.recPool = c.recPool[:n-1]
		return rec
	}
	return &record{}
}

// recycleRecord zeroes a fully processed record and pools it, salvaging
// its reload buffer and boxed handle for the next step.
func (c *TensorCache) recycleRecord(rec *record) {
	if rec.loaded != nil {
		c.poolReload(rec.loaded)
	}
	self := rec.self
	*rec = record{self: self}
	c.recPool = append(c.recPool, rec)
}

// reloadKey indexes the reload-buffer pool by tensor geometry; the pooled
// tensor's shape is verified on pop, so a hash collision degrades to an
// allocation, never to a wrong buffer.
type reloadKey struct {
	shape uint64
	dtype tensor.DType
}

// poolReload returns a released reload buffer to the pool.
func (c *TensorCache) poolReload(buf *tensor.Tensor) {
	k := reloadKey{shape: buf.Shape().Hash(), dtype: buf.DType()}
	c.reloads[k] = append(c.reloads[k], buf)
}

// newReload returns a reload buffer shaped like t: a recycled buffer with
// its storage re-zeroed when one fits, a fresh allocation otherwise. A
// recycled buffer keeps the diagnostic name of its first life; everything
// the simulation observes — storage size, shape, dtype, payload — is
// indistinguishable from a fresh buffer.
func (c *TensorCache) newReload(t *tensor.Tensor) *tensor.Tensor {
	k := reloadKey{shape: t.Shape().Hash(), dtype: t.DType()}
	if pool := c.reloads[k]; len(pool) > 0 {
		buf := pool[len(pool)-1]
		if buf.Shape().Equal(t.Shape()) {
			pool[len(pool)-1] = nil
			c.reloads[k] = pool[:len(pool)-1]
			buf.Storage().ResetForReuse()
			return buf
		}
	}
	return tensor.New(t.Name()+".reload", t.Shape(), t.DType(), tensor.GPU)
}

// recycleStepState drains any outstanding per-step record maps into the
// pools without leak accounting (used by Reset after an aborted run; the
// end-of-step sweep recycles inline with its leak pass).
func (c *TensorCache) recycleStepState() {
	maps := c.stepRecs
	if c.recs != nil {
		maps = append(maps, c.recs)
	}
	for _, m := range maps {
		for _, rec := range m {
			c.recycleRecord(rec)
		}
		clear(m)
		c.freeRecs = append(c.freeRecs, m)
	}
	c.stepRecs = c.stepRecs[:0]
	c.recs = nil
}

// ForwardPre implements autograd.Hooks: push the module scope and record
// the forward order.
func (c *TensorCache) ForwardPre(m *autograd.Module, hostNow time.Duration) {
	c.scopeStack = append(c.scopeStack, m)
	if _, ok := c.moduleIndex[m]; !ok {
		c.moduleIndex[m] = len(c.moduleOrder)
		c.moduleOrder = append(c.moduleOrder, m)
	}
}

// ForwardPost implements autograd.Hooks: pop the module scope.
func (c *TensorCache) ForwardPost(m *autograd.Module, hostNow time.Duration) {
	c.popScope(m)
}

func (c *TensorCache) popScope(m *autograd.Module) {
	if n := len(c.scopeStack); n > 0 && c.scopeStack[n-1] == m {
		c.scopeStack = c.scopeStack[:n-1]
	}
}

// BackwardPre implements autograd.Hooks: entering a module's backward
// triggers prefetching of the upcoming modules' activations in reverse
// forward order (⑤ in Fig 2).
func (c *TensorCache) BackwardPre(m *autograd.Module, hostNow time.Duration) {
	c.scopeStack = append(c.scopeStack, m)
	idx, ok := c.moduleIndex[m]
	if !ok {
		return
	}
	for k := 1; k <= c.cfg.PrefetchAhead; k++ {
		j := idx - k
		if j < 0 {
			break
		}
		// Within a module, backward consumes tensors in reverse pack
		// order, so loads are issued in reverse too: the first-needed
		// tensor leads the FIFO queue.
		recs := c.byModule[c.moduleOrder[j]]
		for i := len(recs) - 1; i >= 0; i-- {
			c.prefetch(recs[i], hostNow)
		}
	}
}

// BackwardPost implements autograd.Hooks.
func (c *TensorCache) BackwardPost(m *autograd.Module, hostNow time.Duration) {
	c.popScope(m)
}

// prefetch brings one offloaded record on the way back to GPU memory: if
// the store is still in flight the in-memory reference is forwarded
// instead of reading the SSD (§III-C2's data forwarding).
func (c *TensorCache) prefetch(rec *record, hostNow time.Duration) {
	if !rec.offloaded || rec.forwarded || rec.loading {
		return
	}
	if hostNow < rec.storeFinish {
		if c.cfg.NoForwarding {
			// Ablation: wait out the store, then read it back.
			c.issueLoad(rec, rec.storeFinish)
			return
		}
		c.forward(rec)
		return
	}
	c.issueLoad(rec, hostNow)
}

// forward marks a record as served from its in-flight in-memory copy.
func (c *TensorCache) forward(rec *record) {
	rec.forwarded = true
	c.cur.Forwarded += rec.bytes
	c.rt.Counters.Add("cache.forward_hits", 1)
}

// fail records the first offload error; later errors are usually
// cascades of the first.
func (c *TensorCache) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Err returns the first store/load error the cache hit (nil when the
// step's I/O all succeeded).
func (c *TensorCache) Err() error { return c.err }

// issueLoad starts the SSD read and allocates the reload buffer. The
// original reference is dropped as of the store's completion.
func (c *TensorCache) issueLoad(rec *record, ready time.Duration) {
	c.releaseOriginal(rec)
	start, finish, data, err := c.off.Load(rec.id, ready)
	if err != nil {
		// The target lost the block (an executor or offloader bug): record
		// the error and synthesize an instant load so the step can finish
		// deterministically before the harness aborts the run.
		c.fail(err)
		start, finish, data = ready, ready, nil
		c.rt.Counters.Add("cache.load_errors", 1)
	}
	buf := c.newReload(rec.t)
	if data != nil {
		buf.Storage().SetData(data)
		if c.cfg.Verify {
			if got := buf.Storage().Checksum(); got != rec.checksum {
				panic(fmt.Sprintf("core: reload checksum mismatch for %s: %08x != %08x", rec.id, got, rec.checksum))
			}
		}
	}
	c.rt.Life.Alloc(start, buf.Storage(), gpu.ClassActivations)
	rec.loading = true
	rec.loadStart, rec.loadFinish = start, finish
	rec.loaded = buf
	c.cur.Reloaded += rec.bytes
	c.rt.Counters.Add("cache.loads", 1)
}

// releaseOriginal drops the cache's reference to the original tensor as of
// the store's completion time.
func (c *TensorCache) releaseOriginal(rec *record) {
	if rec.released {
		return
	}
	rec.released = true
	c.rt.Life.Release(rec.t.Storage(), rec.storeFinish)
}

// Pack implements autograd.Hooks — Alg. 1's pack_hook.
func (c *TensorCache) Pack(t *tensor.Tensor, producedAt, hostNow time.Duration) autograd.Packed {
	c.cur.Packs++
	c.rt.Counters.Add("cache.packs", 1)
	// Early returns (Alg. 1 line 2): weights, CPU tensors, small tensors.
	if t.IsCPU() {
		return t
	}
	if c.isWeight(t) {
		c.rt.Counters.Add("cache.weight_skips", 1)
		return t
	}
	if t.NumElems() < c.cfg.MinElems {
		c.rt.Counters.Add("cache.small_skips", 1)
		return t
	}

	id := c.ids.GetID(t)
	if c.cfg.NoDedup {
		// Ablation: address-style identity — every registration is a new
		// record, so shared storages are stored (and loaded) repeatedly.
		// Real stamps are positive, so a negative per-registration stamp
		// can never collide with a deduplicated ID.
		c.dedupSalt++
		id.Stamp = -c.dedupSalt
	} else if rec, ok := c.recs[id]; ok {
		// Duplicate registration of the same storage+shape: a single
		// record and a single offload I/O (§III-C1).
		rec.refs++
		c.cur.DedupHits++
		c.rt.Counters.Add("cache.dedup_hits", 1)
		return rec.handleOf()
	}

	rec := c.newRecord()
	rec.id = id
	rec.mb = c.curMB
	rec.bytes = t.Bytes()
	rec.scope = c.curScope()
	rec.t = t
	rec.refs = 1
	c.recs[id] = rec
	c.byModule[rec.scope] = append(c.byModule[rec.scope], rec)

	keep := c.inBackward || c.keepLast[rec.scope] ||
		(c.cfg.Budget > 0 && c.offloadedMB >= c.cfg.Budget)
	c.rt.Life.Retain(t.Storage())
	if keep {
		// Alg. 1 line 6: keep_in_gpu_memory.
		c.cur.Kept += rec.bytes
		c.rt.Counters.Add("cache.keeps", 1)
	} else {
		// Alg. 1 line 7: offload. The store cannot begin before the
		// producing kernel finishes.
		checksum := t.Storage().Checksum()
		start, finish, err := c.off.Store(id, t, producedAt)
		if err != nil {
			// The target refused the tensor (e.g. pinned-pool overflow):
			// keep it resident so the step stays consistent, and surface
			// the error at the step boundary.
			c.fail(err)
			c.cur.Kept += rec.bytes
			c.rt.Counters.Add("cache.store_errors", 1)
		} else {
			rec.offloaded = true
			rec.checksum = checksum
			rec.storeStart, rec.storeFinish = start, finish
			c.offloadedMB += rec.bytes
			c.cur.Offloaded += rec.bytes
			c.rt.Counters.Add("cache.stores", 1)
		}
	}
	return rec.handleOf()
}

// Unpack implements autograd.Hooks — Alg. 1's unpack_hook. It returns the
// tensor and the virtual time at which its data is resident.
func (c *TensorCache) Unpack(p autograd.Packed, hostNow time.Duration) (*tensor.Tensor, time.Duration) {
	if t, ok := p.(*tensor.Tensor); ok {
		// Alg. 1 line 10: raw tensors pass straight through.
		return t, hostNow
	}
	rec := p.(handle).rec
	switch {
	case !rec.offloaded || rec.forwarded:
		return rec.t, hostNow
	case rec.loading:
		ready := rec.loadFinish
		if hostNow > ready {
			ready = hostNow
		}
		return rec.loaded, ready
	case hostNow < rec.storeFinish:
		if c.cfg.NoForwarding {
			// Ablation: serialize behind the store, then demand-load.
			c.issueLoad(rec, rec.storeFinish)
			c.rt.Counters.Add("cache.demand_loads", 1)
			return rec.loaded, rec.loadFinish
		}
		// Data forwarding at unpack time: the store has not finished, so
		// the in-memory copy is still valid — skip the SSD read.
		c.forward(rec)
		return rec.t, hostNow
	default:
		// Not prefetched (e.g. prefetching disabled): demand load. The
		// caller blocks until loadFinish.
		c.issueLoad(rec, hostNow)
		c.rt.Counters.Add("cache.demand_loads", 1)
		return rec.loaded, rec.loadFinish
	}
}

// Consumed implements autograd.Hooks: the backward consumer of p finished.
// On the last consumer the cache drops whatever reference it still holds.
func (c *TensorCache) Consumed(p autograd.Packed, at time.Duration) {
	h, ok := p.(handle)
	if !ok {
		return
	}
	rec := h.rec
	rec.consumed++
	if rec.consumed < rec.refs {
		return
	}
	c.finishRecord(rec, at)
}

// finishRecord releases the cache's references for a fully consumed
// record and deletes its offload file.
func (c *TensorCache) finishRecord(rec *record, at time.Duration) {
	switch {
	case !rec.offloaded:
		// Kept in GPU memory until its backward use completed.
		c.rt.Life.Release(rec.t.Storage(), at)
	case rec.forwarded:
		// Forwarded: the original stays until both the consumer and the
		// still-running store are done.
		rel := at
		if rec.storeFinish > rel {
			rel = rec.storeFinish
		}
		rec.released = true
		c.rt.Life.Release(rec.t.Storage(), rel)
		c.off.Delete(rec.id)
	default:
		// Reloaded from SSD: free the reload buffer; the original was
		// released when the store completed.
		if rec.loaded != nil {
			c.rt.Life.Release(rec.loaded.Storage(), at)
		}
		c.off.Delete(rec.id)
	}
}

// sweep closes out the step in one pass over the step's record maps: any
// record that was never fully consumed (which indicates an executor bug
// or an aborted step) has its references released and is counted as
// leaked, and every record and map is recycled into the pools for the
// next step.
func (c *TensorCache) sweep(at time.Duration) {
	maps := c.stepRecs
	if c.recs != nil {
		maps = append(maps, c.recs)
	}
	for _, m := range maps {
		for _, rec := range m {
			if rec.consumed < rec.refs {
				c.cur.Leaked++
				c.rt.Counters.Add("cache.leaks", 1)
				if rec.offloaded && !rec.forwarded && rec.loaded == nil {
					c.releaseOriginal(rec)
					c.off.Delete(rec.id)
				} else {
					c.finishRecord(rec, at)
				}
			}
			c.recycleRecord(rec)
		}
		clear(m)
		c.freeRecs = append(c.freeRecs, m)
	}
	c.stepRecs = c.stepRecs[:0]
	c.recs = nil
	c.last = c.cur
	c.totals.Offloaded += c.cur.Offloaded
	c.totals.Kept += c.cur.Kept
	c.totals.Forwarded += c.cur.Forwarded
	c.totals.Reloaded += c.cur.Reloaded
	c.totals.Packs += c.cur.Packs
	c.totals.DedupHits += c.cur.DedupHits
	c.totals.Leaked += c.cur.Leaked
}

// HostCost implements autograd.Hooks.
func (c *TensorCache) HostCost() time.Duration { return c.cfg.HostCost }

// LastStep returns the completed step's I/O summary.
func (c *TensorCache) LastStep() StepIO { return c.last }

// Totals returns cumulative I/O across steps.
func (c *TensorCache) Totals() StepIO { return c.totals }

// Offloader returns the cache's offload target.
func (c *TensorCache) Offloader() Offloader { return c.off }

var _ autograd.Hooks = (*TensorCache)(nil)
