package core

import (
	"time"

	"ssdtrain/internal/sim"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/tensor"
	"ssdtrain/internal/units"
)

// OptimKind selects the optimizer whose states and gradients the offload
// tier holds, in the ZeRO-Offload mixed-precision layout: parameters are
// FP16 on the GPU, the master copies and moment buffers are FP32 on the
// offload tier.
type OptimKind string

// Optimizer kinds.
const (
	// OptimAdam keeps FP32 master params + momentum + variance (12 bytes
	// per parameter, 6× the FP16 parameter bytes).
	OptimAdam OptimKind = "adam"
	// OptimSGD keeps FP32 master params + momentum (8 bytes per
	// parameter, 4× the FP16 parameter bytes).
	OptimSGD OptimKind = "sgd"
)

// StateBytes returns the resident optimizer-state volume for a weight of
// the given FP16 parameter bytes.
func (k OptimKind) StateBytes(param units.Bytes) units.Bytes {
	if k == OptimSGD {
		return 4 * param
	}
	return 6 * param
}

// DefaultHostUpdateBandwidth is the host update engine's effective memory
// bandwidth: the streaming rate of a vectorized CPU optimizer (the
// ZeRO-Offload CPU-Adam regime), well below DRAM peak because the update
// is a strided read-modify-write over several buffers at once.
const DefaultHostUpdateBandwidth = 24 * units.GBps

// OptimConfig configures the offloaded-optimizer pipeline for one run.
type OptimConfig struct {
	// Kind selects the state layout (empty = Adam).
	Kind OptimKind
	// DRAMGrant is the pinned host-memory volume the optimizer may claim
	// for resident state; weights that do not fit keep their states on the
	// NVMe rung.
	DRAMGrant units.Bytes
	// HostUpdateBandwidth overrides the update engine's memory bandwidth
	// (0 = DefaultHostUpdateBandwidth).
	HostUpdateBandwidth units.Bandwidth
}

// OptimPlacement summarizes where Register put the optimizer working set
// and what per-step traffic the placement implies — the planner input for
// reserving tier bandwidth against the activation budget.
type OptimPlacement struct {
	// StateBytes is the total resident FP32 optimizer state.
	StateBytes units.Bytes
	// DRAMBytes/NVMeBytes are the resident block volumes per rung (states
	// plus the per-weight gradient and parameter shuttle blocks).
	DRAMBytes units.Bytes
	NVMeBytes units.Bytes
	// DRAMWeights/NVMeWeights count weights per rung.
	DRAMWeights int
	NVMeWeights int
	// *PerStep are the per-step shuttle volumes each rung's path carries:
	// writes are gradients down (plus state write-back on NVMe), reads are
	// updated parameters up (plus state read on NVMe).
	DRAMWritePerStep units.Bytes
	DRAMReadPerStep  units.Bytes
	NVMeWritePerStep units.Bytes
	NVMeReadPerStep  units.Bytes
}

// optimWeight is the pipeline's per-weight wiring: the shuttle block IDs,
// the resident rung, and the CPU-side state tensor sized by the kind.
// gradDone/pending carry the per-step handoff between GradReady (which
// offloads the gradient as backward produces it) and flush (which runs
// the update chains in registration order).
type optimWeight struct {
	w        *tensor.Tensor
	seq      int64
	gradID   TensorID
	stateID  TensorID
	paramID  TensorID
	state    *tensor.Tensor
	onDRAM   bool
	gradDone time.Duration
	pending  bool
}

// OptimOffloader runs the offloaded optimizer pipeline of ZeRO-Offload /
// GreedySnake on the simulated machine: per weight and per step, the FP16
// gradient shuttles down to the rung holding the weight's optimizer
// state, the update executes on a host-side engine (reading and writing
// the FP32 state — a timed NVMe round trip when the state lives on the
// array, host memory bandwidth when it lives in pinned DRAM), and the
// updated FP16 parameter shuttles back up. Gradient offload dispatches
// the moment backward produces each gradient, overlapping the remaining
// backward; the update chains themselves run in registration (forward)
// order — GreedySnake's reordering — so under the overlap schedule the
// pipeline drains into the next step's forward in exactly the order the
// forward consumes weights, stalling only the ops whose updates have not
// caught up. (Dispatching updates in gradient-arrival order would put
// the first block's update — the one fwd(t+1) needs first — at the back
// of the FIFO and serialize the whole drain onto the first op.)
//
// The optimizer rungs are separate tier instances (own FIFO queues, own
// block stores) that share the PCIe links and the NVMe array with the
// activation tiers, so optimizer traffic contends with activation
// offload on the physical paths and lands in the same §III-D wear
// ledger. Transfers take the host-mediated path (no GDS): the CPU owns
// the update, exactly as ZeRO-Offload's architecture prescribes.
type OptimOffloader struct {
	update  *sim.Server
	rec     *spans.Recorder
	updateT spans.TrackID

	dram Tier
	nvme Tier

	cfg     OptimConfig
	updBW   units.Bandwidth
	weights []optimWeight
	byState map[int64]*tensor.Tensor // storage seq → reusable state tensor
	ready   map[int64]time.Duration  // storage seq → updated-weight arrival
	drain   time.Duration
	placed  OptimPlacement

	// steady is the fast-path fold bookkeeping (per-cycle update-engine
	// busy growth; the tiers keep their own). dUpdateBusy is the last
	// folded cycle's busy delta, extraBusy the extrapolated busy volume —
	// so UpdateBusy reports the same total whether the run was simulated
	// in full or extrapolated.
	prevUpdateBusy time.Duration
	dUpdateBusy    time.Duration
	extraBusy      time.Duration
}

// NewOptimOffloader wires the pipeline onto the engine. dram may be nil
// (no pinned pool — every state lives on the NVMe rung); nvme must be
// set. The tiers are owned by the caller, which resets them per run
// before Reset/Register.
func NewOptimOffloader(eng *sim.Engine, dram, nvme Tier) *OptimOffloader {
	rec := eng.Recorder()
	return &OptimOffloader{
		update:  sim.NewServer(eng, "optim.update"),
		rec:     rec,
		updateT: rec.RegisterTrack("optim.update"),
		dram:    dram,
		nvme:    nvme,
		byState: make(map[int64]*tensor.Tensor),
		ready:   make(map[int64]time.Duration),
	}
}

// Tiers returns the optimizer rung stack (DRAM first when present) for
// per-tier reporting.
func (o *OptimOffloader) Tiers() []Tier {
	if o.dram == nil {
		return []Tier{o.nvme}
	}
	return []Tier{o.dram, o.nvme}
}

// Placement returns the Register outcome.
func (o *OptimOffloader) Placement() OptimPlacement { return o.placed }

// Reset rebinds the pipeline to a run's knobs and clears all per-run
// state. The member tiers must have been reset by their owner first.
func (o *OptimOffloader) Reset(cfg OptimConfig) {
	if cfg.Kind == "" {
		cfg.Kind = OptimAdam
	}
	o.cfg = cfg
	o.updBW = cfg.HostUpdateBandwidth
	if o.updBW <= 0 {
		o.updBW = DefaultHostUpdateBandwidth
	}
	o.update.Reset()
	o.weights = o.weights[:0]
	clear(o.ready)
	o.drain = 0
	o.placed = OptimPlacement{}
	o.prevUpdateBusy = 0
	o.dUpdateBusy = 0
	o.extraBusy = 0
}

// optimID mints a shuttle block ID outside the tensor cache's stamp
// space: cache stamps are positive, so negative stamps keyed by weight
// index can never collide with activation blocks.
func optimID(i, slot int) TensorID {
	return TensorID{Stamp: -int64(i*3 + slot + 1), ShapeHash: 0x0b71a11}
}

// Register places every weight's optimizer working set: DRAM fills first
// (the ZeRO-Offload posture) until the grant is exhausted, the rest lands
// on the NVMe rung. Resident blocks are pre-staged into the rungs' block
// stores without timed transfers — staging happens once before training,
// not on the measured path. Call once per run, after Reset.
func (o *OptimOffloader) Register(weights []*tensor.Tensor) OptimPlacement {
	var p OptimPlacement
	var dramUsed units.Bytes
	for i, w := range weights {
		pb := w.Bytes()
		sb := o.cfg.Kind.StateBytes(pb)
		need := sb + 2*pb // state + grad shuttle + param shuttle
		ow := optimWeight{
			w:       w,
			seq:     w.Storage().Seq(),
			gradID:  optimID(i, 0),
			stateID: optimID(i, 1),
			paramID: optimID(i, 2),
			state:   o.stateTensor(w, sb),
		}
		ow.onDRAM = o.dram != nil && dramUsed+need <= o.cfg.DRAMGrant
		t := o.nvme
		if ow.onDRAM {
			t = o.dram
			dramUsed += need
			p.DRAMBytes += need
			p.DRAMWeights++
			p.DRAMWritePerStep += pb // gradient down
			p.DRAMReadPerStep += pb  // updated parameter up
		} else {
			p.NVMeBytes += need
			p.NVMeWeights++
			p.NVMeWritePerStep += pb + sb // gradient down + state write-back
			p.NVMeReadPerStep += pb + sb  // state read + updated parameter up
		}
		p.StateBytes += sb
		preload(t, ow.stateID, sb)
		preload(t, ow.paramID, pb)
		o.weights = append(o.weights, ow)
	}
	o.placed = p
	return p
}

// preload records a resident block on a tier without a timed transfer.
func preload(t Tier, id TensorID, n units.Bytes) {
	type preloader interface {
		Preload(id TensorID, n units.Bytes)
	}
	t.(preloader).Preload(id, n)
}

// stateTensor returns the reusable CPU-side FP32 state tensor for a
// weight, rebuilt when the kind (and so the size) changed between runs.
func (o *OptimOffloader) stateTensor(w *tensor.Tensor, sb units.Bytes) *tensor.Tensor {
	seq := w.Storage().Seq()
	if t := o.byState[seq]; t != nil && t.Bytes() == sb {
		return t
	}
	t := tensor.New(w.Name()+".optstate", tensor.NewShape(int(sb/4)), tensor.FP32, tensor.CPU)
	o.byState[seq] = t
	return t
}

// GradReady implements autograd.OptimPipeline: offload the gradient the
// moment backward completes it — the transfer overlaps the remaining
// backward — and mark the weight's update chain pending for the
// forward-order flush. The update chains themselves never start under
// backward: the optimizer phase is the classic post-backward step, and
// the sync/overlap schedules differ only in whether the step boundary
// waits for it to drain.
func (o *OptimOffloader) GradReady(w *tensor.Tensor, ready time.Duration) {
	seq := w.Storage().Seq()
	for i := range o.weights {
		ow := &o.weights[i]
		if ow.seq != seq {
			continue
		}
		t := o.nvme
		if ow.onDRAM {
			t = o.dram
		}
		_, f, err := t.Store(ow.gradID, ow.w, ready)
		if err != nil {
			// Optimizer rungs are never bounded and never armed for
			// faults, so a store cannot fail; keep the chain alive
			// regardless.
			f = ready
		}
		ow.gradDone = f
		ow.pending = true
		return
	}
}

// flush dispatches every pending update chain in registration (forward)
// order — the GreedySnake snake turn: backward sweeps the blocks
// last-to-first, so the first block's gradient lands right as fwd(t+1)
// wants its weight back, and the update sequence 1..N runs just-in-time
// ahead of the forward consuming it. Deferring dispatch to the first
// consumer query (Drain, WeightReady, StepEnd) is sound because this is
// a discrete-event simulation: all chain inputs are simulated
// timestamps, and the update server starts each job at
// max(ready, busyUntil) regardless of when it was submitted.
func (o *OptimOffloader) flush() {
	for i := range o.weights {
		ow := &o.weights[i]
		if !ow.pending {
			continue
		}
		ow.pending = false
		o.dispatch(ow)
	}
}

// dispatch runs one weight's chain after its gradient landed:
// (state read) → update → (state write-back) → param up.
func (o *OptimOffloader) dispatch(ow *optimWeight) {
	t := o.nvme
	if ow.onDRAM {
		t = o.dram
	}
	f := ow.gradDone
	sb := ow.state.Bytes()
	if !ow.onDRAM {
		if _, lf, _, lerr := t.Load(ow.stateID, f); lerr == nil {
			f = lf
		}
	}
	// The update streams the gradient, the FP32 state (read and write),
	// and the fresh FP16 parameter through host memory.
	dur := o.updBW.TimeFor(2*ow.w.Bytes() + 2*sb)
	uf := o.update.Submit(f, dur, nil)
	if o.rec.Enabled() {
		o.rec.Span(o.updateT, spans.KindOptimOffload, -1, ow.w.Name(), uf-dur, uf, sb, 0)
	}
	f = uf
	if !ow.onDRAM {
		if _, sf, serr := t.Store(ow.stateID, ow.state, f); serr == nil {
			f = sf
		}
	}
	if _, lf, _, lerr := t.Load(ow.paramID, f); lerr == nil {
		f = lf
	}
	o.ready[ow.seq] = f
	if f > o.drain {
		o.drain = f
	}
}

// WeightReady implements autograd.OptimPipeline: when the weight's
// updated value is back on the GPU (zero when no chain is pending).
func (o *OptimOffloader) WeightReady(w *tensor.Tensor) time.Duration {
	o.flush()
	return o.ready[w.Storage().Seq()]
}

// Drain implements autograd.OptimPipeline: when every dispatched chain
// completes.
func (o *OptimOffloader) Drain() time.Duration {
	o.flush()
	return o.drain
}

// StepEnd implements autograd.OptimPipeline: under the overlap schedule
// the pipeline keeps draining past the step boundary; the window is
// recorded so attribution can show the hidden work.
func (o *OptimOffloader) StepEnd(end time.Duration) {
	o.flush()
	if o.rec.Enabled() && o.drain > end {
		o.rec.Span(o.updateT, spans.KindOptimOverlap, -1, "optim-drain", end, o.drain, 0, 0)
	}
}

// UpdateBusy reports the host update engine's cumulative busy time,
// including extrapolated cycles.
func (o *OptimOffloader) UpdateBusy() time.Duration { return o.update.BusyTime() + o.extraBusy }

// FoldCycle implements SteadySupport: the update engine's busy growth and
// backlog horizon, every weight's updated-arrival horizon (in weights
// order — the overlap schedule's cross-step state), the drain horizon,
// and both rungs' tier machinery.
func (o *OptimOffloader) FoldCycle(sig *sim.Sig, origin time.Duration) bool {
	ub := o.update.BusyTime()
	sig.FoldDur(ub - o.prevUpdateBusy)
	o.dUpdateBusy = ub - o.prevUpdateBusy
	o.prevUpdateBusy = ub
	sig.FoldDur(relHorizon(o.update.BusyUntil(), origin))
	sig.FoldDur(relHorizon(o.drain, origin))
	for i := range o.weights {
		sig.FoldDur(relHorizon(o.ready[o.weights[i].seq], origin))
	}
	ok := true
	for _, t := range o.Tiers() {
		ss, can := t.(SteadySupport)
		if !can {
			return false
		}
		if !ss.FoldCycle(sig, origin) {
			ok = false
		}
	}
	return ok
}

// ExtrapolateCycles implements SteadySupport: both rungs' cumulative
// traffic advances by n cycles of the folded deltas. The shared NVMe
// array's member-device counters are advanced by the activation tier
// that owns them (see SSDOffloader.SharedArray).
func (o *OptimOffloader) ExtrapolateCycles(n int64) {
	o.extraBusy += o.dUpdateBusy * time.Duration(n)
	for _, t := range o.Tiers() {
		if ss, can := t.(SteadySupport); can {
			ss.ExtrapolateCycles(n)
		}
	}
}

var _ SteadySupport = (*OptimOffloader)(nil)
