package core

import (
	"time"

	"ssdtrain/internal/pcie"
	"ssdtrain/internal/sim"
	"ssdtrain/internal/units"
)

// SteadySupport is implemented by offloaders that participate in the
// steady-state fast path. Per executed training step, FoldCycle folds the
// offloader's state delta since the previous fold into sig — cumulative
// counter growth, queue busy growth, and backlog horizons relative to the
// step's start — and remembers the deltas. Two consecutive steps that fold
// identically (together with the executor-side signature) are a steady
// cycle; ExtrapolateCycles then advances the cumulative accounting by n
// further cycles of the remembered deltas without simulating them.
//
// FoldCycle reports false when the offloader's state cannot be
// extrapolated analytically (an armed fault controller whose wear ledger
// needs the real write stream, or an FTL-attached device whose
// page-accurate wear does): the caller must then fall back to full
// simulation, though the fold itself is still valid for convergence
// detection.
type SteadySupport interface {
	FoldCycle(sig *sim.Sig, origin time.Duration) bool
	ExtrapolateCycles(n int64)
}

// relHorizon returns a queue backlog horizon relative to the step origin,
// clamped at zero. A backlog that drained before the step began cannot
// influence any later transfer (every later ready time is ≥ origin), so
// its exact stale value must not keep two otherwise identical steps from
// matching — without the clamp an idle queue's horizon would recede by one
// period per step and a traffic-free strategy would never converge.
func relHorizon(busyUntil, origin time.Duration) time.Duration {
	if busyUntil <= origin {
		return 0
	}
	return busyUntil - origin
}

// tierSteady is a tier's fold bookkeeping: the cumulative snapshots the
// next fold diffs against, and the last cycle's deltas for extrapolation.
type tierSteady struct {
	written, read, deleted    units.Bytes
	storeBusy, loadBusy       time.Duration
	dWritten, dRead, dDeleted units.Bytes
}

// foldCycle folds the shared tier machinery's per-cycle delta: block-store
// traffic growth, residency, and both FIFO queues' busy growth and
// relative horizons.
func (b *tierBase) foldCycle(sig *sim.Sig, origin time.Duration) {
	st := &b.steady
	w, r, d := b.store.Written(), b.store.Read(), b.store.Deleted()
	st.dWritten, st.dRead, st.dDeleted = w-st.written, r-st.read, d-st.deleted
	sig.FoldInt(int64(st.dWritten))
	sig.FoldInt(int64(st.dRead))
	sig.FoldInt(int64(st.dDeleted))
	sig.FoldInt(int64(b.store.Used()))
	sig.FoldInt(int64(b.store.PeakUsed()))
	sig.FoldInt(int64(b.store.Count()))
	sb, lb := b.storeQ.BusyTime(), b.loadQ.BusyTime()
	sig.FoldDur(sb - st.storeBusy)
	sig.FoldDur(lb - st.loadBusy)
	sig.FoldDur(relHorizon(b.storeQ.BusyUntil(), origin))
	sig.FoldDur(relHorizon(b.loadQ.BusyUntil(), origin))
	st.written, st.read, st.deleted = w, r, d
	st.storeBusy, st.loadBusy = sb, lb
}

// extrapolateCycles advances the block store's cumulative traffic by n
// cycles of the last folded deltas. Residency (used/peak) and the queues
// are untouched: a steady cycle's file churn is net-zero, and nothing a
// RunResult reports reads queue state after the run.
func (b *tierBase) extrapolateCycles(n int64) {
	st := &b.steady
	b.store.AdvanceTraffic(
		st.dWritten*units.Bytes(n),
		st.dRead*units.Bytes(n),
		st.dDeleted*units.Bytes(n))
}

// linkSteady is the fold bookkeeping for one PCIe link's two directions.
type linkSteady struct {
	downBusy, upBusy time.Duration
}

func (ls *linkSteady) fold(sig *sim.Sig, l *pcie.Link, origin time.Duration) {
	db, ub := l.DownBusyTime(), l.UpBusyTime()
	sig.FoldDur(db - ls.downBusy)
	sig.FoldDur(ub - ls.upBusy)
	sig.FoldDur(relHorizon(l.DownBusyUntil(), origin))
	sig.FoldDur(relHorizon(l.UpBusyUntil(), origin))
	ls.downBusy, ls.upBusy = db, ub
}

// devSteady is the fold bookkeeping for one NVMe member device.
type devSteady struct {
	written, read   units.Bytes
	wBusy, rBusy    time.Duration
	dWritten, dRead units.Bytes
}

// FoldCycle implements SteadySupport: the shared tier machinery, the GDS
// link, the stripe cursor, and every member device's host counters and
// queue state. It reports false when the tier is armed for fault injection
// (the wear ledger must see the real write stream — the harness falls back
// on any fault spec anyway) or when a member has an FTL attached
// (page-accurate wear cannot be advanced analytically).
func (o *SSDOffloader) FoldCycle(sig *sim.Sig, origin time.Duration) bool {
	o.tierBase.foldCycle(sig, origin)
	o.lnSteady.fold(sig, o.link, origin)
	if o.SharedArray {
		// The owning tier folds the shared array's cursor and member-device
		// counters (they include this tier's traffic); folding them here too
		// would be harmless for convergence but would double-advance wear on
		// extrapolation, so the shared rung folds only its own machinery.
		return o.faults == nil
	}
	devs := o.array.Devices()
	if len(o.devSteady) != len(devs) {
		o.devSteady = make([]devSteady, len(devs))
	}
	sig.FoldInt(int64(o.array.Cursor()))
	ok := o.faults == nil
	for i, d := range devs {
		if d.FTL() != nil {
			ok = false
		}
		ds := &o.devSteady[i]
		w, r := d.HostWritten(), d.HostRead()
		ds.dWritten, ds.dRead = w-ds.written, r-ds.read
		sig.FoldInt(int64(ds.dWritten))
		sig.FoldInt(int64(ds.dRead))
		wb, rb := d.WriteBusyTime(), d.ReadBusyTime()
		sig.FoldDur(wb - ds.wBusy)
		sig.FoldDur(rb - ds.rBusy)
		sig.FoldDur(relHorizon(d.WriteBusyUntil(), origin))
		sig.FoldDur(relHorizon(d.ReadBusyUntil(), origin))
		ds.written, ds.read, ds.wBusy, ds.rBusy = w, r, wb, rb
	}
	return ok
}

// ExtrapolateCycles implements SteadySupport: the tier's store traffic and
// every member device's host byte counters — the inputs of the §III-D wear
// ledger and the fleet's per-drive endurance projection — advance by n
// cycles of the last folded per-cycle deltas.
func (o *SSDOffloader) ExtrapolateCycles(n int64) {
	o.tierBase.extrapolateCycles(n)
	if o.SharedArray {
		return
	}
	devs := o.array.Devices()
	if len(o.devSteady) != len(devs) {
		return
	}
	for i, d := range devs {
		ds := &o.devSteady[i]
		d.AdvanceHostTraffic(ds.dWritten*units.Bytes(n), ds.dRead*units.Bytes(n))
	}
}

// FoldCycle implements SteadySupport for the pinned host-memory tier.
func (o *CPUOffloader) FoldCycle(sig *sim.Sig, origin time.Duration) bool {
	o.tierBase.foldCycle(sig, origin)
	o.lnSteady.fold(sig, o.link, origin)
	return true
}

// ExtrapolateCycles implements SteadySupport.
func (o *CPUOffloader) ExtrapolateCycles(n int64) {
	o.tierBase.extrapolateCycles(n)
}

// FoldCycle implements SteadySupport for the hierarchy: its own placement
// state (residency, per-tier routing deltas) plus every tier in the
// stack, in stack order.
func (o *TieredOffloader) FoldCycle(sig *sim.Sig, origin time.Duration) bool {
	sig.FoldInt(int64(len(o.where)))
	sig.FoldInt(int64(o.used))
	sig.FoldInt(int64(o.peak))
	if len(o.steadyPlaced) != len(o.placed) {
		o.steadyPlaced = make([]units.Bytes, len(o.placed))
		o.steadyDPlaced = make([]units.Bytes, len(o.placed))
	}
	for i, p := range o.placed {
		d := p - o.steadyPlaced[i]
		sig.FoldInt(int64(d))
		o.steadyDPlaced[i] = d
		o.steadyPlaced[i] = p
	}
	ok := true
	for _, t := range o.tiers {
		ss, can := t.(SteadySupport)
		if !can {
			return false
		}
		if !ss.FoldCycle(sig, origin) {
			ok = false
		}
	}
	return ok
}

// ExtrapolateCycles implements SteadySupport: per-tier routing totals and
// every stacked tier's accounting advance by n cycles.
func (o *TieredOffloader) ExtrapolateCycles(n int64) {
	if len(o.steadyDPlaced) == len(o.placed) {
		for i := range o.placed {
			o.placed[i] += o.steadyDPlaced[i] * units.Bytes(n)
		}
	}
	for _, t := range o.tiers {
		if ss, can := t.(SteadySupport); can {
			ss.ExtrapolateCycles(n)
		}
	}
}

var (
	_ SteadySupport = (*SSDOffloader)(nil)
	_ SteadySupport = (*CPUOffloader)(nil)
	_ SteadySupport = (*TieredOffloader)(nil)
)
