package core

import (
	"time"

	"ssdtrain/internal/units"
)

// PlanInputs are the Fig 3 workflow inputs: what SSDTrain retrieves from
// the model instance and the hardware before setting the offload amount.
type PlanInputs struct {
	// ForwardTime is the estimated forward-propagation time per
	// micro-batch (from the performance model or a profiled step).
	ForwardTime time.Duration
	// BackwardTime is the estimated backward-propagation time.
	BackwardTime time.Duration
	// EligibleBytes is the per-micro-batch activation volume the pack hook
	// would see (excluding weights and small tensors).
	EligibleBytes units.Bytes
	// LastModuleBytes is the activation volume of the final module, which
	// is kept resident because backward consumes it immediately (Fig 2 ④).
	LastModuleBytes units.Bytes
	// WriteBandwidth/ReadBandwidth are the offloader's path rates.
	WriteBandwidth units.Bandwidth
	ReadBandwidth  units.Bandwidth
	// SafetyFactor derates the drainable volume to absorb queueing jitter;
	// values in (0,1]. Zero selects the default 0.9.
	SafetyFactor float64
}

// ModulePlan describes the graph at module granularity for the planner:
// parallel slices of per-module saved-activation bytes and backward
// compute time, in forward order.
type ModulePlan struct {
	SavedBytes []units.Bytes
	BwdTime    []time.Duration
	// ReadBandwidth/WriteBandwidth are the offloader's path rates.
	ReadBandwidth  units.Bandwidth
	WriteBandwidth units.Bandwidth
	// ForwardTime/BackwardTime bound the store drain window.
	ForwardTime  time.Duration
	BackwardTime time.Duration
	// SafetyFactor derates bandwidth; zero selects 0.9.
	SafetyFactor float64
}

// PlanModuleBudget sets the offload amount at module granularity — the
// full Fig 3 workflow. Backward consumes modules in reverse order, so the
// planner offloads the longest prefix of modules whose reloads all hide
// behind the backward compute of the modules after them:
//
//	for every offloaded module i:
//	    (Σ_{k=i..j-1} saved_k) / readBW  ≤  Σ_{k>i} bwd_k
//
// where j is the first kept module. Everything past the budget stays in
// GPU memory (Alg. 1's is_offload_amount_reached), which automatically
// keeps the tail modules — including the last one (Fig 2 ④).
func PlanModuleBudget(in ModulePlan) units.Bytes {
	sf := in.SafetyFactor
	if sf <= 0 || sf > 1 {
		sf = 0.9
	}
	m := len(in.SavedBytes)
	if m == 0 || m != len(in.BwdTime) {
		return 0
	}
	// The reload deadline check uses the raw read bandwidth: a marginal
	// miss degrades gracefully (the still-stored tensors forward from
	// memory), so the safety factor applies only to the store-drain clamp.
	readBW := float64(in.ReadBandwidth)
	if readBW <= 0 {
		return 0
	}
	// bwdAfter[i] = Σ_{k>i} bwd_k.
	bwdAfter := make([]float64, m)
	var cum float64
	for i := m - 1; i >= 0; i-- {
		bwdAfter[i] = cum
		cum += in.BwdTime[i].Seconds()
	}
	feasible := func(j int) bool { // offload modules [0, j)
		var load float64 // seconds of reload from module i to j-1
		for i := j - 1; i >= 0; i-- {
			load += float64(in.SavedBytes[i]) / readBW
			// A module's tensors are consumed spread across its own
			// backward, so half of it extends the deadline window.
			if load > bwdAfter[i]+in.BwdTime[i].Seconds()/2 {
				return false
			}
		}
		return true
	}
	// The last module is never offloaded (backward needs it immediately).
	j := m - 1
	for j > 0 && !feasible(j) {
		j--
	}
	var budget units.Bytes
	for i := 0; i < j; i++ {
		budget += in.SavedBytes[i]
	}
	// Store-side clamp: bytes the write path cannot drain before reloads
	// would need them just waste endurance (they get forwarded anyway).
	drainWindow := in.ForwardTime + in.BackwardTime/2
	if writable := units.Bytes(sf * float64(in.WriteBandwidth) * drainWindow.Seconds()); in.WriteBandwidth > 0 && writable < budget {
		budget = writable
	}
	return budget
}

// TierPlan describes one rung of an offload hierarchy for budget
// planning: its path bandwidths, its byte capacity (0 = unbounded), an
// optional cap on its share of the planned volume (split placement;
// 0 = no share cap), and whether the runtime can spill past it. A
// Strict bounded rung (no spill below, e.g. a lone pinned pool) caps
// the whole budget at its derated capacity — planning more than the
// pool holds would only overflow it at run time.
type TierPlan struct {
	WriteBandwidth units.Bandwidth
	ReadBandwidth  units.Bandwidth
	Capacity       units.Bytes
	Fraction       float64
	Strict         bool
	// WriteReserve/ReadReserve are per-step byte volumes competing traffic
	// (the offloaded optimizer's gradient/state/parameter shuttles) will
	// push through the same rung each step. The planner derates the rung's
	// bandwidths by the slice of the step's compute window that traffic
	// occupies before planning activations against it. Zero reserves leave
	// the plan arithmetic untouched.
	WriteReserve units.Bytes
	ReadReserve  units.Bytes
}

// derate scales the rung's bandwidths down by the fraction of the window
// its reserved traffic occupies, clamping at zero (a rung whose reserve
// saturates the window contributes no activation budget).
func (t TierPlan) derate(window time.Duration) TierPlan {
	if (t.WriteReserve <= 0 && t.ReadReserve <= 0) || window <= 0 {
		return t
	}
	scale := func(bw units.Bandwidth, reserve units.Bytes) units.Bandwidth {
		if bw <= 0 || reserve <= 0 {
			return bw
		}
		frac := bw.TimeFor(reserve).Seconds() / window.Seconds()
		if frac >= 1 {
			return 0
		}
		return units.Bandwidth(float64(bw) * (1 - frac))
	}
	t.WriteBandwidth = scale(t.WriteBandwidth, t.WriteReserve)
	t.ReadBandwidth = scale(t.ReadBandwidth, t.ReadReserve)
	t.WriteReserve, t.ReadReserve = 0, 0
	return t
}

// volumeCap is the most bytes the planner expects the tier to absorb out
// of a total volume v, honouring both the byte capacity and the share
// cap.
func (t TierPlan) volumeCap(v units.Bytes) units.Bytes {
	out := v
	if t.Capacity > 0 && t.Capacity < out {
		out = t.Capacity
	}
	if t.Fraction > 0 {
		if f := units.Bytes(t.Fraction * float64(v)); f < out {
			out = f
		}
	}
	return out
}

// PlanHierarchyBudget runs the Fig 3 module-granularity workflow over a
// tier mix: the rungs fill front to back (the dram-first posture; split
// placement expresses its routing through per-tier Fraction caps), reload
// deadlines are checked against the blended read bandwidth of the
// expected placement, and the store-drain clamp sums what each rung's
// independent PCIe path can drain — capped by the rung's capacity, so a
// small DRAM pool cannot promise more drain than it can hold.
//
// A mix that degenerates to a single used rung reduces, bit for bit, to
// PlanModuleBudget on that rung's bandwidths: the paper's single-target
// strategies re-expressed as one-tier stacks plan the same budgets.
func PlanHierarchyBudget(in ModulePlan, tiers []TierPlan) units.Bytes {
	if len(tiers) == 0 {
		return 0
	}
	// Rungs carrying reserved competing traffic (optimizer shuttles) plan
	// against derated bandwidths. The caller's slice is copied only when a
	// reserve is present, so reserve-free plans keep their exact arithmetic.
	for i := range tiers {
		if tiers[i].WriteReserve > 0 || tiers[i].ReadReserve > 0 {
			window := in.ForwardTime + in.BackwardTime
			derated := make([]TierPlan, len(tiers))
			for j, t := range tiers {
				derated[j] = t.derate(window)
			}
			tiers = derated
			break
		}
	}
	var total units.Bytes
	for _, sb := range in.SavedBytes {
		total += sb
	}
	// Expected fill at full eligible volume, front to back. Rungs that
	// would take nothing drop out; one surviving rung is the degenerate
	// case.
	take := make([]units.Bytes, len(tiers))
	remaining := total
	var live []int
	for i, t := range tiers {
		take[i] = t.volumeCap(total)
		if take[i] > remaining {
			take[i] = remaining
		}
		remaining -= take[i]
		if take[i] > 0 {
			live = append(live, i)
		}
	}
	// Whatever no rung claimed lands on the last one (unbounded NVMe in
	// practice); keep the accounting consistent for degenerate detection.
	if remaining > 0 {
		last := len(tiers) - 1
		if take[last] == 0 {
			live = append(live, last)
		}
		take[last] += remaining
	}
	if len(live) <= 1 {
		idx := len(tiers) - 1
		if len(live) == 1 {
			idx = live[0]
		}
		in.ReadBandwidth = tiers[idx].ReadBandwidth
		in.WriteBandwidth = tiers[idx].WriteBandwidth
		return strictClamp(PlanModuleBudget(in), tiers[idx], in.SafetyFactor)
	}
	// Blended read bandwidth: reloads of a mixed placement drain each
	// rung in proportion, so the harmonic mean over placed fractions is
	// the conservative effective rate.
	var invRead float64
	for _, i := range live {
		if tiers[i].ReadBandwidth <= 0 {
			return 0
		}
		invRead += float64(take[i]) / float64(total) / float64(tiers[i].ReadBandwidth)
	}
	if invRead <= 0 {
		return 0
	}
	sf := in.SafetyFactor
	if sf <= 0 || sf > 1 {
		sf = 0.9
	}
	// Run the module-prefix workflow on the blended read rate with the
	// write clamp disabled (WriteBandwidth 0), then apply the per-rung
	// drain clamp.
	in.ReadBandwidth = units.Bandwidth(1 / invRead)
	in.WriteBandwidth = 0
	budget := PlanModuleBudget(in)
	drainWindow := in.ForwardTime + in.BackwardTime/2
	var writable units.Bytes
	for _, i := range live {
		w := units.Bytes(sf * float64(tiers[i].WriteBandwidth) * drainWindow.Seconds())
		if c := tiers[i].volumeCap(total); c < w {
			w = c
		}
		writable += w
	}
	if writable < budget {
		budget = writable
	}
	if last := tiers[len(tiers)-1]; last.Strict {
		// No spill below the final rung: the whole plan must fit it.
		budget = strictClamp(budget, last, in.SafetyFactor)
	}
	return budget
}

// strictClamp caps a budget at a strict bounded rung's derated capacity:
// residency tracks the offloaded volume closely, and the safety factor
// leaves headroom for the one-tensor budget overshoot and in-flight
// reload buffers.
func strictClamp(budget units.Bytes, tier TierPlan, safetyFactor float64) units.Bytes {
	if !tier.Strict || tier.Capacity <= 0 {
		return budget
	}
	sf := safetyFactor
	if sf <= 0 || sf > 1 {
		sf = 0.9
	}
	if derated := units.Bytes(sf * float64(tier.Capacity)); derated < budget {
		return derated
	}
	return budget
}

// PlanBudget sets the activation offload amount (the "Set: offload size"
// box of Fig 3): offload no more than the store queue can drain while
// forward compute proceeds, no more than the load queue can feed back
// during backward, and never the last module's activations.
func PlanBudget(in PlanInputs) units.Bytes {
	sf := in.SafetyFactor
	if sf <= 0 || sf > 1 {
		sf = 0.9
	}
	budget := in.EligibleBytes - in.LastModuleBytes
	if budget < 0 {
		budget = 0
	}
	// Stores must drain while forward (and the early part of backward)
	// still runs; by the time a tensor is reloaded its store must long be
	// complete. The drain window is forward plus half of backward.
	drainWindow := in.ForwardTime + in.BackwardTime/2
	writable := units.Bytes(sf * float64(in.WriteBandwidth) * drainWindow.Seconds())
	if writable < budget {
		budget = writable
	}
	// Reloads must keep up with backward consumption.
	readable := units.Bytes(sf * float64(in.ReadBandwidth) * in.BackwardTime.Seconds())
	if readable < budget {
		budget = readable
	}
	return budget
}
