package core

import (
	"time"

	"ssdtrain/internal/units"
)

// PlanInputs are the Fig 3 workflow inputs: what SSDTrain retrieves from
// the model instance and the hardware before setting the offload amount.
type PlanInputs struct {
	// ForwardTime is the estimated forward-propagation time per
	// micro-batch (from the performance model or a profiled step).
	ForwardTime time.Duration
	// BackwardTime is the estimated backward-propagation time.
	BackwardTime time.Duration
	// EligibleBytes is the per-micro-batch activation volume the pack hook
	// would see (excluding weights and small tensors).
	EligibleBytes units.Bytes
	// LastModuleBytes is the activation volume of the final module, which
	// is kept resident because backward consumes it immediately (Fig 2 ④).
	LastModuleBytes units.Bytes
	// WriteBandwidth/ReadBandwidth are the offloader's path rates.
	WriteBandwidth units.Bandwidth
	ReadBandwidth  units.Bandwidth
	// SafetyFactor derates the drainable volume to absorb queueing jitter;
	// values in (0,1]. Zero selects the default 0.9.
	SafetyFactor float64
}

// ModulePlan describes the graph at module granularity for the planner:
// parallel slices of per-module saved-activation bytes and backward
// compute time, in forward order.
type ModulePlan struct {
	SavedBytes []units.Bytes
	BwdTime    []time.Duration
	// ReadBandwidth/WriteBandwidth are the offloader's path rates.
	ReadBandwidth  units.Bandwidth
	WriteBandwidth units.Bandwidth
	// ForwardTime/BackwardTime bound the store drain window.
	ForwardTime  time.Duration
	BackwardTime time.Duration
	// SafetyFactor derates bandwidth; zero selects 0.9.
	SafetyFactor float64
}

// PlanModuleBudget sets the offload amount at module granularity — the
// full Fig 3 workflow. Backward consumes modules in reverse order, so the
// planner offloads the longest prefix of modules whose reloads all hide
// behind the backward compute of the modules after them:
//
//	for every offloaded module i:
//	    (Σ_{k=i..j-1} saved_k) / readBW  ≤  Σ_{k>i} bwd_k
//
// where j is the first kept module. Everything past the budget stays in
// GPU memory (Alg. 1's is_offload_amount_reached), which automatically
// keeps the tail modules — including the last one (Fig 2 ④).
func PlanModuleBudget(in ModulePlan) units.Bytes {
	sf := in.SafetyFactor
	if sf <= 0 || sf > 1 {
		sf = 0.9
	}
	m := len(in.SavedBytes)
	if m == 0 || m != len(in.BwdTime) {
		return 0
	}
	// The reload deadline check uses the raw read bandwidth: a marginal
	// miss degrades gracefully (the still-stored tensors forward from
	// memory), so the safety factor applies only to the store-drain clamp.
	readBW := float64(in.ReadBandwidth)
	if readBW <= 0 {
		return 0
	}
	// bwdAfter[i] = Σ_{k>i} bwd_k.
	bwdAfter := make([]float64, m)
	var cum float64
	for i := m - 1; i >= 0; i-- {
		bwdAfter[i] = cum
		cum += in.BwdTime[i].Seconds()
	}
	feasible := func(j int) bool { // offload modules [0, j)
		var load float64 // seconds of reload from module i to j-1
		for i := j - 1; i >= 0; i-- {
			load += float64(in.SavedBytes[i]) / readBW
			// A module's tensors are consumed spread across its own
			// backward, so half of it extends the deadline window.
			if load > bwdAfter[i]+in.BwdTime[i].Seconds()/2 {
				return false
			}
		}
		return true
	}
	// The last module is never offloaded (backward needs it immediately).
	j := m - 1
	for j > 0 && !feasible(j) {
		j--
	}
	var budget units.Bytes
	for i := 0; i < j; i++ {
		budget += in.SavedBytes[i]
	}
	// Store-side clamp: bytes the write path cannot drain before reloads
	// would need them just waste endurance (they get forwarded anyway).
	drainWindow := in.ForwardTime + in.BackwardTime/2
	if writable := units.Bytes(sf * float64(in.WriteBandwidth) * drainWindow.Seconds()); in.WriteBandwidth > 0 && writable < budget {
		budget = writable
	}
	return budget
}

// PlanBudget sets the activation offload amount (the "Set: offload size"
// box of Fig 3): offload no more than the store queue can drain while
// forward compute proceeds, no more than the load queue can feed back
// during backward, and never the last module's activations.
func PlanBudget(in PlanInputs) units.Bytes {
	sf := in.SafetyFactor
	if sf <= 0 || sf > 1 {
		sf = 0.9
	}
	budget := in.EligibleBytes - in.LastModuleBytes
	if budget < 0 {
		budget = 0
	}
	// Stores must drain while forward (and the early part of backward)
	// still runs; by the time a tensor is reloaded its store must long be
	// complete. The drain window is forward plus half of backward.
	drainWindow := in.ForwardTime + in.BackwardTime/2
	writable := units.Bytes(sf * float64(in.WriteBandwidth) * drainWindow.Seconds())
	if writable < budget {
		budget = writable
	}
	// Reloads must keep up with backward consumption.
	readable := units.Bytes(sf * float64(in.ReadBandwidth) * in.BackwardTime.Seconds())
	if readable < budget {
		budget = readable
	}
	return budget
}
