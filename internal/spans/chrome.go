package spans

import (
	"bytes"
	"encoding/json"
	"strconv"
	"time"
)

// ChromeJSON renders the trace in Chrome trace-event JSON object format,
// loadable in Perfetto and chrome://tracing: one thread per track,
// complete ("X") events for intervals, instant ("i") events for
// alloc/free, and flow events ("s"/"f") linking each offload store to the
// reloads of the same tensor. Rendering is deterministic — fixed field
// order and fixed-precision timestamps — so reference traces can be
// golden-pinned.
func (t *Trace) ChromeJSON() []byte {
	var b bytes.Buffer
	b.Grow(256 + 160*len(t.Spans))
	b.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	n := 0
	emit := func(ev string) {
		if n > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ev)
		n++
	}

	emit(`{"ph":"M","pid":0,"name":"process_name","args":{"name":"ssdtrain-sim"}}`)
	for i, name := range t.Tracks {
		var e bytes.Buffer
		e.WriteString(`{"ph":"M","pid":0,"tid":`)
		e.WriteString(strconv.Itoa(i))
		e.WriteString(`,"name":"thread_name","args":{"name":`)
		e.Write(jsonString(name))
		e.WriteString(`}}`)
		emit(e.String())
	}

	// flowsOpen remembers which flow ids already emitted their "s" event:
	// the first store of a tensor opens the flow, reloads terminate it.
	// A "f" without a prior "s" would be dangling, so loads of never-traced
	// stores (ring overwrote them) emit nothing.
	flowsOpen := make(map[uint64]bool)
	var e bytes.Buffer
	for _, s := range t.Spans {
		e.Reset()
		if s.Kind == KindAlloc || s.Kind == KindFree {
			e.WriteString(`{"ph":"i","s":"t","pid":0,"tid":`)
			e.WriteString(strconv.Itoa(int(s.Track)))
			e.WriteString(`,"ts":`)
			e.WriteString(ts(s.Start))
			e.WriteString(`,"name":`)
			e.Write(jsonString(s.Name))
			e.WriteString(`,"cat":"`)
			e.WriteString(s.Kind.String())
			e.WriteString(`","args":{"bytes":`)
			e.WriteString(strconv.FormatInt(int64(s.Bytes), 10))
			e.WriteString(`}}`)
			emit(e.String())
			continue
		}
		e.WriteString(`{"ph":"X","pid":0,"tid":`)
		e.WriteString(strconv.Itoa(int(s.Track)))
		e.WriteString(`,"ts":`)
		e.WriteString(ts(s.Start))
		e.WriteString(`,"dur":`)
		e.WriteString(ts(s.End - s.Start))
		e.WriteString(`,"name":`)
		e.Write(jsonString(s.Name))
		e.WriteString(`,"cat":"`)
		e.WriteString(s.Kind.String())
		e.WriteString(`","args":{`)
		first := true
		if s.Bytes > 0 {
			e.WriteString(`"bytes":`)
			e.WriteString(strconv.FormatInt(int64(s.Bytes), 10))
			first = false
		}
		if s.Block >= 0 {
			if !first {
				e.WriteByte(',')
			}
			e.WriteString(`"block":`)
			e.WriteString(strconv.Itoa(int(s.Block)))
		}
		e.WriteString(`}}`)
		emit(e.String())

		if s.Flow == 0 {
			continue
		}
		switch s.Kind {
		case KindStore:
			if !flowsOpen[s.Flow] {
				flowsOpen[s.Flow] = true
				emit(flowEvent("s", "", s.Track, s.Start, s.Flow))
			}
		case KindLoad:
			if flowsOpen[s.Flow] {
				emit(flowEvent("f", `,"bp":"e"`, s.Track, s.End, s.Flow))
			}
		}
	}
	b.WriteString("]}\n")
	return b.Bytes()
}

// flowEvent renders one flow phase event.
func flowEvent(ph, extra string, track TrackID, at time.Duration, id uint64) string {
	var e bytes.Buffer
	e.WriteString(`{"ph":"`)
	e.WriteString(ph)
	e.WriteString(`"`)
	e.WriteString(extra)
	e.WriteString(`,"pid":0,"tid":`)
	e.WriteString(strconv.Itoa(int(track)))
	e.WriteString(`,"ts":`)
	e.WriteString(ts(at))
	e.WriteString(`,"id":`)
	e.WriteString(strconv.FormatUint(id, 10))
	e.WriteString(`,"name":"offload","cat":"flow"}`)
	return e.String()
}

// ts formats a virtual time as microseconds with fixed nanosecond
// precision — Chrome's ts unit, rendered deterministically for goldens.
func ts(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/1e3, 'f', 3, 64)
}

// jsonString renders a JSON string literal (names come from model paths
// and are plain ASCII, but escaping is delegated to encoding/json so odd
// inputs can never corrupt the document).
func jsonString(s string) []byte {
	out, err := json.Marshal(s)
	if err != nil {
		return []byte(`"?"`)
	}
	return out
}
