package spans

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"ssdtrain/internal/units"
)

func TestRecorderDisabledAndNil(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	nilRec.Enable()
	nilRec.Span(0, KindForward, -1, "x", 0, 1, 0, 0)
	nilRec.Count("c", 1)
	nilRec.Reset()
	if got := nilRec.RegisterTrack("t"); got != -1 {
		t.Fatalf("nil RegisterTrack = %d, want -1", got)
	}
	if nilRec.Snapshot() != nil {
		t.Fatal("nil Snapshot not nil")
	}

	r := NewRecorder(8)
	tr := r.RegisterTrack("gpu")
	r.Span(tr, KindForward, -1, "x", 0, 1, 0, 0) // disabled: dropped
	r.Count("c", 1)
	if r.Len() != 0 {
		t.Fatalf("disabled recorder buffered %d spans", r.Len())
	}
	if got := r.Snapshot(); len(got.Spans) != 0 || len(got.Counts) != 0 {
		t.Fatalf("disabled recorder snapshot not empty: %+v", got)
	}
}

func TestRecorderDisabledEmitAllocs(t *testing.T) {
	r := NewRecorder(8)
	tr := r.RegisterTrack("gpu")
	allocs := testing.AllocsPerRun(1000, func() {
		r.Span(tr, KindForward, 3, "layer.0", 0, time.Microsecond, 4*units.KiB, 0)
		r.Count("c", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled emit allocates %.1f/op, want 0", allocs)
	}
}

func TestRecorderRingAndReset(t *testing.T) {
	r := NewRecorder(4)
	tr := r.RegisterTrack("gpu")
	r.Enable()
	for i := 0; i < 6; i++ {
		r.Span(tr, KindForward, int32(i), "op", time.Duration(i), time.Duration(i+1), 0, 0)
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("snapshot kept %d spans, want 4", len(snap.Spans))
	}
	// Oldest-first emission order: spans 2..5 survive.
	for i, s := range snap.Spans {
		if s.Block != int32(i+2) {
			t.Fatalf("span %d block = %d, want %d", i, s.Block, i+2)
		}
	}

	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("reset left %d spans, %d dropped", r.Len(), r.Dropped())
	}
	if got := r.RegisterTrack("gpu"); got != tr {
		t.Fatalf("track lost across reset: %d != %d", got, tr)
	}
	// Identical emission sequence after Reset snapshots identically.
	r.Enable()
	for i := 0; i < 6; i++ {
		r.Span(tr, KindForward, int32(i), "op", time.Duration(i), time.Duration(i+1), 0, 0)
	}
	snap2 := r.Snapshot()
	if !reflect.DeepEqual(snap.Spans, snap2.Spans) {
		t.Fatal("replayed emission sequence snapshots differently")
	}
}

func TestRegisterTrackIdempotent(t *testing.T) {
	r := NewRecorder(4)
	a := r.RegisterTrack("pcie0.down")
	b := r.RegisterTrack("pcie0.up")
	if a == b {
		t.Fatal("distinct tracks share an ID")
	}
	if got := r.RegisterTrack("pcie0.down"); got != a {
		t.Fatalf("re-registration returned %d, want %d", got, a)
	}
}

// chromeDoc mirrors the trace-event JSON object format.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		ID   uint64         `json:"id"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func testTrace() *Trace {
	r := NewRecorder(64)
	gpu := r.RegisterTrack("gpu.compute")
	st := r.RegisterTrack("/mnt/md1.store")
	ld := r.RegisterTrack("/mnt/md1.load")
	mem := r.RegisterTrack("gpu.mem")
	r.Enable()
	us := func(n int) time.Duration { return time.Duration(n) * time.Microsecond }
	r.Span(mem, KindAlloc, -1, "activations", us(0), us(0), 1024, 0)
	r.Span(gpu, KindForward, 0, "layers.0.mlp", us(0), us(10), 0, 0)
	r.Span(st, KindStore, -1, "store direct", us(10), us(14), 1024, 77)
	r.Span(gpu, KindBackward, 0, "layers.0.mlp.grad", us(12), us(22), 0, 0)
	r.Span(ld, KindLoad, -1, "load", us(14), us(18), 1024, 77)
	r.Span(gpu, KindStall, -1, "reload-wait", us(22), us(24), 0, 0)
	r.Span(mem, KindFree, -1, "activations", us(24), us(24), 1024, 0)
	return r.Snapshot()
}

func TestChromeJSONValid(t *testing.T) {
	tr := testTrace()
	raw := tr.ChromeJSON()
	var doc chromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome JSON does not parse: %v\n%s", err, raw)
	}
	var x, meta, flowS, flowF, inst int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			x++
		case "M":
			meta++
		case "s":
			flowS++
			if ev.ID != 77 {
				t.Fatalf("flow start id = %d, want 77", ev.ID)
			}
		case "f":
			flowF++
		case "i":
			inst++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 1+len(tr.Tracks) {
		t.Fatalf("metadata events = %d, want %d", meta, 1+len(tr.Tracks))
	}
	if x != 5 || inst != 2 {
		t.Fatalf("X=%d i=%d, want 5 and 2", x, inst)
	}
	if flowS != 1 || flowF != 1 {
		t.Fatalf("flow s=%d f=%d, want 1 and 1", flowS, flowF)
	}
	// Deterministic rendering.
	if string(raw) != string(testTrace().ChromeJSON()) {
		t.Fatal("chrome JSON not deterministic")
	}
}

func TestChromeJSONNoDanglingFlow(t *testing.T) {
	r := NewRecorder(8)
	ld := r.RegisterTrack("tier.load")
	r.Enable()
	// A load whose store span was overwritten by the ring: no "s" emitted,
	// so the "f" must be suppressed too.
	r.Span(ld, KindLoad, -1, "load", 0, time.Microsecond, 64, 42)
	raw := r.Snapshot().ChromeJSON()
	var doc chromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "f" || ev.Ph == "s" {
			t.Fatalf("dangling flow event %q emitted", ev.Ph)
		}
	}
}

func TestAttribution(t *testing.T) {
	tr := testTrace()
	a := tr.Attribution()
	us := func(n int) time.Duration { return time.Duration(n) * time.Microsecond }
	if a.Horizon != us(24) {
		t.Fatalf("horizon = %v, want 24µs", a.Horizon)
	}
	// Compute: [0,10) ∪ [12,22) = 20µs. IO: [10,14) ∪ [14,18) = 8µs.
	// Overlap: [12,14) ∪ [14,18) = 6µs.
	if a.ComputeBusy != us(20) {
		t.Fatalf("compute busy = %v, want 20µs", a.ComputeBusy)
	}
	if a.IOBusy != us(8) {
		t.Fatalf("io busy = %v, want 8µs", a.IOBusy)
	}
	if a.Overlap != us(6) {
		t.Fatalf("overlap = %v, want 6µs", a.Overlap)
	}
	if a.Stall != us(2) || len(a.Stalls) != 1 || a.Stalls[0].Cause != "reload-wait" {
		t.Fatalf("stalls = %v %+v", a.Stall, a.Stalls)
	}
	if got := a.OverlapFrac(); got != 0.75 {
		t.Fatalf("overlap frac = %v, want 0.75", got)
	}
	if a.String() == "" {
		t.Fatal("empty report")
	}
	// gpu.compute track busy includes the stall interval merge: [0,10)∪[12,24) = 22µs.
	if a.Tracks[0].Track != "gpu.compute" || a.Tracks[0].Busy != us(22) {
		t.Fatalf("track usage = %+v", a.Tracks[0])
	}
}
