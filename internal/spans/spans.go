// Package spans is the simulator's flight recorder: typed, timestamped
// spans captured from every simulated resource — GPU compute kernels,
// PCIe DMA transfers, per-device NVMe queue service, offload-tier store
// and load queues, allocator events, and compute stalls — plus named
// counters for events that carry no timestamp (GDS registrations, tier
// placement decisions).
//
// The recorder is built for the experiment harness's two invariants:
//
//   - Zero overhead when disabled. Every emission method is nil-receiver
//     safe and guards on the enabled flag before touching any state, so
//     the instrumented hot paths cost one predictable branch and allocate
//     nothing when tracing is off.
//   - No perturbation when enabled. Emissions only read values the
//     substrates already computed (a span's start is derived from the
//     FIFO server's returned finish time), never schedule events or
//     advance clocks, so a traced run's RunResult is byte-identical to an
//     untraced one.
//
// The span buffer is a pooled ring: capacity is allocated once, Reset
// rewinds the buffer in place while keeping tracks and capacity, and when
// a run overflows the capacity the oldest spans are overwritten (counted
// in Dropped) rather than growing without bound.
package spans

import (
	"sync/atomic"
	"time"

	"ssdtrain/internal/units"
)

// TrackID identifies one resource timeline (a Chrome trace "thread").
// Tracks are registered at substrate construction, never on the hot path.
// The zero recorder hands out -1, which emissions on it ignore.
type TrackID int32

// Kind classifies a span.
type Kind uint8

// Span kinds.
const (
	// KindForward is a forward kernel on the compute stream.
	KindForward Kind = iota
	// KindBackward is a backward kernel.
	KindBackward
	// KindRecompute is a checkpoint-recomputation forward kernel.
	KindRecompute
	// KindOptimizer is a per-weight optimizer update kernel.
	KindOptimizer
	// KindAccum is a gradient-accumulation read-modify-write kernel.
	KindAccum
	// KindStall is compute idle time: the device waits on saved-tensor
	// data that is still loading. The span name carries the cause.
	KindStall
	// KindDMA is a PCIe link transfer (one direction of one link).
	KindDMA
	// KindNVMe is one NVMe device queue servicing its share of a striped
	// array transfer.
	KindNVMe
	// KindStore is an offload-tier store ("thread pool" write queue).
	KindStore
	// KindLoad is an offload-tier load (read queue).
	KindLoad
	// KindAlloc/KindFree are instant allocator events; the span name is
	// the allocation class.
	KindAlloc
	KindFree
	// KindFault marks an injected fault window (device death, scheduled
	// degradation) on the affected tier's track.
	KindFault
	// KindRebuild is RAID-rebuild background traffic stealing bandwidth
	// from foreground transfers after a member death.
	KindRebuild
	// KindOptimOffload is one offloaded optimizer update executing on the
	// host-side update engine (the ZeRO-Offload CPU optimizer).
	KindOptimOffload
	// KindOptimOverlap is the optimizer pipeline's drain window past a
	// step's end — the work the overlap schedule hides behind fwd(t+1).
	KindOptimOverlap
)

// String names the kind (Chrome trace category).
func (k Kind) String() string {
	switch k {
	case KindForward:
		return "fwd"
	case KindBackward:
		return "bwd"
	case KindRecompute:
		return "recompute"
	case KindOptimizer:
		return "optim"
	case KindAccum:
		return "accum"
	case KindStall:
		return "stall"
	case KindDMA:
		return "dma"
	case KindNVMe:
		return "nvme"
	case KindStore:
		return "store"
	case KindLoad:
		return "load"
	case KindAlloc:
		return "alloc"
	case KindFree:
		return "free"
	case KindFault:
		return "fault"
	case KindRebuild:
		return "rebuild"
	case KindOptimOffload:
		return "optim-offload"
	case KindOptimOverlap:
		return "optim-overlap"
	default:
		return "span"
	}
}

// Compute reports whether the kind occupies the GPU compute stream.
func (k Kind) Compute() bool {
	switch k {
	case KindForward, KindBackward, KindRecompute, KindOptimizer, KindAccum:
		return true
	}
	return false
}

// IO reports whether the kind occupies an I/O resource (PCIe, NVMe, a
// tier queue, or the host-side optimizer engine). Offloaded optimizer
// work classifies as I/O: it runs off the GPU, so its intersection with
// compute-kind spans is exactly the update time hidden behind fwd(t+1).
func (k Kind) IO() bool {
	switch k {
	case KindDMA, KindNVMe, KindStore, KindLoad, KindRebuild, KindOptimOffload, KindOptimOverlap:
		return true
	}
	return false
}

// Span is one recorded interval on a track. Start and End are virtual
// times; alloc/free events are instants (Start == End). Block is the
// module index for compute spans (-1 when not applicable). Flow links an
// offload store to the reloads of the same tensor (0 = no flow).
type Span struct {
	Track TrackID
	Kind  Kind
	Block int32
	Name  string
	Start time.Duration
	End   time.Duration
	Bytes units.Bytes
	Flow  uint64
}

// Dur returns the span's duration.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// DefaultCapacity is the ring capacity NewRecorder uses for cap <= 0:
// generous for any single measured run (a paper-scale step emits a few
// thousand spans) while bounding a runaway run's memory.
const DefaultCapacity = 1 << 18

// Recorder captures spans into a pooled ring buffer. It is single-owner
// (one simulation arena) and not safe for concurrent use — exactly like
// the engine it is attached to. A nil *Recorder is valid and inert, so
// substrates constructed without one need no branches at wiring time.
//
// The recorder survives arena resets by design: Session.Execute calls
// Reset (rewind the ring, keep tracks and capacity) rather than
// reconstructing, so a reused arena traces identically to a fresh one.
type Recorder struct {
	on      bool
	cap     int
	head    int
	dropped uint64
	tracks  []string
	spans   []Span
	counts  map[string]int64
}

// NewRecorder builds a disabled recorder with the given ring capacity
// (<= 0 uses DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{cap: capacity, counts: make(map[string]int64)}
}

// Enabled reports whether the recorder is capturing. Safe on nil.
func (r *Recorder) Enabled() bool { return r != nil && r.on }

// Enable starts capturing. Safe on nil (no-op).
func (r *Recorder) Enable() {
	if r != nil {
		r.on = true
	}
}

// Disable stops capturing without discarding what was recorded.
func (r *Recorder) Disable() {
	if r != nil {
		r.on = false
	}
}

// RegisterTrack returns the ID for a named track, creating it if new.
// Registration happens at substrate construction (never on the hot path)
// and tracks survive Reset — they are wiring, not run state.
func (r *Recorder) RegisterTrack(name string) TrackID {
	if r == nil {
		return -1
	}
	for i, t := range r.tracks {
		if t == name {
			return TrackID(i)
		}
	}
	r.tracks = append(r.tracks, name)
	return TrackID(len(r.tracks) - 1)
}

// Tracks returns the registered track names (shared slice; do not mutate).
func (r *Recorder) Tracks() []string {
	if r == nil {
		return nil
	}
	return r.tracks
}

// Span records one interval. The first branch is the entire disabled-path
// cost; arguments must be values the caller already has (no formatting).
func (r *Recorder) Span(track TrackID, kind Kind, block int32, name string, start, end time.Duration, bytes units.Bytes, flow uint64) {
	if r == nil || !r.on || track < 0 {
		return
	}
	r.emit(Span{Track: track, Kind: kind, Block: block, Name: name, Start: start, End: end, Bytes: bytes, Flow: flow})
}

// Count bumps a named counter — for recorder-visible events that carry no
// virtual timestamp (GDS registrations, tier placement decisions).
func (r *Recorder) Count(name string, n int64) {
	if r == nil || !r.on {
		return
	}
	r.counts[name] += n
}

// emit appends into the ring, overwriting the oldest span when full.
func (r *Recorder) emit(s Span) {
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, s)
		return
	}
	r.spans[r.head] = s
	r.head++
	if r.head == r.cap {
		r.head = 0
	}
	r.dropped++
}

// Len reports how many spans are currently buffered.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Dropped reports how many spans the ring overwrote since the last Reset.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Reset rewinds the ring and counters for a new run. Tracks, the buffer's
// capacity and its backing array survive — that is what makes a recorder
// on a recycled arena trace byte-identically to a fresh one without
// reallocating.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = r.spans[:0]
	r.head = 0
	r.dropped = 0
	clear(r.counts)
}

// Trace is an immutable snapshot of one run's recording, carried on the
// RunResult so the live recorder can be reset for the arena's next run.
type Trace struct {
	// Tracks maps TrackID to resource name.
	Tracks []string
	// Spans are in emission order (monotone per track, interleaved across
	// tracks by host issue order).
	Spans []Span
	// Counts are the named counters at the end of the run.
	Counts map[string]int64
	// Dropped is how many spans the ring overwrote during the run.
	Dropped uint64
}

// TrackName resolves a track ID ("?" when out of range).
func (t *Trace) TrackName(id TrackID) string {
	if id < 0 || int(id) >= len(t.Tracks) {
		return "?"
	}
	return t.Tracks[id]
}

// Snapshot clones the recording into an immutable Trace, unrolling the
// ring into emission order, and folds the recorder's counters into the
// package-wide totals surfaced by Totals (the /metrics span counters).
func (r *Recorder) Snapshot() *Trace {
	if r == nil {
		return nil
	}
	t := &Trace{
		Tracks:  append([]string(nil), r.tracks...),
		Spans:   make([]Span, 0, len(r.spans)),
		Counts:  make(map[string]int64, len(r.counts)),
		Dropped: r.dropped,
	}
	t.Spans = append(t.Spans, r.spans[r.head:]...)
	t.Spans = append(t.Spans, r.spans[:r.head]...)
	for k, v := range r.counts {
		t.Counts[k] = v
	}
	totSnapshots.Add(1)
	totSpans.Add(uint64(len(t.Spans)))
	totDropped.Add(r.dropped)
	return t
}

// GlobalStats aggregates recorder activity process-wide, so an observer
// (the serve /metrics endpoint) can report tracing volume without holding
// references to per-arena recorders.
type GlobalStats struct {
	// Snapshots counts completed traced runs.
	Snapshots uint64
	// Spans counts spans delivered across all snapshots.
	Spans uint64
	// Dropped counts spans lost to ring overwrites across all snapshots.
	Dropped uint64
}

var (
	totSnapshots atomic.Uint64
	totSpans     atomic.Uint64
	totDropped   atomic.Uint64
)

// Totals returns the process-wide recorder counters.
func Totals() GlobalStats {
	return GlobalStats{
		Snapshots: totSnapshots.Load(),
		Spans:     totSpans.Load(),
		Dropped:   totDropped.Load(),
	}
}
