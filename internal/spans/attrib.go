package spans

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TrackUsage is one resource's share of the run.
type TrackUsage struct {
	Track string
	// Busy is the merged (union) busy time of the track's spans.
	Busy time.Duration
	// Pct is Busy over the trace horizon.
	Pct float64
	// Spans counts the track's spans.
	Spans int
}

// StallBucket is compute idle time attributed to one cause.
type StallBucket struct {
	Cause string
	Total time.Duration
}

// Attribution explains where a run's time went: per-resource busy
// fractions, how much of the I/O was hidden behind compute, and what the
// GPU stalled on. It is the report form of the paper's overlap argument —
// a config "works" exactly when Overlap ≈ IOBusy and the stall buckets
// are empty.
type Attribution struct {
	// Horizon is the last span end (the traced run's extent).
	Horizon time.Duration
	// Tracks lists per-resource usage in track-registration order.
	Tracks []TrackUsage
	// ComputeBusy is the union busy time of compute-kind spans.
	ComputeBusy time.Duration
	// IOBusy is the union busy time of I/O-kind spans across all I/O
	// resources (a transfer occupying PCIe and NVMe at once counts once).
	IOBusy time.Duration
	// Overlap is the intersection of compute-busy and I/O-busy time — the
	// I/O the run hid behind kernels.
	Overlap time.Duration
	// Stall is total compute idle time waiting on reloads.
	Stall time.Duration
	// Stalls buckets Stall by cause, sorted by cause.
	Stalls []StallBucket
	// Counts are the trace's named counters.
	Counts map[string]int64
}

// OverlapFrac returns the fraction of I/O busy time hidden behind
// compute (1 = perfectly overlapped, the paper's headline claim).
func (a *Attribution) OverlapFrac() float64 {
	if a.IOBusy <= 0 {
		return 0
	}
	return float64(a.Overlap) / float64(a.IOBusy)
}

// interval is a half-open busy window.
type interval struct{ lo, hi time.Duration }

// mergeIntervals sorts and unions overlapping windows in place.
func mergeIntervals(iv []interval) []interval {
	if len(iv) == 0 {
		return iv
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].lo < iv[j].lo })
	out := iv[:1]
	for _, cur := range iv[1:] {
		last := &out[len(out)-1]
		if cur.lo <= last.hi {
			if cur.hi > last.hi {
				last.hi = cur.hi
			}
			continue
		}
		out = append(out, cur)
	}
	return out
}

// sumIntervals totals merged window lengths.
func sumIntervals(iv []interval) time.Duration {
	var d time.Duration
	for _, w := range iv {
		d += w.hi - w.lo
	}
	return d
}

// intersect returns the total overlap between two merged interval lists.
func intersect(a, b []interval) time.Duration {
	var d time.Duration
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max(a[i].lo, b[j].lo)
		hi := min(a[i].hi, b[j].hi)
		if hi > lo {
			d += hi - lo
		}
		if a[i].hi < b[j].hi {
			i++
		} else {
			j++
		}
	}
	return d
}

// Attribution computes the step-time attribution report from the trace.
func (t *Trace) Attribution() *Attribution {
	a := &Attribution{Counts: t.Counts}
	perTrack := make([][]interval, len(t.Tracks))
	spanCount := make([]int, len(t.Tracks))
	var compute, io []interval
	stalls := make(map[string]time.Duration)
	for _, s := range t.Spans {
		if s.End > a.Horizon {
			a.Horizon = s.End
		}
		if int(s.Track) < len(perTrack) {
			spanCount[s.Track]++
			if s.End > s.Start {
				perTrack[s.Track] = append(perTrack[s.Track], interval{s.Start, s.End})
			}
		}
		switch {
		case s.Kind == KindStall:
			a.Stall += s.End - s.Start
			stalls[s.Name] += s.End - s.Start
		case s.Kind.Compute():
			compute = append(compute, interval{s.Start, s.End})
		case s.Kind.IO():
			io = append(io, interval{s.Start, s.End})
		}
	}
	for i, name := range t.Tracks {
		merged := mergeIntervals(perTrack[i])
		busy := sumIntervals(merged)
		u := TrackUsage{Track: name, Busy: busy, Spans: spanCount[i]}
		if a.Horizon > 0 {
			u.Pct = float64(busy) / float64(a.Horizon)
		}
		a.Tracks = append(a.Tracks, u)
	}
	computeMerged := mergeIntervals(compute)
	ioMerged := mergeIntervals(io)
	a.ComputeBusy = sumIntervals(computeMerged)
	a.IOBusy = sumIntervals(ioMerged)
	a.Overlap = intersect(computeMerged, ioMerged)
	for cause, d := range stalls {
		a.Stalls = append(a.Stalls, StallBucket{Cause: cause, Total: d})
	}
	sort.Slice(a.Stalls, func(i, j int) bool { return a.Stalls[i].Cause < a.Stalls[j].Cause })
	return a
}

// String renders the report as an aligned table.
func (a *Attribution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attribution over %v horizon\n", a.Horizon)
	fmt.Fprintf(&b, "  %-28s %14s %7s %8s\n", "track", "busy", "busy%", "spans")
	for _, u := range a.Tracks {
		fmt.Fprintf(&b, "  %-28s %14v %6.1f%% %8d\n", u.Track, u.Busy, u.Pct*100, u.Spans)
	}
	fmt.Fprintf(&b, "compute busy %v, io busy %v, overlap %v (%.1f%% of io hidden behind compute)\n",
		a.ComputeBusy, a.IOBusy, a.Overlap, a.OverlapFrac()*100)
	if a.Stall > 0 {
		fmt.Fprintf(&b, "compute stalls %v:", a.Stall)
		for _, s := range a.Stalls {
			fmt.Fprintf(&b, " %s=%v", s.Cause, s.Total)
		}
		b.WriteString("\n")
	} else {
		b.WriteString("no compute stalls (offload fully overlapped)\n")
	}
	if len(a.Counts) > 0 {
		names := make([]string, 0, len(a.Counts))
		for k := range a.Counts {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString("counters:")
		for _, k := range names {
			fmt.Fprintf(&b, " %s=%d", k, a.Counts[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}
