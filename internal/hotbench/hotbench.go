// Package hotbench defines the hot-path benchmark workloads shared by
// the `go test -bench` benchmarks and cmd/bench (which records them to
// BENCH_hotpath.json). Keeping the workloads in one place guarantees the
// recorded perf trajectory measures exactly what the benchmarks measure.
package hotbench

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"ssdtrain/internal/exp"
	"ssdtrain/internal/models"
	"ssdtrain/internal/sim"
	"ssdtrain/internal/spans"
	"ssdtrain/internal/units"
)

// SweepModel is the representative sweep workload: the paper's BERT
// column at hidden 8192 with enough layers for real offload traffic.
func SweepModel() models.Config {
	return models.PaperConfig(models.BERT, 8192, 4, 16)
}

// SweepBase is the compiled-sweep base config (Steps=12, adaptive).
func SweepBase() exp.RunConfig {
	return exp.RunConfig{Model: SweepModel(), Strategy: exp.SSDTrain, Steps: 12, AdaptiveSteps: true}
}

// BudgetSweep runs the 9-point offload-budget sweep once: a planned
// reference run plus eight budget fractions, all through one compiled
// plan.
func BudgetSweep() error {
	base := SweepBase()
	plan, err := exp.Compile(base)
	if err != nil {
		return err
	}
	ref, err := plan.Execute(base)
	if err != nil {
		return err
	}
	for _, f := range []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 1} {
		cfg := base
		cfg.Budget = units.Bytes(f * float64(ref.PlannedBudget))
		if _, err := plan.Execute(cfg); err != nil {
			return err
		}
	}
	cfg := base
	cfg.Budget = ref.PlannedBudget
	_, err = plan.Execute(cfg)
	return err
}

// shareSweepPoints are the bandwidth shares every share-sweep variant
// measures. The fresh, session and pooled sweeps are compared against
// each other by cmd/bench, so they must iterate one list.
var shareSweepPoints = []float64{0, 0.5, 0.25, 0.125}

// shareSweep runs the bandwidth-share points through execute, the loop
// shared by the fresh, session and pooled sweep variants.
func shareSweep(execute func(exp.RunConfig) error) error {
	base := SweepBase()
	for _, sh := range shareSweepPoints {
		cfg := base
		cfg.SSDBandwidthShare = sh
		if err := execute(cfg); err != nil {
			return err
		}
	}
	return nil
}

// ShareSweep runs the 4-point bandwidth-share sweep once (fleet-style
// contention profiling) through one compiled plan.
func ShareSweep() error {
	plan, err := exp.Compile(SweepBase())
	if err != nil {
		return err
	}
	return shareSweep(func(cfg exp.RunConfig) error {
		_, err := plan.Execute(cfg)
		return err
	})
}

// TieredSweep runs the 8-point DRAM-capacity placement sweep once: a
// dram-first hybrid at a quarter array share, capacities stepping
// through the working set, all through one compiled plan. This is the
// hot path a fleet of hybrid tenants exercises (every profile is one
// such point), so its cost is recorded next to the engine and sweep
// benches.
func TieredSweep() error {
	base := SweepBase()
	base.SSDBandwidthShare = 0.25
	base.Strategy = exp.HybridOffload
	base.Placement = exp.PlacementDRAMFirst
	plan, err := exp.Compile(base)
	if err != nil {
		return err
	}
	ref, err := plan.Execute(base)
	if err != nil {
		return err
	}
	scale := float64(ref.EligibleBytes)
	for _, f := range []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 1} {
		cfg := base
		cfg.DRAMCapacity = units.Bytes(f * scale)
		if _, err := plan.Execute(cfg); err != nil {
			return err
		}
	}
	return nil
}

// SteadyBase is the steady-state fast-path workload: the sweep model at
// 10000 fixed steps with adaptive profiling off, so every step is owed
// and the analytic extrapolation (simulate until two consecutive steps
// produce identical event signatures, synthesize the rest) carries
// essentially the whole run.
func SteadyBase() exp.RunConfig {
	base := SweepBase()
	base.Steps = 10000
	base.AdaptiveSteps = false
	return base
}

// NewSteadyPlan compiles the 10k-step steady workload once, shared by
// the fast-path and full-simulation measurements so the BENCH_steady
// comparison is same-plan by construction.
func NewSteadyPlan() (*exp.Plan, error) {
	return exp.Compile(SteadyBase())
}

// steadyShareSweep runs the 4 bandwidth-share points at 10k steps
// through one compiled plan with the given SteadyState knob.
func steadyShareSweep(plan *exp.Plan, steady string) error {
	base := SteadyBase()
	base.SteadyState = steady
	for _, sh := range shareSweepPoints {
		cfg := base
		cfg.SSDBandwidthShare = sh
		if _, err := plan.Execute(cfg); err != nil {
			return err
		}
	}
	return nil
}

// SteadyShareSweep runs the 4-point bandwidth-share sweep at 10k steps
// on the steady-state fast path: each point simulates until its step
// signature converges and extrapolates the remaining steps analytically.
func SteadyShareSweep(plan *exp.Plan) error {
	return steadyShareSweep(plan, "")
}

// FullSimShareSweep runs the same 4-point 10k-step sweep with the fast
// path disabled — all 10000 steps of every point simulated — the
// same-run baseline BENCH_steady.json compares against.
func FullSimShareSweep(plan *exp.Plan) error {
	return steadyShareSweep(plan, "off")
}

// SteadyShareSweepVerify cross-checks the record's headline claim
// before anything is timed: every share point executed on the fast path
// must actually have extrapolated (converged, no fallback) and must
// produce a RunResult identical to the full simulation of the same
// point, field for field, once the steady-state metadata that
// necessarily differs between the two modes is neutralized.
func SteadyShareSweepVerify(plan *exp.Plan) error {
	base := SteadyBase()
	for _, sh := range shareSweepPoints {
		fast := base
		fast.SSDBandwidthShare = sh
		fres, err := plan.Execute(fast)
		if err != nil {
			return err
		}
		if fb := fres.SteadyState.Fallback; fb != "" {
			return fmt.Errorf("hotbench: steady share sweep at share %v fell back to full simulation (%s)", sh, fb)
		}
		if fres.SteadyState.ExtrapolatedSteps == 0 {
			return fmt.Errorf("hotbench: steady share sweep at share %v extrapolated nothing", sh)
		}
		slow := fast
		slow.SteadyState = "off"
		sres, err := plan.Execute(slow)
		if err != nil {
			return err
		}
		sres.Config.SteadyState = fres.Config.SteadyState
		sres.SteadyState = fres.SteadyState
		if !reflect.DeepEqual(fres, sres) {
			return fmt.Errorf("hotbench: steady share sweep at share %v: fast-path result differs from full simulation", sh)
		}
	}
	return nil
}

// NewShareSweepSession binds a reusable execution arena to the
// share-sweep plan, for benchmarking repeated Execute.
func NewShareSweepSession() (*exp.Session, error) {
	plan, err := exp.Compile(SweepBase())
	if err != nil {
		return nil, err
	}
	return exp.NewSession(plan)
}

// SessionShareSweep runs the 4-point bandwidth-share sweep once on a
// reused session — the same points as ShareSweep, with the arena reset
// in place between Executes instead of rebuilt.
func SessionShareSweep(s *exp.Session) error {
	return shareSweep(func(cfg exp.RunConfig) error {
		_, err := s.Execute(cfg)
		return err
	})
}

// tieredBase is the tiered-sweep base config (shared by the fresh and
// session variants).
func tieredBase() exp.RunConfig {
	base := SweepBase()
	base.SSDBandwidthShare = 0.25
	base.Strategy = exp.HybridOffload
	base.Placement = exp.PlacementDRAMFirst
	return base
}

// NewTieredSweepSession binds a reusable execution arena to the
// tiered-sweep plan.
func NewTieredSweepSession() (*exp.Session, error) {
	plan, err := exp.Compile(tieredBase())
	if err != nil {
		return nil, err
	}
	return exp.NewSession(plan)
}

// SessionTieredSweep runs the 8-point DRAM-capacity placement sweep once
// on a reused session — the same points as TieredSweep.
func SessionTieredSweep(s *exp.Session) error {
	base := tieredBase()
	if _, err := s.Execute(base); err != nil {
		return err
	}
	scale := float64(s.Plan().EligibleBytes())
	for _, f := range []float64{0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 1} {
		cfg := base
		cfg.DRAMCapacity = units.Bytes(f * scale)
		if _, err := s.Execute(cfg); err != nil {
			return err
		}
	}
	return nil
}

// optimBase is the optimizer-offload workload: the sweep model's Adam
// FP32 states and gradient/parameter shuttle offloaded to the DRAM/NVMe
// hierarchy. Schedule and DRAM grant are cheap knobs, so one compiled
// plan serves both step schedules and every residency point.
func optimBase() exp.RunConfig {
	base := SweepBase()
	base.Strategy = exp.OptimOffload
	return base
}

// optimProbeGrant is a DRAM grant no optimizer working set reaches; the
// probe run under it reports the full working set the sweep fractions.
const optimProbeGrant = units.Bytes(1) << 50

// NewOptimSweepSession binds a reusable execution arena to the
// optimizer-offload plan.
func NewOptimSweepSession() (*exp.Session, error) {
	plan, err := exp.Compile(optimBase())
	if err != nil {
		return nil, err
	}
	return exp.NewSession(plan)
}

// sessionOptimSweep runs the 4-point optimizer-residency sweep once on a
// reused session under one step schedule: a fully DRAM-resident probe
// (doubling as the 100% point) plus three spill fractions.
func sessionOptimSweep(s *exp.Session, schedule string) error {
	base := optimBase()
	base.Schedule = schedule
	probe := base
	probe.DRAMCapacity = optimProbeGrant
	ref, err := s.Execute(probe)
	if err != nil {
		return err
	}
	scale := float64(ref.Optim.DRAMResident)
	for _, f := range []float64{0, 0.25, 0.5} {
		cfg := base
		cfg.DRAMCapacity = units.Bytes(f * scale)
		if _, err := s.Execute(cfg); err != nil {
			return err
		}
	}
	return nil
}

// SessionOptimSyncSweep runs the residency sweep under the classic
// post-backward barrier.
func SessionOptimSyncSweep(s *exp.Session) error {
	return sessionOptimSweep(s, exp.ScheduleSync)
}

// SessionOptimOverlapSweep runs the identical points with the optimizer
// pipeline draining into fwd(t+1) — cmd/bench records it against the
// same-run sync sweep, so the schedule's cost delta is same-host,
// same-arena by construction.
func SessionOptimOverlapSweep(s *exp.Session) error {
	return sessionOptimSweep(s, exp.ScheduleOverlap)
}

// SessionSweepBench is the shared session-reuse benchmark body: build
// the arena once, run one warm pass so its pools are filled, then time
// b.N sweep passes — the record measures steady-state repeated Execute.
// Both cmd/bench and the `go test -bench` benchmarks call this, so
// BENCH_session.json records exactly what the benchmarks measure.
func SessionSweepBench(b *testing.B, newSession func() (*exp.Session, error), sweep func(*exp.Session) error) {
	sess, err := newSession()
	if err != nil {
		b.Fatal(err)
	}
	if err := sweep(sess); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweep(sess); err != nil {
			b.Fatal(err)
		}
	}
}

// EngineSchedule performs n schedule-then-drain cycles with a bounded
// queue and returns the engine for stats inspection.
func EngineSchedule(n int) *sim.Engine {
	eng := sim.NewEngine()
	fn := func() {}
	for i := 0; i < n; i++ {
		eng.After(time.Microsecond, fn)
		if eng.QueueLen() > 1024 {
			eng.Run()
		}
	}
	eng.Run()
	return eng
}

// EngineSteadyState processes n events through 64 self-rescheduling
// timers and returns the engine for stats inspection.
func EngineSteadyState(n int) *sim.Engine {
	eng := sim.NewEngine()
	remaining := n
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			eng.After(time.Microsecond, tick)
		}
	}
	for i := 0; i < 64; i++ {
		eng.After(time.Duration(i)*time.Nanosecond, tick)
	}
	eng.Run()
	if hr := eng.Stats().PoolHitRate(); n > 1000 && hr < 0.99 {
		panic(fmt.Sprintf("hotbench: pool hit rate %v, want ≈1", hr))
	}
	return eng
}

// RecorderDisabledEmit drives n span emits through a disabled recorder —
// the hot-path cost every simulated resource pays when tracing is off.
// The benchmark gate pins this path allocation-free; anything else would
// tax every untraced simulation for an observability feature it isn't
// using. A small ring keeps the constructor's one-time allocation from
// polluting the per-op numbers at low N.
func RecorderDisabledEmit(n int) *spans.Recorder {
	rec := spans.NewRecorder(16)
	track := rec.RegisterTrack("bench")
	for i := 0; i < n; i++ {
		rec.Span(track, spans.KindDMA, -1, "emit", 0, time.Microsecond, 4096, 0)
	}
	if rec.Enabled() {
		panic("hotbench: disabled recorder reports enabled")
	}
	return rec
}

// SessionTracedShareSweep runs the 4-point bandwidth-share sweep with the
// flight recorder on, on a reused session — the same points as
// SessionShareSweep, so cmd/bench records the enabled-path cost against
// the same-run untraced baseline.
func SessionTracedShareSweep(s *exp.Session) error {
	return shareSweep(func(cfg exp.RunConfig) error {
		cfg.Trace = true
		res, err := s.Execute(cfg)
		if err != nil {
			return err
		}
		if res.Trace == nil || len(res.Trace.Spans) == 0 {
			return fmt.Errorf("hotbench: traced sweep point recorded no spans")
		}
		return nil
	})
}

// PooledShareSweep runs the 4-point bandwidth-share sweep through a
// shared SessionPool — the serve-layer execution path, where arenas are
// borrowed and returned per point. cmd/bench runs it to report the
// pool's hit/miss/eviction counters next to the perf records.
func PooledShareSweep(sp *exp.SessionPool) error {
	return shareSweep(func(cfg exp.RunConfig) error {
		_, err := sp.Execute(cfg)
		return err
	})
}
